// Regenerates Fig 7 of the paper: per-matrix CSR-DU speedups relative to
// the serial CSR baseline, sorted, with the multithreaded CSR speedup and
// the matrix size reduction. The CSV holds the plottable series.
#include <iostream>

#include "spc/bench/experiments.hpp"

int main() {
  const spc::BenchConfig cfg = spc::BenchConfig::from_env();
  spc::run_detail_figure(cfg, spc::Format::kCsrDu, /*vi_subset=*/false,
                         "fig7_csr_du_detail.csv", std::cout);
  return 0;
}
