// Ablation: execution backend — the paper's pthread-style persistent
// pinned pool vs OpenMP parallel regions. Same partitions, same kernels;
// only the dispatch/join mechanism differs, so the delta is pure runtime
// overhead (relevant for small matrices where a dispatch costs a
// noticeable fraction of one SpMV).
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 6;
  std::cout << "=== Ablation: thread-pool vs OpenMP dispatch ===\n["
            << cfg.describe() << "]"
            << (openmp_available() ? "" : " (OpenMP NOT available: both "
                                          "columns use the pool)")
            << "\n";

  TextTable table({"matrix", "threads", "pool ms", "openmp ms",
                   "pool/openmp"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    for (const std::size_t n : {2u, 4u, 8u}) {
      InstanceOptions pool;
      pool.pin_threads = cfg.pin_threads;
      pool.backend = Backend::kPool;
      SpmvInstance inst_pool(mc.mat, Format::kCsr, n, pool);
      const double t_pool =
          time_spmv(inst_pool, cfg.iterations, cfg.warmup);

      InstanceOptions omp;
      omp.backend = Backend::kOpenMP;
      omp.pin_threads = false;
      SpmvInstance inst_omp(mc.mat, Format::kCsr, n, omp);
      const double t_omp =
          time_spmv(inst_omp, cfg.iterations, cfg.warmup);

      table.add_row({mc.name, std::to_string(n),
                     fmt_fixed(t_pool * 1e3, 2),
                     fmt_fixed(t_omp * 1e3, 2),
                     fmt_fixed(t_omp > 0 ? t_pool / t_omp : 0.0, 2)});
    }
  });
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
