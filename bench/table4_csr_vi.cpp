// Regenerates Table IV of the paper: CSR-VI speedup over CSR at equal
// thread counts on the ttu > 5 subset (M0vi, split into MSvi / MLvi).
#include <iostream>

#include "spc/bench/experiments.hpp"

int main() {
  const spc::BenchConfig cfg = spc::BenchConfig::from_env();
  spc::run_compare_table(cfg, spc::Format::kCsrVi, /*vi_subset=*/true,
                         "table4_csr_vi.csv", std::cout);
  return 0;
}
