// Ablation of work partitioning (DESIGN.md §6, item 5): the paper's
// nnz-balanced row partitioning vs naive equal-row-count splitting, and
// CSC column partitioning with private-y reduction (§II-C), on matrices
// with skewed row lengths where the difference matters.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/formats/csr.hpp"
#include "spc/parallel/partition.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 8;
  const std::size_t mt =
      *std::max_element(cfg.threads.begin(), cfg.threads.end());
  std::cout << "=== Ablation: partitioning (nnz-balanced vs even rows vs "
               "CSC columns) ===\n[" << cfg.describe() << "]\n";

  TextTable table({"matrix", "imbalance(nnz)", "imbalance(even)",
                   "csr-nnz ms", "csr-even ms", "csc-cols ms"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    const Csr csr = Csr::from_triplets(mc.mat);
    const double imb_nnz = partition_imbalance(
        partition_rows_by_nnz(csr.row_ptr(), mt), csr.row_ptr());
    const double imb_even = partition_imbalance(
        partition_rows_even(mc.mat.nrows(), mt), csr.row_ptr());

    InstanceOptions balanced;
    balanced.pin_threads = cfg.pin_threads;
    SpmvInstance csr_nnz(mc.mat, Format::kCsr, mt, balanced);

    InstanceOptions even = balanced;
    even.balance_by_nnz = false;
    SpmvInstance csr_even(mc.mat, Format::kCsr, mt, even);

    SpmvInstance csc(mc.mat, Format::kCsc, mt, balanced);

    table.add_row(
        {mc.name, fmt_fixed(imb_nnz, 2), fmt_fixed(imb_even, 2),
         fmt_fixed(time_spmv(csr_nnz, cfg.iterations, cfg.warmup) * 1e3, 2),
         fmt_fixed(time_spmv(csr_even, cfg.iterations, cfg.warmup) * 1e3, 2),
         fmt_fixed(time_spmv(csc, cfg.iterations, cfg.warmup) * 1e3, 2)});
  });
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
