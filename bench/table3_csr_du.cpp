// Regenerates Table III of the paper: CSR-DU speedup over CSR at equal
// thread counts (avg/max/min and slowdown counts) for MS / ML / M0.
#include <iostream>

#include "spc/bench/experiments.hpp"

int main() {
  const spc::BenchConfig cfg = spc::BenchConfig::from_env();
  spc::run_compare_table(cfg, spc::Format::kCsrDu, /*vi_subset=*/false,
                         "table3_csr_du.csv", std::cout);
  return 0;
}
