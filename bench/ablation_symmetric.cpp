// Ablation: symmetry exploitation (§III-C, Lee et al.) against the
// paper's compression formats, on the symmetric members of the corpus.
// SymCsr halves index *and* value data — the largest ws reduction
// available — but pays a scatter (and a reduction when multithreaded).
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/formats/sym_csr.hpp"
#include "spc/spmv/sym_spmv.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {
namespace {

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  const std::size_t mt =
      *std::max_element(cfg.threads.begin(), cfg.threads.end());
  std::cout << "=== Ablation: symmetric storage (SSS) vs CSR / CSR-DU / "
               "CSR-VI ===\n[" << cfg.describe() << "]\n";

  TextTable table({"matrix", "format", "size/csr", "serial ms",
                   "x" + std::to_string(mt) + " ms"});
  std::size_t used = 0;
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    if (!SymCsr::applicable(mc.mat)) {
      return;
    }
    ++used;
    InstanceOptions opts;
    opts.pin_threads = cfg.pin_threads;

    SpmvInstance csr(mc.mat, Format::kCsr, 1, opts);
    const double csr_b = static_cast<double>(csr.matrix_bytes());
    for (const Format f :
         {Format::kCsr, Format::kCsrDu, Format::kCsrVi}) {
      SpmvInstance s1(mc.mat, f, 1, opts);
      SpmvInstance sn(mc.mat, f, mt, opts);
      table.add_row(
          {mc.name, format_name(f),
           fmt_fixed(static_cast<double>(s1.matrix_bytes()) / csr_b, 2),
           fmt_fixed(time_spmv(s1, cfg.iterations, cfg.warmup) * 1e3, 2),
           fmt_fixed(time_spmv(sn, cfg.iterations, cfg.warmup) * 1e3,
                     2)});
    }
    // SymCsr path (separate runner: scatter needs private-y reduction).
    SymSpmv sym1(mc.mat, 1);
    SymSpmv symn(mc.mat, mt, cfg.pin_threads);
    Rng rng(1);
    const Vector x = random_vector(mc.mat.ncols(), rng);
    Vector y(mc.mat.nrows(), 0.0);
    const auto time_sym = [&](SymSpmv& runner) {
      runner.run(x, y);
      Timer t;
      for (std::size_t i = 0; i < cfg.iterations; ++i) {
        runner.run(x, y);
      }
      return t.elapsed_s();
    };
    table.add_row(
        {mc.name, "sym-csr",
         fmt_fixed(static_cast<double>(sym1.matrix_bytes()) / csr_b, 2),
         fmt_fixed(time_sym(sym1) * 1e3, 2),
         fmt_fixed(time_sym(symn) * 1e3, 2)});
  });
  table.print(std::cout);
  std::cout << "(symmetric corpus members: " << used << ")\n\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
