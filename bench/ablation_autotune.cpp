// Ablation: autotuner quality — auto vs oracle-best vs always-CSR.
//
// The tuner's contract (tune/tuner.hpp) is two-sided: auto must track
// the oracle (the best pool format found by exhaustively measuring every
// candidate) and must never lose meaningfully to plain CSR, the default
// a user would otherwise run. This ablation measures both gaps per
// (matrix, threads) cell and geomeans them, then re-runs auto against
// the now-warm cache to verify the persistence contract: every warm
// selection must be a cache hit with probe_ns == 0.
//
// The tool owns its cache file (results/ablation_autotune_cache.jsonl)
// and truncates it on startup, so the first pass is always a genuine
// cold probe regardless of earlier runs.
//
// JSONL (under SPC_METRICS) carries the tuner provenance fields the
// harness reads off the instance — tuned / tune_source / probe_ns /
// cache_hit / matrix_fp — plus a "mode" extra (auto|oracle|csr|warm).
//
// Usage: ablation_autotune [--smoke] [--gate]
//   --smoke: few matrices, few iterations, short probes — CI wiring
//   check, not a measurement.
//   --gate: exit 1 unless geomean(auto/csr) >= 0.95 and the warm pass
//   was all cache hits — the CI regression gate for the tuner.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "spc/bench/harness.hpp"
#include "spc/support/stats.hpp"
#include "spc/support/strutil.hpp"
#include "spc/tune/tuner.hpp"

namespace spc {
namespace {

/// The tuner's candidate pool, measured exhaustively for the oracle.
const Format kPool[] = {Format::kCsr,   Format::kCsr16,
                        Format::kCsrDu, Format::kCsrDuRle,
                        Format::kCsrVi, Format::kCsrDuVi};

struct GeoMean {
  double log_sum = 0.0;
  std::size_t n = 0;
  void add(double v) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++n;
    }
  }
  double value() const {
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
  }
};

int run(bool smoke, bool gate) {
  BenchConfig cfg = BenchConfig::from_env();
  tune::TuneOptions topts;
  topts.cache_path = "results/ablation_autotune_cache.jsonl";
  if (smoke) {
    // Enough iterations for a stable per-cell median — the gate compares
    // medians, and single-digit sample counts on cache-resident smoke
    // matrices swing by tens of percent call to call. The probe keeps
    // its default 3x4 shape: it is microseconds here and shrinking it
    // just makes auto's pick (and thus the gate) noisy.
    cfg.iterations = 16;
    cfg.warmup = 2;
    cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 3;
    cfg.threads = {1, 2};
  }
  // Cold pass must actually probe: drop any cache left by earlier runs.
  std::remove(topts.cache_path.c_str());

  std::cout << "=== Ablation: autotuner (auto vs oracle vs csr) ===\n["
            << cfg.describe() << (smoke ? ", smoke" : "") << "]\n";

  TextTable table({"matrix", "cls", "threads", "auto", "source",
                   "probe_ms", "auto MFLOPS", "csr MFLOPS", "oracle",
                   "oracle MFLOPS", "vs csr", "vs oracle", "warm"});
  std::vector<std::vector<std::string>> csv_rows;
  GeoMean vs_csr, vs_oracle;
  std::size_t cells = 0, auto_is_oracle = 0;
  std::size_t warm_misses = 0, warm_probed = 0;

  for_each_matrix(cfg, [&](MatrixCase& mc) {
    for (const std::size_t n : cfg.threads) {
      InstanceOptions opts;
      opts.pin_threads = cfg.pin_threads;

      // 1. Cold auto: probe (first thread count) or cache hit on the
      //    cells the earlier thread counts of this matrix warmed.
      tune::TuneReport rep;
      SpmvInstance auto_inst =
          tune::auto_instance(mc.mat, n, opts, topts, &rep);
      const RunMetrics ma =
          time_spmv_metrics(auto_inst, cfg.iterations, cfg.warmup);
      emit_metrics_record("ablation_autotune", mc, auto_inst, ma, 0.0,
                          {{"mode", "auto"}});

      // 2. The exhaustive oracle over the candidate pool; CSR's own
      //    measurement doubles as the always-CSR baseline. All ratios
      //    use per-iteration *medians* — separate timing calls on
      //    cache-resident matrices drift by tens of percent in the
      //    mean, and the gate must not fail on that noise.
      const double auto_med = median(ma.sample_seconds);
      double csr_mflops = 0.0, csr_med = 0.0;
      double oracle_mflops = 0.0, oracle_med = 0.0;
      Format oracle_fmt = Format::kCsr;
      for (const Format f : kPool) {
        try {
          SpmvInstance inst(mc.mat, f, n, opts);
          const RunMetrics m =
              time_spmv_metrics(inst, cfg.iterations, cfg.warmup);
          emit_metrics_record("ablation_autotune", mc, inst, m, 0.0,
                              {{"mode", f == Format::kCsr ? "csr"
                                                          : "oracle"}});
          const double med = median(m.sample_seconds);
          if (f == Format::kCsr) {
            csr_mflops = m.mflops;
            csr_med = med;
          }
          if (med > 0.0 && (oracle_med == 0.0 || med < oracle_med)) {
            oracle_med = med;
            oracle_mflops = m.mflops;
            oracle_fmt = f;
          }
        } catch (const Error&) {
          // Pool format inapplicable here (e.g. csr16 column range).
        }
      }

      // 3. Warm auto: the cold pass stored this exact key, so this must
      //    be a pure cache hit that skips the probe entirely.
      tune::TuneReport warm;
      SpmvInstance warm_inst =
          tune::auto_instance(mc.mat, n, opts, topts, &warm);
      warm_misses += warm.cache_hit ? 0 : 1;
      warm_probed += warm.probe_ns == 0 ? 0 : 1;
      {
        const RunMetrics mw = time_spmv_metrics(warm_inst, 1, 0);
        emit_metrics_record("ablation_autotune", mc, warm_inst, mw, 0.0,
                            {{"mode", "warm"}});
      }

      // Time-domain median ratios: > 1 means auto's median iteration
      // was faster than the baseline's.
      const double r_csr = auto_med > 0.0 ? csr_med / auto_med : 0.0;
      const double r_oracle =
          auto_med > 0.0 ? oracle_med / auto_med : 0.0;
      vs_csr.add(r_csr);
      vs_oracle.add(r_oracle);
      ++cells;
      auto_is_oracle += auto_inst.format() == oracle_fmt ? 1 : 0;

      const std::string warm_cell =
          warm.cache_hit && warm.probe_ns == 0
              ? "hit"
              : (warm.cache_hit ? "hit+probe!" : "MISS");
      table.add_row({mc.name, mc.cls, std::to_string(n),
                     format_name(auto_inst.format()), rep.source,
                     fmt_fixed(static_cast<double>(rep.probe_ns) * 1e-6, 1),
                     fmt_fixed(ma.mflops, 1), fmt_fixed(csr_mflops, 1),
                     format_name(oracle_fmt), fmt_fixed(oracle_mflops, 1),
                     fmt_fixed(r_csr, 2), fmt_fixed(r_oracle, 2),
                     warm_cell});
      csv_rows.push_back(
          {mc.name, mc.cls, std::to_string(n),
           format_name(auto_inst.format()), rep.source,
           std::to_string(rep.probe_ns), fmt_fixed(ma.mflops, 1),
           fmt_fixed(csr_mflops, 1), format_name(oracle_fmt),
           fmt_fixed(oracle_mflops, 1), fmt_fixed(r_csr, 3),
           fmt_fixed(r_oracle, 3), warm_cell});
    }
  });
  table.print(std::cout);

  const double g_csr = vs_csr.value();
  const double g_oracle = vs_oracle.value();
  std::cout << "\nsummary over " << cells << " (matrix, threads) cells:\n"
            << "  geomean auto/csr:    " << fmt_fixed(g_csr, 3) << "\n"
            << "  geomean auto/oracle: " << fmt_fixed(g_oracle, 3) << "\n"
            << "  auto == oracle pick: " << auto_is_oracle << "/" << cells
            << "\n"
            << "  warm pass: " << (cells - warm_misses) << "/" << cells
            << " cache hits, " << warm_probed << " probed\n";

  write_csv("ablation_autotune.csv",
            {"matrix", "cls", "threads", "auto_format", "source",
             "probe_ns", "auto_mflops", "csr_mflops", "oracle_format",
             "oracle_mflops", "auto_vs_csr", "auto_vs_oracle", "warm"},
            csv_rows);
  std::cout << "\ndata: ablation_autotune.csv\nnote: \"vs csr\" > 1 "
               "means auto beat the CSR default; \"vs oracle\" is the "
               "fraction of the exhaustive-search optimum auto reached "
               "(1.00 = matched it). The warm column must read \"hit\" "
               "everywhere — anything else means the tuning cache failed "
               "its skip-the-probe contract.\n";

  if (gate) {
    bool ok = true;
    if (cells == 0) {
      std::cout << "\nGATE FAIL: no cells measured\n";
      ok = false;
    }
    if (g_csr < 0.95) {
      std::cout << "\nGATE FAIL: geomean auto/csr " << fmt_fixed(g_csr, 3)
                << " < 0.95 — auto is >5% slower than the CSR default\n";
      ok = false;
    }
    if (warm_misses > 0 || warm_probed > 0) {
      std::cout << "\nGATE FAIL: warm pass had " << warm_misses
                << " cache misses and " << warm_probed
                << " probes — the tuning cache is not being reused\n";
      ok = false;
    }
    if (ok) {
      std::cout << "\nGATE PASS: auto within 5% of CSR (geomean "
                << fmt_fixed(g_csr, 3) << "), warm pass all cache hits\n";
    }
    return ok ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace spc

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else {
      std::cerr << "usage: ablation_autotune [--smoke] [--gate]\n";
      return 2;
    }
  }
  return spc::run(smoke, gate);
}
