// Ablation: traffic amortization (SpMM over k vectors) vs traffic
// compression (CSR-VI), and their composition. Both attack the same
// §II-B bottleneck: SpMM divides the matrix traffic per vector by k;
// CSR-VI shrinks the matrix itself. Per-vector time is the comparable
// unit.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/spmv/spmm.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {
namespace {

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 6;
  std::cout << "=== Ablation: SpMM amortization vs CSR-VI compression "
               "(per-vector ms) ===\n[" << cfg.describe() << "]\n";

  TextTable table({"matrix", "k", "csr spmm", "csr-vi spmm",
                   "csr k-spmv", "amortization gain"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    const Csr csr = Csr::from_triplets(mc.mat);
    const CsrVi vi = CsrVi::from_triplets(mc.mat);
    Rng rng(1);
    for (const index_t k : {1u, 2u, 4u, 8u}) {
      const Vector X =
          random_vector(mc.mat.ncols() * k, rng);
      Vector Y(static_cast<usize_t>(mc.mat.nrows()) * k, 0.0);

      const auto per_vector_ms = [&](auto&& fn) {
        fn();  // warmup
        Timer t;
        for (std::size_t i = 0; i < cfg.iterations; ++i) {
          fn();
        }
        return t.elapsed_ms() / static_cast<double>(cfg.iterations) /
               static_cast<double>(k);
      };

      const double t_spmm = per_vector_ms(
          [&] { spmm(csr, X.data(), Y.data(), k); });
      const double t_vi = per_vector_ms(
          [&] { spmm(vi, X.data(), Y.data(), k); });
      // Baseline: k separate SpMVs (strided views are not contiguous, so
      // run k times on the first vector — same traffic per run).
      // per_vector_ms already divides by k, giving per-SpMV time.
      const double t_repeat = per_vector_ms([&] {
        for (index_t c = 0; c < k; ++c) {
          spmm(csr, X.data(), Y.data(), 1);
        }
      });

      table.add_row({mc.name, std::to_string(k), fmt_fixed(t_spmm, 3),
                     fmt_fixed(t_vi, 3), fmt_fixed(t_repeat, 3),
                     fmt_fixed(t_spmm > 0 ? t_repeat / t_spmm : 0.0, 2)});
    }
  });
  table.print(std::cout);
  std::cout << "gain > 1: SpMM amortizes matrix traffic across vectors\n\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
