// Ablation: NUMA data placement — first-touch per-thread slices and the
// x-vector policies, across thread placements and formats.
//
// On a multi-socket ccNUMA machine the master-touched arrays of the
// default layout put every matrix page on one node, so remote threads
// stream at interconnect bandwidth (the flat-scaling failure mode of
// Schubert/Hager/Fehske). This ablation measures what each placement
// buys: rows are (placement in {close, spread}) x (SPC_NUMA policy in
// {off, local, replicate, interleaved}) x format x threads, with the
// page-residency check (sampled via move_pages) showing whether the
// repacked slices actually landed on their owners' nodes. On a
// single-node machine every policy is bit-identical and the deltas
// collapse to the repack's (off-timed-path) noise floor.
//
// JSONL (under SPC_METRICS) carries "numa", "placement", and the
// numa_pages_sampled/numa_pages_local residency fields;
// profile_report groups by (format, isa, numa, threads).
#include <cstdlib>
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/support/first_touch.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

void run() {
  // The sweep sets policies programmatically; a stray SPC_NUMA in the
  // environment would override every cell to one value.
  ::unsetenv("SPC_NUMA");

  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 4;
  const Topology topo = discover_topology();
  std::cout << "=== Ablation: NUMA placement (" << topo.num_nodes()
            << " node(s)) ===\n[" << cfg.describe() << "]\n";

  const Format formats[] = {Format::kCsr, Format::kCsrDu, Format::kCsrVi};
  const Placement placements[] = {Placement::kCloseFirst,
                                  Placement::kSpreadCaches};
  const NumaPolicy policies[] = {NumaPolicy::kOff, NumaPolicy::kLocal,
                                 NumaPolicy::kReplicate,
                                 NumaPolicy::kInterleave};

  TextTable table({"matrix", "format", "placement", "numa", "threads",
                   "MFLOPS", "vs off", "resident"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    for (const Format fmt : formats) {
      for (const Placement place : placements) {
        for (const std::size_t n : cfg.threads) {
          if (n < 2) {
            continue;  // placement only matters multithreaded
          }
          double mflops_off = 0.0;
          for (const NumaPolicy pol : policies) {
            InstanceOptions opts;
            opts.pin_threads = true;
            opts.placement = place;
            opts.numa = pol;
            SpmvInstance inst(mc.mat, fmt, n, opts);
            RunMetrics m =
                time_spmv_metrics(inst, cfg.iterations, cfg.warmup);
            if (pol == NumaPolicy::kOff) {
              mflops_off = m.mflops;
            }
            const SpmvInstance::NumaResidency res =
                inst.matrix_residency();
            std::string resident = "-";
            if (res.available && res.pages_sampled > 0) {
              resident = fmt_fixed(100.0 *
                                       static_cast<double>(res.pages_local) /
                                       static_cast<double>(res.pages_sampled),
                                   0) +
                         "%";
            }
            table.add_row(
                {mc.name, format_name(fmt), placement_name(place),
                 numa_policy_name(inst.numa_policy()), std::to_string(n),
                 fmt_fixed(m.mflops, 1),
                 mflops_off > 0.0 ? fmt_fixed(m.mflops / mflops_off, 2)
                                  : "-",
                 resident});
            emit_metrics_record("ablation_numa", mc, inst, m, 0.0,
                                {{"placement", placement_name(place)}});
          }
        }
      }
    }
  });
  table.print(std::cout);
  std::cout << "\nnote: \"numa\" is the policy in effect after "
               "resolution — auto collapses to off on single-node "
               "machines; \"resident\" samples the repacked blocks via "
               "move_pages (\"-\" when placement is off or the query is "
               "unavailable).\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
