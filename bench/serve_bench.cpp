// serve_bench — closed-loop load generator for the serving engine.
//
// Scenario: M resident matrices, C client threads firing y = A*x
// requests back-to-back for a fixed wall duration. Two configurations
// run over the identical workload:
//
//   dedicated  each client drives its own SpmvInstance (its own worker
//              pool) directly — the pre-engine model, one pool per
//              tenant, no admission control;
//   engine     all clients go through one spc::engine::Engine sharing
//              a single pool (register once, run_sync per request).
//
// Reported: total throughput (req/s) and client-observed p50/p99
// latency for both, plus the engine's internal queue-wait share, then
// an overload phase (2x clients against a tiny bounded queue) that must
// produce rejections — never a hang — and a degraded-mode count.
//
// Flags:
//   --smoke        tiny sizes/durations; exit code checks sanity only
//                  (served == submitted-rejected, overload rejects,
//                  engine serves every tenant) — CI runs this leg
//   --gate         additionally require engine >= 0.9x dedicated
//                  throughput (not CI-enforced: 1-CPU runners make the
//                  ratio noise-dominated)
//   --ms N         per-phase duration (default 2000, smoke 300)
//   --clients N    client threads (default: one per tenant)
//   --threads N    pool threads per pool (default: hardware)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "spc/engine/engine.hpp"
#include "spc/gen/generators.hpp"
#include "spc/support/timing.hpp"

using namespace spc;

namespace {

struct Workload {
  std::string id;
  Triplets t;
};

struct ClientResult {
  std::uint64_t requests = 0;
  std::vector<std::uint64_t> latency_ns;
};

std::uint64_t pct_ns(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1));
  return v[i];
}

void report(const char* label, std::uint64_t total_reqs, std::uint64_t ms,
            std::vector<std::uint64_t>& lat) {
  const double rps = ms == 0 ? 0.0
                             : static_cast<double>(total_reqs) * 1000.0 /
                                   static_cast<double>(ms);
  std::printf("%-10s %8llu req in %5llu ms  %10.0f req/s  p50 %7.1f us  "
              "p99 %7.1f us\n",
              label, static_cast<unsigned long long>(total_reqs),
              static_cast<unsigned long long>(ms), rps,
              static_cast<double>(pct_ns(lat, 0.50)) / 1e3,
              static_cast<double>(pct_ns(lat, 0.99)) / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::uint64_t ms = 0;
  std::size_t clients = 0;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--gate") {
      gate = true;
    } else if (a == "--ms" && i + 1 < argc) {
      ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--clients" && i + 1 < argc) {
      clients = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--threads" && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: serve_bench [--smoke] [--gate] [--ms N] "
                   "[--clients N] [--threads N]\n");
      return 2;
    }
  }
  if (ms == 0) {
    ms = smoke ? 300 : 2000;
  }

  const index_t side = smoke ? 48 : 192;
  std::vector<Workload> work;
  work.push_back({"lap-a", gen_laplacian_2d(side, side)});
  work.push_back({"lap-b", gen_laplacian_2d(side + 16, side - 16)});
  work.push_back({"lap-c", gen_laplacian_2d(side / 2, side * 2)});
  if (clients == 0) {
    clients = work.size();
  }

  // --- dedicated: one instance (and pool) per client, driven directly.
  InstanceOptions iopts;
  iopts.pin_threads = false;  // harness may run inside restricted cpusets
  std::vector<ClientResult> ded(clients);
  {
    std::vector<std::unique_ptr<SpmvInstance>> insts;
    for (std::size_t c = 0; c < clients; ++c) {
      const Workload& w = work[c % work.size()];
      insts.push_back(std::make_unique<SpmvInstance>(
          w.t, Format::kCsr,
          threads == 0 ? std::thread::hardware_concurrency() : threads,
          iopts));
    }
    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        const Workload& w = work[c % work.size()];
        const Vector x = const_vector(w.t.ncols(), 1.0);
        Vector y(w.t.nrows(), 0.0);
        while (!stop.load(std::memory_order_acquire)) {
          const std::uint64_t t0 = now_ns();
          insts[c]->run(x, y);
          ded[c].latency_ns.push_back(now_ns() - t0);
          ++ded[c].requests;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    stop.store(true, std::memory_order_release);
    for (auto& th : pool) {
      th.join();
    }
  }

  // --- engine: one shared pool behind the admission queue.
  engine::EngineOptions eopts;
  eopts.pool_threads = threads;
  eopts.pin_threads = false;
  eopts.overflow = engine::OverflowPolicy::kBlock;  // closed loop: no drops
  engine::Engine eng(eopts);
  for (const Workload& w : work) {
    const Status st = eng.register_matrix(w.id, w.t);
    if (!st.ok()) {
      std::fprintf(stderr, "register %s: %s\n", w.id.c_str(),
                   st.to_string().c_str());
      return 1;
    }
    if (!eng.warm(w.id).ok()) {
      return 1;
    }
  }
  std::vector<ClientResult> srv(clients);
  {
    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        const Workload& w = work[c % work.size()];
        const Vector x = const_vector(w.t.ncols(), 1.0);
        Vector y;
        while (!stop.load(std::memory_order_acquire)) {
          const std::uint64_t t0 = now_ns();
          if (eng.run_sync(w.id, x, &y).ok()) {
            srv[c].latency_ns.push_back(now_ns() - t0);
            ++srv[c].requests;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    stop.store(true, std::memory_order_release);
    for (auto& th : pool) {
      th.join();
    }
    eng.drain();
  }

  std::uint64_t ded_total = 0, srv_total = 0;
  std::vector<std::uint64_t> ded_lat, srv_lat;
  for (std::size_t c = 0; c < clients; ++c) {
    ded_total += ded[c].requests;
    srv_total += srv[c].requests;
    ded_lat.insert(ded_lat.end(), ded[c].latency_ns.begin(),
                   ded[c].latency_ns.end());
    srv_lat.insert(srv_lat.end(), srv[c].latency_ns.begin(),
                   srv[c].latency_ns.end());
  }
  std::printf("serve_bench: %zu tenants, %zu clients, %zu pool threads%s\n",
              work.size(), clients,
              threads == 0
                  ? static_cast<std::size_t>(
                        std::thread::hardware_concurrency())
                  : threads,
              smoke ? " [smoke]" : "");
  report("dedicated", ded_total, ms, ded_lat);
  report("engine", srv_total, ms, srv_lat);
  const double ratio = ded_total == 0
                           ? 1.0
                           : static_cast<double>(srv_total) /
                                 static_cast<double>(ded_total);
  const engine::Engine::Stats s1 = eng.stats();
  std::printf("ratio engine/dedicated: %.3f  (serial fallbacks: %llu, "
              "batches: %llu)\n",
              ratio, static_cast<unsigned long long>(s1.serial_runs),
              static_cast<unsigned long long>(s1.batches));

  // Sanity: the closed loop with kBlock must not lose or reject anything.
  bool ok = s1.rejected == 0 && s1.completed == s1.submitted;
  for (std::size_t c = 0; c < clients; ++c) {
    ok = ok && srv[c].requests > 0;  // every tenant made progress
  }

  // --- overload: 2x clients against a tiny bounded reject queue.
  {
    engine::EngineOptions oopts;
    oopts.pool_threads = threads;
    oopts.pin_threads = false;
    oopts.queue_capacity = 4;
    oopts.dispatchers = 1;
    oopts.overflow = engine::OverflowPolicy::kReject;
    engine::Engine oeng(oopts);
    for (const Workload& w : work) {
      if (!oeng.register_matrix(w.id, w.t).ok()) {
        return 1;
      }
    }
    const std::size_t oclients = 2 * clients;
    std::atomic<std::uint64_t> served{0}, dropped{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    for (std::size_t c = 0; c < oclients; ++c) {
      pool.emplace_back([&, c] {
        const Workload& w = work[c % work.size()];
        const Vector x = const_vector(w.t.ncols(), 1.0);
        while (!stop.load(std::memory_order_acquire)) {
          engine::Future f = oeng.submit(w.id, x);
          if (f.status().ok()) {
            served.fetch_add(1);
          } else {
            dropped.fetch_add(1);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms / 2 + 1));
    stop.store(true, std::memory_order_release);
    for (auto& th : pool) {
      th.join();
    }
    oeng.drain();
    const engine::Engine::Stats s2 = oeng.stats();
    std::printf("overload (%zu clients, queue 4): served %llu, rejected "
                "%llu (%.1f%% shed)\n",
                oclients, static_cast<unsigned long long>(served.load()),
                static_cast<unsigned long long>(dropped.load()),
                100.0 * static_cast<double>(dropped.load()) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1, served + dropped)));
    // Under 2x overload the bounded queue must shed load as prompt
    // rejections (and still serve some), not buffer or block.
    ok = ok && served.load() > 0 && dropped.load() > 0 &&
         s2.rejected == dropped.load();
  }

  if (gate && ratio < 0.9) {
    std::fprintf(stderr,
                 "GATE FAIL: engine throughput %.3fx dedicated (< 0.9)\n",
                 ratio);
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "serve_bench: sanity checks FAILED\n");
    return 1;
  }
  std::printf("serve_bench: OK\n");
  return 0;
}
