// Ablation: column tiling — stripe width x format x threads.
//
// Column tiling (spmv/tiling.hpp) promises two coupled effects, and
// this ablation measures both axes per cell:
//  * compression: stripe-local column deltas are bounded by the stripe
//    width, so narrower stripes push CSR-DU units into the u8 class —
//    the "u8-unit%" column, read from the instance's decode-side unit
//    histogram (stripe-local for tiled instances);
//  * locality: each stripe's x gathers land in a cache-resident window —
//    the ns/nnz movement vs the untiled baseline of the same
//    (matrix, format, threads) cell.
//
// The sweep forces each stripe width (SPC_TILE semantics), with "off" as
// the untiled baseline; the summary aggregates geomean ns/nnz per
// (format, tile) at the highest thread count and reports the best stripe
// vs untiled for each format. On graph-class matrices the u8-unit% should
// rise strictly as the stripe narrows; banded/fem rows barely move (their
// deltas are already short) and mostly pay segment overhead — which is
// exactly why the auto planner declines them.
//
// JSONL (under SPC_METRICS) carries "tiling" / "stripe_bytes";
// profile_report groups by (format, isa, numa, schedule, tiling,
// threads), and the ledger key splits on the same fields.
//
// Usage: ablation_tiling [--smoke]
//   --smoke: a few matrices, few iterations — CI wiring check, not a
//   measurement.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "spc/bench/harness.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

struct CellStat {
  double log_ns_sum = 0.0;  ///< for the geo-mean of ns/nnz
  std::size_t n = 0;
};

std::string u8_unit_pct(const SpmvInstance& inst) {
  const CsrDu::UnitHistogram* h = inst.du_histogram();
  if (h == nullptr || h->units == 0) {
    return "-";
  }
  return fmt_fixed(100.0 * static_cast<double>(h->units_per_class[0]) /
                       static_cast<double>(h->units),
                   1);
}

void run(bool smoke) {
  // The sweep sets tiling programmatically; a stray SPC_TILE in the
  // environment would override every cell to one value.
  ::unsetenv("SPC_TILE");

  BenchConfig cfg = BenchConfig::from_env();
  if (smoke) {
    cfg.iterations = 8;
    cfg.warmup = 1;
    cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 3;
    cfg.threads = {1};
  }
  std::cout << "=== Ablation: column tiling ===\n[" << cfg.describe()
            << (smoke ? ", smoke" : "") << "]\n";

  struct Width {
    const char* label;
    TileConfig tile;
  };
  // Widest to narrowest so each row's u8-unit% trend reads top-down;
  // "off" is the untiled baseline each cell normalizes against.
  const Width widths[] = {
      {"off", {TileMode::kOff, 0}},
      {"256k", {TileMode::kForced, 256u << 10}},
      {"64k", {TileMode::kForced, 64u << 10}},
      {"16k", {TileMode::kForced, 16u << 10}},
      {"4k", {TileMode::kForced, 4u << 10}},
  };
  const Format formats[] = {Format::kCsr, Format::kCsrDu, Format::kCsrDuVi};

  std::size_t max_threads = 1;
  for (const std::size_t n : cfg.threads) {
    max_threads = std::max(max_threads, n);
  }

  TextTable table({"matrix", "cls", "format", "tile", "threads", "MFLOPS",
                   "vs untiled", "u8-unit%", "stripes", "bytes"});
  // (format, tile) at max_threads -> aggregate for the summary. The
  // width index keeps the off..4k sweep order in the map.
  std::map<std::pair<std::string, std::size_t>, CellStat> by_cell;
  std::vector<std::vector<std::string>> csv_rows;

  for_each_matrix(cfg, [&](MatrixCase& mc) {
    for (const Format fmt : formats) {
      for (const std::size_t n : cfg.threads) {
        double mflops_untiled = 0.0;
        for (std::size_t w = 0; w < std::size(widths); ++w) {
          InstanceOptions opts;
          opts.pin_threads = cfg.pin_threads;
          opts.tiling = widths[w].tile;
          SpmvInstance inst(mc.mat, fmt, n, opts);
          RunMetrics m = time_spmv_metrics(inst, cfg.iterations, cfg.warmup);
          if (widths[w].tile.mode == TileMode::kOff) {
            mflops_untiled = m.mflops;
          }
          const std::string u8pct = u8_unit_pct(inst);
          table.add_row(
              {mc.name, mc.cls, format_name(fmt), widths[w].label,
               std::to_string(n), fmt_fixed(m.mflops, 1),
               mflops_untiled > 0.0
                   ? fmt_fixed(m.mflops / mflops_untiled, 2)
                   : "-",
               u8pct,
               inst.tiling_active()
                   ? std::to_string(inst.tile_stripes())
                   : "-",
               human_bytes(inst.matrix_bytes())});
          csv_rows.push_back(
              {mc.name, mc.cls, format_name(fmt), widths[w].label,
               std::to_string(n), fmt_fixed(m.mflops, 1),
               mflops_untiled > 0.0
                   ? fmt_fixed(m.mflops / mflops_untiled, 3)
                   : "",
               u8pct, std::to_string(inst.matrix_bytes())});
          emit_metrics_record("ablation_tiling", mc, inst, m, 0.0, {});

          if (n == max_threads) {
            const double nnz_total = static_cast<double>(inst.nnz()) *
                                     static_cast<double>(cfg.iterations);
            if (nnz_total > 0.0 && m.seconds > 0.0) {
              CellStat& c = by_cell[{format_name(fmt), w}];
              c.log_ns_sum += std::log(m.seconds * 1e9 / nnz_total);
              ++c.n;
            }
          }
        }
      }
    }
  });
  table.print(std::cout);

  TextTable summary(
      {"format", "tile", "cells", "geomean ns/nnz", "vs untiled"});
  for (const Format fmt : formats) {
    const std::string fname = format_name(fmt);
    double untiled_geo = 0.0;
    for (std::size_t w = 0; w < std::size(widths); ++w) {
      const auto it = by_cell.find({fname, w});
      if (it == by_cell.end() || it->second.n == 0) {
        continue;
      }
      const CellStat& c = it->second;
      const double geo =
          std::exp(c.log_ns_sum / static_cast<double>(c.n));
      if (widths[w].tile.mode == TileMode::kOff) {
        untiled_geo = geo;
      }
      summary.add_row({fname, widths[w].label, std::to_string(c.n),
                       fmt_fixed(geo, 3),
                       untiled_geo > 0.0 ? fmt_fixed(untiled_geo / geo, 2)
                                         : "-"});
    }
  }
  std::cout << "\nper-(format, tile) aggregate at " << max_threads
            << " thread(s):\n";
  summary.print(std::cout);

  write_csv("ablation_tiling.csv",
            {"matrix", "cls", "format", "tile", "threads", "mflops",
             "speedup_vs_untiled", "u8_unit_pct", "matrix_bytes"},
            csv_rows);
  std::cout
      << "\ndata: ablation_tiling.csv\nnote: \"u8-unit%\" is the share "
         "of CSR-DU ctl units in the one-byte delta class of the "
         "instance's decode-side histogram (stripe-local when tiled; "
         "RLE units classify by their stride); \"vs untiled\" > 1 means "
         "the tiled layout is faster. Forced widths bypass the auto "
         "planner — small matrices whose x already fits cache are "
         "expected to lose here; the planner exists to decline them.\n";
}

}  // namespace
}  // namespace spc

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: ablation_tiling [--smoke]\n";
      return 2;
    }
  }
  spc::run(smoke);
  return 0;
}
