// Ablation of value compression (DESIGN.md §6, item 3): how the
// total-to-unique ratio drives CSR-VI and CSR-DU-VI size and speed. The
// structure is held fixed (banded) while the value pool sweeps from 2
// distinct values to fully random, crossing the u8/u16 index widths and
// the paper's ttu > 5 applicability threshold.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/gen/generators.hpp"
#include "spc/mm/stats.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

void run() {
  const BenchConfig cfg = BenchConfig::from_env();
  std::cout << "=== Ablation: value compression vs total-to-unique ratio "
               "===\n[" << cfg.describe() << "]\n";

  const index_t n = cfg.scale == CorpusScale::kBench   ? 200000
                    : cfg.scale == CorpusScale::kSmall ? 40000
                                                       : 2000;
  TextTable table({"value pool", "ttu", "vi width", "vi size/csr",
                   "du-vi size/csr", "csr ms", "vi ms", "du-vi ms",
                   "vi speedup"});
  for (const std::uint32_t pool :
       {2u, 8u, 64u, 250u, 1000u, 20000u, 0u}) {
    Rng rng(pool + 1);
    const Triplets t = gen_banded(
        n, 60, 10, rng,
        pool ? ValueModel::pooled(pool) : ValueModel::random());
    const MatrixStats s = compute_stats(t);

    SpmvInstance csr(t, Format::kCsr);
    SpmvInstance vi(t, Format::kCsrVi);
    SpmvInstance duvi(t, Format::kCsrDuVi);
    const double csr_b = static_cast<double>(csr.matrix_bytes());

    const double t_csr = time_spmv(csr, cfg.iterations, cfg.warmup);
    const double t_vi = time_spmv(vi, cfg.iterations, cfg.warmup);
    const double t_duvi = time_spmv(duvi, cfg.iterations, cfg.warmup);

    const char* width = s.unique_values <= 256     ? "u8"
                        : s.unique_values <= 65536 ? "u16"
                                                   : "u32";
    table.add_row({pool ? std::to_string(pool) : "random",
                   fmt_fixed(s.ttu, 1), width,
                   fmt_fixed(static_cast<double>(vi.matrix_bytes()) / csr_b, 2),
                   fmt_fixed(static_cast<double>(duvi.matrix_bytes()) / csr_b, 2),
                   fmt_fixed(t_csr * 1e3, 2), fmt_fixed(t_vi * 1e3, 2),
                   fmt_fixed(t_duvi * 1e3, 2),
                   fmt_fixed(t_vi > 0 ? t_csr / t_vi : 0.0, 2)});
  }
  table.print(std::cout);
  std::cout << "expected shape: size ratio and speedup improve with ttu; "
               "the paper's ttu>5 rule marks where vi stops paying off\n\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
