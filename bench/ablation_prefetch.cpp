// Ablation: software prefetch of the irregular x gathers (§III-A's
// locality problem attacked at the instruction level instead of by
// reordering/blocking). Compares the plain CSR kernel against prefetch
// distances 4/16/64 on matrices whose column patterns defeat the
// hardware prefetcher (uniform random) and on friendly banded ones.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/formats/csr.hpp"
#include "spc/mm/vector.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {
namespace {

template <typename Fn>
double time_loop(Fn&& fn, std::size_t iters) {
  fn();
  Timer t;
  for (std::size_t i = 0; i < iters; ++i) {
    fn();
  }
  return t.elapsed_s();
}

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 8;
  std::cout << "=== Ablation: software prefetch of x gathers ===\n["
            << cfg.describe() << "]\n";
  TextTable table({"matrix", "plain ms", "pf4", "pf16", "pf64",
                   "best speedup"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    const Csr m = Csr::from_triplets(mc.mat);
    Rng rng(1);
    const Vector x = random_vector(mc.mat.ncols(), rng);
    Vector y(mc.mat.nrows(), 0.0);
    const index_t n = mc.mat.nrows();

    const double t0 = time_loop(
        [&] { spmv_csr_range(m, x.data(), y.data(), 0, n); },
        cfg.iterations);
    const double t4 = time_loop(
        [&] {
          spmv_csr_prefetch_range<std::uint32_t, 4>(m, x.data(), y.data(),
                                                    0, n);
        },
        cfg.iterations);
    const double t16 = time_loop(
        [&] {
          spmv_csr_prefetch_range<std::uint32_t, 16>(m, x.data(),
                                                     y.data(), 0, n);
        },
        cfg.iterations);
    const double t64 = time_loop(
        [&] {
          spmv_csr_prefetch_range<std::uint32_t, 64>(m, x.data(),
                                                     y.data(), 0, n);
        },
        cfg.iterations);
    const double best = std::min({t4, t16, t64});
    table.add_row({mc.name, fmt_fixed(t0 * 1e3, 2),
                   fmt_fixed(t4 * 1e3, 2), fmt_fixed(t16 * 1e3, 2),
                   fmt_fixed(t64 * 1e3, 2),
                   fmt_fixed(best > 0 ? t0 / best : 0.0, 2)});
  });
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
