// Reproduces the paper's Fig. 7/8-style per-format breakdown from the
// JSONL metrics records the harness emits under SPC_METRICS.
//
// The paper argues CSR-DU/CSR-VI through per-kernel cycles,
// instructions, and cache misses (§VII): compression should trade a few
// decode instructions for fewer LLC misses per non-zero. This report
// makes that trade visible:
//   1. a per-(format, threads) aggregate — MFLOPS, speedup vs CSR, IPC,
//      cycles/nnz, LLC misses per thousand nnz, busy-time imbalance;
//   2. a per-matrix detail at the highest recorded thread count, sorted
//      by speedup the way Figs. 7/8 sort their bars.
//
// Usage: profile_report [metrics.jsonl]   (default: $SPC_METRICS)
// Cells read "-" where hardware counters were unavailable; wall-clock
// columns are always present.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "spc/bench/harness.hpp"
#include "spc/obs/json.hpp"
#include "spc/support/env.hpp"
#include "spc/support/strutil.hpp"

namespace {

struct Record {
  std::string bench;
  std::string matrix;
  std::string set;
  std::string format;
  std::string isa;
  std::string numa;
  std::string schedule;
  std::string tiling;
  std::string tuned;
  std::size_t threads = 1;
  std::uint64_t probe_ns = 0;
  double mflops = 0.0;
  double speedup = 0.0;  ///< 0 when absent
  double imbalance = 0.0;
  std::uint64_t nnz = 0;
  bool has_counters = false;
  double ipc = 0.0;
  double cycles_per_nnz = 0.0;
  bool has_llc = false;
  double misses_per_knnz = 0.0;
  double bytes_per_nnz = 0.0;    ///< 0 when absent (pre-ledger record)
  double frac_roofline = 0.0;    ///< 0 when no roofline attribution
  /// Symmetric-format runs only: the reduction phase's share of the
  /// timed loop, and the window-rows fraction (reduce_ns / seconds).
  bool has_sym = false;
  double reduce_share = 0.0;
  double sym_window_frac = 0.0;
};

double num(const spc::obs::Json& j, const char* key, double dflt = 0.0) {
  const spc::obs::Json* v = j.find(key);
  return v != nullptr ? v->as_double(dflt) : dflt;
}

std::string str(const spc::obs::Json& j, const char* key) {
  const spc::obs::Json* v = j.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

bool parse_record(const std::string& line, Record& r) {
  spc::obs::Json j;
  try {
    j = spc::obs::Json::parse(line);
  } catch (const spc::Error&) {
    return false;
  }
  if (!j.is_object()) {
    return false;
  }
  r.bench = str(j, "bench");
  r.matrix = str(j, "matrix");
  r.set = str(j, "set");
  r.format = str(j, "format");
  // Records predating the dispatch layer carry no "isa" field; they were
  // produced by the scalar kernels.
  r.isa = str(j, "isa");
  if (r.isa.empty()) {
    r.isa = "scalar";
  }
  // Records predating the NUMA placement engine carry no "numa" field;
  // they ran with master-touched shared arrays.
  r.numa = str(j, "numa");
  if (r.numa.empty()) {
    r.numa = "off";
  }
  // Records predating the work-stealing scheduler carry no "schedule"
  // field; they ran under the static owner-computes split.
  r.schedule = str(j, "schedule");
  if (r.schedule.empty()) {
    r.schedule = "static";
  }
  // Records predating the column-tiling layer ran untiled.
  r.tiling = str(j, "tiling");
  if (r.tiling.empty()) {
    r.tiling = "off";
  }
  // Records predating the autotuner were all hand-picked cells.
  r.tuned = str(j, "tuned");
  if (r.tuned.empty()) {
    r.tuned = "no";
  }
  r.probe_ns =
      j.find("probe_ns") != nullptr ? j.find("probe_ns")->as_u64() : 0;
  r.threads = static_cast<std::size_t>(num(j, "threads", 1));
  r.mflops = num(j, "mflops");
  r.speedup = num(j, "speedup_vs_csr");
  r.imbalance = num(j, "imbalance");
  r.nnz = j.find("nnz") != nullptr ? j.find("nnz")->as_u64() : 0;
  if (const spc::obs::Json* c = j.find("counters");
      c != nullptr && c->is_object()) {
    r.has_counters = true;
    r.ipc = num(*c, "ipc");
    r.cycles_per_nnz = num(*c, "cycles_per_nnz");
    if (c->find("misses_per_knnz") != nullptr) {
      r.has_llc = true;
      r.misses_per_knnz = num(*c, "misses_per_knnz");
    }
  }
  r.bytes_per_nnz = num(j, "bytes_per_nnz");
  if (j.find("reduce_ns") != nullptr) {
    r.has_sym = true;
    const double seconds = num(j, "seconds");
    r.reduce_share =
        seconds > 0.0
            ? static_cast<double>(j.find("reduce_ns")->as_u64()) * 1e-9 /
                  seconds
            : 0.0;
    r.sym_window_frac = num(j, "sym_window_frac");
    // Window and private runs of one cell are different reduction
    // layouts — keep them apart the way tiled/untiled rows are.
    if (const std::string mode = str(j, "sym_reduce"); !mode.empty()) {
      r.schedule += "+" + mode;
    }
  }
  if (const spc::obs::Json* roof = j.find("roofline");
      roof != nullptr && roof->is_object()) {
    r.frac_roofline = num(*roof, "frac");
  }
  return !r.matrix.empty() && !r.format.empty();
}

std::string f2(double v) { return spc::fmt_fixed(v, 2); }
std::string f1(double v) { return spc::fmt_fixed(v, 1); }

/// Mean over added samples; "-" when none were added.
struct MaybeMean {
  double sum = 0.0;
  std::size_t n = 0;
  void add(double v) {
    sum += v;
    ++n;
  }
  std::string fmt(int digits) const {
    return n ? spc::fmt_fixed(sum / static_cast<double>(n), digits) : "-";
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else if (const auto env = spc::env_str("SPC_METRICS")) {
    path = *env;
  } else {
    std::cerr << "usage: profile_report <metrics.jsonl>  (or set "
                 "SPC_METRICS)\n";
    return 2;
  }

  std::ifstream f(path);
  if (!f) {
    std::cerr << "error: cannot read " << path << "\n";
    return 1;
  }

  std::vector<Record> records;
  std::size_t bad_lines = 0;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) {
      continue;
    }
    Record r;
    if (parse_record(line, r)) {
      records.push_back(std::move(r));
    } else {
      ++bad_lines;
    }
  }
  if (records.empty()) {
    std::cerr << "error: no metrics records in " << path << "\n";
    return 1;
  }

  std::size_t with_counters = 0;
  std::size_t max_threads = 1;
  for (const Record& r : records) {
    with_counters += r.has_counters ? 1 : 0;
    max_threads = std::max(max_threads, r.threads);
  }
  std::cout << "=== profile report: " << path << " (" << records.size()
            << " records, " << with_counters << " with hardware counters";
  if (bad_lines > 0) {
    std::cout << ", " << bad_lines << " unparseable lines skipped";
  }
  std::cout << ") ===\n\n";

  // 1. Per-(format, threads) aggregate — the Fig. 7/8 summary view.
  struct Agg {
    MaybeMean mflops, speedup, ipc, cycles_per_nnz, misses_per_knnz,
        imbalance, bytes_per_nnz, frac_roofline, probe_ms, reduce_share;
    std::size_t runs = 0;
  };
  std::map<std::tuple<std::string, std::string, std::string, std::string,
                      std::string, std::string, std::size_t>,
           Agg>
      by_cell;
  for (const Record& r : records) {
    Agg& a = by_cell[{r.format, r.isa, r.numa, r.schedule, r.tiling,
                      r.tuned, r.threads}];
    ++a.runs;
    if (r.tuned == "yes") {
      a.probe_ms.add(static_cast<double>(r.probe_ns) * 1e-6);
    }
    a.mflops.add(r.mflops);
    if (r.speedup > 0.0) {
      a.speedup.add(r.speedup);
    }
    if (r.imbalance > 0.0) {
      a.imbalance.add(r.imbalance);
    }
    if (r.has_counters) {
      a.ipc.add(r.ipc);
      a.cycles_per_nnz.add(r.cycles_per_nnz);
      if (r.has_llc) {
        a.misses_per_knnz.add(r.misses_per_knnz);
      }
    }
    if (r.bytes_per_nnz > 0.0) {
      a.bytes_per_nnz.add(r.bytes_per_nnz);
    }
    if (r.frac_roofline > 0.0) {
      a.frac_roofline.add(r.frac_roofline);
    }
    if (r.has_sym) {
      a.reduce_share.add(r.reduce_share);
    }
  }
  spc::TextTable summary({"format", "isa", "numa", "sched", "tile",
                          "tuned", "threads", "runs", "MFLOPS", "speedup",
                          "IPC", "cyc/nnz", "miss/knnz", "B/nnz",
                          "roofline", "probe_ms", "red share",
                          "imbalance"});
  bool any_roofline = false;
  for (const auto& [key, a] : by_cell) {
    any_roofline = any_roofline || a.frac_roofline.n > 0;
    summary.add_row({std::get<0>(key), std::get<1>(key), std::get<2>(key),
                     std::get<3>(key), std::get<4>(key), std::get<5>(key),
                     std::to_string(std::get<6>(key)),
                     std::to_string(a.runs), a.mflops.fmt(1),
                     a.speedup.fmt(2), a.ipc.fmt(2),
                     a.cycles_per_nnz.fmt(1), a.misses_per_knnz.fmt(2),
                     a.bytes_per_nnz.fmt(1), a.frac_roofline.fmt(2),
                     a.probe_ms.fmt(2), a.reduce_share.fmt(2),
                     a.imbalance.fmt(2)});
  }
  std::cout << "per-(format, isa, numa, schedule, tiling, tuned, threads) "
               "aggregate:\n";
  summary.print(std::cout);

  // 2. Per-matrix detail at the highest thread count, sorted by speedup
  //    (the paper sorts its Fig. 7/8 bars the same way).
  std::vector<const Record*> detail;
  for (const Record& r : records) {
    if (r.threads == max_threads) {
      detail.push_back(&r);
    }
  }
  std::sort(detail.begin(), detail.end(),
            [](const Record* a, const Record* b) {
              if (a->speedup != b->speedup) {
                return a->speedup < b->speedup;
              }
              return a->matrix < b->matrix;
            });
  spc::TextTable per_matrix({"matrix", "set", "format", "isa", "speedup",
                             "MFLOPS", "IPC", "cyc/nnz", "miss/knnz",
                             "imbalance"});
  for (const Record* r : detail) {
    per_matrix.add_row(
        {r->matrix, r->set, r->format, r->isa,
         r->speedup > 0.0 ? f2(r->speedup) : "-", f1(r->mflops),
         r->has_counters ? f2(r->ipc) : "-",
         r->has_counters ? f1(r->cycles_per_nnz) : "-",
         r->has_llc ? f2(r->misses_per_knnz) : "-",
         r->imbalance > 0.0 ? f2(r->imbalance) : "-"});
  }
  std::cout << "\nper-matrix detail at " << max_threads
            << " thread(s), sorted by speedup:\n";
  per_matrix.print(std::cout);

  if (with_counters == 0) {
    std::cout << "\nnote: hardware counters were unavailable for every "
                 "record (SPC_COUNTERS=0, perf_event_paranoid, or "
                 "platform limits); wall-clock columns remain valid.\n";
  }
  if (!any_roofline) {
    std::cout << "\nnote: no roofline attribution in these records — set "
                 "SPC_ROOFLINE_GBPS (or run regress_check --calibrate) "
                 "to record fraction-of-roofline per cell.\n";
  }
  return 0;
}
