// Encoding (construction) cost per format — §IV claims the CSR-DU
// compression "can be performed in O(nnz) steps by scanning the matrix
// elements once ... no overhead in terms of time complexity compared to
// that of CSR", and §V the same for CSR-VI's hash-based census. This
// bench measures construction throughput (Melem/s) from sorted triplets
// and the ratio against plain CSR construction.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/formats/csr.hpp"
#include "spc/formats/csr_du.hpp"
#include "spc/formats/csr_du_vi.hpp"
#include "spc/formats/csr_vi.hpp"
#include "spc/formats/dcsr.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {
namespace {

// Sink so the optimizer cannot drop the construction.
template <typename T>
void benchmark_dont_optimize(T&& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

template <typename Fn>
double melems_per_s(Fn&& build, usize_t nnz, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    build();
    const double secs = t.elapsed_s();
    if (secs > 0.0) {
      best = std::max(best,
                      static_cast<double>(nnz) / secs / 1e6);
    }
  }
  return best;
}

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 8;
  std::cout << "=== Encoding cost (construction Melem/s; §IV/§V O(nnz) "
               "claim) ===\n[" << cfg.describe() << "]\n";
  TextTable table({"matrix", "nnz", "csr", "csr-du", "csr-vi",
                   "csr-du-vi", "dcsr", "du/csr cost"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    const usize_t nnz = mc.mat.nnz();
    const int reps = 3;
    const double csr = melems_per_s(
        [&] { benchmark_dont_optimize(Csr::from_triplets(mc.mat)); },
        nnz, reps);
    const double du = melems_per_s(
        [&] { benchmark_dont_optimize(CsrDu::from_triplets(mc.mat)); },
        nnz, reps);
    const double vi = melems_per_s(
        [&] { benchmark_dont_optimize(CsrVi::from_triplets(mc.mat)); },
        nnz, reps);
    const double duvi = melems_per_s(
        [&] { benchmark_dont_optimize(CsrDuVi::from_triplets(mc.mat)); },
        nnz, reps);
    const double dcsr = melems_per_s(
        [&] { benchmark_dont_optimize(Dcsr::from_triplets(mc.mat)); },
        nnz, reps);
    table.add_row({mc.name, std::to_string(nnz), fmt_fixed(csr, 0),
                   fmt_fixed(du, 0), fmt_fixed(vi, 0),
                   fmt_fixed(duvi, 0), fmt_fixed(dcsr, 0),
                   fmt_fixed(du > 0 ? csr / du : 0.0, 2)});
  });
  table.print(std::cout);
  std::cout << "du/csr cost ~= constant across sizes -> same O(nnz) "
               "complexity class (§IV's claim)\n\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
