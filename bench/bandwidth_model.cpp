// The §II-B memory-bandwidth model, evaluated: calibrate the host's
// streaming bandwidth, then compare each matrix's measured serial SpMV
// time against the bandwidth-bound lower bound for CSR and CSR-DU/VI.
//
//   measured/model ≈ 1   → the kernel is memory bound (the paper's
//                          regime; compression pays off directly)
//   measured/model << 1  → the working set is cache resident on this
//                          host and compression trades at CPU cost
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/bench/model.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 10;
  std::cout << "=== Memory-bandwidth model (the paper's §II-B premise) "
               "===\n[" << cfg.describe() << "]\n";
  const BandwidthCalibration cal =
      calibrate_bandwidth(cfg.scale == CorpusScale::kBench ? 256ull << 20
                                                           : 64ull << 20);
  std::cout << "calibrated streaming bandwidth: read "
            << fmt_fixed(cal.read_gbps, 1) << " GB/s, triad "
            << fmt_fixed(cal.triad_gbps, 1) << " GB/s\n";

  TextTable table({"matrix", "set", "format", "streamed/op", "model ms",
                   "measured ms", "measured/model"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    for (const Format f : {Format::kCsr, Format::kCsrDu, Format::kCsrVi}) {
      SpmvInstance inst(mc.mat, f);
      const usize_t streamed = spmv_streamed_bytes(
          inst.matrix_bytes(), mc.mat.nrows(), mc.mat.ncols());
      const double model_s =
          predicted_spmv_seconds(streamed, cal.triad_gbps);
      const double measured_s =
          time_spmv(inst, cfg.iterations, cfg.warmup) /
          static_cast<double>(cfg.iterations);
      table.add_row({mc.name,
                     mc.set_class == SetClass::kLarge ? "ML" : "MS",
                     format_name(f), human_bytes(streamed),
                     fmt_fixed(model_s * 1e3, 3),
                     fmt_fixed(measured_s * 1e3, 3),
                     fmt_fixed(model_s > 0 ? measured_s / model_s : 0.0,
                               2)});
    }
  });
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
