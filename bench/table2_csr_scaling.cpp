// Regenerates Table II of the paper: CSR SpMxV serial MFLOPS and
// multithreaded speedups over the MS / ML / M0 matrix sets, including the
// two 2-thread cache placements.
//
// Configuration via environment (see BenchConfig): SPC_SCALE, SPC_ITERS,
// SPC_THREADS, SPC_PIN, SPC_MAX_MATRICES.
#include <iostream>

#include "spc/bench/experiments.hpp"

int main() {
  const spc::BenchConfig cfg = spc::BenchConfig::from_env();
  spc::run_table2_csr_scaling(cfg, std::cout);
  return 0;
}
