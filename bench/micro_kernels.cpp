// google-benchmark microbenchmarks of the SpMV kernels themselves:
// per-format decode+multiply cost on fixed structures, isolating kernel
// overheads (unit header decode, value indirection, command dispatch)
// from the corpus-level experiments.
#include <benchmark/benchmark.h>

#include "spc/formats/csr_f32.hpp"
#include "spc/gen/generators.hpp"
#include "spc/mm/vector.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/spmv/spmm.hpp"

namespace spc {
namespace {

// Shared fixtures, built once per structure kind.
struct Fixture {
  Triplets t;
  Vector x;
  Vector y;

  explicit Fixture(Triplets mat)
      : t(std::move(mat)), y(t.nrows(), 0.0) {
    Rng rng(1);
    x = random_vector(t.ncols(), rng);
  }
};

Fixture& banded_fixture() {
  static Fixture f = [] {
    Rng rng(11);
    return Fixture(gen_banded(60000, 50, 10, rng, ValueModel::pooled(32)));
  }();
  return f;
}

Fixture& random_fixture() {
  static Fixture f = [] {
    Rng rng(12);
    return Fixture(
        gen_random_uniform(50000, 50000, 8, rng, ValueModel::random()));
  }();
  return f;
}

template <typename M>
void run_spmv_loop(benchmark::State& state, const M& m, Fixture& f) {
  for (auto _ : state) {
    spmv(m, f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.t.nnz()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.bytes()));
}

void BM_Csr_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const Csr m = Csr::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Csr_Banded);

void BM_CsrDu_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const CsrDu m = CsrDu::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_CsrDu_Banded);

void BM_CsrDuRle_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  CsrDuOptions o;
  o.enable_rle = true;
  const CsrDu m = CsrDu::from_triplets(f.t, o);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_CsrDuRle_Banded);

void BM_CsrVi_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const CsrVi m = CsrVi::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_CsrVi_Banded);

void BM_CsrDuVi_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const CsrDuVi m = CsrDuVi::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_CsrDuVi_Banded);

void BM_Dcsr_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const Dcsr m = Dcsr::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Dcsr_Banded);

void BM_Bcsr_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const Bcsr m = Bcsr::from_triplets(f.t, 2, 2);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Bcsr_Banded);

void BM_Csr_Random(benchmark::State& state) {
  Fixture& f = random_fixture();
  const Csr m = Csr::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Csr_Random);

void BM_CsrDu_Random(benchmark::State& state) {
  Fixture& f = random_fixture();
  const CsrDu m = CsrDu::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_CsrDu_Random);

void BM_Dcsr_Random(benchmark::State& state) {
  Fixture& f = random_fixture();
  const Dcsr m = Dcsr::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Dcsr_Random);

void BM_Ell_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const Ell m = Ell::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Ell_Banded);

void BM_Dia_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const Dia m = Dia::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Dia_Banded);

void BM_Jds_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const Jds m = Jds::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Jds_Banded);

void BM_Jds_Random(benchmark::State& state) {
  Fixture& f = random_fixture();
  const Jds m = Jds::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_Jds_Random);

void BM_CsrF32_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const CsrF32 m = CsrF32::from_triplets(f.t);
  run_spmv_loop(state, m, f);
}
BENCHMARK(BM_CsrF32_Banded);

// SpMM amortization at k = 4 (items = nnz * k).
void BM_Spmm4_Csr_Banded(benchmark::State& state) {
  Fixture& f = banded_fixture();
  const Csr m = Csr::from_triplets(f.t);
  const index_t k = 4;
  Rng rng(3);
  const Vector X = random_vector(f.t.ncols() * k, rng);
  Vector Y(static_cast<usize_t>(f.t.nrows()) * k, 0.0);
  for (auto _ : state) {
    spmm(m, X.data(), Y.data(), k);
    benchmark::DoNotOptimize(Y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.t.nnz() * k));
}
BENCHMARK(BM_Spmm4_Csr_Banded);

// Encoder throughput: construction is O(nnz) per §IV/§V.
void BM_Encode_CsrDu(benchmark::State& state) {
  Fixture& f = banded_fixture();
  for (auto _ : state) {
    const CsrDu m = CsrDu::from_triplets(f.t);
    benchmark::DoNotOptimize(m.ctl_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.t.nnz()));
}
BENCHMARK(BM_Encode_CsrDu);

void BM_Encode_CsrVi(benchmark::State& state) {
  Fixture& f = banded_fixture();
  for (auto _ : state) {
    const CsrVi m = CsrVi::from_triplets(f.t);
    benchmark::DoNotOptimize(m.unique_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.t.nnz()));
}
BENCHMARK(BM_Encode_CsrVi);

}  // namespace
}  // namespace spc

BENCHMARK_MAIN();
