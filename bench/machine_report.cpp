// Fig 6 equivalent: reports the machine topology the experiments run on
// and the thread placement plans the harness derives from it (close-first
// vs spread, the paper's §VI-A policy). Also prints the machine
// fingerprint JSON block that run-ledger records embed verbatim, so a
// ledger's machine_id can be traced back to a box by running this.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/obs/ledger.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/topology.hpp"

int main() {
  using namespace spc;
  const Topology topo = discover_topology();
  std::cout << "=== Machine report (Fig 6 equivalent) ===\n";
  std::cout << describe_topology(topo) << "\n";
  const obs::MachineFingerprint fp = obs::machine_fingerprint();
  std::cout << "machine id: " << fp.id() << " (ledger provenance key)\n"
            << "fingerprint: " << fp.to_json().dump() << "\n";
  if (topo.llc_bytes > 0) {
    std::cout << "LLC: " << human_bytes(topo.llc_bytes) << " x "
              << topo.llc_instances << " = "
              << human_bytes(topo.llc_bytes * topo.llc_instances)
              << " aggregate\n";
  }
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    const auto close = plan_placement(topo, n, Placement::kCloseFirst);
    const auto spread = plan_placement(topo, n, Placement::kSpreadCaches);
    std::cout << n << " thread(s): close-first cpus [";
    for (std::size_t i = 0; i < close.size(); ++i) {
      std::cout << (i ? "," : "") << close[i];
    }
    std::cout << "], spread cpus [";
    for (std::size_t i = 0; i < spread.size(); ++i) {
      std::cout << (i ? "," : "") << spread[i];
    }
    std::cout << "]\n";
  }
  const BenchConfig cfg = BenchConfig::from_env();
  const SetThresholds th = cfg.thresholds();
  std::cout << "set thresholds: reject ws < " << human_bytes(th.reject_below)
            << ", ML at ws >= " << human_bytes(th.large_at_least) << "\n";
  std::cout << "aggregate LLC when using 1/2/4/8 threads: ";
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    std::cout << human_bytes(topo.aggregate_llc_bytes(n)) << " ";
  }
  std::cout << "\n\n";
  return 0;
}
