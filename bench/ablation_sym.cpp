// Ablation: conflict-window vs private-y reduction for the symmetric
// formats (sym-csr, sym-csr-vi), on banded symmetric inputs.
//
// The SSS scatter makes multithreaded symmetric SpMV pay a reduction:
// the classic scheme gives every thread a private full-length y and
// folds all of them afterwards, moving ~(2T+1)*8*nrows bytes per run
// regardless of the matrix. The conflict-window scheme bounds each
// thread's scatter reach instead: thread t only ever scatters into
// [win_begin_t, row_begin_t), so the reduction folds just those window
// rows (~32 bytes each: zero, scatter, read, add). On banded matrices
// the windows are a band-width sliver of the private traffic — that
// ratio is this ablation's headline column.
//
// Rows are format x reduce x threads per matrix; "reduce B/run" is the
// closed-form reduction traffic above (the compute phase is identical
// in both modes), "cut" the private/window ratio. A scalar-tier
// verification pass precedes the sweep: window and private results
// must be bit-identical (both fold the same per-thread partial sums in
// the same order), so the two reduction schemes are interchangeable by
// construction; both are held to 1e-12 of serial.
//
// JSONL (under SPC_METRICS) carries "sym_reduce", "sym_window_frac",
// and "reduce_ns"; profile_report turns reduce_ns into a share of the
// timed loop per cell.
//
// Usage: ablation_sym [--smoke] [--gate]
//   --smoke: two small matrices, few iterations — CI wiring check.
//   --gate:  exit 1 unless, on every banded cell at the highest thread
//            count, the window cut is >= 4x and window ns/nnz is within
//            10% of private (it should simply win; the headroom absorbs
//            smoke-length timing noise).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "spc/bench/harness.hpp"
#include "spc/formats/sym_csr.hpp"
#include "spc/gen/generators.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

// A + A^T: numerically symmetric by construction; pooled source values
// keep the sum pool small, so the -vi variant stays applicable.
Triplets symmetrized(const Triplets& a) {
  Triplets s(a.nrows(), a.ncols());
  for (const Entry& e : a.entries()) {
    s.add(e.row, e.col, e.val);
    s.add(e.col, e.row, e.val);
  }
  s.sort_and_combine();
  return s;
}

struct SymCase {
  std::string name;
  Triplets mat;
};

std::vector<SymCase> build_cases(bool smoke) {
  std::vector<SymCase> cases;
  Rng rng(404);
  if (smoke) {
    cases.push_back({"band-sym-s",
                     symmetrized(gen_banded(20000, 40, 20, rng,
                                            ValueModel::pooled(8)))});
    cases.push_back({"lap2d-s", gen_laplacian_2d(120, 120)});
  } else {
    cases.push_back({"band-sym-m",
                     symmetrized(gen_banded(200000, 60, 24, rng,
                                            ValueModel::pooled(8)))});
    cases.push_back({"band-sym-wide",
                     symmetrized(gen_banded(100000, 400, 30, rng,
                                            ValueModel::pooled(12)))});
    cases.push_back({"lap2d-m", gen_laplacian_2d(500, 500)});
    cases.push_back({"stencil9-m", gen_stencil_9pt(400, 400)});
  }
  return cases;
}

// Closed-form reduction traffic per run (bytes). The compute phase is
// identical under both modes, so this is the whole difference.
double reduce_bytes(const SpmvInstance& inst, std::size_t threads) {
  const double n = static_cast<double>(inst.nrows());
  if (inst.sym_reduce() == SymReduce::kPrivate) {
    // Zero T private copies, read them all back, write y once.
    return (2.0 * static_cast<double>(threads) + 1.0) * 8.0 * n;
  }
  // Zero, scatter, read, and fold each window row.
  return 32.0 * static_cast<double>(inst.sym_window_rows());
}

// Scalar-tier agreement: window and private must be *bit-identical*
// (both fold the same per-thread partial sums in ascending thread
// order), and both must sit within 1e-12 relative error of serial (the
// per-thread grouping reassociates foreign scatter contributions, so
// exact equality with serial is not a property either scheme has).
bool verify_bits(const SymCase& sc, Format fmt, std::size_t threads) {
  ::setenv("SPC_ISA", "scalar", 1);
  Rng rng(7);
  const Vector x = random_vector(sc.mat.ncols(), rng);
  InstanceOptions base;
  base.pin_threads = false;

  SpmvInstance serial(sc.mat, fmt, 1, base);
  Vector y_serial(sc.mat.nrows(), 0.0);
  serial.run(x, y_serial);

  bool ok = true;
  Vector y_win;
  for (const SymReduce mode : {SymReduce::kWindow, SymReduce::kPrivate}) {
    InstanceOptions opts = base;
    opts.sym_reduce = mode;
    SpmvInstance inst(sc.mat, fmt, threads, opts);
    Vector y(sc.mat.nrows(), std::numeric_limits<double>::quiet_NaN());
    inst.run(x, y);
    double num = 0.0;
    double den = 0.0;
    for (index_t r = 0; r < sc.mat.nrows(); ++r) {
      num = std::max(num, std::abs(y[r] - y_serial[r]));
      den = std::max(den, std::abs(y_serial[r]));
    }
    if (den > 0.0 && num / den > 1e-12) {
      std::cout << "CHECK FAIL: " << sc.name << " " << format_name(fmt)
                << " x" << threads << " " << sym_reduce_name(mode)
                << " rel error vs serial = " << (num / den) << "\n";
      ok = false;
    }
    if (mode == SymReduce::kWindow) {
      y_win = y;
    } else {
      for (index_t r = 0; r < sc.mat.nrows(); ++r) {
        if (y[r] != y_win[r]) {
          std::cout << "BITCHECK FAIL: " << sc.name << " "
                    << format_name(fmt) << " x" << threads
                    << " window and private disagree at row " << r << "\n";
          ok = false;
          break;
        }
      }
    }
  }
  ::unsetenv("SPC_ISA");
  return ok;
}

int run(bool smoke, bool gate) {
  // The sweep sets the reduction mode programmatically; a stray
  // environment override would collapse every cell to one scheme.
  ::unsetenv("SPC_SYM_REDUCE");

  BenchConfig cfg = BenchConfig::from_env();
  if (smoke) {
    cfg.iterations = 16;
    cfg.warmup = 2;
    cfg.pin_threads = false;  // CI runners are often core-starved
  }
  std::size_t max_threads = 1;
  for (const std::size_t n : cfg.threads) {
    max_threads = std::max(max_threads, n);
  }
  std::cout << "=== Ablation: symmetric reduction (conflict window vs "
               "private y) ===\n["
            << cfg.describe() << (smoke ? ", smoke" : "") << "]\n";

  const std::vector<SymCase> cases = build_cases(smoke);
  const Format formats[] = {Format::kSymCsr, Format::kSymCsrVi};

  TextTable table({"matrix", "format", "reduce", "threads", "ns/nnz",
                   "reduce B/run", "cut", "win frac", "reduce share"});
  bool gates_ok = true;

  for (const SymCase& sc : cases) {
    // Correctness first: the timing rows below only mean something if
    // the schemes agree bit-for-bit.
    for (const Format fmt : formats) {
      if (!verify_bits(sc, fmt, max_threads)) {
        gates_ok = false;
      }
    }

    MatrixCase mc;
    mc.name = sc.name;
    mc.cls = "symmetric";
    mc.mat = sc.mat;

    for (const Format fmt : formats) {
      for (const std::size_t n : cfg.threads) {
        if (n < 2) {
          continue;  // both schemes are the serial kernel at T=1
        }
        double private_ns_nnz = 0.0;
        double private_bytes = 0.0;
        for (const SymReduce mode :
             {SymReduce::kPrivate, SymReduce::kWindow}) {
          InstanceOptions opts;
          opts.pin_threads = cfg.pin_threads;
          opts.sym_reduce = mode;
          SpmvInstance inst(sc.mat, fmt, n, opts);
          RunMetrics m =
              time_spmv_metrics(inst, cfg.iterations, cfg.warmup);
          // Median per-iteration sample: robust to the scheduling
          // hiccups that dominate short oversubscribed smoke runs.
          std::vector<double> samples = m.sample_seconds;
          std::sort(samples.begin(), samples.end());
          const double med =
              samples.empty() ? 0.0 : samples[samples.size() / 2];
          const double ns_nnz =
              inst.nnz() > 0
                  ? med * 1e9 / static_cast<double>(inst.nnz())
                  : 0.0;
          const double rbytes = reduce_bytes(inst, n);
          const double cut =
              mode == SymReduce::kWindow && rbytes > 0.0
                  ? private_bytes / rbytes
                  : 0.0;
          const double reduce_share =
              m.seconds > 0.0
                  ? static_cast<double>(m.reduce_ns) * 1e-9 / m.seconds
                  : 0.0;
          table.add_row(
              {sc.name, format_name(fmt),
               sym_reduce_name(inst.sym_reduce()), std::to_string(n),
               fmt_fixed(ns_nnz, 3), fmt_fixed(rbytes, 0),
               mode == SymReduce::kWindow
                   ? (rbytes > 0.0 ? fmt_fixed(cut, 1) + "x" : "inf")
                   : "-",
               fmt_fixed(m.sym_window_frac, 3),
               fmt_fixed(reduce_share, 3)});
          emit_metrics_record("ablation_sym", mc, inst, m, 0.0, {});

          if (mode == SymReduce::kPrivate) {
            private_ns_nnz = ns_nnz;
            private_bytes = rbytes;
          } else if (gate && n == max_threads &&
                     sc.name.rfind("band", 0) == 0) {
            // The acceptance gate: on banded inputs at the top thread
            // count the window scheme must cut reduction bytes >= 4x
            // and must not cost throughput against private-y.
            if (rbytes > 0.0 && cut < 4.0) {
              std::cout << "GATE FAIL: " << sc.name << " "
                        << format_name(fmt) << " x" << n
                        << " reduction cut " << fmt_fixed(cut, 1)
                        << "x < 4x\n";
              gates_ok = false;
            }
            if (private_ns_nnz > 0.0 && ns_nnz > private_ns_nnz * 1.10) {
              std::cout << "GATE FAIL: " << sc.name << " "
                        << format_name(fmt) << " x" << n << " window "
                        << fmt_fixed(ns_nnz, 3) << " ns/nnz > private "
                        << fmt_fixed(private_ns_nnz, 3) << " * 1.10\n";
              gates_ok = false;
            }
          }
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nnote: \"reduce B/run\" is the closed-form reduction "
               "traffic ((2T+1)*8*nrows private, 32*window_rows window); "
               "the compute phase is identical in both modes. \"cut\" is "
               "private/window. \"reduce share\" is the reduction phase's "
               "share of the timed loop. Scalar-tier window/private "
               "bit-identity (and 1e-12 agreement with serial) is "
               "checked before timing.\n";
  if (gate) {
    std::cout << (gates_ok ? "\nGATES PASS\n" : "\nGATES FAIL\n");
  }
  return gates_ok ? 0 : 1;
}

}  // namespace
}  // namespace spc

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else {
      std::cerr << "usage: ablation_sym [--smoke] [--gate]\n";
      return 2;
    }
  }
  return spc::run(smoke, gate);
}
