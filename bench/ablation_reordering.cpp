// Ablation: RCM reordering as a CSR-DU pre-pass (§III-A's locality
// family). Bandwidth reduction shortens column deltas, so more units fit
// the u8 class and the ctl stream shrinks — measured here as bandwidth,
// ctl bytes, u8-unit share and serial SpMV time before/after RCM.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/formats/csr_du.hpp"
#include "spc/mm/reorder.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {
namespace {

struct Probe {
  usize_t bandwidth;
  usize_t ctl_bytes;
  double u8_share;
  double ms;
};

Probe probe(const Triplets& t, std::size_t iters) {
  Probe p;
  p.bandwidth = pattern_bandwidth(t);
  const CsrDu du = CsrDu::from_triplets(t);
  p.ctl_bytes = du.ctl_bytes();
  p.u8_share = du.unit_count()
                   ? static_cast<double>(
                         du.unit_count_class(DeltaClass::kU8)) /
                         static_cast<double>(du.unit_count())
                   : 0.0;
  Rng rng(1);
  const Vector x = random_vector(t.ncols(), rng);
  Vector y(t.nrows(), 0.0);
  spmv(du, x.data(), y.data());
  Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    spmv(du, x.data(), y.data());
  }
  p.ms = timer.elapsed_ms();
  return p;
}

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 8;
  std::cout << "=== Ablation: RCM reordering before CSR-DU encoding ===\n["
            << cfg.describe() << "]\n";
  TextTable table({"matrix", "bw before", "bw after", "ctl before",
                   "ctl after", "u8 units before", "u8 units after",
                   "time ratio"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    if (mc.mat.nrows() != mc.mat.ncols()) {
      return;  // RCM is defined for square matrices
    }
    const Probe before = probe(mc.mat, cfg.iterations);
    const Permutation p = rcm_ordering(mc.mat);
    const Triplets reordered = permute_symmetric(mc.mat, p);
    const Probe after = probe(reordered, cfg.iterations);
    table.add_row({mc.name, std::to_string(before.bandwidth),
                   std::to_string(after.bandwidth),
                   human_bytes(before.ctl_bytes),
                   human_bytes(after.ctl_bytes),
                   fmt_fixed(100.0 * before.u8_share, 1) + "%",
                   fmt_fixed(100.0 * after.u8_share, 1) + "%",
                   before.ms > 0 ? fmt_fixed(after.ms / before.ms, 2)
                                 : "-"});
  });
  table.print(std::cout);
  std::cout << "time ratio < 1 means RCM made CSR-DU SpMV faster\n\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
