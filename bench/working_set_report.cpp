// The §II-B working-set model over the full corpus (no ws rejection):
// per-matrix ws, ttu, delta statistics and each format's size relative to
// CSR. This is the data behind the MS/ML set construction of §VI-B.
#include <iostream>

#include "spc/bench/experiments.hpp"

int main() {
  const spc::BenchConfig cfg = spc::BenchConfig::from_env();
  spc::run_working_set_report(cfg, std::cout);
  return 0;
}
