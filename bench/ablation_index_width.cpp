// Ablation: index width vs index compression — the scenario in the
// paper's conclusions: "as the available physical memory of machines
// increases and it becomes possible to support matrices which require
// 64-bit index addressing", the index share of the working set grows and
// CSR-DU's leverage grows with it.
//
// For each matrix: col_ind stored as u16 (when possible), u32 (the
// paper's baseline), u64 (the future regime) and as the CSR-DU ctl
// stream; sizes and serial SpMV times side by side.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/formats/csr.hpp"
#include "spc/formats/csr_du.hpp"
#include "spc/mm/vector.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {
namespace {

template <typename M>
double time_serial(const M& m, const Vector& x, Vector& y,
                   std::size_t iters) {
  spmv(m, x.data(), y.data());
  Timer t;
  for (std::size_t i = 0; i < iters; ++i) {
    spmv(m, x.data(), y.data());
  }
  return t.elapsed_s();
}

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 8;
  std::cout << "=== Ablation: index width (u16/u32/u64) vs CSR-DU "
               "compression ===\n[" << cfg.describe() << "]\n";
  TextTable table({"matrix", "index data", "u16", "u32", "u64", "ctl",
                   "t16 ms", "t32 ms", "t64 ms", "t-du ms"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    Rng rng(1);
    const Vector x = random_vector(mc.mat.ncols(), rng);
    Vector y(mc.mat.nrows(), 0.0);

    const Csr m32 = Csr::from_triplets(mc.mat);
    const Csr64 m64 = Csr64::from_triplets(mc.mat);
    const CsrDu du = CsrDu::from_triplets(mc.mat);

    const double idx32 = static_cast<double>(m32.nnz()) * 4.0;
    std::string s16 = "n/a", t16 = "n/a";
    if (csr16_applicable(mc.mat)) {
      const Csr16 m16 = Csr16::from_triplets(mc.mat);
      s16 = fmt_fixed(static_cast<double>(m16.nnz()) * 2.0 / idx32, 2);
      t16 = fmt_fixed(time_serial(m16, x, y, cfg.iterations) * 1e3, 2);
    }
    table.add_row(
        {mc.name, human_bytes(static_cast<usize_t>(idx32)), s16, "1.00",
         "2.00",
         fmt_fixed(static_cast<double>(du.ctl_bytes()) / idx32, 2), t16,
         fmt_fixed(time_serial(m32, x, y, cfg.iterations) * 1e3, 2),
         fmt_fixed(time_serial(m64, x, y, cfg.iterations) * 1e3, 2),
         fmt_fixed(time_serial(du, x, y, cfg.iterations) * 1e3, 2)});
  });
  table.print(std::cout);
  std::cout << "shape check: t64 > t32 (wider index stream), and the ctl "
               "column shows what DU removes of it\n\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
