// Statistical regression gate over the run-ledger.
//
// Runs a fixed suite of (matrix × format × threads) cells, records each
// cell's per-iteration raw samples into a ledger (obs/ledger.hpp), and
// compares against a committed baseline with the conservative
// three-check classifier of obs/compare.hpp (median effect size +
// Mann–Whitney U + bootstrap-CI separation). Emits a markdown and a
// JSON verdict and exits nonzero only on *confirmed* regressions —
// run-to-run noise must classify neutral (the --aa mode checks exactly
// that, and CI runs it on every push).
//
// Typical workflows:
//   record a baseline     regress_check --smoke --record results/baselines/$(id).jsonl
//   gate a change         regress_check --smoke            # vs results/baselines/<machine_id>.jsonl
//   A/A self-test         regress_check --smoke --aa
//   prove the gate works  regress_check --smoke --aa --inject-pad-ns 2000
//
// Exit codes: 0 = no confirmed regressions; 1 = confirmed regressions;
// 2 = usage error or nothing was comparable (missing baseline, machine
// mismatch) — explicit, never a silent pass.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "spc/bench/harness.hpp"
#include "spc/bench/model.hpp"
#include "spc/obs/compare.hpp"
#include "spc/obs/ledger.hpp"
#include "spc/support/error.hpp"
#include "spc/support/strutil.hpp"

namespace {

using spc::obs::CompareThresholds;
using spc::obs::LedgerComparison;
using spc::obs::LedgerRecord;

struct Options {
  bool smoke = false;
  bool aa = false;
  bool calibrate = false;
  std::string record_path;    ///< non-empty → record mode
  std::string baseline_path;  ///< default results/baselines/<machine_id>.jsonl
  std::string ledger_path;    ///< also append current records here
  std::string out_json = "regress_verdict.json";
  std::string out_md = "regress_verdict.md";
  std::size_t iters = 0;  ///< 0 = suite default
  std::uint64_t inject_pad_ns = 0;
  CompareThresholds th;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --smoke               tiny corpus, 3 formats, threads {1,2} clamped to visible CPUs\n"
      << "  --record <file>       record a baseline ledger and exit\n"
      << "  --aa                  run twice, compare run B vs run A\n"
      << "  --baseline <file>     baseline ledger (default\n"
      << "                        results/baselines/<machine_id>.jsonl)\n"
      << "  --ledger <file>       also append current records to <file>\n"
      << "  --out-json <file>     JSON verdict (default regress_verdict.json)\n"
      << "  --out-md <file>       markdown verdict (default regress_verdict.md)\n"
      << "  --iters <n>           timed iterations per cell\n"
      << "  --min-effect <x>      median-ratio threshold (default 0.05)\n"
      << "  --min-effect-ns <x>   absolute median-shift floor in ns\n"
      << "                        (default 250)\n"
      << "  --alpha <x>           Mann-Whitney significance (default 0.01)\n"
      << "  --min-samples <n>     minimum samples per side (default 8)\n"
      << "  --inject-pad-ns <n>   pad the current/second run's iterations\n"
      << "                        (validation hook)\n"
      << "  --calibrate           measure stream bandwidth, enable roofline\n"
      << "                        attribution in the records\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--smoke") {
      o->smoke = true;
    } else if (a == "--aa") {
      o->aa = true;
    } else if (a == "--calibrate") {
      o->calibrate = true;
    } else if (a == "--record") {
      const char* v = next();
      if (v == nullptr) return false;
      o->record_path = v;
    } else if (a == "--baseline") {
      const char* v = next();
      if (v == nullptr) return false;
      o->baseline_path = v;
    } else if (a == "--ledger") {
      const char* v = next();
      if (v == nullptr) return false;
      o->ledger_path = v;
    } else if (a == "--out-json") {
      const char* v = next();
      if (v == nullptr) return false;
      o->out_json = v;
    } else if (a == "--out-md") {
      const char* v = next();
      if (v == nullptr) return false;
      o->out_md = v;
    } else if (a == "--iters") {
      const char* v = next();
      if (v == nullptr) return false;
      o->iters = std::stoull(v);
    } else if (a == "--min-effect") {
      const char* v = next();
      if (v == nullptr) return false;
      o->th.min_effect = std::stod(v);
    } else if (a == "--min-effect-ns") {
      const char* v = next();
      if (v == nullptr) return false;
      o->th.min_effect_ns = std::stod(v);
    } else if (a == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      o->th.alpha = std::stod(v);
    } else if (a == "--min-samples") {
      const char* v = next();
      if (v == nullptr) return false;
      o->th.min_samples = std::stoull(v);
    } else if (a == "--inject-pad-ns") {
      const char* v = next();
      if (v == nullptr) return false;
      o->inject_pad_ns = std::stoull(v);
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return false;
    }
  }
  return true;
}

/// The gate's suite: a deliberately small, fixed cell set — regression
/// gating wants stable, frequently-run cells, not coverage (the tables
/// and ablations do coverage).
std::vector<spc::Format> suite_formats(bool smoke) {
  using spc::Format;
  if (smoke) {
    return {Format::kCsr, Format::kCsrDu, Format::kCsrVi};
  }
  return {Format::kCsr, Format::kCsrDu, Format::kCsrDuRle, Format::kCsrVi,
          Format::kCsrDuVi};
}

spc::BenchConfig suite_config(const Options& o) {
  spc::BenchConfig cfg = spc::BenchConfig::from_env();
  if (o.smoke) {
    cfg.scale = spc::CorpusScale::kTiny;
    cfg.threads = {1, 2};
    cfg.iterations = 48;
    cfg.warmup = 3;
    if (cfg.max_matrices == 0 || cfg.max_matrices > 4) {
      cfg.max_matrices = 4;
    }
  }
  if (o.iters > 0) {
    cfg.iterations = o.iters;
  }
  // Oversubscribed cells (threads > CPUs) time the kernel scheduler's
  // interleaving, not the code: on a 1-CPU box a threads=2 cell can
  // latch into a slow mode for longer than a sub-pass and produce a
  // confident false regression no amount of interleaving fixes. Drop
  // them loudly; on real multi-core runners nothing changes.
  const std::size_t cpus = std::max<std::size_t>(
      1, spc::obs::machine_fingerprint().cpus);
  std::vector<std::size_t> kept;
  for (const std::size_t n : cfg.threads) {
    if (n <= cpus) {
      kept.push_back(n);
    } else {
      std::cout << "note: dropping threads=" << n << " cells (only " << cpus
                << " CPU(s) visible; oversubscribed timing is scheduler "
                   "noise, not signal)\n";
    }
  }
  if (kept.empty()) {
    kept.push_back(1);
  }
  cfg.threads = std::move(kept);
  return cfg;
}

/// A/A suites hold two passes per cell; single runs fill only `b`.
struct SuiteRun {
  std::vector<LedgerRecord> a;
  std::vector<LedgerRecord> b;
  std::size_t cells = 0;
};

/// Passes per side per cell: the iteration budget is split into
/// interleaved sub-passes (A,B,A,B in aa mode; back-to-back otherwise)
/// so a transient machine-state shift — an IRQ storm, a migration, a
/// frequency step lasting longer than one sub-pass — lands on *both*
/// sample sets instead of wholly inside one. One pass per side turns
/// any such shift into a confident false regression; interleaving turns
/// it into visible bimodality that widens both CIs toward neutral.
/// compare_ledgers pools same-key records, so emitting one record per
/// sub-pass needs no extra plumbing. Four passes bound the asymmetry of
/// a single step-change to one sub-pass (~1/4 of either side's
/// samples), which cannot move the pooled median by itself.
constexpr std::size_t kPasses = 4;

/// Times every suite cell; appends raw records to `ledger_path` when
/// non-empty. In `aa` mode each cell yields interleaved A and B sample
/// sets from one instance — whole-suite A then whole-suite B would let
/// slow drift (frequency ramp, thermal state) masquerade as a
/// regression. `pad_ns` injects SPC_PAD_NS_PER_ITER into the B passes
/// only (the validation hook).
SuiteRun run_suite(const spc::BenchConfig& cfg,
                   const std::vector<spc::Format>& formats,
                   const std::string& ledger_path, bool aa,
                   std::uint64_t pad_ns, const char* label) {
  SuiteRun out;
  const std::size_t pass_iters =
      std::max<std::size_t>(8, cfg.iterations / kPasses);
  const auto time_cell = [&](spc::MatrixCase& mc, spc::SpmvInstance& inst,
                             std::size_t warmup,
                             std::vector<LedgerRecord>* rows) {
    const spc::RunMetrics m = spc::time_spmv_metrics(inst, pass_iters, warmup);
    const spc::obs::Json rec =
        spc::make_metrics_record("regress_check", mc, inst, m);
    if (!ledger_path.empty()) {
      spc::obs::append_ledger(ledger_path, rec);
    }
    LedgerRecord row;
    if (spc::obs::parse_ledger_record(rec, &row)) {
      rows->push_back(std::move(row));
    }
  };
  const auto time_passes = [&](spc::MatrixCase& mc,
                               spc::SpmvInstance& inst) {
    for (std::size_t p = 0; p < kPasses; ++p) {
      // Warm up only once per cell; the instance stays hot across
      // sub-passes.
      const std::size_t warmup = p == 0 ? cfg.warmup : 0;
      if (aa) {
        time_cell(mc, inst, warmup, &out.a);
      }
      if (pad_ns > 0) {
        ::setenv("SPC_PAD_NS_PER_ITER", std::to_string(pad_ns).c_str(), 1);
      }
      time_cell(mc, inst, aa ? 0 : warmup, &out.b);
      if (pad_ns > 0) {
        ::unsetenv("SPC_PAD_NS_PER_ITER");
      }
    }
    ++out.cells;
  };
  spc::for_each_matrix(
      cfg,
      [&](spc::MatrixCase& mc) {
        for (const spc::Format f : formats) {
          for (const std::size_t n : cfg.threads) {
            try {
              spc::InstanceOptions opts;
              opts.pin_threads = cfg.pin_threads;
              spc::SpmvInstance inst(mc.mat, f, n, opts);
              time_passes(mc, inst);
            } catch (const spc::Error& e) {
              std::cerr << "warning: skipping " << mc.name << "/"
                        << format_name(f) << "@" << n << ": " << e.what()
                        << "\n";
            }
          }
        }
      },
      /*apply_rejection=*/false);
  // One column-tiled cell on a graph-class matrix: the layout the tiling
  // engine targets (wide irregular column spans). Forced so the cell
  // exists at every corpus scale; its ledger key carries tiling=on +
  // stripe_bytes, so it never pools with the untiled cells above.
  // SPC_TILE still wins (a SPC_TILE=off CI leg records it untiled, and
  // the key follows suit).
  try {
    const spc::CorpusSpec spec = spc::corpus_spec("rmat-s", cfg.scale);
    spc::MatrixCase mc;
    mc.name = spec.name;
    mc.cls = spec.cls;
    mc.vi_friendly = spec.vi_friendly;
    mc.mat = spec.build();
    mc.stats = spc::compute_stats(mc.mat);
    mc.ws = mc.stats.working_set_bytes();
    mc.set_class = spc::classify_ws(mc.ws, cfg.thresholds());
    spc::InstanceOptions opts;
    opts.pin_threads = cfg.pin_threads;
    opts.tiling.mode = spc::TileMode::kForced;
    opts.tiling.stripe_bytes = 16u << 10;
    spc::SpmvInstance inst(mc.mat, spc::Format::kCsrDu, cfg.threads.front(),
                           opts);
    time_passes(mc, inst);
  } catch (const spc::Error& e) {
    std::cerr << "warning: skipping tiled rmat-s/csr-du cell: " << e.what()
              << "\n";
  }
  std::cout << label << ": " << out.cells << " cells timed ("
            << cfg.describe() << ", " << kPasses << "x" << pass_iters
            << " iters/side" << (aa ? ", interleaved A/A" : "") << ")\n";
  return out;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  f << text;
}

int finish(const Options& o, const LedgerComparison& cmp) {
  const std::string md = cmp.to_markdown();
  write_text(o.out_md, md);
  write_text(o.out_json, cmp.to_json().dump() + "\n");
  std::cout << "\n" << md << "\nverdict files: " << o.out_md << ", "
            << o.out_json << "\n";

  if (cmp.has_regressions()) {
    std::cout << "RESULT: REGRESSED (" << cmp.regressed << " cells)\n";
    return 1;
  }
  if (cmp.cells.empty() ||
      cmp.incomparable == cmp.cells.size()) {
    std::cout << "RESULT: NOT COMPARABLE (no shared comparable cells)\n";
    return 2;
  }
  std::cout << "RESULT: OK (" << cmp.improved << " improved, "
            << cmp.neutral << " neutral)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse_args(argc, argv, &o)) {
    return usage(argv[0]);
  }
  if (!o.record_path.empty() && o.aa) {
    std::cerr << "--record and --aa are mutually exclusive\n";
    return usage(argv[0]);
  }

  const std::string machine_id = spc::obs::machine_fingerprint().id();
  std::cout << "machine " << machine_id << " ("
            << spc::obs::machine_fingerprint().to_json().dump()
            << ")\ngit " << spc::obs::build_git_sha() << "\n";

  if (o.calibrate) {
    // A short calibration — enough for attribution, not a benchmark.
    const spc::BandwidthCalibration bw =
        spc::calibrate_bandwidth(64ull << 20, 2);
    std::cout << "calibrated stream read bandwidth: "
              << spc::fmt_fixed(bw.read_gbps, 1) << " GB/s\n";
    ::setenv("SPC_ROOFLINE_GBPS",
             spc::fmt_fixed(bw.read_gbps, 3).c_str(), 1);
  }

  const spc::BenchConfig cfg = suite_config(o);
  const std::vector<spc::Format> formats = suite_formats(o.smoke);

  if (!o.record_path.empty()) {
    const SuiteRun run = run_suite(cfg, formats, o.record_path,
                                   /*aa=*/false, /*pad_ns=*/0,
                                   "baseline run");
    if (run.b.empty()) {
      std::cerr << "error: no cells recorded\n";
      return 2;
    }
    std::cout << "baseline ledger: " << o.record_path << " (" << run.b.size()
              << " cells)\n";
    return 0;
  }

  std::vector<LedgerRecord> baseline;
  std::vector<LedgerRecord> current;
  if (o.aa) {
    if (o.inject_pad_ns > 0) {
      std::cout << "injecting " << o.inject_pad_ns
                << " ns/iteration into each cell's B pass "
                   "(SPC_PAD_NS_PER_ITER)\n";
    }
    SuiteRun run = run_suite(cfg, formats, o.ledger_path, /*aa=*/true,
                             o.inject_pad_ns, "A/A suite");
    baseline = std::move(run.a);
    current = std::move(run.b);
  } else {
    if (o.baseline_path.empty()) {
      o.baseline_path = "results/baselines/" + machine_id + ".jsonl";
    }
    std::size_t bad = 0;
    baseline = spc::obs::read_ledger(o.baseline_path, &bad);
    if (baseline.empty()) {
      std::cerr << "error: no baseline at " << o.baseline_path
                << "\nrecord one first:\n  " << argv[0]
                << (o.smoke ? " --smoke" : "") << " --record "
                << o.baseline_path << "\n";
      return 2;
    }
    std::cout << "baseline: " << o.baseline_path << " (" << baseline.size()
              << " cells" << (bad ? ", " + std::to_string(bad) + " bad lines"
                                  : std::string())
              << ")\n";
    if (o.inject_pad_ns > 0) {
      std::cout << "injecting " << o.inject_pad_ns
                << " ns/iteration into the current run "
                   "(SPC_PAD_NS_PER_ITER)\n";
    }
    SuiteRun run = run_suite(cfg, formats, o.ledger_path, /*aa=*/false,
                             o.inject_pad_ns, "current run");
    current = std::move(run.b);
  }
  if (current.empty()) {
    std::cerr << "error: no cells timed\n";
    return 2;
  }

  return finish(o, spc::obs::compare_ledgers(baseline, current, o.th));
}
