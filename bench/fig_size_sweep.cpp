// Size sweep: time-per-nnz vs working-set size for CSR / CSR-DU / CSR-VI
// on one fixed structure (2D Laplacian) scaled from cache-resident to far
// beyond — the crossover view behind the paper's MS/ML discussion: the
// compressed formats' relative cost falls as the working set outgrows
// the cache and the kernel turns memory bound.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/gen/generators.hpp"
#include "spc/mm/stats.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

void run() {
  const BenchConfig cfg = BenchConfig::from_env();
  std::cout << "=== Size sweep: ns/nnz vs working set (2D Laplacian) "
               "===\n[" << cfg.describe() << "]\n";
  TextTable table({"grid", "nnz", "ws", "csr ns/nnz", "du ns/nnz",
                   "vi ns/nnz", "du/csr", "vi/csr"});
  std::vector<std::vector<std::string>> csv_rows;
  const index_t grids_small[] = {48, 96, 160, 240, 320, 480};
  const index_t grids_bench[] = {96, 192, 320, 512, 768, 1024, 1400};
  const bool big = cfg.scale == CorpusScale::kBench;
  const index_t* grids = big ? grids_bench : grids_small;
  const std::size_t ngrids = big ? 7 : 6;

  for (std::size_t g = 0; g < ngrids; ++g) {
    const index_t n = grids[g];
    const Triplets t = gen_laplacian_2d(n, n);
    const MatrixStats s = compute_stats(t);

    const auto per_nnz_ns = [&](Format f) {
      SpmvInstance inst(t, f);
      const double secs = time_spmv(inst, cfg.iterations, cfg.warmup);
      return secs / static_cast<double>(cfg.iterations) /
             static_cast<double>(t.nnz()) * 1e9;
    };
    const double csr = per_nnz_ns(Format::kCsr);
    const double du = per_nnz_ns(Format::kCsrDu);
    const double vi = per_nnz_ns(Format::kCsrVi);
    std::vector<std::string> row = {
        std::to_string(n) + "^2", std::to_string(t.nnz()),
        human_bytes(s.working_set_bytes()), fmt_fixed(csr, 3),
        fmt_fixed(du, 3), fmt_fixed(vi, 3),
        fmt_fixed(csr > 0 ? du / csr : 0.0, 2),
        fmt_fixed(csr > 0 ? vi / csr : 0.0, 2)};
    table.add_row(row);
    csv_rows.push_back(std::move(row));
  }
  table.print(std::cout);
  write_csv("fig_size_sweep.csv",
            {"grid", "nnz", "ws", "csr_ns", "du_ns", "vi_ns", "du_rel",
             "vi_rel"},
            csv_rows);
  std::cout << "series: fig_size_sweep.csv — watch du/csr and vi/csr "
               "fall as ws outgrows the cache\n\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
