// Ablation of the CSR-DU encoder knobs (DESIGN.md §6, items 1-2):
//  * split_threshold — finalize vs widen a unit when a wider delta class
//    appears (§IV's unit formation policy),
//  * max_unit — unit length cap,
//  * RLE1 dense-run units (the CF'08-style extension).
// Reports the ctl size relative to CSR col_ind and the serial SpMV time
// on a DU-sensitive subset of the corpus.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/formats/csr.hpp"
#include "spc/formats/csr_du.hpp"
#include "spc/mm/vector.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {
namespace {

double time_du(const CsrDu& du, const Vector& x, Vector& y,
               std::size_t iters) {
  spmv(du, x.data(), y.data());  // warmup
  Timer t;
  for (std::size_t i = 0; i < iters; ++i) {
    spmv(du, x.data(), y.data());
  }
  return t.elapsed_s();
}

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 6;
  std::cout << "=== Ablation: CSR-DU encoder parameters ===\n["
            << cfg.describe() << "]\n";

  struct Variant {
    const char* label;
    CsrDuOptions opts;
  };
  std::vector<Variant> variants;
  for (const std::uint32_t st : {1u, 2u, 8u, 64u}) {
    CsrDuOptions o;
    o.split_threshold = st;
    variants.push_back({nullptr, o});
  }
  {
    CsrDuOptions o;
    o.max_unit = 16;
    variants.push_back({"max_unit=16", o});
  }
  {
    CsrDuOptions o;
    o.enable_rle = true;
    variants.push_back({"rle on", o});
  }

  TextTable table({"matrix", "variant", "ctl/col_ind", "units",
                   "serial time (ms)", "vs default"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    const Csr csr = Csr::from_triplets(mc.mat);
    const double col_ind_bytes = static_cast<double>(csr.nnz()) * 4.0;
    Rng rng(1);
    const Vector x = random_vector(mc.mat.ncols(), rng);
    Vector y(mc.mat.nrows(), 0.0);

    double default_time = 0.0;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const CsrDuOptions& o = variants[v].opts;
      const CsrDu du = CsrDu::from_triplets(mc.mat, o);
      const double secs = time_du(du, x, y, cfg.iterations);
      if (v == 2) {  // split_threshold=8 is the default configuration
        default_time = secs;
      }
      std::string label =
          variants[v].label
              ? variants[v].label
              : "split=" + std::to_string(o.split_threshold);
      table.add_row(
          {mc.name, std::move(label),
           fmt_fixed(static_cast<double>(du.ctl_bytes()) / col_ind_bytes,
                     3),
           std::to_string(du.unit_count()), fmt_fixed(secs * 1e3, 2),
           default_time > 0.0 ? fmt_fixed(secs / default_time, 2) : "-"});
    }
  });
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
