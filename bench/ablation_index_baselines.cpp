// Ablation of index-compression baselines (DESIGN.md §6, item 4): CSR vs
// CSR-16 (the Williams et al. short-index trick, §III-D) vs BCSR
// (blocking, §III-A/B) vs DCSR (fine-grained delta commands, §III-B) vs
// CSR-DU. Reports matrix size relative to CSR and serial + multithreaded
// SpMV time on a corpus subset.
#include <iostream>

#include "spc/bench/harness.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

void run() {
  BenchConfig cfg = BenchConfig::from_env();
  cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 8;
  const std::size_t mt =
      *std::max_element(cfg.threads.begin(), cfg.threads.end());
  std::cout << "=== Ablation: index baselines (CSR / CSR16 / BCSR / DCSR "
               "/ CSR-DU) ===\n[" << cfg.describe() << "]\n";

  TextTable table({"matrix", "format", "size/csr", "serial ms",
                   "x" + std::to_string(mt) + " ms", "mt speedup vs csr"});
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    InstanceOptions opts;
    opts.pin_threads = cfg.pin_threads;

    SpmvInstance csr(mc.mat, Format::kCsr, 1, opts);
    const double csr_b = static_cast<double>(csr.matrix_bytes());
    SpmvInstance csr_mt(mc.mat, Format::kCsr, mt, opts);
    const double t_csr_mt = time_spmv(csr_mt, cfg.iterations, cfg.warmup);

    for (const Format f : {Format::kCsr, Format::kCsr16, Format::kBcsr,
                           Format::kDcsr, Format::kCsrDu}) {
      if (f == Format::kCsr16 && mc.mat.ncols() > 65536) {
        table.add_row({mc.name, "csr16", "-", "n/a (ncols>2^16)", "-",
                       "-"});
        continue;
      }
      SpmvInstance serial(mc.mat, f, 1, opts);
      SpmvInstance multi(mc.mat, f, mt, opts);
      const double t1 = time_spmv(serial, cfg.iterations, cfg.warmup);
      const double tn = time_spmv(multi, cfg.iterations, cfg.warmup);
      table.add_row(
          {mc.name, format_name(f),
           fmt_fixed(static_cast<double>(serial.matrix_bytes()) / csr_b, 2),
           fmt_fixed(t1 * 1e3, 2), fmt_fixed(tn * 1e3, 2),
           fmt_fixed(tn > 0 ? t_csr_mt / tn : 0.0, 2)});
    }
  });
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace spc

int main() {
  spc::run();
  return 0;
}
