// Ablation: work scheduling — static owner-computes vs chunked
// self-scheduling vs NUMA-aware work stealing, across formats and
// thread counts.
//
// The static nnz-balanced split is optimal when cost per non-zero is
// uniform, but compression skews it: CSR-DU decode cost varies with
// delta structure, cache misses vary with column locality, and a
// co-scheduled daemon stalls one worker's whole range. The dynamic
// schedules split each worker's range into cache-sized row-aligned
// chunks; "steal" lets idle workers drain other deques, preferring
// same-NUMA-node victims so stolen chunks keep their page locality.
// Chunks never split a row, so results are bit-identical to static at
// the scalar tier (see dispatch_fuzz_test) — this ablation measures
// pure scheduling cost/benefit.
//
// Rows are schedule x format x threads per matrix; the summary then
// aggregates per (class, schedule) at the highest thread count, which
// is where the acceptance question lives: does stealing cut busy-time
// imbalance on skewed classes (graph, kronecker, irregular) without
// costing ns/nnz on regular ones (fem, banded)?
//
// JSONL (under SPC_METRICS) carries "schedule", "sched_chunks", and
// "steals"; profile_report groups by (format, isa, numa, schedule,
// threads).
//
// Usage: ablation_schedule [--smoke]
//   --smoke: a few matrices, few iterations — CI wiring check, not a
//   measurement.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "spc/bench/harness.hpp"
#include "spc/support/strutil.hpp"

namespace spc {
namespace {

struct CellStat {
  double log_ns_sum = 0.0;  ///< for the geo-mean of ns/nnz
  double imb_sum = 0.0;
  std::uint64_t steals = 0;
  std::size_t n = 0;
};

void run(bool smoke) {
  // The sweep sets schedules programmatically; a stray SPC_SCHED in the
  // environment would override every cell to one value.
  ::unsetenv("SPC_SCHED");

  BenchConfig cfg = BenchConfig::from_env();
  if (smoke) {
    cfg.iterations = 8;
    cfg.warmup = 1;
    cfg.max_matrices = cfg.max_matrices ? cfg.max_matrices : 3;
    cfg.threads = {4};
  }
  std::cout << "=== Ablation: work scheduling ===\n[" << cfg.describe()
            << (smoke ? ", smoke" : "") << "]\n";

  const Format formats[] = {Format::kCsr, Format::kCsrDu, Format::kCsrVi};
  const Schedule schedules[] = {Schedule::kStatic, Schedule::kChunked,
                                Schedule::kSteal};

  std::size_t max_threads = 1;
  for (const std::size_t n : cfg.threads) {
    max_threads = std::max(max_threads, n);
  }

  TextTable table({"matrix", "cls", "format", "sched", "threads", "MFLOPS",
                   "vs static", "imbalance", "chunks", "steals"});
  // (class, schedule) at max_threads -> aggregate for the summary.
  std::map<std::pair<std::string, std::string>, CellStat> by_class;

  for_each_matrix(cfg, [&](MatrixCase& mc) {
    for (const Format fmt : formats) {
      for (const std::size_t n : cfg.threads) {
        if (n < 2) {
          continue;  // scheduling only matters multithreaded
        }
        double mflops_static = 0.0;
        for (const Schedule sched : schedules) {
          InstanceOptions opts;
          opts.pin_threads = cfg.pin_threads;
          opts.schedule = sched;
          SpmvInstance inst(mc.mat, fmt, n, opts);
          RunMetrics m = time_spmv_metrics(inst, cfg.iterations, cfg.warmup);
          if (sched == Schedule::kStatic) {
            mflops_static = m.mflops;
          }
          table.add_row(
              {mc.name, mc.cls, format_name(fmt),
               schedule_name(inst.schedule()), std::to_string(n),
               fmt_fixed(m.mflops, 1),
               mflops_static > 0.0 ? fmt_fixed(m.mflops / mflops_static, 2)
                                   : "-",
               m.imbalance > 0.0 ? fmt_fixed(m.imbalance, 2) : "-",
               m.sched_chunks ? std::to_string(m.sched_chunks) : "-",
               inst.schedule() == Schedule::kSteal ? std::to_string(m.steals)
                                                   : "-"});
          emit_metrics_record("ablation_schedule", mc, inst, m, 0.0, {});

          if (n == max_threads) {
            const double nnz_total = static_cast<double>(inst.nnz()) *
                                     static_cast<double>(cfg.iterations);
            CellStat& c =
                by_class[{mc.cls, schedule_name(inst.schedule())}];
            if (nnz_total > 0.0 && m.seconds > 0.0) {
              c.log_ns_sum += std::log(m.seconds * 1e9 / nnz_total);
              c.imb_sum += m.imbalance;
              c.steals += m.steals;
              ++c.n;
            }
          }
        }
      }
    }
  });
  table.print(std::cout);

  TextTable summary({"cls", "sched", "cells", "geomean ns/nnz",
                     "mean imbalance", "steals"});
  for (const auto& [key, c] : by_class) {
    if (c.n == 0) {
      continue;
    }
    const double dn = static_cast<double>(c.n);
    summary.add_row({key.first, key.second, std::to_string(c.n),
                     fmt_fixed(std::exp(c.log_ns_sum / dn), 3),
                     fmt_fixed(c.imb_sum / dn, 2),
                     key.second == "steal" ? std::to_string(c.steals) : "-"});
  }
  std::cout << "\nper-(class, schedule) aggregate at " << max_threads
            << " threads:\n";
  summary.print(std::cout);
  std::cout << "\nnote: \"sched\" is the schedule in effect after "
               "resolution (dynamic schedules require the pool backend); "
               "\"imbalance\" is max/mean worker busy time over the timed "
               "loop; \"steals\" counts chunks executed by non-owners. "
               "On hosts with fewer CPUs than threads, the dynamic rows "
               "measure time-slicing, not scheduling — compare only at "
               "thread counts the hardware can actually run.\n";
}

}  // namespace
}  // namespace spc

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: ablation_schedule [--smoke]\n";
      return 2;
    }
  }
  spc::run(smoke);
  return 0;
}
