// Regenerates Fig 8 of the paper: per-matrix CSR-VI speedups relative to
// the serial CSR baseline on the ttu > 5 subset.
#include <iostream>

#include "spc/bench/experiments.hpp"

int main() {
  const spc::BenchConfig cfg = spc::BenchConfig::from_env();
  spc::run_detail_figure(cfg, spc::Format::kCsrVi, /*vi_subset=*/true,
                         "fig8_csr_vi_detail.csv", std::cout);
  return 0;
}
