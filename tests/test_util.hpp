// Shared helpers for the spc test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "spc/mm/triplets.hpp"
#include "spc/mm/vector.hpp"
#include "spc/support/rng.hpp"

namespace spc::test {

/// RAII environment-variable override (restores the prior value). Tests
/// that assert bit-exact cross-format equality pin SPC_ISA=scalar with
/// this: the scalar tier keeps the shared per-row accumulation order,
/// while vector tiers reassociate lane sums.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// The paper's 6×6 example matrix (Fig 1). Golden data for CSR, CSR-DU
/// (Table I) and CSR-VI (Fig 4) layouts.
inline Triplets paper_matrix() {
  Triplets t(6, 6);
  t.add(0, 0, 5.4);
  t.add(0, 1, 1.1);
  t.add(1, 1, 6.3);
  t.add(1, 3, 7.7);
  t.add(1, 5, 8.8);
  t.add(2, 2, 1.1);
  t.add(3, 2, 2.9);
  t.add(3, 4, 3.7);
  t.add(3, 5, 2.9);
  t.add(4, 0, 9.0);
  t.add(4, 3, 1.1);
  t.add(4, 4, 4.5);
  t.add(5, 0, 1.1);
  t.add(5, 2, 2.9);
  t.add(5, 3, 3.7);
  t.add(5, 5, 1.1);
  t.sort_and_combine();
  return t;
}

/// Dense reference SpMV: straightforward O(nnz) accumulation.
inline Vector reference_spmv(const Triplets& t, const Vector& x) {
  Vector y(t.nrows(), 0.0);
  for (const Entry& e : t.entries()) {
    y[e.row] += e.val * x[e.col];
  }
  return y;
}

/// Random sparse triplets with `nnz_target` draws (duplicates combined).
inline Triplets random_triplets(index_t nrows, index_t ncols,
                                usize_t nnz_target, Rng& rng,
                                std::uint32_t value_pool = 0) {
  Triplets t(nrows, ncols);
  std::vector<value_t> pool;
  for (std::uint32_t i = 0; i < value_pool; ++i) {
    pool.push_back(rng.next_double(-2.0, 2.0));
  }
  for (usize_t k = 0; k < nnz_target; ++k) {
    const auto r = static_cast<index_t>(rng.next_below(nrows));
    const auto c = static_cast<index_t>(rng.next_below(ncols));
    const value_t v = pool.empty()
                          ? rng.next_double(-2.0, 2.0)
                          : pool[rng.next_below(pool.size())];
    t.add(r, c, v);
  }
  t.sort_and_combine();
  return t;
}

/// Asserts both triplet sets represent the same matrix.
inline void expect_triplets_eq(const Triplets& a, const Triplets& b) {
  ASSERT_EQ(a.nrows(), b.nrows());
  ASSERT_EQ(a.ncols(), b.ncols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (usize_t i = 0; i < a.nnz(); ++i) {
    const Entry& ea = a.entries()[i];
    const Entry& eb = b.entries()[i];
    ASSERT_EQ(ea.row, eb.row) << "entry " << i;
    ASSERT_EQ(ea.col, eb.col) << "entry " << i;
    ASSERT_DOUBLE_EQ(ea.val, eb.val) << "entry " << i;
  }
}

}  // namespace spc::test
