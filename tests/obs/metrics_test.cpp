#include "spc/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace spc::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SumsAcrossConcurrentWriters) {
  // More threads than shards, so slots are shared; the relaxed
  // fetch_adds must still account for every increment.
  Counter c;
  constexpr int kThreads = 24;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&c] {
      for (int j = 0; j < kPerThread; ++j) {
        c.add();
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.25);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(LatencyHisto, BucketsByBitWidth) {
  LatencyHisto h;
  h.record(0);    // bucket 0
  h.record(1);    // bit_width 1
  h.record(7);    // bit_width 3: [4, 8)
  h.record(8);    // bit_width 4: [8, 16)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 16u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 4.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(LatencyHisto, BucketLowerEdges) {
  EXPECT_EQ(LatencyHisto::bucket_lower_ns(0), 0u);
  EXPECT_EQ(LatencyHisto::bucket_lower_ns(1), 1u);
  EXPECT_EQ(LatencyHisto::bucket_lower_ns(4), 8u);
}

TEST(LatencyHisto, HugeSamplesClampToLastBucket) {
  LatencyHisto h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(LatencyHisto::kBuckets - 1), 1u);
}

TEST(LatencyHisto, QuantilesWalkTheBuckets) {
  LatencyHisto h;
  EXPECT_EQ(h.quantile_upper_ns(0.5), 0u);  // empty
  for (int i = 0; i < 99; ++i) {
    h.record(3);  // bucket 2, upper edge 4
  }
  h.record(1000);  // bucket 10, upper edge 1024
  EXPECT_EQ(h.quantile_upper_ns(0.5), 4u);
  EXPECT_EQ(h.quantile_upper_ns(0.99), 4u);
  EXPECT_EQ(h.quantile_upper_ns(1.0), 1024u);
}

TEST(LatencyHisto, PowerOfTwoSamplesLandAtBucketLowerEdge) {
  // 2^k has bit width k+1, so it is the *inclusive lower* edge of
  // bucket k+1, not the upper edge of bucket k — the boundary most
  // easily gotten wrong.
  for (const std::size_t k : {1u, 4u, 10u, 20u}) {
    LatencyHisto h;
    const std::uint64_t v = std::uint64_t{1} << k;
    h.record(v);
    h.record(v - 1);  // bit width k → bucket k
    EXPECT_EQ(h.bucket_count(k + 1), 1u) << "2^" << k;
    EXPECT_EQ(h.bucket_count(k), 1u) << "2^" << k << " - 1";
    EXPECT_EQ(LatencyHisto::bucket_lower_ns(k + 1), v);
  }
}

TEST(LatencyHisto, QuantileAtExactRankBoundary) {
  // 50 samples in bucket 2, 50 in bucket 10: rank(0.5) == 50 lands
  // exactly on the last sample of the low bucket, so p50 must report
  // the low bucket's upper edge, and anything past it the high one.
  LatencyHisto h;
  for (int i = 0; i < 50; ++i) {
    h.record(3);     // bucket 2, upper edge 4
  }
  for (int i = 0; i < 50; ++i) {
    h.record(1000);  // bucket 10, upper edge 1024
  }
  EXPECT_EQ(h.quantile_upper_ns(0.5), 4u);
  EXPECT_EQ(h.quantile_upper_ns(0.500001), 1024u);
  EXPECT_EQ(h.quantile_upper_ns(0.0), 4u);  // rank floors at 1
  EXPECT_EQ(h.quantile_upper_ns(1.0), 1024u);
}

TEST(LatencyHisto, TopOverflowBucketSaturatesQuantile) {
  // Samples in the top bucket have no finite upper edge; the quantile
  // must saturate to the ~0 sentinel rather than fabricate a bound.
  LatencyHisto h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.quantile_upper_ns(0.5), ~std::uint64_t{0});
  EXPECT_EQ(h.quantile_upper_ns(1.0), ~std::uint64_t{0});
  // Mixed with small samples the sentinel only shows past their mass.
  for (int i = 0; i < 99; ++i) {
    h.record(3);
  }
  EXPECT_EQ(h.quantile_upper_ns(0.5), 4u);
  EXPECT_EQ(h.quantile_upper_ns(1.0), ~std::uint64_t{0});
}

TEST(LatencyHisto, QuantileClampsOutOfRangeInputs) {
  LatencyHisto h;
  for (int i = 0; i < 10; ++i) {
    h.record(3);
  }
  EXPECT_EQ(h.quantile_upper_ns(-0.5), 4u);
  EXPECT_EQ(h.quantile_upper_ns(1.5), 4u);
}

TEST(LatencyHisto, ResetClearsEverything) {
  LatencyHisto h;
  h.record(100);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ns(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
}

TEST(Registry, ReturnsStableReferences) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("spc.test.metrics.stable");
  // Force rebalancing-ish churn: many other instruments.
  for (int i = 0; i < 100; ++i) {
    reg.counter("spc.test.metrics.churn." + std::to_string(i));
  }
  Counter& b = reg.counter("spc.test.metrics.stable");
  EXPECT_EQ(&a, &b);
}

TEST(Registry, SnapshotSeesAllInstrumentKinds) {
  Registry& reg = Registry::global();
  reg.counter("spc.test.metrics.snap.c").add(5);
  reg.gauge("spc.test.metrics.snap.g").set(2.5);
  LatencyHisto& h = reg.histogram("spc.test.metrics.snap.h");
  h.record(10);
  h.record(30);

  const Registry::Snapshot snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.count("spc.test.metrics.snap.c"));
  EXPECT_GE(snap.counters.at("spc.test.metrics.snap.c"), 5u);
  ASSERT_TRUE(snap.gauges.count("spc.test.metrics.snap.g"));
  EXPECT_DOUBLE_EQ(snap.gauges.at("spc.test.metrics.snap.g"), 2.5);
  ASSERT_TRUE(snap.histograms.count("spc.test.metrics.snap.h"));
  const auto& hs = snap.histograms.at("spc.test.metrics.snap.h");
  EXPECT_GE(hs.count, 2u);
  EXPECT_GT(hs.mean_ns, 0.0);
  EXPECT_GE(hs.p99_upper_ns, hs.p50_upper_ns);
}

TEST(Registry, ResetZeroesCountersAndHistosButKeepsGauges) {
  Registry& reg = Registry::global();
  reg.counter("spc.test.metrics.reset.c").add(3);
  reg.gauge("spc.test.metrics.reset.g").set(9.0);
  reg.histogram("spc.test.metrics.reset.h").record(7);
  reg.reset();
  EXPECT_EQ(reg.counter("spc.test.metrics.reset.c").value(), 0u);
  EXPECT_EQ(reg.histogram("spc.test.metrics.reset.h").count(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("spc.test.metrics.reset.g").value(), 9.0);
}

}  // namespace
}  // namespace spc::obs
