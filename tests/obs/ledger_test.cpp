#include "spc/obs/ledger.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "spc/support/error.hpp"

namespace spc::obs {
namespace {

MachineFingerprint sample_fp() {
  MachineFingerprint fp;
  fp.cpu_model = "Test CPU @ 3.00GHz";
  fp.cpus = 8;
  fp.numa_nodes = 2;
  fp.llc_bytes = 16ull << 20;
  fp.llc_instances = 2;
  fp.l2_bytes = 1ull << 20;
  fp.isa = "avx2";
  fp.hostname = "box-a";
  return fp;
}

TEST(MachineFingerprint, JsonRoundTrip) {
  const MachineFingerprint fp = sample_fp();
  const MachineFingerprint back = MachineFingerprint::from_json(fp.to_json());
  EXPECT_EQ(back.cpu_model, fp.cpu_model);
  EXPECT_EQ(back.cpus, fp.cpus);
  EXPECT_EQ(back.numa_nodes, fp.numa_nodes);
  EXPECT_EQ(back.llc_bytes, fp.llc_bytes);
  EXPECT_EQ(back.llc_instances, fp.llc_instances);
  EXPECT_EQ(back.l2_bytes, fp.l2_bytes);
  EXPECT_EQ(back.isa, fp.isa);
  EXPECT_EQ(back.hostname, fp.hostname);
  EXPECT_EQ(back.id(), fp.id());
}

TEST(MachineFingerprint, IdIs16HexDigitsAndStable) {
  const std::string id = sample_fp().id();
  EXPECT_EQ(id.size(), 16u);
  EXPECT_EQ(id.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(id, sample_fp().id());
}

TEST(MachineFingerprint, IdIgnoresHostnameButNotHardware) {
  MachineFingerprint a = sample_fp();
  MachineFingerprint b = sample_fp();
  b.hostname = "box-b";
  // Same hardware on two hosts → same id (baselines are shareable).
  EXPECT_EQ(a.id(), b.id());
  b.llc_bytes *= 2;
  EXPECT_NE(a.id(), b.id());
  MachineFingerprint c = sample_fp();
  c.isa = "sse4.2";
  EXPECT_NE(a.id(), c.id());
}

TEST(MachineFingerprint, HostDiscoveryPopulatesBasics) {
  const MachineFingerprint& fp = machine_fingerprint();
  EXPECT_GT(fp.cpus, 0u);
  EXPECT_GE(fp.numa_nodes, 1u);
  EXPECT_FALSE(fp.isa.empty());
  // Same process → same cached fingerprint object.
  EXPECT_EQ(&fp, &machine_fingerprint());
}

TEST(BuildGitSha, EnvOverrideWins) {
  ::setenv("SPC_GIT_SHA", "deadbeef1234", 1);
  EXPECT_EQ(build_git_sha(), "deadbeef1234");
  ::unsetenv("SPC_GIT_SHA");
  EXPECT_FALSE(build_git_sha().empty());
}

Json full_record() {
  Json j = Json::object();
  j.set("bench", "regress_check");
  j.set("git_sha", "abc123");
  j.set("machine_id", "0123456789abcdef");
  j.set("machine", sample_fp().to_json());
  j.set("matrix", "lap2d-s");
  j.set("cls", "stencil");
  j.set("set", "MS");
  j.set("format", "csr-du");
  j.set("isa", "avx2");
  j.set("numa", "off");
  j.set("schedule", "static");
  j.set("threads", std::uint64_t{2});
  j.set("nnz", std::uint64_t{12345});
  j.set("iters", std::uint64_t{4});
  j.set("seconds", 0.004);
  j.set("ns_per_nnz", 81.0);
  j.set("bytes_per_nnz", 12.5);
  Json roof = Json::object();
  roof.set("gbps", 10.0);
  roof.set("min_ns_per_nnz", 1.25);
  roof.set("frac", 0.5);
  j.set("roofline", std::move(roof));
  Json samples = Json::array();
  samples.push(1000.0);
  samples.push(1010.0);
  samples.push(990.0);
  samples.push(1005.0);
  j.set("samples_ns", std::move(samples));
  return j;
}

TEST(ParseLedgerRecord, FullRecord) {
  LedgerRecord r;
  ASSERT_TRUE(parse_ledger_record(full_record(), &r));
  EXPECT_EQ(r.bench, "regress_check");
  EXPECT_EQ(r.matrix, "lap2d-s");
  EXPECT_EQ(r.format, "csr-du");
  EXPECT_EQ(r.isa, "avx2");
  EXPECT_EQ(r.threads, 2u);
  EXPECT_EQ(r.machine_id, "0123456789abcdef");
  EXPECT_EQ(r.git_sha, "abc123");
  EXPECT_EQ(r.nnz, 12345u);
  EXPECT_DOUBLE_EQ(r.ns_per_nnz, 81.0);
  EXPECT_DOUBLE_EQ(r.bytes_per_nnz, 12.5);
  EXPECT_DOUBLE_EQ(r.frac_roofline, 0.5);
  ASSERT_EQ(r.samples_ns.size(), 4u);
  EXPECT_DOUBLE_EQ(r.samples_ns[0], 1000.0);
}

TEST(ParseLedgerRecord, PreLedgerRecordGetsDefaults) {
  // A record written before the ledger existed: no machine, no samples,
  // no isa/numa/schedule.
  Json j = Json::object();
  j.set("bench", "table2");
  j.set("matrix", "lap3d-s");
  j.set("format", "csr");
  j.set("threads", std::uint64_t{1});
  LedgerRecord r;
  ASSERT_TRUE(parse_ledger_record(j, &r));
  EXPECT_EQ(r.isa, "scalar");
  EXPECT_EQ(r.numa, "off");
  EXPECT_EQ(r.schedule, "static");
  EXPECT_TRUE(r.machine_id.empty());
  EXPECT_TRUE(r.samples_ns.empty());
}

TEST(ParseLedgerRecord, RejectsNonRecords) {
  LedgerRecord r;
  EXPECT_FALSE(parse_ledger_record(Json::object(), &r));
  EXPECT_FALSE(parse_ledger_record(Json(1), &r));
  Json j = Json::object();
  j.set("matrix", "m");  // format missing
  EXPECT_FALSE(parse_ledger_record(j, &r));
}

TEST(ParseLedgerRecord, DropsNonFiniteSamples) {
  Json j = full_record();
  Json samples = Json::array();
  samples.push(100.0);
  samples.push(Json());  // serialized NaN → null
  samples.push(200.0);
  j.set("samples_ns", std::move(samples));
  LedgerRecord r;
  ASSERT_TRUE(parse_ledger_record(j, &r));
  ASSERT_EQ(r.samples_ns.size(), 2u);
  EXPECT_DOUBLE_EQ(r.samples_ns[0], 100.0);
  EXPECT_DOUBLE_EQ(r.samples_ns[1], 200.0);
}

TEST(LedgerRecord, KeyCoversCellCoordinatesNotMachine) {
  LedgerRecord r;
  ASSERT_TRUE(parse_ledger_record(full_record(), &r));
  EXPECT_EQ(r.key(),
            "regress_check|lap2d-s|csr-du|avx2|off|static|off|0|no|2");
  LedgerRecord other = r;
  other.machine_id = "ffffffffffffffff";
  EXPECT_EQ(other.key(), r.key());  // machine checked separately
  other.threads = 4;
  EXPECT_NE(other.key(), r.key());
}

TEST(Ledger, AppendAndReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/spc_ledger_rt.jsonl";
  std::remove(path.c_str());
  append_ledger(path, full_record());
  append_ledger(path, full_record());
  std::size_t bad = 0;
  const std::vector<LedgerRecord> rows = read_ledger(path, &bad);
  EXPECT_EQ(bad, 0u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key(), rows[1].key());
  EXPECT_EQ(rows[0].samples_ns.size(), 4u);
}

TEST(Ledger, ReadSkipsBadLinesAndMissingFileIsEmpty) {
  const std::string path = ::testing::TempDir() + "/spc_ledger_bad.jsonl";
  {
    std::ofstream f(path);
    f << full_record().dump() << "\n";
    f << "this is not json\n";
    f << "{\"matrix\":\"x\"}\n";  // json but not a record
    f << "\n";                    // blank lines are not an error
  }
  std::size_t bad = 0;
  EXPECT_EQ(read_ledger(path, &bad).size(), 1u);
  EXPECT_EQ(bad, 2u);
  EXPECT_TRUE(read_ledger("/nonexistent/spc.jsonl").empty());
}

TEST(Ledger, AppendToUnwritablePathThrows) {
  EXPECT_THROW(append_ledger("/nonexistent-dir/x.jsonl", full_record()),
               Error);
}

}  // namespace
}  // namespace spc::obs
