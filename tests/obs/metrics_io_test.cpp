#include "spc/obs/metrics_io.hpp"

#include <gtest/gtest.h>
#include <signal.h>

#include <fstream>
#include <string>
#include <vector>

namespace spc::obs {
namespace {

Json small_record(int i) {
  Json j = Json::object();
  j.set("bench", "test");
  j.set("i", std::int64_t{i});
  return j;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(MetricsSink, DisabledSinkIgnoresWrites) {
  MetricsSink& sink = MetricsSink::global();
  sink.close_for_testing();
  EXPECT_FALSE(sink.enabled());
  sink.write(small_record(0));
  EXPECT_EQ(sink.buffered_bytes(), 0u);
}

TEST(MetricsSink, WritesAreBufferedUntilFlush) {
  const std::string path = ::testing::TempDir() + "/spc_sink_buf.jsonl";
  MetricsSink& sink = MetricsSink::global();
  sink.open_for_testing(path);
  sink.write(small_record(1));
  sink.write(small_record(2));
  // Small records sit in the buffer — nothing on disk yet.
  EXPECT_GT(sink.buffered_bytes(), 0u);
  EXPECT_TRUE(read_lines(path).empty());
  sink.flush();
  EXPECT_EQ(sink.buffered_bytes(), 0u);
  EXPECT_EQ(read_lines(path).size(), 2u);
  sink.close_for_testing();
}

TEST(MetricsSink, ThresholdTriggersAutomaticFlush) {
  const std::string path = ::testing::TempDir() + "/spc_sink_auto.jsonl";
  MetricsSink& sink = MetricsSink::global();
  sink.open_for_testing(path);
  // A record well past the 64 KiB threshold must hit the file without
  // an explicit flush.
  Json j = Json::object();
  j.set("blob", std::string(70 * 1024, 'x'));
  sink.write(j);
  EXPECT_EQ(sink.buffered_bytes(), 0u);
  EXPECT_EQ(read_lines(path).size(), 1u);
  sink.close_for_testing();
}

TEST(MetricsSink, CloseFlushesPendingRecords) {
  // perf_counters_test and friends read the file right after
  // close_for_testing — buffered records must not be lost.
  const std::string path = ::testing::TempDir() + "/spc_sink_close.jsonl";
  MetricsSink& sink = MetricsSink::global();
  sink.open_for_testing(path);
  sink.write(small_record(7));
  sink.close_for_testing();
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"i\":7"), std::string::npos);
}

TEST(MetricsSinkDeathTest, SigtermFlushesBufferAndKills) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "/spc_sink_term.jsonl";
  std::remove(path.c_str());
  // The child opens the sink, buffers one record, and dies by SIGTERM.
  // The handler must drain the buffer before the signal kills it.
  EXPECT_EXIT(
      {
        MetricsSink& sink = MetricsSink::global();
        sink.open_for_testing(path);
        sink.write(small_record(42));
        ::raise(SIGTERM);
      },
      ::testing::KilledBySignal(SIGTERM), "");
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u) << "SIGTERM dropped the buffered record";
  EXPECT_NE(lines[0].find("\"i\":42"), std::string::npos);
}

TEST(MetricsSinkDeathTest, SigintFlushesBufferAndKills) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "/spc_sink_int.jsonl";
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        MetricsSink& sink = MetricsSink::global();
        sink.open_for_testing(path);
        sink.write(small_record(43));
        ::raise(SIGINT);
      },
      ::testing::KilledBySignal(SIGINT), "");
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u) << "SIGINT dropped the buffered record";
  EXPECT_NE(lines[0].find("\"i\":43"), std::string::npos);
}

}  // namespace
}  // namespace spc::obs
