#include "spc/obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>

#include "spc/obs/json.hpp"

namespace spc::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Routes the global tracer to a temp file for one test, then disables
/// it again so tests cannot leak state into each other.
class TracerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/spc_trace_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".json";
    Tracer::global().enable_for_testing(path_);
  }
  void TearDown() override { Tracer::global().disable_for_testing(); }

  Json flush_and_parse() {
    Tracer::global().flush();
    return Json::parse(slurp(path_));
  }

  std::string path_;
};

TEST_F(TracerFixture, CompleteSpansAreRecorded) {
  Tracer& t = Tracer::global();
  ASSERT_TRUE(t.enabled());
  t.begin("outer");
  t.begin("inner");
  t.end();
  t.end();

  const Json doc = flush_and_parse();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_EQ(events->at(0).find("name")->as_string(), "outer");
  EXPECT_EQ(events->at(0).find("ph")->as_string(), "X");
  EXPECT_EQ(events->at(1).find("name")->as_string(), "inner");
  // The outer span contains the inner one.
  const double o_ts = events->at(0).find("ts")->as_double();
  const double o_dur = events->at(0).find("dur")->as_double();
  const double i_ts = events->at(1).find("ts")->as_double();
  const double i_dur = events->at(1).find("dur")->as_double();
  EXPECT_LE(o_ts, i_ts);
  EXPECT_GE(o_ts + o_dur, i_ts + i_dur);
}

TEST_F(TracerFixture, InstantEventsUsePhI) {
  Tracer::global().instant("marker");
  const Json doc = flush_and_parse();
  const Json* events = doc.find("traceEvents");
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(events->at(0).find("name")->as_string(), "marker");
  EXPECT_EQ(events->at(0).find("ph")->as_string(), "i");
}

TEST_F(TracerFixture, TraceSpanIsRaii) {
  {
    TraceSpan outer("raii-span");
    TraceSpan inner("raii-nested");
  }
  const Json doc = flush_and_parse();
  EXPECT_EQ(doc.find("traceEvents")->size(), 2u);
}

TEST_F(TracerFixture, ThreadsGetDistinctTids) {
  Tracer& t = Tracer::global();
  t.begin("main-span");
  t.end();
  std::thread worker([&t] {
    t.begin("worker-span");
    t.end();
  });
  worker.join();

  const Json doc = flush_and_parse();
  const Json* events = doc.find("traceEvents");
  ASSERT_EQ(events->size(), 2u);
  EXPECT_NE(events->at(0).find("tid")->as_u64(),
            events->at(1).find("tid")->as_u64());
}

TEST_F(TracerFixture, StillOpenSpansAreMaterializedWithoutPopping) {
  Tracer& t = Tracer::global();
  t.begin("open-span");
  Json doc = flush_and_parse();
  EXPECT_EQ(doc.find("traceEvents")->size(), 1u);
  t.end();  // still balanced: flush must not have popped the span
  doc = flush_and_parse();
  ASSERT_EQ(doc.find("traceEvents")->size(), 1u);
  EXPECT_EQ(doc.find("traceEvents")->at(0).find("name")->as_string(),
            "open-span");
}

TEST_F(TracerFixture, RepeatedFlushRewritesNotAppends) {
  Tracer& t = Tracer::global();
  t.begin("span-a");
  t.end();
  t.flush();
  t.flush();
  const Json doc = Json::parse(slurp(path_));
  EXPECT_EQ(doc.find("traceEvents")->size(), 1u);
}

TEST(Tracer, DisabledSpansCostNothingAndRecordNothing) {
  Tracer& t = Tracer::global();
  t.disable_for_testing();
  EXPECT_FALSE(t.enabled());
  {
    TraceSpan span("ignored");
    t.instant("also-ignored");
  }
  // Re-enable and flush: the disabled-period events must not appear.
  const std::string path = ::testing::TempDir() + "/spc_trace_disabled.json";
  t.enable_for_testing(path);
  t.flush();
  const Json doc = Json::parse(slurp(path));
  EXPECT_EQ(doc.find("traceEvents")->size(), 0u);
  t.disable_for_testing();
}

}  // namespace
}  // namespace spc::obs
