// The counters are best-effort by design: this suite forces
// perf_event_open to fail and asserts the whole stack — PerfSession,
// ThreadPool, time_spmv_metrics, and the emitted JSONL record — degrades
// to complete wall-clock metrics with counters marked unavailable,
// never an error.
#include "spc/obs/perf_counters.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <string>

#include "spc/bench/harness.hpp"
#include "spc/obs/json.hpp"
#include "spc/obs/metrics_io.hpp"
#include "spc/parallel/thread_pool.hpp"

namespace spc {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      saved_ = old;
      had_ = true;
    }
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

long failing_perf_open(void*, int, int, int, unsigned long) {
  errno = EACCES;
  return -1;
}

/// Installs the failing perf_event_open for one scope.
class ForcePerfFailure {
 public:
  ForcePerfFailure() { obs::set_perf_open_for_testing(&failing_perf_open); }
  ~ForcePerfFailure() { obs::set_perf_open_for_testing(nullptr); }
};

TEST(CounterReadings, IpcAndAccumulation) {
  obs::CounterReadings a;
  a.available = true;
  a.cycles = 100;
  a.instructions = 150;
  a.llc_loads = 10;
  a.llc_misses = 4;
  a.has_llc = true;
  a.scale = 1.0;
  EXPECT_DOUBLE_EQ(a.ipc(), 1.5);

  obs::CounterReadings b = a;
  b.scale = 1.5;
  obs::CounterReadings sum = a;
  sum += b;
  EXPECT_TRUE(sum.available);
  EXPECT_EQ(sum.cycles, 200u);
  EXPECT_EQ(sum.llc_misses, 8u);
  EXPECT_TRUE(sum.has_llc);
  EXPECT_DOUBLE_EQ(sum.scale, 1.5);  // worst scale wins

  obs::CounterReadings bad;
  bad.available = false;
  bad.reason = "nope";
  sum += bad;
  EXPECT_FALSE(sum.available);
}

TEST(CounterReadings, ZeroCyclesGivesZeroIpc) {
  obs::CounterReadings r;
  EXPECT_DOUBLE_EQ(r.ipc(), 0.0);
}

TEST(CountersEnabled, HonorsEnvironmentSwitch) {
  {
    EnvGuard off("SPC_COUNTERS", "0");
    EXPECT_FALSE(obs::counters_enabled());
  }
  {
    EnvGuard on("SPC_COUNTERS", "1");
    EXPECT_TRUE(obs::counters_enabled());
  }
}

TEST(PerfSession, OpenFailureIsReportedNotFatal) {
  ForcePerfFailure force;
  obs::PerfSession s;
  EXPECT_FALSE(s.available());
  EXPECT_NE(s.reason().find("perf_event_open"), std::string::npos);
  // The whole lifecycle must stay safe on an unavailable session.
  s.start();
  s.stop();
  const obs::CounterReadings r = s.read();
  EXPECT_FALSE(r.available);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_EQ(r.cycles, 0u);
}

TEST(ThreadPool, CountersUnavailableWhenOpenFails) {
  ForcePerfFailure force;
  ThreadPool pool(2);
  EXPECT_FALSE(pool.counters_available());
  EXPECT_FALSE(pool.counters_reason().empty());
  pool.counters_start();  // must be a harmless no-op
  const obs::CounterReadings r = pool.counters_stop();
  EXPECT_FALSE(r.available);
  EXPECT_FALSE(r.reason.empty());
}

TEST(TimeSpmvMetrics, WallClockSurvivesCounterFailure) {
  ForcePerfFailure force;
  const auto spec = corpus_spec("lap2d-s", CorpusScale::kTiny);
  const Triplets t = spec.build();
  SpmvInstance inst(t, Format::kCsr, 2);
  const RunMetrics m = time_spmv_metrics(inst, 4, 1);

  // Wall-clock metrics are complete...
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_GT(m.mflops, 0.0);
  EXPECT_EQ(m.threads, 2u);
  EXPECT_EQ(m.iterations, 4u);
  EXPECT_GE(m.imbalance, 1.0);
  ASSERT_EQ(m.busy_seconds.size(), 2u);
  EXPECT_GT(m.busy_seconds[0] + m.busy_seconds[1], 0.0);
  // ...and the counters explain themselves.
  EXPECT_FALSE(m.counters.available);
  EXPECT_FALSE(m.counters.reason.empty());
}

TEST(TimeSpmvMetrics, SerialDisabledPathReportsReason) {
  EnvGuard off("SPC_COUNTERS", "0");
  const auto spec = corpus_spec("lap2d-s", CorpusScale::kTiny);
  const Triplets t = spec.build();
  SpmvInstance inst(t, Format::kCsr, 1);
  const RunMetrics m = time_spmv_metrics(inst, 2, 0);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
  EXPECT_FALSE(m.counters.available);
  EXPECT_NE(m.counters.reason.find("SPC_COUNTERS=0"), std::string::npos);
}

TEST(EmitMetricsRecord, UnavailableCountersProduceValidJsonl) {
  ForcePerfFailure force;
  const std::string path =
      ::testing::TempDir() + "/spc_perf_fallback_metrics.jsonl";
  obs::MetricsSink::global().open_for_testing(path);

  BenchConfig cfg;
  cfg.scale = CorpusScale::kTiny;
  cfg.max_matrices = 1;
  std::size_t emitted = 0;
  for_each_matrix(
      cfg,
      [&](MatrixCase& mc) {
        SpmvInstance inst(mc.mat, Format::kCsrDu, 2);
        const RunMetrics m = time_spmv_metrics(inst, 2, 1);
        emit_metrics_record("perf_fallback_test", mc, inst, m, 1.0);
        ++emitted;
      },
      /*apply_rejection=*/false);
  obs::MetricsSink::global().close_for_testing();
  ASSERT_EQ(emitted, 1u);

  std::ifstream f(path);
  std::string line;
  ASSERT_TRUE(std::getline(f, line));
  const obs::Json rec = obs::Json::parse(line);
  ASSERT_TRUE(rec.is_object());
  // Wall-clock fields are all present and sane.
  EXPECT_EQ(rec.find("bench")->as_string(), "perf_fallback_test");
  EXPECT_EQ(rec.find("format")->as_string(), "csr-du");
  EXPECT_EQ(rec.find("threads")->as_u64(), 2u);
  EXPECT_GT(rec.find("seconds")->as_double(), 0.0);
  EXPECT_GT(rec.find("mflops")->as_double(), 0.0);
  EXPECT_GT(rec.find("nnz")->as_u64(), 0u);
  EXPECT_GE(rec.find("imbalance")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(rec.find("speedup_vs_csr")->as_double(), 1.0);
  ASSERT_NE(rec.find("busy_s"), nullptr);
  EXPECT_EQ(rec.find("busy_s")->size(), 2u);
  // Counters are explicitly marked unavailable with a reason.
  ASSERT_NE(rec.find("counters"), nullptr);
  EXPECT_EQ(rec.find("counters")->as_string(), "unavailable");
  EXPECT_FALSE(rec.find("counters_reason")->as_string().empty());
  // No second record.
  EXPECT_FALSE(std::getline(f, line));
}

}  // namespace
}  // namespace spc
