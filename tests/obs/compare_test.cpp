#include "spc/obs/compare.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "spc/support/rng.hpp"

namespace spc::obs {
namespace {

/// Noisy timing-like samples: base µs-scale value plus uniform jitter
/// and an occasional heavy-tail outlier, the shape real per-iteration
/// samples have.
std::vector<double> draw_samples(Rng& rng, std::size_t n, double center_ns,
                                 double jitter_ns) {
  std::vector<double> out(n);
  for (double& v : out) {
    v = center_ns + rng.next_double(-jitter_ns, jitter_ns);
    if (rng.next_bernoulli(0.05)) {
      v += 4.0 * jitter_ns;  // tail: an IRQ hit one iteration
    }
  }
  return out;
}

TEST(BootstrapCi, MedianInsideIntervalAndDeterministic) {
  Rng rng(7);
  const std::vector<double> s = draw_samples(rng, 64, 10000.0, 500.0);
  const BootstrapCi a = bootstrap_median_ci(s);
  EXPECT_LE(a.lo, a.median);
  EXPECT_GE(a.hi, a.median);
  EXPECT_LT(a.lo, a.hi);
  // Same samples, same seed → identical interval (reproducible verdicts).
  const BootstrapCi b = bootstrap_median_ci(s);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapCi, DegenerateInputsCollapse) {
  const BootstrapCi empty = bootstrap_median_ci({});
  EXPECT_DOUBLE_EQ(empty.lo, empty.hi);
  const BootstrapCi one = bootstrap_median_ci({5.0});
  EXPECT_DOUBLE_EQ(one.median, 5.0);
  EXPECT_DOUBLE_EQ(one.lo, 5.0);
  EXPECT_DOUBLE_EQ(one.hi, 5.0);
}

TEST(BootstrapCi, WiderConfidenceWidensInterval) {
  Rng rng(11);
  const std::vector<double> s = draw_samples(rng, 48, 5000.0, 400.0);
  const BootstrapCi narrow = bootstrap_median_ci(s, 1000, 0.80);
  const BootstrapCi wide = bootstrap_median_ci(s, 1000, 0.99);
  EXPECT_LE(wide.lo, narrow.lo);
  EXPECT_GE(wide.hi, narrow.hi);
}

TEST(MannWhitney, IdenticalSamplesNotSignificant) {
  Rng rng(3);
  const std::vector<double> s = draw_samples(rng, 32, 1000.0, 100.0);
  EXPECT_GT(mann_whitney_p(s, s), 0.9);
}

TEST(MannWhitney, ClearShiftIsSignificant) {
  Rng rng(5);
  const std::vector<double> a = draw_samples(rng, 32, 1000.0, 50.0);
  std::vector<double> b = a;
  for (double& v : b) {
    v += 500.0;  // 50% shift, far beyond the jitter
  }
  EXPECT_LT(mann_whitney_p(a, b), 1e-6);
}

TEST(MannWhitney, EdgeCases) {
  EXPECT_DOUBLE_EQ(mann_whitney_p({}, {1.0}), 1.0);
  EXPECT_DOUBLE_EQ(mann_whitney_p({1.0}, {}), 1.0);
  // All values tied → zero variance → indistinguishable.
  EXPECT_DOUBLE_EQ(mann_whitney_p({2.0, 2.0, 2.0}, {2.0, 2.0}), 1.0);
}

TEST(CompareSamples, TooFewSamplesIsIncomparable) {
  const std::vector<double> few = {1.0, 2.0, 3.0};
  const CellComparison c = compare_samples(few, few);
  EXPECT_EQ(c.verdict, Verdict::kIncomparable);
  EXPECT_NE(c.note.find("too few"), std::string::npos);
}

TEST(CompareSamples, DetectsTwentyPercentSlowdown) {
  // The acceptance bar: a ~20% injected slowdown on µs-scale cells must
  // classify regressed (and the mirror image improved).
  Rng rng(17);
  const std::vector<double> base = draw_samples(rng, 96, 10000.0, 300.0);
  std::vector<double> cur = draw_samples(rng, 96, 12000.0, 300.0);
  const CellComparison slow = compare_samples(base, cur);
  EXPECT_EQ(slow.verdict, Verdict::kRegressed);
  EXPECT_GT(slow.ratio, 1.15);
  EXPECT_LT(slow.p_value, 0.01);
  const CellComparison fast = compare_samples(cur, base);
  EXPECT_EQ(fast.verdict, Verdict::kImproved);
}

TEST(CompareSamples, AbsoluteFloorMutesTinyCells) {
  // 190 ns vs 290 ns: a 1.5x ratio whose absolute size (~one cache
  // miss per iteration) is below measurement resolution — must stay
  // neutral at default thresholds no matter how significant.
  Rng rng(23);
  const std::vector<double> base = draw_samples(rng, 96, 190.0, 5.0);
  const std::vector<double> cur = draw_samples(rng, 96, 290.0, 5.0);
  const CellComparison c = compare_samples(base, cur);
  EXPECT_EQ(c.verdict, Verdict::kNeutral);
  EXPECT_NE(c.note.find("absolute floor"), std::string::npos);
  // The same shift clears a lowered floor.
  CompareThresholds th;
  th.min_effect_ns = 50.0;
  EXPECT_EQ(compare_samples(base, cur, th).verdict, Verdict::kRegressed);
}

TEST(CompareSamples, SmallEffectStaysNeutralEvenWhenSignificant) {
  // A real but tiny (2%) shift: significant under MWU at n=128, below
  // the 5% effect floor → neutral. Gates fire on meaningful moves only.
  Rng rng(29);
  const std::vector<double> base = draw_samples(rng, 128, 100000.0, 500.0);
  std::vector<double> cur = base;
  for (double& v : cur) {
    v *= 1.02;
  }
  const CellComparison c = compare_samples(base, cur);
  EXPECT_EQ(c.verdict, Verdict::kNeutral);
}

TEST(CompareSamples, AaSanityNeutralAtLeast95Percent) {
  // The contract stated in the header: two draws from one distribution
  // classify neutral ≥95% of the time at default thresholds. 200 trials
  // of 48-vs-48 samples from the same noisy distribution.
  Rng rng(0xaau);
  int neutral = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const std::vector<double> a = draw_samples(rng, 48, 8000.0, 600.0);
    const std::vector<double> b = draw_samples(rng, 48, 8000.0, 600.0);
    if (compare_samples(a, b).verdict == Verdict::kNeutral) {
      ++neutral;
    }
  }
  EXPECT_GE(neutral, trials * 95 / 100)
      << "A/A false-positive rate too high: " << (trials - neutral) << "/"
      << trials;
}

LedgerRecord make_record(const std::string& matrix, const std::string& fmt,
                         std::size_t threads, const std::string& machine,
                         std::vector<double> samples) {
  LedgerRecord r;
  r.bench = "regress_check";
  r.matrix = matrix;
  r.format = fmt;
  r.isa = "avx2";
  r.numa = "off";
  r.schedule = "static";
  r.threads = threads;
  r.machine_id = machine;
  r.git_sha = "abc";
  r.nnz = 1000;
  r.iterations = samples.size();
  r.samples_ns = std::move(samples);
  r.ns_per_nnz = 1.0;
  return r;
}

TEST(CompareLedgers, PairsCellsAndCountsOneSided) {
  Rng rng(31);
  const auto s = [&](double c) { return draw_samples(rng, 32, c, 100.0); };
  const std::vector<LedgerRecord> base = {
      make_record("m1", "csr", 1, "aaaa", s(10000.0)),
      make_record("m2", "csr", 1, "aaaa", s(10000.0)),
  };
  const std::vector<LedgerRecord> cur = {
      make_record("m1", "csr", 1, "aaaa", s(10000.0)),
      make_record("m3", "csr", 1, "aaaa", s(10000.0)),
  };
  const LedgerComparison cmp = compare_ledgers(base, cur);
  EXPECT_EQ(cmp.cells.size(), 1u);
  EXPECT_EQ(cmp.baseline_only, 1u);
  EXPECT_EQ(cmp.current_only, 1u);
  EXPECT_FALSE(cmp.has_regressions());
}

TEST(CompareLedgers, PoolsSameKeyRecords) {
  // Two 24-sample records of one cell pool into 48 samples — enough to
  // clear min_samples and compare; a single 4-sample record would not.
  Rng rng(37);
  const auto s = [&](double c) { return draw_samples(rng, 24, c, 100.0); };
  const std::vector<LedgerRecord> base = {
      make_record("m1", "csr", 1, "aaaa", s(10000.0)),
      make_record("m1", "csr", 1, "aaaa", s(10000.0)),
  };
  const std::vector<LedgerRecord> cur = {
      make_record("m1", "csr", 1, "aaaa", s(14000.0)),
      make_record("m1", "csr", 1, "aaaa", s(14000.0)),
  };
  const LedgerComparison cmp = compare_ledgers(base, cur);
  ASSERT_EQ(cmp.cells.size(), 1u);
  EXPECT_EQ(cmp.cells[0].cmp.verdict, Verdict::kRegressed);
  EXPECT_EQ(cmp.regressed, 1u);
  EXPECT_TRUE(cmp.has_regressions());
}

TEST(CompareLedgers, MachineMismatchIsLoudNotSilent) {
  Rng rng(41);
  const auto s = [&](double c) { return draw_samples(rng, 32, c, 100.0); };
  const std::vector<LedgerRecord> base = {
      make_record("m1", "csr", 1, "aaaa", s(10000.0))};
  // Twice as slow on a different machine: must NOT be called a
  // regression — it is not comparable at all.
  const std::vector<LedgerRecord> cur = {
      make_record("m1", "csr", 1, "bbbb", s(20000.0))};
  const LedgerComparison cmp = compare_ledgers(base, cur);
  ASSERT_EQ(cmp.cells.size(), 1u);
  EXPECT_EQ(cmp.cells[0].cmp.verdict, Verdict::kIncomparable);
  EXPECT_TRUE(cmp.machine_mismatch);
  EXPECT_FALSE(cmp.has_regressions());
  EXPECT_NE(cmp.to_markdown().find("machine fingerprints differ"),
            std::string::npos);
}

TEST(CompareLedgers, MissingFingerprintIsIncomparable) {
  Rng rng(43);
  const auto s = [&](double c) { return draw_samples(rng, 32, c, 100.0); };
  const std::vector<LedgerRecord> base = {
      make_record("m1", "csr", 1, "", s(10000.0))};  // pre-ledger record
  const std::vector<LedgerRecord> cur = {
      make_record("m1", "csr", 1, "aaaa", s(10000.0))};
  const LedgerComparison cmp = compare_ledgers(base, cur);
  ASSERT_EQ(cmp.cells.size(), 1u);
  EXPECT_EQ(cmp.cells[0].cmp.verdict, Verdict::kIncomparable);
}

TEST(CompareLedgers, VerdictArtifactsCarryTheCells) {
  Rng rng(47);
  const auto s = [&](double c) { return draw_samples(rng, 32, c, 100.0); };
  const std::vector<LedgerRecord> base = {
      make_record("m1", "csr", 1, "aaaa", s(10000.0)),
      make_record("m2", "csr-du", 2, "aaaa", s(10000.0)),
  };
  const std::vector<LedgerRecord> cur = {
      make_record("m1", "csr", 1, "aaaa", s(14000.0)),
      make_record("m2", "csr-du", 2, "aaaa", s(10000.0)),
  };
  const LedgerComparison cmp = compare_ledgers(base, cur);
  const Json j = cmp.to_json();
  ASSERT_NE(j.find("summary"), nullptr);
  EXPECT_EQ(j.find("summary")->find("regressed")->as_u64(), 1u);
  ASSERT_NE(j.find("cells"), nullptr);
  EXPECT_EQ(j.find("cells")->size(), 2u);
  // Regressions sort first in both artifacts.
  EXPECT_EQ(j.find("cells")->at(0).find("verdict")->as_string(),
            "regressed");
  const std::string md = cmp.to_markdown();
  EXPECT_NE(md.find("**1 regressed**"), std::string::npos);
  EXPECT_NE(md.find("| `regress_check|m1|csr|avx2|off|static|off|0|no|1` |"),
            std::string::npos);
}

TEST(VerdictName, AllNamed) {
  EXPECT_EQ(verdict_name(Verdict::kNeutral), "neutral");
  EXPECT_EQ(verdict_name(Verdict::kImproved), "improved");
  EXPECT_EQ(verdict_name(Verdict::kRegressed), "regressed");
  EXPECT_EQ(verdict_name(Verdict::kIncomparable), "incomparable");
}

}  // namespace
}  // namespace spc::obs
