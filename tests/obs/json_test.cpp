#include "spc/obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "spc/support/error.hpp"

namespace spc::obs {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Json("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  std::string out;
  json_append_escaped(out, std::string_view("\x01", 1));
  EXPECT_EQ(out, "\\u0001");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("z", 1).set("a", 2).set("m", 3);
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_EQ(j.items().size(), 3u);
  EXPECT_EQ(j.items()[0].first, "z");
}

TEST(Json, SetOverwritesExistingKey) {
  Json j = Json::object();
  j.set("k", 1);
  j.set("k", 2);
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.find("k")->as_u64(), 2u);
}

TEST(Json, FindOnMissingOrNonObject) {
  Json j = Json::object();
  EXPECT_EQ(j.find("nope"), nullptr);
  EXPECT_EQ(Json(1).find("k"), nullptr);
}

TEST(Json, ArrayPushAndAt) {
  Json a = Json::array();
  a.push(1);
  a.push("two");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at(0).as_u64(), 1u);
  EXPECT_EQ(a.at(1).as_string(), "two");
}

TEST(Json, ParseRoundTripsARecord) {
  Json rec = Json::object();
  rec.set("name", "lap2d-s");
  rec.set("threads", std::uint64_t{4});
  rec.set("seconds", 0.125);
  rec.set("neg", std::int64_t{-3});
  Json arr = Json::array();
  arr.push(1.5);
  arr.push(2.5);
  rec.set("busy", std::move(arr));

  const Json back = Json::parse(rec.dump());
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.find("name")->as_string(), "lap2d-s");
  EXPECT_EQ(back.find("threads")->as_u64(), 4u);
  EXPECT_DOUBLE_EQ(back.find("seconds")->as_double(), 0.125);
  EXPECT_DOUBLE_EQ(back.find("neg")->as_double(), -3.0);
  ASSERT_EQ(back.find("busy")->size(), 2u);
  EXPECT_DOUBLE_EQ(back.find("busy")->at(1).as_double(), 2.5);
}

TEST(Json, DoublesRoundTripExactly) {
  for (const double v : {0.1, 1e-9, 6.095e-06, 1040.8531583264971, 1e300}) {
    const Json back = Json::parse(Json(v).dump());
    EXPECT_DOUBLE_EQ(back.as_double(), v);
  }
}

TEST(Json, ParseHandlesWhitespaceAndNesting) {
  const Json j = Json::parse(
      "  { \"a\" : [ 1 , { \"b\" : null } , true ] , \"c\" : \"x\" } ");
  ASSERT_TRUE(j.is_object());
  const Json* a = j.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_TRUE(a->at(1).find("b")->is_null());
  EXPECT_TRUE(a->at(2).as_bool());
}

TEST(Json, ParseUnescapesStrings) {
  const Json j = Json::parse("\"a\\\"b\\\\c\\n\\t\\u0041\"");
  EXPECT_EQ(j.as_string(), "a\"b\\c\n\tA");
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("tru"), ParseError);
  EXPECT_THROW(Json::parse("{} trailing"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  // JSON has no NaN/Inf literal: the documented policy is an explicit
  // null, never "nan"/"inf" text a strict reader would choke on.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Json(nan).dump(), "null");
  EXPECT_EQ(Json(inf).dump(), "null");
  EXPECT_EQ(Json(-inf).dump(), "null");
}

TEST(Json, NonFiniteInsideContainersStaysParseable) {
  Json rec = Json::object();
  rec.set("ok", 1.5);
  rec.set("bad", std::numeric_limits<double>::quiet_NaN());
  Json arr = Json::array();
  arr.push(2.5);
  arr.push(std::numeric_limits<double>::infinity());
  arr.push(3.5);
  rec.set("samples", std::move(arr));

  const std::string text = rec.dump();
  EXPECT_EQ(text, "{\"ok\":1.5,\"bad\":null,\"samples\":[2.5,null,3.5]}");

  // Round trip: the whole line parses, finite values survive exactly,
  // the lost values are visibly null (not zero, not garbage).
  const Json back = Json::parse(text);
  EXPECT_DOUBLE_EQ(back.find("ok")->as_double(), 1.5);
  EXPECT_TRUE(back.find("bad")->is_null());
  ASSERT_EQ(back.find("samples")->size(), 3u);
  EXPECT_TRUE(back.find("samples")->at(1).is_null());
  EXPECT_DOUBLE_EQ(back.find("samples")->at(2).as_double(), 3.5);
}

TEST(Json, NullDefaultsAreCallerChosen) {
  // Readers decide the numeric stand-in for a nulled field.
  const Json j = Json::parse("null");
  EXPECT_DOUBLE_EQ(j.as_double(), 0.0);
  EXPECT_DOUBLE_EQ(j.as_double(-1.0), -1.0);
  EXPECT_TRUE(std::isnan(j.as_double(std::numeric_limits<double>::quiet_NaN())));
}

TEST(Json, NumericCoercions) {
  EXPECT_DOUBLE_EQ(Json(std::uint64_t{5}).as_double(), 5.0);
  EXPECT_EQ(Json(5.0).as_u64(), 5u);
  EXPECT_EQ(Json("nan").as_double(7.0), 7.0);  // non-number -> default
  EXPECT_EQ(Json().as_u64(9), 9u);
}

}  // namespace
}  // namespace spc::obs
