// Autotuner subsystem tests: content fingerprinting, the persistent
// tuning cache's durability and isolation properties, cost-model
// pruning invariants, and — the property the whole feature rests on —
// that an auto-selected instance computes exactly what the same
// hand-selected instance would.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "spc/gen/generators.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/tune/cache.hpp"
#include "spc/tune/cost.hpp"
#include "spc/tune/features.hpp"
#include "spc/tune/tuner.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

// ---------------------------------------------------------------- features

TEST(Fingerprint, StableAcrossInsertionOrder) {
  // The same coordinates added in three different orders must hash
  // identically once canonicalized — the cache key must not depend on
  // how a caller happened to assemble its triplets.
  Triplets a(4, 4);
  a.add(0, 0, 1.5);
  a.add(1, 2, -2.0);
  a.add(3, 3, 0.25);
  a.add(2, 1, 4.0);
  a.sort_and_combine();

  Triplets b(4, 4);
  b.add(2, 1, 4.0);
  b.add(3, 3, 0.25);
  b.add(0, 0, 1.5);
  b.add(1, 2, -2.0);
  b.sort_and_combine();

  Triplets c(4, 4);  // duplicate that combines into the same entry set
  c.add(3, 3, 0.25);
  c.add(1, 2, -1.0);
  c.add(0, 0, 1.5);
  c.add(1, 2, -1.0);
  c.add(2, 1, 4.0);
  c.sort_and_combine();

  const std::string fp = tune::matrix_fingerprint(a);
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(tune::matrix_fingerprint(b), fp);
  EXPECT_EQ(tune::matrix_fingerprint(c), fp);
}

TEST(Fingerprint, SensitiveToEveryContentAxis) {
  const Triplets base = test::paper_matrix();
  const std::string fp = tune::matrix_fingerprint(base);

  {  // a single value bit-flip
    Triplets t = test::paper_matrix();
    Triplets u(t.nrows(), t.ncols());
    for (const Entry& e : t.entries()) {
      u.add(e.row, e.col, e.row == 0 && e.col == 0 ? e.val + 1e-9 : e.val);
    }
    u.sort_and_combine();
    EXPECT_NE(tune::matrix_fingerprint(u), fp);
  }
  {  // a moved coordinate
    Triplets t = test::paper_matrix();
    Triplets u(t.nrows(), t.ncols());
    for (const Entry& e : t.entries()) {
      u.add(e.row, e.row == 2 && e.col == 2 ? 3 : e.col, e.val);
    }
    u.sort_and_combine();
    EXPECT_NE(tune::matrix_fingerprint(u), fp);
  }
  {  // same entries, wider dimensions
    Triplets t = test::paper_matrix();
    Triplets u(t.nrows(), t.ncols() + 1);
    for (const Entry& e : t.entries()) {
      u.add(e.row, e.col, e.val);
    }
    u.sort_and_combine();
    EXPECT_NE(tune::matrix_fingerprint(u), fp);
  }
}

TEST(Features, PaperMatrixShape) {
  const tune::TuneFeatures f = tune::extract_features(test::paper_matrix());
  EXPECT_EQ(f.fingerprint, tune::matrix_fingerprint(test::paper_matrix()));
  // All the paper matrix's deltas fit one byte.
  EXPECT_DOUBLE_EQ(f.delta_share[0], 1.0);
  EXPECT_DOUBLE_EQ(f.delta_share[1] + f.delta_share[2] + f.delta_share[3],
                   0.0);
  // Stride-1 pairs: (0,0)->(0,1), (3,4)->(3,5)? no (2 apart) — count
  // follows MatrixStats::delta1_count, checked in matrix_stats_test;
  // here only the range invariant matters.
  EXPECT_GE(f.delta1_frac, 0.0);
  EXPECT_LE(f.delta1_frac, 1.0);
  EXPECT_GT(f.mean_row_span, 0.0);
}

// ------------------------------------------------------------------- cache

tune::TuneCacheEntry sample_entry(const std::string& machine_id,
                                  const std::string& format) {
  tune::TuneCacheEntry e;
  e.key.matrix_fp = "00112233445566aa";
  e.key.machine_id = machine_id;
  e.key.threads = 4;
  e.key.isa = "avx2";
  e.key.numa = "off";
  e.key.schedule = "static";
  e.key.tiling = "auto";
  e.format = format;
  e.probe_ns = 123456;
  e.best_ns_per_iter = 789.5;
  e.git_sha = "abc123";
  return e;
}

TEST(TuneCache, RoundTripAndLaterLinesWin) {
  const std::string path = ::testing::TempDir() + "/spc_tune_rt.jsonl";
  std::remove(path.c_str());
  {
    tune::TuneCache cache(path);
    EXPECT_EQ(cache.size(), 0u);
    cache.store(sample_entry("m1", "csr"));
    cache.store(sample_entry("m1", "csr-du"));  // same key, fresher verdict
  }
  tune::TuneCache back(path);
  EXPECT_EQ(back.bad_lines(), 0u);
  EXPECT_EQ(back.size(), 1u);  // later line replaced the earlier one
  tune::TuneCacheEntry hit;
  ASSERT_TRUE(back.lookup(sample_entry("m1", "").key, &hit));
  EXPECT_EQ(hit.format, "csr-du");
  EXPECT_EQ(hit.probe_ns, 123456u);
  EXPECT_DOUBLE_EQ(hit.best_ns_per_iter, 789.5);
  EXPECT_EQ(hit.git_sha, "abc123");
}

TEST(TuneCache, BadAndTruncatedLinesAreCountedNotFatal) {
  const std::string path = ::testing::TempDir() + "/spc_tune_bad.jsonl";
  std::remove(path.c_str());
  {
    tune::TuneCache cache(path);
    cache.store(sample_entry("m1", "csr-vi"));
  }
  {
    std::ofstream f(path, std::ios::app);
    f << "this is not json\n";
    f << "{\"tune\":\"v1\",\"matrix_fp\":\"ab\n";  // truncated mid-string
    f << "{\"tune\":\"v1\"}\n";                    // parses, missing fields
    f << "{\"bench\":\"not-a-tune-record\"}\n";    // foreign JSONL row
    f << "\n";                                     // blanks are fine
  }
  tune::TuneCache back(path);
  EXPECT_EQ(back.bad_lines(), 4u);
  EXPECT_EQ(back.size(), 1u);
  tune::TuneCacheEntry hit;
  EXPECT_TRUE(back.lookup(sample_entry("m1", "").key, &hit));
  EXPECT_EQ(hit.format, "csr-vi");
}

TEST(TuneCache, CrossMachineEntriesAreIncomparable) {
  const std::string path = ::testing::TempDir() + "/spc_tune_xmachine.jsonl";
  std::remove(path.c_str());
  tune::TuneCache cache(path);
  cache.store(sample_entry("machine-a", "csr-du"));
  // Identical matrix and execution context on different hardware: the
  // machine id is part of the key, so the entry must never be reused.
  EXPECT_FALSE(cache.lookup(sample_entry("machine-b", "").key, nullptr));
  EXPECT_TRUE(cache.lookup(sample_entry("machine-a", "").key, nullptr));
  // And the key string itself differs, so compare/merge tooling can
  // never silently join them either.
  EXPECT_NE(sample_entry("machine-a", "").key.key(),
            sample_entry("machine-b", "").key.key());
}

TEST(TuneCache, UnwritablePathDegradesToInMemory) {
  // Parent "directory" is a regular file, so neither create_directories
  // nor the append-open can succeed.
  const std::string blocker = ::testing::TempDir() + "/spc_tune_blocker";
  {
    std::ofstream f(blocker);
    f << "x";
  }
  tune::TuneCache cache(blocker + "/sub/cache.jsonl");
  cache.store(sample_entry("m1", "csr"));
  EXPECT_EQ(cache.size(), 1u);  // this process still benefits
  EXPECT_TRUE(cache.lookup(sample_entry("m1", "").key, nullptr));
  tune::TuneCache reread(blocker + "/sub/cache.jsonl");
  EXPECT_EQ(reread.size(), 0u);  // nothing persisted, nothing corrupted
}

// -------------------------------------------------------------- cost model

tune::TuneFeatures synthetic_features() {
  tune::TuneFeatures f;
  f.stats.nrows = 1000;
  f.stats.ncols = 1000;
  f.stats.nnz = 20000;
  f.stats.row_len_mean = 20.0;
  f.stats.unique_values = 100;
  f.stats.ttu = 200.0;
  f.delta_share[0] = 1.0;
  f.delta1_frac = 0.5;
  return f;
}

TEST(CostModel, ApplicabilityCriteria) {
  tune::TuneFeatures f = synthetic_features();
  EXPECT_TRUE(tune::predict_format(f, Format::kCsr).applicable);
  EXPECT_TRUE(tune::predict_format(f, Format::kCsr16).applicable);
  EXPECT_TRUE(tune::predict_format(f, Format::kCsrVi).applicable);
  EXPECT_TRUE(tune::predict_format(f, Format::kCsrDuRle).applicable);

  f.stats.ttu = 2.0;  // below the §VI-E criterion
  EXPECT_FALSE(tune::predict_format(f, Format::kCsrVi).applicable);
  EXPECT_FALSE(tune::predict_format(f, Format::kCsrDuVi).applicable);

  f = synthetic_features();
  f.stats.ncols = 70000;  // past the u16 column range
  EXPECT_FALSE(tune::predict_format(f, Format::kCsr16).applicable);

  f = synthetic_features();
  f.delta1_frac = 0.1;  // too few unit-stride runs for RLE
  EXPECT_FALSE(tune::predict_format(f, Format::kCsrDuRle).applicable);

  // Formats outside the tuning pool are never auto-selected.
  EXPECT_FALSE(tune::predict_format(f, Format::kCoo).applicable);
  EXPECT_FALSE(tune::predict_format(f, Format::kBcsr).applicable);
}

TEST(CostModel, PredictionsAreOrderedSanely) {
  const tune::TuneFeatures f = synthetic_features();
  const auto csr = tune::predict_format(f, Format::kCsr);
  const auto csr16 = tune::predict_format(f, Format::kCsr16);
  const auto du = tune::predict_format(f, Format::kCsrDu);
  // 12 B/nnz CSR baseline plus amortized row pointers.
  EXPECT_NEAR(csr.matrix_bytes_per_nnz, 12.0 + 4.0 * 1001.0 / 20000.0,
              1e-9);
  // Halving the index always beats full CSR; all-u8 deltas beat both.
  EXPECT_LT(csr16.matrix_bytes_per_nnz, csr.matrix_bytes_per_nnz);
  EXPECT_LT(du.matrix_bytes_per_nnz, csr16.matrix_bytes_per_nnz);
  // The streamed figure adds the same vector traffic to every format.
  EXPECT_NEAR(csr.streamed_bytes_per_nnz - csr.matrix_bytes_per_nnz,
              8.0 * 2000.0 / 20000.0, 1e-9);
}

TEST(CostModel, SymmetricFormatsGateOnNumericSymmetry) {
  // Asymmetric features: the sym pair must be pruned, never probed.
  tune::TuneFeatures f = synthetic_features();
  EXPECT_FALSE(tune::predict_format(f, Format::kSymCsr).applicable);
  EXPECT_FALSE(tune::predict_format(f, Format::kSymCsrVi).applicable);
  for (const Format fmt : tune::prune_candidates(f, 10)) {
    EXPECT_FALSE(format_requires_symmetry(fmt)) << format_name(fmt);
  }

  // Structural symmetry alone is not enough — mirrored values must
  // match too (SymCsr::applicable would throw otherwise).
  f.structurally_symmetric = true;
  f.value_symmetric = false;
  EXPECT_FALSE(tune::predict_format(f, Format::kSymCsr).applicable);

  f.value_symmetric = true;
  f.ndiag = f.stats.nrows;
  const auto sym = tune::predict_format(f, Format::kSymCsr);
  const auto csr = tune::predict_format(f, Format::kCsr);
  ASSERT_TRUE(sym.applicable);
  // Half the off-diagonal stream plus a dense diagonal: well under CSR.
  EXPECT_LT(sym.matrix_bytes_per_nnz, csr.matrix_bytes_per_nnz);

  // sym-csr-vi keeps the §VI-E value-compression criterion on top.
  EXPECT_TRUE(tune::predict_format(f, Format::kSymCsrVi).applicable);
  f.stats.ttu = 2.0;
  EXPECT_FALSE(tune::predict_format(f, Format::kSymCsrVi).applicable);
  EXPECT_TRUE(tune::predict_format(f, Format::kSymCsr).applicable);
}

TEST(CostModel, PruningKeepsCsrAndRespectsCap) {
  const tune::TuneFeatures f = synthetic_features();
  for (const std::size_t cap : {1u, 2u, 4u, 10u}) {
    const std::vector<Format> c = tune::prune_candidates(f, cap);
    EXPECT_FALSE(c.empty());
    EXPECT_LE(c.size(), std::max<std::size_t>(cap, 1));
    EXPECT_NE(std::find(c.begin(), c.end(), Format::kCsr), c.end())
        << "cap " << cap << ": CSR must always be probed";
  }
  // An empty matrix leaves only the CSR baseline.
  tune::TuneFeatures empty;
  const std::vector<Format> c = tune::prune_candidates(empty, 4);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], Format::kCsr);
}

// ------------------------------------------------------------------- tuner

tune::TuneOptions fast_topts(const std::string& tag) {
  tune::TuneOptions topts;
  topts.rounds = 1;
  topts.iters_per_round = 1;
  topts.warmup = 0;
  topts.cache_path = ::testing::TempDir() + "/spc_" + tag + ".jsonl";
  std::remove(topts.cache_path.c_str());
  return topts;
}

TEST(Tuner, CacheHitSkipsProbeOnRepeatRuns) {
  Rng rng(42);
  // Pooled values keep ttu high so several candidates survive pruning
  // and the first call genuinely probes.
  const Triplets t = test::random_triplets(200, 200, 3000, rng, 8);
  InstanceOptions opts;
  opts.pin_threads = false;
  const tune::TuneOptions topts = fast_topts("tune_hit");

  tune::TuneReport cold;
  SpmvInstance first = tune::auto_instance(t, 1, opts, topts, &cold);
  EXPECT_EQ(cold.source, "probe");
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.probe_ns, 0u);
  EXPECT_GE(cold.candidates.size(), 2u);
  EXPECT_EQ(cold.fingerprint, tune::matrix_fingerprint(t));
  EXPECT_TRUE(first.tune_provenance().tuned);
  EXPECT_EQ(first.tune_provenance().probe_ns, cold.probe_ns);

  tune::TuneReport warm;
  SpmvInstance second = tune::auto_instance(t, 1, opts, topts, &warm);
  EXPECT_EQ(warm.source, "cache");
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.probe_ns, 0u);
  EXPECT_EQ(warm.chosen, cold.chosen);
  EXPECT_EQ(second.format(), first.format());
  EXPECT_TRUE(second.tune_provenance().cache_hit);

  // A different thread count is a different cell: cold again.
  tune::TuneReport other;
  tune::auto_instance(t, 2, opts, topts, &other);
  EXPECT_FALSE(other.cache_hit);
}

// A + A^T: numerically symmetric by construction, and pooled source
// values keep the sum pool small so ttu stays CSR-VI friendly.
Triplets symmetrized(const Triplets& a) {
  Triplets s(a.nrows(), a.ncols());
  for (const Entry& e : a.entries()) {
    s.add(e.row, e.col, e.val);
    s.add(e.col, e.row, e.val);
  }
  s.sort_and_combine();
  return s;
}

TEST(Tuner, SymmetricMatrixSelectsSymFormatAndCachesIt) {
  // A wide symmetric band, sized past L2: rows are long enough that the
  // halved matrix stream dominates the scatter read-modify-write
  // overhead, so the probe should crown a sym format even serially.
  // Pinned to the scalar tier so the outcome is machine-stable (wide
  // SIMD can hide CSR's extra stream on a lone core; SPC_ISA is part of
  // the cache key, so this cell never leaks into native-tier runs).
  test::ScopedEnv isa("SPC_ISA", "scalar");
  Rng rng(88);
  const Triplets t = symmetrized(
      gen_banded(20000, 60, 30, rng, ValueModel::pooled(8)));
  ASSERT_TRUE(SymCsr::applicable(t));
  const tune::TuneFeatures f = tune::extract_features(t);
  EXPECT_TRUE(f.structurally_symmetric);
  EXPECT_TRUE(f.value_symmetric);
  EXPECT_EQ(f.ndiag, t.nrows());

  InstanceOptions opts;
  opts.pin_threads = false;
  tune::TuneOptions topts = fast_topts("tune_sym");
  topts.rounds = 2;
  topts.iters_per_round = 3;

  tune::TuneReport cold;
  SpmvInstance inst = tune::auto_instance(t, 1, opts, topts, &cold);
  const bool sym_probed =
      std::any_of(cold.candidates.begin(), cold.candidates.end(),
                  format_requires_symmetry);
  EXPECT_TRUE(sym_probed);
  EXPECT_TRUE(format_requires_symmetry(cold.chosen))
      << "probe chose " << format_name(cold.chosen);

  // Warm rerun: the verdict comes from the cache without re-probing.
  tune::TuneReport warm;
  SpmvInstance again = tune::auto_instance(t, 1, opts, topts, &warm);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.probe_ns, 0u);
  EXPECT_EQ(warm.chosen, cold.chosen);
  EXPECT_EQ(again.format(), inst.format());

  // And the auto instance computes what the hand instance computes.
  Rng xr(77);
  const Vector x = random_vector(t.ncols(), xr);
  Vector y(t.nrows(), 0.0);
  inst.run(x, y);
  EXPECT_LT(rel_error(test::reference_spmv(t, x), y), 1e-12);
}

// 21-seed swarm: whatever format auto picks, the instance it returns
// must be bit-identical to a hand-constructed instance of that format
// at the scalar tier — tuning may only ever change speed, never bits.
Triplets tune_fuzz_matrix(int seed) {
  Rng rng(7000 + seed);
  switch (seed % 4) {
    case 0:
      return test::random_triplets(
          1 + static_cast<index_t>(rng.next_below(300)),
          1 + static_cast<index_t>(rng.next_below(300)),
          rng.next_below(5000), rng,
          static_cast<std::uint32_t>(rng.next_below(200)));
    case 1:
      return gen_ragged(1 + static_cast<index_t>(rng.next_below(250)),
                        1 + static_cast<index_t>(rng.next_below(250)),
                        1 + static_cast<index_t>(rng.next_below(30)),
                        0.4 * rng.next_double(), rng,
                        ValueModel::pooled(12));
    case 2:
      return gen_banded(32 + static_cast<index_t>(rng.next_below(300)),
                        1 + static_cast<index_t>(rng.next_below(50)),
                        1 + static_cast<index_t>(rng.next_below(10)), rng,
                        ValueModel::random());
    default:
      return gen_rmat(6 + static_cast<std::uint32_t>(rng.next_below(4)),
                      400 + rng.next_below(3000), rng,
                      ValueModel::pooled(6));
  }
}

class TunerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TunerFuzz, AutoSelectionIsBitIdenticalToHandSelection) {
  const Triplets t = tune_fuzz_matrix(GetParam());
  if (t.nnz() == 0) {
    GTEST_SKIP() << "degenerate draw";
  }
  test::ScopedEnv isa("SPC_ISA", "scalar");
  Rng xr(9300 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);
  InstanceOptions opts;
  opts.pin_threads = false;
  const tune::TuneOptions topts =
      fast_topts("tune_fuzz_" + std::to_string(GetParam()));

  for (const std::size_t threads : {1u, 3u}) {
    tune::TuneReport rep;
    SpmvInstance auto_inst =
        tune::auto_instance(t, threads, opts, topts, &rep);
    EXPECT_NE(std::find(rep.candidates.begin(), rep.candidates.end(),
                        Format::kCsr),
              rep.candidates.end());
    SpmvInstance hand(t, auto_inst.format(), threads, opts);

    Vector y_auto(t.nrows(), 0.0);
    Vector y_hand(t.nrows(), 1.0);  // different fill: result must overwrite
    auto_inst.run(x, y_auto);
    hand.run(x, y_hand);
    EXPECT_EQ(max_abs_diff(y_auto, y_hand), 0.0)
        << format_name(auto_inst.format()) << " x" << threads << " seed "
        << GetParam();
    EXPECT_TRUE(auto_inst.tune_provenance().tuned);
    EXPECT_FALSE(hand.tune_provenance().tuned);
  }
}

INSTANTIATE_TEST_SUITE_P(Swarm, TunerFuzz, ::testing::Range(0, 21));

}  // namespace
}  // namespace spc
