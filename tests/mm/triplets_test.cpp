#include "spc/mm/triplets.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace spc {
namespace {

TEST(Triplets, StartsEmpty) {
  Triplets t(4, 5);
  EXPECT_EQ(t.nrows(), 4u);
  EXPECT_EQ(t.ncols(), 5u);
  EXPECT_EQ(t.nnz(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.is_sorted_unique());
}

TEST(Triplets, SortOrdersRowMajor) {
  Triplets t(3, 3);
  t.add(2, 0, 1.0);
  t.add(0, 2, 2.0);
  t.add(1, 1, 3.0);
  t.add(0, 0, 4.0);
  EXPECT_FALSE(t.is_sorted_unique());
  t.sort_and_combine();
  ASSERT_TRUE(t.is_sorted_unique());
  ASSERT_EQ(t.nnz(), 4u);
  EXPECT_EQ(t.entries()[0], (Entry{0, 0, 4.0}));
  EXPECT_EQ(t.entries()[1], (Entry{0, 2, 2.0}));
  EXPECT_EQ(t.entries()[2], (Entry{1, 1, 3.0}));
  EXPECT_EQ(t.entries()[3], (Entry{2, 0, 1.0}));
}

TEST(Triplets, CombineSumsDuplicates) {
  Triplets t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.5);
  t.add(1, 1, -1.0);
  t.add(0, 0, 0.5);
  t.sort_and_combine();
  ASSERT_EQ(t.nnz(), 2u);
  EXPECT_DOUBLE_EQ(t.entries()[0].val, 4.0);
  EXPECT_DOUBLE_EQ(t.entries()[1].val, -1.0);
}

TEST(Triplets, CombineKeepsZeroSums) {
  // Structural zeros remain: formats must preserve them.
  Triplets t(1, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, -1.0);
  t.sort_and_combine();
  ASSERT_EQ(t.nnz(), 1u);
  EXPECT_DOUBLE_EQ(t.entries()[0].val, 0.0);
}

TEST(Triplets, ValidateAcceptsInBounds) {
  Triplets t(2, 2);
  t.add(1, 1, 1.0);
  EXPECT_NO_THROW(t.validate());
}

TEST(Triplets, ValidateAcceptsBoundaryEntry) {
  Triplets t(3, 3);
  t.add(2, 2, 1.0);
  EXPECT_NO_THROW(t.validate());
}

#ifdef NDEBUG
TEST(Triplets, ValidateRejectsOutOfBounds) {
  // In release builds add() skips the debug bounds assert; validate() is
  // the release-mode integrity check (the Matrix Market reader relies on
  // its own bounds checks instead).
  Triplets t(2, 2);
  t.add(2, 0, 1.0);
  EXPECT_THROW(t.validate(), InvalidArgument);
}
#endif

TEST(Triplets, ResizeDimsGrows) {
  Triplets t(2, 2);
  t.add(1, 1, 1.0);
  t.resize_dims(5, 6);
  EXPECT_EQ(t.nrows(), 5u);
  EXPECT_EQ(t.ncols(), 6u);
  EXPECT_NO_THROW(t.validate());
}

TEST(Triplets, ResizeDimsRejectsShrink) {
  Triplets t(4, 4);
  EXPECT_THROW(t.resize_dims(2, 4), Error);
}

TEST(Triplets, IsSortedUniqueDetectsDuplicates) {
  Triplets t(2, 2);
  t.add(0, 1, 1.0);
  t.add(0, 1, 2.0);
  EXPECT_FALSE(t.is_sorted_unique());
}

TEST(Triplets, PaperMatrixShape) {
  const Triplets t = test::paper_matrix();
  EXPECT_EQ(t.nrows(), 6u);
  EXPECT_EQ(t.ncols(), 6u);
  EXPECT_EQ(t.nnz(), 16u);
  EXPECT_TRUE(t.is_sorted_unique());
}

}  // namespace
}  // namespace spc
