// Robustness sweep for the Matrix Market parser: random corruptions of a
// valid file must either parse to *some* valid matrix or throw ParseError
// — never crash, hang, or return out-of-bounds entries.
#include <gtest/gtest.h>

#include <sstream>

#include "spc/mm/mtx.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

std::string valid_mtx() {
  std::stringstream out;
  Rng rng(7);
  const Triplets t = test::random_triplets(30, 25, 150, rng);
  write_matrix_market(t, out);
  return out.str();
}

class MtxFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MtxFuzz, ByteFlipsNeverCrashOrEscapeBounds) {
  const std::string base = valid_mtx();
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = base;
    // 1-4 random byte mutations.
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.next_below(mutated.size());
      mutated[pos] = static_cast<char>(rng.next_below(256));
    }
    std::istringstream in(mutated);
    try {
      const Triplets t = read_matrix_market(in);
      // Accepted: entries must be in bounds and sorted.
      EXPECT_NO_THROW(t.validate());
      EXPECT_TRUE(t.is_sorted_unique());
    } catch (const ParseError&) {
      // Rejected cleanly — fine.
    } catch (const Error&) {
      // Other library errors are also acceptable rejections.
    }
  }
}

TEST_P(MtxFuzz, TruncationsNeverCrash) {
  const std::string base = valid_mtx();
  Rng rng(200 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng.next_below(base.size());
    std::istringstream in(base.substr(0, cut));
    try {
      const Triplets t = read_matrix_market(in);
      EXPECT_NO_THROW(t.validate());
    } catch (const Error&) {
      // clean rejection
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MtxFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace spc
