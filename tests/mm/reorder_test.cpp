#include "spc/mm/reorder.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "spc/gen/generators.hpp"
#include "spc/mm/stats.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(Permutation, IdentityMapsToSelf) {
  const Permutation p = Permutation::identity(5);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_EQ(p.old_of(i), i);
    EXPECT_EQ(p.new_of(i), i);
  }
}

TEST(Permutation, InverseRelations) {
  const Permutation p(std::vector<index_t>{2, 0, 3, 1});
  for (index_t n = 0; n < 4; ++n) {
    EXPECT_EQ(p.new_of(p.old_of(n)), n);
  }
  const Permutation q = p.inverted();
  for (index_t n = 0; n < 4; ++n) {
    EXPECT_EQ(q.old_of(p.old_of(n)), p.new_of(p.old_of(n)));
  }
}

TEST(Permutation, RejectsNonBijections) {
  EXPECT_THROW(Permutation(std::vector<index_t>{0, 0, 1}),
               InvalidArgument);
  EXPECT_THROW(Permutation(std::vector<index_t>{0, 5, 1}),
               InvalidArgument);
}

TEST(PermuteSymmetric, MovesEntriesConsistently) {
  // 3x3 with distinct values; permutation swaps 0 and 2.
  Triplets t(3, 3);
  t.add(0, 1, 1.0);
  t.add(2, 2, 2.0);
  t.sort_and_combine();
  const Permutation p(std::vector<index_t>{2, 1, 0});
  const Triplets pt = permute_symmetric(t, p);
  // (0,1) -> (new_of(0), new_of(1)) = (2, 1); (2,2) -> (0,0).
  ASSERT_EQ(pt.nnz(), 2u);
  EXPECT_EQ(pt.entries()[0], (Entry{0, 0, 2.0}));
  EXPECT_EQ(pt.entries()[1], (Entry{2, 1, 1.0}));
}

TEST(PermuteSymmetric, SpmvCommutesWithPermutation) {
  // (P A Pᵀ)(P x) = P (A x): the fundamental consistency property that
  // lets reordered matrices be used inside solvers.
  Rng rng(7);
  const Triplets t = test::random_triplets(80, 80, 600, rng);
  Rng xr(8);
  const Vector x = random_vector(80, xr);

  std::vector<index_t> idx(80);
  std::iota(idx.begin(), idx.end(), 0);
  Rng pr(9);
  std::shuffle(idx.begin(), idx.end(), pr);
  const Permutation p(idx);

  const Vector y = test::reference_spmv(t, x);
  const Vector py = permute_vector(y, p);

  const Triplets pt = permute_symmetric(t, p);
  const Vector px = permute_vector(x, p);
  const Vector y2 = test::reference_spmv(pt, px);
  EXPECT_LT(max_abs_diff(py, y2), 1e-12);
  // And back.
  EXPECT_LT(max_abs_diff(unpermute_vector(y2, p), y), 1e-12);
}

TEST(PermuteVector, RoundTrip) {
  const Permutation p(std::vector<index_t>{3, 1, 0, 2});
  const Vector v = {10, 11, 12, 13};
  const Vector pv = permute_vector(v, p);
  EXPECT_EQ(pv[0], 13);
  EXPECT_EQ(pv[1], 11);
  EXPECT_EQ(pv[2], 10);
  EXPECT_EQ(pv[3], 12);
  const Vector back = unpermute_vector(pv, p);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(back[i], v[i]);
  }
}

TEST(Rcm, IsAValidPermutation) {
  Rng rng(3);
  const Triplets t = test::random_triplets(200, 200, 1500, rng);
  const Permutation p = rcm_ordering(t);
  EXPECT_EQ(p.size(), 200u);  // Permutation ctor validated bijection
}

TEST(Rcm, ReducesBandwidthOfShuffledBandedMatrix) {
  // Take a narrow-band matrix, scramble it, and check RCM recovers a
  // bandwidth far below the scrambled one.
  Rng rng(4);
  const Triplets banded = gen_banded(400, 5, 4, rng, ValueModel::random());
  std::vector<index_t> idx(400);
  std::iota(idx.begin(), idx.end(), 0);
  Rng pr(5);
  std::shuffle(idx.begin(), idx.end(), pr);
  const Triplets scrambled = permute_symmetric(banded, Permutation(idx));

  const usize_t bw_scrambled = pattern_bandwidth(scrambled);
  const Permutation rcm = rcm_ordering(scrambled);
  const Triplets restored = permute_symmetric(scrambled, rcm);
  const usize_t bw_rcm = pattern_bandwidth(restored);

  EXPECT_GT(bw_scrambled, 300u);  // a shuffle destroys the band
  EXPECT_LT(bw_rcm, bw_scrambled / 4);
}

TEST(Rcm, LaplacianBandwidthStaysNearGridWidth) {
  const Triplets t = gen_laplacian_2d(30, 30);
  const Permutation p = rcm_ordering(t);
  const usize_t bw = pattern_bandwidth(permute_symmetric(t, p));
  // Optimal is ~30 (grid width); RCM should land in the same regime.
  EXPECT_LE(bw, 60u);
}

TEST(Rcm, HandlesDisconnectedComponentsAndIsolatedVertices) {
  Triplets t(10, 10);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(5, 6, 1.0);
  t.add(6, 5, 1.0);
  // vertices 2,3,4,7,8,9 isolated
  t.sort_and_combine();
  const Permutation p = rcm_ordering(t);
  EXPECT_EQ(p.size(), 10u);
}

TEST(Rcm, DeterministicAcrossRuns) {
  Rng rng(11);
  const Triplets t = test::random_triplets(120, 120, 900, rng);
  const Permutation a = rcm_ordering(t);
  const Permutation b = rcm_ordering(t);
  EXPECT_EQ(a.perm(), b.perm());
}

TEST(Rcm, RejectsRectangular) {
  Triplets t(3, 4);
  EXPECT_THROW(rcm_ordering(t), Error);
}

}  // namespace
}  // namespace spc
