#include "spc/mm/stats.hpp"

#include <gtest/gtest.h>

#include "spc/formats/csr_vi.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(DeltaClass, BoundariesMatchByteWidths) {
  EXPECT_EQ(delta_class_for(0), DeltaClass::kU8);
  EXPECT_EQ(delta_class_for(255), DeltaClass::kU8);
  EXPECT_EQ(delta_class_for(256), DeltaClass::kU16);
  EXPECT_EQ(delta_class_for(65535), DeltaClass::kU16);
  EXPECT_EQ(delta_class_for(65536), DeltaClass::kU32);
  EXPECT_EQ(delta_class_for(0xFFFFFFFFULL), DeltaClass::kU32);
  EXPECT_EQ(delta_class_for(0x100000000ULL), DeltaClass::kU64);
}

TEST(DeltaClass, Widths) {
  EXPECT_EQ(delta_class_bytes(DeltaClass::kU8), 1u);
  EXPECT_EQ(delta_class_bytes(DeltaClass::kU16), 2u);
  EXPECT_EQ(delta_class_bytes(DeltaClass::kU32), 4u);
  EXPECT_EQ(delta_class_bytes(DeltaClass::kU64), 8u);
}

TEST(MatrixStats, PaperMatrix) {
  const MatrixStats s = compute_stats(test::paper_matrix());
  EXPECT_EQ(s.nrows, 6u);
  EXPECT_EQ(s.ncols, 6u);
  EXPECT_EQ(s.nnz, 16u);
  EXPECT_EQ(s.row_len_min, 1u);
  EXPECT_EQ(s.row_len_max, 4u);
  EXPECT_EQ(s.empty_rows, 0u);
  // Distinct values: 5.4 1.1 6.3 7.7 8.8 2.9 3.7 9.0 4.5 = 9 unique.
  EXPECT_EQ(s.unique_values, 9u);
  EXPECT_NEAR(s.ttu, 16.0 / 9.0, 1e-12);
  // All deltas (incl. leading absolute columns) fit one byte.
  EXPECT_EQ(s.delta_class_count[0], 16u);
  EXPECT_EQ(s.delta_class_count[1], 0u);
  EXPECT_DOUBLE_EQ(s.u8_delta_fraction(), 1.0);
}

TEST(MatrixStats, WorkingSetFormulaMatchesPaper) {
  // ws = nnz*(idx+val) + (nrows+1)*idx + (nrows+ncols)*val  (§II-B)
  const MatrixStats s = compute_stats(test::paper_matrix());
  const usize_t expect_csr = 16 * (4 + 8) + 7 * 4;
  EXPECT_EQ(s.csr_bytes(), expect_csr);
  EXPECT_EQ(s.working_set_bytes(), expect_csr + 12 * 8);
  // Short-index variant shrinks only the index terms.
  EXPECT_EQ(s.csr_bytes(2, 8), 16u * 10 + 7 * 2);
}

TEST(MatrixStats, BandwidthOfTridiagonal) {
  Triplets t(5, 5);
  for (index_t i = 0; i < 5; ++i) {
    if (i > 0) {
      t.add(i, i - 1, 1.0);
    }
    t.add(i, i, 2.0);
    if (i + 1 < 5) {
      t.add(i, i + 1, 3.0);
    }
  }
  t.sort_and_combine();
  const MatrixStats s = compute_stats(t);
  EXPECT_EQ(s.bandwidth, 1u);
  EXPECT_EQ(s.unique_values, 3u);
}

TEST(MatrixStats, CountsEmptyRows) {
  Triplets t(5, 5);
  t.add(0, 0, 1.0);
  t.add(4, 4, 1.0);
  t.sort_and_combine();
  const MatrixStats s = compute_stats(t);
  EXPECT_EQ(s.empty_rows, 3u);
  EXPECT_EQ(s.row_len_min, 0u);
  EXPECT_EQ(s.row_len_max, 1u);
}

TEST(MatrixStats, DeltaClassesForWideMatrix) {
  Triplets t(1, 200000);
  t.add(0, 0, 1.0);
  t.add(0, 10, 1.0);       // u8 delta
  t.add(0, 1000, 1.0);     // 990 -> u16
  t.add(0, 150000, 1.0);   // 149000 -> u32
  t.sort_and_combine();
  const MatrixStats s = compute_stats(t);
  EXPECT_EQ(s.delta_class_count[0], 2u);  // leading 0 and delta 10
  EXPECT_EQ(s.delta_class_count[1], 1u);
  EXPECT_EQ(s.delta_class_count[2], 1u);
  EXPECT_EQ(s.delta_class_count[3], 0u);
}

TEST(MatrixStats, TtuReflectsValuePool) {
  Rng rng(5);
  const Triplets t =
      gen_random_uniform(500, 500, 8, rng, ValueModel::pooled(10));
  const MatrixStats s = compute_stats(t);
  EXPECT_LE(s.unique_values, 10u);
  EXPECT_GT(s.ttu, kViTtuThreshold);
}

TEST(MatrixStats, LaplacianIsViFriendly) {
  const MatrixStats s = compute_stats(gen_laplacian_2d(32, 32));
  EXPECT_EQ(s.unique_values, 2u);  // 4.0 and -1.0
  EXPECT_GT(s.ttu, 100.0);
}

TEST(MatrixStats, Delta1CountsUnitStridesWithinRows) {
  // Paper matrix stride-1 pairs: (0,0)→(0,1), (3,4)→(3,5), (4,3)→(4,4),
  // (5,2)→(5,3). Row-leading elements are absolute jumps, never strides.
  const MatrixStats s = compute_stats(test::paper_matrix());
  EXPECT_EQ(s.delta1_count, 4u);
  EXPECT_DOUBLE_EQ(s.delta1_fraction(), 4.0 / 16.0);

  // A dense row is all unit strides past its first element; a row whose
  // gaps exceed 1 contributes none.
  Triplets t(2, 6);
  for (index_t c = 0; c < 6; ++c) {
    t.add(0, c, 1.0);
  }
  t.add(1, 0, 1.0);
  t.add(1, 3, 1.0);
  t.sort_and_combine();
  const MatrixStats d = compute_stats(t);
  EXPECT_EQ(d.delta1_count, 5u);
  EXPECT_DOUBLE_EQ(d.delta1_fraction(), 5.0 / 8.0);

  Triplets empty(3, 3);
  empty.sort_and_combine();
  EXPECT_DOUBLE_EQ(compute_stats(empty).delta1_fraction(), 0.0);
}

TEST(MatrixStats, RequiresSortedInput) {
  Triplets t(2, 2);
  t.add(1, 1, 1.0);
  t.add(0, 0, 1.0);
  EXPECT_THROW(compute_stats(t), Error);
}

}  // namespace
}  // namespace spc
