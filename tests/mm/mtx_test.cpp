#include "spc/mm/mtx.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace spc {
namespace {

TEST(Mtx, ParsesGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 4 0.25\n");
  const Triplets t = read_matrix_market(in);
  EXPECT_EQ(t.nrows(), 3u);
  EXPECT_EQ(t.ncols(), 4u);
  ASSERT_EQ(t.nnz(), 3u);
  EXPECT_EQ(t.entries()[0], (Entry{0, 0, 1.5}));
  EXPECT_EQ(t.entries()[1], (Entry{1, 2, -2.0}));
  EXPECT_EQ(t.entries()[2], (Entry{2, 3, 0.25}));
}

TEST(Mtx, ParsesPatternAsOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const Triplets t = read_matrix_market(in);
  ASSERT_EQ(t.nnz(), 2u);
  EXPECT_DOUBLE_EQ(t.entries()[0].val, 1.0);
  EXPECT_DOUBLE_EQ(t.entries()[1].val, 1.0);
}

TEST(Mtx, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 2 5.0\n");
  const Triplets t = read_matrix_market(in);
  ASSERT_EQ(t.nnz(), 5u);  // diagonal kept once, off-diagonals mirrored
  EXPECT_EQ(t.entries()[0], (Entry{0, 0, 2.0}));
  EXPECT_EQ(t.entries()[1], (Entry{0, 1, -1.0}));
  EXPECT_EQ(t.entries()[2], (Entry{1, 0, -1.0}));
  EXPECT_EQ(t.entries()[3], (Entry{1, 2, 5.0}));
  EXPECT_EQ(t.entries()[4], (Entry{2, 1, 5.0}));
}

TEST(Mtx, ExpandsSkewSymmetricWithNegation) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const Triplets t = read_matrix_market(in);
  ASSERT_EQ(t.nnz(), 2u);
  EXPECT_EQ(t.entries()[0], (Entry{0, 1, -3.0}));
  EXPECT_EQ(t.entries()[1], (Entry{1, 0, 3.0}));
}

TEST(Mtx, ParsesIntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 7\n");
  const Triplets t = read_matrix_market(in);
  ASSERT_EQ(t.nnz(), 1u);
  EXPECT_DOUBLE_EQ(t.entries()[0].val, 7.0);
}

TEST(Mtx, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mtx, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n");
  EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mtx, RejectsComplexField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n");
  EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mtx, RejectsOutOfBoundsEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mtx, RejectsZeroBasedEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "0 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mtx, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mtx, RejectsMissingValue) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mtx, WriteReadRoundTrip) {
  Rng rng(17);
  const Triplets orig = test::random_triplets(40, 33, 200, rng);
  std::stringstream buf;
  write_matrix_market(orig, buf);
  const Triplets back = read_matrix_market(buf);
  test::expect_triplets_eq(orig, back);
}

TEST(Mtx, WriteReadRoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  std::stringstream buf;
  write_matrix_market(orig, buf);
  const Triplets back = read_matrix_market(buf);
  test::expect_triplets_eq(orig, back);
}

TEST(Mtx, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/spc_mtx_test.mtx";
  const Triplets orig = test::paper_matrix();
  write_matrix_market_file(orig, path);
  const Triplets back = read_matrix_market_file(path);
  test::expect_triplets_eq(orig, back);
}

TEST(Mtx, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"), Error);
}

TEST(Mtx, CombinesDuplicateEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "1 1 2.0\n");
  const Triplets t = read_matrix_market(in);
  ASSERT_EQ(t.nnz(), 1u);
  EXPECT_DOUBLE_EQ(t.entries()[0].val, 3.0);
}

}  // namespace
}  // namespace spc
