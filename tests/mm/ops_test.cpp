#include "spc/mm/ops.hpp"

#include <gtest/gtest.h>

#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(Ops, TransposeSwapsCoordinates) {
  const Triplets t = test::paper_matrix();
  const Triplets tt = transpose(t);
  EXPECT_EQ(tt.nrows(), t.ncols());
  EXPECT_EQ(tt.ncols(), t.nrows());
  EXPECT_EQ(tt.nnz(), t.nnz());
  test::expect_triplets_eq(t, transpose(tt));
}

TEST(Ops, TransposeRectangular) {
  Triplets t(2, 5);
  t.add(0, 4, 1.5);
  t.add(1, 0, -2.0);
  t.sort_and_combine();
  const Triplets tt = transpose(t);
  EXPECT_EQ(tt.entries()[0], (Entry{0, 1, -2.0}));
  EXPECT_EQ(tt.entries()[1], (Entry{4, 0, 1.5}));
}

TEST(Ops, ScaleMultipliesValues) {
  const Triplets t = test::paper_matrix();
  const Triplets s = scale(t, -2.0);
  ASSERT_EQ(s.nnz(), t.nnz());
  for (usize_t i = 0; i < t.nnz(); ++i) {
    EXPECT_DOUBLE_EQ(s.entries()[i].val, -2.0 * t.entries()[i].val);
  }
}

TEST(Ops, AddMergesStructures) {
  Triplets a(2, 2), b(2, 2);
  a.add(0, 0, 1.0);
  a.add(1, 1, 2.0);
  a.sort_and_combine();
  b.add(0, 0, 3.0);
  b.add(0, 1, 4.0);
  b.sort_and_combine();
  const Triplets c = add(a, b);
  ASSERT_EQ(c.nnz(), 3u);
  EXPECT_DOUBLE_EQ(c.entries()[0].val, 4.0);  // (0,0) summed
  EXPECT_DOUBLE_EQ(c.entries()[1].val, 4.0);  // (0,1)
  EXPECT_DOUBLE_EQ(c.entries()[2].val, 2.0);  // (1,1)
}

TEST(Ops, AddRejectsDimensionMismatch) {
  Triplets a(2, 2), b(3, 2);
  EXPECT_THROW(add(a, b), Error);
}

TEST(Ops, SymmetrizeProducesSymmetricMatrix) {
  Rng rng(1);
  const Triplets t = test::random_triplets(50, 50, 400, rng);
  const Triplets s = symmetrize(t);
  const Triplets st = transpose(s);
  EXPECT_TRUE(equal(s, st));
  // A + At halves preserve row sums: frobenius within bounds.
  EXPECT_LE(frobenius_norm(s), frobenius_norm(t) + 1e-12);
}

TEST(Ops, ExtractTriangles) {
  const Triplets t = test::paper_matrix();
  const Triplets lower = extract_triangle(t, Triangle::kLower, true);
  const Triplets strict_upper =
      extract_triangle(t, Triangle::kUpper, false);
  // Lower + strict upper reassembles the matrix.
  test::expect_triplets_eq(t, add(lower, strict_upper));
  for (const Entry& e : lower.entries()) {
    EXPECT_LE(e.col, e.row);
  }
  for (const Entry& e : strict_upper.entries()) {
    EXPECT_GT(e.col, e.row);
  }
}

TEST(Ops, EqualIsExact) {
  const Triplets a = test::paper_matrix();
  Triplets b = test::paper_matrix();
  EXPECT_TRUE(equal(a, b));
  Triplets c = test::paper_matrix();
  // Perturb one value.
  Triplets d(6, 6);
  for (const Entry& e : c.entries()) {
    d.add(e.row, e.col, e.val == 5.4 ? 5.4000001 : e.val);
  }
  d.sort_and_combine();
  EXPECT_FALSE(equal(a, d));
}

TEST(Ops, FrobeniusNorm) {
  Triplets t(2, 2);
  t.add(0, 0, 3.0);
  t.add(1, 1, 4.0);
  t.sort_and_combine();
  EXPECT_DOUBLE_EQ(frobenius_norm(t), 5.0);
}

TEST(Ops, MaxEntryDiffOverUnion) {
  Triplets a(2, 2), b(2, 2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 5.0);
  a.sort_and_combine();
  b.add(0, 0, 1.25);
  b.add(1, 1, -2.0);
  b.sort_and_combine();
  // diffs: (0,0): 0.25; (0,1): 5 only in a; (1,1): 2 only in b.
  EXPECT_DOUBLE_EQ(max_entry_diff(a, b), 5.0);
  EXPECT_DOUBLE_EQ(max_entry_diff(a, a), 0.0);
}

TEST(Ops, TransposeConsistentWithSpmv) {
  // y = Aᵀ x computed two ways.
  Rng rng(2);
  const Triplets t = test::random_triplets(40, 60, 500, rng);
  Rng xr(3);
  const Vector x = random_vector(40, xr);
  const Vector y1 = test::reference_spmv(transpose(t), x);
  // Direct: y[c] += v * x[r].
  Vector y2(60, 0.0);
  for (const Entry& e : t.entries()) {
    y2[e.col] += e.val * x[e.row];
  }
  EXPECT_LT(max_abs_diff(y1, y2), 1e-12);
}

TEST(Dense, FromDenseToDenseRoundTrip) {
  const value_t data[6] = {1.0, 0.0, 2.0, 0.0, 0.0, -3.0};
  const Triplets t = from_dense(data, 2, 3);
  EXPECT_EQ(t.nnz(), 3u);
  EXPECT_TRUE(t.is_sorted_unique());
  const Vector back = to_dense(t);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(back[i], data[i]);
  }
}

TEST(Dense, ToDenseOfPaperMatrixMatchesFig1) {
  const Vector d = to_dense(test::paper_matrix());
  EXPECT_DOUBLE_EQ(d[0 * 6 + 0], 5.4);
  EXPECT_DOUBLE_EQ(d[1 * 6 + 5], 8.8);
  EXPECT_DOUBLE_EQ(d[2 * 6 + 0], 0.0);
  EXPECT_DOUBLE_EQ(d[5 * 6 + 3], 3.7);
}

TEST(Kronecker, SmallProductIsExact) {
  Triplets a(2, 2);
  a.add(0, 0, 2.0);
  a.add(1, 0, 3.0);
  a.sort_and_combine();
  Triplets b(2, 2);
  b.add(0, 1, 5.0);
  b.sort_and_combine();
  const Triplets k = gen_kronecker(a, b);
  EXPECT_EQ(k.nrows(), 4u);
  ASSERT_EQ(k.nnz(), 2u);
  // a(0,0)*b(0,1) at (0,1); a(1,0)*b(0,1) at (2,1).
  EXPECT_EQ(k.entries()[0], (Entry{0, 1, 10.0}));
  EXPECT_EQ(k.entries()[1], (Entry{2, 1, 15.0}));
}

TEST(Kronecker, LaplacianIdentityStructure) {
  // I ⊗ A stacks A along the diagonal.
  Triplets eye(3, 3);
  for (index_t i = 0; i < 3; ++i) {
    eye.add(i, i, 1.0);
  }
  eye.sort_and_combine();
  const Triplets a = gen_laplacian_2d(4, 4);
  const Triplets k = gen_kronecker(eye, a);
  EXPECT_EQ(k.nnz(), 3 * a.nnz());
  EXPECT_EQ(k.nrows(), 3 * a.nrows());
}

}  // namespace
}  // namespace spc
