#include "spc/solvers/iterative.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spc/gen/generators.hpp"
#include "spc/spmv/instance.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

LinOp op_of(SpmvInstance& inst) {
  return [&inst](const Vector& x, Vector& y) { inst.run(x, y); };
}

Vector make_rhs(const Triplets& t, std::uint64_t seed) {
  // b = A * x_true so the solution is known.
  Rng rng(seed);
  Vector x_true = random_vector(t.nrows(), rng);
  return test::reference_spmv(t, x_true);
}

TEST(Blas1, DotAndNorm) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
}

TEST(Blas1, AxpyAndXpby) {
  Vector x = {1.0, 2.0};
  Vector y = {10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  xpby(x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 14.0);
}

TEST(Cg, SolvesLaplacian) {
  const Triplets t = gen_laplacian_2d(20, 20);
  // Laplacian with Neumann-ish rows is singular on constants; shift it.
  Triplets shifted = t;
  for (index_t i = 0; i < t.nrows(); ++i) {
    shifted.add(i, i, 0.5);
  }
  shifted.sort_and_combine();
  SpmvInstance A(shifted, Format::kCsr);
  const Vector b = make_rhs(shifted, 1);
  Vector x(shifted.nrows(), 0.0);
  const SolveResult r = cg(op_of(A), b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.residual_norm, 1e-8 * norm2(b) + 1e-20);
  // Verify against the operator directly.
  Vector Ax(shifted.nrows(), 0.0);
  A.run(x, Ax);
  EXPECT_LT(max_abs_diff(Ax, b), 1e-6);
}

TEST(Cg, WorksWithCompressedFormats) {
  const Triplets t = gen_laplacian_2d(16, 16);
  Triplets shifted = t;
  for (index_t i = 0; i < t.nrows(); ++i) {
    shifted.add(i, i, 1.0);
  }
  shifted.sort_and_combine();
  const Vector b = make_rhs(shifted, 2);

  for (const Format f : {Format::kCsrDu, Format::kCsrVi,
                         Format::kCsrDuVi}) {
    SpmvInstance A(shifted, f);
    Vector x(shifted.nrows(), 0.0);
    const SolveResult r = cg(op_of(A), b, x);
    EXPECT_TRUE(r.converged) << format_name(f);
  }
}

TEST(Cg, MultithreadedOperator) {
  const Triplets t = gen_laplacian_2d(24, 24);
  Triplets shifted = t;
  for (index_t i = 0; i < t.nrows(); ++i) {
    shifted.add(i, i, 0.75);
  }
  shifted.sort_and_combine();
  InstanceOptions opts;
  opts.pin_threads = false;
  SpmvInstance A(shifted, Format::kCsrDu, 4, opts);
  const Vector b = make_rhs(shifted, 3);
  Vector x(shifted.nrows(), 0.0);
  EXPECT_TRUE(cg(op_of(A), b, x).converged);
}

TEST(Cg, ImmediateConvergenceOnZeroRhs) {
  const Triplets t = test::paper_matrix();
  SpmvInstance A(t, Format::kCsr);
  const Vector b(6, 0.0);
  Vector x(6, 0.0);
  const SolveResult r = cg(op_of(A), b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(Cg, ReportsNonConvergence) {
  const Triplets t = gen_laplacian_2d(30, 30);
  SpmvInstance A(t, Format::kCsr);
  Vector b(t.nrows(), 1.0);
  Vector x(t.nrows(), 0.0);
  SolverOptions opts;
  opts.max_iterations = 2;  // way too few
  const SolveResult r = cg(op_of(A), b, x, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2u);
}

TEST(BiCgStab, SolvesNonsymmetricSystem) {
  // Diagonally dominant nonsymmetric matrix.
  Rng rng(9);
  Triplets t(150, 150);
  for (index_t i = 0; i < 150; ++i) {
    t.add(i, i, 10.0 + rng.next_double());
    t.add(i, (i + 1) % 150, -1.0 + 0.1 * rng.next_double());
    t.add(i, (i * 7 + 3) % 150, 0.5 * rng.next_double());
  }
  t.sort_and_combine();
  SpmvInstance A(t, Format::kCsr);
  const Vector b = make_rhs(t, 10);
  Vector x(150, 0.0);
  const SolveResult r = bicgstab(op_of(A), b, x);
  EXPECT_TRUE(r.converged);
  Vector Ax(150, 0.0);
  A.run(x, Ax);
  EXPECT_LT(max_abs_diff(Ax, b), 1e-6);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  Rng rng(21);
  Triplets t(200, 200);
  for (index_t i = 0; i < 200; ++i) {
    t.add(i, i, 8.0 + rng.next_double());
    t.add(i, (i + 1) % 200, -1.5);
    t.add(i, (i * 13 + 7) % 200, 0.7 * rng.next_double());
  }
  t.sort_and_combine();
  SpmvInstance A(t, Format::kCsr);
  const Vector b = make_rhs(t, 22);
  Vector x(200, 0.0);
  const SolveResult r = gmres(op_of(A), b, x);
  EXPECT_TRUE(r.converged);
  Vector Ax(200, 0.0);
  A.run(x, Ax);
  EXPECT_LT(max_abs_diff(Ax, b), 1e-6);
}

TEST(Gmres, RestartSmallerThanKrylovNeedStillConverges) {
  const Triplets t = gen_laplacian_2d(12, 12);
  SpmvInstance A(t, Format::kCsrDu);
  const Vector b = make_rhs(t, 23);
  Vector x(t.nrows(), 0.0);
  SolverOptions opts;
  opts.max_iterations = 5000;
  const SolveResult r = gmres(op_of(A), b, x, opts, /*restart=*/5);
  EXPECT_TRUE(r.converged);
}

TEST(Gmres, AgreesWithCgOnSpdSystem) {
  const Triplets t = gen_laplacian_2d(10, 10);
  SpmvInstance A(t, Format::kCsr);
  const Vector b = make_rhs(t, 24);
  Vector xg(t.nrows(), 0.0), xc(t.nrows(), 0.0);
  EXPECT_TRUE(gmres(op_of(A), b, xg).converged);
  EXPECT_TRUE(cg(op_of(A), b, xc).converged);
  EXPECT_LT(max_abs_diff(xg, xc), 1e-6);
}

TEST(Gmres, ImmediateConvergenceOnZeroRhs) {
  SpmvInstance A(test::paper_matrix(), Format::kCsr);
  const Vector b(6, 0.0);
  Vector x(6, 0.0);
  const SolveResult r = gmres(op_of(A), b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(Gmres, ReportsNonConvergence) {
  const Triplets t = gen_laplacian_2d(30, 30);
  SpmvInstance A(t, Format::kCsr);
  Vector b(t.nrows(), 1.0);
  Vector x(t.nrows(), 0.0);
  SolverOptions opts;
  opts.max_iterations = 3;
  const SolveResult r = gmres(op_of(A), b, x, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3u);
}

TEST(Gmres, RejectsZeroRestart) {
  SpmvInstance A(test::paper_matrix(), Format::kCsr);
  Vector b(6, 1.0), x(6, 0.0);
  EXPECT_THROW(gmres(op_of(A), b, x, SolverOptions{}, 0), Error);
}

TEST(Jacobi, ConvergesOnDiagonallyDominantSystem) {
  Rng rng(11);
  Triplets t(100, 100);
  Vector diag(100);
  for (index_t i = 0; i < 100; ++i) {
    diag[i] = 5.0;
    t.add(i, i, diag[i]);
    t.add(i, (i + 3) % 100, 1.0);
    t.add(i, (i + 61) % 100, -0.5);
  }
  t.sort_and_combine();
  SpmvInstance A(t, Format::kCsr);
  const Vector b = make_rhs(t, 12);
  Vector x(100, 0.0);
  SolverOptions opts;
  opts.max_iterations = 500;
  opts.rel_tolerance = 1e-9;
  const SolveResult r = jacobi(op_of(A), diag, b, x, opts);
  EXPECT_TRUE(r.converged);
}

TEST(Jacobi, RejectsZeroDiagonal) {
  SpmvInstance A(test::paper_matrix(), Format::kCsr);
  Vector diag(6, 0.0);
  Vector b(6, 1.0), x(6, 0.0);
  EXPECT_THROW(jacobi(op_of(A), diag, b, x), Error);
}

Vector diag_of(const Triplets& t) {
  Vector d(t.nrows(), 0.0);
  for (const Entry& e : t.entries()) {
    if (e.row == e.col) {
      d[e.row] = e.val;
    }
  }
  return d;
}

TEST(PcgJacobi, BeatsPlainCgOnBadlyScaledSystem) {
  // Scale each row/col of an SPD laplacian by wildly varying factors:
  // Jacobi preconditioning should cut the iteration count sharply.
  const Triplets lap = gen_laplacian_2d(20, 20);
  Rng rng(31);
  Vector s(lap.nrows());
  for (auto& v : s) {
    v = std::pow(10.0, rng.next_double(-2.0, 2.0));
  }
  Triplets scaled(lap.nrows(), lap.ncols());
  for (const Entry& e : lap.entries()) {
    scaled.add(e.row, e.col, s[e.row] * e.val * s[e.col]);
  }
  scaled.sort_and_combine();

  SpmvInstance A(scaled, Format::kCsr);
  const Vector b = make_rhs(scaled, 32);
  const Vector d = diag_of(scaled);

  SolverOptions opts;
  opts.max_iterations = 5000;
  opts.rel_tolerance = 1e-10;

  Vector x1(scaled.nrows(), 0.0), x2(scaled.nrows(), 0.0);
  const SolveResult plain = cg(op_of(A), b, x1, opts);
  const SolveResult pre = pcg_jacobi(op_of(A), d, b, x2, opts);
  EXPECT_TRUE(pre.converged);
  if (plain.converged) {
    EXPECT_LT(pre.iterations, plain.iterations);
  }
}

TEST(PcgJacobi, IdentityPreconditionerMatchesCg) {
  // With a unit diagonal the preconditioner is the identity: iteration
  // counts must match plain CG exactly.
  Rng rng(33);
  Triplets t(80, 80);
  for (index_t i = 0; i < 80; ++i) {
    t.add(i, i, 1.0);
    if (i + 1 < 80) {
      t.add(i, i + 1, -0.2);
      t.add(i + 1, i, -0.2);
    }
  }
  t.sort_and_combine();
  SpmvInstance A(t, Format::kCsr);
  const Vector b = make_rhs(t, 34);
  const Vector ones(80, 1.0);
  Vector x1(80, 0.0), x2(80, 0.0);
  const SolveResult a = cg(op_of(A), b, x1);
  const SolveResult p = pcg_jacobi(op_of(A), ones, b, x2);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(p.converged);
  EXPECT_EQ(a.iterations, p.iterations);
  EXPECT_LT(max_abs_diff(x1, x2), 1e-10);
}

TEST(PcgJacobi, RejectsZeroDiagonal) {
  SpmvInstance A(test::paper_matrix(), Format::kCsr);
  Vector d(6, 0.0), b(6, 1.0), x(6, 0.0);
  EXPECT_THROW(pcg_jacobi(op_of(A), d, b, x), Error);
}

TEST(Solvers, AllFormatsGiveSameCgSolution) {
  const Triplets t = gen_laplacian_2d(12, 12);
  Triplets shifted = t;
  for (index_t i = 0; i < t.nrows(); ++i) {
    shifted.add(i, i, 2.0);
  }
  shifted.sort_and_combine();
  const Vector b = make_rhs(shifted, 13);

  Vector x_ref(shifted.nrows(), 0.0);
  SpmvInstance ref(shifted, Format::kCsr);
  cg(op_of(ref), b, x_ref);

  for (const Format f : {Format::kCsrDu, Format::kCsrVi, Format::kDcsr,
                         Format::kBcsr}) {
    SpmvInstance A(shifted, f);
    Vector x(shifted.nrows(), 0.0);
    cg(op_of(A), b, x);
    EXPECT_LT(max_abs_diff(x, x_ref), 1e-7) << format_name(f);
  }
}

}  // namespace
}  // namespace spc
