#include "spc/solvers/multi_rhs.hpp"

#include <gtest/gtest.h>

#include "spc/gen/generators.hpp"
#include "spc/spmv/spmm.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

// Interleave k column vectors into the SpMM layout.
Vector interleave(const std::vector<Vector>& cols) {
  const index_t k = static_cast<index_t>(cols.size());
  const index_t n = static_cast<index_t>(cols[0].size());
  Vector out(static_cast<usize_t>(n) * k);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < k; ++j) {
      out[static_cast<usize_t>(i) * k + j] = cols[j][i];
    }
  }
  return out;
}

Vector column(const Vector& inter, index_t n, index_t k, index_t j) {
  Vector out(n);
  for (index_t i = 0; i < n; ++i) {
    out[i] = inter[static_cast<usize_t>(i) * k + j];
  }
  return out;
}

TEST(MultiCg, SolvesSeveralSystemsAgainstSingleRhsCg) {
  const Triplets t = gen_laplacian_2d(14, 14);
  const index_t n = t.nrows();
  const index_t k = 4;

  // Known solutions -> right-hand sides.
  std::vector<Vector> x_true(k), b_cols(k);
  for (index_t j = 0; j < k; ++j) {
    Rng rng(100 + j);
    x_true[j] = random_vector(n, rng);
    b_cols[j] = test::reference_spmv(t, x_true[j]);
  }
  const Vector B = interleave(b_cols);

  SpmmRunner A(t, SpmmRunner::Kind::kCsr, k, 2);
  Vector X(static_cast<usize_t>(n) * k, 0.0);
  SolverOptions opts;
  opts.max_iterations = 2000;
  opts.rel_tolerance = 1e-10;
  const MultiSolveResult r = multi_cg(
      [&A](const Vector& in, Vector& out) { A.run(in, out); }, n, k, B, X,
      opts);
  EXPECT_TRUE(r.all_converged());
  for (index_t j = 0; j < k; ++j) {
    EXPECT_LT(max_abs_diff(column(X, n, k, j), x_true[j]), 1e-6)
        << "system " << j;
  }
}

TEST(MultiCg, ColumnsConvergeIndependently) {
  // One easy system (b = 0) plus one real one: the easy column converges
  // at iteration 0 and must stay frozen without corrupting the other.
  const Triplets t = gen_laplacian_2d(10, 10);
  const index_t n = t.nrows();
  const index_t k = 2;
  Rng rng(7);
  Vector xt = random_vector(n, rng);
  const Vector b1 = test::reference_spmv(t, xt);
  Vector B(static_cast<usize_t>(n) * k, 0.0);
  for (index_t i = 0; i < n; ++i) {
    B[static_cast<usize_t>(i) * k + 1] = b1[i];
  }

  SpmmRunner A(t, SpmmRunner::Kind::kCsr, k, 1);
  Vector X(static_cast<usize_t>(n) * k, 0.0);
  const MultiSolveResult r = multi_cg(
      [&A](const Vector& in, Vector& out) { A.run(in, out); }, n, k, B,
      X);
  EXPECT_TRUE(r.all_converged());
  // Zero-rhs column stays exactly zero.
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(X[static_cast<usize_t>(i) * k], 0.0);
  }
  EXPECT_LT(max_abs_diff(column(X, n, k, 1), xt), 1e-6);
}

TEST(MultiCg, ReportsPerColumnNonConvergence) {
  const Triplets t = gen_laplacian_2d(12, 12);
  const index_t n = t.nrows();
  Vector B(static_cast<usize_t>(n) * 2, 1.0);
  SpmmRunner A(t, SpmmRunner::Kind::kCsr, 2, 1);
  Vector X(B.size(), 0.0);
  SolverOptions opts;
  opts.max_iterations = 2;
  const MultiSolveResult r = multi_cg(
      [&A](const Vector& in, Vector& out) { A.run(in, out); }, n, 2, B, X,
      opts);
  EXPECT_FALSE(r.all_converged());
  EXPECT_EQ(r.iterations, 2u);
}

TEST(MultiCg, RejectsDimensionMismatch) {
  Vector B(10, 1.0), X(12, 0.0);
  EXPECT_THROW(
      multi_cg([](const Vector&, Vector&) {}, 5, 2, B, X), Error);
}

}  // namespace
}  // namespace spc
