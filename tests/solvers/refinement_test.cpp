#include "spc/solvers/refinement.hpp"

#include <gtest/gtest.h>

#include "spc/formats/csr.hpp"
#include "spc/formats/csr_f32.hpp"
#include "spc/gen/generators.hpp"
#include "spc/spmv/kernels.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

struct Ops {
  Csr hi;
  CsrF32 lo;

  explicit Ops(const Triplets& t)
      : hi(Csr::from_triplets(t)), lo(CsrF32::from_triplets(t)) {}

  LinOp hi_op() {
    return [this](const Vector& x, Vector& y) {
      spmv(hi, x.data(), y.data());
    };
  }
  LinOp lo_op() {
    return [this](const Vector& x, Vector& y) {
      spmv(lo, x.data(), y.data());
    };
  }
};

TEST(CsrF32, HalvesValueBytes) {
  const Triplets t = gen_laplacian_2d(30, 30);
  const CsrF32 lo = CsrF32::from_triplets(t);
  const Csr hi = Csr::from_triplets(t);
  EXPECT_EQ(hi.bytes() - lo.bytes(), t.nnz() * 4);
}

TEST(CsrF32, KernelAccurateToSinglePrecision) {
  Rng rng(3);
  const Triplets t = test::random_triplets(400, 400, 5000, rng);
  Rng xr(4);
  const Vector x = random_vector(400, xr);
  const Vector ref = test::reference_spmv(t, x);
  const CsrF32 m = CsrF32::from_triplets(t);
  Vector y(400, 0.0);
  spmv(m, x.data(), y.data());
  const double err = rel_error(ref, y);
  EXPECT_LT(err, 1e-5);   // single-precision values
  EXPECT_GT(err, 1e-12);  // ...but genuinely single, not double
}

TEST(CsrF32, RoundTripQuantizesToFloat) {
  const Triplets t = test::paper_matrix();
  const Triplets back = CsrF32::from_triplets(t).to_triplets();
  ASSERT_EQ(back.nnz(), t.nnz());
  for (usize_t i = 0; i < t.nnz(); ++i) {
    EXPECT_EQ(back.entries()[i].val,
              static_cast<double>(
                  static_cast<float>(t.entries()[i].val)));
  }
}

TEST(MixedPrecision, RecoversDoubleAccuracy) {
  // The §III-C claim: bulk work in single precision, double-precision
  // answer. Refinement must reach a tolerance far below what a pure
  // single-precision solve could.
  const Triplets t = gen_laplacian_2d(24, 24);
  Ops ops(t);
  Rng rng(5);
  Vector x_true = random_vector(t.nrows(), rng);
  const Vector b = test::reference_spmv(t, x_true);

  Vector x(t.nrows(), 0.0);
  RefinementOptions opts;
  opts.rel_tolerance = 1e-12;
  const RefinementResult r =
      mixed_precision_cg(ops.hi_op(), ops.lo_op(), b, x, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.residual_norm, 1e-12 * norm2(b) + 1e-300);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-8);
  // The bulk of the iterations must be the cheap inner ones.
  EXPECT_GT(r.inner_iterations_total, 2 * r.outer_iterations);
}

TEST(MixedPrecision, ZeroRhsImmediate) {
  const Triplets t = gen_laplacian_2d(8, 8);
  Ops ops(t);
  const Vector b(t.nrows(), 0.0);
  Vector x(t.nrows(), 0.0);
  const RefinementResult r =
      mixed_precision_cg(ops.hi_op(), ops.lo_op(), b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.outer_iterations, 0u);
}

TEST(MixedPrecision, ReportsNonConvergenceHonestly) {
  const Triplets t = gen_laplacian_2d(20, 20);
  Ops ops(t);
  Vector b(t.nrows(), 1.0);
  Vector x(t.nrows(), 0.0);
  RefinementOptions opts;
  opts.max_outer = 1;
  opts.inner_iterations = 1;
  const RefinementResult r =
      mixed_precision_cg(ops.hi_op(), ops.lo_op(), b, x, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.residual_norm, 0.0);
}

}  // namespace
}  // namespace spc
