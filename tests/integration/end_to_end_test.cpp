// Integration tests exercising the full pipeline:
// generate / read -> analyse -> encode -> partition -> multiply -> solve.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "spc/bench/harness.hpp"
#include "spc/gen/corpus.hpp"
#include "spc/mm/mtx.hpp"
#include "spc/solvers/iterative.hpp"
#include "spc/spmv/instance.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

TEST(EndToEnd, MtxFileThroughAllFormats) {
  // Write the paper matrix to an .mtx file, read it back, run every
  // format serially and at 4 threads, and compare all results.
  const std::string path = ::testing::TempDir() + "/spc_e2e.mtx";
  write_matrix_market_file(test::paper_matrix(), path);
  const Triplets t = read_matrix_market_file(path);

  Rng rng(1);
  const Vector x = random_vector(t.ncols(), rng);
  const Vector ref = test::reference_spmv(t, x);

  InstanceOptions opts;
  opts.pin_threads = false;
  for (const Format f : all_formats()) {
    if (format_requires_symmetry(f) && !SymCsr::applicable(t)) {
      continue;
    }
    for (const std::size_t threads : {1u, 4u}) {
      SpmvInstance inst(t, f, threads, opts);
      Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
      inst.run(x, y);
      EXPECT_LT(rel_error(ref, y), kTol)
          << format_name(f) << " x" << threads;
    }
  }
}

TEST(EndToEnd, CorpusMatrixThroughCompressedFormatsMatchesCsr) {
  // The headline consistency property on real corpus recipes: CSR-DU and
  // CSR-VI must be bit-for-bit interchangeable with CSR results up to FP
  // associativity (same summation order → exactly equal here). That
  // shared order is a scalar-tier property, so pin the tier; the vector
  // tiers are compared under tolerance in dispatch_fuzz_test.
  test::ScopedEnv isa("SPC_ISA", "scalar");
  for (const char* name : {"lap2d-s", "band-pool-s", "ragged"}) {
    const Triplets t = corpus_spec(name, CorpusScale::kTiny).build();
    Rng rng(2);
    const Vector x = random_vector(t.ncols(), rng);

    SpmvInstance csr(t, Format::kCsr);
    Vector y_csr(t.nrows(), 0.0);
    csr.run(x, y_csr);

    for (const Format f :
         {Format::kCsrDu, Format::kCsrVi, Format::kCsrDuVi}) {
      SpmvInstance inst(t, f);
      Vector y(t.nrows(), 0.0);
      inst.run(x, y);
      // Same accumulation order: results are exactly equal.
      EXPECT_EQ(max_abs_diff(y_csr, y), 0.0)
          << name << " " << format_name(f);
    }
  }
}

TEST(EndToEnd, CompressionRatiosBehaveAsThePaperPredicts) {
  // §II-B: values are 2/3 of col_ind+values; so even perfect index
  // compression caps at ~1/3 savings, while value compression on a
  // VI-friendly matrix can save more. The claim is about the *untiled*
  // encodings — a forced SPC_TILE would swap in segment/tile arrays
  // with different size trade-offs, so pin tiling off.
  test::ScopedEnv tile("SPC_TILE", "off");
  const Triplets t = corpus_spec("lap2d-s", CorpusScale::kSmall).build();
  SpmvInstance csr(t, Format::kCsr);
  SpmvInstance du(t, Format::kCsrDu);
  SpmvInstance vi(t, Format::kCsrVi);

  const double du_ratio = static_cast<double>(du.matrix_bytes()) /
                          static_cast<double>(csr.matrix_bytes());
  const double vi_ratio = static_cast<double>(vi.matrix_bytes()) /
                          static_cast<double>(csr.matrix_bytes());
  EXPECT_GT(du_ratio, 2.0 / 3.0);  // index side only
  EXPECT_LT(du_ratio, 1.0);
  EXPECT_LT(vi_ratio, du_ratio);   // 2-unique-value matrix: VI wins big
}

TEST(EndToEnd, CgOnCorpusMatrixWithCompressedOperator) {
  Triplets t = corpus_spec("lap3d-s", CorpusScale::kTiny).build();
  for (index_t i = 0; i < t.nrows(); ++i) {
    t.add(i, i, 1.0);  // make it safely SPD
  }
  t.sort_and_combine();

  Rng rng(3);
  Vector x_true = random_vector(t.nrows(), rng);
  const Vector b = test::reference_spmv(t, x_true);

  InstanceOptions opts;
  opts.pin_threads = false;
  SpmvInstance A(t, Format::kCsrDuVi, 2, opts);
  Vector x(t.nrows(), 0.0);
  const SolveResult r =
      cg([&](const Vector& in, Vector& out) { A.run(in, out); }, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-6);
}

TEST(EndToEnd, HarnessMeasuresEveryCorpusClass) {
  BenchConfig cfg;
  cfg.scale = CorpusScale::kTiny;
  cfg.iterations = 2;
  cfg.warmup = 0;
  cfg.max_matrices = 4;
  std::size_t measured = 0;
  for_each_matrix(
      cfg,
      [&](MatrixCase& mc) {
        SpmvInstance inst(mc.mat, Format::kCsrDu);
        const double secs = time_spmv(inst, cfg.iterations, cfg.warmup);
        EXPECT_GT(secs, 0.0) << mc.name;
        ++measured;
      },
      /*apply_rejection=*/false);
  EXPECT_EQ(measured, 4u);
}

}  // namespace
}  // namespace spc
