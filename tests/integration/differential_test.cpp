// Differential testing: for a swarm of random matrices, every format,
// every thread count and both backends must produce results
// *bit-identical* to serial CSR (all kernels accumulate per row in the
// same element order), and every round-trippable format must reproduce
// the exact triplets. This is the library's strongest global invariant.
#include <gtest/gtest.h>

#include <limits>

#include "spc/gen/generators.hpp"
#include "spc/spmv/instance.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

Triplets swarm_matrix(int seed) {
  Rng rng(2000 + seed);
  switch (seed % 5) {
    case 0:
      return test::random_triplets(
          1 + static_cast<index_t>(rng.next_below(400)),
          1 + static_cast<index_t>(rng.next_below(400)),
          rng.next_below(6000), rng,
          static_cast<std::uint32_t>(rng.next_below(100)));
    case 1:
      return gen_ragged(1 + static_cast<index_t>(rng.next_below(300)),
                        1 + static_cast<index_t>(rng.next_below(300)),
                        1 + static_cast<index_t>(rng.next_below(20)),
                        0.3 * rng.next_double(), rng,
                        ValueModel::pooled(16));
    case 2:
      return gen_banded(32 + static_cast<index_t>(rng.next_below(400)),
                        1 + static_cast<index_t>(rng.next_below(60)),
                        1 + static_cast<index_t>(rng.next_below(12)), rng,
                        ValueModel::random());
    case 3:
      return gen_rmat(7 + static_cast<std::uint32_t>(rng.next_below(3)),
                      500 + rng.next_below(4000), rng,
                      ValueModel::pooled(8));
    default:
      return gen_fem_blocks(
          4 + static_cast<index_t>(rng.next_below(40)),
          1 + static_cast<index_t>(rng.next_below(4)),
          1 + static_cast<index_t>(rng.next_below(6)), rng,
          ValueModel::random());
  }
}

class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, AllFormatsBitIdenticalToSerialCsr) {
  // Bit-exactness is a scalar-tier property: the vector tiers
  // reassociate lane partial sums (covered by dispatch_fuzz_test with a
  // relative-error bound instead).
  test::ScopedEnv isa("SPC_ISA", "scalar");
  const Triplets t = swarm_matrix(GetParam());
  if (t.nnz() == 0) {
    GTEST_SKIP() << "degenerate draw";
  }
  Rng xr(3000 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);

  SpmvInstance ref(t, Format::kCsr, 1);
  Vector y_ref(t.nrows(), 0.0);
  ref.run(x, y_ref);

  InstanceOptions opts;
  opts.pin_threads = false;
  for (const Format f : all_formats()) {
    if (f == Format::kCsr16 && !csr16_applicable(t)) {
      continue;
    }
    if (format_requires_symmetry(f) && !SymCsr::applicable(t)) {
      continue;  // random draws are almost never symmetric
    }
    for (const std::size_t threads : {1u, 3u, 8u}) {
      SpmvInstance inst(t, f, threads, opts);
      Vector y(t.nrows(),
               std::numeric_limits<double>::quiet_NaN());
      inst.run(x, y);
      // Row-major per-row accumulation order is shared by all row-based
      // kernels: results must be exactly equal. Scatter-based formats
      // (COO and CSC add in different orders, BCSR/ELL/DIA/JDS regroup)
      // are held to a tight tolerance instead.
      const bool exact =
          f == Format::kCsr || f == Format::kCsr16 ||
          f == Format::kCsrDu || f == Format::kCsrDuRle ||
          f == Format::kCsrVi || f == Format::kCsrDuVi ||
          f == Format::kDcsr;
      if (exact) {
        EXPECT_EQ(max_abs_diff(y_ref, y), 0.0)
            << format_name(f) << " x" << threads << " seed "
            << GetParam();
      } else {
        EXPECT_LT(rel_error(y_ref, y), 1e-12)
            << format_name(f) << " x" << threads << " seed "
            << GetParam();
      }
    }
  }
}

TEST_P(Differential, CompressedFormatsRoundTripExactly) {
  const Triplets t = swarm_matrix(GetParam());
  test::expect_triplets_eq(t, CsrDu::from_triplets(t).to_triplets());
  test::expect_triplets_eq(t, CsrVi::from_triplets(t).to_triplets());
  test::expect_triplets_eq(t, CsrDuVi::from_triplets(t).to_triplets());
  test::expect_triplets_eq(t, Dcsr::from_triplets(t).to_triplets());
  test::expect_triplets_eq(t, Csr::from_triplets(t).to_triplets());
}

INSTANTIATE_TEST_SUITE_P(Swarm, Differential, ::testing::Range(0, 25));

}  // namespace
}  // namespace spc
