// Guards the public API surface:
//
//  * every SPC_* environment variable mentioned anywhere in src/ or
//    bench/ is registered in env_registry() (support/env.cpp), so the
//    generated table in docs/API.md can never silently go stale;
//  * nothing outside support/env.cpp parses the environment directly
//    (std::getenv), so every knob goes through the registered helpers;
//  * the generated env table embedded in docs/API.md matches
//    env_registry_markdown() byte for byte (regenerate with
//    `spctool env-table`);
//  * every header under src/spc/ compiles as a standalone TU, included
//    twice (self-contained + include-guarded) — enforced at build time
//    by the header_hygiene object library this test links.
//
// The repo source tree is located via the SPC_SOURCE_DIR compile
// definition (set in tests/CMakeLists.txt).
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spc/support/env.hpp"

namespace spc {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Every file under src/ and bench/ with a C++ extension.
std::vector<fs::path> cxx_sources() {
  std::vector<fs::path> out;
  for (const char* root : {"src", "bench"}) {
    for (const auto& e :
         fs::recursive_directory_iterator(fs::path(SPC_SOURCE_DIR) / root)) {
      if (!e.is_regular_file()) {
        continue;
      }
      const std::string ext = e.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
        out.push_back(e.path());
      }
    }
  }
  return out;
}

TEST(ApiSurface, EverySpcEnvVarLiteralIsRegistered) {
  std::set<std::string> registered;
  for (const EnvVarInfo& v : env_registry()) {
    registered.insert(v.name);
  }
  ASSERT_FALSE(registered.empty());

  // SPC_ prefixed all-caps identifiers inside string literals. Compile
  // definitions (SPC_CHECK, SPC_DCHECK, SPC_SOURCE_DIR, ...) are code
  // identifiers, not quoted, so requiring the quote keeps them out.
  const std::regex lit("\"(SPC_[A-Z][A-Z0-9_]*)\"");
  std::vector<std::string> unregistered;
  for (const fs::path& p : cxx_sources()) {
    const std::string text = read_file(p);
    for (std::sregex_iterator it(text.begin(), text.end(), lit), end;
         it != end; ++it) {
      const std::string name = (*it)[1].str();
      if (registered.count(name) == 0) {
        unregistered.push_back(name + " (" + p.string() + ")");
      }
    }
  }
  EXPECT_TRUE(unregistered.empty())
      << "SPC_* env vars referenced in source but missing from "
         "env_registry() in support/env.cpp:\n  "
      << [&] {
           std::string joined;
           for (const auto& s : unregistered) {
             joined += s + "\n  ";
           }
           return joined;
         }();
}

TEST(ApiSurface, EnvironmentIsParsedOnlyInSupportEnv) {
  const std::regex getenv_call("std::getenv|::getenv|\\bgetenv\\s*\\(");
  std::vector<std::string> offenders;
  for (const fs::path& p : cxx_sources()) {
    if (p.filename() == "env.cpp" || p.filename() == "env.hpp") {
      continue;  // the one sanctioned caller
    }
    const std::string text = read_file(p);
    if (std::regex_search(text, getenv_call)) {
      offenders.push_back(p.string());
    }
  }
  EXPECT_TRUE(offenders.empty())
      << "getenv used outside support/env.cpp — route new knobs through "
         "env_flag/env_u64/env_str so they register in env_registry():\n  "
      << [&] {
           std::string joined;
           for (const auto& s : offenders) {
             joined += s + "\n  ";
           }
           return joined;
         }();
}

TEST(ApiSurface, DocsEnvTableMatchesRegistry) {
  const fs::path doc = fs::path(SPC_SOURCE_DIR) / "docs" / "API.md";
  ASSERT_TRUE(fs::exists(doc)) << doc << " is missing";
  const std::string text = read_file(doc);
  const std::string begin_marker = "<!-- BEGIN ENV TABLE (generated) -->\n";
  const std::string end_marker = "<!-- END ENV TABLE (generated) -->";
  const std::size_t b = text.find(begin_marker);
  const std::size_t e = text.find(end_marker);
  ASSERT_NE(b, std::string::npos) << "begin marker missing in docs/API.md";
  ASSERT_NE(e, std::string::npos) << "end marker missing in docs/API.md";
  const std::string embedded =
      text.substr(b + begin_marker.size(), e - b - begin_marker.size());
  EXPECT_EQ(embedded, env_registry_markdown())
      << "docs/API.md env table is stale — regenerate it with "
         "`spctool env-table` and paste between the markers";
}

TEST(ApiSurface, RegistryEntriesAreWellFormed) {
  std::set<std::string> seen;
  for (const EnvVarInfo& v : env_registry()) {
    EXPECT_TRUE(seen.insert(v.name).second) << "duplicate: " << v.name;
    EXPECT_TRUE(std::string(v.name).rfind("SPC_", 0) == 0) << v.name;
    EXPECT_NE(std::string(v.type), "") << v.name;
    EXPECT_NE(std::string(v.effect), "") << v.name;
  }
}

}  // namespace
}  // namespace spc
