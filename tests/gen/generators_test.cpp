#include "spc/gen/generators.hpp"

#include <gtest/gtest.h>

#include <set>

#include "spc/mm/stats.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(Generators, Laplacian2dShapeAndSymmetry) {
  const Triplets t = gen_laplacian_2d(8, 5);
  EXPECT_EQ(t.nrows(), 40u);
  EXPECT_EQ(t.ncols(), 40u);
  // Interior points have 5 entries, corners 3, edges 4.
  const MatrixStats s = compute_stats(t);
  EXPECT_EQ(s.row_len_min, 3u);
  EXPECT_EQ(s.row_len_max, 5u);
  EXPECT_EQ(s.unique_values, 2u);
  // Symmetric pattern: (r,c) present iff (c,r) present.
  std::set<std::pair<index_t, index_t>> coords;
  for (const Entry& e : t.entries()) {
    coords.insert({e.row, e.col});
  }
  for (const Entry& e : t.entries()) {
    EXPECT_TRUE(coords.count({e.col, e.row}));
  }
}

TEST(Generators, Laplacian2dRowSumsAreBoundaryDependent) {
  // Interior row sums are 0 (4 - 4*1); boundary rows are positive.
  const Triplets t = gen_laplacian_2d(6, 6);
  Vector x(36, 1.0);
  const Vector y = test::reference_spmv(t, x);
  for (const double v : y) {
    EXPECT_GE(v, 0.0);
  }
  // The exact center has all four neighbours.
  EXPECT_DOUBLE_EQ(y[2 * 6 + 2], 0.0);
}

TEST(Generators, Laplacian3dStructure) {
  const Triplets t = gen_laplacian_3d(4, 4, 4);
  EXPECT_EQ(t.nrows(), 64u);
  const MatrixStats s = compute_stats(t);
  EXPECT_EQ(s.row_len_max, 7u);
  EXPECT_EQ(s.unique_values, 2u);
  EXPECT_EQ(s.bandwidth, 16u);  // nx*ny
}

TEST(Generators, Stencil9HasNineUniqueValues) {
  const MatrixStats s = compute_stats(gen_stencil_9pt(10, 10));
  EXPECT_LE(s.unique_values, 9u);
  EXPECT_GE(s.unique_values, 4u);
  EXPECT_EQ(s.row_len_max, 9u);
}

TEST(Generators, BandedRespectsBandwidth) {
  Rng rng(1);
  const index_t hbw = 17;
  const Triplets t = gen_banded(300, hbw, 6, rng, ValueModel::random());
  const MatrixStats s = compute_stats(t);
  EXPECT_LE(s.bandwidth, hbw);
  EXPECT_EQ(s.empty_rows, 0u);  // diagonal always present
}

TEST(Generators, RandomUniformShape) {
  Rng rng(2);
  const Triplets t =
      gen_random_uniform(100, 5000, 9, rng, ValueModel::random());
  EXPECT_EQ(t.nrows(), 100u);
  EXPECT_EQ(t.ncols(), 5000u);
  EXPECT_LE(t.nnz(), 900u);
  EXPECT_GE(t.nnz(), 800u);  // few collisions in a sparse draw
}

TEST(Generators, DeterministicForSameSeed) {
  Rng a(77), b(77);
  const Triplets t1 =
      gen_random_uniform(50, 50, 5, a, ValueModel::pooled(7));
  const Triplets t2 =
      gen_random_uniform(50, 50, 5, b, ValueModel::pooled(7));
  test::expect_triplets_eq(t1, t2);
}

TEST(Generators, PooledValuesBoundUniqueCount) {
  Rng rng(3);
  const Triplets t =
      gen_random_uniform(200, 200, 10, rng, ValueModel::pooled(13));
  EXPECT_LE(compute_stats(t).unique_values, 13u);
}

TEST(Generators, RmatProducesSkewedDegrees) {
  Rng rng(4);
  const Triplets t = gen_rmat(10, 8000, rng, ValueModel::random());
  EXPECT_EQ(t.nrows(), 1024u);
  const MatrixStats s = compute_stats(t);
  // Power-law: the max row degree dwarfs the mean.
  EXPECT_GT(static_cast<double>(s.row_len_max), 4.0 * s.row_len_mean);
}

TEST(Generators, FemBlocksAreDense) {
  Rng rng(5);
  const Triplets t = gen_fem_blocks(20, 3, 4, rng, ValueModel::random());
  EXPECT_EQ(t.nrows(), 60u);
  // nnz divisible by block area: whole blocks only.
  EXPECT_EQ(t.nnz() % 9, 0u);
}

TEST(Generators, DiagPlusRandomKeepsDiagonal) {
  Rng rng(6);
  const Triplets t =
      gen_diag_plus_random(120, 2, rng, ValueModel::random());
  std::set<index_t> diag_rows;
  for (const Entry& e : t.entries()) {
    if (e.row == e.col) {
      diag_rows.insert(e.row);
    }
  }
  EXPECT_EQ(diag_rows.size(), 120u);
}

TEST(Generators, RaggedProducesEmptyRows) {
  Rng rng(7);
  const Triplets t =
      gen_ragged(1000, 1000, 10, 0.3, rng, ValueModel::random());
  const MatrixStats s = compute_stats(t);
  EXPECT_GT(s.empty_rows, 150u);
  EXPECT_LT(s.empty_rows, 450u);
}

TEST(Generators, RejectsDegenerateArguments) {
  Rng rng(8);
  EXPECT_THROW(gen_laplacian_2d(1, 5), Error);
  EXPECT_THROW(gen_rmat(0, 10, rng, ValueModel::random()), Error);
  EXPECT_THROW(gen_fem_blocks(5, 9, 2, rng, ValueModel::random()), Error);
}

}  // namespace
}  // namespace spc
