#include "spc/gen/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "spc/formats/csr_vi.hpp"
#include "spc/mm/stats.hpp"

namespace spc {
namespace {

TEST(Corpus, NamesAreUniqueAndStableAcrossScales) {
  const auto tiny = corpus_specs(CorpusScale::kTiny);
  const auto small = corpus_specs(CorpusScale::kSmall);
  ASSERT_EQ(tiny.size(), small.size());
  std::set<std::string> names;
  for (std::size_t i = 0; i < tiny.size(); ++i) {
    EXPECT_EQ(tiny[i].name, small[i].name);
    names.insert(tiny[i].name);
  }
  EXPECT_EQ(names.size(), tiny.size());
}

TEST(Corpus, HasBothValueRegimes) {
  // The paper's M0vi is ~39% of M0; the corpus must include both
  // VI-friendly and VI-hostile recipes in comparable numbers.
  const auto specs = corpus_specs(CorpusScale::kTiny);
  std::size_t friendly = 0;
  for (const auto& s : specs) {
    friendly += s.vi_friendly;
  }
  EXPECT_GE(friendly, specs.size() / 4);
  EXPECT_LE(friendly, 3 * specs.size() / 4);
}

TEST(Corpus, AllTinyRecipesBuildValidMatrices) {
  for (const auto& spec : corpus_specs(CorpusScale::kTiny)) {
    const Triplets t = spec.build();
    EXPECT_GT(t.nnz(), 0u) << spec.name;
    EXPECT_TRUE(t.is_sorted_unique()) << spec.name;
    EXPECT_NO_THROW(t.validate()) << spec.name;
  }
}

TEST(Corpus, ViFriendlyFlagPredictsTtu) {
  for (const auto& spec : corpus_specs(CorpusScale::kTiny)) {
    const MatrixStats s = compute_stats(spec.build());
    if (spec.vi_friendly) {
      EXPECT_GT(s.ttu, kViTtuThreshold) << spec.name;
    }
  }
}

TEST(Corpus, BuildsAreDeterministic) {
  const auto specs = corpus_specs(CorpusScale::kTiny);
  const Triplets a = specs[7].build();
  const Triplets b = specs[7].build();
  ASSERT_EQ(a.nnz(), b.nnz());
  for (usize_t i = 0; i < a.nnz(); ++i) {
    ASSERT_EQ(a.entries()[i], b.entries()[i]);
  }
}

TEST(Corpus, SmallScaleIsLargerThanTiny) {
  const auto spec_t = corpus_spec("lap2d-m", CorpusScale::kTiny);
  const auto spec_s = corpus_spec("lap2d-m", CorpusScale::kSmall);
  EXPECT_GT(spec_s.build().nnz(), spec_t.build().nnz());
}

TEST(Corpus, LookupByNameThrowsOnUnknown) {
  EXPECT_THROW(corpus_spec("no-such-matrix", CorpusScale::kTiny),
               InvalidArgument);
}

TEST(Corpus, ParseScale) {
  EXPECT_EQ(parse_corpus_scale("tiny"), CorpusScale::kTiny);
  EXPECT_EQ(parse_corpus_scale("SMALL"), CorpusScale::kSmall);
  EXPECT_EQ(parse_corpus_scale("bench"), CorpusScale::kBench);
  EXPECT_THROW(parse_corpus_scale("huge"), InvalidArgument);
}

TEST(Corpus, CoversExpectedStructuralClasses) {
  std::set<std::string> classes;
  for (const auto& s : corpus_specs(CorpusScale::kTiny)) {
    classes.insert(s.cls);
  }
  for (const char* need :
       {"fem", "banded", "random", "graph", "fem-block", "diag",
        "irregular"}) {
    EXPECT_TRUE(classes.count(need)) << need;
  }
}

}  // namespace
}  // namespace spc
