// Property: for ANY row partition into T parts, running the per-slice
// kernels (in any order, here sequentially) reconstructs exactly the
// full-matrix result — the invariant the multithreaded path stands on.
#include <gtest/gtest.h>

#include <limits>

#include "spc/formats/csr_du.hpp"
#include "spc/formats/dcsr.hpp"
#include "spc/gen/generators.hpp"
#include "spc/parallel/partition.hpp"
#include "spc/spmv/kernels.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

// Random monotone partition of [0, nrows] into nparts ranges (empty
// ranges allowed — the degenerate case worth testing).
RowPartition random_partition(index_t nrows, std::size_t nparts,
                              Rng& rng) {
  RowPartition p;
  p.bounds.resize(nparts + 1);
  p.bounds[0] = 0;
  p.bounds[nparts] = nrows;
  std::vector<index_t> cuts;
  for (std::size_t i = 1; i < nparts; ++i) {
    cuts.push_back(static_cast<index_t>(rng.next_below(nrows + 1)));
  }
  std::sort(cuts.begin(), cuts.end());
  for (std::size_t i = 1; i < nparts; ++i) {
    p.bounds[i] = cuts[i - 1];
  }
  return p;
}

class SliceProperty : public ::testing::TestWithParam<int> {};

TEST_P(SliceProperty, DuSlicesComposeUnderRandomPartitions) {
  Rng rng(4000 + GetParam());
  const Triplets t = gen_ragged(
      1 + static_cast<index_t>(rng.next_below(500)),
      1 + static_cast<index_t>(rng.next_below(500)),
      1 + static_cast<index_t>(rng.next_below(16)),
      0.25 * rng.next_double(), rng, ValueModel::random());
  CsrDuOptions opts;
  opts.enable_rle = rng.next_bernoulli(0.5);
  opts.rle_min_run = 4;
  opts.split_threshold =
      1 + static_cast<std::uint32_t>(rng.next_below(16));
  const CsrDu m = CsrDu::from_triplets(t, opts);

  Rng xr(5000 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);
  const Vector ref = test::reference_spmv(t, x);

  for (const std::size_t nparts : {1u, 2u, 3u, 5u, 9u}) {
    const RowPartition p = random_partition(t.nrows(), nparts, rng);
    Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
    for (std::size_t th = 0; th < nparts; ++th) {
      spmv(m.slice(p.row_begin(th), p.row_end(th)), x.data(), y.data());
    }
    ASSERT_LT(rel_error(ref, y), kTol)
        << "nparts " << nparts << " seed " << GetParam();
  }
}

TEST_P(SliceProperty, DcsrSlicesComposeUnderRandomPartitions) {
  Rng rng(6000 + GetParam());
  const Triplets t = gen_ragged(
      1 + static_cast<index_t>(rng.next_below(400)),
      1 + static_cast<index_t>(rng.next_below(400)),
      1 + static_cast<index_t>(rng.next_below(12)),
      0.4 * rng.next_double(), rng, ValueModel::random());
  const Dcsr m = Dcsr::from_triplets(t);

  Rng xr(7000 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);
  const Vector ref = test::reference_spmv(t, x);

  for (const std::size_t nparts : {2u, 4u, 7u}) {
    const RowPartition p = random_partition(t.nrows(), nparts, rng);
    Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
    for (std::size_t th = 0; th < nparts; ++th) {
      spmv(m.slice(p.row_begin(th), p.row_end(th)), x.data(), y.data());
    }
    ASSERT_LT(rel_error(ref, y), kTol)
        << "nparts " << nparts << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace spc
