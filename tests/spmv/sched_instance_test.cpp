// SpmvInstance-level behavior of the work-stealing scheduler: policy
// resolution (options + SPC_SCHED), chunk accounting, result identity,
// and the static default staying untouched.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "spc/gen/generators.hpp"
#include "spc/spmv/instance.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

Triplets skewed_matrix() {
  // Power-law-ish row lengths so chunking is non-trivial: a few dense
  // rows among many sparse ones.
  Rng rng(424242);
  Triplets t = gen_rmat(10, 20000, rng, ValueModel::random());
  return t;
}

const std::vector<Format>& sched_formats() {
  static const std::vector<Format> kFormats = {
      Format::kCsr,    Format::kCsr16,    Format::kCsrVi,
      Format::kCsrDu,  Format::kCsrDuRle, Format::kCsrDuVi,
      Format::kBcsr,   Format::kEll,
  };
  return kFormats;
}

// Most tests here program the schedule through InstanceOptions; an
// ambient SPC_SCHED (the CI steal leg exports one suite-wide) would
// override every one of them, so they pin it to empty (= use options).

TEST(SchedInstance, StaticIsTheDefaultAndCarriesNoChunkState) {
  test::ScopedEnv sched("SPC_SCHED", "");
  const Triplets t = skewed_matrix();
  SpmvInstance inst(t, Format::kCsr, 4);
  EXPECT_EQ(inst.schedule(), Schedule::kStatic);
  EXPECT_EQ(inst.sched_chunks(), 0u);
  EXPECT_EQ(inst.sched_steals_total(), 0u);
}

TEST(SchedInstance, OptionsSelectTheSchedule) {
  test::ScopedEnv sched("SPC_SCHED", "");
  const Triplets t = skewed_matrix();
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.chunk_nnz = 1024;
  for (const Schedule s : {Schedule::kChunked, Schedule::kSteal}) {
    opts.schedule = s;
    SpmvInstance inst(t, Format::kCsr, 4, opts);
    EXPECT_EQ(inst.schedule(), s);
    EXPECT_GT(inst.sched_chunks(), 4u);
  }
}

TEST(SchedInstance, DerivedTargetKeepsStealGranular) {
  // With the L2-derived target a small matrix would collapse to one
  // chunk per worker — useless for stealing. The derived path shrinks
  // the target toward >= 4 chunks per worker; an explicit chunk_nnz is
  // honored verbatim.
  test::ScopedEnv sched("SPC_SCHED", "");
  test::ScopedEnv chunk("SPC_CHUNK_NNZ", "");
  Rng rng(21);
  const Triplets t = test::random_triplets(2000, 2000, 40000, rng);
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.schedule = Schedule::kSteal;
  {
    SpmvInstance inst(t, Format::kCsr, 4, opts);
    EXPECT_GE(inst.sched_chunks(), 8u);
  }
  {
    opts.chunk_nnz = usize_t{1} << 20;  // far above nnz: one per worker
    SpmvInstance inst(t, Format::kCsr, 4, opts);
    EXPECT_EQ(inst.sched_chunks(), 4u);
  }
}

TEST(SchedInstance, EnvOverridesOptions) {
  const Triplets t = skewed_matrix();
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.chunk_nnz = 1024;
  test::ScopedEnv env("SPC_SCHED", "steal");
  SpmvInstance inst(t, Format::kCsr, 4, opts);
  EXPECT_EQ(inst.schedule(), Schedule::kSteal);
}

TEST(SchedInstance, UnsupportedFormatsFallBackToStatic) {
  test::ScopedEnv sched("SPC_SCHED", "");
  Rng rng(7);
  const Triplets t = test::random_triplets(300, 300, 4000, rng);
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.schedule = Schedule::kSteal;
  opts.chunk_nnz = 64;
  for (const Format f :
       {Format::kCsc, Format::kDia, Format::kJds, Format::kCoo,
        Format::kDcsr}) {
    SpmvInstance inst(t, f, 4, opts);
    EXPECT_EQ(inst.schedule(), Schedule::kStatic) << format_name(f);
    EXPECT_EQ(inst.sched_chunks(), 0u) << format_name(f);
    // And it still computes the right answer.
    Rng xr(8);
    const Vector x = random_vector(t.ncols(), xr);
    Vector y(t.nrows(), 0.0);
    inst.run(x, y);
    EXPECT_LT(rel_error(test::reference_spmv(t, x), y), 1e-12)
        << format_name(f);
  }
}

TEST(SchedInstance, SerialInstancesStayStatic) {
  test::ScopedEnv sched("SPC_SCHED", "");
  const Triplets t = skewed_matrix();
  InstanceOptions opts;
  opts.schedule = Schedule::kSteal;
  SpmvInstance inst(t, Format::kCsr, 1, opts);
  EXPECT_EQ(inst.schedule(), Schedule::kStatic);
}

TEST(SchedInstance, ExecutedChunkCountsSumToPlanTimesRuns) {
  test::ScopedEnv sched("SPC_SCHED", "");
  const Triplets t = skewed_matrix();
  Rng xr(9);
  const Vector x = random_vector(t.ncols(), xr);
  Vector y(t.nrows(), 0.0);
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.chunk_nnz = 1024;
  for (const Schedule s : {Schedule::kChunked, Schedule::kSteal}) {
    opts.schedule = s;
    SpmvInstance inst(t, Format::kCsr, 4, opts);
    const std::size_t chunks = inst.sched_chunks();
    ASSERT_GT(chunks, 0u);
    constexpr std::uint64_t kRuns = 5;
    for (std::uint64_t i = 0; i < kRuns; ++i) {
      inst.run(x, y);
    }
    std::uint64_t executed = 0;
    for (std::size_t th = 0; th < inst.nthreads(); ++th) {
      executed += inst.sched_executed(th);
    }
    EXPECT_EQ(executed, kRuns * chunks) << schedule_name(s);
    if (s == Schedule::kChunked) {
      EXPECT_EQ(inst.sched_steals_total(), 0u);
    } else {
      // Steals are opportunistic — only the invariant total is exact;
      // stolen chunks are a subset of executed ones.
      EXPECT_LE(inst.sched_steals_total(), executed);
    }
    inst.sched_reset();
    for (std::size_t th = 0; th < inst.nthreads(); ++th) {
      EXPECT_EQ(inst.sched_executed(th), 0u);
      EXPECT_EQ(inst.sched_stolen(th), 0u);
    }
  }
}

TEST(SchedInstance, TinyChunksForceManyChunksAndStayExact) {
  // chunk_nnz far below row lengths: one chunk per row or close to it —
  // the most deque traffic per nnz the scheduler can see.
  Rng rng(10);
  const Triplets t = test::random_triplets(200, 200, 6000, rng);
  Rng xr(11);
  const Vector x = random_vector(t.ncols(), xr);
  const Vector y_ref = test::reference_spmv(t, x);
  test::ScopedEnv isa("SPC_ISA", "scalar");
  test::ScopedEnv sched("SPC_SCHED", "");
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.chunk_nnz = 1;
  opts.schedule = Schedule::kSteal;
  SpmvInstance inst(t, Format::kCsr, 4, opts);
  EXPECT_GT(inst.sched_chunks(), 100u);
  for (int i = 0; i < 10; ++i) {
    Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
    inst.run(x, y);
    ASSERT_EQ(max_abs_diff(y_ref, y), 0.0) << "run " << i;
  }
}

TEST(SchedInstance, EveryFormatMatchesStaticBitForBitAtScalar) {
  const Triplets t = skewed_matrix();
  Rng xr(12);
  const Vector x = random_vector(t.ncols(), xr);
  test::ScopedEnv isa("SPC_ISA", "scalar");
  test::ScopedEnv sched("SPC_SCHED", "");
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.chunk_nnz = 2048;
  for (const Format f : sched_formats()) {
    if (f == Format::kCsr16 && !csr16_applicable(t)) {
      continue;
    }
    Vector y_static(t.nrows(), 0.0);
    {
      opts.schedule = Schedule::kStatic;
      SpmvInstance inst(t, f, 4, opts);
      inst.run(x, y_static);
    }
    for (const Schedule s : {Schedule::kChunked, Schedule::kSteal}) {
      opts.schedule = s;
      SpmvInstance inst(t, f, 4, opts);
      ASSERT_EQ(inst.schedule(), s) << format_name(f);
      Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
      inst.run(x, y);
      EXPECT_EQ(max_abs_diff(y_static, y), 0.0)
          << format_name(f) << " " << schedule_name(s);
    }
  }
}

TEST(SchedInstance, StealComposesWithNumaPolicies) {
  // Chunk closures must follow the repacked slices: bit-identical
  // results whatever SPC_NUMA says (single-node CI resolves local to a
  // 1-node repack, which still moves the arrays).
  const Triplets t = skewed_matrix();
  Rng xr(13);
  const Vector x = random_vector(t.ncols(), xr);
  test::ScopedEnv isa("SPC_ISA", "scalar");
  test::ScopedEnv sched("SPC_SCHED", "");
  InstanceOptions opts;
  opts.pin_threads = true;  // placement needs pinned workers
  opts.chunk_nnz = 2048;
  opts.schedule = Schedule::kSteal;
  for (const Format f : sched_formats()) {
    if (f == Format::kCsr16 && !csr16_applicable(t)) {
      continue;
    }
    Vector y_off(t.nrows(), 0.0);
    {
      test::ScopedEnv numa("SPC_NUMA", "off");
      SpmvInstance inst(t, f, 4, opts);
      inst.run(x, y_off);
    }
    for (const char* policy : {"local", "replicate", "interleaved"}) {
      test::ScopedEnv numa("SPC_NUMA", policy);
      SpmvInstance inst(t, f, 4, opts);
      EXPECT_NE(inst.numa_policy(), NumaPolicy::kOff)
          << format_name(f) << " " << policy;
      Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
      inst.run(x, y);
      EXPECT_EQ(max_abs_diff(y_off, y), 0.0)
          << format_name(f) << " " << policy;
    }
  }
}

}  // namespace
}  // namespace spc
