// Fuzz sweep for the symmetric conflict-window reduction. The contract
// under test: at SPC_ISA=scalar, the window and private-y schemes are
// *bit-identical* for every (format, threads, numa, schedule) cell —
// both fold the same per-thread partial sums in ascending thread order,
// so the reduction layout is interchangeable by construction. Neither
// is bit-identical to serial (the per-thread grouping reassociates
// foreign scatter contributions), so serial agreement is held to 1e-12
// relative error instead.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <utility>

#include "spc/gen/generators.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/spmv/sym_spmv.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

// A + A^T: numerically symmetric by construction.
Triplets symmetrized(const Triplets& a) {
  Triplets s(a.nrows(), a.ncols());
  for (const Entry& e : a.entries()) {
    s.add(e.row, e.col, e.val);
    s.add(e.col, e.row, e.val);
  }
  s.sort_and_combine();
  return s;
}

// Mirrored random pairs with a full diagonal; built through a map keyed
// on the upper triangle so collisions cannot break symmetry.
Triplets random_symmetric(index_t n, usize_t offdiag_pairs, Rng& rng) {
  std::map<std::pair<index_t, index_t>, value_t> upper;
  for (index_t i = 0; i < n; ++i) {
    upper[{i, i}] = 2.0 + rng.next_double();
  }
  for (usize_t k = 0; k < offdiag_pairs; ++k) {
    const auto r = static_cast<index_t>(rng.next_below(n));
    const auto c = static_cast<index_t>(rng.next_below(n));
    if (r == c) {
      continue;
    }
    upper[{std::min(r, c), std::max(r, c)}] = rng.next_double(-1.0, 1.0);
  }
  Triplets t(n, n);
  for (const auto& [rc, v] : upper) {
    t.add(rc.first, rc.second, v);
    if (rc.first != rc.second) {
      t.add(rc.second, rc.first, v);
    }
  }
  t.sort_and_combine();
  return t;
}

// Seed-indexed matrix family: random mirrored pairs, pooled symmetric
// bands (VI-friendly), and 5-point Laplacians of varying aspect.
Triplets fuzz_matrix(std::uint64_t seed) {
  Rng rng(seed * 977 + 13);
  const auto n = static_cast<index_t>(150 + rng.next_below(350));
  switch (seed % 3) {
    case 0:
      return random_symmetric(n, static_cast<usize_t>(n) * 4, rng);
    case 1:
      return symmetrized(gen_banded(
          n, static_cast<index_t>(5 + seed % 23),
          static_cast<index_t>(3 + seed % 7), rng,
          ValueModel::pooled(static_cast<std::uint32_t>(4 + seed % 40))));
    default:
      return gen_laplacian_2d(static_cast<index_t>(10 + seed),
                              static_cast<index_t>(8 + seed));
  }
}

// The sweep body: for both symmetric formats, every threads x numa x
// schedule cell must produce a window result bit-identical to the
// private result, and both within kTol of the serial kernel.
void expect_window_matches_private(const Triplets& t,
                                   const std::string& label,
                                   std::uint64_t xseed) {
  test::ScopedEnv isa("SPC_ISA", "scalar");
  test::ScopedEnv red("SPC_SYM_REDUCE", "");  // opts decide, not the env
  Rng xr(xseed * 31 + 7);
  const Vector x = random_vector(t.ncols(), xr);
  const Vector ref = test::reference_spmv(t, x);

  for (const Format f : {Format::kSymCsr, Format::kSymCsrVi}) {
    InstanceOptions base;
    base.pin_threads = false;
    SpmvInstance serial(t, f, 1, base);
    Vector y_serial(t.nrows(), 0.0);
    serial.run(x, y_serial);
    ASSERT_LT(rel_error(ref, y_serial), kTol)
        << label << " " << format_name(f) << " serial";

    for (const std::size_t threads : {2, 4, 8}) {
      for (const NumaPolicy numa : {NumaPolicy::kOff, NumaPolicy::kAuto}) {
        for (const Schedule sched :
             {Schedule::kStatic, Schedule::kChunked}) {
          InstanceOptions opts = base;
          opts.numa = numa;
          opts.schedule = sched;

          opts.sym_reduce = SymReduce::kWindow;
          SpmvInstance win(t, f, threads, opts);
          ASSERT_EQ(win.sym_reduce(), SymReduce::kWindow);
          Vector y_win(t.nrows(),
                       std::numeric_limits<double>::quiet_NaN());
          win.run(x, y_win);

          opts.sym_reduce = SymReduce::kPrivate;
          SpmvInstance priv(t, f, threads, opts);
          ASSERT_EQ(priv.sym_reduce(), SymReduce::kPrivate);
          Vector y_priv(t.nrows(),
                        std::numeric_limits<double>::quiet_NaN());
          priv.run(x, y_priv);

          const std::string cell =
              label + " " + std::string(format_name(f)) + " x" +
              std::to_string(threads) + " numa=" +
              numa_policy_name(numa) + " sched=" + schedule_name(sched);
          EXPECT_EQ(max_abs_diff(y_win, y_priv), 0.0) << cell;
          EXPECT_LT(rel_error(ref, y_win), kTol) << cell;
        }
      }
    }
  }
}

class SymFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymFuzz, WindowBitIdenticalToPrivateAcrossCells) {
  const std::uint64_t seed = GetParam();
  expect_window_matches_private(fuzz_matrix(seed),
                                "seed " + std::to_string(seed), seed);
}

INSTANTIATE_TEST_SUITE_P(TwentyOneSeeds, SymFuzz,
                         ::testing::Range<std::uint64_t>(0, 21));

// Arrow matrix: a dense first row/column drags every thread's window
// start to row 0 — the worst case the kAuto degeneracy check exists
// for. Forced kWindow must still agree with kPrivate bit-for-bit.
TEST(SymFuzzAdversarial, ArrowMatrix) {
  const index_t n = 600;
  Triplets t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0 + static_cast<double>(i % 3));
  }
  for (index_t i = 1; i < n; ++i) {
    const value_t v = 1.0 + static_cast<double>(i % 5);
    t.add(i, 0, v);
    t.add(0, i, v);
  }
  t.sort_and_combine();
  expect_window_matches_private(t, "arrow", 101);
}

// Dense middle row (and, by symmetry, column): scatters concentrate on
// one shared row in the middle of the partition.
TEST(SymFuzzAdversarial, DenseMiddleRow) {
  const index_t n = 500;
  const index_t mid = n / 2;
  Rng rng(55);
  Triplets t = random_symmetric(n, 800, rng);
  Triplets dense(n, n);
  for (const Entry& e : t.entries()) {
    dense.add(e.row, e.col, e.val);
  }
  for (index_t j = 0; j < n; ++j) {
    if (j != mid) {
      dense.add(mid, j, 0.25);
      dense.add(j, mid, 0.25);
    }
  }
  dense.sort_and_combine();
  expect_window_matches_private(dense, "dense-mid-row", 102);
}

// Diagonal-only: the lower triangle is empty, every window is empty,
// and the reduction must degrade to a no-op in both modes.
TEST(SymFuzzAdversarial, DiagonalOnly) {
  const index_t n = 64;
  Triplets t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, static_cast<value_t>(i + 1));
  }
  t.sort_and_combine();
  expect_window_matches_private(t, "diag-only", 103);
}

// More threads than rows: partitions with empty ranges must not scatter
// or fold anything out of bounds.
TEST(SymFuzzAdversarial, TinyMatrices) {
  for (const index_t n : {1, 2, 3, 5}) {
    Triplets t(n, n);
    for (index_t i = 0; i < n; ++i) {
      t.add(i, i, 1.5);
      if (i > 0) {
        t.add(i, i - 1, 0.5);
        t.add(i - 1, i, 0.5);
      }
    }
    t.sort_and_combine();
    expect_window_matches_private(t, "tiny n=" + std::to_string(n),
                                  104 + static_cast<std::uint64_t>(n));
  }
}

// SPC_SYM_REDUCE overrides whatever the options request — the knob the
// ablation relies on being unset.
TEST(SymFuzzEnv, EnvOverridesRequestedMode) {
  test::ScopedEnv isa("SPC_ISA", "scalar");
  const Triplets t = gen_laplacian_2d(20, 20);
  InstanceOptions opts;
  opts.pin_threads = false;
  {
    test::ScopedEnv red("SPC_SYM_REDUCE", "private");
    opts.sym_reduce = SymReduce::kAuto;
    SpmvInstance inst(t, Format::kSymCsr, 4, opts);
    EXPECT_EQ(inst.sym_reduce(), SymReduce::kPrivate);
  }
  {
    test::ScopedEnv red("SPC_SYM_REDUCE", "window");
    opts.sym_reduce = SymReduce::kPrivate;
    SpmvInstance inst(t, Format::kSymCsr, 4, opts);
    EXPECT_EQ(inst.sym_reduce(), SymReduce::kWindow);
  }
}

// The work-stealing schedule is demoted to chunked for the symmetric
// formats (stealing would break the window ownership invariant); the
// result must still match private-y bit-for-bit.
TEST(SymFuzzEnv, StealDemotesToChunked) {
  test::ScopedEnv isa("SPC_ISA", "scalar");
  test::ScopedEnv red("SPC_SYM_REDUCE", "");
  Rng rng(77);
  const Triplets t = random_symmetric(300, 1200, rng);
  Rng xr(78);
  const Vector x = random_vector(300, xr);

  InstanceOptions opts;
  opts.pin_threads = false;
  opts.schedule = Schedule::kSteal;
  opts.sym_reduce = SymReduce::kWindow;
  SpmvInstance win(t, Format::kSymCsr, 4, opts);
  EXPECT_EQ(win.schedule(), Schedule::kChunked);
  Vector y_win(300, 0.0);
  win.run(x, y_win);

  opts.sym_reduce = SymReduce::kPrivate;
  SpmvInstance priv(t, Format::kSymCsr, 4, opts);
  Vector y_priv(300, 1.0);
  priv.run(x, y_priv);
  EXPECT_EQ(max_abs_diff(y_win, y_priv), 0.0);
  EXPECT_LT(rel_error(test::reference_spmv(t, x), y_win), kTol);
}

}  // namespace
}  // namespace spc
