#include "spc/spmv/spmm.hpp"

#include <gtest/gtest.h>

#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

// Reference: k independent SpMVs, interleaved into the SpMM layout.
void reference_spmm(const Triplets& t, const Vector& X, Vector& Y,
                    index_t k) {
  std::fill(Y.begin(), Y.end(), 0.0);
  for (const Entry& e : t.entries()) {
    for (index_t c = 0; c < k; ++c) {
      Y[static_cast<usize_t>(e.row) * k + c] +=
          e.val * X[static_cast<usize_t>(e.col) * k + c];
    }
  }
}

class SpmmWidths : public ::testing::TestWithParam<index_t> {};

TEST_P(SpmmWidths, CsrMatchesReference) {
  const index_t k = GetParam();
  Rng rng(50 + k);
  const Triplets t = test::random_triplets(200, 150, 2500, rng);
  Rng xr(60 + k);
  const Vector X = random_vector(t.ncols() * k, xr);
  Vector Y_ref(t.nrows() * k, 0.0);
  reference_spmm(t, X, Y_ref, k);

  const Csr m = Csr::from_triplets(t);
  Vector Y(t.nrows() * k, -1.0);
  spmm(m, X.data(), Y.data(), k);
  EXPECT_LT(max_abs_diff(Y_ref, Y), kTol);
}

TEST_P(SpmmWidths, CsrViMatchesReference) {
  const index_t k = GetParam();
  Rng rng(70 + k);
  const Triplets t =
      gen_banded(300, 20, 7, rng, ValueModel::pooled(25));
  Rng xr(80 + k);
  const Vector X = random_vector(t.ncols() * k, xr);
  Vector Y_ref(t.nrows() * k, 0.0);
  reference_spmm(t, X, Y_ref, k);

  const CsrVi m = CsrVi::from_triplets(t);
  Vector Y(t.nrows() * k, -1.0);
  spmm(m, X.data(), Y.data(), k);
  EXPECT_LT(max_abs_diff(Y_ref, Y), kTol);
}

INSTANTIATE_TEST_SUITE_P(VectorCounts, SpmmWidths,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 11, 16));

TEST(Spmm, SingleVectorMatchesSpmv) {
  Rng rng(90);
  const Triplets t = test::random_triplets(120, 120, 1200, rng);
  Rng xr(91);
  const Vector x = random_vector(120, xr);
  const Vector y_ref = test::reference_spmv(t, x);
  const Csr m = Csr::from_triplets(t);
  Vector y(120, 0.0);
  spmm(m, x.data(), y.data(), 1);
  EXPECT_LT(max_abs_diff(y_ref, y), kTol);
}

TEST(Spmm, RowRangeWritesOnlyItsRows) {
  Rng rng(92);
  const Triplets t = test::random_triplets(50, 50, 400, rng);
  Rng xr(93);
  const Vector X = random_vector(50 * 4, xr);
  const Csr m = Csr::from_triplets(t);
  Vector Y(50 * 4, -9.0);
  spmm_csr_range(m, X.data(), Y.data(), 4, 10, 20);
  for (index_t i = 0; i < 50; ++i) {
    for (index_t c = 0; c < 4; ++c) {
      if (i < 10 || i >= 20) {
        EXPECT_DOUBLE_EQ(Y[i * 4 + c], -9.0) << i;
      }
    }
  }
}

class SpmmRunnerMt : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpmmRunnerMt, MatchesReferenceAcrossThreads) {
  Rng rng(95);
  const Triplets t =
      gen_banded(500, 25, 8, rng, ValueModel::pooled(30));
  const index_t k = 4;
  Rng xr(96);
  const Vector X = random_vector(t.ncols() * k, xr);
  Vector Y_ref(t.nrows() * k, 0.0);
  reference_spmm(t, X, Y_ref, k);

  for (const auto kind :
       {SpmmRunner::Kind::kCsr, SpmmRunner::Kind::kCsrVi}) {
    SpmmRunner runner(t, kind, k, GetParam());
    Vector Y(t.nrows() * k, -3.0);
    runner.run(X, Y);
    EXPECT_LT(max_abs_diff(Y_ref, Y), kTol);
    EXPECT_EQ(runner.vectors(), k);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SpmmRunnerMt,
                         ::testing::Values(1, 2, 4, 8));

TEST(SpmmRunner, DimensionChecks) {
  const Triplets t = test::paper_matrix();
  SpmmRunner runner(t, SpmmRunner::Kind::kCsr, 2);
  Vector X(6, 1.0);  // should be 12
  Vector Y(12, 0.0);
  EXPECT_THROW(runner.run(X, Y), Error);
}

TEST(Spmm, RejectsZeroVectors) {
  const Csr m = Csr::from_triplets(test::paper_matrix());
  Vector X(6, 1.0), Y(6, 0.0);
  EXPECT_THROW(spmm(m, X.data(), Y.data(), 0), Error);
}

}  // namespace
}  // namespace spc
