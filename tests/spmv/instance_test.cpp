#include "spc/spmv/instance.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "spc/gen/generators.hpp"
#include "spc/support/topology.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

TEST(FormatNames, RoundTrip) {
  for (const Format f : all_formats()) {
    EXPECT_EQ(parse_format(format_name(f)), f);
  }
}

TEST(FormatNames, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_format("CSR-DU"), Format::kCsrDu);
  EXPECT_EQ(parse_format("Csr-Vi"), Format::kCsrVi);
}

TEST(FormatNames, UnknownNameThrows) {
  EXPECT_THROW(parse_format("hyper-csr"), InvalidArgument);
}

TEST(SpmvInstance, SerialMatchesReferenceForEveryFormat) {
  Rng rng(21);
  const Triplets t = gen_banded(500, 30, 7, rng, ValueModel::pooled(40));
  Rng xr(22);
  const Vector x = random_vector(t.ncols(), xr);
  const Vector ref = test::reference_spmv(t, x);
  for (const Format f : all_formats()) {
    if (format_requires_symmetry(f) && !SymCsr::applicable(t)) {
      continue;  // covered by sym_fuzz_test on symmetric inputs
    }
    SpmvInstance inst(t, f, 1);
    Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
    inst.run(x, y);
    EXPECT_LT(rel_error(ref, y), kTol) << format_name(f);
    EXPECT_EQ(inst.nnz(), t.nnz());
  }
}

struct MtCase {
  Format format;
  std::size_t threads;
};

class MtAgreement : public ::testing::TestWithParam<MtCase> {};

TEST_P(MtAgreement, MultithreadedMatchesReference) {
  const MtCase c = GetParam();
  Rng rng(33);
  const Triplets t =
      gen_ragged(700, 700, 14, 0.1, rng, ValueModel::pooled(90));
  if (format_requires_symmetry(c.format) && !SymCsr::applicable(t)) {
    GTEST_SKIP() << "matrix is not symmetric; see sym_fuzz_test";
  }
  Rng xr(34);
  const Vector x = random_vector(t.ncols(), xr);
  const Vector ref = test::reference_spmv(t, x);

  InstanceOptions opts;
  opts.pin_threads = false;  // keep CI environments happy
  SpmvInstance inst(t, c.format, c.threads, opts);
  Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
  inst.run(x, y);
  EXPECT_LT(rel_error(ref, y), kTol)
      << format_name(c.format) << " x" << c.threads;

  // Repeated runs must be stable (pool reuse, no state leakage).
  Vector y2(t.nrows(), 0.0);
  inst.run(x, y2);
  EXPECT_LT(max_abs_diff(y, y2), kTol);
}

std::vector<MtCase> mt_cases() {
  std::vector<MtCase> cases;
  for (const Format f : all_formats()) {
    for (const std::size_t n : {2u, 4u, 8u}) {
      cases.push_back(MtCase{f, n});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllFormatsThreads, MtAgreement, ::testing::ValuesIn(mt_cases()),
    [](const ::testing::TestParamInfo<MtCase>& param_info) {
      std::string n = format_name(param_info.param.format) + "_x" +
                      std::to_string(param_info.param.threads);
      for (auto& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

TEST(SpmvInstance, ThreadCountBeyondRows) {
  Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(2, 2, 2.0);
  t.sort_and_combine();
  InstanceOptions opts;
  opts.pin_threads = false;
  SpmvInstance inst(t, Format::kCsrDu, 8, opts);
  const Vector x(3, 1.0);
  Vector y(3, -1.0);
  inst.run(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(SpmvInstance, MatrixBytesReflectCompression) {
  Rng rng(41);
  const Triplets t =
      gen_banded(2000, 25, 9, rng, ValueModel::pooled(30));
  SpmvInstance csr(t, Format::kCsr);
  SpmvInstance du(t, Format::kCsrDu);
  SpmvInstance vi(t, Format::kCsrVi);
  SpmvInstance duvi(t, Format::kCsrDuVi);
  EXPECT_LT(du.matrix_bytes(), csr.matrix_bytes());
  EXPECT_LT(vi.matrix_bytes(), csr.matrix_bytes());
  EXPECT_LT(duvi.matrix_bytes(), du.matrix_bytes());
  EXPECT_LT(duvi.matrix_bytes(), vi.matrix_bytes());
}

TEST(SpmvInstance, DimensionChecks) {
  const Triplets t = test::paper_matrix();
  SpmvInstance inst(t, Format::kCsr);
  Vector x(5, 1.0);  // wrong size
  Vector y(6, 0.0);
  EXPECT_THROW(inst.run(x, y), Error);
  Vector x6(6, 1.0);
  Vector y5(5, 0.0);
  EXPECT_THROW(inst.run(x6, y5), Error);
}

TEST(SpmvInstance, Csr16RequiresNarrowMatrix) {
  Triplets t(2, 100000);
  t.add(0, 99999, 1.0);
  t.sort_and_combine();
  EXPECT_THROW(SpmvInstance(t, Format::kCsr16), Error);
}

TEST(SpmvInstance, BcsrBlockShapeFromOptions) {
  Rng rng(55);
  const Triplets t = gen_fem_blocks(30, 4, 3, rng, ValueModel::random());
  InstanceOptions opts;
  opts.bcsr_block_rows = 4;
  opts.bcsr_block_cols = 4;
  SpmvInstance inst(t, Format::kBcsr, 1, opts);
  Rng xr(56);
  const Vector x = random_vector(t.ncols(), xr);
  Vector y(t.nrows(), 0.0);
  inst.run(x, y);
  EXPECT_LT(rel_error(test::reference_spmv(t, x), y), kTol);
}

TEST(SpmvInstance, EvenPartitionOptionWorks) {
  Rng rng(60);
  const Triplets t = test::random_triplets(400, 400, 6000, rng);
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.balance_by_nnz = false;
  SpmvInstance inst(t, Format::kCsr, 4, opts);
  Rng xr(61);
  const Vector x = random_vector(400, xr);
  Vector y(400, 0.0);
  inst.run(x, y);
  EXPECT_LT(rel_error(test::reference_spmv(t, x), y), kTol);
  EXPECT_EQ(inst.partition().bounds[1], 100u);
}

TEST(SpmvInstance, EllGuardRejectsSkewedMatrix) {
  // One huge row among tiny ones trips the ELL width guard.
  Triplets t(100, 2000);
  for (index_t c = 0; c < 2000; ++c) {
    t.add(0, c, 1.0);
  }
  for (index_t r = 1; r < 100; ++r) {
    t.add(r, r, 1.0);
  }
  t.sort_and_combine();
  InstanceOptions opts;
  opts.ell_max_width_factor = 4.0;
  EXPECT_THROW(SpmvInstance(t, Format::kEll, 1, opts), InvalidArgument);
  opts.ell_max_width_factor = 0.0;  // unguarded
  EXPECT_NO_THROW(SpmvInstance(t, Format::kEll, 1, opts));
}

TEST(SpmvInstance, DiaGuardRejectsScatteredMatrix) {
  Rng rng(70);
  const Triplets t = test::random_triplets(300, 300, 3000, rng);
  InstanceOptions opts;
  opts.dia_max_diags = 8;
  EXPECT_THROW(SpmvInstance(t, Format::kDia, 1, opts), InvalidArgument);
}

TEST(SpmvInstance, ClassicFormatsMtMatchCsr) {
  Rng rng(71);
  const Triplets t =
      gen_banded(600, 15, 6, rng, ValueModel::random());
  Rng xr(72);
  const Vector x = random_vector(t.ncols(), xr);
  SpmvInstance csr(t, Format::kCsr, 1);
  Vector y_ref(t.nrows(), 0.0);
  csr.run(x, y_ref);

  InstanceOptions opts;
  opts.pin_threads = false;
  for (const Format f : {Format::kEll, Format::kDia, Format::kJds}) {
    SpmvInstance inst(t, f, 4, opts);
    Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
    inst.run(x, y);
    EXPECT_LT(rel_error(y_ref, y), kTol) << format_name(f);
  }
}

TEST(SpmvInstanceNuma, PolicyOffForSerialInstances) {
  test::ScopedEnv numa("SPC_NUMA", "replicate");
  const Triplets t = test::paper_matrix();
  SpmvInstance inst(t, Format::kCsr, 1);
  EXPECT_EQ(inst.numa_policy(), NumaPolicy::kOff);
  EXPECT_TRUE(inst.thread_nodes().empty());
}

TEST(SpmvInstanceNuma, PolicyOffWithoutPinnedWorkers) {
  // A worker's node is unknowable without a pin plan, so placement
  // silently resolves to off rather than guessing.
  test::ScopedEnv numa("SPC_NUMA", "local");
  InstanceOptions opts;
  opts.pin_threads = false;
  const Triplets t = test::paper_matrix();
  SpmvInstance inst(t, Format::kCsr, 2, opts);
  EXPECT_EQ(inst.numa_policy(), NumaPolicy::kOff);
}

TEST(SpmvInstanceNuma, PolicyOffForNonRowPartitionedFormats) {
  test::ScopedEnv numa("SPC_NUMA", "local");
  Rng rng(55);
  const Triplets t = gen_banded(200, 10, 3, rng, ValueModel::random());
  for (const Format f : {Format::kCsc, Format::kDcsr, Format::kJds}) {
    SpmvInstance inst(t, f, 2);
    EXPECT_EQ(inst.numa_policy(), NumaPolicy::kOff) << format_name(f);
  }
}

TEST(SpmvInstanceNuma, AutoResolvesAgainstTheMachine) {
  test::ScopedEnv numa("SPC_NUMA", "auto");
  const Triplets t = test::paper_matrix();
  SpmvInstance inst(t, Format::kCsr, 2);
  const std::size_t nnodes = discover_topology().num_nodes();
  if (nnodes > 1) {
    EXPECT_EQ(inst.numa_policy(), NumaPolicy::kLocal);
  } else {
    EXPECT_EQ(inst.numa_policy(), NumaPolicy::kOff);
  }
}

TEST(SpmvInstanceNuma, ReplicatePlacementRunsAndReportsResidency) {
  test::ScopedEnv numa("SPC_NUMA", "replicate");
  Rng rng(56);
  const Triplets t =
      gen_ragged(400, 400, 12, 0.1, rng, ValueModel::pooled(30));
  Rng xr(57);
  const Vector x = random_vector(t.ncols(), xr);
  const Vector ref = test::reference_spmv(t, x);
  SpmvInstance inst(t, Format::kCsrDuVi, 4);
  EXPECT_EQ(inst.numa_policy(), NumaPolicy::kReplicate);
  ASSERT_EQ(inst.thread_nodes().size(), 4u);
  Vector y(t.nrows(), 0.0);
  inst.run(x, y);
  EXPECT_LT(rel_error(ref, y), kTol);
  // Residency is best-effort: available with sampled pages, or a reason.
  const auto res = inst.matrix_residency();
  if (res.available) {
    EXPECT_GT(res.pages_sampled, 0u);
    EXPECT_LE(res.pages_local, res.pages_sampled);
  } else {
    EXPECT_FALSE(res.reason.empty());
  }
}

TEST(SpmvInstanceNuma, ResidencyUnavailableWhenPlacementOff) {
  test::ScopedEnv numa("SPC_NUMA", "off");
  const Triplets t = test::paper_matrix();
  SpmvInstance inst(t, Format::kCsr, 2);
  const auto res = inst.matrix_residency();
  EXPECT_FALSE(res.available);
  EXPECT_FALSE(res.reason.empty());
}

TEST(SpmvInstanceNuma, OptionsPolicyUsedWhenEnvUnset) {
  // InstanceOptions carries the policy; SPC_NUMA (when set) overrides.
  test::ScopedEnv numa("SPC_NUMA", "");
  InstanceOptions opts;
  opts.numa = NumaPolicy::kInterleave;
  const Triplets t = test::paper_matrix();
  SpmvInstance inst(t, Format::kCsr, 2, opts);
  EXPECT_EQ(inst.numa_policy(), NumaPolicy::kInterleave);
}

TEST(SpmvSimple, OneShotHelper) {
  const Triplets t = test::paper_matrix();
  const Vector x(6, 1.0);
  const Vector y = spmv_simple(t, x);
  EXPECT_LT(rel_error(test::reference_spmv(t, x), y), kTol);
}

}  // namespace
}  // namespace spc
