// Column-tiling correctness: the tiled execution layer (spmv/tiling.hpp)
// re-orders each block's non-zeros stripe-major and accumulates partial
// y across stripes, but at the scalar tier it must reproduce the untiled
// left-to-right per-row accumulation order exactly — tiled and untiled
// results are held to bit-identity, not a tolerance. Vector tiers
// reassociate per-row sums into lane partials (tiled or not), so they
// get the usual relative-error bound.
//
// Also covers the config surface (SPC_TILE parsing, the auto planner's
// decline reasons) and the degenerate stripe shapes: one-column stripes,
// a matrix narrower than one stripe, and stripes with no non-zeros.
#include <gtest/gtest.h>

#include <limits>

#include "spc/gen/generators.hpp"
#include "spc/spmv/dispatch.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/spmv/tiling.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kVectorTol = 1e-12;

// Tests that drive tiling through InstanceOptions must not let an outer
// SPC_TILE (the CI matrix sets off / forced legs) override the option
// under test. Clears the variable for the test's scope.
class ScopedUnsetEnv {
 public:
  explicit ScopedUnsetEnv(const char* name) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::unsetenv(name);
  }
  ~ScopedUnsetEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    }
  }
  ScopedUnsetEnv(const ScopedUnsetEnv&) = delete;
  ScopedUnsetEnv& operator=(const ScopedUnsetEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// The dispatch_fuzz_test swarm shapes, re-seeded: dense-ish random,
// ragged, banded, rmat, fem blocks, long dense rows, degenerate.
Triplets fuzz_matrix(int seed) {
  Rng rng(7300 + seed);
  switch (seed % 7) {
    case 0:
      return test::random_triplets(
          1 + static_cast<index_t>(rng.next_below(300)),
          1 + static_cast<index_t>(rng.next_below(300)),
          rng.next_below(5000), rng,
          static_cast<std::uint32_t>(rng.next_below(200)));
    case 1:
      return gen_ragged(1 + static_cast<index_t>(rng.next_below(250)),
                        1 + static_cast<index_t>(rng.next_below(250)),
                        1 + static_cast<index_t>(rng.next_below(30)),
                        0.4 * rng.next_double(), rng,
                        ValueModel::pooled(12));
    case 2:
      return gen_banded(32 + static_cast<index_t>(rng.next_below(300)),
                        1 + static_cast<index_t>(rng.next_below(50)),
                        1 + static_cast<index_t>(rng.next_below(10)), rng,
                        ValueModel::random());
    case 3:
      return gen_rmat(6 + static_cast<std::uint32_t>(rng.next_below(4)),
                      400 + rng.next_below(3000), rng,
                      ValueModel::pooled(6));
    case 4:
      return gen_fem_blocks(
          4 + static_cast<index_t>(rng.next_below(30)),
          1 + static_cast<index_t>(rng.next_below(4)),
          1 + static_cast<index_t>(rng.next_below(5)), rng,
          ValueModel::random());
    case 5: {
      const index_t n = 4 + static_cast<index_t>(rng.next_below(8));
      Triplets t(n, 512);
      for (index_t r = 0; r < n; ++r) {
        for (index_t c = 0; c < 512; ++c) {
          t.add(r, c, rng.next_double(-2.0, 2.0));
        }
      }
      t.sort_and_combine();
      return t;
    }
    default: {
      switch (seed % 3) {
        case 0:
          return test::random_triplets(1, 97, 60, rng);
        case 1:
          return test::random_triplets(97, 1, 60, rng);
        default:
          return test::random_triplets(1, 1, 1, rng);
      }
    }
  }
}

const std::vector<Format>& tiled_formats() {
  static const std::vector<Format> kFormats = {
      Format::kCsr, Format::kCsrVi, Format::kCsrDu, Format::kCsrDuVi};
  return kFormats;
}

class TileFuzz : public ::testing::TestWithParam<int> {};

// Every tiled format, serial and multithreaded, across forced stripe
// widths (narrow enough that the fuzz matrices really split) and auto:
// bit-identical to the untiled run at SPC_ISA=scalar.
TEST_P(TileFuzz, TiledMatchesUntiledBitwiseAtScalar) {
  const Triplets t = fuzz_matrix(GetParam());
  if (t.nnz() == 0) {
    GTEST_SKIP() << "degenerate draw";
  }
  Rng xr(9300 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);

  test::ScopedEnv isa("SPC_ISA", "scalar");
  InstanceOptions opts;
  opts.pin_threads = false;
  for (const Format f : tiled_formats()) {
    for (const std::size_t threads : {1u, 4u}) {
      Vector y_off(t.nrows(), 0.0);
      {
        test::ScopedEnv tile("SPC_TILE", "off");
        SpmvInstance inst(t, f, threads, opts);
        EXPECT_FALSE(inst.tiling_active());
        inst.run(x, y_off);
      }
      for (const char* width : {"256", "1k", "auto"}) {
        test::ScopedEnv tile("SPC_TILE", width);
        SpmvInstance inst(t, f, threads, opts);
        Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
        inst.run(x, y);
        EXPECT_EQ(max_abs_diff(y_off, y), 0.0)
            << format_name(f) << " x" << threads << " SPC_TILE=" << width
            << " seed " << GetParam();
      }
    }
  }
}

// The default test/CI invocation runs without SPC_TILE, where auto
// declines these small matrices — so the tiled *vector* kernels would
// only ever run under an SPC_TILE=... environment. Exercise them here:
// forced tiling across every tier this host has, against the untiled
// scalar result, with the usual reassociation tolerance.
TEST_P(TileFuzz, TiledVectorTiersStayWithinReassociationTolerance) {
  const Triplets t = fuzz_matrix(GetParam());
  if (t.nnz() == 0) {
    GTEST_SKIP() << "degenerate draw";
  }
  Rng xr(9400 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);
  const Vector y_ref = test::reference_spmv(t, x);

  ScopedUnsetEnv tile("SPC_TILE");
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.tiling = TileConfig{TileMode::kForced, 1u << 10};
  for (const IsaTier tier : available_isa_tiers()) {
    test::ScopedEnv isa("SPC_ISA", isa_tier_name(tier).c_str());
    for (const Format f : tiled_formats()) {
      for (const std::size_t threads : {1u, 4u}) {
        SpmvInstance inst(t, f, threads, opts);
        EXPECT_TRUE(inst.tiling_active()) << format_name(f);
        Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
        inst.run(x, y);
        const std::string what = format_name(f) + " @" +
                                 isa_tier_name(tier) + " x" +
                                 std::to_string(threads) + " seed " +
                                 std::to_string(GetParam());
        if (tier == IsaTier::kScalar) {
          EXPECT_EQ(max_abs_diff(y_ref, y), 0.0) << what;
        } else {
          EXPECT_LT(rel_error(y_ref, y), kVectorTol) << what;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Swarm, TileFuzz, ::testing::Range(0, 21));

// --- degenerate stripe shapes -------------------------------------------

void expect_tiled_matches_untiled(const Triplets& t, std::size_t stripe_bytes,
                                  const char* what) {
  Rng xr(424242);
  const Vector x = random_vector(t.ncols(), xr);
  test::ScopedEnv isa("SPC_ISA", "scalar");
  ScopedUnsetEnv tile("SPC_TILE");
  for (const Format f : tiled_formats()) {
    for (const std::size_t threads : {1u, 3u}) {
      InstanceOptions opts;
      opts.pin_threads = false;
      opts.tiling = TileConfig{TileMode::kOff, 0};
      Vector y_off(t.nrows(), 0.0);
      SpmvInstance off(t, f, threads, opts);
      off.run(x, y_off);

      opts.tiling = TileConfig{TileMode::kForced, stripe_bytes};
      SpmvInstance tiled(t, f, threads, opts);
      EXPECT_TRUE(tiled.tiling_active()) << what << " " << format_name(f);
      Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
      tiled.run(x, y);
      EXPECT_EQ(max_abs_diff(y_off, y), 0.0)
          << what << " " << format_name(f) << " x" << threads;
    }
  }
}

// stripe_bytes below sizeof(value_t) rounds to one column per stripe —
// every element is the first of its (row, stripe) run.
TEST(TilingEdge, SingleColumnStripes) {
  Rng rng(51);
  const Triplets t = test::random_triplets(40, 24, 300, rng, 8);
  expect_tiled_matches_untiled(t, 1, "1-col stripe");
}

// ncols far below one stripe: forced tiling engages with one stripe
// spanning the whole matrix (the caller asked for the layout).
TEST(TilingEdge, MatrixNarrowerThanOneStripe) {
  Rng rng(52);
  const Triplets t = test::random_triplets(200, 6, 800, rng);
  expect_tiled_matches_untiled(t, 64u << 10, "narrow matrix");
}

// Columns concentrated at the extremes: all interior stripes hold no
// non-zeros, and rows touch non-adjacent stripes.
TEST(TilingEdge, EmptyInteriorStripes) {
  Triplets t(64, 40000);
  Rng rng(53);
  for (index_t r = 0; r < 64; ++r) {
    for (int k = 0; k < 6; ++k) {
      t.add(r, static_cast<index_t>(rng.next_below(20)),
            rng.next_double(-2.0, 2.0));
      t.add(r, 39980 + static_cast<index_t>(rng.next_below(20)),
            rng.next_double(-2.0, 2.0));
    }
  }
  t.sort_and_combine();
  // 512-byte stripes -> 64 columns per stripe -> ~625 stripes, nearly
  // all empty.
  expect_tiled_matches_untiled(t, 512, "empty stripes");
}

// Empty rows inside a tiled block must stay exactly what the untiled
// kernel writes for them (zero), not skipped garbage.
TEST(TilingEdge, EmptyRows) {
  Triplets t(50, 2000);
  Rng rng(54);
  for (index_t r = 0; r < 50; r += 7) {
    for (int k = 0; k < 20; ++k) {
      t.add(r, static_cast<index_t>(rng.next_below(2000)),
            rng.next_double(-2.0, 2.0));
    }
  }
  t.sort_and_combine();
  expect_tiled_matches_untiled(t, 1u << 10, "empty rows");
}

// --- config / planner units ---------------------------------------------

TEST(TileConfigParse, AcceptsCanonicalForms) {
  TileConfig c;
  EXPECT_TRUE(parse_tile_config("auto", &c));
  EXPECT_EQ(c.mode, TileMode::kAuto);
  EXPECT_TRUE(parse_tile_config("off", &c));
  EXPECT_EQ(c.mode, TileMode::kOff);
  EXPECT_TRUE(parse_tile_config("0", &c));
  EXPECT_EQ(c.mode, TileMode::kOff);
  EXPECT_TRUE(parse_tile_config("16384", &c));
  EXPECT_EQ(c.mode, TileMode::kForced);
  EXPECT_EQ(c.stripe_bytes, 16384u);
  EXPECT_TRUE(parse_tile_config("16k", &c));
  EXPECT_EQ(c.stripe_bytes, 16u << 10);
  EXPECT_TRUE(parse_tile_config("2M", &c));
  EXPECT_EQ(c.stripe_bytes, 2u << 20);
}

TEST(TileConfigParse, RejectsGarbageLeavingOutputUntouched) {
  TileConfig c;
  c.mode = TileMode::kForced;
  c.stripe_bytes = 123;
  EXPECT_FALSE(parse_tile_config("", &c));
  EXPECT_FALSE(parse_tile_config("fast", &c));
  EXPECT_FALSE(parse_tile_config("-4k", &c));
  EXPECT_FALSE(parse_tile_config("4q", &c));
  EXPECT_EQ(c.mode, TileMode::kForced);
  EXPECT_EQ(c.stripe_bytes, 123u);
}

TEST(TileConfigParse, NameRoundTrips) {
  TileConfig c;
  ASSERT_TRUE(parse_tile_config("auto", &c));
  EXPECT_EQ(tile_config_name(c), "auto");
  ASSERT_TRUE(parse_tile_config("off", &c));
  EXPECT_EQ(tile_config_name(c), "off");
  ASSERT_TRUE(parse_tile_config("16384", &c));
  EXPECT_EQ(tile_config_name(c), "16384");
}

TEST(TilePlanner, ForcedAlwaysEngages) {
  const TileConfig cfg{TileMode::kForced, 8u << 10};
  const TilePlan p =
      plan_tiles(cfg, 100, 100, 500, /*mean_row_span_cols=*/4.0,
                 /*l1d=*/32u << 10, /*l2=*/1u << 20);
  EXPECT_TRUE(p.active);
  EXPECT_EQ(p.stripe_cols, static_cast<index_t>((8u << 10) / sizeof(value_t)));
}

TEST(TilePlanner, AutoDeclinesWhenXFitsCache) {
  const TileConfig cfg{TileMode::kAuto, 0};
  // ncols * 8 well under 2 * l2.
  const TilePlan p = plan_tiles(cfg, 1u << 16, 1u << 14, 1u << 20, 5000.0,
                                32u << 10, 1u << 20);
  EXPECT_FALSE(p.active);
  EXPECT_STREQ(p.decline_reason, "x fits cache");
}

TEST(TilePlanner, AutoDeclinesBandedRows) {
  const TileConfig cfg{TileMode::kAuto, 0};
  // x overflows cache but rows span only a few columns.
  const TilePlan p = plan_tiles(cfg, 1u << 20, 1u << 20, 1u << 22,
                                /*mean_row_span_cols=*/16.0, 32u << 10,
                                256u << 10);
  EXPECT_FALSE(p.active);
  EXPECT_STREQ(p.decline_reason, "banded rows");
}

TEST(TilePlanner, AutoEngagesOnWideIrregularMatrices) {
  const TileConfig cfg{TileMode::kAuto, 0};
  const TilePlan p = plan_tiles(cfg, 1u << 20, 1u << 20, 1u << 22,
                                /*mean_row_span_cols=*/500000.0, 32u << 10,
                                256u << 10);
  EXPECT_TRUE(p.active);
  EXPECT_GE(p.nstripes, 2u);
  // clamp(l1d/2, 8k, 256k) with l1d = 32 KiB -> 16 KiB stripes.
  EXPECT_EQ(p.stripe_bytes, 16u << 10);
}

// The tiled store swaps the execution arrays but must still represent
// the same matrix bytes-wise in the compression report: a forced-tiled
// CSR instance reports the segment arrays, which can exceed plain CSR
// (extra seg_ptr/seg_row entries) but never lose elements.
TEST(TilingEdge, MatrixBytesCoverTiledArrays) {
  Rng rng(55);
  const Triplets t = test::random_triplets(300, 3000, 6000, rng, 16);
  ScopedUnsetEnv tile("SPC_TILE");
  InstanceOptions opts;
  opts.pin_threads = false;
  opts.tiling = TileConfig{TileMode::kForced, 1u << 10};
  SpmvInstance tiled(t, Format::kCsr, 1, opts);
  ASSERT_TRUE(tiled.tiling_active());
  // At minimum the elements themselves: nnz * (col + val).
  EXPECT_GE(tiled.matrix_bytes(), t.nnz() * (sizeof(std::uint32_t) +
                                             sizeof(value_t)));
  EXPECT_GE(tiled.tile_stripes(), 2u);
  EXPECT_EQ(tiled.tile_stripe_bytes(), 1u << 10);
}

}  // namespace
}  // namespace spc
