// Kernel-vs-reference fuzzing across the dispatch matrix: every
// dispatch-routed format × every ISA tier available on this host ×
// serial and multithreaded execution, against the scalar CSR oracle,
// over a swarm of deterministically-seeded random matrices.
//
// The scalar tier must match the oracle bit-for-bit for the row-order
// formats (same accumulation order); vector tiers reassociate per-row
// sums into lane partials, so they are held to a relative-error bound
// instead (a few ulps — the reassociation of ~row_length addends).
#include <gtest/gtest.h>

#include <limits>

#include "spc/gen/generators.hpp"
#include "spc/spmv/dispatch.hpp"
#include "spc/spmv/instance.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

// Reassociating a length-k sum perturbs it by at most ~k ulps; the
// matrices below stay under ~4k nnz per row, so 1e-12 is generous while
// still catching any indexing bug (which produces O(1) errors).
constexpr double kVectorTol = 1e-12;

// ~20 deterministic draws spanning the structures the kernels
// specialize on: dense-ish rows (contiguous AVX loads), banded
// (RLE-friendly strides), ragged (unit-length tails), rmat (irregular
// gathers), pooled values (small VI tables), plus degenerate shapes.
Triplets fuzz_matrix(int seed) {
  Rng rng(7000 + seed);
  switch (seed % 7) {
    case 0:
      return test::random_triplets(
          1 + static_cast<index_t>(rng.next_below(300)),
          1 + static_cast<index_t>(rng.next_below(300)),
          rng.next_below(5000), rng,
          static_cast<std::uint32_t>(rng.next_below(200)));
    case 1:
      return gen_ragged(1 + static_cast<index_t>(rng.next_below(250)),
                        1 + static_cast<index_t>(rng.next_below(250)),
                        1 + static_cast<index_t>(rng.next_below(30)),
                        0.4 * rng.next_double(), rng,
                        ValueModel::pooled(12));
    case 2:
      return gen_banded(32 + static_cast<index_t>(rng.next_below(300)),
                        1 + static_cast<index_t>(rng.next_below(50)),
                        1 + static_cast<index_t>(rng.next_below(10)), rng,
                        ValueModel::random());
    case 3:
      return gen_rmat(6 + static_cast<std::uint32_t>(rng.next_below(4)),
                      400 + rng.next_below(3000), rng,
                      ValueModel::pooled(6));
    case 4:
      return gen_fem_blocks(
          4 + static_cast<index_t>(rng.next_below(30)),
          1 + static_cast<index_t>(rng.next_below(4)),
          1 + static_cast<index_t>(rng.next_below(5)), rng,
          ValueModel::random());
    case 5: {
      // Long dense rows: exercises the vector kernels' main loops for
      // many iterations and the stride-1 RLE decode.
      const index_t n = 4 + static_cast<index_t>(rng.next_below(8));
      Triplets t(n, 512);
      for (index_t r = 0; r < n; ++r) {
        for (index_t c = 0; c < 512; ++c) {
          t.add(r, c, rng.next_double(-2.0, 2.0));
        }
      }
      t.sort_and_combine();
      return t;
    }
    default: {
      // Tiny/degenerate shapes: single row, single column, 1x1 — all
      // tail-path, no main-loop iterations.
      switch (seed % 3) {
        case 0:
          return test::random_triplets(1, 97, 60, rng);
        case 1:
          return test::random_triplets(97, 1, 60, rng);
        default:
          return test::random_triplets(1, 1, 1, rng);
      }
    }
  }
}

const std::vector<Format>& dispatch_formats() {
  static const std::vector<Format> kFormats = {
      Format::kCsr,      Format::kCsr16,   Format::kCsrVi,
      Format::kCsrDu,    Format::kCsrDuRle, Format::kCsrDuVi,
      Format::kDcsr,     Format::kCoo,
  };
  return kFormats;
}

class DispatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DispatchFuzz, EveryFormatEveryTierMatchesScalarCsrOracle) {
  const Triplets t = fuzz_matrix(GetParam());
  if (t.nnz() == 0) {
    GTEST_SKIP() << "degenerate draw";
  }
  Rng xr(9000 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);
  const Vector y_ref = test::reference_spmv(t, x);

  InstanceOptions opts;
  opts.pin_threads = false;
  for (const IsaTier tier : available_isa_tiers()) {
    test::ScopedEnv isa("SPC_ISA", isa_tier_name(tier).c_str());
    for (const Format f : dispatch_formats()) {
      if (f == Format::kCsr16 && !csr16_applicable(t)) {
        continue;
      }
      for (const std::size_t threads : {1u, 4u}) {
        SpmvInstance inst(t, f, threads, opts);
        ASSERT_LE(static_cast<int>(inst.isa_tier()),
                  static_cast<int>(tier));
        Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
        inst.run(x, y);
        const std::string what = format_name(f) + " @" +
                                 isa_tier_name(tier) + " x" +
                                 std::to_string(threads) + " seed " +
                                 std::to_string(GetParam());
        // Row-order formats at the scalar tier share the oracle's exact
        // accumulation order; COO scatters, so tolerance there.
        if (tier == IsaTier::kScalar && f != Format::kCoo) {
          EXPECT_EQ(max_abs_diff(y_ref, y), 0.0) << what;
        } else {
          EXPECT_LT(rel_error(y_ref, y), kVectorTol) << what;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Swarm, DispatchFuzz, ::testing::Range(0, 21));

// Every repackable format under every SPC_NUMA policy must produce the
// byte-for-byte result of the policy-off run: the first-touch repack
// copies slices verbatim and the kernels run in the same order, so at
// the scalar tier even the floating-point accumulation is identical.
const std::vector<Format>& numa_formats() {
  static const std::vector<Format> kFormats = {
      Format::kCsr,    Format::kCsr16,    Format::kCsrVi,
      Format::kCsrDu,  Format::kCsrDuRle, Format::kCsrDuVi,
      Format::kBcsr,   Format::kEll,
  };
  return kFormats;
}

class NumaFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NumaFuzz, RepackedSlicesAreBitIdenticalAcrossPolicies) {
  const Triplets t = fuzz_matrix(GetParam());
  if (t.nnz() == 0) {
    GTEST_SKIP() << "degenerate draw";
  }
  Rng xr(9100 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);

  test::ScopedEnv isa("SPC_ISA", "scalar");
  InstanceOptions opts;
  opts.pin_threads = true;  // placement needs pinned workers
  constexpr std::size_t kThreads = 4;
  for (const Format f : numa_formats()) {
    if (f == Format::kCsr16 && !csr16_applicable(t)) {
      continue;
    }
    Vector y_off(t.nrows(), 0.0);
    {
      test::ScopedEnv numa("SPC_NUMA", "off");
      SpmvInstance inst(t, f, kThreads, opts);
      EXPECT_EQ(inst.numa_policy(), NumaPolicy::kOff);
      inst.run(x, y_off);
    }
    for (const char* policy : {"local", "replicate", "interleaved"}) {
      test::ScopedEnv numa("SPC_NUMA", policy);
      SpmvInstance inst(t, f, kThreads, opts);
      EXPECT_NE(inst.numa_policy(), NumaPolicy::kOff)
          << format_name(f) << " " << policy;
      Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
      inst.run(x, y);
      EXPECT_EQ(max_abs_diff(y_off, y), 0.0)
          << format_name(f) << " " << policy << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Swarm, NumaFuzz, ::testing::Range(0, 21));

// Scheduler determinism: chunk boundaries are row-aligned, so whatever
// worker executes a chunk, every row's dot product keeps its serial
// accumulation order — SPC_SCHED must not change results at all at the
// scalar tier, and stays within reassociation noise at vector tiers
// (where the per-row sum itself is lane-split, exactly as under static).
class SchedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SchedFuzz, DynamicSchedulesMatchStaticAcrossFormatsAndTiers) {
  const Triplets t = fuzz_matrix(GetParam());
  if (t.nnz() == 0) {
    GTEST_SKIP() << "degenerate draw";
  }
  Rng xr(9200 + GetParam());
  const Vector x = random_vector(t.ncols(), xr);
  const Vector y_ref = test::reference_spmv(t, x);

  InstanceOptions opts;
  opts.pin_threads = false;
  // Far below the L2-derived default so the fuzz matrices (a few knnz)
  // actually split into many chunks and steals genuinely happen.
  opts.chunk_nnz = 64;
  for (const IsaTier tier : available_isa_tiers()) {
    test::ScopedEnv isa("SPC_ISA", isa_tier_name(tier).c_str());
    for (const Format f : numa_formats()) {
      if (f == Format::kCsr16 && !csr16_applicable(t)) {
        continue;
      }
      Vector y_static(t.nrows(), 0.0);
      {
        test::ScopedEnv sched("SPC_SCHED", "static");
        SpmvInstance inst(t, f, 4, opts);
        ASSERT_EQ(inst.schedule(), Schedule::kStatic);
        inst.run(x, y_static);
      }
      // Static must itself be correct before it can anchor the others.
      // (Tolerance, not bit-identity: BCSR pads blocks with explicit
      // zeros and so accumulates in a different order than the oracle.)
      ASSERT_LT(rel_error(y_ref, y_static), kVectorTol) << format_name(f);
      for (const char* name : {"chunked", "steal"}) {
        test::ScopedEnv sched("SPC_SCHED", name);
        SpmvInstance inst(t, f, 4, opts);
        Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
        inst.run(x, y);
        const std::string what = format_name(f) + " " + name + " @" +
                                 isa_tier_name(tier) + " seed " +
                                 std::to_string(GetParam());
        if (tier == IsaTier::kScalar) {
          // Same kernel, same rows, same per-row accumulation order —
          // the executor assignment must be invisible in the bits.
          EXPECT_EQ(max_abs_diff(y_static, y), 0.0) << what;
        } else {
          EXPECT_LT(rel_error(y_ref, y), kVectorTol) << what;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Swarm, SchedFuzz, ::testing::Range(0, 21));

}  // namespace
}  // namespace spc
