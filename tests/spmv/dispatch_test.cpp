// Unit tests for the ISA dispatch layer: tier naming/parsing, the
// SPC_ISA override (clamp-down-only), kernel-table completeness, the
// per-instance prepare()/rebind path, and the DU unit histogram that
// drives the decode-strategy choice.
#include "spc/spmv/dispatch.hpp"

#include <gtest/gtest.h>

#include "spc/gen/generators.hpp"
#include "spc/spmv/instance.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(IsaTierNames, RoundTrip) {
  for (const IsaTier t :
       {IsaTier::kScalar, IsaTier::kSse42, IsaTier::kAvx2}) {
    IsaTier parsed{};
    ASSERT_TRUE(parse_isa_tier(isa_tier_name(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
}

TEST(IsaTierNames, AcceptsAliasesAndCase) {
  IsaTier t{};
  EXPECT_TRUE(parse_isa_tier("sse4.2", &t));
  EXPECT_EQ(t, IsaTier::kSse42);
  EXPECT_TRUE(parse_isa_tier("AVX2", &t));
  EXPECT_EQ(t, IsaTier::kAvx2);
}

TEST(IsaTierNames, RejectsUnknownLeavingOutputUntouched) {
  IsaTier t = IsaTier::kSse42;
  EXPECT_FALSE(parse_isa_tier("avx512", &t));
  EXPECT_FALSE(parse_isa_tier("", &t));
  EXPECT_EQ(t, IsaTier::kSse42);
}

TEST(IsaDetection, TiersAreOrderedAndBounded) {
  EXPECT_LE(detect_isa_tier(), max_compiled_tier());
  const std::vector<IsaTier> avail = available_isa_tiers();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), IsaTier::kScalar);
  for (std::size_t i = 1; i < avail.size(); ++i) {
    EXPECT_LT(avail[i - 1], avail[i]);
  }
  EXPECT_EQ(avail.back(), detect_isa_tier());
}

TEST(IsaDetection, OverrideClampsDownOnly) {
  {
    test::ScopedEnv isa("SPC_ISA", "scalar");
    EXPECT_EQ(active_isa_tier(), IsaTier::kScalar);
  }
  {
    // Requesting a wider ISA than the host has must clamp, not fault.
    test::ScopedEnv isa("SPC_ISA", "avx2");
    EXPECT_LE(active_isa_tier(), detect_isa_tier());
  }
  {
    // Unknown values are diagnosed (once) and ignored.
    test::ScopedEnv isa("SPC_ISA", "bogus");
    EXPECT_EQ(active_isa_tier(), detect_isa_tier());
  }
}

TEST(KernelTables, EveryEntryNonNullAtEveryTier) {
  for (const IsaTier t :
       {IsaTier::kScalar, IsaTier::kSse42, IsaTier::kAvx2}) {
    const KernelTable& kt = kernel_table(t);
    EXPECT_LE(kt.tier, t);  // clamped to host/build support
    EXPECT_NE(kt.csr, nullptr);
    EXPECT_NE(kt.csr16, nullptr);
    EXPECT_NE(kt.csr_vi_u8, nullptr);
    EXPECT_NE(kt.csr_vi_u16, nullptr);
    EXPECT_NE(kt.csr_vi_u32, nullptr);
    EXPECT_NE(kt.du, nullptr);
    EXPECT_NE(kt.du_vi_u8, nullptr);
    EXPECT_NE(kt.du_vi_u16, nullptr);
    EXPECT_NE(kt.du_vi_u32, nullptr);
  }
}

TEST(InstanceDispatch, ReportsActiveTierAndRebindsOnPrepare) {
  Rng rng(11);
  const Triplets t = test::random_triplets(64, 64, 800, rng);
  Rng xr(12);
  const Vector x = random_vector(t.ncols(), xr);
  const Vector y_ref = test::reference_spmv(t, x);

  SpmvInstance inst(t, Format::kCsr);
  EXPECT_EQ(inst.isa_tier(), active_isa_tier());

  // Rebinding under a changed override must take effect and still give
  // the scalar tier's exact accumulation order.
  test::ScopedEnv isa("SPC_ISA", "scalar");
  inst.prepare();
  EXPECT_EQ(inst.isa_tier(), IsaTier::kScalar);
  Vector y(t.nrows(), 0.0);
  inst.run(x, y);
  EXPECT_EQ(max_abs_diff(y_ref, y), 0.0);
}

TEST(InstanceDispatch, HugeColumnCountClampsToScalar) {
  // The vector tiers gather through signed 32-bit index lanes, so a
  // matrix whose columns could reach 2^31 must stay scalar. Only the
  // tier is checked — running would need a 16 GiB x vector.
  Triplets t(2, (index_t{1} << 31) + 5);
  t.add(0, 3, 1.0);
  t.add(1, (index_t{1} << 31), 2.0);
  t.sort_and_combine();
  const SpmvInstance inst(t, Format::kCsr);
  EXPECT_EQ(inst.isa_tier(), IsaTier::kScalar);
}

TEST(InstanceDispatch, DuHistogramOnlyForDuFormats) {
  const Triplets t = test::paper_matrix();
  for (const Format f : {Format::kCsrDu, Format::kCsrDuRle,
                         Format::kCsrDuVi}) {
    const SpmvInstance inst(t, f);
    const CsrDu::UnitHistogram* h = inst.du_histogram();
    ASSERT_NE(h, nullptr) << format_name(f);
    EXPECT_EQ(h->nnz, t.nnz());
    EXPECT_GT(h->units, 0u);
    EXPECT_GT(h->avg_unit_elems(), 0.0);
  }
  for (const Format f : {Format::kCsr, Format::kCsrVi, Format::kCoo}) {
    const SpmvInstance inst(t, f);
    EXPECT_EQ(inst.du_histogram(), nullptr) << format_name(f);
  }
}

TEST(UnitHistogram, CountsClassesAndRuns) {
  // A banded matrix encoded with RLE on: the histogram must agree with
  // the encoder's own unit statistics and classify every element.
  Rng rng(21);
  const Triplets t =
      gen_banded(256, 9, 1, rng, ValueModel::random());
  CsrDuOptions opts;
  opts.enable_rle = true;
  opts.rle_min_run = 8;
  const CsrDu du = CsrDu::from_triplets(t, opts);
  const CsrDu::UnitHistogram h = du.unit_histogram();
  EXPECT_EQ(h.units, du.unit_count());
  EXPECT_EQ(h.rle_units, du.rle_unit_count());
  EXPECT_EQ(h.nnz, du.nnz());
  usize_t class_units = 0;
  usize_t class_elems = 0;
  for (int c = 0; c < 4; ++c) {
    class_units += h.units_per_class[c];
    class_elems += h.elems_per_class[c];
  }
  EXPECT_EQ(class_units, h.units);
  EXPECT_EQ(class_elems, h.nnz);
  EXPECT_LE(h.seq_units, h.rle_units);
  EXPECT_LE(h.seq_elems, h.rle_elems);
}

}  // namespace
}  // namespace spc
