#include "spc/spmv/kernels.hpp"

#include <gtest/gtest.h>

#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

Vector random_x(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  return random_vector(n, rng, -1.0, 1.0);
}

TEST(Kernels, CsrMatchesReferenceOnPaperMatrix) {
  const Triplets t = test::paper_matrix();
  const Csr m = Csr::from_triplets(t);
  const Vector x = random_x(6, 1);
  const Vector ref = test::reference_spmv(t, x);
  Vector y(6, -7.0);
  spmv(m, x.data(), y.data());
  EXPECT_LT(rel_error(ref, y), kTol);
}

TEST(Kernels, CsrRangeComputesOnlyItsRows) {
  const Triplets t = test::paper_matrix();
  const Csr m = Csr::from_triplets(t);
  const Vector x = random_x(6, 2);
  const Vector ref = test::reference_spmv(t, x);
  Vector y(6, -7.0);
  spmv_csr_range(m, x.data(), y.data(), 2, 5);
  for (index_t i = 0; i < 6; ++i) {
    if (i >= 2 && i < 5) {
      EXPECT_NEAR(y[i], ref[i], kTol);
    } else {
      EXPECT_DOUBLE_EQ(y[i], -7.0);  // untouched outside the range
    }
  }
}

// Every format's serial kernel must agree with the dense reference on the
// same generated matrix.
struct KernelCase {
  const char* name;
  int matrix_kind;  // index into the generator list below
};

Triplets make_matrix(int kind) {
  Rng rng(7777 + kind);
  switch (kind) {
    case 0:
      return test::paper_matrix();
    case 1:
      return gen_laplacian_2d(17, 23);
    case 2:
      return gen_random_uniform(200, 5000, 7, rng, ValueModel::random());
    case 3:
      return gen_banded(500, 20, 6, rng, ValueModel::pooled(12));
    case 4:
      return gen_ragged(300, 300, 15, 0.2, rng, ValueModel::random());
    case 5:
      return gen_fem_blocks(40, 3, 4, rng, ValueModel::pooled(64));
    case 6:
      return gen_rmat(8, 2500, rng, ValueModel::random());
    default:
      return test::paper_matrix();
  }
}

class KernelAgreement : public ::testing::TestWithParam<int> {};

TEST_P(KernelAgreement, AllFormatsMatchReference) {
  const Triplets t = make_matrix(GetParam());
  const Vector x = random_x(t.ncols(), 31 + GetParam());
  const Vector ref = test::reference_spmv(t, x);
  const auto check = [&](const char* what, auto&& run) {
    Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
    run(y);
    EXPECT_LT(rel_error(ref, y), kTol)
        << what << " on matrix kind " << GetParam();
  };

  const Csr csr = Csr::from_triplets(t);
  check("csr", [&](Vector& y) { spmv(csr, x.data(), y.data()); });

  if (csr16_applicable(t)) {
    const Csr16 c16 = Csr16::from_triplets(t);
    check("csr16", [&](Vector& y) { spmv(c16, x.data(), y.data()); });
  }

  const Coo coo = Coo::from_triplets(t);
  check("coo", [&](Vector& y) { spmv(coo, x.data(), y.data()); });

  const Csc csc = Csc::from_triplets(t);
  check("csc", [&](Vector& y) { spmv(csc, x.data(), y.data()); });

  for (const index_t b : {1u, 2u, 3u}) {
    const Bcsr bcsr = Bcsr::from_triplets(t, b, b);
    check("bcsr", [&](Vector& y) { spmv(bcsr, x.data(), y.data()); });
  }

  const Ell ell = Ell::from_triplets(t);
  check("ell", [&](Vector& y) { spmv(ell, x.data(), y.data()); });

  const Dia dia = Dia::from_triplets(t);
  check("dia", [&](Vector& y) { spmv(dia, x.data(), y.data()); });

  const Jds jds = Jds::from_triplets(t);
  check("jds", [&](Vector& y) { spmv(jds, x.data(), y.data()); });

  const CsrDu du = CsrDu::from_triplets(t);
  check("csr-du", [&](Vector& y) { spmv(du, x.data(), y.data()); });

  CsrDuOptions rle;
  rle.enable_rle = true;
  rle.rle_min_run = 4;
  const CsrDu du_rle = CsrDu::from_triplets(t, rle);
  check("csr-du-rle", [&](Vector& y) { spmv(du_rle, x.data(), y.data()); });

  const CsrVi vi = CsrVi::from_triplets(t);
  check("csr-vi", [&](Vector& y) { spmv(vi, x.data(), y.data()); });

  const CsrDuVi duvi = CsrDuVi::from_triplets(t);
  check("csr-du-vi", [&](Vector& y) { spmv(duvi, x.data(), y.data()); });

  const Dcsr dcsr = Dcsr::from_triplets(t);
  check("dcsr", [&](Vector& y) { spmv(dcsr, x.data(), y.data()); });
}

INSTANTIATE_TEST_SUITE_P(MatrixKinds, KernelAgreement,
                         ::testing::Range(0, 7));

TEST(Kernels, PrefetchVariantMatchesPlainCsr) {
  Rng rng(8);
  const Triplets t = gen_random_uniform(500, 20000, 9, rng,
                                        ValueModel::random());
  const Csr m = Csr::from_triplets(t);
  const Vector x = random_x(t.ncols(), 9);
  Vector y_plain(t.nrows(), 0.0), y_pf(t.nrows(), 0.0);
  spmv(m, x.data(), y_plain.data());
  spmv_csr_prefetch_range<std::uint32_t, 16>(m, x.data(), y_pf.data(), 0,
                                             t.nrows());
  EXPECT_EQ(max_abs_diff(y_plain, y_pf), 0.0);  // identical arithmetic
  // Large prefetch distance near the end of the stream must stay safe.
  Vector y_pf64(t.nrows(), 0.0);
  spmv_csr_prefetch_range<std::uint32_t, 64>(m, x.data(), y_pf64.data(),
                                             0, t.nrows());
  EXPECT_EQ(max_abs_diff(y_plain, y_pf64), 0.0);
}

TEST(Kernels, CsrDuSliceKernelsComposeToFullResult) {
  Rng rng(9);
  const Triplets t = gen_ragged(400, 400, 12, 0.15, rng,
                                ValueModel::random());
  const CsrDu du = CsrDu::from_triplets(t);
  const Vector x = random_x(400, 10);
  const Vector ref = test::reference_spmv(t, x);

  for (const index_t cut : {1u, 57u, 200u, 399u}) {
    Vector y(400, std::numeric_limits<double>::quiet_NaN());
    spmv(du.slice(0, cut), x.data(), y.data());
    spmv(du.slice(cut, 400), x.data(), y.data());
    EXPECT_LT(rel_error(ref, y), kTol) << "cut at " << cut;
  }
}

TEST(Kernels, DcsrSliceKernelsComposeToFullResult) {
  Rng rng(12);
  const Triplets t = gen_ragged(300, 300, 10, 0.3, rng,
                                ValueModel::random());
  const Dcsr dc = Dcsr::from_triplets(t);
  const Vector x = random_x(300, 13);
  const Vector ref = test::reference_spmv(t, x);
  for (const index_t cut : {1u, 99u, 150u, 299u}) {
    Vector y(300, std::numeric_limits<double>::quiet_NaN());
    spmv(dc.slice(0, cut), x.data(), y.data());
    spmv(dc.slice(cut, 300), x.data(), y.data());
    EXPECT_LT(rel_error(ref, y), kTol) << "cut at " << cut;
  }
}

TEST(Kernels, DuViSliceKernelsComposeToFullResult) {
  Rng rng(14);
  const Triplets t =
      gen_banded(350, 25, 8, rng, ValueModel::pooled(20));
  const CsrDuVi m = CsrDuVi::from_triplets(t);
  const Vector x = random_x(350, 15);
  const Vector ref = test::reference_spmv(t, x);
  for (const index_t cut : {100u, 175u, 349u}) {
    Vector y(350, std::numeric_limits<double>::quiet_NaN());
    spmv(m, m.du().slice(0, cut), x.data(), y.data());
    spmv(m, m.du().slice(cut, 350), x.data(), y.data());
    EXPECT_LT(rel_error(ref, y), kTol) << "cut at " << cut;
  }
}

TEST(Kernels, EmptyRowsProduceZeroEntries) {
  Triplets t(8, 8);
  t.add(1, 1, 3.0);
  t.add(6, 2, 4.0);
  t.sort_and_combine();
  const Vector x(8, 1.0);
  const CsrDu du = CsrDu::from_triplets(t);
  Vector y(8, std::numeric_limits<double>::quiet_NaN());
  spmv(du, x.data(), y.data());
  const Vector ref = test::reference_spmv(t, x);
  for (index_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(y[i], ref[i]) << i;
  }
}

TEST(Kernels, ZeroMatrixYieldsZeroVector) {
  Triplets t(5, 5);
  const Vector x(5, 2.0);
  const CsrDu du = CsrDu::from_triplets(t);
  Vector y(5, 9.0);
  spmv(du, x.data(), y.data());
  for (const double v : y) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

}  // namespace
}  // namespace spc
