// Tests for the OpenMP execution backend: it must produce results
// identical to the pool backend (same partition, same kernels — only the
// dispatch mechanism differs), fall back gracefully when OpenMP is
// unavailable, and stay correct under repeated dispatch.
#include <gtest/gtest.h>

#include <limits>

#include "spc/gen/generators.hpp"
#include "spc/spmv/instance.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

InstanceOptions omp_opts() {
  InstanceOptions opts;
  opts.backend = Backend::kOpenMP;
  opts.pin_threads = false;
  return opts;
}

TEST(OpenMpBackend, AvailabilityIsReported) {
  // The build wires OpenMP when found; either answer is valid, the API
  // just must not lie (exercised by the fallback test below).
  (void)openmp_available();
  SUCCEED();
}

TEST(OpenMpBackend, MatchesPoolBackendExactly) {
  Rng rng(61);
  const Triplets t =
      gen_ragged(500, 500, 12, 0.1, rng, ValueModel::pooled(40));
  Rng xr(62);
  const Vector x = random_vector(t.ncols(), xr);

  for (const Format f : {Format::kCsr, Format::kCsrDu, Format::kCsrVi,
                         Format::kCsrDuVi, Format::kCsc}) {
    InstanceOptions pool_opts;
    pool_opts.pin_threads = false;
    SpmvInstance pool_inst(t, f, 4, pool_opts);
    SpmvInstance omp_inst(t, f, 4, omp_opts());

    Vector y_pool(t.nrows(), 0.0), y_omp(t.nrows(), 0.0);
    pool_inst.run(x, y_pool);
    omp_inst.run(x, y_omp);
    // Same partition and kernels → identical summation order → equal.
    EXPECT_EQ(max_abs_diff(y_pool, y_omp), 0.0) << format_name(f);
  }
}

class OmpAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OmpAgreement, MatchesReferenceAcrossThreadCounts) {
  Rng rng(63);
  const Triplets t = gen_banded(600, 40, 8, rng, ValueModel::random());
  Rng xr(64);
  const Vector x = random_vector(t.ncols(), xr);
  const Vector ref = test::reference_spmv(t, x);

  SpmvInstance inst(t, Format::kCsrDu, GetParam(), omp_opts());
  Vector y(t.nrows(), std::numeric_limits<double>::quiet_NaN());
  inst.run(x, y);
  EXPECT_LT(rel_error(ref, y), kTol);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, OmpAgreement,
                         ::testing::Values(2, 3, 4, 8));

TEST(OpenMpBackend, RepeatedRunsAreStable) {
  Rng rng(65);
  const Triplets t = test::random_triplets(300, 300, 4000, rng);
  Rng xr(66);
  const Vector x = random_vector(300, xr);
  SpmvInstance inst(t, Format::kCsr, 4, omp_opts());
  Vector y1(300, 0.0), y2(300, 0.0);
  inst.run(x, y1);
  for (int i = 0; i < 50; ++i) {
    inst.run(x, y2);
  }
  EXPECT_EQ(max_abs_diff(y1, y2), 0.0);
}

TEST(OpenMpBackend, SerialInstanceIgnoresBackend) {
  const Triplets t = test::paper_matrix();
  SpmvInstance inst(t, Format::kCsr, 1, omp_opts());
  const Vector x(6, 1.0);
  Vector y(6, 0.0);
  inst.run(x, y);
  EXPECT_LT(rel_error(test::reference_spmv(t, x), y), kTol);
}

}  // namespace
}  // namespace spc
