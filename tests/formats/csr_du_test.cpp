#include "spc/formats/csr_du.hpp"

#include <gtest/gtest.h>

#include "spc/formats/csr.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(CsrDu, PaperTableIGoldenUnits) {
  // Table I of the paper: six u8 units, one per row, with these sizes,
  // jumps and column deltas.
  const CsrDu m = CsrDu::from_triplets(test::paper_matrix());
  const auto units = m.decode_units();
  ASSERT_EQ(units.size(), 6u);

  const std::uint32_t usize[6] = {2, 3, 1, 3, 3, 4};
  const std::uint64_t ujmp[6] = {0, 1, 2, 2, 0, 0};
  const std::vector<std::uint64_t> ucis[6] = {
      {1}, {2, 2}, {}, {2, 1}, {3, 1}, {2, 1, 2}};
  for (int u = 0; u < 6; ++u) {
    EXPECT_TRUE(units[u].new_row) << "unit " << u;
    EXPECT_EQ(units[u].cls, DeltaClass::kU8) << "unit " << u;
    EXPECT_FALSE(units[u].rle) << "unit " << u;
    EXPECT_EQ(units[u].rskip, 0u) << "unit " << u;
    EXPECT_EQ(units[u].usize, usize[u]) << "unit " << u;
    EXPECT_EQ(units[u].ujmp, ujmp[u]) << "unit " << u;
    EXPECT_EQ(units[u].ucis, ucis[u]) << "unit " << u;
  }
  EXPECT_EQ(m.unit_count(), 6u);
  EXPECT_EQ(m.unit_count_class(DeltaClass::kU8), 6u);
}

TEST(CsrDu, PaperMatrixValuesInRowMajorOrder) {
  const CsrDu m = CsrDu::from_triplets(test::paper_matrix());
  const Csr csr = Csr::from_triplets(test::paper_matrix());
  ASSERT_EQ(m.values().size(), csr.values().size());
  for (usize_t i = 0; i < m.nnz(); ++i) {
    EXPECT_DOUBLE_EQ(m.values()[i], csr.values()[i]);
  }
}

TEST(CsrDu, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  test::expect_triplets_eq(orig,
                           CsrDu::from_triplets(orig).to_triplets());
}

TEST(CsrDu, CompressesBandedIndexData) {
  // Short deltas: ctl must be far smaller than CSR's 4-byte col_ind.
  Rng rng(3);
  const Triplets t =
      gen_banded(4000, 40, 8, rng, ValueModel::random());
  const CsrDu du = CsrDu::from_triplets(t);
  const Csr csr = Csr::from_triplets(t);
  const usize_t csr_index_bytes = csr.bytes() - csr.nnz() * 8;
  EXPECT_LT(du.ctl_bytes(), csr_index_bytes / 2);
  EXPECT_LT(du.bytes(), csr.bytes());
}

TEST(CsrDu, WideRandomMatrixStillRoundTrips) {
  Rng rng(4);
  const Triplets t = gen_random_uniform(300, 3000000, 4, rng,
                                        ValueModel::random());
  const CsrDu du = CsrDu::from_triplets(t);
  test::expect_triplets_eq(t, du.to_triplets());
  // Wide deltas force u16/u32 classes into the stream.
  EXPECT_GT(du.unit_count_class(DeltaClass::kU16) +
                du.unit_count_class(DeltaClass::kU32),
            0u);
}

TEST(CsrDu, EmptyRowsUseRowJump) {
  Triplets t(10, 10);
  t.add(0, 1, 1.0);
  t.add(4, 2, 2.0);  // rows 1-3 empty
  t.add(9, 9, 3.0);  // rows 5-8 empty
  t.sort_and_combine();
  const CsrDu m = CsrDu::from_triplets(t);
  const auto units = m.decode_units();
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].rskip, 0u);
  EXPECT_EQ(units[1].rskip, 3u);
  EXPECT_EQ(units[2].rskip, 4u);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(CsrDu, LeadingEmptyRows) {
  Triplets t(6, 6);
  t.add(3, 0, 1.0);
  t.add(3, 5, 2.0);
  t.sort_and_combine();
  const CsrDu m = CsrDu::from_triplets(t);
  const auto units = m.decode_units();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].rskip, 3u);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(CsrDu, LongRowsSplitAtMaxUnit) {
  Triplets t(1, 1000);
  for (index_t c = 0; c < 1000; ++c) {
    t.add(0, c, static_cast<value_t>(c));
  }
  t.sort_and_combine();
  CsrDuOptions opts;
  opts.max_unit = 255;
  const CsrDu m = CsrDu::from_triplets(t, opts);
  usize_t total = 0;
  for (const auto& u : m.decode_units()) {
    EXPECT_LE(u.usize, 255u);
    total += u.usize;
  }
  EXPECT_EQ(total, 1000u);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(CsrDu, SplitThresholdOneKeepsUnitsU8) {
  // With split_threshold=1, a wider delta always starts a new unit whose
  // wide jump lives in the varint ujmp — every ucis byte stays one byte.
  Rng rng(5);
  const Triplets t = gen_random_uniform(200, 100000, 12, rng,
                                        ValueModel::random());
  CsrDuOptions opts;
  opts.split_threshold = 1;
  const CsrDu m = CsrDu::from_triplets(t, opts);
  for (const auto& u : m.decode_units()) {
    EXPECT_EQ(u.cls, DeltaClass::kU8);
  }
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(CsrDu, RleUnitsDetectDenseRuns) {
  Triplets t(2, 600);
  for (index_t c = 100; c < 400; ++c) {
    t.add(0, c, 1.5);  // 300 consecutive columns
  }
  t.add(1, 0, 2.0);
  t.add(1, 512, 2.5);
  t.sort_and_combine();
  CsrDuOptions opts;
  opts.enable_rle = true;
  opts.rle_min_run = 16;
  const CsrDu m = CsrDu::from_triplets(t, opts);
  EXPECT_GT(m.rle_unit_count(), 0u);
  test::expect_triplets_eq(t, m.to_triplets());

  // RLE must shrink the stream vs the non-RLE encoding.
  CsrDuOptions plain;
  plain.enable_rle = false;
  const CsrDu m2 = CsrDu::from_triplets(t, plain);
  EXPECT_LT(m.ctl_bytes(), m2.ctl_bytes());
}

TEST(CsrDu, RleDetectsConstantStrideRuns) {
  // DIA-like structure: every 3rd column, far beyond stride 1.
  Triplets t(1, 3000);
  for (index_t k = 0; k < 800; ++k) {
    t.add(0, 17 + 3 * k, 1.0 + k % 5);
  }
  t.sort_and_combine();
  CsrDuOptions opts;
  opts.enable_rle = true;
  opts.rle_min_run = 8;
  const CsrDu m = CsrDu::from_triplets(t, opts);
  EXPECT_GT(m.rle_unit_count(), 0u);
  for (const auto& u : m.decode_units()) {
    if (u.rle) {
      EXPECT_EQ(u.stride, 3u);
    }
  }
  test::expect_triplets_eq(t, m.to_triplets());
  // Stride runs must compress far below the plain encoding.
  CsrDuOptions plain;
  const CsrDu m2 = CsrDu::from_triplets(t, plain);
  EXPECT_LT(m.ctl_bytes(), m2.ctl_bytes() / 10);
}

TEST(CsrDu, RleMixedStridesWithinRow) {
  Triplets t(1, 10000);
  for (index_t k = 0; k < 100; ++k) {
    t.add(0, k, 1.0);  // stride-1 run
  }
  for (index_t k = 0; k < 100; ++k) {
    t.add(0, 2000 + 7 * k, 2.0);  // stride-7 run
  }
  t.sort_and_combine();
  CsrDuOptions opts;
  opts.enable_rle = true;
  opts.rle_min_run = 8;
  const CsrDu m = CsrDu::from_triplets(t, opts);
  EXPECT_GE(m.rle_unit_count(), 2u);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(CsrDu, SingleElementMatrix) {
  Triplets t(1, 1);
  t.add(0, 0, 42.0);
  t.sort_and_combine();
  const CsrDu m = CsrDu::from_triplets(t);
  ASSERT_EQ(m.decode_units().size(), 1u);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(CsrDu, EmptyMatrixProducesEmptyStream) {
  Triplets t(5, 5);
  const CsrDu m = CsrDu::from_triplets(t);
  EXPECT_EQ(m.ctl_bytes(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_TRUE(m.decode_units().empty());
}

TEST(CsrDu, SlicesPartitionCtlExactly) {
  Rng rng(6);
  const Triplets t = test::random_triplets(500, 500, 6000, rng);
  const CsrDu m = CsrDu::from_triplets(t);
  // Any monotone row split must yield contiguous, exhaustive ctl ranges.
  const index_t cuts[] = {0, 100, 101, 250, 499, 500};
  const std::uint8_t* expect_next = m.ctl().data();
  usize_t nnz_total = 0;
  for (std::size_t i = 0; i + 1 < std::size(cuts); ++i) {
    const auto s = m.slice(cuts[i], cuts[i + 1]);
    EXPECT_EQ(s.ctl, expect_next) << "slice " << i;
    expect_next = s.ctl_end;
    nnz_total += s.nnz;
  }
  EXPECT_EQ(expect_next, m.ctl().data() + m.ctl_bytes());
  EXPECT_EQ(nnz_total, m.nnz());
}

TEST(CsrDu, MultiSliceMatchesPerCallSlices) {
  // slices(bounds) is the chunk-boundary query of the scheduler: one
  // O(ctl) scan must reproduce slice(b, e) field-for-field for every
  // consecutive range, including empty ones, on varied structures.
  for (const int seed : {1, 2, 3, 4, 5}) {
    Rng rng(600 + seed);
    Triplets t = seed % 2 == 0
                     ? test::random_triplets(
                           400, 400, 3000 + rng.next_below(5000), rng)
                     : gen_banded(300, 1 + static_cast<index_t>(
                                           rng.next_below(20)),
                                  1 + static_cast<index_t>(
                                          rng.next_below(6)),
                                  rng, ValueModel::random());
    CsrDuOptions o;
    o.enable_rle = seed % 2 == 1;
    const CsrDu m = CsrDu::from_triplets(t, o);
    // Random monotone bounds, duplicates (empty ranges) included.
    std::vector<index_t> bounds = {0};
    while (bounds.back() < m.nrows()) {
      const index_t step = static_cast<index_t>(rng.next_below(40));
      bounds.push_back(
          std::min<index_t>(m.nrows(), bounds.back() + step));
    }
    const auto many = m.slices(bounds);
    ASSERT_EQ(many.size(), bounds.size() - 1);
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      const auto one = m.slice(bounds[i], bounds[i + 1]);
      EXPECT_EQ(many[i].ctl, one.ctl) << "seed " << seed << " range " << i;
      EXPECT_EQ(many[i].ctl_end, one.ctl_end) << "range " << i;
      EXPECT_EQ(many[i].values, one.values) << "range " << i;
      EXPECT_EQ(many[i].val_offset, one.val_offset) << "range " << i;
      EXPECT_EQ(many[i].row_begin, one.row_begin) << "range " << i;
      EXPECT_EQ(many[i].row_end, one.row_end) << "range " << i;
      EXPECT_EQ(many[i].row_state, one.row_state) << "range " << i;
      EXPECT_EQ(many[i].nnz, one.nnz) << "range " << i;
    }
  }
}

TEST(CsrDu, MultiSliceDegenerateBounds) {
  Triplets t(10, 10);
  t.add(0, 0, 1.0);
  t.add(9, 9, 1.0);
  t.sort_and_combine();
  const CsrDu m = CsrDu::from_triplets(t);
  EXPECT_TRUE(m.slices({}).empty());
  EXPECT_TRUE(m.slices({0}).empty());  // no ranges
  // All-empty interior ranges plus full coverage.
  const std::vector<index_t> bounds = {0, 0, 5, 5, 10, 10};
  const auto many = m.slices(bounds);
  ASSERT_EQ(many.size(), 5u);
  for (std::size_t i = 0; i < many.size(); ++i) {
    const auto one = m.slice(bounds[i], bounds[i + 1]);
    EXPECT_EQ(many[i].ctl, one.ctl) << i;
    EXPECT_EQ(many[i].ctl_end, one.ctl_end) << i;
    EXPECT_EQ(many[i].nnz, one.nnz) << i;
    EXPECT_EQ(many[i].row_state, one.row_state) << i;
  }
  // Out-of-order bounds are rejected.
  EXPECT_THROW(m.slices({5, 0}), Error);
  EXPECT_THROW(m.slices({0, 11}), Error);
}

TEST(CsrDu, SliceOfEmptyRowRangeIsEmpty) {
  Triplets t(10, 10);
  t.add(0, 0, 1.0);
  t.add(9, 9, 1.0);
  t.sort_and_combine();
  const CsrDu m = CsrDu::from_triplets(t);
  const auto s = m.slice(2, 8);
  EXPECT_EQ(s.nnz, 0u);
  EXPECT_EQ(s.ctl, s.ctl_end);
}

TEST(CsrDu, DropValuesKeepsStructure) {
  CsrDu m = CsrDu::from_triplets(test::paper_matrix());
  const usize_t units = m.unit_count();
  m.drop_values();
  EXPECT_EQ(m.nnz(), 16u);
  EXPECT_EQ(m.unit_count(), units);
  EXPECT_TRUE(m.values().empty());
  EXPECT_EQ(m.full().values, nullptr);
}

TEST(CsrDu, CursorVisitsEveryElementInOrder) {
  Rng rng(21);
  const Triplets t = test::random_triplets(300, 20000, 4000, rng);
  CsrDuOptions opts;
  opts.enable_rle = true;
  opts.rle_min_run = 4;
  const CsrDu m = CsrDu::from_triplets(t, opts);
  CsrDu::Cursor cur(m.full());
  index_t row = 0, col = 0;
  usize_t k = 0;
  while (cur.next(&row, &col)) {
    ASSERT_LT(k, t.nnz());
    EXPECT_EQ(row, t.entries()[k].row) << k;
    EXPECT_EQ(col, t.entries()[k].col) << k;
    EXPECT_EQ(cur.element_index(), k);
    ++k;
  }
  EXPECT_EQ(k, t.nnz());
}

TEST(CsrDu, CursorOverSliceStartsAtOffset) {
  Rng rng(22);
  const Triplets t = test::random_triplets(200, 200, 3000, rng);
  const CsrDu m = CsrDu::from_triplets(t);
  const auto s = m.slice(50, 120);
  CsrDu::Cursor cur(s);
  index_t row = 0, col = 0;
  usize_t count = 0;
  usize_t first_index = 0;
  while (cur.next(&row, &col)) {
    if (count == 0) {
      first_index = cur.element_index();
    }
    EXPECT_GE(row, 50u);
    EXPECT_LT(row, 120u);
    ++count;
  }
  EXPECT_EQ(count, s.nnz);
  if (count > 0) {
    EXPECT_EQ(first_index, s.val_offset);
  }
}

TEST(CsrDu, CursorOnEmptySlice) {
  const CsrDu m = CsrDu::from_triplets(test::paper_matrix());
  const auto s = m.slice(3, 3);
  CsrDu::Cursor cur(s);
  index_t row, col;
  EXPECT_FALSE(cur.next(&row, &col));
}

TEST(CsrDu, InvalidOptionsRejected) {
  const Triplets t = test::paper_matrix();
  CsrDuOptions bad;
  bad.max_unit = 0;
  EXPECT_THROW(CsrDu::from_triplets(t, bad), Error);
  bad = CsrDuOptions{};
  bad.max_unit = 256;
  EXPECT_THROW(CsrDu::from_triplets(t, bad), Error);
  bad = CsrDuOptions{};
  bad.split_threshold = 0;
  EXPECT_THROW(CsrDu::from_triplets(t, bad), Error);
  bad = CsrDuOptions{};
  bad.rle_min_run = 1;
  EXPECT_THROW(CsrDu::from_triplets(t, bad), Error);
}

struct DuParamCase {
  std::uint32_t max_unit;
  std::uint32_t split_threshold;
  bool rle;
  std::uint32_t seed;
};

class CsrDuParamRoundTrip
    : public ::testing::TestWithParam<DuParamCase> {};

TEST_P(CsrDuParamRoundTrip, EncodesAndDecodesExactly) {
  const DuParamCase& pc = GetParam();
  Rng rng(pc.seed);
  const index_t nrows = 1 + static_cast<index_t>(rng.next_below(300));
  const index_t ncols = 1 + static_cast<index_t>(rng.next_below(100000));
  const Triplets t = test::random_triplets(
      nrows, ncols, rng.next_below(5000), rng);
  CsrDuOptions opts;
  opts.max_unit = pc.max_unit;
  opts.split_threshold = pc.split_threshold;
  opts.enable_rle = pc.rle;
  const CsrDu m = CsrDu::from_triplets(t, opts);
  test::expect_triplets_eq(t, m.to_triplets());
}

INSTANTIATE_TEST_SUITE_P(
    OptionSweep, CsrDuParamRoundTrip,
    ::testing::Values(DuParamCase{255, 8, false, 1},
                      DuParamCase{255, 8, true, 2},
                      DuParamCase{4, 8, false, 3},
                      DuParamCase{1, 1, false, 4},
                      DuParamCase{255, 1, false, 5},
                      DuParamCase{255, 64, false, 6},
                      DuParamCase{16, 2, true, 7},
                      DuParamCase{255, 8, true, 8},
                      DuParamCase{100, 3, true, 9},
                      DuParamCase{255, 255, false, 10}));

}  // namespace
}  // namespace spc
