#include "spc/formats/bcsr.hpp"

#include <gtest/gtest.h>

#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(Bcsr, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  for (const index_t br : {1u, 2u, 3u}) {
    for (const index_t bc : {1u, 2u, 3u}) {
      test::expect_triplets_eq(
          orig, Bcsr::from_triplets(orig, br, bc).to_triplets());
    }
  }
}

TEST(Bcsr, OneByOneBlocksEqualCsrStructure) {
  const Triplets t = test::paper_matrix();
  const Bcsr m = Bcsr::from_triplets(t, 1, 1);
  EXPECT_EQ(m.nblocks(), t.nnz());
  EXPECT_DOUBLE_EQ(m.fill_ratio(), 1.0);
}

TEST(Bcsr, FillRatioOnDenseBlocks) {
  // A perfectly 2x2-blocked matrix has fill ratio 1 at block 2x2.
  Rng rng(3);
  const Triplets t =
      gen_fem_blocks(50, 2, 4, rng, ValueModel::random());
  const Bcsr aligned = Bcsr::from_triplets(t, 2, 2);
  EXPECT_DOUBLE_EQ(aligned.fill_ratio(), 1.0);
  // A misaligned block shape must pay fill-in.
  const Bcsr misaligned = Bcsr::from_triplets(t, 3, 3);
  EXPECT_GT(misaligned.fill_ratio(), 1.0);
}

TEST(Bcsr, IndexBytesShrinkWithBlocking) {
  Rng rng(4);
  const Triplets t =
      gen_fem_blocks(200, 4, 5, rng, ValueModel::random());
  const Bcsr b1 = Bcsr::from_triplets(t, 1, 1);
  const Bcsr b4 = Bcsr::from_triplets(t, 4, 4);
  const usize_t idx1 = b1.bytes() - b1.stored_values() * 8;
  const usize_t idx4 = b4.bytes() - b4.stored_values() * 8;
  EXPECT_LT(idx4, idx1 / 8);
}

TEST(Bcsr, RaggedEdgesHandled) {
  // 7x5 matrix with 2x2 blocks: bottom and right edges are partial.
  Triplets t(7, 5);
  for (index_t r = 0; r < 7; ++r) {
    for (index_t c = 0; c < 5; ++c) {
      if ((r + c) % 2 == 0) {
        t.add(r, c, static_cast<value_t>(1 + r * 5 + c));
      }
    }
  }
  t.sort_and_combine();
  test::expect_triplets_eq(t,
                           Bcsr::from_triplets(t, 2, 2).to_triplets());
}

TEST(Bcsr, RejectsOversizedBlocks) {
  const Triplets t = test::paper_matrix();
  EXPECT_THROW(Bcsr::from_triplets(t, 9, 1), Error);
  EXPECT_THROW(Bcsr::from_triplets(t, 1, 0), Error);
}

TEST(Bcsr, EmptyMatrix) {
  Triplets t(4, 4);
  const Bcsr m = Bcsr::from_triplets(t, 2, 2);
  EXPECT_EQ(m.nblocks(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

struct BcsrCase {
  index_t br, bc;
  int seed;
};

class BcsrRoundTrip : public ::testing::TestWithParam<BcsrCase> {};

TEST_P(BcsrRoundTrip, RandomMatrices) {
  const BcsrCase& c = GetParam();
  Rng rng(900 + c.seed);
  // Nonzero values only: zeros are indistinguishable from block fill.
  Triplets t(1 + static_cast<index_t>(rng.next_below(100)),
             1 + static_cast<index_t>(rng.next_below(100)));
  const usize_t n = rng.next_below(2000);
  for (usize_t k = 0; k < n; ++k) {
    t.add(static_cast<index_t>(rng.next_below(t.nrows())),
          static_cast<index_t>(rng.next_below(t.ncols())),
          1.0 + rng.next_double());
  }
  t.sort_and_combine();
  test::expect_triplets_eq(
      t, Bcsr::from_triplets(t, c.br, c.bc).to_triplets());
}

INSTANTIATE_TEST_SUITE_P(
    BlockShapes, BcsrRoundTrip,
    ::testing::Values(BcsrCase{1, 1, 0}, BcsrCase{2, 2, 1},
                      BcsrCase{4, 4, 2}, BcsrCase{2, 4, 3},
                      BcsrCase{4, 2, 4}, BcsrCase{3, 5, 5},
                      BcsrCase{8, 8, 6}, BcsrCase{1, 8, 7},
                      BcsrCase{8, 1, 8}));

}  // namespace
}  // namespace spc
