#include "spc/formats/csr_du_vi.hpp"

#include <gtest/gtest.h>

#include "spc/formats/csr.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(CsrDuVi, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  test::expect_triplets_eq(orig,
                           CsrDuVi::from_triplets(orig).to_triplets());
}

TEST(CsrDuVi, DropsDuplicateValueArray) {
  const CsrDuVi m = CsrDuVi::from_triplets(test::paper_matrix());
  EXPECT_TRUE(m.du().values().empty());
  EXPECT_EQ(m.nnz(), 16u);
  EXPECT_EQ(m.unique_count(), 9u);
}

TEST(CsrDuVi, BytesSmallerThanBothParentsOnFriendlyMatrix) {
  // Banded structure (DU-friendly) + pooled values (VI-friendly).
  Rng rng(11);
  const Triplets t =
      gen_banded(3000, 30, 10, rng, ValueModel::pooled(32));
  const CsrDuVi duvi = CsrDuVi::from_triplets(t);
  const CsrDu du = CsrDu::from_triplets(t);
  const CsrVi vi = CsrVi::from_triplets(t);
  const Csr csr = Csr::from_triplets(t);
  EXPECT_LT(duvi.bytes(), du.bytes());
  EXPECT_LT(duvi.bytes(), vi.bytes());
  EXPECT_LT(duvi.bytes(), csr.bytes() / 2);
}

TEST(CsrDuVi, WidthFollowsUniqueCount) {
  Triplets t(30, 30);
  for (index_t r = 0; r < 30; ++r) {
    for (index_t c = 0; c < 30; ++c) {
      t.add(r, c, static_cast<value_t>(r * 30 + c));
    }
  }
  t.sort_and_combine();
  const CsrDuVi m = CsrDuVi::from_triplets(t);
  EXPECT_EQ(m.width(), ViWidth::kU16);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(CsrDuVi, EmptyRowsSupported) {
  Triplets t(12, 12);
  t.add(2, 3, 1.0);
  t.add(2, 4, 1.0);
  t.add(9, 0, 2.0);
  t.sort_and_combine();
  test::expect_triplets_eq(t,
                           CsrDuVi::from_triplets(t).to_triplets());
}

class CsrDuViRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CsrDuViRoundTrip, RandomMatrices) {
  Rng rng(500 + GetParam());
  const index_t nrows = 1 + static_cast<index_t>(rng.next_below(200));
  const index_t ncols = 1 + static_cast<index_t>(rng.next_below(50000));
  const std::uint32_t pool =
      static_cast<std::uint32_t>(rng.next_below(300));
  const Triplets t = test::random_triplets(
      nrows, ncols, rng.next_below(4000), rng, pool);
  test::expect_triplets_eq(t,
                           CsrDuVi::from_triplets(t).to_triplets());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrDuViRoundTrip, ::testing::Range(0, 12));

}  // namespace
}  // namespace spc
