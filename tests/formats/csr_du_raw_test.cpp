// Validation tests for CsrDu::from_raw — the untrusted-input path used
// by deserialization. Every malformed stream must throw ParseError, never
// produce a matrix whose kernel would read out of bounds.
#include <gtest/gtest.h>

#include "spc/formats/csr_du.hpp"
#include "spc/support/varint.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

aligned_vector<std::uint8_t> to_aligned(std::vector<std::uint8_t> v) {
  return aligned_vector<std::uint8_t>(v.begin(), v.end());
}

// Hand-builds a minimal valid stream: one u8 NR unit, 2 elements,
// columns 1 and 3 in row 0.
std::vector<std::uint8_t> minimal_unit() {
  return {static_cast<std::uint8_t>(kDuNewRow), 2, 1, 2};
}

TEST(CsrDuFromRaw, AcceptsHandBuiltStream) {
  const CsrDu m = CsrDu::from_raw(1, 4, CsrDuOptions{},
                                  to_aligned(minimal_unit()),
                                  {0.5, 1.5});
  EXPECT_EQ(m.nnz(), 2u);
  const Triplets t = m.to_triplets();
  ASSERT_EQ(t.nnz(), 2u);
  EXPECT_EQ(t.entries()[0], (Entry{0, 1, 0.5}));
  EXPECT_EQ(t.entries()[1], (Entry{0, 3, 1.5}));
}

TEST(CsrDuFromRaw, RoundTripsEncoderOutput) {
  Rng rng(1);
  const Triplets t = test::random_triplets(100, 5000, 2000, rng);
  CsrDuOptions opts;
  opts.enable_rle = true;
  opts.rle_min_run = 4;
  const CsrDu orig = CsrDu::from_triplets(t, opts);
  const CsrDu back =
      CsrDu::from_raw(100, 5000, opts,
                      aligned_vector<std::uint8_t>(orig.ctl()),
                      aligned_vector<value_t>(orig.values()));
  EXPECT_EQ(back.unit_count(), orig.unit_count());
  EXPECT_EQ(back.rle_unit_count(), orig.rle_unit_count());
  test::expect_triplets_eq(t, back.to_triplets());
}

TEST(CsrDuFromRaw, RejectsTruncatedHeader) {
  EXPECT_THROW(CsrDu::from_raw(1, 4, {}, to_aligned({kDuNewRow}), {}),
               ParseError);
}

TEST(CsrDuFromRaw, RejectsZeroLengthUnit) {
  EXPECT_THROW(
      CsrDu::from_raw(1, 4, {}, to_aligned({kDuNewRow, 0, 0}), {}),
      ParseError);
}

TEST(CsrDuFromRaw, RejectsTruncatedUcis) {
  // Header claims 3 elements (2 ucis bytes) but only 1 byte follows.
  EXPECT_THROW(
      CsrDu::from_raw(1, 10, {}, to_aligned({kDuNewRow, 3, 1, 2}), {}),
      ParseError);
}

TEST(CsrDuFromRaw, RejectsRowOutOfBounds) {
  // rskip jumps past nrows.
  std::vector<std::uint8_t> ctl = {
      static_cast<std::uint8_t>(kDuNewRow | kDuRJmp), 1, 9, 0};
  EXPECT_THROW(CsrDu::from_raw(5, 5, {}, to_aligned(ctl), {0.0}),
               ParseError);
}

TEST(CsrDuFromRaw, RejectsColumnOutOfBounds) {
  // ujmp = 7 in a 4-column matrix.
  EXPECT_THROW(
      CsrDu::from_raw(1, 4, {}, to_aligned({kDuNewRow, 1, 7}), {0.0}),
      ParseError);
}

TEST(CsrDuFromRaw, RejectsStreamNotStartingWithNewRow) {
  EXPECT_THROW(CsrDu::from_raw(1, 4, {}, to_aligned({0, 1, 1}), {0.0}),
               ParseError);
}

TEST(CsrDuFromRaw, RejectsValueCountMismatch) {
  EXPECT_THROW(CsrDu::from_raw(1, 4, {}, to_aligned(minimal_unit()),
                               {0.5}),  // 2 elements, 1 value
               ParseError);
}

TEST(CsrDuFromRaw, RejectsRleColumnOverflow) {
  // RLE unit: 5 elements, stride 100 — runs far past ncols.
  std::vector<std::uint8_t> ctl = {
      static_cast<std::uint8_t>(kDuNewRow | kDuRle), 5, 0, 100};
  EXPECT_THROW(
      CsrDu::from_raw(1, 64, {}, to_aligned(ctl),
                      {1, 1, 1, 1, 1}),
      ParseError);
}

TEST(CsrDuFromRaw, AcceptsRleStrideUnit) {
  // 4 elements at columns 2, 5, 8, 11 (stride 3).
  std::vector<std::uint8_t> ctl = {
      static_cast<std::uint8_t>(kDuNewRow | kDuRle), 4, 2, 3};
  const CsrDu m = CsrDu::from_raw(1, 12, {}, to_aligned(ctl),
                                  {1.0, 2.0, 3.0, 4.0});
  const Triplets t = m.to_triplets();
  ASSERT_EQ(t.nnz(), 4u);
  EXPECT_EQ(t.entries()[3], (Entry{0, 11, 4.0}));
  EXPECT_EQ(m.rle_unit_count(), 1u);
}

TEST(CsrDuFromRaw, EmptyStreamIsEmptyMatrix) {
  const CsrDu m = CsrDu::from_raw(3, 3, {}, {}, {});
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_TRUE(m.to_triplets().empty());
}

}  // namespace
}  // namespace spc
