#include "spc/formats/csr_vi.hpp"

#include <gtest/gtest.h>

#include "spc/formats/csr.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(CsrVi, PaperFig4GoldenLayout) {
  // Fig 4: unique values in first-occurrence order and per-nnz indices.
  const CsrVi m = CsrVi::from_triplets(test::paper_matrix());
  const std::vector<value_t> uniq = {5.4, 1.1, 6.3, 7.7, 8.8,
                                     2.9, 3.7, 9.0, 4.5};
  ASSERT_EQ(m.unique_count(), uniq.size());
  for (std::size_t i = 0; i < uniq.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.vals_unique()[i], uniq[i]) << i;
  }
  // values: 5.4 1.1 6.3 7.7 8.8 1.1 2.9 3.7 2.9 9.0 1.1 4.5 1.1 2.9 3.7 1.1
  const std::vector<std::uint8_t> ind = {0, 1, 2, 3, 4, 1, 5, 6,
                                         5, 7, 1, 8, 1, 5, 6, 1};
  ASSERT_EQ(m.width(), ViWidth::kU8);
  for (std::size_t i = 0; i < ind.size(); ++i) {
    EXPECT_EQ(m.val_ind_raw()[i], ind[i]) << i;
  }
}

TEST(CsrVi, SharesCsrIndexStructure) {
  const CsrVi vi = CsrVi::from_triplets(test::paper_matrix());
  const Csr csr = Csr::from_triplets(test::paper_matrix());
  ASSERT_EQ(vi.row_ptr().size(), csr.row_ptr().size());
  for (std::size_t i = 0; i < csr.row_ptr().size(); ++i) {
    EXPECT_EQ(vi.row_ptr()[i], csr.row_ptr()[i]);
  }
  for (usize_t i = 0; i < csr.nnz(); ++i) {
    EXPECT_EQ(vi.col_ind()[i], csr.col_ind()[i]);
    EXPECT_DOUBLE_EQ(vi.value_at(i), csr.values()[i]);
  }
}

TEST(CsrVi, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  test::expect_triplets_eq(orig,
                           CsrVi::from_triplets(orig).to_triplets());
}

TEST(CsrVi, WidthSelection) {
  EXPECT_EQ(vi_width_for(1), ViWidth::kU8);
  EXPECT_EQ(vi_width_for(256), ViWidth::kU8);
  EXPECT_EQ(vi_width_for(257), ViWidth::kU16);
  EXPECT_EQ(vi_width_for(65536), ViWidth::kU16);
  EXPECT_EQ(vi_width_for(65537), ViWidth::kU32);
}

TEST(CsrVi, U16WidthRoundTrip) {
  // Force more than 256 unique values.
  Triplets t(40, 40);
  for (index_t r = 0; r < 40; ++r) {
    for (index_t c = 0; c < 40; ++c) {
      t.add(r, c, static_cast<value_t>(r * 40 + c) * 0.125);
    }
  }
  t.sort_and_combine();
  const CsrVi m = CsrVi::from_triplets(t);
  EXPECT_EQ(m.width(), ViWidth::kU16);
  EXPECT_EQ(m.unique_count(), 1600u);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(CsrVi, TtuComputation) {
  Rng rng(2);
  const Triplets t =
      gen_random_uniform(400, 400, 10, rng, ValueModel::pooled(8));
  const CsrVi m = CsrVi::from_triplets(t);
  EXPECT_LE(m.unique_count(), 8u);
  EXPECT_GT(m.ttu(), kViTtuThreshold);
}

TEST(CsrVi, CompressesPooledValues) {
  Rng rng(7);
  const Triplets t =
      gen_random_uniform(2000, 2000, 10, rng, ValueModel::pooled(100));
  const CsrVi vi = CsrVi::from_triplets(t);
  const Csr csr = Csr::from_triplets(t);
  // val_ind is u8 here: value side shrinks from 8B to ~1B per nnz.
  EXPECT_LT(vi.bytes(), csr.bytes());
  EXPECT_EQ(vi.width(), ViWidth::kU8);
}

TEST(CsrVi, RandomValuesGiveNoCompression) {
  Rng rng(8);
  const Triplets t = test::random_triplets(300, 300, 4000, rng);
  const CsrVi vi = CsrVi::from_triplets(t);
  const Csr csr = Csr::from_triplets(t);
  // Every value distinct: indices + unique table exceed the plain array.
  EXPECT_LT(vi.ttu(), 1.5);
  EXPECT_GT(vi.bytes(), csr.bytes());
}

TEST(CsrVi, BitPatternIdentityDistinguishesSignedZero) {
  Triplets t(1, 2);
  t.add(0, 0, 0.0);
  t.add(0, 1, -0.0);
  t.sort_and_combine();
  const CsrVi m = CsrVi::from_triplets(t);
  EXPECT_EQ(m.unique_count(), 2u);  // +0.0 and -0.0 differ bitwise
}

TEST(CsrVi, EmptyMatrix) {
  Triplets t(3, 3);
  const CsrVi m = CsrVi::from_triplets(t);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.unique_count(), 0u);
  EXPECT_EQ(m.ttu(), 0.0);
}

class CsrViRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CsrViRoundTrip, PooledRandomMatrices) {
  Rng rng(100 + GetParam());
  const std::uint32_t pool = GetParam();
  const Triplets t = test::random_triplets(250, 250, 3000, rng, pool);
  test::expect_triplets_eq(t, CsrVi::from_triplets(t).to_triplets());
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, CsrViRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 5u, 50u, 255u, 256u,
                                           400u, 1000u));

}  // namespace
}  // namespace spc
