#include <gtest/gtest.h>

#include "spc/formats/coo.hpp"
#include "spc/formats/csc.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(Coo, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  test::expect_triplets_eq(orig, Coo::from_triplets(orig).to_triplets());
}

TEST(Coo, ArraysMirrorTriplets) {
  const Triplets t = test::paper_matrix();
  const Coo m = Coo::from_triplets(t);
  ASSERT_EQ(m.nnz(), t.nnz());
  for (usize_t k = 0; k < t.nnz(); ++k) {
    EXPECT_EQ(m.rows()[k], t.entries()[k].row);
    EXPECT_EQ(m.cols()[k], t.entries()[k].col);
    EXPECT_DOUBLE_EQ(m.values()[k], t.entries()[k].val);
  }
}

TEST(Coo, BytesAccounting) {
  const Coo m = Coo::from_triplets(test::paper_matrix());
  EXPECT_EQ(m.bytes(), 16u * (4 + 4 + 8));
}

TEST(Csc, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  test::expect_triplets_eq(orig, Csc::from_triplets(orig).to_triplets());
}

TEST(Csc, ColumnPointersAreCorrect) {
  const Csc m = Csc::from_triplets(test::paper_matrix());
  // Column populations of the Fig 1 matrix: 3,2,3,3,2,3.
  const std::vector<index_t> expect = {0, 3, 5, 8, 11, 13, 16};
  ASSERT_EQ(m.col_ptr().size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(m.col_ptr()[i], expect[i]) << i;
  }
}

TEST(Csc, RowIndicesSortedWithinColumns) {
  Rng rng(3);
  const Triplets t = test::random_triplets(100, 80, 1500, rng);
  const Csc m = Csc::from_triplets(t);
  for (index_t c = 0; c < m.ncols(); ++c) {
    for (index_t j = m.col_ptr()[c] + 1; j < m.col_ptr()[c + 1]; ++j) {
      EXPECT_LT(m.row_ind()[j - 1], m.row_ind()[j]);
    }
  }
}

class CooCscRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CooCscRoundTrip, RandomMatrices) {
  Rng rng(300 + GetParam());
  const Triplets t = test::random_triplets(
      1 + static_cast<index_t>(rng.next_below(150)),
      1 + static_cast<index_t>(rng.next_below(150)),
      rng.next_below(3000), rng);
  test::expect_triplets_eq(t, Coo::from_triplets(t).to_triplets());
  test::expect_triplets_eq(t, Csc::from_triplets(t).to_triplets());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CooCscRoundTrip, ::testing::Range(0, 10));

}  // namespace
}  // namespace spc
