#include "spc/formats/csr.hpp"

#include <gtest/gtest.h>

#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(Csr, PaperMatrixGoldenArrays) {
  // Fig 1 of the paper.
  const Csr m = Csr::from_triplets(test::paper_matrix());
  const std::vector<index_t> row_ptr = {0, 2, 5, 6, 9, 12, 16};
  const std::vector<std::uint32_t> col_ind = {0, 1, 1, 3, 5, 2, 2, 4,
                                              5, 0, 3, 4, 0, 2, 3, 5};
  const std::vector<value_t> values = {5.4, 1.1, 6.3, 7.7, 8.8, 1.1,
                                       2.9, 3.7, 2.9, 9.0, 1.1, 4.5,
                                       1.1, 2.9, 3.7, 1.1};
  ASSERT_EQ(m.row_ptr().size(), row_ptr.size());
  for (std::size_t i = 0; i < row_ptr.size(); ++i) {
    EXPECT_EQ(m.row_ptr()[i], row_ptr[i]) << i;
  }
  ASSERT_EQ(m.col_ind().size(), col_ind.size());
  for (std::size_t i = 0; i < col_ind.size(); ++i) {
    EXPECT_EQ(m.col_ind()[i], col_ind[i]) << i;
    EXPECT_DOUBLE_EQ(m.values()[i], values[i]) << i;
  }
}

TEST(Csr, BytesAccounting) {
  const Csr m = Csr::from_triplets(test::paper_matrix());
  EXPECT_EQ(m.bytes(), 7 * 4 + 16 * 4 + 16 * 8);
}

TEST(Csr, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  test::expect_triplets_eq(orig, Csr::from_triplets(orig).to_triplets());
}

TEST(Csr, EmptyMatrix) {
  Triplets t(3, 3);
  const Csr m = Csr::from_triplets(t);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.row_ptr().size(), 4u);
  EXPECT_EQ(m.row_ptr()[3], 0u);
}

TEST(Csr, RejectsUnsortedInput) {
  Triplets t(2, 2);
  t.add(1, 0, 1.0);
  t.add(0, 0, 1.0);
  EXPECT_THROW(Csr::from_triplets(t), Error);
}

TEST(Csr16, RoundTripWhenApplicable) {
  Rng rng(9);
  const Triplets t = test::random_triplets(300, 60000, 2000, rng);
  ASSERT_TRUE(csr16_applicable(t));
  test::expect_triplets_eq(t, Csr16::from_triplets(t).to_triplets());
}

TEST(Csr16, RejectsWideMatrix) {
  Triplets t(2, 70000);
  t.add(0, 69999, 1.0);
  t.sort_and_combine();
  EXPECT_FALSE(csr16_applicable(t));
  EXPECT_THROW(Csr16::from_triplets(t), Error);
}

TEST(Csr16, HalvesIndexBytes) {
  Rng rng(10);
  const Triplets t = test::random_triplets(500, 500, 3000, rng);
  const Csr m32 = Csr::from_triplets(t);
  const Csr16 m16 = Csr16::from_triplets(t);
  const usize_t idx32 = m32.bytes() - m32.nnz() * sizeof(value_t);
  const usize_t idx16 = m16.bytes() - m16.nnz() * sizeof(value_t);
  // col_ind halves; row_ptr stays 32-bit.
  EXPECT_EQ(idx32 - idx16, m32.nnz() * 2);
}

class CsrRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CsrRoundTrip, RandomMatrices) {
  Rng rng(1000 + GetParam());
  const index_t nrows = 1 + static_cast<index_t>(rng.next_below(200));
  const index_t ncols = 1 + static_cast<index_t>(rng.next_below(200));
  const usize_t nnz = rng.next_below(nrows * static_cast<usize_t>(ncols) / 2 + 1);
  const Triplets t = test::random_triplets(nrows, ncols, nnz, rng);
  test::expect_triplets_eq(t, Csr::from_triplets(t).to_triplets());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRoundTrip, ::testing::Range(0, 20));

TEST(Csr64, RoundTripAndWiderFootprint) {
  Rng rng(11);
  const Triplets t = test::random_triplets(200, 200, 2500, rng);
  const Csr64 m = Csr64::from_triplets(t);
  test::expect_triplets_eq(t, m.to_triplets());
  const Csr m32 = Csr::from_triplets(t);
  EXPECT_EQ(m.bytes() - m32.bytes(), m.nnz() * 4);
}

TEST(Csr, StructuredGeneratorsRoundTrip) {
  for (const Triplets& t :
       {gen_laplacian_2d(13, 9), gen_laplacian_3d(5, 6, 7),
        gen_stencil_9pt(8, 8)}) {
    test::expect_triplets_eq(t, Csr::from_triplets(t).to_triplets());
  }
}

}  // namespace
}  // namespace spc
