#include "spc/formats/sym_csr_vi.hpp"

#include <gtest/gtest.h>

#include <set>

#include "spc/formats/csr_vi.hpp"
#include "spc/formats/sym_csr.hpp"
#include "spc/gen/generators.hpp"
#include "spc/spmv/kernels.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

// Symmetric band with values drawn from a small pool (plus a pooled
// diagonal), so the shared table stays narrow.
Triplets pooled_symmetric(index_t n, index_t half_bw, index_t per_row,
                          std::uint32_t pool, std::uint64_t seed) {
  Rng rng(seed);
  const Triplets a =
      gen_banded(n, half_bw, per_row, rng, ValueModel::pooled(pool));
  Triplets s(n, n);
  for (const Entry& e : a.entries()) {
    s.add(e.row, e.col, e.val);
    s.add(e.col, e.row, e.val);
  }
  for (index_t i = 0; i < n; ++i) {
    s.add(i, i, 1.0 + static_cast<double>(i % 4));
  }
  s.sort_and_combine();
  return s;
}

TEST(SymCsrVi, ApplicabilityMatchesSymCsr) {
  const Triplets sym = gen_laplacian_2d(10, 10);
  EXPECT_TRUE(SymCsrVi::applicable(sym));
  EXPECT_FALSE(SymCsrVi::applicable(test::paper_matrix()));
  EXPECT_THROW(SymCsrVi::from_triplets(test::paper_matrix()),
               InvalidArgument);
}

TEST(SymCsrVi, RoundTripAndCounts) {
  const Triplets t = pooled_symmetric(120, 12, 5, 6, 31);
  const SymCsrVi m = SymCsrVi::from_triplets(t);
  EXPECT_EQ(m.nrows(), t.nrows());
  EXPECT_EQ(m.nnz(), t.nnz());
  // stored = dense diagonal + strict lower = (nnz + n) / 2 for a
  // matrix with a full diagonal.
  EXPECT_EQ(m.stored(), (t.nnz() + t.nrows()) / 2);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(SymCsrVi, SharedTableCoversDiagonalAndLower) {
  const Triplets t = pooled_symmetric(200, 15, 6, 5, 32);
  const SymCsrVi m = SymCsrVi::from_triplets(t);
  // Every distinct stored value appears exactly once in the table.
  std::set<value_t> distinct;
  for (index_t r = 0; r < m.nrows(); ++r) {
    distinct.insert(m.diag_at(r));
  }
  for (usize_t k = 0; k < m.col_ind().size(); ++k) {
    distinct.insert(m.value_at(k));
  }
  EXPECT_EQ(m.unique_count(), distinct.size());
  EXPECT_GT(m.ttu(), 5.0);  // pooled values: strongly VI-friendly
  // Narrow pool fits a byte-wide index.
  EXPECT_EQ(m.width(), ViWidth::kU8);
}

TEST(SymCsrVi, WidthWidensWithUniqueCount) {
  // ~700 distinct values force the u16 index.
  Rng rng(33);
  const Triplets a = gen_banded(600, 30, 10, rng, ValueModel::pooled(700));
  Triplets s(600, 600);
  for (const Entry& e : a.entries()) {
    s.add(e.row, e.col, e.val);
    s.add(e.col, e.row, e.val);
  }
  s.sort_and_combine();
  const SymCsrVi m = SymCsrVi::from_triplets(s);
  if (m.unique_count() > 256) {
    EXPECT_EQ(m.width(), ViWidth::kU16);
  }
}

TEST(SymCsrVi, BeatsSymCsrBytesOnPooledValues) {
  const Triplets t = pooled_symmetric(2000, 25, 9, 8, 34);
  const SymCsrVi vi = SymCsrVi::from_triplets(t);
  const SymCsr plain = SymCsr::from_triplets(t);
  // 8-byte values become 1-byte indices: the value stream shrinks 8x,
  // the index stream is untouched.
  EXPECT_LT(vi.bytes(), plain.bytes());
  // And both sit well under full CSR-VI (which stores each off-diagonal
  // twice).
  const CsrVi full = CsrVi::from_triplets(t);
  EXPECT_LT(vi.bytes(), full.bytes() * 7 / 10);
}

TEST(SymCsrVi, SerialKernelMatchesReference) {
  const Triplets t = pooled_symmetric(300, 20, 7, 10, 35);
  Rng xr(36);
  const Vector x = random_vector(300, xr);
  const Vector ref = test::reference_spmv(t, x);
  const SymCsrVi m = SymCsrVi::from_triplets(t);
  Vector y(300, -1.0);
  spmv(m, x.data(), y.data());
  EXPECT_LT(rel_error(ref, y), kTol);
}

TEST(SymCsrVi, SerialKernelMatchesSymCsrBitwise) {
  // Same traversal order, same arithmetic — the value indirection must
  // not change a single bit vs SymCsr.
  const Triplets t = pooled_symmetric(250, 18, 6, 7, 37);
  Rng xr(38);
  const Vector x = random_vector(250, xr);
  const SymCsr a = SymCsr::from_triplets(t);
  const SymCsrVi b = SymCsrVi::from_triplets(t);
  Vector ya(250, 0.0);
  Vector yb(250, 1.0);
  spmv(a, x.data(), ya.data());
  spmv(b, x.data(), yb.data());
  EXPECT_EQ(max_abs_diff(ya, yb), 0.0);
}

TEST(SymCsrVi, ImplicitZeroDiagonalResolves) {
  // Rows without a stored diagonal entry must read 0.0 through the
  // table, not garbage.
  Triplets t(4, 4);
  t.add(0, 0, 2.0);
  t.add(2, 0, 1.5);
  t.add(0, 2, 1.5);
  t.add(3, 3, 2.0);
  t.sort_and_combine();
  const SymCsrVi m = SymCsrVi::from_triplets(t);
  EXPECT_DOUBLE_EQ(m.diag_at(1), 0.0);
  EXPECT_DOUBLE_EQ(m.diag_at(2), 0.0);
  const Vector x = {1.0, 1.0, 1.0, 1.0};
  Vector y(4, -1.0);
  spmv(m, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 1.5);
  EXPECT_DOUBLE_EQ(y[3], 2.0);
}

}  // namespace
}  // namespace spc
