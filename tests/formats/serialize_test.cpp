#include "spc/formats/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

template <typename M, typename Loader>
M round_trip(const M& m, Loader load) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save(m, buf);
  buf.seekg(0);
  return load(buf);
}

TEST(Serialize, CsrRoundTrip) {
  Rng rng(1);
  const Triplets t = test::random_triplets(120, 90, 1500, rng);
  const Csr m = Csr::from_triplets(t);
  const Csr back = round_trip(m, [](std::istream& in) {
    return load_csr(in);
  });
  test::expect_triplets_eq(t, back.to_triplets());
  EXPECT_EQ(back.bytes(), m.bytes());
}

TEST(Serialize, CsrDuRoundTripPreservesStreamAndOptions) {
  Rng rng(2);
  const Triplets t = gen_banded(500, 25, 8, rng, ValueModel::pooled(16));
  CsrDuOptions opts;
  opts.enable_rle = true;
  opts.split_threshold = 4;
  const CsrDu m = CsrDu::from_triplets(t, opts);
  const CsrDu back = round_trip(m, [](std::istream& in) {
    return load_csr_du(in);
  });
  EXPECT_EQ(back.ctl(), m.ctl());
  EXPECT_EQ(back.unit_count(), m.unit_count());
  EXPECT_EQ(back.rle_unit_count(), m.rle_unit_count());
  EXPECT_EQ(back.options().split_threshold, 4u);
  EXPECT_TRUE(back.options().enable_rle);
  test::expect_triplets_eq(t, back.to_triplets());
}

TEST(Serialize, CsrViRoundTrip) {
  Rng rng(3);
  const Triplets t =
      gen_random_uniform(300, 300, 9, rng, ValueModel::pooled(500));
  const CsrVi m = CsrVi::from_triplets(t);
  const CsrVi back = round_trip(m, [](std::istream& in) {
    return load_csr_vi(in);
  });
  EXPECT_EQ(back.width(), m.width());
  EXPECT_EQ(back.unique_count(), m.unique_count());
  test::expect_triplets_eq(t, back.to_triplets());
}

TEST(Serialize, CsrDuViRoundTrip) {
  Rng rng(4);
  const Triplets t =
      gen_banded(400, 30, 9, rng, ValueModel::pooled(40));
  CsrDuOptions opts;
  opts.enable_rle = true;
  const CsrDuVi m = CsrDuVi::from_triplets(t, opts);
  const CsrDuVi back = round_trip(m, [](std::istream& in) {
    return load_csr_du_vi(in);
  });
  EXPECT_EQ(back.width(), m.width());
  EXPECT_EQ(back.unique_count(), m.unique_count());
  EXPECT_EQ(back.du().ctl(), m.du().ctl());
  test::expect_triplets_eq(t, back.to_triplets());
}

TEST(Serialize, CsrDuViRejectsBadValueIndices) {
  const CsrDuVi m = CsrDuVi::from_triplets(test::paper_matrix());
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save(m, buf);
  std::string s = buf.str();
  // The vals_unique length field sits near the end; shrink the table so
  // indices dangle. Easier: truncate the final unique value.
  s.resize(s.size() - 8);
  std::stringstream in(s);
  EXPECT_THROW(load_csr_du_vi(in), ParseError);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/spc_serialize.spcm";
  const CsrDu m = CsrDu::from_triplets(test::paper_matrix());
  save_file(m, path);
  const CsrDu back = load_csr_du_file(path);
  test::expect_triplets_eq(test::paper_matrix(), back.to_triplets());
}

TEST(Serialize, HeaderIdentifiesFormat) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save(CsrVi::from_triplets(test::paper_matrix()), buf);
  buf.seekg(0);
  index_t nrows = 0, ncols = 0;
  EXPECT_EQ(read_spcm_header(buf, &nrows, &ncols), SpcmTag::kCsrVi);
  EXPECT_EQ(nrows, 6u);
  EXPECT_EQ(ncols, 6u);
}

TEST(Serialize, RejectsWrongFormatTag) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save(Csr::from_triplets(test::paper_matrix()), buf);
  buf.seekg(0);
  EXPECT_THROW(load_csr_du(buf), ParseError);
}

TEST(Serialize, RejectsBadMagicAndTruncation) {
  std::stringstream empty;
  EXPECT_THROW(load_csr(empty), ParseError);

  std::stringstream bad;
  bad << "NOPE....................";
  EXPECT_THROW(load_csr(bad), ParseError);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save(Csr::from_triplets(test::paper_matrix()), buf);
  const std::string full = buf.str();
  for (const std::size_t cut :
       {std::size_t{5}, std::size_t{16}, std::size_t{24},
        full.size() - 3}) {
    std::stringstream part(full.substr(0, cut));
    EXPECT_THROW(load_csr(part), ParseError) << "cut " << cut;
  }
}

TEST(Serialize, CorruptedCtlStreamIsRejected) {
  // Flip bytes in the ctl payload; validation in CsrDu::from_raw must
  // catch every corruption that would send the kernel out of bounds.
  Rng rng(5);
  const Triplets t = test::random_triplets(60, 60, 500, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save(CsrDu::from_triplets(t), buf);
  const std::string full = buf.str();

  int rejected = 0, accepted = 0;
  for (std::size_t pos = 40; pos < full.size() && pos < 340; pos += 7) {
    std::string mutated = full;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xFF);
    std::stringstream in(mutated);
    try {
      const CsrDu m = load_csr_du(in);
      // If accepted, the decode must still be self-consistent (coords in
      // bounds, counts matching) — verified by a full decode.
      const Triplets round = m.to_triplets();
      EXPECT_LE(round.nnz(), t.nnz() * 2);
      ++accepted;
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  // Most flips must be rejected; none may crash or read out of bounds.
  EXPECT_GT(rejected, accepted / 4);
}

TEST(Serialize, FromRawRejectsInconsistentCsr) {
  aligned_vector<index_t> rp = {0, 2, 1};  // non-monotone
  aligned_vector<std::uint32_t> ci = {0, 1};
  aligned_vector<value_t> v = {1.0, 2.0};
  EXPECT_THROW(Csr::from_raw(2, 2, rp, ci, v), ParseError);

  aligned_vector<index_t> rp2 = {0, 1, 2};
  aligned_vector<std::uint32_t> ci2 = {0, 9};  // col out of bounds
  EXPECT_THROW(Csr::from_raw(2, 2, rp2, ci2, v), ParseError);
}

TEST(Serialize, FromRawRejectsBadViIndices) {
  aligned_vector<index_t> rp = {0, 1};
  aligned_vector<std::uint32_t> ci = {0};
  aligned_vector<std::uint8_t> vi = {7};  // only 1 unique value exists
  aligned_vector<value_t> uniq = {3.0};
  EXPECT_THROW(CsrVi::from_raw(1, 1, rp, ci, ViWidth::kU8, vi, uniq),
               ParseError);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_csr_file("/nonexistent/m.spcm"), Error);
}

}  // namespace
}  // namespace spc
