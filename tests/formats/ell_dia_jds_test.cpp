#include <gtest/gtest.h>

#include "spc/formats/dia.hpp"
#include "spc/formats/ell.hpp"
#include "spc/formats/jds.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

Triplets nonzero_random(index_t nrows, index_t ncols, usize_t n,
                        std::uint64_t seed) {
  // Values strictly nonzero: zeros are indistinguishable from padding in
  // ELL/DIA round trips (same caveat as BCSR fill).
  Rng rng(seed);
  Triplets t(nrows, ncols);
  for (usize_t k = 0; k < n; ++k) {
    t.add(static_cast<index_t>(rng.next_below(nrows)),
          static_cast<index_t>(rng.next_below(ncols)),
          1.0 + rng.next_double());
  }
  t.sort_and_dedup_keep_first();
  return t;
}

// ------------------------------------------------------------------ ELL

TEST(Ell, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  const Ell m = Ell::from_triplets(orig);
  EXPECT_EQ(m.width(), 4u);  // paper matrix: longest row has 4 entries
  test::expect_triplets_eq(orig, m.to_triplets());
}

TEST(Ell, PaddingRepeatsLastColumn) {
  Triplets t(2, 8);
  t.add(0, 3, 1.0);
  t.add(1, 1, 2.0);
  t.add(1, 5, 3.0);
  t.sort_and_combine();
  const Ell m = Ell::from_triplets(t);
  ASSERT_EQ(m.width(), 2u);
  EXPECT_EQ(m.col_ind()[0], 3u);
  EXPECT_EQ(m.col_ind()[1], 3u);  // padding repeats col 3
  EXPECT_DOUBLE_EQ(m.values()[1], 0.0);
}

TEST(Ell, PaddingRatioOnUniformRows) {
  const Triplets t = gen_laplacian_2d(20, 20);
  const Ell m = Ell::from_triplets(t);
  EXPECT_EQ(m.width(), 5u);
  EXPECT_LT(m.padding_ratio(), 1.35);  // mostly interior rows of 5
}

TEST(Ell, WidthGuardRejectsSkew) {
  Triplets t(100, 2000);
  for (index_t c = 0; c < 2000; ++c) {
    t.add(0, c, 1.0);  // one huge row
  }
  for (index_t r = 1; r < 100; ++r) {
    t.add(r, r, 1.0);
  }
  t.sort_and_combine();
  EXPECT_THROW(Ell::from_triplets(t, 8.0), InvalidArgument);
  EXPECT_NO_THROW(Ell::from_triplets(t, 0.0));  // unguarded
}

TEST(Ell, EmptyRowsAndEmptyMatrix) {
  Triplets t(4, 4);
  t.add(2, 1, 5.0);
  t.sort_and_combine();
  test::expect_triplets_eq(t, Ell::from_triplets(t).to_triplets());
  Triplets empty(3, 3);
  const Ell m = Ell::from_triplets(empty);
  EXPECT_EQ(m.width(), 0u);
  EXPECT_TRUE(m.to_triplets().empty());
}

// ------------------------------------------------------------------ DIA

TEST(Dia, RoundTripTridiagonal) {
  Triplets t(6, 6);
  for (index_t i = 0; i < 6; ++i) {
    if (i > 0) {
      t.add(i, i - 1, 1.0);
    }
    t.add(i, i, 2.0);
    if (i + 1 < 6) {
      t.add(i, i + 1, 3.0);
    }
  }
  t.sort_and_combine();
  const Dia m = Dia::from_triplets(t);
  EXPECT_EQ(m.ndiags(), 3u);
  EXPECT_EQ(m.offsets(), (std::vector<std::int64_t>{-1, 0, 1}));
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(Dia, LaplacianHasFiveDiagonals) {
  const Triplets t = gen_laplacian_2d(10, 10);
  const Dia m = Dia::from_triplets(t);
  EXPECT_EQ(m.ndiags(), 5u);  // offsets -10, -1, 0, 1, 10
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(Dia, DiagGuardRejectsScatter) {
  const Triplets t = nonzero_random(200, 200, 2000, 3);
  EXPECT_THROW(Dia::from_triplets(t, 16), InvalidArgument);
  EXPECT_NO_THROW(Dia::from_triplets(t, 0));
}

TEST(Dia, RectangularMatrix) {
  Triplets t(3, 7);
  t.add(0, 5, 1.0);
  t.add(2, 0, 2.0);
  t.add(1, 6, 3.0);
  t.sort_and_combine();
  test::expect_triplets_eq(t, Dia::from_triplets(t).to_triplets());
}

// ------------------------------------------------------------------ JDS

TEST(Jds, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  const Jds m = Jds::from_triplets(orig);
  EXPECT_EQ(m.njdiags(), 4u);  // longest row
  EXPECT_EQ(m.nnz(), orig.nnz());
  test::expect_triplets_eq(orig, m.to_triplets());
}

TEST(Jds, PermSortsRowsByLengthDesc) {
  const Jds m = Jds::from_triplets(test::paper_matrix());
  // Row lengths in Fig 1: 2,3,1,3,3,4 — so perm starts with row 5 (4
  // entries), then the 3-entry rows 1,3,4 in stable order, then 0, then 2.
  EXPECT_EQ(m.perm()[0], 5u);
  EXPECT_EQ(m.perm()[1], 1u);
  EXPECT_EQ(m.perm()[2], 3u);
  EXPECT_EQ(m.perm()[3], 4u);
  EXPECT_EQ(m.perm()[4], 0u);
  EXPECT_EQ(m.perm()[5], 2u);
}

TEST(Jds, JaggedDiagonalsShrinkMonotonically) {
  const Triplets t = nonzero_random(300, 300, 4000, 5);
  const Jds m = Jds::from_triplets(t);
  for (index_t j = 1; j < m.njdiags(); ++j) {
    EXPECT_LE(m.jd_ptr()[j + 1] - m.jd_ptr()[j],
              m.jd_ptr()[j] - m.jd_ptr()[j - 1]);
  }
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(Jds, HandlesEmptyRows) {
  Triplets t(10, 10);
  t.add(3, 2, 1.0);
  t.add(3, 7, 2.0);
  t.add(8, 1, 3.0);
  t.sort_and_combine();
  test::expect_triplets_eq(t, Jds::from_triplets(t).to_triplets());
}

TEST(Jds, EmptyMatrix) {
  Triplets t(5, 5);
  const Jds m = Jds::from_triplets(t);
  EXPECT_EQ(m.njdiags(), 0u);
  EXPECT_TRUE(m.to_triplets().empty());
}

class ClassicFormatsRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ClassicFormatsRoundTrip, RandomMatrices) {
  const Triplets t = nonzero_random(
      1 + static_cast<index_t>(GetParam() * 37 % 150),
      1 + static_cast<index_t>(GetParam() * 53 % 150),
      200 + static_cast<usize_t>(GetParam()) * 111, 1000 + GetParam());
  test::expect_triplets_eq(t, Ell::from_triplets(t).to_triplets());
  test::expect_triplets_eq(t, Dia::from_triplets(t).to_triplets());
  test::expect_triplets_eq(t, Jds::from_triplets(t).to_triplets());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassicFormatsRoundTrip,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace spc
