#include "spc/formats/dcsr.hpp"

#include <gtest/gtest.h>

#include "spc/formats/csr.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(Dcsr, RoundTripPaperMatrix) {
  const Triplets orig = test::paper_matrix();
  test::expect_triplets_eq(orig, Dcsr::from_triplets(orig).to_triplets());
}

TEST(Dcsr, CommandStreamSmallerThanCsrIndices) {
  Rng rng(2);
  const Triplets t = gen_banded(2000, 50, 8, rng, ValueModel::random());
  const Dcsr m = Dcsr::from_triplets(t);
  const Csr csr = Csr::from_triplets(t);
  EXPECT_LT(m.cmd_bytes(), csr.nnz() * 4);
}

TEST(Dcsr, HandlesEmptyRows) {
  Triplets t(200, 200);
  t.add(0, 5, 1.0);
  t.add(150, 8, 2.0);  // row skip of 150 needs chained NEWROW commands
  t.sort_and_combine();
  const Dcsr m = Dcsr::from_triplets(t);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(Dcsr, WideDeltasEscapeToWiderOps) {
  Triplets t(1, 2000000);
  t.add(0, 0, 1.0);
  t.add(0, 100, 1.0);      // u8 group
  t.add(0, 70000, 1.0);    // needs 32-bit delta (69900 > 65535)
  t.add(0, 70010, 1.0);    // back to u8
  t.add(0, 71000, 1.0);    // 16-bit delta
  t.sort_and_combine();
  const Dcsr m = Dcsr::from_triplets(t);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(Dcsr, LongU8RunsSplitAt63) {
  Triplets t(1, 300);
  for (index_t c = 0; c < 200; ++c) {
    t.add(0, c, 1.0);
  }
  t.sort_and_combine();
  const Dcsr m = Dcsr::from_triplets(t);
  test::expect_triplets_eq(t, m.to_triplets());
}

TEST(Dcsr, SlicesPartitionStream) {
  Rng rng(5);
  const Triplets t = test::random_triplets(400, 400, 5000, rng);
  const Dcsr m = Dcsr::from_triplets(t);
  const index_t cuts[] = {0, 77, 200, 400};
  usize_t nnz_total = 0;
  const std::uint8_t* expect_next = m.cmds().data();
  for (std::size_t i = 0; i + 1 < std::size(cuts); ++i) {
    const auto s = m.slice(cuts[i], cuts[i + 1]);
    EXPECT_EQ(s.cmds, expect_next);
    expect_next = s.cmds_end;
    nnz_total += s.nnz;
  }
  EXPECT_EQ(expect_next, m.cmds().data() + m.cmd_bytes());
  EXPECT_EQ(nnz_total, m.nnz());
}

TEST(Dcsr, EmptyMatrix) {
  Triplets t(3, 3);
  const Dcsr m = Dcsr::from_triplets(t);
  EXPECT_EQ(m.cmd_bytes(), 0u);
  EXPECT_TRUE(m.to_triplets().empty());
}

class DcsrRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DcsrRoundTrip, RandomMatrices) {
  Rng rng(700 + GetParam());
  const index_t nrows = 1 + static_cast<index_t>(rng.next_below(300));
  const index_t ncols = 1 + static_cast<index_t>(rng.next_below(200000));
  const Triplets t =
      test::random_triplets(nrows, ncols, rng.next_below(4000), rng);
  test::expect_triplets_eq(t, Dcsr::from_triplets(t).to_triplets());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcsrRoundTrip, ::testing::Range(0, 15));

}  // namespace
}  // namespace spc
