#include "spc/formats/sym_csr.hpp"

#include <gtest/gtest.h>

#include <map>

#include "spc/formats/csr.hpp"
#include "spc/gen/generators.hpp"
#include "spc/spmv/sym_spmv.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

constexpr double kTol = 1e-12;

// Random symmetric matrix with a full non-zero diagonal.
Triplets random_symmetric(index_t n, usize_t offdiag_pairs,
                          std::uint64_t seed) {
  Rng rng(seed);
  Triplets t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0 + rng.next_double());
  }
  for (usize_t k = 0; k < offdiag_pairs; ++k) {
    const auto r = static_cast<index_t>(rng.next_below(n));
    const auto c = static_cast<index_t>(rng.next_below(n));
    if (r == c) {
      continue;
    }
    const value_t v = rng.next_double(-1.0, 1.0);
    t.add(r, c, v);
    t.add(c, r, v);
  }
  t.sort_and_dedup_keep_first();
  // keep-first may break symmetry when duplicate draws collide; re-sym.
  Triplets sym(n, n);
  std::map<std::pair<index_t, index_t>, value_t> seen;
  for (const Entry& e : t.entries()) {
    if (e.row <= e.col) {
      seen[{e.row, e.col}] = e.val;
    }
  }
  for (const auto& [rc, v] : seen) {
    sym.add(rc.first, rc.second, v);
    if (rc.first != rc.second) {
      sym.add(rc.second, rc.first, v);
    }
  }
  sym.sort_and_combine();
  return sym;
}

TEST(SymCsr, ApplicabilityDetection) {
  EXPECT_TRUE(SymCsr::applicable(gen_laplacian_2d(8, 8)));
  EXPECT_FALSE(SymCsr::applicable(test::paper_matrix()));
  Triplets rect(2, 3);
  EXPECT_FALSE(SymCsr::applicable(rect));
}

TEST(SymCsr, RejectsAsymmetricMatrix) {
  EXPECT_THROW(SymCsr::from_triplets(test::paper_matrix()),
               InvalidArgument);
}

TEST(SymCsr, RoundTripLaplacian) {
  const Triplets t = gen_laplacian_2d(12, 9);
  test::expect_triplets_eq(t, SymCsr::from_triplets(t).to_triplets());
}

TEST(SymCsr, HalvesStorageVsCsr) {
  const Triplets t = gen_laplacian_2d(40, 40);
  const SymCsr sym = SymCsr::from_triplets(t);
  const Csr csr = Csr::from_triplets(t);
  // Lower triangle + diagonal ≈ half the entries of the full matrix.
  EXPECT_LT(sym.bytes(), csr.bytes() * 6 / 10);
  EXPECT_EQ(sym.nnz(), t.nnz());
}

TEST(SymCsr, SerialKernelMatchesReference) {
  const Triplets t = random_symmetric(300, 1500, 7);
  Rng xr(8);
  const Vector x = random_vector(300, xr);
  const Vector ref = test::reference_spmv(t, x);
  const SymCsr m = SymCsr::from_triplets(t);
  Vector y(300, -1.0);
  spmv(m, x.data(), y.data());
  EXPECT_LT(rel_error(ref, y), kTol);
}

class SymSpmvMt : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymSpmvMt, MatchesReferenceAcrossThreadCounts) {
  const Triplets t = random_symmetric(400, 2500, 11);
  Rng xr(12);
  const Vector x = random_vector(400, xr);
  const Vector ref = test::reference_spmv(t, x);
  SymSpmv runner(t, GetParam());
  Vector y(400, 0.0);
  runner.run(x, y);
  EXPECT_LT(rel_error(ref, y), kTol);
  // Stability across repeated runs (scratch re-zeroing).
  Vector y2(400, 5.0);
  runner.run(x, y2);
  EXPECT_EQ(max_abs_diff(y, y2), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SymSpmvMt,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(SymSpmv, NumaRepackIsBitIdenticalToOff) {
  // The repacked per-thread slices are verbatim copies and both phases
  // run in the same order, so placement must not change a single bit.
  test::ScopedEnv env("SPC_NUMA", "");  // ctor arg decides, not the env
  const Triplets t = random_symmetric(500, 4000, 17);
  Rng xr(18);
  const Vector x = random_vector(500, xr);

  SymSpmv off(t, 4, /*pin_threads=*/true, NumaPolicy::kOff);
  EXPECT_EQ(off.numa_policy(), NumaPolicy::kOff);
  Vector y_off(500, 0.0);
  off.run(x, y_off);

  SymSpmv local(t, 4, /*pin_threads=*/true, NumaPolicy::kLocal);
  EXPECT_EQ(local.numa_policy(), NumaPolicy::kLocal);
  Vector y_local(500, 0.0);
  local.run(x, y_local);
  EXPECT_EQ(max_abs_diff(y_off, y_local), 0.0);

  // Unpinned runs can't know worker nodes: placement resolves to off.
  SymSpmv unpinned(t, 4, /*pin_threads=*/false, NumaPolicy::kLocal);
  EXPECT_EQ(unpinned.numa_policy(), NumaPolicy::kOff);
  Vector y_unpinned(500, 0.0);
  unpinned.run(x, y_unpinned);
  EXPECT_EQ(max_abs_diff(y_off, y_unpinned), 0.0);
}

TEST(SymSpmv, WorksInsideCg) {
  // The symmetric format inside CG — the §III-C use case end-to-end.
  const Triplets t = gen_laplacian_2d(16, 16);
  SymSpmv A(t, 2);
  Rng rng(13);
  Vector x_true = random_vector(t.nrows(), rng);
  const Vector b = test::reference_spmv(t, x_true);
  // Minimal CG inline via the solver API is tested elsewhere; here just
  // validate repeated operator application drifts nowhere.
  Vector y1(t.nrows(), 0.0), y2(t.nrows(), 0.0);
  A.run(b, y1);
  for (int i = 0; i < 10; ++i) {
    A.run(b, y2);
  }
  EXPECT_EQ(max_abs_diff(y1, y2), 0.0);
}

TEST(SymCsr, EmptyAndDiagonalOnly) {
  Triplets diag_only(5, 5);
  for (index_t i = 0; i < 5; ++i) {
    diag_only.add(i, i, static_cast<value_t>(i + 1));
  }
  diag_only.sort_and_combine();
  const SymCsr m = SymCsr::from_triplets(diag_only);
  EXPECT_EQ(m.values().size(), 0u);
  test::expect_triplets_eq(diag_only, m.to_triplets());
}

}  // namespace
}  // namespace spc
