#include "spc/support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace spc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(a.next_u64());
  }
  a.reseed(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_u64(), first[i]);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL,
                                    1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next_below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespected) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double(-3.5, 2.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.25);
  }
}

TEST(Rng, MeanOfUniformIsAboutHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.next_bernoulli(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[i] = i;
  }
  const std::vector<int> orig = v;
  Rng rng(31);
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0), b(1);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace spc
