#include "spc/support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spc/support/rng.hpp"

namespace spc {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  Rng rng(3);
  std::vector<double> xs;
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) {
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-9);
}

TEST(OnlineStats, TracksMinMax) {
  OnlineStats s;
  s.add(5);
  s.add(-2);
  s.add(9);
  s.add(0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h;
  h.add(1, 3);
  h.add(2);
  h.add(1);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(1), 4u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(9), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.8);
  EXPECT_DOUBLE_EQ(h.fraction(9), 0.0);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Median, OddCount) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(Median, EvenCountAveragesMiddlePair) {
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Median, EmptyIsZero) { EXPECT_DOUBLE_EQ(median({}), 0.0); }

TEST(Median, SingleElement) { EXPECT_DOUBLE_EQ(median({7}), 7.0); }

}  // namespace
}  // namespace spc
