#include "spc/support/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace spc {
namespace {

Topology fake_two_socket_topology() {
  // 2 packages × 2 LLC domains of 2 cpus each = the paper's Clovertown-ish
  // layout scaled to 8 cpus with 4 LLC instances.
  Topology topo;
  topo.llc_bytes = 4ull << 20;
  topo.llc_instances = 4;
  int cpu = 0;
  for (int pkg = 0; pkg < 2; ++pkg) {
    for (int dom = 0; dom < 2; ++dom) {
      const int first = cpu;
      for (int c = 0; c < 2; ++c, ++cpu) {
        CpuInfo info;
        info.cpu_id = cpu;
        info.package_id = pkg;
        info.core_id = cpu;
        info.llc_siblings = {first, first + 1};
        topo.cpus.push_back(info);
      }
    }
  }
  return topo;
}

TEST(Topology, DiscoverReturnsAtLeastOneCpu) {
  const Topology topo = discover_topology();
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.llc_instances, 1u);
  EXPECT_FALSE(describe_topology(topo).empty());
}

TEST(Topology, CloseFirstFillsOneCacheDomainFirst) {
  const Topology topo = fake_two_socket_topology();
  const auto plan = plan_placement(topo, 2, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 2u);
  // Both cpus must share an LLC domain: {0,1} in the fake layout.
  EXPECT_EQ(plan[0], 0);
  EXPECT_EQ(plan[1], 1);
}

TEST(Topology, SpreadPlacesOnDistinctCaches) {
  const Topology topo = fake_two_socket_topology();
  const auto plan = plan_placement(topo, 2, Placement::kSpreadCaches);
  ASSERT_EQ(plan.size(), 2u);
  // First cpus of two different domains.
  EXPECT_EQ(plan[0], 0);
  EXPECT_EQ(plan[1], 2);
}

TEST(Topology, FullMachinePlanCoversAllCpus) {
  const Topology topo = fake_two_socket_topology();
  for (const auto policy :
       {Placement::kCloseFirst, Placement::kSpreadCaches}) {
    const auto plan = plan_placement(topo, 8, policy);
    std::set<int> unique(plan.begin(), plan.end());
    EXPECT_EQ(unique.size(), 8u);
  }
}

TEST(Topology, OversubscriptionWrapsAround) {
  const Topology topo = fake_two_socket_topology();
  const auto plan = plan_placement(topo, 19, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 19u);
  for (const int c : plan) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 8);
  }
}

TEST(Topology, AggregateLlcGrowsWithThreads) {
  const Topology topo = fake_two_socket_topology();
  const std::size_t one = topo.aggregate_llc_bytes(1);
  const std::size_t four = topo.aggregate_llc_bytes(4);
  const std::size_t eight = topo.aggregate_llc_bytes(8);
  EXPECT_EQ(one, 4ull << 20);
  EXPECT_EQ(four, 8ull << 20);
  EXPECT_EQ(eight, 16ull << 20);
}

TEST(Topology, AggregateLlcZeroWhenUnknown) {
  Topology topo;
  EXPECT_EQ(topo.aggregate_llc_bytes(4), 0u);
}

TEST(Topology, PinToCurrentCpuSucceedsOrSoftFails) {
  // Pinning to cpu 0 should normally succeed; in restricted cpusets it may
  // fail, which the API reports rather than throwing.
  const bool ok = pin_thread_to_cpu(0);
  (void)ok;
  SUCCEED();
}

TEST(Topology, EmptyTopologyPlanStillProducesIds) {
  Topology topo;
  const auto plan = plan_placement(topo, 3, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 3u);
}

}  // namespace
}  // namespace spc
