#include "spc/support/topology.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>

namespace spc {
namespace {

namespace fs = std::filesystem;

// Builds fake sysfs trees so the parser can be driven against layouts the
// CI machine doesn't have (2-socket ccNUMA, SMT, flat).
class SysfsFixture {
 public:
  SysfsFixture() {
    root_ = fs::temp_directory_path() /
            ("spc_topo_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~SysfsFixture() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  const std::string root() const { return root_.string(); }

  /// One logical cpu with its package/core ids and LLC sharing list.
  void add_cpu(int cpu, int pkg, int core, const std::string& llc_shared,
               const std::string& llc_size = "4096K") {
    const fs::path cdir =
        root_ / "devices/system/cpu" / ("cpu" + std::to_string(cpu));
    fs::create_directories(cdir / "topology");
    fs::create_directories(cdir / "cache/index0");
    write(cdir / "topology/physical_package_id", std::to_string(pkg));
    write(cdir / "topology/core_id", std::to_string(core));
    write(cdir / "cache/index0/type", "Unified");
    write(cdir / "cache/index0/size", llc_size);
    write(cdir / "cache/index0/shared_cpu_list", llc_shared);
  }

  /// One NUMA node directory with its cpulist and MemTotal (in kB).
  void add_node(int node, const std::string& cpulist,
                std::size_t mem_kb) {
    const fs::path ndir =
        root_ / "devices/system/node" / ("node" + std::to_string(node));
    fs::create_directories(ndir);
    write(ndir / "cpulist", cpulist);
    write(ndir / "meminfo",
          "Node " + std::to_string(node) +
              " MemTotal:       " + std::to_string(mem_kb) + " kB");
  }

 private:
  static void write(const fs::path& p, const std::string& content) {
    std::ofstream f(p);
    f << content << "\n";
  }

  fs::path root_;
  static int counter_;
};

int SysfsFixture::counter_ = 0;

// 2 sockets × 4 cores × 2 SMT threads; the SMT sibling of core (p,c) is
// cpu c+4 within the package block (the usual Linux numbering). One LLC
// and one NUMA node per socket.
void populate_two_socket_numa_smt(SysfsFixture& fx) {
  for (int pkg = 0; pkg < 2; ++pkg) {
    const int base = pkg * 8;
    const std::string llc = std::to_string(base) + "-" +
                            std::to_string(base + 7);
    for (int core = 0; core < 4; ++core) {
      fx.add_cpu(base + core, pkg, core, llc, "8192K");
      fx.add_cpu(base + 4 + core, pkg, core, llc, "8192K");  // SMT sibling
    }
  }
  fx.add_node(0, "0-7", 16 * 1024 * 1024);
  fx.add_node(1, "8-15", 16 * 1024 * 1024);
}

Topology fake_two_socket_topology() {
  // 2 packages × 2 LLC domains of 2 cpus each = the paper's Clovertown-ish
  // layout scaled to 8 cpus with 4 LLC instances.
  Topology topo;
  topo.llc_bytes = 4ull << 20;
  topo.llc_instances = 4;
  int cpu = 0;
  for (int pkg = 0; pkg < 2; ++pkg) {
    for (int dom = 0; dom < 2; ++dom) {
      const int first = cpu;
      for (int c = 0; c < 2; ++c, ++cpu) {
        CpuInfo info;
        info.cpu_id = cpu;
        info.package_id = pkg;
        info.core_id = cpu;
        info.llc_siblings = {first, first + 1};
        topo.cpus.push_back(info);
      }
    }
  }
  return topo;
}

TEST(Topology, DiscoverReturnsAtLeastOneCpu) {
  const Topology topo = discover_topology();
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.llc_instances, 1u);
  EXPECT_FALSE(describe_topology(topo).empty());
}

TEST(Topology, CloseFirstFillsOneCacheDomainFirst) {
  const Topology topo = fake_two_socket_topology();
  const auto plan = plan_placement(topo, 2, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 2u);
  // Both cpus must share an LLC domain: {0,1} in the fake layout.
  EXPECT_EQ(plan[0], 0);
  EXPECT_EQ(plan[1], 1);
}

TEST(Topology, SpreadPlacesOnDistinctCaches) {
  const Topology topo = fake_two_socket_topology();
  const auto plan = plan_placement(topo, 2, Placement::kSpreadCaches);
  ASSERT_EQ(plan.size(), 2u);
  // First cpus of two different domains.
  EXPECT_EQ(plan[0], 0);
  EXPECT_EQ(plan[1], 2);
}

TEST(Topology, FullMachinePlanCoversAllCpus) {
  const Topology topo = fake_two_socket_topology();
  for (const auto policy :
       {Placement::kCloseFirst, Placement::kSpreadCaches}) {
    const auto plan = plan_placement(topo, 8, policy);
    std::set<int> unique(plan.begin(), plan.end());
    EXPECT_EQ(unique.size(), 8u);
  }
}

TEST(Topology, OversubscriptionWrapsAround) {
  const Topology topo = fake_two_socket_topology();
  const auto plan = plan_placement(topo, 19, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 19u);
  for (const int c : plan) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 8);
  }
}

TEST(Topology, AggregateLlcGrowsWithThreads) {
  const Topology topo = fake_two_socket_topology();
  const std::size_t one = topo.aggregate_llc_bytes(1);
  const std::size_t four = topo.aggregate_llc_bytes(4);
  const std::size_t eight = topo.aggregate_llc_bytes(8);
  EXPECT_EQ(one, 4ull << 20);
  EXPECT_EQ(four, 8ull << 20);
  EXPECT_EQ(eight, 16ull << 20);
}

TEST(Topology, AggregateLlcZeroWhenUnknown) {
  Topology topo;
  EXPECT_EQ(topo.aggregate_llc_bytes(4), 0u);
}

TEST(Topology, PinToCurrentCpuSucceedsOrSoftFails) {
  // Pinning to cpu 0 should normally succeed; in restricted cpusets it may
  // fail, which the API reports rather than throwing.
  const bool ok = pin_thread_to_cpu(0);
  (void)ok;
  SUCCEED();
}

TEST(Topology, EmptyTopologyPlanStillProducesIds) {
  Topology topo;
  const auto plan = plan_placement(topo, 3, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 3u);
}

TEST(TopologySysfs, ParsesTwoSocketNumaSmtLayout) {
  SysfsFixture fx;
  populate_two_socket_numa_smt(fx);
  const Topology topo = discover_topology(fx.root());

  ASSERT_EQ(topo.num_cpus(), 16u);
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.llc_instances, 2u);
  EXPECT_EQ(topo.llc_bytes, 8ull << 20);
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_EQ(topo.nodes[0].cpus.size(), 8u);
  EXPECT_EQ(topo.nodes[1].cpus.front(), 8);
  EXPECT_EQ(topo.nodes[0].mem_bytes, 16ull * 1024 * 1024 * 1024);
  EXPECT_EQ(topo.node_of_cpu(3), 0);
  EXPECT_EQ(topo.node_of_cpu(12), 1);
  for (const auto& cpu : topo.cpus) {
    EXPECT_EQ(cpu.node_id, cpu.cpu_id < 8 ? 0 : 1) << cpu.cpu_id;
  }
}

TEST(TopologySysfs, CoresComeBeforeSmtSiblingsInThePlan) {
  // Regression for the SMT satellite: with siblings numbered base+4, a
  // 4-thread close plan must land on the four distinct cores of socket 0
  // — never on a core and its hyperthread.
  SysfsFixture fx;
  populate_two_socket_numa_smt(fx);
  const Topology topo = discover_topology(fx.root());
  const auto plan = plan_placement(topo, 4, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan, (std::vector<int>{0, 1, 2, 3}));
  // 8 threads then take the siblings, still all inside socket 0.
  const auto plan8 = plan_placement(topo, 8, Placement::kCloseFirst);
  const std::set<int> used(plan8.begin(), plan8.end());
  EXPECT_EQ(used, (std::set<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TopologySysfs, SmtAdjacentNumberingStillPrefersDistinctCores) {
  // Same regression with the other common numbering: siblings adjacent
  // (cpu0/1 = core0, cpu2/3 = core1). The pre-fix planner, which only
  // looked at cache domains, would pick {0, 1} here.
  SysfsFixture fx;
  fx.add_cpu(0, 0, 0, "0-3");
  fx.add_cpu(1, 0, 0, "0-3");
  fx.add_cpu(2, 0, 1, "0-3");
  fx.add_cpu(3, 0, 1, "0-3");
  const Topology topo = discover_topology(fx.root());
  const auto plan = plan_placement(topo, 2, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan, (std::vector<int>{0, 2}));
}

TEST(TopologySysfs, CloseFillsOneNodeBeforeTheOther) {
  SysfsFixture fx;
  populate_two_socket_numa_smt(fx);
  const Topology topo = discover_topology(fx.root());
  const auto plan = plan_placement(topo, 10, Placement::kCloseFirst);
  ASSERT_EQ(plan.size(), 10u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(topo.node_of_cpu(plan[i]), 0) << i;
  }
  EXPECT_EQ(topo.node_of_cpu(plan[8]), 1);
}

TEST(TopologySysfs, SpreadAlternatesNodes) {
  SysfsFixture fx;
  populate_two_socket_numa_smt(fx);
  const Topology topo = discover_topology(fx.root());
  const auto plan = plan_placement(topo, 2, Placement::kSpreadCaches);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(topo.node_of_cpu(plan[0]), 0);
  EXPECT_EQ(topo.node_of_cpu(plan[1]), 1);
}

TEST(TopologySysfs, FlatLayoutWithoutNodeDirIsOneNode) {
  SysfsFixture fx;
  for (int c = 0; c < 4; ++c) {
    fx.add_cpu(c, 0, c, "0-3");
  }
  const Topology topo = discover_topology(fx.root());
  EXPECT_EQ(topo.num_cpus(), 4u);
  EXPECT_EQ(topo.num_nodes(), 1u);
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_EQ(topo.nodes[0].cpus.size(), 4u);
  for (const auto& cpu : topo.cpus) {
    EXPECT_EQ(cpu.node_id, 0);
  }
}

TEST(TopologySysfs, MissingRootFallsBackToFlatModel) {
  const Topology topo = discover_topology("/nonexistent-sysfs-root");
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_EQ(topo.num_nodes(), 1u);
}

TEST(Topology, PlacementNames) {
  EXPECT_EQ(placement_name(Placement::kCloseFirst), "close");
  EXPECT_EQ(placement_name(Placement::kSpreadCaches), "spread");
}

}  // namespace
}  // namespace spc
