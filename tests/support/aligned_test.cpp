#include "spc/support/aligned.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

namespace spc {
namespace {

TEST(AlignedVector, DataIsCacheLineAligned) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u, 4097u}) {
    aligned_vector<double> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes,
              0u)
        << "n=" << n;
  }
}

TEST(AlignedVector, WorksForByteElements) {
  aligned_vector<std::uint8_t> v(123, 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes,
            0u);
  for (const auto b : v) {
    EXPECT_EQ(b, 7);
  }
}

TEST(AlignedVector, GrowsAndPreservesContents) {
  aligned_vector<int> v;
  for (int i = 0; i < 10000; ++i) {
    v.push_back(i);
  }
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(v[i], i);
  }
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes,
            0u);
}

TEST(AlignedVector, CopyAndMove) {
  aligned_vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  aligned_vector<int> copy = v;
  EXPECT_EQ(copy, v);
  aligned_vector<int> moved = std::move(copy);
  EXPECT_EQ(moved, v);
}

TEST(AlignedAllocator, EqualityIsStateless) {
  AlignedAllocator<int> a, b;
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace spc
