#include "spc/support/timing.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace spc {
namespace {

TEST(Timing, NowIsMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Timing, TimerMeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.elapsed_ms();
  EXPECT_GE(ms, 15.0);   // scheduler slack downward
  EXPECT_LT(ms, 2000.0); // and a generous upper bound
}

TEST(Timing, RestartResetsTheClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.restart();
  EXPECT_LT(t.elapsed_ms(), 10.0);
}

TEST(Timing, UnitConversionsAgree) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = t.elapsed_s();
  const double ms = t.elapsed_ms();
  // elapsed_ms read slightly later; they must agree to within a few ms.
  EXPECT_NEAR(ms, s * 1e3, 5.0);
}

}  // namespace
}  // namespace spc
