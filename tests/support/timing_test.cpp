#include "spc/support/timing.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "spc/obs/metrics.hpp"

namespace spc {
namespace {

TEST(Timing, NowIsMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Timing, TimerMeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.elapsed_ms();
  EXPECT_GE(ms, 15.0);   // scheduler slack downward
  EXPECT_LT(ms, 2000.0); // and a generous upper bound
}

TEST(Timing, RestartResetsTheClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.restart();
  EXPECT_LT(t.elapsed_ms(), 10.0);
}

TEST(Timing, UnitConversionsAgree) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = t.elapsed_s();
  const double ms = t.elapsed_ms();
  // elapsed_ms read slightly later; they must agree to within a few ms.
  EXPECT_NEAR(ms, s * 1e3, 5.0);
}

TEST(Timing, ElapsedSaturatesInsteadOfWrapping) {
  // A start stamp in the far future must clamp to zero, not wrap the
  // unsigned subtraction to ~2^64 ns.
  const Timer t = Timer::started_at(~std::uint64_t{0});
  EXPECT_EQ(t.elapsed_ns(), 0u);
  EXPECT_DOUBLE_EQ(t.elapsed_s(), 0.0);

  const Timer near_future = Timer::started_at(now_ns() + 3'600'000'000'000ull);
  EXPECT_EQ(near_future.elapsed_ns(), 0u);
}

TEST(Timing, RestartAfterInjectedFutureStartRecovers) {
  Timer t = Timer::started_at(~std::uint64_t{0});
  t.restart();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(t.elapsed_ns(), 0u);
}

TEST(Timing, ScopedTimerFeedsAnyRecordSink) {
  struct VecSink {
    std::vector<std::uint64_t> samples;
    void record(std::uint64_t ns) { samples.push_back(ns); }
  };
  VecSink sink;
  {
    ScopedTimer timed(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(sink.samples.empty());  // records on scope exit only
  }
  ASSERT_EQ(sink.samples.size(), 1u);
  EXPECT_GE(sink.samples[0], 1'000'000u);  // >= ~1 ms despite slack
}

TEST(Timing, ScopedTimerFeedsRegistryHistogram) {
  obs::LatencyHisto& h =
      obs::Registry::global().histogram("spc.test.timing.scoped_ns");
  const std::uint64_t before = h.count();
  {
    ScopedTimer timed(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(h.count(), before + 1);
  EXPECT_GT(h.sum_ns(), 0u);
}

}  // namespace
}  // namespace spc
