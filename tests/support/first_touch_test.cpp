// NumaPolicy parsing/resolution and the FirstTouchArena lifecycle.
//
// Placement itself (which node a page lands on) is hardware-dependent and
// checked best-effort by query_page_nodes; what must hold everywhere is
// the reserve → allocate → first_touch → copy protocol: alignment,
// page rounding, zero-fill, and graceful residency degradation.
#include "spc/support/first_touch.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "spc/support/error.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

TEST(NumaPolicy, NamesRoundTrip) {
  for (const NumaPolicy p :
       {NumaPolicy::kAuto, NumaPolicy::kOff, NumaPolicy::kLocal,
        NumaPolicy::kReplicate, NumaPolicy::kInterleave}) {
    NumaPolicy parsed = NumaPolicy::kAuto;
    ASSERT_TRUE(parse_numa_policy(numa_policy_name(p), &parsed))
        << numa_policy_name(p);
    EXPECT_EQ(parsed, p);
  }
}

TEST(NumaPolicy, ParseAcceptsAliases) {
  NumaPolicy p = NumaPolicy::kAuto;
  EXPECT_TRUE(parse_numa_policy("interleave", &p));
  EXPECT_EQ(p, NumaPolicy::kInterleave);
  EXPECT_TRUE(parse_numa_policy("first-touch", &p));
  EXPECT_EQ(p, NumaPolicy::kLocal);
  EXPECT_TRUE(parse_numa_policy("none", &p));
  EXPECT_EQ(p, NumaPolicy::kOff);
  EXPECT_TRUE(parse_numa_policy("REPLICATE", &p));
  EXPECT_EQ(p, NumaPolicy::kReplicate);
}

TEST(NumaPolicy, ParseRejectsUnknownLeavingOutputUntouched) {
  NumaPolicy p = NumaPolicy::kReplicate;
  EXPECT_FALSE(parse_numa_policy("sideways", &p));
  EXPECT_EQ(p, NumaPolicy::kReplicate);
}

TEST(NumaPolicy, EnvOverridesFallback) {
  test::ScopedEnv env("SPC_NUMA", "local");
  EXPECT_EQ(numa_policy_from_env(NumaPolicy::kOff), NumaPolicy::kLocal);
}

TEST(NumaPolicy, BadEnvValueKeepsFallback) {
  test::ScopedEnv env("SPC_NUMA", "definitely-not-a-policy");
  EXPECT_EQ(numa_policy_from_env(NumaPolicy::kReplicate),
            NumaPolicy::kReplicate);
}

TEST(NumaPolicy, AutoResolvesByNodeCount) {
  EXPECT_EQ(resolve_numa_policy(NumaPolicy::kAuto, 1), NumaPolicy::kOff);
  EXPECT_EQ(resolve_numa_policy(NumaPolicy::kAuto, 2), NumaPolicy::kLocal);
  // Explicit policies pass through even on flat machines — the
  // single-node CI legs rely on replicate still exercising the repack.
  EXPECT_EQ(resolve_numa_policy(NumaPolicy::kReplicate, 1),
            NumaPolicy::kReplicate);
  EXPECT_EQ(resolve_numa_policy(NumaPolicy::kOff, 4), NumaPolicy::kOff);
}

TEST(RebasePtr, AbsoluteIndexingLandsInSlice) {
  double local[4] = {10.0, 11.0, 12.0, 13.0};
  // A slice storing absolute positions [100, 104).
  double* rebased = rebase_ptr(local, 100);
  EXPECT_EQ(rebased[100], 10.0);
  EXPECT_EQ(rebased[103], 13.0);
  EXPECT_EQ(&rebased[100], &local[0]);
}

TEST(FirstTouchArena, ReservationsAreCacheLineAligned) {
  FirstTouchArena arena(1);
  const auto a = arena.reserve<char>(0, 3);
  const auto b = arena.reserve<double>(0, 5);
  EXPECT_EQ(a.offset % kCacheLineBytes, 0u);
  EXPECT_EQ(b.offset % kCacheLineBytes, 0u);
  EXPECT_GE(b.offset, 3u);
}

TEST(FirstTouchArena, ProtocolProducesWritableZeroedBlocks) {
  FirstTouchArena arena(2);
  const auto h0 = arena.reserve<int>(0, 100);
  const auto h1 = arena.reserve<double>(1, 50);
  EXPECT_FALSE(arena.allocated());
  arena.allocate();
  EXPECT_TRUE(arena.allocated());
  arena.allocate();  // idempotent

  arena.first_touch(0);
  arena.first_touch(1);
  int* p0 = arena.data<int>(h0);
  double* p1 = arena.data<double>(h1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(p0[i], 0) << i;
  }
  p0[7] = 42;
  p1[3] = 2.5;
  EXPECT_EQ(arena.data<int>(h0)[7], 42);
  EXPECT_EQ(arena.data<double>(h1)[3], 2.5);
}

TEST(FirstTouchArena, BlockSizesArePageRounded) {
  FirstTouchArena arena(2);
  arena.reserve<char>(0, 1);
  // Block 1 left empty on purpose.
  arena.allocate();
  EXPECT_GE(arena.block_bytes(0), 4096u);
  EXPECT_EQ(arena.block_bytes(0) % 4096u, 0u);
  EXPECT_EQ(arena.block_bytes(1), 0u);
  EXPECT_EQ(arena.block_base(1), nullptr);
  EXPECT_EQ(arena.total_bytes(), arena.block_bytes(0));
}

TEST(FirstTouchArena, InterleavedTouchZeroesEveryPart) {
  FirstTouchArena arena(1);
  const auto h = arena.reserve<char>(0, 3 * 4096 + 17);
  arena.allocate();
  // All parts together must cover the whole block.
  arena.first_touch_interleaved(0, 0, 2);
  arena.first_touch_interleaved(0, 1, 2);
  const char* p = arena.data<char>(h);
  for (std::size_t i = 0; i < 3 * 4096 + 17; ++i) {
    ASSERT_EQ(p[i], 0) << i;
  }
}

TEST(FirstTouchArena, ReserveAfterAllocateThrows) {
  FirstTouchArena arena(1);
  arena.reserve<int>(0, 1);
  arena.allocate();
  EXPECT_THROW(arena.reserve<int>(0, 1), Error);
  EXPECT_THROW(arena.first_touch(9), Error);
}

TEST(QueryPageNodes, TouchedBufferReportsNodesOrReason) {
  std::vector<char> buf(256 * 1024, 1);  // touched → resident
  std::vector<int> nodes;
  std::string reason;
  const bool ok =
      query_page_nodes(buf.data(), buf.size(), 16, &nodes, &reason);
  if (ok) {
    EXPECT_FALSE(nodes.empty());
    EXPECT_LE(nodes.size(), 16u);
    for (const int n : nodes) {
      EXPECT_GE(n, 0);
    }
  } else {
    // Kernel without move_pages (or seccomp): degrade with a reason.
    EXPECT_FALSE(reason.empty());
  }
}

TEST(QueryPageNodes, EmptyRangeFailsGracefully) {
  std::vector<int> nodes;
  std::string reason;
  EXPECT_FALSE(query_page_nodes(nullptr, 0, 8, &nodes, &reason));
  EXPECT_FALSE(reason.empty());
}

}  // namespace
}  // namespace spc
