#include "spc/support/varint.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "spc/support/rng.hpp"

namespace spc {
namespace {

TEST(Varint, EncodesSmallValuesInOneByte) {
  for (std::uint64_t v = 0; v < 128; ++v) {
    std::vector<std::uint8_t> buf;
    EXPECT_EQ(varint_encode(v, buf), 1);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0], v);
  }
}

TEST(Varint, KnownEncodings) {
  std::vector<std::uint8_t> buf;
  varint_encode(300, buf);  // 0b1010_1100 0b0000_0010
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xAC);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(Varint, SizeMatchesEncode) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_below(64));
    std::vector<std::uint8_t> buf;
    const int n = varint_encode(v, buf);
    EXPECT_EQ(n, varint_size(v));
    EXPECT_EQ(buf.size(), static_cast<std::size_t>(n));
  }
}

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t cases[] = {
      0,         1,          127,        128,        255,
      256,       16383,      16384,      (1ULL << 21) - 1,
      1ULL << 21, 1ULL << 32, (1ULL << 56) - 1,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    std::vector<std::uint8_t> buf;
    varint_encode(v, buf);
    const std::uint8_t* p = buf.data();
    EXPECT_EQ(varint_decode(p), v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(Varint, RoundTripRandomStream) {
  Rng rng(42);
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_u64() >> rng.next_below(64);
    values.push_back(v);
    varint_encode(v, buf);
  }
  const std::uint8_t* p = buf.data();
  for (const std::uint64_t v : values) {
    EXPECT_EQ(varint_decode(p), v);
  }
  EXPECT_EQ(p, buf.data() + buf.size());
}

TEST(Varint, CheckedDecodeAcceptsExactBuffer) {
  std::vector<std::uint8_t> buf;
  varint_encode(1234567, buf);
  const std::uint8_t* p = buf.data();
  EXPECT_EQ(varint_decode_checked(p, buf.data() + buf.size()), 1234567u);
}

TEST(Varint, CheckedDecodeRejectsTruncation) {
  std::vector<std::uint8_t> buf;
  varint_encode(1ULL << 40, buf);
  for (std::size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    const std::uint8_t* p = buf.data();
    EXPECT_THROW(varint_decode_checked(p, buf.data() + cut), ParseError)
        << "cut at " << cut;
  }
}

TEST(Varint, CheckedDecodeRejectsOverlongEncoding) {
  // 11 continuation bytes can never be a valid 64-bit varint.
  std::vector<std::uint8_t> buf(11, 0x80);
  buf.push_back(0x01);
  const std::uint8_t* p = buf.data();
  EXPECT_THROW(varint_decode_checked(p, buf.data() + buf.size()),
               ParseError);
}

TEST(Varint, CheckedDecodeRejects65BitValue) {
  // Ten bytes whose top byte pushes past 64 bits.
  std::vector<std::uint8_t> buf(9, 0xFF);
  buf.push_back(0x7F);  // would need bits >= 64
  const std::uint8_t* p = buf.data();
  EXPECT_THROW(varint_decode_checked(p, buf.data() + buf.size()),
               ParseError);
}

TEST(ZigZag, RoundTrip) {
  const std::int64_t cases[] = {0, -1, 1, -2, 2, 1000, -1000,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(ZigZag, SmallMagnitudesStaySmall) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

class VarintWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(VarintWidthSweep, EncodedSizeIsCeilBitsOver7) {
  const int bits = GetParam();
  const std::uint64_t v = bits == 0 ? 0 : (1ULL << (bits - 1));
  const int expected = bits == 0 ? 1 : (bits + 6) / 7;
  EXPECT_EQ(varint_size(v), expected);
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, VarintWidthSweep,
                         ::testing::Range(0, 64));

}  // namespace
}  // namespace spc
