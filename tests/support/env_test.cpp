// Tests for the shared SPC_* environment access helpers: parse
// semantics (unset/empty/garbage), and the once-per-variable-name
// diagnostic ledger.
//
// Variable names are unique per assertion where the warn ledger matters:
// env_warn_once is once per name for the whole process, so a name reused
// across tests would make outcomes order-dependent.
#include "spc/support/env.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace spc {
namespace {

TEST(EnvStr, UnsetAndEmptyReadAsNotConfigured) {
  ::unsetenv("SPC_TEST_STR_A");
  EXPECT_FALSE(env_str("SPC_TEST_STR_A").has_value());
  test::ScopedEnv empty("SPC_TEST_STR_A", "");
  EXPECT_FALSE(env_str("SPC_TEST_STR_A").has_value());
}

TEST(EnvStr, ReturnsValueVerbatim) {
  test::ScopedEnv v("SPC_TEST_STR_B", "  spaced value ");
  ASSERT_TRUE(env_str("SPC_TEST_STR_B").has_value());
  EXPECT_EQ(*env_str("SPC_TEST_STR_B"), "  spaced value ");
}

TEST(EnvU64, ParsesDecimal) {
  test::ScopedEnv v("SPC_TEST_U64_A", "42");
  EXPECT_EQ(env_u64("SPC_TEST_U64_A"), 42u);
  test::ScopedEnv z("SPC_TEST_U64_B", "0");
  EXPECT_EQ(env_u64("SPC_TEST_U64_B"), 0u);
}

TEST(EnvU64, RejectsNegativeGarbageAndOverflow) {
  {
    test::ScopedEnv v("SPC_TEST_U64_NEG", "-3");
    EXPECT_FALSE(env_u64("SPC_TEST_U64_NEG").has_value());
  }
  {
    test::ScopedEnv v("SPC_TEST_U64_GARBAGE", "abc");
    EXPECT_FALSE(env_u64("SPC_TEST_U64_GARBAGE").has_value());
  }
  {
    test::ScopedEnv v("SPC_TEST_U64_TRAIL", "12x");
    EXPECT_FALSE(env_u64("SPC_TEST_U64_TRAIL").has_value());
  }
  {
    test::ScopedEnv v("SPC_TEST_U64_OVER", "99999999999999999999999");
    EXPECT_FALSE(env_u64("SPC_TEST_U64_OVER").has_value());
  }
}

TEST(EnvDouble, ParsesFiniteRejectsTheRest) {
  {
    test::ScopedEnv v("SPC_TEST_DBL_A", "1.5");
    EXPECT_DOUBLE_EQ(env_double("SPC_TEST_DBL_A").value(), 1.5);
  }
  {
    test::ScopedEnv v("SPC_TEST_DBL_B", "1e3");
    EXPECT_DOUBLE_EQ(env_double("SPC_TEST_DBL_B").value(), 1000.0);
  }
  {
    test::ScopedEnv v("SPC_TEST_DBL_NAN", "nan");
    EXPECT_FALSE(env_double("SPC_TEST_DBL_NAN").has_value());
  }
  {
    test::ScopedEnv v("SPC_TEST_DBL_INF", "inf");
    EXPECT_FALSE(env_double("SPC_TEST_DBL_INF").has_value());
  }
  {
    test::ScopedEnv v("SPC_TEST_DBL_GARBAGE", "fast");
    EXPECT_FALSE(env_double("SPC_TEST_DBL_GARBAGE").has_value());
  }
}

TEST(EnvFlag, AcceptedSpellings) {
  const char* truthy[] = {"1", "true", "on", "yes", "TRUE", "On", "YES"};
  for (const char* s : truthy) {
    test::ScopedEnv v("SPC_TEST_FLAG_T", s);
    EXPECT_EQ(env_flag("SPC_TEST_FLAG_T"), true) << s;
  }
  const char* falsy[] = {"0", "false", "off", "no", "FALSE", "Off", "NO"};
  for (const char* s : falsy) {
    test::ScopedEnv v("SPC_TEST_FLAG_F", s);
    EXPECT_EQ(env_flag("SPC_TEST_FLAG_F"), false) << s;
  }
  test::ScopedEnv v("SPC_TEST_FLAG_BAD", "maybe");
  EXPECT_FALSE(env_flag("SPC_TEST_FLAG_BAD").has_value());
  ::unsetenv("SPC_TEST_FLAG_UNSET");
  EXPECT_FALSE(env_flag("SPC_TEST_FLAG_UNSET").has_value());
}

TEST(EnvWarnOnce, FirstCallPerNamePrintsLaterCallsAreSilent) {
  EXPECT_TRUE(env_warn_once("SPC_TEST_WARN_A", "junk", "a number"));
  EXPECT_FALSE(env_warn_once("SPC_TEST_WARN_A", "junk", "a number"));
  EXPECT_FALSE(env_warn_once("SPC_TEST_WARN_A", "other-junk", "a number"));
  // A different variable gets its own first warning.
  EXPECT_TRUE(env_warn_once("SPC_TEST_WARN_B", "junk", "a number"));
}

TEST(EnvU64, WarnsExactlyOncePerName) {
  // The parse failure above warns through the same ledger: the first
  // bad read printed, so a manual warn for that name is now silent.
  {
    test::ScopedEnv v("SPC_TEST_U64_ONCE", "bogus");
    EXPECT_FALSE(env_u64("SPC_TEST_U64_ONCE").has_value());
  }
  EXPECT_FALSE(
      env_warn_once("SPC_TEST_U64_ONCE", "bogus", "a non-negative integer"));
}

}  // namespace
}  // namespace spc
