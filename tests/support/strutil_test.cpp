#include "spc/support/strutil.hpp"

#include <gtest/gtest.h>

#include "spc/support/error.hpp"

namespace spc {
namespace {

TEST(HumanBytes, SmallValuesInBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(999), "999 B");
}

TEST(HumanBytes, ScalesUnits) {
  EXPECT_EQ(human_bytes(1000), "1.0 KB");
  EXPECT_EQ(human_bytes(1500000), "1.5 MB");
  EXPECT_EQ(human_bytes(17ull << 20), "17.8 MB");
  EXPECT_EQ(human_bytes(3ull * 1000 * 1000 * 1000), "3.0 GB");
}

TEST(FmtFixed, RespectsDigits) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(3.14159, 0), "3");
  EXPECT_EQ(fmt_fixed(-1.005, 1), "-1.0");
}

TEST(SplitWs, SplitsOnAnyWhitespace) {
  const auto tok = split_ws("  a\tbb \n ccc ");
  ASSERT_EQ(tok.size(), 3u);
  EXPECT_EQ(tok[0], "a");
  EXPECT_EQ(tok[1], "bb");
  EXPECT_EQ(tok[2], "ccc");
}

TEST(SplitWs, EmptyInput) { EXPECT_TRUE(split_ws("   ").empty()); }

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MatrixMarket CSR-DU"), "matrixmarket csr-du");
}

TEST(CheckMacro, ThrowsWithExpressionText) {
  try {
    SPC_CHECK_MSG(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(CheckMacro, PassesQuietly) {
  EXPECT_NO_THROW(SPC_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace spc
