#include "spc/parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "spc/support/error.hpp"

namespace spc {
namespace {

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t tid) { hits[tid]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, TidsAreDistinctAndInRange) {
  ThreadPool pool(6);
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.run([&](std::size_t tid) {
    std::lock_guard<std::mutex> lk(mu);
    seen.insert(tid);
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.rbegin(), 5u);
}

TEST(ThreadPool, ManySequentialDispatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.run([&](std::size_t) { counter++; });
  }
  EXPECT_EQ(counter.load(), 1500);
}

TEST(ThreadPool, WorkIsActuallyConcurrentlyDispatched) {
  // All workers must enter the job before any can leave: a barrier
  // implemented with atomics would deadlock if the pool serialized jobs.
  constexpr std::size_t kN = 4;
  ThreadPool pool(kN);
  std::atomic<std::size_t> arrived{0};
  pool.run([&](std::size_t) {
    arrived++;
    while (arrived.load() < kN) {
      std::this_thread::yield();
    }
  });
  EXPECT_EQ(arrived.load(), kN);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([&](std::size_t tid) {
                 if (tid == 2) {
                   throw Error("boom");
                 }
               }),
               Error);
  // Pool must stay usable after an exception.
  std::atomic<int> counter{0};
  pool.run([&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPool, RawCallablePathRunsEveryWorker) {
  // The non-allocating dispatch primitive: plain function pointer plus
  // context, no std::function anywhere.
  ThreadPool pool(4);
  struct Ctx {
    std::atomic<int> hits[4];
  } ctx;
  for (auto& h : ctx.hits) {
    h.store(0);
  }
  pool.run(
      [](void* c, std::size_t tid) {
        static_cast<Ctx*>(c)->hits[tid].fetch_add(1);
      },
      &ctx);
  for (const auto& h : ctx.hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RawCallablePropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run(
                   [](void*, std::size_t tid) {
                     if (tid == 1) {
                       throw Error("raw boom");
                     }
                   },
                   nullptr),
               Error);
  std::atomic<int> counter{0};
  pool.run([](void* c, std::size_t) { static_cast<std::atomic<int>*>(c)->fetch_add(1); },
           &counter);
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, RawAndFunctionDispatchesInterleave) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.run([&](std::size_t) { counter++; });
    pool.run([](void* c, std::size_t) { static_cast<std::atomic<int>*>(c)->fetch_add(1); },
             &counter);
  }
  EXPECT_EQ(counter.load(), 400);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  int value = 0;
  pool.run([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), Error);
}

TEST(ThreadPool, PinningPlanAccepted) {
  // Pin all workers to cpu 0 (always present). Pinning may soft-fail in
  // restricted environments; fully_pinned() reports it either way.
  ThreadPool pool(2, {0, 0});
  std::atomic<int> counter{0};
  pool.run([&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 2);
  (void)pool.fully_pinned();
}

TEST(ThreadPool, OversizedPlanWraps) {
  ThreadPool pool(5, {0});
  std::atomic<int> counter{0};
  pool.run([&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPool, ReportsWorkerCpusAndSharedPins) {
  // Plan shorter than the pool wraps modulo its size; that must be
  // visible (workers 1..4 share cpu 0 with worker 0), not silent.
  ThreadPool pool(5, {0});
  ASSERT_EQ(pool.worker_cpus().size(), 5u);
  for (const int c : pool.worker_cpus()) {
    EXPECT_EQ(c, 0);
  }
  EXPECT_EQ(pool.shared_cpu_workers(), 4u);
}

TEST(ThreadPool, DuplicatePlanEntriesCountAsShared) {
  ThreadPool pool(2, {0, 0});
  EXPECT_EQ(pool.worker_cpus(), (std::vector<int>{0, 0}));
  EXPECT_EQ(pool.shared_cpu_workers(), 1u);
}

TEST(ThreadPool, DistinctPlanHasNoSharedPins) {
  ThreadPool pool(2, {0, 1});
  EXPECT_EQ(pool.worker_cpus(), (std::vector<int>{0, 1}));
  EXPECT_EQ(pool.shared_cpu_workers(), 0u);
}

TEST(ThreadPool, UnpinnedPoolReportsNoCpusAndNoSharing) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_cpus(), (std::vector<int>{-1, -1, -1}));
  EXPECT_EQ(pool.shared_cpu_workers(), 0u);
}

TEST(ThreadPool, DestructionWithoutRunIsClean) {
  ThreadPool pool(8);
  SUCCEED();
}

TEST(ThreadPool, RepeatedExceptionsNeitherDeadlockNorPoisonThePool) {
  // Regression: every worker throws, many times in a row. Each run()
  // must propagate one exception ("first wins") and leave the pool in a
  // dispatchable state — a lost notify or a stuck generation would hang
  // this loop long before 50 iterations.
  ThreadPool pool(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW(
        pool.run([&](std::size_t tid) {
          throw Error("boom " + std::to_string(tid));
        }),
        Error);
    std::atomic<int> counter{0};
    pool.run([&](std::size_t) { counter++; });
    EXPECT_EQ(counter.load(), 4);
  }
}

TEST(ThreadPool, BusyTimeIsAccountedPerWorker) {
  ThreadPool pool(2);
  pool.busy_reset();
  EXPECT_DOUBLE_EQ(pool.last_imbalance(), 0.0);  // no run yet
  pool.run([](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  for (std::size_t t = 0; t < pool.size(); ++t) {
    EXPECT_GT(pool.last_busy_ns(t), 0u);
    EXPECT_EQ(pool.total_busy_ns(t), pool.last_busy_ns(t));
  }
  EXPECT_GE(pool.last_imbalance(), 1.0);

  // Totals accumulate across runs; last_busy_ns tracks only the latest.
  pool.run([](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  for (std::size_t t = 0; t < pool.size(); ++t) {
    EXPECT_GT(pool.total_busy_ns(t), pool.last_busy_ns(t));
  }
  EXPECT_GE(pool.total_imbalance(), 1.0);

  pool.busy_reset();
  EXPECT_EQ(pool.total_busy_ns(0), 0u);
  EXPECT_DOUBLE_EQ(pool.total_imbalance(), 0.0);
}

TEST(ThreadPool, ImbalanceReflectsSkewedWork) {
  // Worker 0 does ~20x the work of worker 1: max/mean must land well
  // above 1 (perfectly balanced) even with scheduler slack.
  ThreadPool pool(2);
  pool.busy_reset();
  pool.run([](std::size_t tid) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(tid == 0 ? 40 : 2));
  });
  EXPECT_GT(pool.last_imbalance(), 1.2);
  EXPECT_LE(pool.last_imbalance(), 2.0);  // max/mean with 2 workers caps at 2
}

TEST(ThreadPool, CounterControlIsSafeWhateverThePlatformAllows) {
  // On locked-down machines (perf_event_paranoid, seccomp) counters are
  // unavailable; either way the control surface must be callable and
  // self-consistent.
  ThreadPool pool(2);
  pool.counters_start();
  pool.run([](std::size_t) {});
  const obs::CounterReadings r = pool.counters_stop();
  EXPECT_EQ(r.available, pool.counters_available());
  if (!r.available) {
    EXPECT_FALSE(r.reason.empty());
    EXPECT_EQ(pool.counters_reason(), r.reason);
  } else {
    EXPECT_GT(r.cycles, 0u);
  }
}


TEST(ThreadPool, ConcurrentCallersSerializeWithoutLossOrDeadlock) {
  ThreadPool pool(2);
  constexpr int kCallers = 8;
  constexpr int kRunsEach = 25;
  std::atomic<int> executions{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < kRunsEach; ++i) {
        pool.run([&](std::size_t) {
          executions.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  // Every dispatch ran on every worker exactly once.
  EXPECT_EQ(executions.load(),
            kCallers * kRunsEach * static_cast<int>(pool.size()));
  EXPECT_EQ(pool.dispatch_count(),
            static_cast<std::uint64_t>(kCallers * kRunsEach));
  EXPECT_FALSE(pool.busy());
}

TEST(ThreadPool, ConcurrentCallerExceptionsReachTheirOwnCaller) {
  ThreadPool pool(2);
  std::atomic<int> caught{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int i = 0; i < 10; ++i) {
        try {
          pool.run([&](std::size_t tid) {
            if (c % 2 == 0 && tid == 0) {
              throw Error("boom");
            }
          });
        } catch (const Error&) {
          caught.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  // The two throwing callers each saw all 10 of their exceptions; the
  // clean callers saw none (a worker exception must not leak into a
  // different caller's dispatch).
  EXPECT_EQ(caught.load(), 20);
}

TEST(ThreadPool, TryRunReportsSaturationAndRunsWhenIdle) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<bool> occupying{false};
  std::thread occupier([&] {
    pool.run([&](std::size_t) {
      occupying.store(true);
      while (!release.load()) {
        std::this_thread::yield();
      }
    });
  });
  while (!occupying.load()) {
    std::this_thread::yield();
  }
  // Pool is mid-dispatch: try_run must refuse without blocking.
  std::atomic<int> ran{0};
  auto job = [](void* ctx, std::size_t) {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1);
  };
  EXPECT_FALSE(pool.try_run(job, &ran));
  EXPECT_TRUE(pool.busy());
  EXPECT_EQ(ran.load(), 0);
  release.store(true);
  occupier.join();
  // Idle again: try_run dispatches and blocks to completion.
  EXPECT_TRUE(pool.try_run(job, &ran));
  EXPECT_EQ(ran.load(), static_cast<int>(pool.size()));
  EXPECT_FALSE(pool.busy());
}

}  // namespace
}  // namespace spc
