#include "spc/parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "spc/support/error.hpp"

namespace spc {
namespace {

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t tid) { hits[tid]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, TidsAreDistinctAndInRange) {
  ThreadPool pool(6);
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.run([&](std::size_t tid) {
    std::lock_guard<std::mutex> lk(mu);
    seen.insert(tid);
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.rbegin(), 5u);
}

TEST(ThreadPool, ManySequentialDispatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.run([&](std::size_t) { counter++; });
  }
  EXPECT_EQ(counter.load(), 1500);
}

TEST(ThreadPool, WorkIsActuallyConcurrentlyDispatched) {
  // All workers must enter the job before any can leave: a barrier
  // implemented with atomics would deadlock if the pool serialized jobs.
  constexpr std::size_t kN = 4;
  ThreadPool pool(kN);
  std::atomic<std::size_t> arrived{0};
  pool.run([&](std::size_t) {
    arrived++;
    while (arrived.load() < kN) {
      std::this_thread::yield();
    }
  });
  EXPECT_EQ(arrived.load(), kN);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([&](std::size_t tid) {
                 if (tid == 2) {
                   throw Error("boom");
                 }
               }),
               Error);
  // Pool must stay usable after an exception.
  std::atomic<int> counter{0};
  pool.run([&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  int value = 0;
  pool.run([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), Error);
}

TEST(ThreadPool, PinningPlanAccepted) {
  // Pin all workers to cpu 0 (always present). Pinning may soft-fail in
  // restricted environments; fully_pinned() reports it either way.
  ThreadPool pool(2, {0, 0});
  std::atomic<int> counter{0};
  pool.run([&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 2);
  (void)pool.fully_pinned();
}

TEST(ThreadPool, OversizedPlanWraps) {
  ThreadPool pool(5, {0});
  std::atomic<int> counter{0};
  pool.run([&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPool, DestructionWithoutRunIsClean) {
  ThreadPool pool(8);
  SUCCEED();
}

}  // namespace
}  // namespace spc
