#include "spc/parallel/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spc/formats/csr.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

aligned_vector<index_t> row_ptr_of(const Triplets& t) {
  return Csr::from_triplets(t).row_ptr();
}

TEST(Partition, CoversAllRowsMonotonically) {
  Rng rng(1);
  const Triplets t = test::random_triplets(1000, 1000, 20000, rng);
  const auto rp = row_ptr_of(t);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 8u, 16u}) {
    const RowPartition p = partition_rows_by_nnz(rp, n);
    ASSERT_EQ(p.nthreads(), n);
    EXPECT_EQ(p.bounds.front(), 0u);
    EXPECT_EQ(p.bounds.back(), 1000u);
    for (std::size_t i = 1; i < p.bounds.size(); ++i) {
      EXPECT_LE(p.bounds[i - 1], p.bounds[i]);
    }
  }
}

TEST(Partition, NnzBalanceWithinOneRow) {
  // Uniform row lengths: every thread's share may differ from ideal by at
  // most one row's worth of non-zeros.
  Triplets t(1024, 64);
  for (index_t r = 0; r < 1024; ++r) {
    for (index_t c = 0; c < 5; ++c) {
      t.add(r, c * 7 % 64, 1.0);
    }
  }
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition p = partition_rows_by_nnz(rp, 8);
  const double ideal = static_cast<double>(rp.back()) / 8.0;
  for (std::size_t th = 0; th < 8; ++th) {
    EXPECT_NEAR(static_cast<double>(p.nnz_of(th, rp)), ideal, 5.0);
  }
  EXPECT_LT(partition_imbalance(p, rp), 1.01);
}

TEST(Partition, BalancesSkewedRows) {
  // One huge row among tiny ones: imbalance is bounded by that row, and
  // nnz balancing must beat the even-rows split.
  Triplets t(100, 2000);
  for (index_t c = 0; c < 2000; ++c) {
    t.add(0, c, 1.0);
  }
  for (index_t r = 1; r < 100; ++r) {
    t.add(r, r, 1.0);
  }
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition by_nnz = partition_rows_by_nnz(rp, 4);
  const RowPartition even = partition_rows_even(100, 4);
  EXPECT_LT(partition_imbalance(by_nnz, rp),
            partition_imbalance(even, rp));
}

TEST(Partition, SingleThreadOwnsEverything) {
  Rng rng(2);
  const Triplets t = test::random_triplets(50, 50, 300, rng);
  const auto rp = row_ptr_of(t);
  const RowPartition p = partition_rows_by_nnz(rp, 1);
  EXPECT_EQ(p.row_begin(0), 0u);
  EXPECT_EQ(p.row_end(0), 50u);
  EXPECT_EQ(p.nnz_of(0, rp), t.nnz());
}

TEST(Partition, MoreThreadsThanRows) {
  Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(2, 2, 1.0);
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition p = partition_rows_by_nnz(rp, 8);
  EXPECT_EQ(p.bounds.front(), 0u);
  EXPECT_EQ(p.bounds.back(), 3u);
  usize_t total = 0;
  for (std::size_t th = 0; th < 8; ++th) {
    total += p.nnz_of(th, rp);
  }
  EXPECT_EQ(total, 3u);
}

TEST(Partition, EmptyMatrix) {
  Triplets t(10, 10);
  const auto rp = row_ptr_of(t);
  const RowPartition p = partition_rows_by_nnz(rp, 4);
  EXPECT_EQ(p.bounds.back(), 10u);
  EXPECT_DOUBLE_EQ(partition_imbalance(p, rp), 1.0);
}

TEST(Partition, TripletsOverloadMatchesRowPtrOverload) {
  Rng rng(3);
  const Triplets t = test::random_triplets(500, 500, 8000, rng);
  const auto rp = row_ptr_of(t);
  for (const std::size_t n : {2u, 4u, 7u}) {
    const RowPartition a = partition_rows_by_nnz(rp, n);
    const RowPartition b = partition_rows_by_nnz(t, n);
    EXPECT_EQ(a.bounds, b.bounds);
  }
}

TEST(Partition, EvenSplitsRowCounts) {
  const RowPartition p = partition_rows_even(10, 4);
  EXPECT_EQ(p.bounds, (std::vector<index_t>{0, 2, 5, 7, 10}));
}

TEST(Partition, RejectsZeroThreads) {
  aligned_vector<index_t> rp = {0, 1};
  EXPECT_THROW(partition_rows_by_nnz(rp, 0), Error);
  EXPECT_THROW(partition_rows_even(5, 0), Error);
}

TEST(Partition, StraddlingRowPicksNearerBoundary) {
  // Row layout [1, 9]: the ideal split (5) falls inside the long second
  // row. Rounding the boundary up would hand thread 0 all ten non-zeros
  // and leave thread 1 empty; the nearer boundary is the 1/9 split.
  aligned_vector<index_t> rp = {0, 1, 10};
  const RowPartition p = partition_rows_by_nnz(rp, 2);
  EXPECT_EQ(p.bounds, (std::vector<index_t>{0, 1, 2}));
  EXPECT_EQ(p.nnz_of(0, rp), 1u);
  EXPECT_EQ(p.nnz_of(1, rp), 9u);
}

TEST(Partition, SingleGiantRowStaysOnOneThread) {
  // All non-zeros in one row: exactly one thread owns it, the rest get
  // (possibly empty) remainder ranges, and imbalance is nthreads — the
  // best any row-aligned partition can do — not inf/NaN.
  Triplets t(64, 4096);
  for (index_t c = 0; c < 4096; ++c) {
    t.add(20, c, 1.0);
  }
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition p = partition_rows_by_nnz(rp, 8);
  EXPECT_EQ(p.bounds.front(), 0u);
  EXPECT_EQ(p.bounds.back(), 64u);
  std::size_t owners = 0;
  usize_t total = 0;
  for (std::size_t th = 0; th < 8; ++th) {
    EXPECT_LE(p.row_begin(th), p.row_end(th));
    total += p.nnz_of(th, rp);
    if (p.nnz_of(th, rp) > 0) {
      ++owners;
    }
  }
  EXPECT_EQ(owners, 1u);
  EXPECT_EQ(total, 4096u);
  EXPECT_DOUBLE_EQ(partition_imbalance(p, rp), 8.0);
}

TEST(Partition, MoreThreadsThanNonemptyRows) {
  // 10 rows but only two carry non-zeros; 8 threads must still cover all
  // rows monotonically, preserve the nnz total, and keep the imbalance
  // finite (empty threads are allowed, lost rows are not).
  Triplets t(10, 10);
  t.add(2, 1, 1.0);
  t.add(2, 3, 1.0);
  t.add(7, 0, 1.0);
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition p = partition_rows_by_nnz(rp, 8);
  EXPECT_EQ(p.bounds.front(), 0u);
  EXPECT_EQ(p.bounds.back(), 10u);
  usize_t total = 0;
  for (std::size_t th = 0; th < 8; ++th) {
    EXPECT_LE(p.row_begin(th), p.row_end(th));
    total += p.nnz_of(th, rp);
  }
  EXPECT_EQ(total, 3u);
  const double imb = partition_imbalance(p, rp);
  EXPECT_TRUE(std::isfinite(imb));
  EXPECT_GE(imb, 1.0);
}

TEST(Partition, EvenSplitWithMoreThreadsThanRows) {
  // 3 rows over 8 threads: trailing ranges are empty; nnz_of must read
  // them as zero without touching row_ptr, and the imbalance stays
  // finite (8 = one row each for 3 threads, nothing for 5).
  Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(2, 2, 1.0);
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition p = partition_rows_even(3, 8);
  ASSERT_EQ(p.nthreads(), 8u);
  EXPECT_EQ(p.bounds.front(), 0u);
  EXPECT_EQ(p.bounds.back(), 3u);
  usize_t total = 0;
  std::size_t empty = 0;
  for (std::size_t th = 0; th < 8; ++th) {
    EXPECT_LE(p.row_begin(th), p.row_end(th));
    total += p.nnz_of(th, rp);
    empty += p.row_begin(th) == p.row_end(th) ? 1 : 0;
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(empty, 5u);
  const double imb = partition_imbalance(p, rp);
  EXPECT_TRUE(std::isfinite(imb));
  EXPECT_NEAR(imb, 8.0 / 3.0, 1e-9);
}

TEST(Partition, NnzOfEmptyRangeOnZeroRowMatrix) {
  // The zero-row matrix's row_ptr is the single element {0}; an empty
  // range must not index row_ptr[bounds[t+1]] blindly.
  aligned_vector<index_t> rp = {0};
  RowPartition p;
  p.bounds = {0, 0, 0};  // 2 threads, both empty
  EXPECT_EQ(p.nnz_of(0, rp), 0u);
  EXPECT_EQ(p.nnz_of(1, rp), 0u);
  EXPECT_DOUBLE_EQ(partition_imbalance(p, rp), 1.0);
  EXPECT_DOUBLE_EQ(partition_imbalance(p, {}), 1.0);
  EXPECT_DOUBLE_EQ(partition_imbalance(RowPartition{}, rp), 1.0);
}

TEST(Partition, EmptyMatrixImbalanceIsOne) {
  // nnz == 0 is the 0/0 case: define it as perfectly balanced rather
  // than NaN, for both partitioners.
  aligned_vector<index_t> rp(11, 0);  // 10 rows, all empty
  const RowPartition by_nnz = partition_rows_by_nnz(rp, 4);
  const RowPartition even = partition_rows_even(10, 4);
  EXPECT_DOUBLE_EQ(partition_imbalance(by_nnz, rp), 1.0);
  EXPECT_DOUBLE_EQ(partition_imbalance(even, rp), 1.0);
  EXPECT_EQ(by_nnz.bounds.back(), 10u);
}

class PartitionPropertySweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionPropertySweep, EveryRowAssignedExactlyOnce) {
  Rng rng(40 + GetParam());
  const index_t nrows = 1 + static_cast<index_t>(rng.next_below(500));
  const Triplets t = test::random_triplets(
      nrows, 64, rng.next_below(4000), rng);
  const auto rp = row_ptr_of(t);
  const std::size_t nthreads = GetParam();
  const RowPartition p = partition_rows_by_nnz(rp, nthreads);
  usize_t nnz_total = 0;
  for (std::size_t th = 0; th < nthreads; ++th) {
    nnz_total += p.nnz_of(th, rp);
  }
  EXPECT_EQ(nnz_total, t.nnz());
  EXPECT_GE(partition_imbalance(p, rp), t.nnz() ? 1.0 : 1.0);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PartitionPropertySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 32));

}  // namespace
}  // namespace spc
