#include "spc/parallel/chunk_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "spc/parallel/thread_pool.hpp"

namespace spc {
namespace {

std::vector<std::uint32_t> iota_ids(std::size_t n) {
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

TEST(ChunkDeque, OwnerTakesInLoadOrder) {
  const auto ids = iota_ids(8);
  ChunkDeque d;
  d.init(ids.data(), ids.size());
  std::uint32_t c = 0;
  for (std::uint32_t expect = 0; expect < 8; ++expect) {
    ASSERT_TRUE(d.take(&c));
    EXPECT_EQ(c, expect);
  }
  EXPECT_FALSE(d.take(&c));
  EXPECT_FALSE(d.take(&c));  // repeated empty takes stay empty
}

TEST(ChunkDeque, ThievesTakeTheOwnersLastChunksFirst) {
  const auto ids = iota_ids(5);
  ChunkDeque d;
  d.init(ids.data(), ids.size());
  std::uint32_t c = 0;
  ASSERT_EQ(d.steal(&c), ChunkDeque::Steal::kGot);
  EXPECT_EQ(c, 4u);  // the chunk the owner would reach last
  ASSERT_EQ(d.steal(&c), ChunkDeque::Steal::kGot);
  EXPECT_EQ(c, 3u);
  // Owner still drains the remaining front chunks in order.
  ASSERT_TRUE(d.take(&c));
  EXPECT_EQ(c, 0u);
}

TEST(ChunkDeque, EmptyAndSingleItem) {
  ChunkDeque d;
  d.init(nullptr, 0);
  std::uint32_t c = 0;
  EXPECT_FALSE(d.take(&c));
  EXPECT_EQ(d.steal(&c), ChunkDeque::Steal::kEmpty);

  const std::uint32_t one = 7;
  d.init(&one, 1);
  EXPECT_EQ(d.capacity(), 1u);
  ASSERT_TRUE(d.take(&c));
  EXPECT_EQ(c, 7u);
  EXPECT_EQ(d.steal(&c), ChunkDeque::Steal::kEmpty);
}

TEST(ChunkDeque, ResetRefillsTheFullItemSet) {
  const auto ids = iota_ids(4);
  ChunkDeque d;
  d.init(ids.data(), ids.size());
  std::uint32_t c = 0;
  while (d.take(&c)) {
  }
  for (int round = 0; round < 3; ++round) {
    d.reset();
    std::vector<std::uint32_t> got;
    while (d.take(&c)) {
      got.push_back(c);
    }
    EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  }
}

// The core safety property under real concurrency: one owner popping
// while several thieves steal, every item claimed exactly once. Run via
// ThreadPool so the TSan CI job models exactly the synchronization the
// scheduler uses.
TEST(ChunkDeque, ConcurrentOwnerAndThievesClaimEachItemExactlyOnce) {
  constexpr std::size_t kItems = 2048;
  constexpr std::size_t kThreads = 4;  // worker 0 owns; 1..3 steal
  const auto ids = iota_ids(kItems);
  ChunkDeque d;
  d.init(ids.data(), ids.size());

  ThreadPool pool(kThreads);
  std::vector<std::atomic<int>> claimed(kItems);
  std::atomic<std::uint64_t> taken{0};
  std::atomic<std::uint64_t> stolen{0};
  for (int round = 0; round < 20; ++round) {
    for (auto& c : claimed) {
      c.store(0, std::memory_order_relaxed);
    }
    d.reset();
    pool.run([&](std::size_t tid) {
      std::uint32_t c = 0;
      if (tid == 0) {
        while (d.take(&c)) {
          claimed[c].fetch_add(1, std::memory_order_relaxed);
          taken.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        for (;;) {
          const ChunkDeque::Steal r = d.steal(&c);
          if (r == ChunkDeque::Steal::kGot) {
            claimed[c].fetch_add(1, std::memory_order_relaxed);
            stolen.fetch_add(1, std::memory_order_relaxed);
          } else if (r == ChunkDeque::Steal::kEmpty) {
            break;
          }
          // kContended: retry
        }
      }
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(claimed[i].load(), 1) << "item " << i << " round " << round;
    }
  }
  EXPECT_EQ(taken.load() + stolen.load(), 20u * kItems);
}

// Thief-only drain (owner never shows up): stealing alone must also
// claim everything exactly once.
TEST(ChunkDeque, ThievesAloneDrainEverything) {
  constexpr std::size_t kItems = 512;
  const auto ids = iota_ids(kItems);
  ChunkDeque d;
  d.init(ids.data(), ids.size());

  ThreadPool pool(4);
  std::vector<std::atomic<int>> claimed(kItems);
  pool.run([&](std::size_t) {
    std::uint32_t c = 0;
    for (;;) {
      const ChunkDeque::Steal r = d.steal(&c);
      if (r == ChunkDeque::Steal::kGot) {
        claimed[c].fetch_add(1, std::memory_order_relaxed);
      } else if (r == ChunkDeque::Steal::kEmpty) {
        break;
      }
    }
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(claimed[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace spc
