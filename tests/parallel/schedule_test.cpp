#include "spc/parallel/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "spc/formats/csr.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc {
namespace {

aligned_vector<index_t> row_ptr_of(const Triplets& t) {
  return Csr::from_triplets(t).row_ptr();
}

TEST(Schedule, NamesRoundTrip) {
  for (const Schedule s :
       {Schedule::kStatic, Schedule::kChunked, Schedule::kSteal}) {
    Schedule parsed = Schedule::kStatic;
    EXPECT_TRUE(parse_schedule(schedule_name(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  Schedule out = Schedule::kSteal;
  EXPECT_FALSE(parse_schedule("bogus", &out));
  EXPECT_EQ(out, Schedule::kSteal);  // untouched on failure
  EXPECT_TRUE(parse_schedule("STEAL", &out));  // case-insensitive
}

TEST(Schedule, EnvOverridesFallback) {
  {
    test::ScopedEnv env("SPC_SCHED", "chunked");
    EXPECT_EQ(schedule_from_env(Schedule::kStatic), Schedule::kChunked);
  }
  {
    test::ScopedEnv env("SPC_SCHED", "");
    EXPECT_EQ(schedule_from_env(Schedule::kSteal), Schedule::kSteal);
  }
  {
    test::ScopedEnv env("SPC_SCHED", "not-a-schedule");
    EXPECT_EQ(schedule_from_env(Schedule::kChunked), Schedule::kChunked);
  }
}

TEST(Schedule, ChunkNnzEnvOverridesFallback) {
  {
    test::ScopedEnv env("SPC_CHUNK_NNZ", "4096");
    EXPECT_EQ(chunk_nnz_from_env(100), 4096u);
  }
  for (const char* bad : {"", "0", "nope", "12x"}) {
    test::ScopedEnv env("SPC_CHUNK_NNZ", bad);
    EXPECT_EQ(chunk_nnz_from_env(100), 100u) << "'" << bad << "'";
  }
}

TEST(Schedule, ChunkTargetScalesWithL2AndClamps) {
  // 256 KiB L2 → 128 KiB budget / ~12 B per nnz ≈ 10922.
  EXPECT_EQ(chunk_target_nnz(256 * 1024), 256u * 1024 / 2 / 12);
  EXPECT_EQ(chunk_target_nnz(0), chunk_target_nnz(256 * 1024));  // default
  EXPECT_EQ(chunk_target_nnz(1), 1024u);                  // lower clamp
  EXPECT_EQ(chunk_target_nnz(std::size_t{1} << 40), 512u * 1024);  // upper
  // Monotone in between.
  EXPECT_LT(chunk_target_nnz(256 * 1024), chunk_target_nnz(1024 * 1024));
}

TEST(PlanChunks, TilesEveryThreadRangeExactly) {
  Rng rng(11);
  const Triplets t = test::random_triplets(2000, 500, 30000, rng);
  const auto rp = row_ptr_of(t);
  const RowPartition threads = partition_rows_by_nnz(rp, 4);
  const ChunkPlan plan = plan_chunks(rp, threads, 1024);

  ASSERT_GT(plan.nchunks(), 4u);  // 30k nnz / 1k target → many chunks
  // Chunk bounds are strictly increasing and tile [0, nrows).
  EXPECT_EQ(plan.bounds.front(), 0u);
  EXPECT_EQ(plan.bounds.back(), 2000u);
  for (std::size_t c = 0; c < plan.nchunks(); ++c) {
    EXPECT_LT(plan.row_begin(c), plan.row_end(c));
  }
  // Every thread boundary is a chunk boundary, and the owner ranges
  // partition the chunk ids.
  EXPECT_EQ(plan.owner_begin.front(), 0u);
  EXPECT_EQ(plan.owner_begin.back(), plan.nchunks());
  for (std::size_t th = 0; th < 4; ++th) {
    EXPECT_EQ(plan.bounds[plan.owner_begin[th]], threads.row_begin(th));
    EXPECT_EQ(plan.bounds[plan.owner_begin[th + 1]], threads.row_end(th));
    for (std::uint32_t c = plan.owner_begin[th];
         c < plan.owner_begin[th + 1]; ++c) {
      EXPECT_EQ(plan.owner[c], th);
    }
  }
}

TEST(PlanChunks, ChunkNnzStaysNearTarget) {
  // Uniform 10-nnz rows: every chunk except range tails must be within
  // one row of the target.
  Triplets t(1000, 64);
  for (index_t r = 0; r < 1000; ++r) {
    for (index_t c = 0; c < 10; ++c) {
      t.add(r, (r + c * 7) % 64, 1.0);
    }
  }
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition threads = partition_rows_by_nnz(rp, 4);
  const usize_t target = 500;
  const ChunkPlan plan = plan_chunks(rp, threads, target);
  for (std::size_t c = 0; c < plan.nchunks(); ++c) {
    const usize_t nnz = rp[plan.row_end(c)] - rp[plan.row_begin(c)];
    EXPECT_LE(nnz, target + 10);
    EXPECT_GT(nnz, 0u);
  }
}

TEST(PlanChunks, SmallRangesStayWhole) {
  Rng rng(12);
  const Triplets t = test::random_triplets(100, 100, 400, rng);
  const auto rp = row_ptr_of(t);
  const RowPartition threads = partition_rows_by_nnz(rp, 4);
  // Target far above any range's nnz: one chunk per non-empty range.
  const ChunkPlan plan = plan_chunks(rp, threads, 1u << 20);
  EXPECT_EQ(plan.nchunks(), 4u);
  for (std::size_t th = 0; th < 4; ++th) {
    EXPECT_EQ(plan.owner_begin[th + 1] - plan.owner_begin[th], 1u);
  }
}

TEST(PlanChunks, EmptyRangesOwnZeroChunks) {
  // 3 rows across 8 threads: trailing ranges are empty and must own no
  // chunks, while the plan still covers all rows.
  Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(2, 2, 1.0);
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition threads = partition_rows_by_nnz(rp, 8);
  const ChunkPlan plan = plan_chunks(rp, threads, 1024);
  EXPECT_EQ(plan.bounds.back(), 3u);
  std::size_t total = 0;
  for (std::size_t th = 0; th < 8; ++th) {
    const std::size_t owned =
        plan.owner_begin[th + 1] - plan.owner_begin[th];
    if (threads.row_begin(th) == threads.row_end(th)) {
      EXPECT_EQ(owned, 0u);
    }
    total += owned;
  }
  EXPECT_EQ(total, plan.nchunks());
}

TEST(PlanChunks, TrailingEmptyRowsAreCovered) {
  // All nnz in the first rows, then a long empty tail within one
  // thread's range: chunks must still cover every row (the kernels zero
  // y for empty rows).
  Triplets t(500, 8);
  for (index_t r = 0; r < 20; ++r) {
    for (index_t c = 0; c < 8; ++c) {
      t.add(r, c, 1.0);
    }
  }
  t.sort_and_combine();
  const auto rp = row_ptr_of(t);
  const RowPartition threads = partition_rows_by_nnz(rp, 2);
  const ChunkPlan plan = plan_chunks(rp, threads, 32);
  EXPECT_EQ(plan.bounds.front(), 0u);
  EXPECT_EQ(plan.bounds.back(), 500u);
  for (std::size_t c = 1; c < plan.bounds.size(); ++c) {
    EXPECT_LT(plan.bounds[c - 1], plan.bounds[c]);
  }
}

TEST(StealVictims, PlainRotationWithoutTopology) {
  const auto order = steal_victim_order(4, {});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(order[1], (std::vector<std::uint32_t>{2, 3, 0}));
  EXPECT_EQ(order[3], (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(StealVictims, SameNodeVictimsComeFirst) {
  // Workers 0,1 on node 0; workers 2,3 on node 1.
  const auto order = steal_victim_order(4, {0, 0, 1, 1});
  EXPECT_EQ(order[0], (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(order[1], (std::vector<std::uint32_t>{0, 2, 3}));
  EXPECT_EQ(order[2], (std::vector<std::uint32_t>{3, 0, 1}));
  EXPECT_EQ(order[3], (std::vector<std::uint32_t>{2, 0, 1}));
}

TEST(StealVictims, EveryListIsAPermutationOfTheOthers) {
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    std::vector<int> nodes(n);
    for (std::size_t t = 0; t < n; ++t) {
      nodes[t] = static_cast<int>(t % 2);
    }
    const auto order = steal_victim_order(n, nodes);
    ASSERT_EQ(order.size(), n);
    for (std::size_t t = 0; t < n; ++t) {
      EXPECT_EQ(order[t].size(), n - 1);
      std::set<std::uint32_t> seen(order[t].begin(), order[t].end());
      EXPECT_EQ(seen.size(), n - 1);
      EXPECT_EQ(seen.count(static_cast<std::uint32_t>(t)), 0u);
    }
  }
}

}  // namespace
}  // namespace spc
