// Concurrency stress for the serving engine — the TSan target: many
// client threads hammering several resident matrices through one shared
// pool, mixed sync/async traffic, concurrent registration churn, and an
// overload phase that must reject rather than deadlock. Every served
// result is verified against a per-matrix reference, so a race that
// corrupts data (not just ordering) also fails loudly.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "spc/engine/engine.hpp"
#include "spc/gen/generators.hpp"
#include "test_util.hpp"

namespace spc::engine {
namespace {

struct Tenant {
  std::string id;
  Triplets t;
  Format format;
};

std::vector<Tenant> tenants() {
  std::vector<Tenant> ts;
  ts.push_back({"lap", gen_laplacian_2d(14, 14), Format::kCsr});
  ts.push_back({"du", gen_laplacian_2d(11, 17), Format::kCsrDu});
  Rng rng(42);
  ts.push_back({"rand", test::random_triplets(150, 90, 1200, rng),
                Format::kCsrVi});
  return ts;
}

TEST(EngineStress, ManyClientsManyMatricesAllResultsCorrect) {
  // Scalar tier: every served y must equal the dense reference exactly
  // modulo fp association — compare against a direct instance bitwise.
  test::ScopedEnv isa("SPC_ISA", "scalar");
  const std::vector<Tenant> ts = tenants();

  EngineOptions o;
  o.pool_threads = 2;
  o.pin_threads = false;
  o.dispatchers = 2;
  o.queue_capacity = 64;
  o.overflow = OverflowPolicy::kBlock;  // no rejections: count everything
  Engine eng(o);

  std::vector<Vector> expected;
  for (const Tenant& tn : ts) {
    RegisterOptions ropts;
    ropts.format = tn.format;
    ASSERT_TRUE(eng.register_matrix(tn.id, tn.t, ropts).ok());
    InstanceOptions iopts;
    iopts.pin_threads = false;
    SpmvInstance direct(tn.t, tn.format, 2, iopts);
    Vector y(tn.t.nrows(), 0.0);
    const Vector x = const_vector(tn.t.ncols(), 1.0);
    direct.run(x, y);
    expected.push_back(std::move(y));
  }

  constexpr int kClients = 6;
  constexpr int kPerClient = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t which = static_cast<std::size_t>(c + i) % ts.size();
        const Tenant& tn = ts[which];
        const Vector x = const_vector(tn.t.ncols(), 1.0);
        if (i % 2 == 0) {
          Vector y;
          const Status st = eng.run_sync(tn.id, x, &y);
          if (!st.ok() || y != expected[which]) {
            mismatches.fetch_add(1);
          }
        } else {
          Future f = eng.submit(tn.id, x);
          if (!f.status().ok() || f.value() != expected[which]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  // Registration churn concurrent with serving: a fourth tenant comes
  // and goes while the clients hammer the stable three.
  std::thread churn([&] {
    const Triplets extra = gen_laplacian_2d(9, 9);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(eng.register_matrix("churn", extra).ok());
      Vector y;
      ASSERT_TRUE(eng.run_sync("churn", const_vector(81, 1.0), &y).ok());
      ASSERT_TRUE(eng.unregister_matrix("churn").ok());
    }
  });
  for (std::thread& th : clients) {
    th.join();
  }
  churn.join();
  eng.drain();

  EXPECT_EQ(mismatches.load(), 0);
  const Engine::Stats stats = eng.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kClients * kPerClient + 10));
}

TEST(EngineStress, TwoTimesOverloadRejectsInsteadOfHanging) {
  EngineOptions o;
  o.pool_threads = 2;
  o.pin_threads = false;
  o.dispatchers = 1;
  o.queue_capacity = 8;
  o.overflow = OverflowPolicy::kReject;
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("lap", gen_laplacian_2d(40, 40)).ok());

  // Fire 4 client threads submitting as fast as they can — far beyond
  // what one dispatcher drains. The engine must keep answering every
  // submit promptly (ok or kResourceExhausted), never block one.
  std::atomic<std::uint64_t> ok{0}, exhausted{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      std::vector<Future> futs;
      for (int i = 0; i < 100; ++i) {
        futs.push_back(eng.submit("lap", const_vector(1600, 1.0)));
      }
      for (Future& f : futs) {
        switch (f.status().code()) {
          case StatusCode::kOk:
            ok.fetch_add(1);
            break;
          case StatusCode::kResourceExhausted:
            exhausted.fetch_add(1);
            break;
          default:
            other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : clients) {
    th.join();
  }
  eng.drain();
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(ok.load() + exhausted.load(), 400u);
  EXPECT_GT(ok.load(), 0u);  // the engine still made forward progress
  EXPECT_EQ(eng.stats().rejected, exhausted.load());
}

TEST(EngineStress, ShutdownUnderFireCompletesOrRefusesEveryFuture) {
  EngineOptions o;
  o.pool_threads = 2;
  o.pin_threads = false;
  o.dispatchers = 2;
  o.overflow = OverflowPolicy::kBlock;
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("lap", gen_laplacian_2d(16, 16)).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> resolved{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Future f = eng.submit("lap", const_vector(256, 1.0));
        const StatusCode code = f.status().code();  // must always resolve
        ASSERT_TRUE(code == StatusCode::kOk ||
                    code == StatusCode::kUnavailable)
            << status_code_name(code);
        resolved.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  eng.shutdown();  // while clients are mid-submit
  stop.store(true, std::memory_order_release);
  for (std::thread& th : clients) {
    th.join();
  }
  EXPECT_GT(resolved.load(), 0u);
}

}  // namespace
}  // namespace spc::engine
