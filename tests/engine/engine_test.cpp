// Functional tests for the serving engine: registry lifecycle, the
// Future contract, every overflow policy, deadlines, cancellation,
// drain/shutdown semantics, and bit-identity of engine-served results
// against a directly-run instance at the scalar tier.
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "spc/engine/engine.hpp"
#include "spc/gen/generators.hpp"
#include "spc/support/timing.hpp"
#include "test_util.hpp"

namespace spc::engine {
namespace {

EngineOptions small_engine(std::size_t pool_threads = 2) {
  EngineOptions o;
  o.pool_threads = pool_threads;
  o.pin_threads = false;  // CI cpusets refuse affinity masks
  o.dispatchers = 1;
  return o;
}

RegisterOptions no_tune_cache() {
  RegisterOptions r;
  r.tune.use_cache = false;
  return r;
}

/// Holds the engine's shared pool mid-dispatch until released, so tests
/// can deterministically fill the admission queue / expire deadlines.
class PoolHold {
 public:
  explicit PoolHold(Engine& eng) {
    holder_ = std::thread([&eng, this] {
      eng.pool().run(+[](void* ctx, std::size_t tid) {
        auto* self = static_cast<PoolHold*>(ctx);
        if (tid == 0) {
          self->entered_.store(true);
        }
        while (!self->release_.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }, this);
    });
    while (!entered_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void release() {
    release_.store(true, std::memory_order_release);
    if (holder_.joinable()) {
      holder_.join();
    }
  }
  ~PoolHold() { release(); }

 private:
  std::thread holder_;
  std::atomic<bool> entered_{false};
  std::atomic<bool> release_{false};
};

TEST(EngineOptionsValidate, RejectsBadFieldsWithDiagnostics) {
  EngineOptions o;
  o.dispatchers = 0;
  Status st = o.validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("dispatchers"), std::string::npos);

  o = EngineOptions{};
  o.queue_capacity = 0;
  EXPECT_EQ(o.validate().code(), StatusCode::kInvalidArgument);

  o = EngineOptions{};
  o.batch_max = 0;
  EXPECT_EQ(o.validate().code(), StatusCode::kInvalidArgument);

  o = EngineOptions{};
  o.overflow = OverflowPolicy::kTimeout;
  o.submit_timeout_ms = 0;
  st = o.validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("submit_timeout_ms"), std::string::npos);

  // Nested instance options are validated through the same call.
  o = EngineOptions{};
  o.instance.bcsr_block_rows = 0;
  EXPECT_EQ(o.validate().code(), StatusCode::kInvalidArgument);

  EXPECT_THROW(Engine bad(o), InvalidArgument);
}

TEST(EngineRegistry, LifecycleAndIntrospection) {
  Engine eng(small_engine());
  const Triplets t = test::paper_matrix();

  EXPECT_FALSE(eng.has_matrix("fig1"));
  ASSERT_TRUE(eng.register_matrix("fig1", t).ok());
  EXPECT_TRUE(eng.has_matrix("fig1"));

  const Status dup = eng.register_matrix("fig1", t);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(dup.message().find("fig1"), std::string::npos);

  RegisterOptions ropts;
  ropts.format = Format::kCsrDu;
  ASSERT_TRUE(eng.register_matrix("du", t, ropts).ok());
  EXPECT_EQ(eng.matrix_ids().size(), 2u);

  Engine::MatrixInfo info;
  ASSERT_TRUE(eng.matrix_info("du", &info).ok());
  EXPECT_EQ(info.format, Format::kCsrDu);
  EXPECT_EQ(info.nrows, 6);
  EXPECT_EQ(info.ncols, 6);
  EXPECT_EQ(info.nnz, t.nnz());
  EXPECT_FALSE(info.tuned);
  EXPECT_EQ(info.runs, 0u);

  EXPECT_TRUE(eng.warm("du", 2).ok());
  EXPECT_EQ(eng.warm("nope").code(), StatusCode::kNotFound);

  EXPECT_TRUE(eng.unregister_matrix("du").ok());
  EXPECT_EQ(eng.unregister_matrix("du").code(), StatusCode::kNotFound);
  EXPECT_FALSE(eng.has_matrix("du"));
}

TEST(EngineRegistry, AutoFormatStampsTuneProvenance) {
  Engine eng(small_engine());
  RegisterOptions ropts = no_tune_cache();
  ropts.auto_format = true;
  ASSERT_TRUE(
      eng.register_matrix("lap", gen_laplacian_2d(12, 12), ropts).ok());
  Engine::MatrixInfo info;
  ASSERT_TRUE(eng.matrix_info("lap", &info).ok());
  EXPECT_TRUE(info.tuned);
  EXPECT_FALSE(info.tune_source.empty());
}

TEST(EngineSubmit, ErrorsCompleteTheFutureInsteadOfThrowing) {
  Engine eng(small_engine());
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());

  Future nf = eng.submit("ghost", const_vector(6, 1.0));
  EXPECT_EQ(nf.status().code(), StatusCode::kNotFound);

  Future df = eng.submit("fig1", const_vector(5, 1.0));
  const Status dst = df.status();
  EXPECT_EQ(dst.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dst.message().find('6'), std::string::npos);
  EXPECT_NE(dst.message().find('5'), std::string::npos);
}

TEST(EngineSubmit, ServedResultIsBitIdenticalToDirectRunAtScalar) {
  test::ScopedEnv isa("SPC_ISA", "scalar");
  const Triplets t = gen_laplacian_2d(20, 20);
  Rng rng(7);
  const Vector x = random_vector(t.ncols(), rng);

  for (const Format f :
       {Format::kCsr, Format::kCsrDu, Format::kCsrVi, Format::kCsrDuVi}) {
    InstanceOptions iopts;
    iopts.pin_threads = false;
    SpmvInstance direct(t, f, 2, iopts);
    Vector y_direct(t.nrows(), 0.0);
    direct.run(x, y_direct);

    EngineOptions eopts = small_engine();
    Engine eng(eopts);
    RegisterOptions ropts;
    ropts.format = f;
    ASSERT_TRUE(eng.register_matrix("m", t, ropts).ok());

    Vector y_served;
    ASSERT_TRUE(eng.run_sync("m", x, &y_served).ok());
    ASSERT_EQ(y_served.size(), y_direct.size());
    EXPECT_EQ(std::memcmp(y_served.data(), y_direct.data(),
                          y_direct.size() * sizeof(value_t)),
              0)
        << "format " << format_name(f);
  }
}

TEST(EngineSubmit, FutureCarriesTimingAndRunsCount) {
  Engine eng(small_engine());
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());
  Future f = eng.submit("fig1", const_vector(6, 1.0));
  ASSERT_TRUE(f.status().ok());
  EXPECT_GT(f.exec_ns(), 0u);
  EXPECT_EQ(f.value().size(), 6u);

  eng.drain();
  Engine::MatrixInfo info;
  ASSERT_TRUE(eng.matrix_info("fig1", &info).ok());
  EXPECT_EQ(info.runs, 1u);
}

TEST(EngineOverflow, RejectPolicySurfacesExhaustedNotHangs) {
  EngineOptions o = small_engine();
  o.queue_capacity = 2;
  o.batch_max = 1;
  o.serial_fallback = false;  // force the dispatcher to wait on the pool
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());

  PoolHold hold(eng);
  // One request occupies the dispatcher (blocked on the held pool); the
  // next two fill the queue; everything beyond must reject immediately.
  std::vector<Future> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(eng.submit("fig1", const_vector(6, 1.0)));
  }
  std::size_t rejected = 0;
  for (Future& f : futs) {
    // Rejected futures are complete already; the rest finish once the
    // pool is released below.
    if (f.done() && f.status().code() == StatusCode::kResourceExhausted) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 5u);  // 8 submitted, 1 executing + 2 queued at most
  hold.release();
  for (Future& f : futs) {
    const StatusCode c = f.status().code();
    EXPECT_TRUE(c == StatusCode::kOk || c == StatusCode::kResourceExhausted)
        << status_code_name(c);
  }
  EXPECT_EQ(eng.stats().rejected, rejected);
}

TEST(EngineOverflow, BlockPolicyAppliesBackpressureThenCompletes) {
  EngineOptions o = small_engine();
  o.queue_capacity = 1;
  o.batch_max = 1;
  o.serial_fallback = false;
  o.overflow = OverflowPolicy::kBlock;
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());

  PoolHold hold(eng);
  Future f0 = eng.submit("fig1", const_vector(6, 1.0));  // executing
  Future f1 = eng.submit("fig1", const_vector(6, 1.0));  // queued

  std::atomic<bool> blocked_submit_returned{false};
  Future f2;
  std::thread client([&] {
    f2 = eng.submit("fig1", const_vector(6, 1.0));  // blocks: queue full
    blocked_submit_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(blocked_submit_returned.load());

  hold.release();
  client.join();
  EXPECT_TRUE(f0.status().ok());
  EXPECT_TRUE(f1.status().ok());
  EXPECT_TRUE(f2.status().ok());
  EXPECT_EQ(eng.stats().rejected, 0u);
}

TEST(EngineOverflow, TimeoutPolicyRejectsAfterTheWait) {
  EngineOptions o = small_engine();
  o.queue_capacity = 1;
  o.batch_max = 1;
  o.serial_fallback = false;
  o.overflow = OverflowPolicy::kTimeout;
  o.submit_timeout_ms = 30;
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());

  PoolHold hold(eng);
  Future f0 = eng.submit("fig1", const_vector(6, 1.0));
  Future f1 = eng.submit("fig1", const_vector(6, 1.0));
  const std::uint64_t t0 = now_ns();
  Future f2 = eng.submit("fig1", const_vector(6, 1.0));
  const std::uint64_t waited_ms = (now_ns() - t0) / 1'000'000;
  EXPECT_EQ(f2.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(waited_ms, 25u);
  hold.release();
  EXPECT_TRUE(f0.status().ok());
  EXPECT_TRUE(f1.status().ok());
}

TEST(EngineDeadline, ExpiredRequestsCompleteDeadlineExceeded) {
  EngineOptions o = small_engine();
  o.batch_max = 1;
  o.serial_fallback = false;
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());

  PoolHold hold(eng);
  Future blocker = eng.submit("fig1", const_vector(6, 1.0));
  SubmitOptions sopts;
  sopts.deadline_ms = 1;
  Future doomed = eng.submit("fig1", const_vector(6, 1.0), sopts);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  hold.release();
  EXPECT_TRUE(blocker.status().ok());
  EXPECT_EQ(doomed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(eng.stats().deadline_missed, 1u);
}

TEST(EngineCancel, QueuedRequestCancelsExecutingOneFinishes) {
  EngineOptions o = small_engine();
  o.batch_max = 1;
  o.serial_fallback = false;
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());

  PoolHold hold(eng);
  Future executing = eng.submit("fig1", const_vector(6, 1.0));
  Future queued = eng.submit("fig1", const_vector(6, 1.0));
  queued.cancel();
  hold.release();
  EXPECT_TRUE(executing.status().ok());
  EXPECT_EQ(queued.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(eng.stats().cancelled, 1u);
}

TEST(EngineLifecycle, DrainWaitsAndShutdownRefusesNewWork) {
  Engine eng(small_engine());
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());

  std::vector<Future> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(eng.submit("fig1", const_vector(6, 1.0)));
  }
  eng.drain();
  EXPECT_EQ(eng.queue_depth(), 0u);
  for (Future& f : futs) {
    EXPECT_TRUE(f.done());
    EXPECT_TRUE(f.status().ok());
  }

  eng.shutdown();
  eng.shutdown();  // idempotent
  Future after = eng.submit("fig1", const_vector(6, 1.0));
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(eng.register_matrix("late", test::paper_matrix()).code(),
            StatusCode::kUnavailable);
}

TEST(EngineLifecycle, QueuedWorkIsServedThroughShutdown) {
  EngineOptions o = small_engine();
  o.batch_max = 1;
  o.serial_fallback = false;
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("fig1", test::paper_matrix()).ok());

  std::vector<Future> futs;
  {
    PoolHold hold(eng);
    for (int i = 0; i < 6; ++i) {
      futs.push_back(eng.submit("fig1", const_vector(6, 1.0)));
    }
  }  // release the pool, then shut down: queued requests must be served
  eng.shutdown();
  for (Future& f : futs) {
    EXPECT_TRUE(f.status().ok());
  }
}

TEST(EngineFallback, SaturatedPoolDegradesToSerialBitIdentically) {
  test::ScopedEnv isa("SPC_ISA", "scalar");
  const Triplets t = gen_laplacian_2d(16, 16);
  Rng rng(3);
  const Vector x = random_vector(t.ncols(), rng);
  InstanceOptions iopts;
  iopts.pin_threads = false;
  SpmvInstance direct(t, Format::kCsr, 2, iopts);
  Vector y_direct(t.nrows(), 0.0);
  direct.run(x, y_direct);

  EngineOptions o = small_engine();
  o.serial_fallback = true;
  Engine eng(o);
  ASSERT_TRUE(eng.register_matrix("m", t).ok());

  Future f;
  {
    PoolHold hold(eng);
    f = eng.submit("m", x);
    ASSERT_TRUE(f.wait_for_ms(5000));  // must complete WITHOUT the pool
  }
  ASSERT_TRUE(f.status().ok());
  EXPECT_TRUE(f.ran_serial());
  EXPECT_EQ(eng.stats().serial_runs, 1u);
  EXPECT_EQ(std::memcmp(f.value().data(), y_direct.data(),
                        y_direct.size() * sizeof(value_t)),
            0);
}

}  // namespace
}  // namespace spc::engine
