#include "spc/bench/harness.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "spc/obs/ledger.hpp"
#include <fstream>
#include <sstream>

namespace spc {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      saved_ = old;
      had_ = true;
    }
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(Thresholds, PaperDefaultsAtBenchScale) {
  const SetThresholds th = thresholds_for(CorpusScale::kBench);
  EXPECT_EQ(th.reject_below, 3ull << 20);
  EXPECT_EQ(th.large_at_least, 17ull << 20);
}

TEST(Thresholds, ScaledDownForSmallCorpora) {
  const SetThresholds bench = thresholds_for(CorpusScale::kBench);
  const SetThresholds small = thresholds_for(CorpusScale::kSmall);
  const SetThresholds tiny = thresholds_for(CorpusScale::kTiny);
  EXPECT_LT(small.reject_below, bench.reject_below);
  EXPECT_LT(tiny.reject_below, small.reject_below);
}

TEST(Thresholds, EnvOverride) {
  EnvGuard g1("SPC_WS_REJECT_KB", "100");
  EnvGuard g2("SPC_WS_LARGE_KB", "900");
  const SetThresholds th = thresholds_for(CorpusScale::kBench);
  EXPECT_EQ(th.reject_below, 100ull << 10);
  EXPECT_EQ(th.large_at_least, 900ull << 10);
}

TEST(Classify, ThreeWaySplit) {
  SetThresholds th;
  th.reject_below = 1000;
  th.large_at_least = 5000;
  EXPECT_EQ(classify_ws(999, th), SetClass::kRejected);
  EXPECT_EQ(classify_ws(1000, th), SetClass::kSmall);
  EXPECT_EQ(classify_ws(4999, th), SetClass::kSmall);
  EXPECT_EQ(classify_ws(5000, th), SetClass::kLarge);
}

TEST(BenchConfig, EnvParsing) {
  EnvGuard g1("SPC_SCALE", "tiny");
  EnvGuard g2("SPC_ITERS", "17");
  EnvGuard g3("SPC_THREADS", "1,3,9");
  EnvGuard g4("SPC_PIN", "0");
  const BenchConfig cfg = BenchConfig::from_env();
  EXPECT_EQ(cfg.scale, CorpusScale::kTiny);
  EXPECT_EQ(cfg.iterations, 17u);
  EXPECT_EQ(cfg.threads, (std::vector<std::size_t>{1, 3, 9}));
  EXPECT_FALSE(cfg.pin_threads);
  EXPECT_FALSE(cfg.describe().empty());
}

TEST(ForEachMatrix, VisitsTinyCorpus) {
  BenchConfig cfg;
  cfg.scale = CorpusScale::kTiny;
  std::size_t count = 0;
  for_each_matrix(
      cfg,
      [&](MatrixCase& mc) {
        ++count;
        EXPECT_GT(mc.mat.nnz(), 0u);
        EXPECT_EQ(mc.ws, mc.stats.working_set_bytes());
      },
      /*apply_rejection=*/false);
  EXPECT_EQ(count, corpus_specs(CorpusScale::kTiny).size());
}

TEST(ForEachMatrix, RejectionFiltersSmallWorkingSets) {
  BenchConfig cfg;
  cfg.scale = CorpusScale::kTiny;
  std::size_t all = 0, kept = 0;
  for_each_matrix(cfg, [&](MatrixCase&) { ++all; }, false);
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    ++kept;
    EXPECT_NE(mc.set_class, SetClass::kRejected);
  });
  EXPECT_LE(kept, all);
}

TEST(ForEachMatrix, MaxMatricesTruncates) {
  BenchConfig cfg;
  cfg.scale = CorpusScale::kTiny;
  cfg.max_matrices = 3;
  std::size_t count = 0;
  for_each_matrix(cfg, [&](MatrixCase&) { ++count; }, false);
  EXPECT_LE(count, 3u);
}

TEST(TimeSpmv, ProducesPositiveTime) {
  const auto spec = corpus_spec("lap2d-s", CorpusScale::kTiny);
  const Triplets t = spec.build();
  SpmvInstance inst(t, Format::kCsr);
  const double secs = time_spmv(inst, 4, 1);
  EXPECT_GT(secs, 0.0);
  EXPECT_GT(mflops(t.nnz(), 4, secs), 0.0);
}

TEST(TimeSpmvMetrics, SampleSecondsMatchAggregateSeconds) {
  const auto spec = corpus_spec("lap2d-s", CorpusScale::kTiny);
  const Triplets t = spec.build();
  SpmvInstance inst(t, Format::kCsr);
  const RunMetrics m = time_spmv_metrics(inst, 16, 1);
  ASSERT_EQ(m.sample_seconds.size(), 16u);
  double sum = 0.0;
  for (const double s : m.sample_seconds) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  // The samples are consecutive timestamp deltas over the same loop the
  // aggregate timed, so they must add back up to it (same clock, no
  // gaps — only float rounding apart).
  EXPECT_NEAR(sum, m.seconds, 1e-9 * 16);
}

TEST(TimeSpmvMetrics, PadHookInflatesEveryIteration) {
  const auto spec = corpus_spec("lap2d-s", CorpusScale::kTiny);
  const Triplets t = spec.build();
  SpmvInstance inst(t, Format::kCsr);
  const RunMetrics before = time_spmv_metrics(inst, 8, 1);
  const double base_med =
      median(std::vector<double>(before.sample_seconds));
  {
    // 50 µs/iteration: orders of magnitude above the tiny cell's real
    // time, so the shift is unambiguous even on a noisy CI box.
    EnvGuard pad("SPC_PAD_NS_PER_ITER", "50000");
    const RunMetrics padded = time_spmv_metrics(inst, 8, 1);
    const double pad_med =
        median(std::vector<double>(padded.sample_seconds));
    EXPECT_GT(pad_med, base_med + 40e-6);
  }
  // Hook is read per run: clearing the env restores normal timing.
  const RunMetrics after = time_spmv_metrics(inst, 8, 1);
  EXPECT_LT(median(std::vector<double>(after.sample_seconds)),
            base_med + 40e-6);
}

TEST(MakeMetricsRecord, CarriesLedgerProvenanceAndSamples) {
  const auto spec = corpus_spec("lap2d-s", CorpusScale::kTiny);
  MatrixCase mc;
  mc.name = spec.name;
  mc.cls = spec.cls;
  mc.mat = spec.build();
  SpmvInstance inst(mc.mat, Format::kCsr);
  const RunMetrics m = time_spmv_metrics(inst, 8, 1);
  const obs::Json rec = make_metrics_record("harness_test", mc, inst, m);

  ASSERT_NE(rec.find("machine_id"), nullptr);
  EXPECT_EQ(rec.find("machine_id")->as_string(),
            obs::machine_fingerprint().id());
  ASSERT_NE(rec.find("machine"), nullptr);
  EXPECT_TRUE(rec.find("machine")->is_object());
  ASSERT_NE(rec.find("git_sha"), nullptr);
  EXPECT_FALSE(rec.find("git_sha")->as_string().empty());
  ASSERT_NE(rec.find("samples_ns"), nullptr);
  EXPECT_EQ(rec.find("samples_ns")->size(), 8u);
  ASSERT_NE(rec.find("bytes_per_nnz"), nullptr);
  EXPECT_GT(rec.find("bytes_per_nnz")->as_double(), 0.0);
  // No SPC_ROOFLINE_GBPS → no roofline block.
  EXPECT_EQ(rec.find("roofline"), nullptr);
}

TEST(MakeMetricsRecord, RooflineBlockWhenBandwidthKnown) {
  EnvGuard gbps("SPC_ROOFLINE_GBPS", "10.0");
  EXPECT_DOUBLE_EQ(roofline_gbps(), 10.0);
  const auto spec = corpus_spec("lap2d-s", CorpusScale::kTiny);
  MatrixCase mc;
  mc.name = spec.name;
  mc.cls = spec.cls;
  mc.mat = spec.build();
  SpmvInstance inst(mc.mat, Format::kCsr);
  const RunMetrics m = time_spmv_metrics(inst, 8, 1);
  const obs::Json rec = make_metrics_record("harness_test", mc, inst, m);
  const obs::Json* roof = rec.find("roofline");
  ASSERT_NE(roof, nullptr);
  EXPECT_DOUBLE_EQ(roof->find("gbps")->as_double(), 10.0);
  EXPECT_GT(roof->find("min_ns_per_nnz")->as_double(), 0.0);
  // frac is achieved/bound — positive, and sane (a tiny cache-resident
  // cell can exceed the DRAM bound, so only sanity-bound it loosely).
  EXPECT_GT(roof->find("frac")->as_double(), 0.0);
}

TEST(RooflineGbps, UnsetOrGarbageMeansDisabled) {
  ::unsetenv("SPC_ROOFLINE_GBPS");
  EXPECT_DOUBLE_EQ(roofline_gbps(), 0.0);
  EnvGuard bad("SPC_ROOFLINE_GBPS", "not-a-number");
  EXPECT_DOUBLE_EQ(roofline_gbps(), 0.0);
}

TEST(Mflops, Formula) {
  EXPECT_DOUBLE_EQ(mflops(1000, 10, 0.001), 2.0 * 1000 * 10 / 0.001 / 1e6);
  EXPECT_DOUBLE_EQ(mflops(1000, 10, 0.0), 0.0);
}

TEST(SpeedupAgg, TracksPaperStatistics) {
  SpeedupAgg agg;
  for (const double s : {1.2, 0.9, 1.5, 0.97, 1.0}) {
    agg.add(s);
  }
  EXPECT_EQ(agg.count(), 5u);
  EXPECT_DOUBLE_EQ(agg.max(), 1.5);
  EXPECT_DOUBLE_EQ(agg.min(), 0.9);
  EXPECT_EQ(agg.slowdowns(), 2u);  // 0.9 and 0.97
  EXPECT_NEAR(agg.avg(), (1.2 + 0.9 + 1.5 + 0.97 + 1.0) / 5, 1e-12);
}

TEST(TextTable, AlignsColumns) {
  TextTable tt({"name", "val"});
  tt.add_row({"a", "1.00"});
  tt.add_row({"longer-name", "2"});
  std::ostringstream os;
  tt.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | val  |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 2    |"), std::string::npos);
}

TEST(WriteCsv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/spc_harness_test.csv";
  write_csv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::getline(f, line);
  EXPECT_EQ(line, "3,4");
}

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
  EXPECT_EQ(csv_escape("with space"), "with space");
}

TEST(CsvEscape, SpecialFieldsAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
}

TEST(WriteCsv, EscapesHeaderAndCells) {
  const std::string path = ::testing::TempDir() + "/spc_harness_escape.csv";
  write_csv(path, {"name", "notes, units"},
            {{"mat,1", "says \"fast\""}, {"plain", "ok"}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "name,\"notes, units\"");
  std::getline(f, line);
  EXPECT_EQ(line, "\"mat,1\",\"says \"\"fast\"\"\"");
  std::getline(f, line);
  EXPECT_EQ(line, "plain,ok");
}

}  // namespace
}  // namespace spc
