#include "spc/bench/harness.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace spc {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      saved_ = old;
      had_ = true;
    }
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(Thresholds, PaperDefaultsAtBenchScale) {
  const SetThresholds th = thresholds_for(CorpusScale::kBench);
  EXPECT_EQ(th.reject_below, 3ull << 20);
  EXPECT_EQ(th.large_at_least, 17ull << 20);
}

TEST(Thresholds, ScaledDownForSmallCorpora) {
  const SetThresholds bench = thresholds_for(CorpusScale::kBench);
  const SetThresholds small = thresholds_for(CorpusScale::kSmall);
  const SetThresholds tiny = thresholds_for(CorpusScale::kTiny);
  EXPECT_LT(small.reject_below, bench.reject_below);
  EXPECT_LT(tiny.reject_below, small.reject_below);
}

TEST(Thresholds, EnvOverride) {
  EnvGuard g1("SPC_WS_REJECT_KB", "100");
  EnvGuard g2("SPC_WS_LARGE_KB", "900");
  const SetThresholds th = thresholds_for(CorpusScale::kBench);
  EXPECT_EQ(th.reject_below, 100ull << 10);
  EXPECT_EQ(th.large_at_least, 900ull << 10);
}

TEST(Classify, ThreeWaySplit) {
  SetThresholds th;
  th.reject_below = 1000;
  th.large_at_least = 5000;
  EXPECT_EQ(classify_ws(999, th), SetClass::kRejected);
  EXPECT_EQ(classify_ws(1000, th), SetClass::kSmall);
  EXPECT_EQ(classify_ws(4999, th), SetClass::kSmall);
  EXPECT_EQ(classify_ws(5000, th), SetClass::kLarge);
}

TEST(BenchConfig, EnvParsing) {
  EnvGuard g1("SPC_SCALE", "tiny");
  EnvGuard g2("SPC_ITERS", "17");
  EnvGuard g3("SPC_THREADS", "1,3,9");
  EnvGuard g4("SPC_PIN", "0");
  const BenchConfig cfg = BenchConfig::from_env();
  EXPECT_EQ(cfg.scale, CorpusScale::kTiny);
  EXPECT_EQ(cfg.iterations, 17u);
  EXPECT_EQ(cfg.threads, (std::vector<std::size_t>{1, 3, 9}));
  EXPECT_FALSE(cfg.pin_threads);
  EXPECT_FALSE(cfg.describe().empty());
}

TEST(ForEachMatrix, VisitsTinyCorpus) {
  BenchConfig cfg;
  cfg.scale = CorpusScale::kTiny;
  std::size_t count = 0;
  for_each_matrix(
      cfg,
      [&](MatrixCase& mc) {
        ++count;
        EXPECT_GT(mc.mat.nnz(), 0u);
        EXPECT_EQ(mc.ws, mc.stats.working_set_bytes());
      },
      /*apply_rejection=*/false);
  EXPECT_EQ(count, corpus_specs(CorpusScale::kTiny).size());
}

TEST(ForEachMatrix, RejectionFiltersSmallWorkingSets) {
  BenchConfig cfg;
  cfg.scale = CorpusScale::kTiny;
  std::size_t all = 0, kept = 0;
  for_each_matrix(cfg, [&](MatrixCase&) { ++all; }, false);
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    ++kept;
    EXPECT_NE(mc.set_class, SetClass::kRejected);
  });
  EXPECT_LE(kept, all);
}

TEST(ForEachMatrix, MaxMatricesTruncates) {
  BenchConfig cfg;
  cfg.scale = CorpusScale::kTiny;
  cfg.max_matrices = 3;
  std::size_t count = 0;
  for_each_matrix(cfg, [&](MatrixCase&) { ++count; }, false);
  EXPECT_LE(count, 3u);
}

TEST(TimeSpmv, ProducesPositiveTime) {
  const auto spec = corpus_spec("lap2d-s", CorpusScale::kTiny);
  const Triplets t = spec.build();
  SpmvInstance inst(t, Format::kCsr);
  const double secs = time_spmv(inst, 4, 1);
  EXPECT_GT(secs, 0.0);
  EXPECT_GT(mflops(t.nnz(), 4, secs), 0.0);
}

TEST(Mflops, Formula) {
  EXPECT_DOUBLE_EQ(mflops(1000, 10, 0.001), 2.0 * 1000 * 10 / 0.001 / 1e6);
  EXPECT_DOUBLE_EQ(mflops(1000, 10, 0.0), 0.0);
}

TEST(SpeedupAgg, TracksPaperStatistics) {
  SpeedupAgg agg;
  for (const double s : {1.2, 0.9, 1.5, 0.97, 1.0}) {
    agg.add(s);
  }
  EXPECT_EQ(agg.count(), 5u);
  EXPECT_DOUBLE_EQ(agg.max(), 1.5);
  EXPECT_DOUBLE_EQ(agg.min(), 0.9);
  EXPECT_EQ(agg.slowdowns(), 2u);  // 0.9 and 0.97
  EXPECT_NEAR(agg.avg(), (1.2 + 0.9 + 1.5 + 0.97 + 1.0) / 5, 1e-12);
}

TEST(TextTable, AlignsColumns) {
  TextTable tt({"name", "val"});
  tt.add_row({"a", "1.00"});
  tt.add_row({"longer-name", "2"});
  std::ostringstream os;
  tt.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | val  |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 2    |"), std::string::npos);
}

TEST(WriteCsv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/spc_harness_test.csv";
  write_csv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::getline(f, line);
  EXPECT_EQ(line, "3,4");
}

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
  EXPECT_EQ(csv_escape("with space"), "with space");
}

TEST(CsvEscape, SpecialFieldsAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
}

TEST(WriteCsv, EscapesHeaderAndCells) {
  const std::string path = ::testing::TempDir() + "/spc_harness_escape.csv";
  write_csv(path, {"name", "notes, units"},
            {{"mat,1", "says \"fast\""}, {"plain", "ok"}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "name,\"notes, units\"");
  std::getline(f, line);
  EXPECT_EQ(line, "\"mat,1\",\"says \"\"fast\"\"\"");
  std::getline(f, line);
  EXPECT_EQ(line, "plain,ok");
}

}  // namespace
}  // namespace spc
