#include "spc/bench/model.hpp"

#include <gtest/gtest.h>

namespace spc {
namespace {

TEST(BandwidthModel, CalibrationProducesPositiveBandwidth) {
  // Tiny arrays keep the test fast; the numbers are cache bandwidth, but
  // positivity and ordering are all the model requires.
  const BandwidthCalibration cal = calibrate_bandwidth(4ull << 20, 1);
  EXPECT_GT(cal.read_gbps, 0.0);
  EXPECT_GT(cal.triad_gbps, 0.0);
}

TEST(BandwidthModel, StreamedBytesFormula) {
  // matrix + x + y in doubles.
  EXPECT_EQ(spmv_streamed_bytes(1000, 10, 20), 1000u + 20 * 8 + 10 * 8);
}

TEST(BandwidthModel, PredictionScalesLinearly) {
  const double t1 = predicted_spmv_seconds(1'000'000, 10.0);
  const double t2 = predicted_spmv_seconds(2'000'000, 10.0);
  EXPECT_DOUBLE_EQ(t2, 2.0 * t1);
  EXPECT_DOUBLE_EQ(predicted_spmv_seconds(1'000'000'000, 1.0), 1.0);
}

TEST(BandwidthModel, ZeroBandwidthGivesZeroPrediction) {
  EXPECT_DOUBLE_EQ(predicted_spmv_seconds(1000, 0.0), 0.0);
}

TEST(BandwidthModel, SmallerEncodingPredictsFasterSpmv) {
  // The §II-B claim in model form: fewer streamed bytes → smaller bound.
  const usize_t csr = spmv_streamed_bytes(12'000'000, 100000, 100000);
  const usize_t vi = spmv_streamed_bytes(5'000'000, 100000, 100000);
  EXPECT_LT(predicted_spmv_seconds(vi, 8.0),
            predicted_spmv_seconds(csr, 8.0));
}

}  // namespace
}  // namespace spc
