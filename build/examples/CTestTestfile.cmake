# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cg_solver "/root/repo/build/examples/cg_solver" "24" "2")
set_tests_properties(example_cg_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_format_inspector "/root/repo/build/examples/format_inspector" "corpus:lap2d-s")
set_tests_properties(example_format_inspector PROPERTIES  ENVIRONMENT "SPC_SCALE=tiny" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_corpus_report "/root/repo/build/examples/corpus_report")
set_tests_properties(example_corpus_report PROPERTIES  ENVIRONMENT "SPC_SCALE=tiny" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matrix_pipeline "/root/repo/build/examples/matrix_pipeline" "2000" "2")
set_tests_properties(example_matrix_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pagerank "/root/repo/build/examples/pagerank" "10" "8" "2")
set_tests_properties(example_pagerank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spctool "/root/repo/build/examples/spctool" "inspect" "corpus:lap2d-s")
set_tests_properties(example_spctool PROPERTIES  ENVIRONMENT "SPC_SCALE=tiny" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
