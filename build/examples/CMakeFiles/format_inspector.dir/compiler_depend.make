# Empty compiler generated dependencies file for format_inspector.
# This may be replaced when dependencies are built.
