# Empty compiler generated dependencies file for spctool.
# This may be replaced when dependencies are built.
