file(REMOVE_RECURSE
  "CMakeFiles/spctool.dir/spctool.cpp.o"
  "CMakeFiles/spctool.dir/spctool.cpp.o.d"
  "spctool"
  "spctool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spctool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
