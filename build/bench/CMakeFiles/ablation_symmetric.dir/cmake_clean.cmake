file(REMOVE_RECURSE
  "CMakeFiles/ablation_symmetric.dir/ablation_symmetric.cpp.o"
  "CMakeFiles/ablation_symmetric.dir/ablation_symmetric.cpp.o.d"
  "ablation_symmetric"
  "ablation_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
