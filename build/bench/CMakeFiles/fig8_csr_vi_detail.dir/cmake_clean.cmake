file(REMOVE_RECURSE
  "CMakeFiles/fig8_csr_vi_detail.dir/fig8_csr_vi_detail.cpp.o"
  "CMakeFiles/fig8_csr_vi_detail.dir/fig8_csr_vi_detail.cpp.o.d"
  "fig8_csr_vi_detail"
  "fig8_csr_vi_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_csr_vi_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
