# Empty compiler generated dependencies file for fig8_csr_vi_detail.
# This may be replaced when dependencies are built.
