file(REMOVE_RECURSE
  "CMakeFiles/ablation_index_baselines.dir/ablation_index_baselines.cpp.o"
  "CMakeFiles/ablation_index_baselines.dir/ablation_index_baselines.cpp.o.d"
  "ablation_index_baselines"
  "ablation_index_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
