# Empty dependencies file for ablation_index_baselines.
# This may be replaced when dependencies are built.
