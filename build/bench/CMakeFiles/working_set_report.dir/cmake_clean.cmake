file(REMOVE_RECURSE
  "CMakeFiles/working_set_report.dir/working_set_report.cpp.o"
  "CMakeFiles/working_set_report.dir/working_set_report.cpp.o.d"
  "working_set_report"
  "working_set_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/working_set_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
