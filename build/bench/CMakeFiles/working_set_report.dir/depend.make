# Empty dependencies file for working_set_report.
# This may be replaced when dependencies are built.
