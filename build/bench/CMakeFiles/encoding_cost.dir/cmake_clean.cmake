file(REMOVE_RECURSE
  "CMakeFiles/encoding_cost.dir/encoding_cost.cpp.o"
  "CMakeFiles/encoding_cost.dir/encoding_cost.cpp.o.d"
  "encoding_cost"
  "encoding_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
