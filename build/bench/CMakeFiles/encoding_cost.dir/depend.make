# Empty dependencies file for encoding_cost.
# This may be replaced when dependencies are built.
