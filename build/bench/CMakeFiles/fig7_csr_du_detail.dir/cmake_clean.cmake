file(REMOVE_RECURSE
  "CMakeFiles/fig7_csr_du_detail.dir/fig7_csr_du_detail.cpp.o"
  "CMakeFiles/fig7_csr_du_detail.dir/fig7_csr_du_detail.cpp.o.d"
  "fig7_csr_du_detail"
  "fig7_csr_du_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_csr_du_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
