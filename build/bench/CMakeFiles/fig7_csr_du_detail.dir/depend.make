# Empty dependencies file for fig7_csr_du_detail.
# This may be replaced when dependencies are built.
