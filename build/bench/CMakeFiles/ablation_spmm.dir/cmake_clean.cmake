file(REMOVE_RECURSE
  "CMakeFiles/ablation_spmm.dir/ablation_spmm.cpp.o"
  "CMakeFiles/ablation_spmm.dir/ablation_spmm.cpp.o.d"
  "ablation_spmm"
  "ablation_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
