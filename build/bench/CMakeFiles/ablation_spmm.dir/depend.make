# Empty dependencies file for ablation_spmm.
# This may be replaced when dependencies are built.
