file(REMOVE_RECURSE
  "CMakeFiles/table3_csr_du.dir/table3_csr_du.cpp.o"
  "CMakeFiles/table3_csr_du.dir/table3_csr_du.cpp.o.d"
  "table3_csr_du"
  "table3_csr_du.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_csr_du.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
