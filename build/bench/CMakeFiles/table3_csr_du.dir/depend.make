# Empty dependencies file for table3_csr_du.
# This may be replaced when dependencies are built.
