file(REMOVE_RECURSE
  "CMakeFiles/profile_report.dir/profile_report.cpp.o"
  "CMakeFiles/profile_report.dir/profile_report.cpp.o.d"
  "profile_report"
  "profile_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
