# Empty dependencies file for profile_report.
# This may be replaced when dependencies are built.
