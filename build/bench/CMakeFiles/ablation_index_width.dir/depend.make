# Empty dependencies file for ablation_index_width.
# This may be replaced when dependencies are built.
