file(REMOVE_RECURSE
  "CMakeFiles/ablation_index_width.dir/ablation_index_width.cpp.o"
  "CMakeFiles/ablation_index_width.dir/ablation_index_width.cpp.o.d"
  "ablation_index_width"
  "ablation_index_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
