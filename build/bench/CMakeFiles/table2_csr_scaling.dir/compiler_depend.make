# Empty compiler generated dependencies file for table2_csr_scaling.
# This may be replaced when dependencies are built.
