# Empty compiler generated dependencies file for ablation_du_params.
# This may be replaced when dependencies are built.
