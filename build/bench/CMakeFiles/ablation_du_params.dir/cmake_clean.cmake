file(REMOVE_RECURSE
  "CMakeFiles/ablation_du_params.dir/ablation_du_params.cpp.o"
  "CMakeFiles/ablation_du_params.dir/ablation_du_params.cpp.o.d"
  "ablation_du_params"
  "ablation_du_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_du_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
