# Empty dependencies file for fig_size_sweep.
# This may be replaced when dependencies are built.
