file(REMOVE_RECURSE
  "CMakeFiles/fig_size_sweep.dir/fig_size_sweep.cpp.o"
  "CMakeFiles/fig_size_sweep.dir/fig_size_sweep.cpp.o.d"
  "fig_size_sweep"
  "fig_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
