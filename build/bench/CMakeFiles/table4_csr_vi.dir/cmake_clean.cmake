file(REMOVE_RECURSE
  "CMakeFiles/table4_csr_vi.dir/table4_csr_vi.cpp.o"
  "CMakeFiles/table4_csr_vi.dir/table4_csr_vi.cpp.o.d"
  "table4_csr_vi"
  "table4_csr_vi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_csr_vi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
