# Empty dependencies file for table4_csr_vi.
# This may be replaced when dependencies are built.
