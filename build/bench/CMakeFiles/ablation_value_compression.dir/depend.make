# Empty dependencies file for ablation_value_compression.
# This may be replaced when dependencies are built.
