file(REMOVE_RECURSE
  "CMakeFiles/ablation_value_compression.dir/ablation_value_compression.cpp.o"
  "CMakeFiles/ablation_value_compression.dir/ablation_value_compression.cpp.o.d"
  "ablation_value_compression"
  "ablation_value_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_value_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
