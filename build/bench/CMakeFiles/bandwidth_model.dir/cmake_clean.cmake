file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_model.dir/bandwidth_model.cpp.o"
  "CMakeFiles/bandwidth_model.dir/bandwidth_model.cpp.o.d"
  "bandwidth_model"
  "bandwidth_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
