# Empty dependencies file for bandwidth_model.
# This may be replaced when dependencies are built.
