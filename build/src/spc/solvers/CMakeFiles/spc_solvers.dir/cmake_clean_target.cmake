file(REMOVE_RECURSE
  "libspc_solvers.a"
)
