# Empty dependencies file for spc_solvers.
# This may be replaced when dependencies are built.
