file(REMOVE_RECURSE
  "CMakeFiles/spc_solvers.dir/iterative.cpp.o"
  "CMakeFiles/spc_solvers.dir/iterative.cpp.o.d"
  "CMakeFiles/spc_solvers.dir/multi_rhs.cpp.o"
  "CMakeFiles/spc_solvers.dir/multi_rhs.cpp.o.d"
  "CMakeFiles/spc_solvers.dir/refinement.cpp.o"
  "CMakeFiles/spc_solvers.dir/refinement.cpp.o.d"
  "libspc_solvers.a"
  "libspc_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
