
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spc/solvers/iterative.cpp" "src/spc/solvers/CMakeFiles/spc_solvers.dir/iterative.cpp.o" "gcc" "src/spc/solvers/CMakeFiles/spc_solvers.dir/iterative.cpp.o.d"
  "/root/repo/src/spc/solvers/multi_rhs.cpp" "src/spc/solvers/CMakeFiles/spc_solvers.dir/multi_rhs.cpp.o" "gcc" "src/spc/solvers/CMakeFiles/spc_solvers.dir/multi_rhs.cpp.o.d"
  "/root/repo/src/spc/solvers/refinement.cpp" "src/spc/solvers/CMakeFiles/spc_solvers.dir/refinement.cpp.o" "gcc" "src/spc/solvers/CMakeFiles/spc_solvers.dir/refinement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spc/mm/CMakeFiles/spc_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/support/CMakeFiles/spc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
