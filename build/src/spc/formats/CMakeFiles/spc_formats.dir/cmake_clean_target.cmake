file(REMOVE_RECURSE
  "libspc_formats.a"
)
