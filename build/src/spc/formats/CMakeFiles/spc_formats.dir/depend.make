# Empty dependencies file for spc_formats.
# This may be replaced when dependencies are built.
