
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spc/formats/bcsr.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/bcsr.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/bcsr.cpp.o.d"
  "/root/repo/src/spc/formats/csr_du.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/csr_du.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/csr_du.cpp.o.d"
  "/root/repo/src/spc/formats/csr_du_vi.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/csr_du_vi.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/csr_du_vi.cpp.o.d"
  "/root/repo/src/spc/formats/csr_f32.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/csr_f32.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/csr_f32.cpp.o.d"
  "/root/repo/src/spc/formats/csr_vi.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/csr_vi.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/csr_vi.cpp.o.d"
  "/root/repo/src/spc/formats/dcsr.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/dcsr.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/dcsr.cpp.o.d"
  "/root/repo/src/spc/formats/dia.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/dia.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/dia.cpp.o.d"
  "/root/repo/src/spc/formats/ell.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/ell.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/ell.cpp.o.d"
  "/root/repo/src/spc/formats/jds.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/jds.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/jds.cpp.o.d"
  "/root/repo/src/spc/formats/serialize.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/serialize.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/serialize.cpp.o.d"
  "/root/repo/src/spc/formats/sym_csr.cpp" "src/spc/formats/CMakeFiles/spc_formats.dir/sym_csr.cpp.o" "gcc" "src/spc/formats/CMakeFiles/spc_formats.dir/sym_csr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spc/mm/CMakeFiles/spc_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/support/CMakeFiles/spc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
