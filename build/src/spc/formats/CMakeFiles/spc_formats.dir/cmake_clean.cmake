file(REMOVE_RECURSE
  "CMakeFiles/spc_formats.dir/bcsr.cpp.o"
  "CMakeFiles/spc_formats.dir/bcsr.cpp.o.d"
  "CMakeFiles/spc_formats.dir/csr_du.cpp.o"
  "CMakeFiles/spc_formats.dir/csr_du.cpp.o.d"
  "CMakeFiles/spc_formats.dir/csr_du_vi.cpp.o"
  "CMakeFiles/spc_formats.dir/csr_du_vi.cpp.o.d"
  "CMakeFiles/spc_formats.dir/csr_f32.cpp.o"
  "CMakeFiles/spc_formats.dir/csr_f32.cpp.o.d"
  "CMakeFiles/spc_formats.dir/csr_vi.cpp.o"
  "CMakeFiles/spc_formats.dir/csr_vi.cpp.o.d"
  "CMakeFiles/spc_formats.dir/dcsr.cpp.o"
  "CMakeFiles/spc_formats.dir/dcsr.cpp.o.d"
  "CMakeFiles/spc_formats.dir/dia.cpp.o"
  "CMakeFiles/spc_formats.dir/dia.cpp.o.d"
  "CMakeFiles/spc_formats.dir/ell.cpp.o"
  "CMakeFiles/spc_formats.dir/ell.cpp.o.d"
  "CMakeFiles/spc_formats.dir/jds.cpp.o"
  "CMakeFiles/spc_formats.dir/jds.cpp.o.d"
  "CMakeFiles/spc_formats.dir/serialize.cpp.o"
  "CMakeFiles/spc_formats.dir/serialize.cpp.o.d"
  "CMakeFiles/spc_formats.dir/sym_csr.cpp.o"
  "CMakeFiles/spc_formats.dir/sym_csr.cpp.o.d"
  "libspc_formats.a"
  "libspc_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
