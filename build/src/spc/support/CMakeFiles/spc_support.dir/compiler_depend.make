# Empty compiler generated dependencies file for spc_support.
# This may be replaced when dependencies are built.
