
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spc/support/error.cpp" "src/spc/support/CMakeFiles/spc_support.dir/error.cpp.o" "gcc" "src/spc/support/CMakeFiles/spc_support.dir/error.cpp.o.d"
  "/root/repo/src/spc/support/strutil.cpp" "src/spc/support/CMakeFiles/spc_support.dir/strutil.cpp.o" "gcc" "src/spc/support/CMakeFiles/spc_support.dir/strutil.cpp.o.d"
  "/root/repo/src/spc/support/topology.cpp" "src/spc/support/CMakeFiles/spc_support.dir/topology.cpp.o" "gcc" "src/spc/support/CMakeFiles/spc_support.dir/topology.cpp.o.d"
  "/root/repo/src/spc/support/varint.cpp" "src/spc/support/CMakeFiles/spc_support.dir/varint.cpp.o" "gcc" "src/spc/support/CMakeFiles/spc_support.dir/varint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
