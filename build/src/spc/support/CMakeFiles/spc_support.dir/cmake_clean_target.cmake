file(REMOVE_RECURSE
  "libspc_support.a"
)
