file(REMOVE_RECURSE
  "CMakeFiles/spc_support.dir/error.cpp.o"
  "CMakeFiles/spc_support.dir/error.cpp.o.d"
  "CMakeFiles/spc_support.dir/strutil.cpp.o"
  "CMakeFiles/spc_support.dir/strutil.cpp.o.d"
  "CMakeFiles/spc_support.dir/topology.cpp.o"
  "CMakeFiles/spc_support.dir/topology.cpp.o.d"
  "CMakeFiles/spc_support.dir/varint.cpp.o"
  "CMakeFiles/spc_support.dir/varint.cpp.o.d"
  "libspc_support.a"
  "libspc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
