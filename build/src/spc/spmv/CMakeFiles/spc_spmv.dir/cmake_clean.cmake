file(REMOVE_RECURSE
  "CMakeFiles/spc_spmv.dir/instance.cpp.o"
  "CMakeFiles/spc_spmv.dir/instance.cpp.o.d"
  "CMakeFiles/spc_spmv.dir/kernels.cpp.o"
  "CMakeFiles/spc_spmv.dir/kernels.cpp.o.d"
  "CMakeFiles/spc_spmv.dir/spmm.cpp.o"
  "CMakeFiles/spc_spmv.dir/spmm.cpp.o.d"
  "CMakeFiles/spc_spmv.dir/sym_spmv.cpp.o"
  "CMakeFiles/spc_spmv.dir/sym_spmv.cpp.o.d"
  "libspc_spmv.a"
  "libspc_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
