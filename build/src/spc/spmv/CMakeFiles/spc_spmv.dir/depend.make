# Empty dependencies file for spc_spmv.
# This may be replaced when dependencies are built.
