file(REMOVE_RECURSE
  "libspc_spmv.a"
)
