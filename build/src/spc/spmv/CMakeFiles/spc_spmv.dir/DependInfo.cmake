
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spc/spmv/instance.cpp" "src/spc/spmv/CMakeFiles/spc_spmv.dir/instance.cpp.o" "gcc" "src/spc/spmv/CMakeFiles/spc_spmv.dir/instance.cpp.o.d"
  "/root/repo/src/spc/spmv/kernels.cpp" "src/spc/spmv/CMakeFiles/spc_spmv.dir/kernels.cpp.o" "gcc" "src/spc/spmv/CMakeFiles/spc_spmv.dir/kernels.cpp.o.d"
  "/root/repo/src/spc/spmv/spmm.cpp" "src/spc/spmv/CMakeFiles/spc_spmv.dir/spmm.cpp.o" "gcc" "src/spc/spmv/CMakeFiles/spc_spmv.dir/spmm.cpp.o.d"
  "/root/repo/src/spc/spmv/sym_spmv.cpp" "src/spc/spmv/CMakeFiles/spc_spmv.dir/sym_spmv.cpp.o" "gcc" "src/spc/spmv/CMakeFiles/spc_spmv.dir/sym_spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spc/formats/CMakeFiles/spc_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/parallel/CMakeFiles/spc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/obs/CMakeFiles/spc_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/mm/CMakeFiles/spc_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/support/CMakeFiles/spc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
