
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spc/mm/mtx.cpp" "src/spc/mm/CMakeFiles/spc_mm.dir/mtx.cpp.o" "gcc" "src/spc/mm/CMakeFiles/spc_mm.dir/mtx.cpp.o.d"
  "/root/repo/src/spc/mm/ops.cpp" "src/spc/mm/CMakeFiles/spc_mm.dir/ops.cpp.o" "gcc" "src/spc/mm/CMakeFiles/spc_mm.dir/ops.cpp.o.d"
  "/root/repo/src/spc/mm/reorder.cpp" "src/spc/mm/CMakeFiles/spc_mm.dir/reorder.cpp.o" "gcc" "src/spc/mm/CMakeFiles/spc_mm.dir/reorder.cpp.o.d"
  "/root/repo/src/spc/mm/stats.cpp" "src/spc/mm/CMakeFiles/spc_mm.dir/stats.cpp.o" "gcc" "src/spc/mm/CMakeFiles/spc_mm.dir/stats.cpp.o.d"
  "/root/repo/src/spc/mm/triplets.cpp" "src/spc/mm/CMakeFiles/spc_mm.dir/triplets.cpp.o" "gcc" "src/spc/mm/CMakeFiles/spc_mm.dir/triplets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spc/support/CMakeFiles/spc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
