file(REMOVE_RECURSE
  "CMakeFiles/spc_mm.dir/mtx.cpp.o"
  "CMakeFiles/spc_mm.dir/mtx.cpp.o.d"
  "CMakeFiles/spc_mm.dir/ops.cpp.o"
  "CMakeFiles/spc_mm.dir/ops.cpp.o.d"
  "CMakeFiles/spc_mm.dir/reorder.cpp.o"
  "CMakeFiles/spc_mm.dir/reorder.cpp.o.d"
  "CMakeFiles/spc_mm.dir/stats.cpp.o"
  "CMakeFiles/spc_mm.dir/stats.cpp.o.d"
  "CMakeFiles/spc_mm.dir/triplets.cpp.o"
  "CMakeFiles/spc_mm.dir/triplets.cpp.o.d"
  "libspc_mm.a"
  "libspc_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
