file(REMOVE_RECURSE
  "libspc_mm.a"
)
