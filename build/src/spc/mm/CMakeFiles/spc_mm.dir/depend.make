# Empty dependencies file for spc_mm.
# This may be replaced when dependencies are built.
