# Empty compiler generated dependencies file for spc_gen.
# This may be replaced when dependencies are built.
