
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spc/gen/corpus.cpp" "src/spc/gen/CMakeFiles/spc_gen.dir/corpus.cpp.o" "gcc" "src/spc/gen/CMakeFiles/spc_gen.dir/corpus.cpp.o.d"
  "/root/repo/src/spc/gen/generators.cpp" "src/spc/gen/CMakeFiles/spc_gen.dir/generators.cpp.o" "gcc" "src/spc/gen/CMakeFiles/spc_gen.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spc/mm/CMakeFiles/spc_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/support/CMakeFiles/spc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
