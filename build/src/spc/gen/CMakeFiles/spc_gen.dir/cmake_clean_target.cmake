file(REMOVE_RECURSE
  "libspc_gen.a"
)
