file(REMOVE_RECURSE
  "CMakeFiles/spc_gen.dir/corpus.cpp.o"
  "CMakeFiles/spc_gen.dir/corpus.cpp.o.d"
  "CMakeFiles/spc_gen.dir/generators.cpp.o"
  "CMakeFiles/spc_gen.dir/generators.cpp.o.d"
  "libspc_gen.a"
  "libspc_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
