file(REMOVE_RECURSE
  "CMakeFiles/spc_parallel.dir/partition.cpp.o"
  "CMakeFiles/spc_parallel.dir/partition.cpp.o.d"
  "CMakeFiles/spc_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/spc_parallel.dir/thread_pool.cpp.o.d"
  "libspc_parallel.a"
  "libspc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
