file(REMOVE_RECURSE
  "libspc_parallel.a"
)
