# Empty dependencies file for spc_parallel.
# This may be replaced when dependencies are built.
