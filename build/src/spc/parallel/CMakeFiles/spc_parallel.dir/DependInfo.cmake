
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spc/parallel/partition.cpp" "src/spc/parallel/CMakeFiles/spc_parallel.dir/partition.cpp.o" "gcc" "src/spc/parallel/CMakeFiles/spc_parallel.dir/partition.cpp.o.d"
  "/root/repo/src/spc/parallel/thread_pool.cpp" "src/spc/parallel/CMakeFiles/spc_parallel.dir/thread_pool.cpp.o" "gcc" "src/spc/parallel/CMakeFiles/spc_parallel.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spc/mm/CMakeFiles/spc_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/obs/CMakeFiles/spc_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/support/CMakeFiles/spc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
