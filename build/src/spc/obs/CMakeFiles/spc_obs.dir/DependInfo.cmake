
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spc/obs/json.cpp" "src/spc/obs/CMakeFiles/spc_obs.dir/json.cpp.o" "gcc" "src/spc/obs/CMakeFiles/spc_obs.dir/json.cpp.o.d"
  "/root/repo/src/spc/obs/metrics.cpp" "src/spc/obs/CMakeFiles/spc_obs.dir/metrics.cpp.o" "gcc" "src/spc/obs/CMakeFiles/spc_obs.dir/metrics.cpp.o.d"
  "/root/repo/src/spc/obs/metrics_io.cpp" "src/spc/obs/CMakeFiles/spc_obs.dir/metrics_io.cpp.o" "gcc" "src/spc/obs/CMakeFiles/spc_obs.dir/metrics_io.cpp.o.d"
  "/root/repo/src/spc/obs/perf_counters.cpp" "src/spc/obs/CMakeFiles/spc_obs.dir/perf_counters.cpp.o" "gcc" "src/spc/obs/CMakeFiles/spc_obs.dir/perf_counters.cpp.o.d"
  "/root/repo/src/spc/obs/trace.cpp" "src/spc/obs/CMakeFiles/spc_obs.dir/trace.cpp.o" "gcc" "src/spc/obs/CMakeFiles/spc_obs.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spc/support/CMakeFiles/spc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
