# Empty dependencies file for spc_obs.
# This may be replaced when dependencies are built.
