file(REMOVE_RECURSE
  "libspc_obs.a"
)
