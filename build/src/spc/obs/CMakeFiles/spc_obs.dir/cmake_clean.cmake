file(REMOVE_RECURSE
  "CMakeFiles/spc_obs.dir/json.cpp.o"
  "CMakeFiles/spc_obs.dir/json.cpp.o.d"
  "CMakeFiles/spc_obs.dir/metrics.cpp.o"
  "CMakeFiles/spc_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/spc_obs.dir/metrics_io.cpp.o"
  "CMakeFiles/spc_obs.dir/metrics_io.cpp.o.d"
  "CMakeFiles/spc_obs.dir/perf_counters.cpp.o"
  "CMakeFiles/spc_obs.dir/perf_counters.cpp.o.d"
  "CMakeFiles/spc_obs.dir/trace.cpp.o"
  "CMakeFiles/spc_obs.dir/trace.cpp.o.d"
  "libspc_obs.a"
  "libspc_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
