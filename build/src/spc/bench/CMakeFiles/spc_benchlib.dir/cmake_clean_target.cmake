file(REMOVE_RECURSE
  "libspc_benchlib.a"
)
