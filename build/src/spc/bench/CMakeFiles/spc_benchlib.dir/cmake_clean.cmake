file(REMOVE_RECURSE
  "CMakeFiles/spc_benchlib.dir/experiments.cpp.o"
  "CMakeFiles/spc_benchlib.dir/experiments.cpp.o.d"
  "CMakeFiles/spc_benchlib.dir/harness.cpp.o"
  "CMakeFiles/spc_benchlib.dir/harness.cpp.o.d"
  "CMakeFiles/spc_benchlib.dir/model.cpp.o"
  "CMakeFiles/spc_benchlib.dir/model.cpp.o.d"
  "libspc_benchlib.a"
  "libspc_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spc_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
