# Empty compiler generated dependencies file for spc_benchlib.
# This may be replaced when dependencies are built.
