
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mm/reorder_test.cpp" "tests/CMakeFiles/reorder_test.dir/mm/reorder_test.cpp.o" "gcc" "tests/CMakeFiles/reorder_test.dir/mm/reorder_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spc/solvers/CMakeFiles/spc_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/bench/CMakeFiles/spc_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/gen/CMakeFiles/spc_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/spmv/CMakeFiles/spc_spmv.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/formats/CMakeFiles/spc_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/parallel/CMakeFiles/spc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/obs/CMakeFiles/spc_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/mm/CMakeFiles/spc_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/spc/support/CMakeFiles/spc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
