file(REMOVE_RECURSE
  "CMakeFiles/csr_du_raw_test.dir/formats/csr_du_raw_test.cpp.o"
  "CMakeFiles/csr_du_raw_test.dir/formats/csr_du_raw_test.cpp.o.d"
  "csr_du_raw_test"
  "csr_du_raw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_du_raw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
