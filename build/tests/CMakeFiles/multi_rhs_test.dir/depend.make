# Empty dependencies file for multi_rhs_test.
# This may be replaced when dependencies are built.
