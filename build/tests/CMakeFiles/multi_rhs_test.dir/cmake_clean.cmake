file(REMOVE_RECURSE
  "CMakeFiles/multi_rhs_test.dir/solvers/multi_rhs_test.cpp.o"
  "CMakeFiles/multi_rhs_test.dir/solvers/multi_rhs_test.cpp.o.d"
  "multi_rhs_test"
  "multi_rhs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_rhs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
