file(REMOVE_RECURSE
  "CMakeFiles/slice_property_test.dir/spmv/slice_property_test.cpp.o"
  "CMakeFiles/slice_property_test.dir/spmv/slice_property_test.cpp.o.d"
  "slice_property_test"
  "slice_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
