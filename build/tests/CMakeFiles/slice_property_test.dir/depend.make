# Empty dependencies file for slice_property_test.
# This may be replaced when dependencies are built.
