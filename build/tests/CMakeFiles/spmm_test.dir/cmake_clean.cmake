file(REMOVE_RECURSE
  "CMakeFiles/spmm_test.dir/spmv/spmm_test.cpp.o"
  "CMakeFiles/spmm_test.dir/spmv/spmm_test.cpp.o.d"
  "spmm_test"
  "spmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
