# Empty compiler generated dependencies file for mtx_test.
# This may be replaced when dependencies are built.
