file(REMOVE_RECURSE
  "CMakeFiles/mtx_test.dir/mm/mtx_test.cpp.o"
  "CMakeFiles/mtx_test.dir/mm/mtx_test.cpp.o.d"
  "mtx_test"
  "mtx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
