file(REMOVE_RECURSE
  "CMakeFiles/ell_dia_jds_test.dir/formats/ell_dia_jds_test.cpp.o"
  "CMakeFiles/ell_dia_jds_test.dir/formats/ell_dia_jds_test.cpp.o.d"
  "ell_dia_jds_test"
  "ell_dia_jds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ell_dia_jds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
