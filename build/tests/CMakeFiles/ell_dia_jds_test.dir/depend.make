# Empty dependencies file for ell_dia_jds_test.
# This may be replaced when dependencies are built.
