# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ell_dia_jds_test.
