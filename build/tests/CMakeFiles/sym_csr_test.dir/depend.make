# Empty dependencies file for sym_csr_test.
# This may be replaced when dependencies are built.
