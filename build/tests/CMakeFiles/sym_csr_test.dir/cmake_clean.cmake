file(REMOVE_RECURSE
  "CMakeFiles/sym_csr_test.dir/formats/sym_csr_test.cpp.o"
  "CMakeFiles/sym_csr_test.dir/formats/sym_csr_test.cpp.o.d"
  "sym_csr_test"
  "sym_csr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sym_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
