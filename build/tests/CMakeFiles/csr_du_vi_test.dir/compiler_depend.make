# Empty compiler generated dependencies file for csr_du_vi_test.
# This may be replaced when dependencies are built.
