file(REMOVE_RECURSE
  "CMakeFiles/stats_util_test.dir/support/stats_util_test.cpp.o"
  "CMakeFiles/stats_util_test.dir/support/stats_util_test.cpp.o.d"
  "stats_util_test"
  "stats_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
