# Empty compiler generated dependencies file for stats_util_test.
# This may be replaced when dependencies are built.
