# Empty dependencies file for mtx_fuzz_test.
# This may be replaced when dependencies are built.
