file(REMOVE_RECURSE
  "CMakeFiles/mtx_fuzz_test.dir/mm/mtx_fuzz_test.cpp.o"
  "CMakeFiles/mtx_fuzz_test.dir/mm/mtx_fuzz_test.cpp.o.d"
  "mtx_fuzz_test"
  "mtx_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtx_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
