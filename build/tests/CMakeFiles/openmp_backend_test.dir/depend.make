# Empty dependencies file for openmp_backend_test.
# This may be replaced when dependencies are built.
