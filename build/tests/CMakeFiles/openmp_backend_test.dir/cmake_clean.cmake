file(REMOVE_RECURSE
  "CMakeFiles/openmp_backend_test.dir/spmv/openmp_backend_test.cpp.o"
  "CMakeFiles/openmp_backend_test.dir/spmv/openmp_backend_test.cpp.o.d"
  "openmp_backend_test"
  "openmp_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openmp_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
