file(REMOVE_RECURSE
  "CMakeFiles/aligned_test.dir/support/aligned_test.cpp.o"
  "CMakeFiles/aligned_test.dir/support/aligned_test.cpp.o.d"
  "aligned_test"
  "aligned_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aligned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
