# Empty compiler generated dependencies file for coo_csc_test.
# This may be replaced when dependencies are built.
