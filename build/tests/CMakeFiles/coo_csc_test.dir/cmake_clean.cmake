file(REMOVE_RECURSE
  "CMakeFiles/coo_csc_test.dir/formats/coo_csc_test.cpp.o"
  "CMakeFiles/coo_csc_test.dir/formats/coo_csc_test.cpp.o.d"
  "coo_csc_test"
  "coo_csc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coo_csc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
