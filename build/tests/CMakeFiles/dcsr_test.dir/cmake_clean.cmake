file(REMOVE_RECURSE
  "CMakeFiles/dcsr_test.dir/formats/dcsr_test.cpp.o"
  "CMakeFiles/dcsr_test.dir/formats/dcsr_test.cpp.o.d"
  "dcsr_test"
  "dcsr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
