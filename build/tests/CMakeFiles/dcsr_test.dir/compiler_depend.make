# Empty compiler generated dependencies file for dcsr_test.
# This may be replaced when dependencies are built.
