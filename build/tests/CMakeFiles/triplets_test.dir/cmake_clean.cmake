file(REMOVE_RECURSE
  "CMakeFiles/triplets_test.dir/mm/triplets_test.cpp.o"
  "CMakeFiles/triplets_test.dir/mm/triplets_test.cpp.o.d"
  "triplets_test"
  "triplets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triplets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
