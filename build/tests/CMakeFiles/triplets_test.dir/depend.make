# Empty dependencies file for triplets_test.
# This may be replaced when dependencies are built.
