# Empty compiler generated dependencies file for matrix_stats_test.
# This may be replaced when dependencies are built.
