file(REMOVE_RECURSE
  "CMakeFiles/matrix_stats_test.dir/mm/matrix_stats_test.cpp.o"
  "CMakeFiles/matrix_stats_test.dir/mm/matrix_stats_test.cpp.o.d"
  "matrix_stats_test"
  "matrix_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
