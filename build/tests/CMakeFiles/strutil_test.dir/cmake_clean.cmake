file(REMOVE_RECURSE
  "CMakeFiles/strutil_test.dir/support/strutil_test.cpp.o"
  "CMakeFiles/strutil_test.dir/support/strutil_test.cpp.o.d"
  "strutil_test"
  "strutil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
