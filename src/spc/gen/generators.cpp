#include "spc/gen/generators.hpp"

#include <algorithm>
#include <vector>

namespace spc {

namespace {

/// Draws values per the model. Pool values are generated lazily and
/// deterministically from the same Rng.
class ValueDrawer {
 public:
  ValueDrawer(const ValueModel& vm, Rng& rng) : vm_(vm), rng_(rng) {
    if (vm.pool_size > 0) {
      pool_.reserve(vm.pool_size);
      for (std::uint32_t i = 0; i < vm.pool_size; ++i) {
        pool_.push_back(rng_.next_double(vm.lo, vm.hi));
      }
    }
  }

  value_t next() {
    if (pool_.empty()) {
      return rng_.next_double(vm_.lo, vm_.hi);
    }
    return pool_[rng_.next_below(pool_.size())];
  }

 private:
  const ValueModel vm_;
  Rng& rng_;
  std::vector<value_t> pool_;
};

}  // namespace

Triplets gen_laplacian_2d(index_t nx, index_t ny) {
  SPC_CHECK_MSG(nx >= 2 && ny >= 2, "grid must be at least 2x2");
  const index_t n = nx * ny;
  Triplets t(n, n);
  t.reserve(static_cast<usize_t>(n) * 5);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = j * nx + i;
      if (j > 0) {
        t.add(row, row - nx, -1.0);
      }
      if (i > 0) {
        t.add(row, row - 1, -1.0);
      }
      t.add(row, row, 4.0);
      if (i + 1 < nx) {
        t.add(row, row + 1, -1.0);
      }
      if (j + 1 < ny) {
        t.add(row, row + nx, -1.0);
      }
    }
  }
  t.sort_and_combine();
  return t;
}

Triplets gen_laplacian_3d(index_t nx, index_t ny, index_t nz) {
  SPC_CHECK_MSG(nx >= 2 && ny >= 2 && nz >= 2, "grid must be at least 2^3");
  const index_t n = nx * ny * nz;
  Triplets t(n, n);
  t.reserve(static_cast<usize_t>(n) * 7);
  const index_t sy = nx;
  const index_t sz = nx * ny;
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t row = k * sz + j * sy + i;
        if (k > 0) {
          t.add(row, row - sz, -1.0);
        }
        if (j > 0) {
          t.add(row, row - sy, -1.0);
        }
        if (i > 0) {
          t.add(row, row - 1, -1.0);
        }
        t.add(row, row, 6.0);
        if (i + 1 < nx) {
          t.add(row, row + 1, -1.0);
        }
        if (j + 1 < ny) {
          t.add(row, row + sy, -1.0);
        }
        if (k + 1 < nz) {
          t.add(row, row + sz, -1.0);
        }
      }
    }
  }
  t.sort_and_combine();
  return t;
}

Triplets gen_stencil_9pt(index_t nx, index_t ny) {
  SPC_CHECK_MSG(nx >= 3 && ny >= 3, "grid must be at least 3x3");
  const index_t n = nx * ny;
  Triplets t(n, n);
  t.reserve(static_cast<usize_t>(n) * 9);
  // Distinct coefficient per stencil offset: 9 unique values total.
  const value_t coef[9] = {-0.21, -0.52, -0.27, -0.55, 3.0,
                           -0.58, -0.29, -0.60, -0.23};
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = j * nx + i;
      int c = 0;
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di, ++c) {
          const std::int64_t jj = static_cast<std::int64_t>(j) + dj;
          const std::int64_t ii = static_cast<std::int64_t>(i) + di;
          if (jj < 0 || jj >= ny || ii < 0 || ii >= nx) {
            continue;
          }
          t.add(row, static_cast<index_t>(jj * nx + ii), coef[c]);
        }
      }
    }
  }
  t.sort_and_combine();
  return t;
}

Triplets gen_banded(index_t n, index_t half_bw, index_t nnz_per_row,
                    Rng& rng, const ValueModel& vm) {
  SPC_CHECK_MSG(n >= 1 && nnz_per_row >= 1, "empty matrix requested");
  ValueDrawer draw(vm, rng);
  Triplets t(n, n);
  t.reserve(static_cast<usize_t>(n) * nnz_per_row);
  for (index_t r = 0; r < n; ++r) {
    const std::int64_t lo =
        std::max<std::int64_t>(0, static_cast<std::int64_t>(r) - half_bw);
    const std::int64_t hi =
        std::min<std::int64_t>(n - 1, static_cast<std::int64_t>(r) + half_bw);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo + 1);
    t.add(r, r, draw.next());  // keep the diagonal
    for (index_t k = 1; k < nnz_per_row; ++k) {
      const index_t col =
          static_cast<index_t>(lo + static_cast<std::int64_t>(
                                        rng.next_below(span)));
      t.add(r, col, draw.next());
    }
  }
  t.sort_and_dedup_keep_first();
  return t;
}

Triplets gen_random_uniform(index_t nrows, index_t ncols,
                            index_t nnz_per_row, Rng& rng,
                            const ValueModel& vm) {
  SPC_CHECK_MSG(nrows >= 1 && ncols >= 1, "empty matrix requested");
  ValueDrawer draw(vm, rng);
  Triplets t(nrows, ncols);
  t.reserve(static_cast<usize_t>(nrows) * nnz_per_row);
  for (index_t r = 0; r < nrows; ++r) {
    for (index_t k = 0; k < nnz_per_row; ++k) {
      t.add(r, static_cast<index_t>(rng.next_below(ncols)), draw.next());
    }
  }
  t.sort_and_dedup_keep_first();
  return t;
}

Triplets gen_rmat(std::uint32_t scale, usize_t nnz_target, Rng& rng,
                  const ValueModel& vm, double a, double b, double c) {
  SPC_CHECK_MSG(scale >= 1 && scale <= 30, "rmat scale out of range");
  SPC_CHECK_MSG(a + b + c < 1.0, "rmat probabilities must sum below 1");
  ValueDrawer draw(vm, rng);
  const index_t n = index_t{1} << scale;
  Triplets t(n, n);
  t.reserve(nnz_target);
  for (usize_t e = 0; e < nnz_target; ++e) {
    index_t r = 0, col = 0;
    for (std::uint32_t level = 0; level < scale; ++level) {
      const double p = rng.next_double();
      r <<= 1;
      col <<= 1;
      if (p < a) {
        // top-left quadrant
      } else if (p < a + b) {
        col |= 1;
      } else if (p < a + b + c) {
        r |= 1;
      } else {
        r |= 1;
        col |= 1;
      }
    }
    t.add(r, col, draw.next());
  }
  t.sort_and_dedup_keep_first();
  return t;
}

Triplets gen_fem_blocks(index_t nodes, index_t block,
                        index_t blocks_per_row, Rng& rng,
                        const ValueModel& vm) {
  SPC_CHECK_MSG(block >= 1 && block <= 8, "block size out of range");
  ValueDrawer draw(vm, rng);
  const index_t n = nodes * block;
  Triplets t(n, n);
  t.reserve(static_cast<usize_t>(nodes) * blocks_per_row * block * block);
  for (index_t node = 0; node < nodes; ++node) {
    // The diagonal block plus blocks_per_row-1 random coupling blocks.
    std::vector<index_t> partners = {node};
    for (index_t k = 1; k < blocks_per_row; ++k) {
      partners.push_back(static_cast<index_t>(rng.next_below(nodes)));
    }
    std::sort(partners.begin(), partners.end());
    partners.erase(std::unique(partners.begin(), partners.end()),
                   partners.end());
    for (const index_t p : partners) {
      for (index_t lr = 0; lr < block; ++lr) {
        for (index_t lc = 0; lc < block; ++lc) {
          t.add(node * block + lr, p * block + lc, draw.next());
        }
      }
    }
  }
  t.sort_and_dedup_keep_first();
  return t;
}

Triplets gen_diag_plus_random(index_t n, index_t extra_per_row, Rng& rng,
                              const ValueModel& vm) {
  ValueDrawer draw(vm, rng);
  Triplets t(n, n);
  t.reserve(static_cast<usize_t>(n) * (1 + extra_per_row));
  for (index_t r = 0; r < n; ++r) {
    t.add(r, r, draw.next());
    for (index_t k = 0; k < extra_per_row; ++k) {
      t.add(r, static_cast<index_t>(rng.next_below(n)), draw.next());
    }
  }
  t.sort_and_dedup_keep_first();
  return t;
}

Triplets gen_ragged(index_t nrows, index_t ncols, index_t max_row_len,
                    double empty_fraction, Rng& rng, const ValueModel& vm) {
  SPC_CHECK_MSG(max_row_len >= 1, "max_row_len must be >= 1");
  ValueDrawer draw(vm, rng);
  Triplets t(nrows, ncols);
  for (index_t r = 0; r < nrows; ++r) {
    if (rng.next_bernoulli(empty_fraction)) {
      continue;  // deliberately empty row
    }
    const index_t len =
        1 + static_cast<index_t>(rng.next_below(max_row_len));
    for (index_t k = 0; k < len; ++k) {
      t.add(r, static_cast<index_t>(rng.next_below(ncols)), draw.next());
    }
  }
  t.sort_and_dedup_keep_first();
  return t;
}

}  // namespace spc

namespace spc {

Triplets gen_kronecker(const Triplets& a, const Triplets& b) {
  SPC_CHECK_MSG(a.nnz() > 0 && b.nnz() > 0,
                "kronecker factors must be non-empty");
  const std::uint64_t nrows =
      static_cast<std::uint64_t>(a.nrows()) * b.nrows();
  const std::uint64_t ncols =
      static_cast<std::uint64_t>(a.ncols()) * b.ncols();
  SPC_CHECK_MSG(nrows <= 0xFFFFFFFFULL && ncols <= 0xFFFFFFFFULL,
                "kronecker product exceeds 32-bit indexing");
  Triplets out(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  out.reserve(a.nnz() * b.nnz());
  for (const Entry& ea : a.entries()) {
    for (const Entry& eb : b.entries()) {
      out.add(ea.row * b.nrows() + eb.row, ea.col * b.ncols() + eb.col,
              ea.val * eb.val);
    }
  }
  out.sort_and_combine();
  return out;
}

}  // namespace spc
