#include "spc/gen/corpus.hpp"

#include "spc/gen/generators.hpp"
#include "spc/support/error.hpp"
#include "spc/support/strutil.hpp"

namespace spc {

namespace {

// Deterministic per-entry seed so adding entries never perturbs others.
std::uint64_t seed_of(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Linear dimension divisor per scale (nnz shrinks roughly quadratically
// for grids, linearly for fixed nnz/row recipes).
struct ScaleParams {
  index_t div;        // divisor for linear dimensions
  usize_t nnz_div;    // divisor for explicit nnz targets
};

ScaleParams params_for(CorpusScale s) {
  switch (s) {
    case CorpusScale::kTiny:
      return {24, 400};
    case CorpusScale::kSmall:
      return {6, 20};
    case CorpusScale::kBench:
      return {1, 1};
  }
  return {1, 1};
}

index_t at_least(index_t v, index_t lo) { return v < lo ? lo : v; }

}  // namespace

std::vector<CorpusSpec> corpus_specs(CorpusScale scale) {
  const ScaleParams sp = params_for(scale);
  const index_t d = sp.div;
  std::vector<CorpusSpec> out;

  const auto add = [&out](std::string name, std::string cls,
                          bool vi_friendly,
                          std::function<Triplets()> build) {
    out.push_back(CorpusSpec{std::move(name), std::move(cls), vi_friendly,
                             std::move(build)});
  };

  // --- FEM / PDE stencils (few unique values, short deltas) -------------
  add("lap2d-s", "fem", true, [d] {
    return gen_laplacian_2d(at_least(320 / d, 4), at_least(320 / d, 4));
  });
  add("lap2d-m", "fem", true, [d] {
    return gen_laplacian_2d(at_least(512 / d, 4), at_least(512 / d, 4));
  });
  add("lap2d-l", "fem", true, [d] {
    return gen_laplacian_2d(at_least(760 / d, 4), at_least(760 / d, 4));
  });
  add("lap3d-s", "fem", true, [d] {
    return gen_laplacian_3d(at_least(48 / d, 3), at_least(48 / d, 3),
                            at_least(48 / d, 3));
  });
  add("lap3d-m", "fem", true, [d] {
    return gen_laplacian_3d(at_least(56 / d, 3), at_least(56 / d, 3),
                            at_least(56 / d, 3));
  });
  add("lap3d-l", "fem", true, [d] {
    return gen_laplacian_3d(at_least(72 / d, 3), at_least(72 / d, 3),
                            at_least(72 / d, 3));
  });
  add("sten9-s", "fem", true, [d] {
    return gen_stencil_9pt(at_least(288 / d, 3), at_least(288 / d, 3));
  });
  add("sten9-m", "fem", true, [d] {
    return gen_stencil_9pt(at_least(380 / d, 3), at_least(380 / d, 3));
  });
  add("sten9-l", "fem", true, [d] {
    return gen_stencil_9pt(at_least(640 / d, 3), at_least(640 / d, 3));
  });

  // --- banded systems ----------------------------------------------------
  add("band-pool-s", "banded", true, [d] {
    Rng rng(seed_of("band-pool-s"));
    return gen_banded(at_least(120000 / d, 32), at_least(96 / d, 2), 8, rng,
                      ValueModel::pooled(48));
  });
  add("band-pool-l", "banded", true, [d] {
    Rng rng(seed_of("band-pool-l"));
    return gen_banded(at_least(240000 / d, 32), at_least(512 / d, 2), 10,
                      rng, ValueModel::pooled(96));
  });
  add("band-pool-m", "banded", true, [d] {
    Rng rng(seed_of("band-pool-m"));
    return gen_banded(at_least(60000 / d, 32), at_least(128 / d, 2), 8,
                      rng, ValueModel::pooled(64));
  });
  add("band-rand-s", "banded", false, [d] {
    Rng rng(seed_of("band-rand-s"));
    return gen_banded(at_least(100000 / d, 32), at_least(128 / d, 2), 7,
                      rng, ValueModel::random());
  });
  add("band-rand-m", "banded", false, [d] {
    Rng rng(seed_of("band-rand-m"));
    return gen_banded(at_least(50000 / d, 32), at_least(256 / d, 2), 7,
                      rng, ValueModel::random());
  });
  add("band-rand-l", "banded", false, [d] {
    Rng rng(seed_of("band-rand-l"));
    return gen_banded(at_least(260000 / d, 32), at_least(2048 / d, 2), 9,
                      rng, ValueModel::random());
  });

  // --- uniform random (CSR-DU stress: wide deltas) ------------------------
  add("rand-s", "random", false, [d] {
    Rng rng(seed_of("rand-s"));
    const index_t n = at_least(90000 / d, 64);
    return gen_random_uniform(n, n, 6, rng, ValueModel::random());
  });
  add("rand-m", "random", false, [d] {
    Rng rng(seed_of("rand-m"));
    const index_t n = at_least(40000 / d, 64);
    return gen_random_uniform(n, n, 7, rng, ValueModel::random());
  });
  add("rand-l", "random", false, [d] {
    Rng rng(seed_of("rand-l"));
    const index_t n = at_least(280000 / d, 64);
    return gen_random_uniform(n, n, 8, rng, ValueModel::random());
  });
  add("rand-pool-l", "random", true, [d] {
    Rng rng(seed_of("rand-pool-l"));
    const index_t n = at_least(240000 / d, 64);
    return gen_random_uniform(n, n, 8, rng, ValueModel::pooled(128));
  });
  add("rand-wide", "random", false, [d] {
    Rng rng(seed_of("rand-wide"));
    // Rectangular: more columns than rows (wide deltas, u32 units).
    const index_t nr = at_least(120000 / d, 64);
    return gen_random_uniform(nr, nr * 4, 9, rng, ValueModel::random());
  });

  // --- power-law graphs ----------------------------------------------------
  {
    const std::uint32_t sc_s = scale == CorpusScale::kBench   ? 17u
                               : scale == CorpusScale::kSmall ? 14u
                                                              : 9u;
    const std::uint32_t sc_l = scale == CorpusScale::kBench   ? 19u
                               : scale == CorpusScale::kSmall ? 15u
                                                              : 10u;
    add("rmat-s", "graph", true, [sc_s, sp] {
      Rng rng(seed_of("rmat-s"));
      return gen_rmat(sc_s, 1000000 / sp.nnz_div + 512, rng,
                      ValueModel::pooled(32));
    });
    const std::uint32_t sc_m = scale == CorpusScale::kBench   ? 16u
                               : scale == CorpusScale::kSmall ? 13u
                                                              : 9u;
    add("rmat-m", "graph", false, [sc_m, sp] {
      Rng rng(seed_of("rmat-m"));
      return gen_rmat(sc_m, 600000 / sp.nnz_div + 512, rng,
                      ValueModel::random());
    });
    add("rmat-l", "graph", false, [sc_l, sp] {
      Rng rng(seed_of("rmat-l"));
      return gen_rmat(sc_l, 2800000 / sp.nnz_div + 512, rng,
                      ValueModel::random());
    });
  }

  // --- FEM block matrices (BCSR's home turf) -------------------------------
  add("femblk-s", "fem-block", true, [d] {
    Rng rng(seed_of("femblk-s"));
    return gen_fem_blocks(at_least(24000 / d, 16), 3, 7, rng,
                          ValueModel::pooled(256));
  });
  add("femblk-m", "fem-block", true, [d] {
    Rng rng(seed_of("femblk-m"));
    return gen_fem_blocks(at_least(8000 / d, 16), 3, 6, rng,
                          ValueModel::pooled(128));
  });
  add("femblk-l", "fem-block", false, [d] {
    Rng rng(seed_of("femblk-l"));
    return gen_fem_blocks(at_least(42000 / d, 16), 4, 6, rng,
                          ValueModel::random());
  });

  // --- hierarchical (Kronecker) structure ----------------------------------
  add("kron-lap", "kronecker", true, [d] {
    // Laplacian ⊗ Laplacian: tensor-product discretization. Values are
    // products of {4,-1}×{4,-1} → 3 unique values, strongly VI-friendly.
    const index_t fa = at_least(16 / (d > 4 ? 4 : d), 3);
    const index_t fb = at_least(18 / (d > 4 ? 4 : d), 3);
    return gen_kronecker(gen_laplacian_2d(fa, fa),
                         gen_laplacian_2d(fb, fb));
  });

  // --- misc structure -------------------------------------------------------
  add("diag-pool", "diag", true, [d] {
    Rng rng(seed_of("diag-pool"));
    return gen_diag_plus_random(at_least(200000 / d, 64), 2, rng,
                                ValueModel::pooled(16));
  });
  add("diag-rand", "diag", false, [d] {
    Rng rng(seed_of("diag-rand"));
    return gen_diag_plus_random(at_least(150000 / d, 64), 3, rng,
                                ValueModel::random());
  });
  add("diag-pool-m", "diag", true, [d] {
    Rng rng(seed_of("diag-pool-m"));
    return gen_diag_plus_random(at_least(100000 / d, 64), 2, rng,
                                ValueModel::pooled(24));
  });
  add("ragged-m", "irregular", false, [d] {
    Rng rng(seed_of("ragged-m"));
    const index_t n = at_least(60000 / d, 64);
    return gen_ragged(n, n, 18, 0.04, rng, ValueModel::random());
  });
  add("ragged", "irregular", false, [d] {
    Rng rng(seed_of("ragged"));
    const index_t n = at_least(130000 / d, 64);
    return gen_ragged(n, n, 20, 0.05, rng, ValueModel::random());
  });
  add("ragged-pool", "irregular", true, [d] {
    Rng rng(seed_of("ragged-pool"));
    const index_t n = at_least(110000 / d, 64);
    return gen_ragged(n, n, 24, 0.10, rng, ValueModel::pooled(64));
  });

  return out;
}

CorpusSpec corpus_spec(const std::string& name, CorpusScale scale) {
  for (auto& spec : corpus_specs(scale)) {
    if (spec.name == name) {
      return spec;
    }
  }
  throw InvalidArgument("unknown corpus matrix: " + name);
}

CorpusScale parse_corpus_scale(const std::string& s) {
  const std::string v = to_lower(s);
  if (v == "tiny") {
    return CorpusScale::kTiny;
  }
  if (v == "small") {
    return CorpusScale::kSmall;
  }
  if (v == "bench") {
    return CorpusScale::kBench;
  }
  throw InvalidArgument("unknown corpus scale: " + s);
}

}  // namespace spc
