// The experiment corpus — the stand-in for the paper's 77-matrix UF suite.
//
// Each entry is a named, deterministic recipe (generator + parameters +
// fixed seed). Entries span the structural classes of the paper's suite
// (FEM stencils, banded systems, random, power-law graphs, block
// matrices) and both value regimes (few-unique → CSR-VI applicable,
// fully random → not). Matrices are built lazily so benches can process
// one at a time.
//
// Three scales share the same recipes with scaled dimensions:
//   kTiny  — unit/property tests (≤ ~10k nnz)
//   kSmall — smoke benches, CI (~100k nnz)
//   kBench — experiment runs; working sets span ~2 MB .. ~50 MB so the
//            MS / ML split of §VI-B has members on both sides
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "spc/mm/triplets.hpp"

namespace spc {

enum class CorpusScale { kTiny, kSmall, kBench };

struct CorpusSpec {
  std::string name;
  std::string cls;        ///< structural class label ("fem", "graph", ...)
  bool vi_friendly;       ///< recipe draws values from a small pool
  std::function<Triplets()> build;
};

/// All corpus recipes at the given scale, in a stable order.
std::vector<CorpusSpec> corpus_specs(CorpusScale scale);

/// Finds one recipe by name; throws InvalidArgument if absent.
CorpusSpec corpus_spec(const std::string& name, CorpusScale scale);

/// Parses "tiny" / "small" / "bench".
CorpusScale parse_corpus_scale(const std::string& s);

}  // namespace spc
