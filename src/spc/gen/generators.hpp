// Synthetic sparse matrix generators.
//
// The paper evaluates on 77 matrices from the UF (Davis) collection; that
// collection is not available offline, so the corpus (corpus.hpp) is built
// from these generators instead. Each generator reproduces one structural
// class found in the collection, with the two properties the paper's
// effects depend on exposed as parameters:
//   * column-delta distribution (drives CSR-DU compressibility), and
//   * the number of distinct values (drives CSR-VI applicability).
// All generators are deterministic given the Rng.
#pragma once

#include <cstdint>

#include "spc/mm/triplets.hpp"
#include "spc/support/rng.hpp"

namespace spc {

/// How numerical values are assigned to the generated non-zeros.
struct ValueModel {
  /// 0 = every value an independent uniform draw (ttu ≈ 1);
  /// k > 0 = values drawn from a pool of k distinct values (ttu ≈ nnz/k).
  std::uint32_t pool_size = 0;
  double lo = -1.0;
  double hi = 1.0;

  static ValueModel random() { return ValueModel{0, -1.0, 1.0}; }
  static ValueModel pooled(std::uint32_t k) { return ValueModel{k, -1.0, 1.0}; }
};

/// 5-point 2D Laplacian on an nx × ny grid (FEM/PDE class; 2 distinct
/// values, narrow band). n = nx*ny rows.
Triplets gen_laplacian_2d(index_t nx, index_t ny);

/// 7-point 3D Laplacian on an nx × ny × nz grid (3 distinct values,
/// three diagonal bands at distance 1, nx, nx*ny).
Triplets gen_laplacian_3d(index_t nx, index_t ny, index_t nz);

/// 9-point 2D stencil with distinct per-offset coefficients (9 unique
/// values — still strongly CSR-VI friendly).
Triplets gen_stencil_9pt(index_t nx, index_t ny);

/// Banded matrix: each row has ~`nnz_per_row` entries uniformly inside a
/// band of half-width `half_bw` around the diagonal.
Triplets gen_banded(index_t n, index_t half_bw, index_t nnz_per_row,
                    Rng& rng, const ValueModel& vm);

/// Uniform random sparse matrix: `nnz_per_row` entries per row at uniform
/// random columns (large deltas — the CSR-DU stress case).
Triplets gen_random_uniform(index_t nrows, index_t ncols,
                            index_t nnz_per_row, Rng& rng,
                            const ValueModel& vm);

/// R-MAT power-law graph adjacency matrix (graph/web class: skewed row
/// lengths, clustered columns). `scale` gives n = 2^scale vertices.
Triplets gen_rmat(std::uint32_t scale, usize_t nnz_target, Rng& rng,
                  const ValueModel& vm, double a = 0.57, double b = 0.19,
                  double c = 0.19);

/// FEM-style block matrix: a sparse pattern of dense `block`×`block`
/// tiles (BCSR's best case, and short intra-row deltas for CSR-DU).
Triplets gen_fem_blocks(index_t nodes, index_t block,
                        index_t blocks_per_row, Rng& rng,
                        const ValueModel& vm);

/// Diagonal matrix plus `extra_per_row` random off-diagonals — borderline
/// row lengths exercise loop-overhead effects (§III-A).
Triplets gen_diag_plus_random(index_t n, index_t extra_per_row, Rng& rng,
                              const ValueModel& vm);

/// Rows with wildly varying lengths (some empty): worst case for row
/// partitioning balance and for formats without empty-row support.
Triplets gen_ragged(index_t nrows, index_t ncols, index_t max_row_len,
                    double empty_fraction, Rng& rng, const ValueModel& vm);

/// Kronecker product A ⊗ B — builds hierarchically structured matrices
/// (multigrid operators, tensor discretizations) from small factors.
/// Result is (a.nrows*b.nrows) × (a.ncols*b.ncols) with nnz(A)*nnz(B)
/// entries; entry ((ar*bn+br),(ac*bm+bc)) = a_val * b_val.
Triplets gen_kronecker(const Triplets& a, const Triplets& b);

}  // namespace spc
