// Per-matrix autotuner: features → cost-model pruning → empirical probe.
//
// No single format wins everywhere (the paper's own Tables II–IV switch
// winners matrix by matrix), so `auto_instance` picks the configuration
// per (matrix, machine) in three stages:
//   1. extract_features + prune_candidates (cost.hpp) cut the format
//      pool to a few plausible candidates from structure alone;
//   2. a short *interleaved* timed probe measures the survivors — the
//      candidates take turns round-robin (the regress_check sub-pass
//      trick), so slow frequency/thermal drift hits every candidate
//      equally instead of biasing whichever ran last — and the lowest
//      median wins, with a tie margin in plain CSR's favor so noise can
//      never auto-select a regression over the default;
//   3. the winner is persisted in the tuning cache (cache.hpp), and any
//      later run with the same matrix fingerprint, machine id, and
//      execution context skips stages 1–2 entirely (probe_ns == 0).
//
// The returned SpmvInstance carries TuneProvenance so the bench harness
// records tuned / cache_hit / probe_ns / source alongside the cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spc/spmv/instance.hpp"
#include "spc/tune/cost.hpp"
#include "spc/tune/features.hpp"

namespace spc::tune {

struct TuneOptions {
  /// Interleaved probe shape: `rounds` passes over the candidate set,
  /// `iters_per_round` timed runs per candidate per pass, after
  /// `warmup` untimed runs each. 3×4 keeps the probe under ~25 SpMV
  /// runs per candidate-set while still pooling samples across drift.
  std::size_t rounds = 3;
  std::size_t iters_per_round = 4;
  std::size_t warmup = 1;
  std::size_t max_candidates = 4;
  /// A compressed candidate must beat CSR's median by more than this
  /// relative margin to dethrone it — the baseline wins ties.
  double csr_tie_margin = 0.03;
  bool use_cache = true;
  /// Empty = TuneCache::default_path() (SPC_TUNE_CACHE or
  /// results/tune_cache.jsonl).
  std::string cache_path;
};

struct TuneReport {
  Format chosen = Format::kCsr;
  bool cache_hit = false;
  std::uint64_t probe_ns = 0;   ///< total tuning wall time (0 on hit)
  std::string source;           ///< "cache" | "probe" | "cost-model"
  std::string fingerprint;
  TuneFeatures features;
  std::vector<Format> candidates;       ///< post-pruning, probe order
  std::vector<double> median_probe_ns;  ///< per candidate; empty on hit
};

/// True when SPC_TUNE requests auto format selection (1|true|on|yes).
/// format=auto entry points consult this; hand-picked formats ignore it.
bool tune_enabled();

/// Builds the auto-selected instance for `t` under `opts` (the same
/// options a hand-constructed instance would get — NUMA, schedule, and
/// tiling requests all apply to every candidate equally). Emits
/// spc.tune.* metrics and stamps the returned instance's provenance.
SpmvInstance auto_instance(const Triplets& t, std::size_t nthreads = 1,
                           const InstanceOptions& opts = {},
                           const TuneOptions& topts = {},
                           TuneReport* report = nullptr);

/// Format-only selection for callers that build the instance themselves
/// — the serving engine registers a matrix by picking its format here,
/// then constructing the instance against its shared pool. Same staged
/// flow and cache as auto_instance (a warm cache answers without
/// probing, probe_ns == 0); the probe instances are discarded. A cached
/// format name this build cannot parse falls back to a re-probe, but a
/// cached format the matrix can no longer encode surfaces when the
/// caller constructs (auto_instance additionally validates by building).
Format pick_format(const Triplets& t, std::size_t nthreads = 1,
                   const InstanceOptions& opts = {},
                   const TuneOptions& topts = {},
                   TuneReport* report = nullptr);

}  // namespace spc::tune
