#include "spc/tune/features.hpp"

#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "spc/spmv/tiling.hpp"
#include "spc/support/error.hpp"

namespace spc::tune {

namespace {

class Fnv1a {
 public:
  void add_bytes(const void* p, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ull;
    }
  }
  void add_u64(std::uint64_t v) {
    // Fixed-width little-endian feed: the hash must not depend on host
    // integer widths or struct padding.
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    add_bytes(b, sizeof(b));
  }
  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h_));
    return std::string(buf);
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::string matrix_fingerprint(const Triplets& t) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "matrix_fingerprint requires sorted/combined triplets");
  Fnv1a h;
  h.add_u64(t.nrows());
  h.add_u64(t.ncols());
  h.add_u64(t.nnz());
  for (const Entry& e : t.entries()) {
    h.add_u64(e.row);
    h.add_u64(e.col);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(e.val));
    std::memcpy(&bits, &e.val, sizeof(bits));
    h.add_u64(bits);
  }
  return h.hex();
}

TuneFeatures extract_features(const Triplets& t) {
  TuneFeatures f;
  f.stats = compute_stats(t);
  std::uint64_t total = 0;
  for (const auto c : f.stats.delta_class_count) {
    total += c;
  }
  if (total > 0) {
    for (int i = 0; i < 4; ++i) {
      f.delta_share[i] = static_cast<double>(f.stats.delta_class_count[i]) /
                         static_cast<double>(total);
    }
  }
  f.delta1_frac = f.stats.delta1_fraction();
  f.mean_row_span = mean_row_span_cols(t);
  f.row_cv = f.stats.row_len_mean > 0.0
                 ? f.stats.row_len_stddev / f.stats.row_len_mean
                 : 0.0;

  for (const Entry& e : t.entries()) {
    if (e.row == e.col) {
      ++f.ndiag;
    }
  }

  if (t.nrows() == t.ncols() && t.nnz() > 0) {
    // One map serves both symmetry checks: key = (row, col), payload =
    // the value's bit pattern, so the mirror lookup can also decide
    // value symmetry. Bitwise equality is a conservative proxy for
    // SymCsr::applicable's value comparison (it differs only on ±0.0
    // mirrors, where the tuner just declines the sym formats).
    std::unordered_map<std::uint64_t, std::uint64_t> pattern;
    pattern.reserve(t.nnz());
    for (const Entry& e : t.entries()) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(e.val));
      std::memcpy(&bits, &e.val, sizeof(bits));
      pattern.emplace((static_cast<std::uint64_t>(e.row) << 32) | e.col,
                      bits);
    }
    bool sym = true;
    bool vsym = true;
    for (const Entry& e : t.entries()) {
      const auto it = pattern.find(
          (static_cast<std::uint64_t>(e.col) << 32) | e.row);
      if (it == pattern.end()) {
        sym = false;
        vsym = false;
        break;
      }
      std::uint64_t bits;
      std::memcpy(&bits, &e.val, sizeof(bits));
      if (it->second != bits) {
        vsym = false;
      }
    }
    f.structurally_symmetric = sym;
    f.value_symmetric = vsym;
  }

  f.fingerprint = matrix_fingerprint(t);
  return f;
}

}  // namespace spc::tune
