// Persistent tuning cache: probed winners, keyed by matrix and machine.
//
// Probing costs a handful of SpMV encodings and timed runs — fine once,
// wrong on every run of a production service. The cache remembers each
// probe's winner in a JSONL file beside the run-ledger (results/ by
// convention, SPC_TUNE_CACHE to relocate), keyed by the matrix content
// fingerprint plus the MachineFingerprint id plus the execution context
// (threads, isa, numa, schedule, tiling). A repeat run on the same
// matrix and machine constructs the cached winner directly and skips
// the probe entirely (probe_ns == 0 in the bench provenance); a run on
// different hardware, a different thread count, or a touched matrix
// misses — entries are never reused across machines, the id is part of
// the key. Unreadable lines are counted and skipped, and a cache that
// cannot be written degrades to a warning, never an error: tuning must
// work from a read-only checkout.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace spc::tune {

struct TuneCacheKey {
  std::string matrix_fp;   ///< matrix_fingerprint() hex
  std::string machine_id;  ///< obs::MachineFingerprint::id()
  std::size_t threads = 1;
  std::string isa;         ///< active tier name
  std::string numa;        ///< requested policy name (env-resolved)
  std::string schedule;    ///< requested schedule name (env-resolved)
  std::string tiling;      ///< tile config name (env-resolved)

  std::string key() const;
};

struct TuneCacheEntry {
  TuneCacheKey key;
  std::string format;            ///< winning format_name()
  std::uint64_t probe_ns = 0;    ///< wall time the original probe cost
  double best_ns_per_iter = 0.0; ///< the winner's median probe time
  std::string git_sha;           ///< revision that probed
};

class TuneCache {
 public:
  /// Binds to `path` and loads any existing entries (missing file =
  /// empty cache). Later lines win on duplicate keys, so re-probing a
  /// matrix simply appends the fresher verdict.
  explicit TuneCache(std::string path);

  /// SPC_TUNE_CACHE, or "results/tune_cache.jsonl" when unset.
  static std::string default_path();

  const std::string& path() const { return path_; }

  /// True and fills *out when an entry with exactly this key exists.
  bool lookup(const TuneCacheKey& key, TuneCacheEntry* out) const;

  /// Appends the entry to the file (creating parent directories as
  /// needed) and to the in-memory view. An unwritable path warns once
  /// per process and keeps the in-memory entry, so the process still
  /// benefits from its own probes.
  void store(const TuneCacheEntry& entry);

  std::size_t size() const { return entries_.size(); }
  /// Lines of the backing file that failed to parse at load.
  std::size_t bad_lines() const { return bad_lines_; }

 private:
  std::string path_;
  std::map<std::string, TuneCacheEntry> entries_;
  std::size_t bad_lines_ = 0;
};

}  // namespace spc::tune
