#include "spc/tune/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "spc/obs/json.hpp"
#include "spc/obs/ledger.hpp"
#include "spc/support/env.hpp"
#include "spc/support/error.hpp"

namespace spc::tune {

namespace {

std::string json_str(const obs::Json& j, const char* key) {
  const obs::Json* v = j.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

bool parse_entry(const obs::Json& j, TuneCacheEntry* out) {
  if (!j.is_object() || json_str(j, "tune") != "v1") {
    return false;
  }
  TuneCacheEntry e;
  e.key.matrix_fp = json_str(j, "matrix_fp");
  e.key.machine_id = json_str(j, "machine_id");
  const obs::Json* threads = j.find("threads");
  e.key.threads =
      threads != nullptr ? static_cast<std::size_t>(threads->as_u64(1)) : 1;
  e.key.isa = json_str(j, "isa");
  e.key.numa = json_str(j, "numa");
  e.key.schedule = json_str(j, "schedule");
  e.key.tiling = json_str(j, "tiling");
  e.format = json_str(j, "format");
  if (const obs::Json* v = j.find("probe_ns")) {
    e.probe_ns = v->as_u64();
  }
  if (const obs::Json* v = j.find("ns_per_iter")) {
    e.best_ns_per_iter = v->as_double();
  }
  e.git_sha = json_str(j, "git_sha");
  if (e.key.matrix_fp.empty() || e.key.machine_id.empty() ||
      e.format.empty()) {
    return false;
  }
  *out = std::move(e);
  return true;
}

obs::Json entry_json(const TuneCacheEntry& e) {
  obs::Json j = obs::Json::object();
  j.set("tune", "v1");
  j.set("matrix_fp", e.key.matrix_fp);
  j.set("machine_id", e.key.machine_id);
  j.set("threads", static_cast<std::uint64_t>(e.key.threads));
  j.set("isa", e.key.isa);
  j.set("numa", e.key.numa);
  j.set("schedule", e.key.schedule);
  j.set("tiling", e.key.tiling);
  j.set("format", e.format);
  j.set("probe_ns", e.probe_ns);
  j.set("ns_per_iter", e.best_ns_per_iter);
  j.set("git_sha", e.git_sha);
  return j;
}

}  // namespace

std::string TuneCacheKey::key() const {
  std::ostringstream os;
  os << matrix_fp << '|' << machine_id << '|' << threads << '|' << isa
     << '|' << numa << '|' << schedule << '|' << tiling;
  return os.str();
}

std::string TuneCache::default_path() {
  if (const auto p = env_str("SPC_TUNE_CACHE")) {
    return *p;
  }
  return "results/tune_cache.jsonl";
}

TuneCache::TuneCache(std::string path) : path_(std::move(path)) {
  std::ifstream f(path_);
  if (!f) {
    return;  // no cache yet: every lookup misses
  }
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) {
      continue;
    }
    obs::Json j;
    try {
      j = obs::Json::parse(line);
    } catch (const Error&) {
      ++bad_lines_;
      continue;
    }
    TuneCacheEntry e;
    if (parse_entry(j, &e)) {
      entries_[e.key.key()] = std::move(e);
    } else {
      ++bad_lines_;
    }
  }
}

bool TuneCache::lookup(const TuneCacheKey& key, TuneCacheEntry* out) const {
  const auto it = entries_.find(key.key());
  if (it == entries_.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

void TuneCache::store(const TuneCacheEntry& entry) {
  entries_[entry.key.key()] = entry;
  const std::filesystem::path p(path_);
  std::error_code ec;  // best-effort; the open below is the real test
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream f(path_, std::ios::app);
  if (!f) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "spc: tune cache %s is not writable; probed winners "
                   "will not persist past this process\n",
                   path_.c_str());
    }
    return;
  }
  f << entry_json(entry).dump() << '\n';
  f.flush();
}

}  // namespace spc::tune
