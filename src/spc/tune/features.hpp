// Feature extraction for the per-matrix autotuner.
//
// Kourtis et al.'s results (and the broader format-selection literature)
// show the winning format is a function of a handful of structural and
// value properties: the column-delta distribution drives CSR-DU, the
// total-to-unique value ratio drives CSR-VI (§VI-E's ttu > 5 criterion),
// stride-1 runs drive the RLE variant, and row-length/row-span shape
// decides whether decode overhead can hide behind memory stalls at all.
// TuneFeatures packages exactly those inputs for the cost model
// (cost.hpp), plus a content fingerprint that keys the persistent
// tuning cache (cache.hpp).
#pragma once

#include <string>

#include "spc/mm/stats.hpp"
#include "spc/mm/triplets.hpp"

namespace spc::tune {

struct TuneFeatures {
  MatrixStats stats;
  /// Share of each DeltaClass among all column deltas (sums to 1 when
  /// nnz > 0). Index matches DeltaClass / CSR-DU unit byte widths.
  double delta_share[4] = {0.0, 0.0, 0.0, 0.0};
  /// Fraction of non-zeros at stride 1 from their left neighbor — the
  /// predictor for CSR-DU's RLE units.
  double delta1_frac = 0.0;
  /// nnz-weighted mean column span of a row (bandedness; the tiling
  /// planner uses the same figure).
  double mean_row_span = 0.0;
  /// Coefficient of variation of row lengths (stddev / mean): high
  /// values mean ragged rows, where per-row overheads dominate.
  double row_cv = 0.0;
  /// Square matrix whose pattern equals its transpose's.
  bool structurally_symmetric = false;
  /// Structurally symmetric with bitwise-equal mirrored values — the
  /// precondition for the SSS symmetric formats (sym-csr, sym-csr-vi).
  bool value_symmetric = false;
  /// Number of stored diagonal entries; the symmetric cost model needs
  /// it to size the strict lower triangle ((nnz - ndiag) / 2).
  std::uint64_t ndiag = 0;
  /// 16-hex content hash — see matrix_fingerprint().
  std::string fingerprint;
};

/// 16-hex FNV-1a over the canonical entry stream: dimensions, nnz, then
/// every entry's (row, col, value-bits) in sorted order. Because
/// Triplets::sort_and_combine canonicalizes the entry order, two
/// matrices assembled from the same coordinates in any insertion order
/// hash identically; any change to a dimension, a coordinate, or a
/// value's bit pattern changes the hash. Requires sorted/combined
/// triplets (as every encoder here does).
std::string matrix_fingerprint(const Triplets& t);

/// Computes all features in O(nnz log nnz). Requires sorted/combined
/// triplets.
TuneFeatures extract_features(const Triplets& t);

}  // namespace spc::tune
