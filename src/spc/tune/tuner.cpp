#include "spc/tune/tuner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "spc/mm/vector.hpp"
#include "spc/obs/ledger.hpp"
#include "spc/obs/metrics.hpp"
#include "spc/obs/trace.hpp"
#include "spc/spmv/dispatch.hpp"
#include "spc/spmv/tiling.hpp"
#include "spc/support/env.hpp"
#include "spc/support/error.hpp"
#include "spc/support/first_touch.hpp"
#include "spc/support/rng.hpp"
#include "spc/support/stats.hpp"
#include "spc/support/timing.hpp"
#include "spc/tune/cache.hpp"

namespace spc::tune {

namespace {

// The cache key's execution context: the *requested* configuration
// after env overrides, matching what every candidate instance will be
// built with. Resolution that depends on the matrix (e.g. auto tiling
// declining) happens identically inside each candidate, so it does not
// belong in the key; resolution that depends on the machine is covered
// by machine_id.
TuneCacheKey make_key(const std::string& fingerprint, std::size_t nthreads,
                      const InstanceOptions& opts) {
  TuneCacheKey key;
  key.matrix_fp = fingerprint;
  key.machine_id = obs::machine_fingerprint().id();
  key.threads = nthreads;
  key.isa = isa_tier_name(active_isa_tier());
  key.numa = numa_policy_name(numa_policy_from_env(opts.numa));
  key.schedule = schedule_name(schedule_from_env(opts.schedule));
  key.tiling = tile_config_name(tile_config_from_env(opts.tiling));
  return key;
}

void stamp(SpmvInstance& inst, const TuneReport& rep) {
  SpmvInstance::TuneProvenance p;
  p.tuned = true;
  p.cache_hit = rep.cache_hit;
  p.probe_ns = rep.probe_ns;
  p.source = rep.source;
  p.fingerprint = rep.fingerprint;
  inst.set_tune_provenance(std::move(p));
}

// The staged selection shared by auto_instance and pick_format. Fills
// `rep`; returns the winning instance when `want_instance` (always
// non-null then), nullptr when the caller only wants the format.
std::unique_ptr<SpmvInstance> pick(const Triplets& t, std::size_t nthreads,
                                   const InstanceOptions& opts,
                                   const TuneOptions& topts,
                                   bool want_instance, TuneReport& rep) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("spc.tune.requests").add();
  obs::TraceSpan span("tune");
  const std::uint64_t t_begin = now_ns();
  rep.features = extract_features(t);
  rep.fingerprint = rep.features.fingerprint;
  rep.candidates = prune_candidates(rep.features, topts.max_candidates);

  const std::string cache_path =
      topts.cache_path.empty() ? TuneCache::default_path() : topts.cache_path;
  const TuneCacheKey key = make_key(rep.fingerprint, nthreads, opts);

  if (topts.use_cache) {
    TuneCache cache(cache_path);
    TuneCacheEntry hit;
    if (cache.lookup(key, &hit)) {
      try {
        const Format fmt = parse_format(hit.format);
        // Format-only callers build later themselves; auto_instance
        // validates here so an unencodable cached pick re-probes.
        std::unique_ptr<SpmvInstance> inst;
        if (want_instance) {
          inst = std::make_unique<SpmvInstance>(t, fmt, nthreads, opts);
        }
        reg.counter("spc.tune.cache_hits").add();
        rep.chosen = fmt;
        rep.cache_hit = true;
        rep.probe_ns = 0;  // the whole point: repeat runs skip the probe
        rep.source = "cache";
        return inst;
      } catch (const Error&) {
        // Unknown format name (older/newer writer) or a matrix this
        // build refuses to encode: treat as a miss and re-probe.
      }
    }
  }

  if (rep.candidates.size() == 1) {
    // The model left no choice to measure; skip the probe.
    std::unique_ptr<SpmvInstance> inst;
    if (want_instance) {
      inst = std::make_unique<SpmvInstance>(t, rep.candidates[0], nthreads,
                                            opts);
    }
    rep.chosen = rep.candidates[0];
    rep.probe_ns = now_ns() - t_begin;
    rep.source = "cost-model";
    return inst;
  }

  // Build every surviving candidate once (the encodings coexist for the
  // probe's duration — bounded by max_candidates), dropping any the
  // encoder refuses.
  std::vector<std::unique_ptr<SpmvInstance>> insts;
  std::vector<Format> built;
  for (const Format fmt : rep.candidates) {
    try {
      insts.push_back(
          std::make_unique<SpmvInstance>(t, fmt, nthreads, opts));
      built.push_back(fmt);
    } catch (const Error&) {
      // e.g. a guarded encoder bailing on a pathological shape.
    }
  }
  if (insts.empty()) {
    insts.push_back(
        std::make_unique<SpmvInstance>(t, Format::kCsr, nthreads, opts));
    built.push_back(Format::kCsr);
  }
  rep.candidates = built;

  Rng rng(0x7a11ull ^ t.nnz());
  const Vector x = random_vector(t.ncols(), rng);
  Vector y(t.nrows(), 0.0);
  for (auto& inst : insts) {
    for (std::size_t w = 0; w < topts.warmup; ++w) {
      inst->run(x, y);
    }
  }

  // Interleaved rounds: candidate i's samples are spread across the
  // probe's whole duration, so monotone drift cancels in the medians.
  std::vector<std::vector<double>> samples(insts.size());
  const std::size_t rounds = std::max<std::size_t>(topts.rounds, 1);
  const std::size_t iters = std::max<std::size_t>(topts.iters_per_round, 1);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < insts.size(); ++i) {
      for (std::size_t k = 0; k < iters; ++k) {
        samples[i].push_back(
            static_cast<double>(insts[i]->run_probe(x, y)));
      }
    }
  }

  rep.median_probe_ns.resize(insts.size());
  std::size_t best = 0;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    rep.median_probe_ns[i] = median(samples[i]);
    if (rep.median_probe_ns[i] < rep.median_probe_ns[best]) {
      best = i;
    }
  }
  // Baseline hysteresis: CSR keeps the cell unless a candidate is
  // faster by more than the tie margin. On the large matrices that
  // matter, real compression wins are far outside the margin; on small
  // noisy ones this pins auto to the default it must never lose to.
  for (std::size_t i = 0; i < built.size(); ++i) {
    if (built[i] == Format::kCsr && i != best &&
        rep.median_probe_ns[i] <=
            rep.median_probe_ns[best] * (1.0 + topts.csr_tie_margin)) {
      best = i;
      break;
    }
  }

  rep.chosen = built[best];
  rep.probe_ns = now_ns() - t_begin;
  rep.source = "probe";
  reg.counter("spc.tune.probes").add();
  reg.counter("spc.tune.probe_ns").add(rep.probe_ns);

  if (topts.use_cache) {
    TuneCacheEntry entry;
    entry.key = key;
    entry.format = format_name(rep.chosen);
    entry.probe_ns = rep.probe_ns;
    entry.best_ns_per_iter = rep.median_probe_ns[best];
    entry.git_sha = obs::build_git_sha();
    TuneCache cache(cache_path);
    cache.store(entry);
  }

  if (!want_instance) {
    return nullptr;
  }
  return std::move(insts[best]);
}

}  // namespace

bool tune_enabled() { return env_flag("SPC_TUNE").value_or(false); }

SpmvInstance auto_instance(const Triplets& t, std::size_t nthreads,
                           const InstanceOptions& opts,
                           const TuneOptions& topts, TuneReport* report) {
  TuneReport rep;
  std::unique_ptr<SpmvInstance> inst =
      pick(t, nthreads, opts, topts, /*want_instance=*/true, rep);
  stamp(*inst, rep);
  if (report != nullptr) {
    *report = std::move(rep);
  }
  return std::move(*inst);
}

Format pick_format(const Triplets& t, std::size_t nthreads,
                   const InstanceOptions& opts, const TuneOptions& topts,
                   TuneReport* report) {
  TuneReport rep;
  pick(t, nthreads, opts, topts, /*want_instance=*/false, rep);
  const Format chosen = rep.chosen;
  if (report != nullptr) {
    *report = std::move(rep);
  }
  return chosen;
}

}  // namespace spc::tune
