#include "spc/tune/cost.hpp"

#include <algorithm>

#include "spc/formats/csr_vi.hpp"

namespace spc::tune {

namespace {

// Per-element byte constants of the paper's setup (§VI-A): 4-byte
// indices, 8-byte values.
constexpr double kIdx = 4.0;
constexpr double kIdx16 = 2.0;
constexpr double kVal = 8.0;

// CSR-DU unit header: uflags + usize plus the ujmp varint (~1 byte for
// the small jumps that dominate once a unit exists at all).
constexpr double kDuUnitHeaderBytes = 3.0;

// Stride-1 elements only join an RLE unit when their run reaches
// rle_min_run; discounting this share of delta1_frac approximates the
// short runs that stay in plain delta units.
constexpr double kRleShortRunShare = 0.2;

struct Common {
  double nnz = 0.0;
  double rp = 0.0;       // row-pointer bytes per nnz
  double vec = 0.0;      // amortized x + y vector bytes per nnz
  double du_ctl = 0.0;   // CSR-DU ctl stream bytes per nnz (no RLE)
  double vi_w = 0.0;     // CSR-VI value-index width
  double vi_table = 0.0; // amortized unique-value table bytes per nnz
};

Common common_terms(const TuneFeatures& f) {
  Common c;
  const MatrixStats& s = f.stats;
  if (s.nnz == 0) {
    return c;
  }
  c.nnz = static_cast<double>(s.nnz);
  c.rp = kIdx * (static_cast<double>(s.nrows) + 1.0) / c.nnz;
  c.vec = kVal * (static_cast<double>(s.nrows) + s.ncols) / c.nnz;

  double payload = 0.0;  // delta bytes per element, by class share
  for (int i = 0; i < 4; ++i) {
    payload += f.delta_share[i] * static_cast<double>(1u << i);
  }
  // Units cannot span rows, so the mean row length caps the elements a
  // unit header amortizes over (and the encoder caps units at 255).
  const double elems_per_unit =
      std::clamp(s.row_len_mean, 1.0, 255.0);
  c.du_ctl = payload + kDuUnitHeaderBytes / elems_per_unit;

  c.vi_w = static_cast<double>(vi_width_for(s.unique_values));
  c.vi_table = kVal * static_cast<double>(s.unique_values) / c.nnz;
  return c;
}

}  // namespace

CandidatePrediction predict_format(const TuneFeatures& f, Format fmt) {
  const Common c = common_terms(f);
  const MatrixStats& s = f.stats;
  CandidatePrediction p;
  p.format = fmt;
  if (s.nnz == 0) {
    p.applicable = fmt == Format::kCsr;
    p.why = p.applicable ? "" : "empty matrix";
    return p;
  }
  switch (fmt) {
    case Format::kCsr:
      p.matrix_bytes_per_nnz = kIdx + kVal + c.rp;
      break;
    case Format::kCsr16:
      if (s.ncols > 65536) {
        p.applicable = false;
        p.why = "ncols exceeds u16";
      }
      p.matrix_bytes_per_nnz = kIdx16 + kVal + c.rp;
      break;
    case Format::kCsrDu:
      p.matrix_bytes_per_nnz = kVal + c.du_ctl;
      break;
    case Format::kCsrDuRle: {
      if (f.delta1_frac < 0.25) {
        p.applicable = false;
        p.why = "few unit-stride runs";
      }
      const double elided =
          std::max(0.0, f.delta1_frac - kRleShortRunShare);
      p.matrix_bytes_per_nnz = kVal + c.du_ctl - elided;
      break;
    }
    case Format::kCsrVi:
      if (s.ttu <= 5.0) {
        p.applicable = false;
        p.why = "ttu <= 5 (the §VI-E criterion)";
      }
      p.matrix_bytes_per_nnz = kIdx + c.vi_w + c.rp + c.vi_table;
      break;
    case Format::kCsrDuVi:
      if (s.ttu <= 5.0) {
        p.applicable = false;
        p.why = "ttu <= 5 (the §VI-E criterion)";
      }
      p.matrix_bytes_per_nnz = c.du_ctl + c.vi_w + c.vi_table;
      break;
    case Format::kSymCsr:
    case Format::kSymCsrVi: {
      // SSS stores only the strict lower triangle plus a dense diagonal;
      // every lower element serves two non-zeros, so the per-nnz stream
      // roughly halves on matrices with a sparse diagonal. The window
      // reduction's extra traffic is bounded (sym_window_frac) and left
      // to the probe.
      if (!f.structurally_symmetric || !f.value_symmetric) {
        p.applicable = false;
        p.why = "matrix is not numerically symmetric";
        p.matrix_bytes_per_nnz = kIdx + kVal + c.rp;
        break;
      }
      const double n = static_cast<double>(s.nrows);
      const double nnz_lower =
          (c.nnz - static_cast<double>(f.ndiag)) / 2.0;
      if (fmt == Format::kSymCsr) {
        p.matrix_bytes_per_nnz =
            c.rp + (nnz_lower * (kIdx + kVal) + n * kVal) / c.nnz;
      } else {
        if (s.ttu <= 5.0) {
          p.applicable = false;
          p.why = "ttu <= 5 (the §VI-E criterion)";
        }
        p.matrix_bytes_per_nnz =
            c.rp + (nnz_lower * (kIdx + c.vi_w) + n * c.vi_w) / c.nnz +
            c.vi_table;
      }
      break;
    }
    default:
      // Outside the tuner's pool (COO, CSC, BCSR, ...): these trade
      // bytes for different access patterns the stream model cannot
      // rank, so the tuner never auto-selects them.
      p.applicable = false;
      p.why = "outside the tuning pool";
      p.matrix_bytes_per_nnz = kIdx + kVal + c.rp;
      break;
  }
  p.streamed_bytes_per_nnz = p.matrix_bytes_per_nnz + c.vec;
  return p;
}

std::vector<CandidatePrediction> predict_candidates(const TuneFeatures& f) {
  std::vector<CandidatePrediction> out;
  for (const Format fmt :
       {Format::kCsr, Format::kCsr16, Format::kCsrDu, Format::kCsrDuRle,
        Format::kCsrVi, Format::kCsrDuVi, Format::kSymCsr,
        Format::kSymCsrVi}) {
    out.push_back(predict_format(f, fmt));
  }
  return out;
}

std::vector<Format> prune_candidates(const TuneFeatures& f,
                                     std::size_t max_candidates) {
  std::vector<CandidatePrediction> preds = predict_candidates(f);
  preds.erase(std::remove_if(preds.begin(), preds.end(),
                             [](const CandidatePrediction& p) {
                               return !p.applicable;
                             }),
              preds.end());
  std::stable_sort(preds.begin(), preds.end(),
                   [](const CandidatePrediction& a,
                      const CandidatePrediction& b) {
                     return a.streamed_bytes_per_nnz <
                            b.streamed_bytes_per_nnz;
                   });
  std::vector<Format> out;
  const std::size_t cap = std::max<std::size_t>(max_candidates, 1);
  for (const CandidatePrediction& p : preds) {
    if (out.size() >= cap) {
      break;
    }
    out.push_back(p.format);
  }
  // CSR is the safety baseline: the probe must always measure it so a
  // mispredicting model can never auto-select a regression unprobed.
  if (std::find(out.begin(), out.end(), Format::kCsr) == out.end()) {
    if (out.size() >= cap) {
      out.back() = Format::kCsr;
    } else {
      out.push_back(Format::kCsr);
    }
  }
  if (out.empty()) {
    out.push_back(Format::kCsr);
  }
  return out;
}

}  // namespace spc::tune
