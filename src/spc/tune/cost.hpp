// Transparent per-format cost model and candidate pruning.
//
// SpMV on matrices past the cache capacity is memory-bound (§II), so a
// format's expected speed is, to first order, the bytes it streams per
// non-zero: encoded matrix bytes plus the amortized row-pointer, x and y
// traffic of the §II-B working-set formula. The model below predicts
// that figure per candidate format from TuneFeatures alone — every term
// is a closed-form function of tabulated features (docs/TUNING.md lists
// the formulas), never a measurement — and the pruner keeps only the few
// candidates whose predicted stream is competitive. The empirical probe
// (tuner.hpp) then settles the survivors; the model's job is to keep
// that probe short, not to be the final word. bench/working_set_report
// prints predicted vs measured bytes/nnz so the model's error stays
// visible.
#pragma once

#include <cstddef>
#include <vector>

#include "spc/spmv/instance.hpp"
#include "spc/tune/features.hpp"

namespace spc::tune {

struct CandidatePrediction {
  Format format = Format::kCsr;
  /// False when a structural precondition fails (e.g. ttu below the
  /// CSR-VI criterion); `why` then holds the pruning rationale.
  bool applicable = true;
  const char* why = "";
  /// Encoded matrix bytes per non-zero (row pointers included).
  double matrix_bytes_per_nnz = 0.0;
  /// matrix_bytes_per_nnz + amortized x/y vector traffic — the §II-B
  /// streamed working set per non-zero.
  double streamed_bytes_per_nnz = 0.0;
};

/// Predictions for the whole candidate pool (csr, csr16, csr-du,
/// csr-du-rle, csr-vi, csr-du-vi, sym-csr, sym-csr-vi), applicable or
/// not, in pool order. The symmetric pair is gated on numeric symmetry
/// (structure and values), so asymmetric matrices never probe them.
std::vector<CandidatePrediction> predict_candidates(const TuneFeatures& f);

/// The prediction for one format of the pool (applicable or not).
CandidatePrediction predict_format(const TuneFeatures& f, Format fmt);

/// Applicable candidates ordered by predicted streamed bytes (smallest
/// first), capped at `max_candidates`. CSR is always kept — it is the
/// baseline auto must never lose to, so the probe always measures it.
/// An empty matrix yields {kCsr}.
std::vector<Format> prune_candidates(const TuneFeatures& f,
                                     std::size_t max_candidates = 4);

}  // namespace spc::tune
