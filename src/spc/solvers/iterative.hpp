// Iterative linear solvers — the application context the paper's
// introduction motivates (SpMV is "the basic operation of iterative
// solvers, such as Conjugate Gradient (CG) and GMRES").
//
// Solvers are written against an abstract operator so any SpmvInstance
// (any storage format, any thread count) can back the matrix product;
// the cg_solver example demonstrates a CSR-VI-backed CG run.
#pragma once

#include <cstddef>
#include <functional>

#include "spc/mm/vector.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// y = A*x as a callable.
using LinOp = std::function<void(const Vector& x, Vector& y)>;

struct SolverOptions {
  std::size_t max_iterations = 1000;
  /// Convergence when ||r||_2 <= rel_tolerance * ||b||_2.
  double rel_tolerance = 1e-10;
};

struct SolveResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||r||_2
};

/// Dense BLAS-1 helpers shared by the solvers (and reusable by clients).
double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
/// y = x + beta * y
void xpby(const Vector& x, double beta, Vector& y);

/// Conjugate Gradient for symmetric positive definite A.
SolveResult cg(const LinOp& A, const Vector& b, Vector& x,
               const SolverOptions& opts = {});

/// BiCGSTAB for general (nonsymmetric) A.
SolveResult bicgstab(const LinOp& A, const Vector& b, Vector& x,
                     const SolverOptions& opts = {});

/// Restarted GMRES(m) for general A — the other solver the paper's
/// introduction names. Modified Gram-Schmidt Arnoldi with Givens
/// rotations; `restart` is the Krylov dimension per cycle.
/// opts.max_iterations counts total inner iterations.
SolveResult gmres(const LinOp& A, const Vector& b, Vector& x,
                  const SolverOptions& opts = {}, std::size_t restart = 30);

/// Jacobi iteration. `diag` is the matrix diagonal (must be non-zero).
SolveResult jacobi(const LinOp& A, const Vector& diag, const Vector& b,
                   Vector& x, const SolverOptions& opts = {});

/// Jacobi-preconditioned CG: M = diag(A). Cuts iteration counts on
/// badly scaled SPD systems while keeping the SpMV-dominated profile
/// (the preconditioner solve is one vector multiply).
SolveResult pcg_jacobi(const LinOp& A, const Vector& diag, const Vector& b,
                       Vector& x, const SolverOptions& opts = {});

}  // namespace spc
