#include "spc/solvers/multi_rhs.hpp"

#include <cmath>

#include "spc/support/error.hpp"

namespace spc {

namespace {

// Column-wise dot product over the interleaved layout.
void col_dots(const Vector& a, const Vector& b, index_t n, index_t k,
              std::vector<double>& out) {
  out.assign(k, 0.0);
  for (index_t i = 0; i < n; ++i) {
    const usize_t base = static_cast<usize_t>(i) * k;
    for (index_t j = 0; j < k; ++j) {
      out[j] += a[base + j] * b[base + j];
    }
  }
}

}  // namespace

MultiSolveResult multi_cg(const MultiOp& A, index_t n, index_t k,
                          const Vector& B, Vector& X,
                          const SolverOptions& opts) {
  SPC_CHECK_MSG(k >= 1, "need at least one right-hand side");
  SPC_CHECK_MSG(B.size() == static_cast<usize_t>(n) * k &&
                    X.size() == B.size(),
                "B/X dimension mismatch");

  MultiSolveResult res;
  res.converged.assign(k, false);
  res.residual_norms.assign(k, 0.0);

  Vector R(B.size()), P(B.size()), AP(B.size());
  std::vector<double> rr(k), stop(k), pap(k), rr_new(k);

  // R = B - A X; P = R.
  A(X, AP);
  for (usize_t i = 0; i < B.size(); ++i) {
    R[i] = B[i] - AP[i];
  }
  P = R;
  col_dots(R, R, n, k, rr);
  {
    std::vector<double> bb(k);
    col_dots(B, B, n, k, bb);
    for (index_t j = 0; j < k; ++j) {
      const double bn = std::sqrt(bb[j]);
      stop[j] = opts.rel_tolerance * (bn > 0.0 ? bn : 1.0);
      res.residual_norms[j] = std::sqrt(rr[j]);
      res.converged[j] = res.residual_norms[j] <= stop[j];
    }
  }

  for (std::size_t it = 0;
       it < opts.max_iterations && !res.all_converged(); ++it) {
    A(P, AP);
    col_dots(P, AP, n, k, pap);
    std::vector<double> alpha(k, 0.0);
    for (index_t j = 0; j < k; ++j) {
      if (!res.converged[j] && pap[j] != 0.0) {
        alpha[j] = rr[j] / pap[j];
      }
    }
    for (index_t i = 0; i < n; ++i) {
      const usize_t base = static_cast<usize_t>(i) * k;
      for (index_t j = 0; j < k; ++j) {
        X[base + j] += alpha[j] * P[base + j];
        R[base + j] -= alpha[j] * AP[base + j];
      }
    }
    col_dots(R, R, n, k, rr_new);
    res.iterations = it + 1;
    for (index_t j = 0; j < k; ++j) {
      if (res.converged[j]) {
        continue;
      }
      res.residual_norms[j] = std::sqrt(rr_new[j]);
      if (res.residual_norms[j] <= stop[j]) {
        res.converged[j] = true;
        continue;
      }
    }
    std::vector<double> beta(k, 0.0);
    for (index_t j = 0; j < k; ++j) {
      if (!res.converged[j] && rr[j] != 0.0) {
        beta[j] = rr_new[j] / rr[j];
      }
    }
    for (index_t i = 0; i < n; ++i) {
      const usize_t base = static_cast<usize_t>(i) * k;
      for (index_t j = 0; j < k; ++j) {
        if (!res.converged[j]) {
          P[base + j] = R[base + j] + beta[j] * P[base + j];
        }
      }
    }
    rr = rr_new;
  }
  return res;
}

}  // namespace spc
