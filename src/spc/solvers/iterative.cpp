#include "spc/solvers/iterative.hpp"

#include <cmath>

#include "spc/support/error.hpp"

namespace spc {

double dot(const Vector& a, const Vector& b) {
  SPC_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a[i] * b[i];
  }
  return s;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  SPC_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void xpby(const Vector& x, double beta, Vector& y) {
  SPC_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] + beta * y[i];
  }
}

SolveResult cg(const LinOp& A, const Vector& b, Vector& x,
               const SolverOptions& opts) {
  const std::size_t n = b.size();
  SPC_CHECK_MSG(x.size() == n, "x/b dimension mismatch");
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  Vector r(n), p(n), Ap(n);
  A(x, Ap);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - Ap[i];
  }
  p = r;
  double rr = dot(r, r);

  SolveResult res;
  res.residual_norm = std::sqrt(rr);
  if (res.residual_norm <= stop) {
    res.converged = true;
    return res;
  }
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    A(p, Ap);
    const double pAp = dot(p, Ap);
    if (pAp == 0.0) {
      break;  // breakdown: p is A-null, cannot progress
    }
    const double alpha = rr / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    const double rr_new = dot(r, r);
    res.iterations = it + 1;
    res.residual_norm = std::sqrt(rr_new);
    if (res.residual_norm <= stop) {
      res.converged = true;
      return res;
    }
    xpby(r, rr_new / rr, p);
    rr = rr_new;
  }
  return res;
}

SolveResult bicgstab(const LinOp& A, const Vector& b, Vector& x,
                     const SolverOptions& opts) {
  const std::size_t n = b.size();
  SPC_CHECK_MSG(x.size() == n, "x/b dimension mismatch");
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  Vector r(n), r0(n), p(n), v(n), s(n), t(n);
  A(x, v);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - v[i];
  }
  r0 = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);

  SolveResult res;
  res.residual_norm = norm2(r);
  if (res.residual_norm <= stop) {
    res.converged = true;
    return res;
  }
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    const double rho_new = dot(r0, r);
    if (rho_new == 0.0) {
      break;  // breakdown
    }
    const double beta = (rho_new / rho) * (alpha / omega);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    A(p, v);
    const double r0v = dot(r0, v);
    if (r0v == 0.0) {
      break;
    }
    alpha = rho_new / r0v;
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = r[i] - alpha * v[i];
    }
    if (norm2(s) <= stop) {
      axpy(alpha, p, x);
      res.iterations = it + 1;
      res.residual_norm = norm2(s);
      res.converged = true;
      return res;
    }
    A(s, t);
    const double tt = dot(t, t);
    if (tt == 0.0) {
      break;
    }
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i] + omega * s[i];
      r[i] = s[i] - omega * t[i];
    }
    res.iterations = it + 1;
    res.residual_norm = norm2(r);
    if (res.residual_norm <= stop) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) {
      break;
    }
    rho = rho_new;
  }
  return res;
}

SolveResult pcg_jacobi(const LinOp& A, const Vector& diag, const Vector& b,
                       Vector& x, const SolverOptions& opts) {
  const std::size_t n = b.size();
  SPC_CHECK_MSG(x.size() == n && diag.size() == n, "dimension mismatch");
  for (const double d : diag) {
    SPC_CHECK_MSG(d != 0.0, "pcg_jacobi requires a non-zero diagonal");
  }
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  Vector r(n), z(n), p(n), Ap(n);
  A(x, Ap);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - Ap[i];
    z[i] = r[i] / diag[i];
  }
  p = z;
  double rz = dot(r, z);

  SolveResult res;
  res.residual_norm = norm2(r);
  if (res.residual_norm <= stop) {
    res.converged = true;
    return res;
  }
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    A(p, Ap);
    const double pAp = dot(p, Ap);
    if (pAp == 0.0) {
      break;
    }
    const double alpha = rz / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    res.iterations = it + 1;
    res.residual_norm = norm2(r);
    if (res.residual_norm <= stop) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = r[i] / diag[i];
    }
    const double rz_new = dot(r, z);
    xpby(z, rz_new / rz, p);
    rz = rz_new;
  }
  return res;
}

SolveResult gmres(const LinOp& A, const Vector& b, Vector& x,
                  const SolverOptions& opts, std::size_t restart) {
  const std::size_t n = b.size();
  SPC_CHECK_MSG(x.size() == n, "x/b dimension mismatch");
  SPC_CHECK_MSG(restart >= 1, "restart dimension must be >= 1");
  const std::size_t m = restart;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  SolveResult res;
  std::vector<Vector> V(m + 1, Vector(n, 0.0));  // Arnoldi basis
  // Hessenberg in column-major packed upper form: H[j] has j+2 entries.
  std::vector<std::vector<double>> H(m);
  std::vector<double> cs(m, 0.0), sn(m, 0.0), g(m + 1, 0.0);
  Vector w(n, 0.0);

  while (res.iterations < opts.max_iterations) {
    // r0 = b - A x.
    A(x, w);
    for (std::size_t i = 0; i < n; ++i) {
      V[0][i] = b[i] - w[i];
    }
    double beta = norm2(V[0]);
    res.residual_norm = beta;
    if (beta <= stop) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) {
      V[0][i] /= beta;
    }
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t k = 0;  // Krylov vectors built this cycle
    for (; k < m && res.iterations < opts.max_iterations; ++k) {
      ++res.iterations;
      A(V[k], w);
      // Modified Gram-Schmidt.
      H[k].assign(k + 2, 0.0);
      for (std::size_t j = 0; j <= k; ++j) {
        H[k][j] = dot(w, V[j]);
        axpy(-H[k][j], V[j], w);
      }
      H[k][k + 1] = norm2(w);
      if (H[k][k + 1] > 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          V[k + 1][i] = w[i] / H[k][k + 1];
        }
      }
      // Apply previous Givens rotations to the new column.
      for (std::size_t j = 0; j < k; ++j) {
        const double t = cs[j] * H[k][j] + sn[j] * H[k][j + 1];
        H[k][j + 1] = -sn[j] * H[k][j] + cs[j] * H[k][j + 1];
        H[k][j] = t;
      }
      // New rotation to zero H[k][k+1].
      const double denom =
          std::sqrt(H[k][k] * H[k][k] + H[k][k + 1] * H[k][k + 1]);
      if (denom == 0.0) {
        cs[k] = 1.0;
        sn[k] = 0.0;
      } else {
        cs[k] = H[k][k] / denom;
        sn[k] = H[k][k + 1] / denom;
      }
      H[k][k] = cs[k] * H[k][k] + sn[k] * H[k][k + 1];
      H[k][k + 1] = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      res.residual_norm = std::fabs(g[k + 1]);
      if (res.residual_norm <= stop) {
        ++k;
        break;
      }
      if (H[k][k + 1] == 0.0 && res.residual_norm > stop) {
        // Lucky breakdown handled by the residual test above; a true
        // zero subdiagonal with non-zero residual cannot progress.
        ++k;
        break;
      }
    }

    // Back-substitute y from the k×k triangular system and update x.
    std::vector<double> y(k, 0.0);
    for (std::size_t j = k; j-- > 0;) {
      double sum = g[j];
      for (std::size_t l = j + 1; l < k; ++l) {
        sum -= H[l][j] * y[l];
      }
      y[j] = H[j][j] != 0.0 ? sum / H[j][j] : 0.0;
    }
    for (std::size_t j = 0; j < k; ++j) {
      axpy(y[j], V[j], x);
    }
    if (res.residual_norm <= stop) {
      // Recompute the true residual to report an honest norm.
      A(x, w);
      double rr = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double r = b[i] - w[i];
        rr += r * r;
      }
      res.residual_norm = std::sqrt(rr);
      res.converged = res.residual_norm <= stop * 1.01 + 1e-300;
      if (res.converged) {
        return res;
      }
    }
  }
  return res;
}

SolveResult jacobi(const LinOp& A, const Vector& diag, const Vector& b,
                   Vector& x, const SolverOptions& opts) {
  const std::size_t n = b.size();
  SPC_CHECK_MSG(x.size() == n && diag.size() == n, "dimension mismatch");
  for (const double d : diag) {
    SPC_CHECK_MSG(d != 0.0, "jacobi requires a non-zero diagonal");
  }
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  Vector Ax(n), r(n);
  SolveResult res;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    A(x, Ax);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = b[i] - Ax[i];
    }
    res.iterations = it + 1;
    res.residual_norm = norm2(r);
    if (res.residual_norm <= stop) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += r[i] / diag[i];
    }
  }
  return res;
}

}  // namespace spc
