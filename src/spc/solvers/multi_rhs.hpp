// Simultaneous CG for multiple right-hand sides.
//
// k systems A·x_j = b_j advance in lockstep, each with its own scalar
// recurrence, sharing one SpMM per iteration — so the matrix is streamed
// once for all k systems. This is the solver-level payoff of the SpMM
// amortization (ablation_spmm) and the third attack on the §II-B
// bandwidth bottleneck alongside index and value compression.
//
// Layout: interleaved, vector index fastest — B[i*k + j] is b_j[i] — the
// SpMM layout of spc/spmv/spmm.hpp.
#pragma once

#include <functional>
#include <vector>

#include "spc/mm/vector.hpp"
#include "spc/solvers/iterative.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Y = A·X over k interleaved vectors.
using MultiOp = std::function<void(const Vector& X, Vector& Y)>;

struct MultiSolveResult {
  std::size_t iterations = 0;         ///< shared iteration count
  std::vector<bool> converged;        ///< per system
  std::vector<double> residual_norms; ///< per system, final ||r_j||
  bool all_converged() const {
    for (const bool c : converged) {
      if (!c) {
        return false;
      }
    }
    return !converged.empty();
  }
};

/// Solves the k SPD systems with per-column CG recurrences over a shared
/// operator. Columns that converge stop updating; iteration ends when all
/// converge or opts.max_iterations is reached.
MultiSolveResult multi_cg(const MultiOp& A, index_t n, index_t k,
                          const Vector& B, Vector& X,
                          const SolverOptions& opts = {});

}  // namespace spc
