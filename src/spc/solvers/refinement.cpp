#include "spc/solvers/refinement.hpp"

#include <cmath>

#include "spc/support/error.hpp"

namespace spc {

RefinementResult mixed_precision_cg(const LinOp& A_hi, const LinOp& A_lo,
                                    const Vector& b, Vector& x,
                                    const RefinementOptions& opts) {
  const std::size_t n = b.size();
  SPC_CHECK_MSG(x.size() == n, "x/b dimension mismatch");
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  RefinementResult res;
  Vector r(n), d(n), Ax(n);
  for (std::size_t outer = 0; outer < opts.max_outer; ++outer) {
    // High-precision residual.
    A_hi(x, Ax);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = b[i] - Ax[i];
    }
    res.residual_norm = norm2(r);
    res.outer_iterations = outer;
    if (res.residual_norm <= stop) {
      res.converged = true;
      return res;
    }
    // Low-precision approximate correction: A_lo d ≈ r.
    std::fill(d.begin(), d.end(), 0.0);
    SolverOptions inner;
    inner.max_iterations = opts.inner_iterations;
    inner.rel_tolerance = 1e-7;  // single-precision-level inner target
    const SolveResult inner_res = cg(A_lo, r, d, inner);
    res.inner_iterations_total += inner_res.iterations;
    axpy(1.0, d, x);
    ++res.outer_iterations;
  }
  // Final residual for honest reporting.
  A_hi(x, Ax);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - Ax[i];
  }
  res.residual_norm = norm2(r);
  res.converged = res.residual_norm <= stop;
  return res;
}

}  // namespace spc
