// Mixed-precision iterative refinement (§III-C: Langou et al.) —
// "deliver double precision arithmetic while performing the bulk of the
// work in single precision".
//
// Outer loop in double:   r = b - A_hi x   (high-precision operator)
// Inner correction:       solve A_lo d ≈ r cheaply (low-precision
//                         operator inside CG, double vectors)
// Update:                 x += d
//
// The low-precision operator streams half the value bytes per SpMV; the
// handful of high-precision residual computations restores full double
// accuracy — the same traffic-for-cycles trade as CSR-VI, via precision
// instead of indirection.
#pragma once

#include "spc/solvers/iterative.hpp"

namespace spc {

struct RefinementOptions {
  std::size_t max_outer = 50;
  /// Inner CG iterations per correction (approximate solves suffice).
  std::size_t inner_iterations = 25;
  double rel_tolerance = 1e-12;
};

struct RefinementResult {
  bool converged = false;
  std::size_t outer_iterations = 0;
  std::size_t inner_iterations_total = 0;
  double residual_norm = 0.0;
};

/// Solves A x = b for SPD A given a high-precision operator `A_hi`
/// (double values) and a cheap low-precision operator `A_lo` (e.g. a
/// CsrF32 of the same matrix).
RefinementResult mixed_precision_cg(const LinOp& A_hi, const LinOp& A_lo,
                                    const Vector& b, Vector& x,
                                    const RefinementOptions& opts = {});

}  // namespace spc
