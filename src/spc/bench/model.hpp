// Memory-bandwidth performance model for SpMV (§II-B of the paper).
//
// The paper's premise: SpMV streams its working set once per operation,
// so when the matrix exceeds the cache the kernel's time is bounded below
// by  streamed_bytes / memory_bandwidth , and shrinking the streamed
// bytes (CSR-DU / CSR-VI) converts directly into time. This module
// calibrates the machine's streaming bandwidth and evaluates that bound,
// so benches can report measured-vs-model and show which regime (compute
// bound vs memory bound) the host is actually in.
#pragma once

#include "spc/mm/stats.hpp"
#include "spc/support/types.hpp"

namespace spc {

struct BandwidthCalibration {
  double read_gbps = 0.0;   ///< sustained streaming read bandwidth
  double triad_gbps = 0.0;  ///< a[i] = b[i] + s*c[i] (2 reads + 1 write)
};

/// Measures streaming bandwidth with simple read-sum and triad loops over
/// arrays of `bytes` (default 256 MB), best of `reps` runs. Deterministic
/// workload; wall-clock measurement.
BandwidthCalibration calibrate_bandwidth(usize_t bytes = 256ull << 20,
                                         int reps = 3);

/// Bytes one SpMV streams: encoded matrix + x (read) + y (write).
inline usize_t spmv_streamed_bytes(usize_t matrix_bytes, index_t nrows,
                                   index_t ncols) {
  return matrix_bytes + static_cast<usize_t>(ncols) * sizeof(value_t) +
         static_cast<usize_t>(nrows) * sizeof(value_t);
}

/// Bandwidth-bound lower time bound for one SpMV (seconds).
inline double predicted_spmv_seconds(usize_t streamed_bytes,
                                     double read_gbps) {
  return read_gbps > 0.0
             ? static_cast<double>(streamed_bytes) / (read_gbps * 1e9)
             : 0.0;
}

}  // namespace spc
