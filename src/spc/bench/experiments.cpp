#include "spc/bench/experiments.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <ostream>

#include "spc/support/strutil.hpp"
#include "spc/tune/cost.hpp"

namespace spc {

namespace {

const char* set_name(SetClass c) {
  switch (c) {
    case SetClass::kRejected:
      return "rej";
    case SetClass::kSmall:
      return "MS";
    case SetClass::kLarge:
      return "ML";
  }
  return "?";
}

InstanceOptions instance_opts(const BenchConfig& cfg) {
  InstanceOptions opts;
  opts.pin_threads = cfg.pin_threads;
  return opts;
}

std::string f2(double v) { return fmt_fixed(v, 2); }
std::string f1(double v) { return fmt_fixed(v, 1); }

/// Bench label for JSONL records: the CSV name without its extension.
std::string bench_label(const std::string& csv_name) {
  const std::size_t dot = csv_name.rfind('.');
  return dot == std::string::npos ? csv_name : csv_name.substr(0, dot);
}

}  // namespace

void run_table2_csr_scaling(const BenchConfig& cfg, std::ostream& os) {
  os << "=== Table II: CSR SpMxV performance (serial MFLOPS, MT speedup) ==="
     << "\n[" << cfg.describe() << "]\n";

  // Row keys: thread configurations in paper order.
  struct Config {
    std::string label;
    std::size_t threads;
    Placement placement;
  };
  std::vector<Config> configs;
  for (const std::size_t n : cfg.threads) {
    if (n == 1) {
      continue;  // serial is the baseline row
    }
    if (n == 2) {
      configs.push_back({"2 (1xL2)", 2, Placement::kCloseFirst});
      configs.push_back({"2 (2xL2)", 2, Placement::kSpreadCaches});
    } else {
      configs.push_back({std::to_string(n), n, Placement::kCloseFirst});
    }
  }

  // Aggregates: per set class and per config.
  std::map<std::string, OnlineStats> serial_mflops;  // set -> stats
  std::map<std::string, std::map<std::string, OnlineStats>> speedups;

  std::vector<std::vector<std::string>> csv_rows;
  for_each_matrix(cfg, [&](MatrixCase& mc) {
    SpmvInstance serial(mc.mat, Format::kCsr, 1, instance_opts(cfg));
    const RunMetrics m1 =
        time_spmv_metrics(serial, cfg.iterations, cfg.warmup);
    emit_metrics_record("table2_csr_scaling", mc, serial, m1);
    const double t1 = m1.seconds;
    const double mf = m1.mflops;
    const std::string set = set_name(mc.set_class);
    serial_mflops[set].add(mf);
    serial_mflops["M0"].add(mf);

    std::vector<std::string> row = {mc.name, set, f1(mf)};
    for (const Config& c : configs) {
      InstanceOptions opts = instance_opts(cfg);
      opts.placement = c.placement;
      SpmvInstance mt(mc.mat, Format::kCsr, c.threads, opts);
      const RunMetrics mn = time_spmv_metrics(mt, cfg.iterations, cfg.warmup);
      const double tn = mn.seconds;
      const double sp = tn > 0.0 ? t1 / tn : 0.0;
      emit_metrics_record("table2_csr_scaling", mc, mt, mn, sp);
      speedups[set][c.label].add(sp);
      speedups["M0"][c.label].add(sp);
      row.push_back(f2(sp));
    }
    csv_rows.push_back(std::move(row));
  });

  TextTable table({"core(s)", "MS avg", "MS max", "MS min", "ML avg",
                   "ML max", "ML min", "M0 avg"});
  {
    std::vector<std::string> row = {"1 (MFLOPS)"};
    for (const char* set : {"MS", "ML"}) {
      const OnlineStats& s = serial_mflops[set];
      row.push_back(f1(s.mean()));
      row.push_back(f1(s.max()));
      row.push_back(f1(s.min()));
    }
    row.push_back(f1(serial_mflops["M0"].mean()));
    table.add_row(std::move(row));
  }
  for (const Config& c : configs) {
    std::vector<std::string> row = {c.label};
    for (const char* set : {"MS", "ML"}) {
      const OnlineStats& s = speedups[set][c.label];
      row.push_back(f2(s.mean()));
      row.push_back(f2(s.max()));
      row.push_back(f2(s.min()));
    }
    row.push_back(f2(speedups["M0"][c.label].mean()));
    table.add_row(std::move(row));
  }
  os << "(sets: MS " << serial_mflops["MS"].count() << " matrices, ML "
     << serial_mflops["ML"].count() << " matrices)\n";
  table.print(os);

  std::vector<std::string> header = {"matrix", "set", "serial_mflops"};
  for (const Config& c : configs) {
    header.push_back("speedup_" + c.label);
  }
  write_csv("table2_csr_scaling.csv", header, csv_rows);
  os << "per-matrix data: table2_csr_scaling.csv\n\n";
}

void run_compare_table(const BenchConfig& cfg, Format compressed,
                       bool vi_subset, const std::string& csv_name,
                       std::ostream& os) {
  const std::string fname = format_name(compressed);
  os << "=== " << fname << " vs CSR at equal thread count"
     << (vi_subset ? " (ttu>5 subset)" : "") << " ===\n[" << cfg.describe()
     << "]\n";

  std::map<std::string, std::map<std::size_t, SpeedupAgg>> agg;
  std::vector<std::vector<std::string>> csv_rows;
  std::size_t used = 0;

  for_each_matrix(cfg, [&](MatrixCase& mc) {
    if (vi_subset && mc.stats.ttu <= kViTtuThreshold) {
      return;
    }
    ++used;
    const std::string set = set_name(mc.set_class);
    SpmvInstance csr_ref(mc.mat, Format::kCsr, 1, instance_opts(cfg));
    SpmvInstance comp_ref(mc.mat, compressed, 1, instance_opts(cfg));
    const double size_red =
        100.0 * (1.0 - static_cast<double>(comp_ref.matrix_bytes()) /
                           static_cast<double>(csr_ref.matrix_bytes()));
    const std::string bench = bench_label(csv_name);
    for (const std::size_t n : cfg.threads) {
      double t_csr, t_comp;
      if (n == 1) {
        const RunMetrics m_csr =
            time_spmv_metrics(csr_ref, cfg.iterations, cfg.warmup);
        const RunMetrics m_comp =
            time_spmv_metrics(comp_ref, cfg.iterations, cfg.warmup);
        t_csr = m_csr.seconds;
        t_comp = m_comp.seconds;
        emit_metrics_record(bench, mc, csr_ref, m_csr, 1.0);
        emit_metrics_record(bench, mc, comp_ref, m_comp,
                            t_comp > 0.0 ? t_csr / t_comp : 0.0);
      } else {
        SpmvInstance csr_mt(mc.mat, Format::kCsr, n, instance_opts(cfg));
        SpmvInstance comp_mt(mc.mat, compressed, n, instance_opts(cfg));
        const RunMetrics m_csr =
            time_spmv_metrics(csr_mt, cfg.iterations, cfg.warmup);
        const RunMetrics m_comp =
            time_spmv_metrics(comp_mt, cfg.iterations, cfg.warmup);
        t_csr = m_csr.seconds;
        t_comp = m_comp.seconds;
        emit_metrics_record(bench, mc, csr_mt, m_csr, 1.0);
        emit_metrics_record(bench, mc, comp_mt, m_comp,
                            t_comp > 0.0 ? t_csr / t_comp : 0.0);
      }
      const double sp = t_comp > 0.0 ? t_csr / t_comp : 0.0;
      agg[set][n].add(sp);
      agg["M0"][n].add(sp);
      csv_rows.push_back({mc.name, set, std::to_string(n), f2(sp),
                          f1(size_red)});
    }
  });

  TextTable table({"core(s)", "MS avg", "MS max", "MS min", "MS <0.98",
                   "ML avg", "ML max", "ML min", "ML <0.98", "M0 avg"});
  for (const std::size_t n : cfg.threads) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const char* set : {"MS", "ML"}) {
      SpeedupAgg& a = agg[set][n];
      row.push_back(f2(a.avg()));
      row.push_back(f2(a.max()));
      row.push_back(f2(a.min()));
      row.push_back(std::to_string(a.slowdowns()));
    }
    row.push_back(f2(agg["M0"][n].avg()));
    table.add_row(std::move(row));
  }
  os << "(matrices used: " << used << ", MS "
     << (agg.count("MS") ? agg["MS"].begin()->second.count() : 0) << ", ML "
     << (agg.count("ML") ? agg["ML"].begin()->second.count() : 0) << ")\n";
  table.print(os);
  write_csv(csv_name,
            {"matrix", "set", "threads", "speedup_vs_csr",
             "size_reduction_pct"},
            csv_rows);
  os << "per-matrix data: " << csv_name << "\n\n";
}

void run_detail_figure(const BenchConfig& cfg, Format compressed,
                       bool vi_subset, const std::string& csv_name,
                       std::ostream& os) {
  const std::string fname = format_name(compressed);
  os << "=== Per-matrix detail: " << fname
     << " speedup vs serial CSR (bars), CSR MT speedup (squares), size "
        "reduction (labels) ===\n[" << cfg.describe() << "]\n";

  struct Row {
    std::string name;
    std::string set;
    double csr_mt_speedup;
    std::vector<double> comp_speedups;  // one per thread count
    double size_reduction_pct;
  };
  std::vector<Row> rows;
  const std::size_t max_threads =
      *std::max_element(cfg.threads.begin(), cfg.threads.end());

  for_each_matrix(cfg, [&](MatrixCase& mc) {
    if (vi_subset && mc.stats.ttu <= kViTtuThreshold) {
      return;
    }
    Row r;
    r.name = mc.name;
    r.set = set_name(mc.set_class);
    const std::string bench = bench_label(csv_name);
    SpmvInstance csr_serial(mc.mat, Format::kCsr, 1, instance_opts(cfg));
    const RunMetrics m1 =
        time_spmv_metrics(csr_serial, cfg.iterations, cfg.warmup);
    emit_metrics_record(bench, mc, csr_serial, m1, 1.0);
    const double t1 = m1.seconds;

    SpmvInstance comp_serial(mc.mat, compressed, 1, instance_opts(cfg));
    r.size_reduction_pct =
        100.0 * (1.0 - static_cast<double>(comp_serial.matrix_bytes()) /
                           static_cast<double>(csr_serial.matrix_bytes()));

    SpmvInstance csr_mt(mc.mat, Format::kCsr, max_threads,
                        instance_opts(cfg));
    const RunMetrics m_mt =
        time_spmv_metrics(csr_mt, cfg.iterations, cfg.warmup);
    const double t_mt = m_mt.seconds;
    r.csr_mt_speedup = t_mt > 0.0 ? t1 / t_mt : 0.0;
    emit_metrics_record(bench, mc, csr_mt, m_mt, r.csr_mt_speedup);

    for (const std::size_t n : cfg.threads) {
      double tn;
      if (n == 1) {
        const RunMetrics mn =
            time_spmv_metrics(comp_serial, cfg.iterations, cfg.warmup);
        tn = mn.seconds;
        emit_metrics_record(bench, mc, comp_serial, mn,
                            tn > 0.0 ? t1 / tn : 0.0);
      } else {
        SpmvInstance comp_mt(mc.mat, compressed, n, instance_opts(cfg));
        const RunMetrics mn =
            time_spmv_metrics(comp_mt, cfg.iterations, cfg.warmup);
        tn = mn.seconds;
        emit_metrics_record(bench, mc, comp_mt, mn,
                            tn > 0.0 ? t1 / tn : 0.0);
      }
      r.comp_speedups.push_back(tn > 0.0 ? t1 / tn : 0.0);
    }
    rows.push_back(std::move(r));
  });

  // The paper sorts matrices by speedup.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.comp_speedups.back() < b.comp_speedups.back();
  });

  std::vector<std::string> header = {"matrix", "set"};
  for (const std::size_t n : cfg.threads) {
    header.push_back(fname + "_x" + std::to_string(n));
  }
  header.push_back("csr_x" + std::to_string(max_threads));
  header.push_back("size_red_%");
  TextTable table(header);
  std::vector<std::vector<std::string>> csv_rows;
  for (const Row& r : rows) {
    std::vector<std::string> cells = {r.name, r.set};
    for (const double s : r.comp_speedups) {
      cells.push_back(f2(s));
    }
    cells.push_back(f2(r.csr_mt_speedup));
    cells.push_back(f1(r.size_reduction_pct));
    table.add_row(cells);
    csv_rows.push_back(cells);
  }
  table.print(os);
  write_csv(csv_name, header, csv_rows);
  os << "figure series: " << csv_name << "\n\n";
}

void run_working_set_report(const BenchConfig& cfg, std::ostream& os) {
  os << "=== Working-set model (the paper's §II-B formula) and encoded "
        "format sizes ===\n[" << cfg.describe() << "]\n";
  // Stripe widths for the tiled delta-class columns: how much of the
  // delta mass drops into the u8 class when columns restart every
  // `bytes / sizeof(value_t)` columns (spmv/tiling.hpp layout). The
  // widths bracket the auto planner's clamp range.
  struct StripeCol {
    const char* label;
    std::size_t bytes;
  };
  const StripeCol stripes[] = {
      {"4k", 4u << 10}, {"16k", 16u << 10}, {"64k", 64u << 10}};
  TextTable table({"matrix", "set", "nrows", "nnz", "ws", "ttu",
                   "u8-delta%", "u8%@4k", "u8%@16k", "u8%@64k", "csr",
                   "csr-du", "csr-vi", "csr-du-vi", "dcsr", "pick",
                   "pred-B/nnz", "meas-B/nnz", "err%"});
  std::vector<std::vector<std::string>> csv_rows;
  for_each_matrix(
      cfg,
      [&](MatrixCase& mc) {
        SpmvInstance csr(mc.mat, Format::kCsr);
        const double csr_b = static_cast<double>(csr.matrix_bytes());
        const auto rel = [&](Format f) {
          SpmvInstance inst(mc.mat, f);
          return f2(static_cast<double>(inst.matrix_bytes()) / csr_b);
        };
        std::vector<std::string> row = {
            mc.name,
            set_name(mc.set_class),
            std::to_string(mc.stats.nrows),
            std::to_string(mc.stats.nnz),
            human_bytes(mc.ws),
            f1(mc.stats.ttu),
            f1(100.0 * mc.stats.u8_delta_fraction())};
        // csv gets the full u8/u16/u32 share breakdown per stripe width;
        // the table shows the u8 share (the CSR-DU payoff axis).
        std::vector<std::string> stripe_csv;
        for (const StripeCol& sc : stripes) {
          const index_t scols = static_cast<index_t>(
              std::max<std::size_t>(1, sc.bytes / sizeof(value_t)));
          std::uint64_t c[4];
          tiled_delta_class_counts(mc.mat, scols, c);
          const double total =
              static_cast<double>(c[0] + c[1] + c[2] + c[3]);
          const auto pct = [&](int i) {
            return f1(total > 0.0 ? 100.0 * static_cast<double>(c[i]) / total
                                  : 0.0);
          };
          row.push_back(pct(0));
          stripe_csv.push_back(pct(0));
          stripe_csv.push_back(pct(1));
          stripe_csv.push_back(pct(2));
        }
        row.insert(row.end(), {human_bytes(csr.matrix_bytes()),
                               rel(Format::kCsrDu),
                               rel(Format::kCsrVi),
                               rel(Format::kCsrDuVi),
                               rel(Format::kDcsr)});
        // Cost-model check (§II-B): the tuner's predicted streamed
        // bytes/nnz for its top pick, next to the same figure recomputed
        // from the actually-encoded instance. A drifting err% means the
        // closed-form model has fallen out of sync with the encoders.
        const tune::TuneFeatures feats = tune::extract_features(mc.mat);
        Format pick = Format::kCsr;
        double pred_streamed = std::numeric_limits<double>::infinity();
        for (const tune::CandidatePrediction& c :
             tune::predict_candidates(feats)) {
          if (c.applicable && c.streamed_bytes_per_nnz < pred_streamed) {
            pred_streamed = c.streamed_bytes_per_nnz;
            pick = c.format;
          }
        }
        SpmvInstance pick_inst(mc.mat, pick);
        const double nnz_d =
            static_cast<double>(std::max<std::uint64_t>(1, mc.stats.nnz));
        const double vec_b = static_cast<double>(sizeof(value_t)) *
                             static_cast<double>(mc.stats.nrows +
                                                 mc.stats.ncols) /
                             nnz_d;
        const double meas_streamed =
            static_cast<double>(pick_inst.matrix_bytes()) / nnz_d + vec_b;
        const double err_pct =
            meas_streamed > 0.0
                ? 100.0 * (pred_streamed - meas_streamed) / meas_streamed
                : 0.0;
        row.insert(row.end(), {format_name(pick), f2(pred_streamed),
                               f2(meas_streamed), f1(err_pct)});
        table.add_row(row);
        // CSV row: table columns plus the u16/u32 shares per width.
        std::vector<std::string> csv_row(row.begin(), row.begin() + 7);
        csv_row.insert(csv_row.end(), stripe_csv.begin(), stripe_csv.end());
        csv_row.insert(csv_row.end(), row.end() - 9, row.end());
        csv_rows.push_back(std::move(csv_row));
      },
      /*apply_rejection=*/false);
  table.print(os);
  write_csv("working_set_report.csv",
            {"matrix", "set", "nrows", "nnz", "ws", "ttu", "u8_delta_pct",
             "u8_pct_4k", "u16_pct_4k", "u32_pct_4k", "u8_pct_16k",
             "u16_pct_16k", "u32_pct_16k", "u8_pct_64k", "u16_pct_64k",
             "u32_pct_64k", "csr_bytes", "du_rel", "vi_rel", "duvi_rel",
             "dcsr_rel", "pick", "pred_b_nnz", "meas_b_nnz", "err_pct"},
            csv_rows);
  os << "data: working_set_report.csv\n\n";
}

}  // namespace spc
