#include "spc/bench/model.hpp"

#include <algorithm>

#include "spc/support/aligned.hpp"
#include "spc/support/timing.hpp"

namespace spc {

BandwidthCalibration calibrate_bandwidth(usize_t bytes, int reps) {
  const usize_t n = std::max<usize_t>(bytes / sizeof(double), 1024);
  aligned_vector<double> a(n, 1.0), b(n, 2.0), c(n, 3.0);

  BandwidthCalibration cal;
  volatile double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    // Streaming read: sum of one array.
    Timer t1;
    double s = 0.0;
    for (usize_t i = 0; i < n; ++i) {
      s += b[i];
    }
    sink = sink + s;
    const double read_secs = t1.elapsed_s();
    cal.read_gbps = std::max(
        cal.read_gbps,
        static_cast<double>(n * sizeof(double)) / read_secs / 1e9);

    // Triad: 2 streamed reads + 1 streamed write per element.
    Timer t2;
    for (usize_t i = 0; i < n; ++i) {
      a[i] = b[i] + 0.5 * c[i];
    }
    const double triad_secs = t2.elapsed_s();
    sink = sink + a[n / 2];
    cal.triad_gbps = std::max(
        cal.triad_gbps,
        static_cast<double>(3 * n * sizeof(double)) / triad_secs / 1e9);
  }
  (void)sink;
  return cal;
}

}  // namespace spc
