// The paper's experiments (§VI), each regenerating one table or figure.
//
// Every function prints a paper-style table to `os` and drops a CSV with
// the per-matrix raw data next to the working directory (path returned in
// the output header) so the series behind the figures can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>

#include "spc/bench/harness.hpp"
#include "spc/spmv/instance.hpp"

namespace spc {

/// Table II: CSR serial MFLOPS and multithreaded speedups for the MS / ML
/// / M0 sets, including the two 2-thread placements (shared vs separate
/// LLC).
void run_table2_csr_scaling(const BenchConfig& cfg, std::ostream& os);

/// Tables III / IV: `compressed` vs CSR at equal thread counts,
/// avg/max/min speedup and slowdown counts per set. With `vi_subset` the
/// corpus is filtered to ttu > 5 (the paper's M0vi) first.
void run_compare_table(const BenchConfig& cfg, Format compressed,
                       bool vi_subset, const std::string& csv_name,
                       std::ostream& os);

/// Figures 7 / 8: per-matrix speedups of `compressed` relative to the
/// *serial CSR* baseline (the figures' y-axis), the multithreaded CSR
/// speedup for comparison (the figures' black squares), and the size
/// reduction relative to CSR (the figures' text labels). Sorted by
/// speedup as in the paper.
void run_detail_figure(const BenchConfig& cfg, Format compressed,
                       bool vi_subset, const std::string& csv_name,
                       std::ostream& os);

/// §II-B working-set model: per-matrix ws decomposition and each format's
/// measured size against the CSR baseline.
void run_working_set_report(const BenchConfig& cfg, std::ostream& os);

}  // namespace spc
