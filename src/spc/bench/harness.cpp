#include "spc/bench/harness.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "spc/bench/model.hpp"
#include "spc/mm/vector.hpp"
#include "spc/obs/ledger.hpp"
#include "spc/obs/metrics.hpp"
#include "spc/obs/metrics_io.hpp"
#include "spc/obs/trace.hpp"
#include "spc/support/env.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {

namespace {

// SPC_PAD_NS_PER_ITER test hook: spin this many extra ns per timed
// iteration. Re-read on every timed run so in-process setenv works
// (regress_check's injection mode).
std::uint64_t pad_ns_per_iter() {
  return env_u64("SPC_PAD_NS_PER_ITER").value_or(0);
}

void busy_wait_ns(std::uint64_t ns) {
  const std::uint64_t until = now_ns() + ns;
  while (now_ns() < until) {
    // spin — the point is to consume wall time deterministically
  }
}

}  // namespace

SetThresholds thresholds_for(CorpusScale scale) {
  SetThresholds th;  // paper defaults (kBench)
  switch (scale) {
    case CorpusScale::kBench:
      break;
    case CorpusScale::kSmall:
      // Corpus nnz shrinks by ~20x at kSmall; scale the cut points along.
      th.reject_below /= 20;
      th.large_at_least /= 20;
      break;
    case CorpusScale::kTiny:
      th.reject_below /= 400;
      th.large_at_least /= 400;
      break;
  }
  if (const auto kb = env_u64("SPC_WS_REJECT_KB")) {
    th.reject_below = *kb << 10;
  }
  if (const auto kb = env_u64("SPC_WS_LARGE_KB")) {
    th.large_at_least = *kb << 10;
  }
  return th;
}

SetClass classify_ws(usize_t ws, const SetThresholds& th) {
  if (ws < th.reject_below) {
    return SetClass::kRejected;
  }
  return ws >= th.large_at_least ? SetClass::kLarge : SetClass::kSmall;
}

BenchConfig BenchConfig::from_env() {
  BenchConfig cfg;
  if (const auto s = env_str("SPC_SCALE")) {
    cfg.scale = parse_corpus_scale(*s);
  }
  if (const auto n = env_u64("SPC_ITERS")) {
    cfg.iterations = *n;
  }
  if (const auto n = env_u64("SPC_WARMUP")) {
    cfg.warmup = *n;
  }
  if (const auto s = env_str("SPC_THREADS")) {
    cfg.threads.clear();
    std::stringstream ss(*s);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) {
        cfg.threads.push_back(std::stoull(tok));
      }
    }
    if (cfg.threads.empty()) {
      cfg.threads = {1};
    }
  }
  if (const auto n = env_u64("SPC_MAX_MATRICES")) {
    cfg.max_matrices = *n;
  }
  if (const auto n = env_u64("SPC_PIN")) {
    cfg.pin_threads = *n != 0;
  }
  return cfg;
}

std::string BenchConfig::describe() const {
  std::ostringstream os;
  os << "scale=";
  switch (scale) {
    case CorpusScale::kTiny:
      os << "tiny";
      break;
    case CorpusScale::kSmall:
      os << "small";
      break;
    case CorpusScale::kBench:
      os << "bench";
      break;
  }
  os << " iters=" << iterations << " warmup=" << warmup << " threads=";
  for (std::size_t i = 0; i < threads.size(); ++i) {
    os << (i ? "," : "") << threads[i];
  }
  const SetThresholds th = thresholds();
  os << " ws-reject<" << human_bytes(th.reject_below) << " ws-large>="
     << human_bytes(th.large_at_least) << " pin=" << (pin_threads ? 1 : 0);
  return os.str();
}

void for_each_matrix(const BenchConfig& cfg,
                     const std::function<void(MatrixCase&)>& fn,
                     bool apply_rejection) {
  const SetThresholds th = cfg.thresholds();
  std::size_t used = 0;
  for (auto& spec : corpus_specs(cfg.scale)) {
    if (cfg.max_matrices > 0 && used >= cfg.max_matrices) {
      break;
    }
    MatrixCase mc;
    mc.name = spec.name;
    mc.cls = spec.cls;
    mc.vi_friendly = spec.vi_friendly;
    {
      obs::TraceSpan span("build:" + spec.name);
      ScopedTimer timed(
          obs::Registry::global().histogram("spc.bench.build_ns"));
      mc.mat = spec.build();
    }
    {
      obs::TraceSpan span("stats:" + spec.name);
      mc.stats = compute_stats(mc.mat);
    }
    mc.ws = mc.stats.working_set_bytes();
    mc.set_class = classify_ws(mc.ws, th);
    if (apply_rejection && mc.set_class == SetClass::kRejected) {
      continue;
    }
    ++used;
    fn(mc);
  }
}

double time_spmv(SpmvInstance& inst, std::size_t iters, std::size_t warmup) {
  return time_spmv_metrics(inst, iters, warmup).seconds;
}

RunMetrics time_spmv_metrics(SpmvInstance& inst, std::size_t iters,
                             std::size_t warmup) {
  RunMetrics m;
  m.threads = inst.nthreads();
  m.iterations = iters;
  m.warmup = warmup;

  Rng rng(0xbe7cull ^ inst.nnz());
  const Vector x = random_vector(inst.ncols(), rng);
  Vector y(inst.nrows(), 0.0);
  {
    obs::TraceSpan span("warmup");
    for (std::size_t i = 0; i < warmup; ++i) {
      inst.run(x, y);
    }
  }

  ThreadPool* pool = inst.pool();
  std::unique_ptr<obs::PerfSession> serial_session;
  inst.sched_reset();  // count chunks/steals over the timed loop only
  inst.sym_reset();    // likewise the symmetric reduction-phase clock
  if (pool != nullptr) {
    pool->busy_reset();
    pool->counters_start();
  } else if (inst.nthreads() == 1 && obs::counters_enabled()) {
    // Serial runs execute on this thread; attach the group here.
    serial_session = std::make_unique<obs::PerfSession>();
    serial_session->start();
  }

  {
    obs::TraceSpan span("timed");
    // Per-iteration timestamps: sample i is t[i+1]-t[i], the total is
    // t[N]-t[0], so aggregate and samples stay mutually consistent. The
    // raw samples feed the run-ledger (obs/ledger.hpp).
    const std::uint64_t pad = pad_ns_per_iter();
    m.sample_seconds.resize(iters);
    const std::uint64_t begin = now_ns();
    std::uint64_t prev = begin;
    for (std::size_t i = 0; i < iters; ++i) {
      inst.run(x, y);
      if (pad > 0) {
        busy_wait_ns(pad);
      }
      const std::uint64_t now = now_ns();
      m.sample_seconds[i] =
          now >= prev ? static_cast<double>(now - prev) * 1e-9 : 0.0;
      prev = now;
    }
    m.seconds =
        prev >= begin ? static_cast<double>(prev - begin) * 1e-9 : 0.0;
  }
  m.mflops = mflops(inst.nnz(), iters, m.seconds);
  if (inst.schedule() != Schedule::kStatic) {
    m.sched_chunks = inst.sched_chunks();
    m.steals = inst.sched_steals_total();
  }
  if (inst.sym_active()) {
    m.sym_window_frac = inst.sym_window_frac();
    m.reduce_ns = inst.sym_reduce_ns_total();
  }

  if (pool != nullptr) {
    m.counters = pool->counters_stop();
    m.imbalance = pool->total_imbalance();
    m.busy_seconds.resize(pool->size());
    for (std::size_t t = 0; t < pool->size(); ++t) {
      m.busy_seconds[t] =
          static_cast<double>(pool->total_busy_ns(t)) * 1e-9;
    }
  } else if (serial_session != nullptr) {
    serial_session->stop();
    m.counters = serial_session->read();
    m.imbalance = 1.0;
  } else if (inst.nthreads() == 1) {
    m.counters.reason = "disabled (SPC_COUNTERS=0)";
    m.imbalance = 1.0;
  } else {
    // OpenMP backend: no per-thread sessions or busy accounting.
    m.counters.reason = "openmp backend (no per-thread attach)";
    m.imbalance = 0.0;
  }
  return m;
}

bool metrics_enabled() { return obs::MetricsSink::global().enabled(); }

double roofline_gbps() {
  const double g = env_double("SPC_ROOFLINE_GBPS").value_or(0.0);
  return g > 0.0 ? g : 0.0;
}

obs::Json make_metrics_record(
    const std::string& bench, const MatrixCase& mc,
    const SpmvInstance& inst, const RunMetrics& m, double speedup_vs_csr,
    const std::vector<std::pair<std::string, std::string>>& extras) {
  const double nnz_total =
      static_cast<double>(inst.nnz()) *
      static_cast<double>(m.iterations ? m.iterations : 1);

  obs::Json rec = obs::Json::object();
  rec.set("bench", bench);
  // Ledger provenance: which code on which machine produced this row.
  rec.set("git_sha", obs::build_git_sha());
  rec.set("machine_id", obs::machine_fingerprint().id());
  rec.set("machine", obs::machine_fingerprint().to_json());
  rec.set("matrix", mc.name);
  rec.set("cls", mc.cls);
  rec.set("set", std::string(mc.set_class == SetClass::kSmall    ? "MS"
                             : mc.set_class == SetClass::kLarge  ? "ML"
                                                                 : "rej"));
  rec.set("format", format_name(inst.format()));
  rec.set("isa", isa_tier_name(inst.isa_tier()));
  rec.set("numa", numa_policy_name(inst.numa_policy()));
  rec.set("schedule", schedule_name(inst.schedule()));
  if (inst.schedule() != Schedule::kStatic) {
    rec.set("sched_chunks", static_cast<std::uint64_t>(m.sched_chunks));
    rec.set("steals", m.steals);
  }
  // Symmetric-format provenance: how much conflict-window state the run
  // carried and what the reduction phase cost (profile_report turns the
  // latter into a share of the timed loop).
  if (inst.sym_active()) {
    rec.set("sym_reduce", sym_reduce_name(inst.sym_reduce()));
    rec.set("sym_window_frac", m.sym_window_frac);
    rec.set("reduce_ns", m.reduce_ns);
  }
  // Column-tiling provenance: tiled and untiled runs of one cell are
  // different layouts; the ledger key splits on these fields so their
  // baselines never pool.
  rec.set("tiling", std::string(inst.tiling_active() ? "on" : "off"));
  if (inst.tiling_active()) {
    rec.set("stripe_bytes",
            static_cast<std::uint64_t>(inst.tile_stripe_bytes()));
    rec.set("stripes", static_cast<std::uint64_t>(inst.tile_stripes()));
  } else if (const char* why = inst.tile_plan().decline_reason;
             why != nullptr && *why != '\0') {
    rec.set("tiling_declined", std::string(why));
  }
  // Tuning provenance: whether spc::tune chose this cell, what the
  // choice cost, and whether the tuning cache supplied it. The ledger
  // key splits on "tuned" so auto-selected rows never pool with
  // hand-picked baselines of the same format.
  const SpmvInstance::TuneProvenance& tp = inst.tune_provenance();
  rec.set("tuned", std::string(tp.tuned ? "yes" : "no"));
  if (tp.tuned) {
    rec.set("tune_source", tp.source);
    rec.set("probe_ns", tp.probe_ns);
    rec.set("cache_hit", tp.cache_hit);
    rec.set("matrix_fp", tp.fingerprint);
  }
  rec.set("threads", static_cast<std::uint64_t>(m.threads));
  const SpmvInstance::NumaResidency res = inst.matrix_residency();
  if (res.available) {
    rec.set("numa_pages_sampled",
            static_cast<std::uint64_t>(res.pages_sampled));
    rec.set("numa_pages_local",
            static_cast<std::uint64_t>(res.pages_local));
  }
  rec.set("iters", static_cast<std::uint64_t>(m.iterations));
  rec.set("warmup", static_cast<std::uint64_t>(m.warmup));
  rec.set("nrows", static_cast<std::uint64_t>(inst.nrows()));
  rec.set("ncols", static_cast<std::uint64_t>(inst.ncols()));
  rec.set("nnz", static_cast<std::uint64_t>(inst.nnz()));
  rec.set("matrix_bytes", static_cast<std::uint64_t>(inst.matrix_bytes()));
  rec.set("seconds", m.seconds);
  rec.set("mflops", m.mflops);
  rec.set("ns_per_nnz",
          nnz_total > 0.0 ? m.seconds * 1e9 / nnz_total : 0.0);
  // Working-set attribution (§II-B): bytes one SpMV streams, per nnz,
  // and — when a bandwidth figure is known — the fraction of the
  // memory-roofline bound this cell actually achieved. A cell at
  // frac ≈ 1 is as fast as the memory system allows; a low frac is
  // slow for a *fixable* reason, not because the matrix is big.
  const usize_t streamed =
      spmv_streamed_bytes(inst.matrix_bytes(), inst.nrows(), inst.ncols());
  rec.set("bytes_per_nnz",
          inst.nnz() > 0
              ? static_cast<double>(streamed) /
                    static_cast<double>(inst.nnz())
              : 0.0);
  if (const double gbps = roofline_gbps();
      gbps > 0.0 && !m.sample_seconds.empty()) {
    const double med_s = median(m.sample_seconds);
    const double min_s = predicted_spmv_seconds(streamed, gbps);
    if (med_s > 0.0 && min_s > 0.0) {
      obs::Json roof = obs::Json::object();
      roof.set("gbps", gbps);
      roof.set("min_ns_per_nnz",
               inst.nnz() > 0
                   ? min_s * 1e9 / static_cast<double>(inst.nnz())
                   : 0.0);
      roof.set("frac", min_s / med_s);
      rec.set("roofline", std::move(roof));
    }
  }
  if (!m.sample_seconds.empty()) {
    obs::Json samples = obs::Json::array();
    for (const double s : m.sample_seconds) {
      samples.push(s * 1e9);
    }
    rec.set("samples_ns", std::move(samples));
  }
  if (speedup_vs_csr > 0.0) {
    rec.set("speedup_vs_csr", speedup_vs_csr);
  }
  rec.set("imbalance", m.imbalance);
  if (!m.busy_seconds.empty()) {
    obs::Json busy = obs::Json::array();
    for (const double b : m.busy_seconds) {
      busy.push(b);
    }
    rec.set("busy_s", std::move(busy));
  }
  if (m.counters.available) {
    obs::Json c = obs::Json::object();
    c.set("cycles", m.counters.cycles);
    c.set("instructions", m.counters.instructions);
    c.set("ipc", m.counters.ipc());
    c.set("cycles_per_nnz",
          nnz_total > 0.0
              ? static_cast<double>(m.counters.cycles) / nnz_total
              : 0.0);
    if (m.counters.has_llc) {
      c.set("llc_loads", m.counters.llc_loads);
      c.set("llc_misses", m.counters.llc_misses);
      c.set("misses_per_knnz",
            nnz_total > 0.0
                ? 1e3 * static_cast<double>(m.counters.llc_misses) / nnz_total
                : 0.0);
    }
    if (m.counters.has_stalled) {
      c.set("stalled_cycles", m.counters.stalled_cycles);
    }
    c.set("scale", m.counters.scale);
    rec.set("counters", std::move(c));
  } else {
    rec.set("counters", "unavailable");
    rec.set("counters_reason", m.counters.reason);
  }
  for (const auto& [key, value] : extras) {
    rec.set(key, value);
  }
  return rec;
}

void emit_metrics_record(
    const std::string& bench, const MatrixCase& mc,
    const SpmvInstance& inst, const RunMetrics& m, double speedup_vs_csr,
    const std::vector<std::pair<std::string, std::string>>& extras) {
  obs::MetricsSink& sink = obs::MetricsSink::global();
  if (!sink.enabled()) {
    return;
  }
  sink.write(make_metrics_record(bench, mc, inst, m, speedup_vs_csr, extras));
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (const std::size_t w : width) {
    os << std::string(w + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    return field;
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  for (std::size_t c = 0; c < header.size(); ++c) {
    f << (c ? "," : "") << csv_escape(header[c]);
  }
  f << "\n";
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      f << (c ? "," : "") << csv_escape(row[c]);
    }
    f << "\n";
  }
}

}  // namespace spc
