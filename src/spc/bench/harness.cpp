#include "spc/bench/harness.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "spc/mm/vector.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {

namespace {

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return std::nullopt;
  }
  return std::string(v);
}

std::optional<std::uint64_t> env_u64(const char* name) {
  const auto s = env_str(name);
  if (!s) {
    return std::nullopt;
  }
  try {
    return std::stoull(*s);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

SetThresholds thresholds_for(CorpusScale scale) {
  SetThresholds th;  // paper defaults (kBench)
  switch (scale) {
    case CorpusScale::kBench:
      break;
    case CorpusScale::kSmall:
      // Corpus nnz shrinks by ~20x at kSmall; scale the cut points along.
      th.reject_below /= 20;
      th.large_at_least /= 20;
      break;
    case CorpusScale::kTiny:
      th.reject_below /= 400;
      th.large_at_least /= 400;
      break;
  }
  if (const auto kb = env_u64("SPC_WS_REJECT_KB")) {
    th.reject_below = *kb << 10;
  }
  if (const auto kb = env_u64("SPC_WS_LARGE_KB")) {
    th.large_at_least = *kb << 10;
  }
  return th;
}

SetClass classify_ws(usize_t ws, const SetThresholds& th) {
  if (ws < th.reject_below) {
    return SetClass::kRejected;
  }
  return ws >= th.large_at_least ? SetClass::kLarge : SetClass::kSmall;
}

BenchConfig BenchConfig::from_env() {
  BenchConfig cfg;
  if (const auto s = env_str("SPC_SCALE")) {
    cfg.scale = parse_corpus_scale(*s);
  }
  if (const auto n = env_u64("SPC_ITERS")) {
    cfg.iterations = *n;
  }
  if (const auto n = env_u64("SPC_WARMUP")) {
    cfg.warmup = *n;
  }
  if (const auto s = env_str("SPC_THREADS")) {
    cfg.threads.clear();
    std::stringstream ss(*s);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) {
        cfg.threads.push_back(std::stoull(tok));
      }
    }
    if (cfg.threads.empty()) {
      cfg.threads = {1};
    }
  }
  if (const auto n = env_u64("SPC_MAX_MATRICES")) {
    cfg.max_matrices = *n;
  }
  if (const auto n = env_u64("SPC_PIN")) {
    cfg.pin_threads = *n != 0;
  }
  return cfg;
}

std::string BenchConfig::describe() const {
  std::ostringstream os;
  os << "scale=";
  switch (scale) {
    case CorpusScale::kTiny:
      os << "tiny";
      break;
    case CorpusScale::kSmall:
      os << "small";
      break;
    case CorpusScale::kBench:
      os << "bench";
      break;
  }
  os << " iters=" << iterations << " warmup=" << warmup << " threads=";
  for (std::size_t i = 0; i < threads.size(); ++i) {
    os << (i ? "," : "") << threads[i];
  }
  const SetThresholds th = thresholds();
  os << " ws-reject<" << human_bytes(th.reject_below) << " ws-large>="
     << human_bytes(th.large_at_least) << " pin=" << (pin_threads ? 1 : 0);
  return os.str();
}

void for_each_matrix(const BenchConfig& cfg,
                     const std::function<void(MatrixCase&)>& fn,
                     bool apply_rejection) {
  const SetThresholds th = cfg.thresholds();
  std::size_t used = 0;
  for (auto& spec : corpus_specs(cfg.scale)) {
    if (cfg.max_matrices > 0 && used >= cfg.max_matrices) {
      break;
    }
    MatrixCase mc;
    mc.name = spec.name;
    mc.cls = spec.cls;
    mc.vi_friendly = spec.vi_friendly;
    mc.mat = spec.build();
    mc.stats = compute_stats(mc.mat);
    mc.ws = mc.stats.working_set_bytes();
    mc.set_class = classify_ws(mc.ws, th);
    if (apply_rejection && mc.set_class == SetClass::kRejected) {
      continue;
    }
    ++used;
    fn(mc);
  }
}

double time_spmv(SpmvInstance& inst, std::size_t iters, std::size_t warmup) {
  Rng rng(0xbe7cull ^ inst.nnz());
  const Vector x = random_vector(inst.ncols(), rng);
  Vector y(inst.nrows(), 0.0);
  for (std::size_t i = 0; i < warmup; ++i) {
    inst.run(x, y);
  }
  Timer t;
  for (std::size_t i = 0; i < iters; ++i) {
    inst.run(x, y);
  }
  return t.elapsed_s();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (const std::size_t w : width) {
    os << std::string(w + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  for (std::size_t c = 0; c < header.size(); ++c) {
    f << (c ? "," : "") << header[c];
  }
  f << "\n";
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      f << (c ? "," : "") << row[c];
    }
    f << "\n";
  }
}

}  // namespace spc
