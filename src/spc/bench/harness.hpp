// Experiment harness shared by the bench/ binaries.
//
// Encapsulates the paper's measurement protocol (§VI-A):
//  * time N consecutive SpMV operations (paper: 128) with a random x,
//  * no artificial cache pollution between iterations,
//  * serial results in MFLOPS, multithreaded results as speedups,
//  * matrices classified into the MS / ML sets by working-set size.
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "spc/gen/corpus.hpp"
#include "spc/mm/stats.hpp"
#include "spc/obs/json.hpp"
#include "spc/obs/perf_counters.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/support/stats.hpp"

namespace spc {

/// Working-set classification per §VI-B.
enum class SetClass {
  kRejected,  ///< ws below the rejection threshold (cache resident)
  kSmall,     ///< MS: larger than one LLC but fits the aggregate cache
  kLarge      ///< ML: memory bound at any core count
};

struct SetThresholds {
  usize_t reject_below = 3ull << 20;   ///< paper: 3/4 of the 4 MB L2
  usize_t large_at_least = 17ull << 20;  ///< paper: 4×L2 + 1 MB
};

/// Thresholds scaled to the corpus scale (the paper's absolute values at
/// kBench; proportionally smaller for the reduced corpora) and
/// overridable via SPC_WS_REJECT_KB / SPC_WS_LARGE_KB.
SetThresholds thresholds_for(CorpusScale scale);

SetClass classify_ws(usize_t ws, const SetThresholds& th);

/// Harness configuration, read from the environment:
///   SPC_SCALE=tiny|small|bench   corpus scale        (default small)
///   SPC_ITERS=N                  timed iterations    (default 128)
///   SPC_WARMUP=N                 untimed iterations  (default 2)
///   SPC_THREADS=1,2,4,8          thread counts       (default 1,2,4,8)
///   SPC_MAX_MATRICES=N           truncate the corpus (default all)
///   SPC_PIN=0|1                  pin threads         (default 1)
struct BenchConfig {
  CorpusScale scale = CorpusScale::kSmall;
  std::size_t iterations = 128;
  std::size_t warmup = 2;
  std::vector<std::size_t> threads = {1, 2, 4, 8};
  std::size_t max_matrices = 0;  ///< 0 = no limit
  bool pin_threads = true;

  static BenchConfig from_env();

  SetThresholds thresholds() const { return thresholds_for(scale); }

  /// Human-readable one-liner for bench headers.
  std::string describe() const;
};

/// One corpus matrix, built and analysed.
struct MatrixCase {
  std::string name;
  std::string cls;
  bool vi_friendly = false;
  Triplets mat;
  MatrixStats stats;
  usize_t ws = 0;
  SetClass set_class = SetClass::kRejected;
};

/// Builds each corpus matrix in turn (one live at a time) and invokes fn.
/// Matrices whose ws falls below the rejection threshold are skipped when
/// `apply_rejection` is set — mirroring §VI-B's filtering. `fn` may keep
/// only what it needs; the Triplets die after the call.
void for_each_matrix(const BenchConfig& cfg,
                     const std::function<void(MatrixCase&)>& fn,
                     bool apply_rejection = true);

/// Times `iters` consecutive y = A*x (after `warmup` untimed runs) and
/// returns the total seconds. Uses a deterministic random x (§VI-A).
double time_spmv(SpmvInstance& inst, std::size_t iters, std::size_t warmup);

/// Everything one timed run can tell about itself: wall clock, derived
/// rates, per-thread busy-time balance, and hardware-counter readings
/// (available=false with a reason when counters could not be used —
/// the wall-clock fields are always complete).
struct RunMetrics {
  std::size_t threads = 1;
  std::size_t iterations = 0;
  std::size_t warmup = 0;
  double seconds = 0.0;  ///< total wall time of the timed loop
  /// Per-iteration wall time — the raw samples behind `seconds`, kept
  /// so the run-ledger can recompute medians / CIs / rank tests later
  /// instead of trusting one pre-aggregated number. Costs one extra
  /// monotonic clock read per iteration (~25 ns, invisible beyond the
  /// tiny corpus scale).
  std::vector<double> sample_seconds;
  double mflops = 0.0;
  /// max/mean worker busy time over the whole timed loop; 1.0 for
  /// serial runs, 0.0 when unknown (OpenMP backend).
  double imbalance = 1.0;
  std::vector<double> busy_seconds;  ///< per-worker busy time (empty serial)
  /// Chunks in the dynamic-schedule plan; 0 under the static schedule.
  std::size_t sched_chunks = 0;
  /// Chunks executed by non-owners over the timed loop (steal schedule).
  std::uint64_t steals = 0;
  /// Symmetric formats only: window rows as a fraction of the private-y
  /// scheme's rows (1.0 = private fallback, 0 = sym inactive), and the
  /// wall time of the reduction phase over the timed loop.
  double sym_window_frac = 0.0;
  std::uint64_t reduce_ns = 0;
  obs::CounterReadings counters;
};

/// time_spmv plus metrics capture: busy-time imbalance from the pool
/// and a hardware-counter group around the timed loop (per-thread for
/// pool instances, calling-thread for serial ones). Emits "warmup" and
/// "timed" trace spans when SPC_TRACE is active.
///
/// Test hook: SPC_PAD_NS_PER_ITER=N busy-waits N extra nanoseconds
/// inside every timed iteration — a synthetic, precisely sized slowdown
/// used to validate that regress_check flags what it should. Never set
/// it for real measurements.
RunMetrics time_spmv_metrics(SpmvInstance& inst, std::size_t iters,
                             std::size_t warmup);

/// True when SPC_METRICS names a JSONL output file.
bool metrics_enabled();

/// Memory-roofline bandwidth (GB/s) used for ledger attribution: the
/// SPC_ROOFLINE_GBPS environment variable, else 0 (attribution off).
/// regress_check --calibrate measures and sets it for its own run.
double roofline_gbps();

/// Builds the full run-ledger record for one (matrix, format, threads)
/// cell: cell coordinates, machine fingerprint + git sha provenance,
/// wall-clock aggregates, the per-iteration raw samples, hardware
/// counters, and derived attribution (ns/nnz, bytes/nnz from the
/// streamed-working-set model, fraction-of-roofline when a bandwidth
/// figure is available — see roofline_gbps()).
obs::Json make_metrics_record(
    const std::string& bench, const MatrixCase& mc,
    const SpmvInstance& inst, const RunMetrics& m,
    double speedup_vs_csr = 0.0,
    const std::vector<std::pair<std::string, std::string>>& extras = {});

/// make_metrics_record + append to the SPC_METRICS sink (no-op when
/// disabled). `speedup_vs_csr` <= 0 means "not applicable" and is
/// omitted from the record. `extras` adds bench-specific string fields
/// (e.g. ablation_numa's "placement").
void emit_metrics_record(
    const std::string& bench, const MatrixCase& mc,
    const SpmvInstance& inst, const RunMetrics& m,
    double speedup_vs_csr = 0.0,
    const std::vector<std::pair<std::string, std::string>>& extras = {});

/// MFLOPS for a timed run: 2*nnz flops per SpMV.
inline double mflops(usize_t nnz, std::size_t iters, double seconds) {
  return seconds > 0.0
             ? 2.0 * static_cast<double>(nnz) *
                   static_cast<double>(iters) / seconds / 1e6
             : 0.0;
}

/// Aggregates speedups the way the paper's tables do: avg / max / min
/// plus the count of non-negligible slowdowns (speedup < 0.98).
class SpeedupAgg {
 public:
  void add(double speedup) {
    stats_.add(speedup);
    if (speedup < 0.98) {
      ++slowdowns_;
    }
  }
  std::uint64_t count() const { return stats_.count(); }
  double avg() const { return stats_.mean(); }
  double max() const { return stats_.max(); }
  double min() const { return stats_.min(); }
  std::uint64_t slowdowns() const { return slowdowns_; }

 private:
  OnlineStats stats_;
  std::uint64_t slowdowns_ = 0;
};

/// Fixed-width text table with a markdown-ish layout for the bench output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// RFC-4180 CSV field escaping: fields containing commas, quotes, or
/// newlines are quoted with inner quotes doubled; anything else passes
/// through untouched.
std::string csv_escape(const std::string& field);

/// Writes rows as CSV, escaping fields via csv_escape.
void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace spc
