// Core scalar type aliases shared across the library.
//
// The paper's experimental setup (§VI-A) uses 32-bit indices and 64-bit
// floating point values; these are the library-wide defaults. Formats that
// deliberately deviate (CSR-16, CSR-VI value indices) say so explicitly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spc {

/// Row/column index type. 32 bits per the paper's setup: vectors are assumed
/// to have fewer than 2^32 elements.
using index_t = std::uint32_t;

/// Numerical value type (double precision, per the paper).
using value_t = double;

/// Unsigned size used for nnz counts and byte sizes (may exceed 2^32).
using usize_t = std::uint64_t;

/// Cache line size assumed for alignment/padding decisions.
inline constexpr std::size_t kCacheLineBytes = 64;

}  // namespace spc
