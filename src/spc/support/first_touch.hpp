// First-touch NUMA placement primitives.
//
// Linux places an anonymous page on the NUMA node of the thread that
// first writes it. The encoder builds every matrix array on the master
// thread, so by default all matrix pages land on one node and threads on
// the other socket stream them at remote-memory bandwidth — exactly the
// flat-scaling failure mode Schubert/Hager/Fehske describe for ccNUMA
// SpMV. The FirstTouchArena below breaks that: page-aligned per-owner
// blocks are mapped untouched, each owning worker zero-touches its own
// block from inside ThreadPool::run (pinning the pages to its node), and
// only then is the data copied in. All of it happens at prepare() time,
// off the timed path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "spc/support/types.hpp"

namespace spc {

/// Data-placement policy for a prepared SpMV instance (the SPC_NUMA knob).
enum class NumaPolicy {
  kAuto,        ///< local on multi-node machines, off on flat ones
  kOff,         ///< master-touched arrays, shared x (pre-NUMA behavior)
  kLocal,       ///< per-thread matrix slices first-touched by their owner
  kReplicate,   ///< kLocal + one x replica per NUMA node
  kInterleave,  ///< kLocal + x pages interleaved across nodes
};

/// Canonical lower-case name ("auto", "off", "local", "replicate",
/// "interleaved").
std::string numa_policy_name(NumaPolicy p);

/// Parses a policy name (also accepts "interleave"); returns false on
/// unknown names, leaving *out untouched.
bool parse_numa_policy(const std::string& name, NumaPolicy* out);

/// `fallback` overridden by a parseable SPC_NUMA environment value; an
/// unparseable value is diagnosed once to stderr and ignored.
NumaPolicy numa_policy_from_env(NumaPolicy fallback);

/// Resolves kAuto against the machine: local when `nnodes` > 1, off
/// otherwise. Non-auto policies pass through (an explicit replicate on a
/// flat machine still exercises the repack path, which is what the
/// single-node CI legs rely on).
NumaPolicy resolve_numa_policy(NumaPolicy requested, std::size_t nnodes);

/// Builds a pointer that, indexed with an *absolute* position, lands in a
/// repacked slice that only stores positions >= `first`. The arithmetic
/// goes through uintptr_t so no pointer to outside the allocation is ever
/// formed as a typed pointer; the result must only be indexed with
/// positions inside [first, first + slice length).
template <typename T>
inline T* rebase_ptr(T* slice, std::ptrdiff_t first) {
  return reinterpret_cast<T*>(
      reinterpret_cast<std::uintptr_t>(slice) -
      static_cast<std::uintptr_t>(first) * sizeof(T));
}

/// Page-aligned per-owner allocation with deferred first touch.
///
/// Usage (master thread unless noted):
///   FirstTouchArena arena(nthreads);
///   auto h = arena.reserve<index_t>(tid, n);   // plan, any number of times
///   arena.allocate();                          // map blocks, pages untouched
///   pool.run([&](tid) { arena.first_touch(tid); });  // owner touches
///   std::copy(src, src + n, arena.data<index_t>(h)); // contents, any thread
///
/// Blocks are backed by fresh anonymous mmap (falling back to
/// aligned_alloc off Linux or when mmap fails), so no page can have been
/// touched by a previous owner. Reservations are cache-line aligned.
class FirstTouchArena {
 public:
  /// A planned reservation; resolve with data<T>() after allocate().
  struct Handle {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  explicit FirstTouchArena(std::size_t nblocks);
  ~FirstTouchArena();

  FirstTouchArena(const FirstTouchArena&) = delete;
  FirstTouchArena& operator=(const FirstTouchArena&) = delete;

  std::size_t nblocks() const { return blocks_.size(); }

  /// Plans `n` elements of T inside block `block`. Only valid before
  /// allocate().
  template <typename T>
  Handle reserve(std::size_t block, std::size_t n) {
    return reserve_bytes(block, n * sizeof(T));
  }

  /// Maps every non-empty block (no touch). Idempotent.
  void allocate();

  /// Zero-fills block `block`, making the calling thread the first
  /// toucher of all its pages. Call from the owning (pinned) worker.
  void first_touch(std::size_t block);

  /// Zero-fills only the pages of `block` whose page index satisfies
  /// page % nparts == part — the interleaved-x pattern, where one
  /// representative worker per node touches every nparts-th page.
  void first_touch_interleaved(std::size_t block, std::size_t part,
                               std::size_t nparts);

  /// Resolves a reservation. Only valid after allocate().
  template <typename T>
  T* data(const Handle& h) const {
    return reinterpret_cast<T*>(static_cast<std::uint8_t*>(base(h.block)) +
                                h.offset);
  }

  std::size_t block_bytes(std::size_t block) const;
  const void* block_base(std::size_t block) const;
  /// Sum of all block sizes (page-rounded).
  std::size_t total_bytes() const;
  bool allocated() const { return allocated_; }

 private:
  struct Block {
    std::size_t reserved = 0;  ///< bytes planned
    std::size_t mapped = 0;    ///< bytes actually mapped (page-rounded)
    void* base = nullptr;
    bool from_mmap = false;
  };

  Handle reserve_bytes(std::size_t block, std::size_t bytes);
  void* base(std::size_t block) const;

  std::vector<Block> blocks_;
  bool allocated_ = false;
};

/// NUMA node of each sampled page of [p, p+bytes), via the move_pages(2)
/// query form. At most `max_pages` pages are sampled, evenly spaced.
/// Returns false (and fills `reason`) when the syscall is unavailable or
/// fails — callers degrade gracefully, placement checking is best-effort
/// observability only.
bool query_page_nodes(const void* p, std::size_t bytes,
                      std::size_t max_pages, std::vector<int>* nodes,
                      std::string* reason);

}  // namespace spc
