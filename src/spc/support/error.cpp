#include "spc/support/error.hpp"

#include <sstream>

namespace spc::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "SPC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace spc::detail
