// Error handling: a lightweight exception hierarchy plus check macros.
//
// Library invariants are enforced with SPC_CHECK (always on) and
// SPC_DCHECK (debug only). User-facing failures (bad files, invalid
// construction arguments) throw spc::Error with a formatted message.
#pragma once

#include <stdexcept>
#include <string>

namespace spc {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on malformed input files (Matrix Market parsing, etc.).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when arguments to a public API violate its preconditions.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace spc

/// Always-on invariant check; throws spc::Error on failure.
#define SPC_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::spc::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                  \
  } while (0)

/// Always-on invariant check with an explanatory message.
#define SPC_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::spc::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                  \
  } while (0)

#ifndef NDEBUG
#define SPC_DCHECK(expr) SPC_CHECK(expr)
#else
#define SPC_DCHECK(expr) ((void)0)
#endif
