// CPU topology discovery.
//
// The paper schedules threads "as close as possible" and contrasts
// 2-thread placements that share an L2 against placements on separate
// caches (Table II). To reproduce that policy portably we read the Linux
// sysfs topology (package / core / sibling / cache layout) and fall back to
// a flat model when sysfs is unavailable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spc {

/// One logical CPU as the kernel numbers it.
struct CpuInfo {
  int cpu_id = 0;       ///< logical cpu number (sysfs cpuN)
  int package_id = 0;   ///< physical socket
  int core_id = 0;      ///< core within the socket
  /// Logical CPUs that share the highest-level cache with this one
  /// (inclusive of this cpu). Empty when unknown.
  std::vector<int> llc_siblings;
};

/// Snapshot of the machine layout relevant to thread placement.
struct Topology {
  std::vector<CpuInfo> cpus;
  std::size_t llc_bytes = 0;       ///< size of one last-level cache
  std::size_t llc_instances = 1;   ///< number of distinct LLC domains

  std::size_t num_cpus() const { return cpus.size(); }

  /// Total cache available when `n` threads are placed close-first
  /// (the paper's aggregate-L2 model: more LLC domains in use → more cache).
  std::size_t aggregate_llc_bytes(std::size_t threads_used) const;
};

/// Placement policies for the 2-thread experiment of Table II.
enum class Placement {
  kCloseFirst,   ///< pack threads onto shared-cache siblings first (default)
  kSpreadCaches  ///< place threads on distinct LLC domains first
};

/// Reads /sys/devices/system/cpu; never throws — degrades to a flat
/// single-package model with `sysconf` CPU count and a 0 llc size.
Topology discover_topology();

/// Chooses `nthreads` logical CPUs according to `policy`.
/// Returned ids are valid arguments for pin_thread_to_cpu.
std::vector<int> plan_placement(const Topology& topo, std::size_t nthreads,
                                Placement policy);

/// Binds the calling thread to one logical CPU (sched_setaffinity).
/// Returns false if the kernel rejected the mask (e.g. restricted cpuset);
/// callers treat that as a soft failure.
bool pin_thread_to_cpu(int cpu_id);

/// Human-readable topology description for reports (Fig 6 equivalent).
std::string describe_topology(const Topology& topo);

}  // namespace spc
