// CPU and NUMA topology discovery.
//
// The paper schedules threads "as close as possible" and contrasts
// 2-thread placements that share an L2 against placements on separate
// caches (Table II). To reproduce that policy portably we read the Linux
// sysfs topology (package / core / sibling / cache layout) and fall back to
// a flat model when sysfs is unavailable.
//
// On ccNUMA machines thread placement is only half the story: Linux
// first-touch page placement decides which node's memory controller
// serves each matrix page, so the NUMA layer (node → cpu map, per-node
// memory) is discovered here too and consumed by the first-touch arena
// (support/first_touch.hpp) and SpmvInstance's placement engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spc {

/// One logical CPU as the kernel numbers it.
struct CpuInfo {
  int cpu_id = 0;       ///< logical cpu number (sysfs cpuN)
  int package_id = 0;   ///< physical socket
  int core_id = 0;      ///< core within the socket
  int node_id = 0;      ///< NUMA node (0 on single-node machines)
  /// Logical CPUs that share the highest-level cache with this one
  /// (inclusive of this cpu). Empty when unknown.
  std::vector<int> llc_siblings;
};

/// One NUMA node: its logical CPUs and local memory size.
struct NumaNode {
  int node_id = 0;
  std::vector<int> cpus;       ///< logical cpu ids local to this node
  std::size_t mem_bytes = 0;   ///< node-local memory (0 when unknown)
};

/// Snapshot of the machine layout relevant to thread placement.
struct Topology {
  std::vector<CpuInfo> cpus;
  /// NUMA nodes, ascending by node_id. Always at least one entry after
  /// discover_topology(); may be empty for hand-built fixtures, which
  /// behaves like a single node.
  std::vector<NumaNode> nodes;
  std::size_t llc_bytes = 0;       ///< size of one last-level cache
  std::size_t llc_instances = 1;   ///< number of distinct LLC domains
  /// Size of one level-2 data/unified cache (0 when sysfs doesn't expose
  /// it, e.g. the flat fallback model). The chunked scheduler derives
  /// its target chunk size from this (parallel/schedule.hpp).
  std::size_t l2_bytes = 0;
  /// Size of one level-1 data/unified cache (0 when unknown). The column
  /// tiling layer sizes its x stripes from this (spmv/tiling.hpp).
  std::size_t l1d_bytes = 0;
  /// CPU model string from /proc/cpuinfo ("model name"); empty when
  /// unknown. Feeds the run-ledger's machine fingerprint (obs/ledger.hpp).
  std::string cpu_model;

  std::size_t num_cpus() const { return cpus.size(); }

  /// Number of NUMA nodes (>= 1; empty `nodes` counts as one flat node).
  std::size_t num_nodes() const { return nodes.empty() ? 1 : nodes.size(); }

  /// NUMA node of a logical cpu; 0 when the cpu is unknown or the
  /// machine is flat.
  int node_of_cpu(int cpu_id) const;

  /// Total cache available when `n` threads are placed close-first
  /// (the paper's aggregate-L2 model: more LLC domains in use → more cache).
  std::size_t aggregate_llc_bytes(std::size_t threads_used) const;
};

/// Placement policies for the 2-thread experiment of Table II.
enum class Placement {
  kCloseFirst,   ///< pack threads onto shared-cache siblings first (default)
  kSpreadCaches  ///< place threads on distinct LLC domains first
};

/// Canonical lower-case name ("close", "spread").
std::string placement_name(Placement p);

/// Reads /sys/devices/system/cpu and /sys/devices/system/node; never
/// throws — degrades to a flat single-package single-node model with
/// `sysconf` CPU count and a 0 llc size.
Topology discover_topology();

/// Same, rooted at `sysfs_root` instead of "/sys" — lets tests run the
/// parser against fixture trees (fake 2-socket / SMT / flat layouts).
Topology discover_topology(const std::string& sysfs_root);

/// Chooses `nthreads` logical CPUs according to `policy`.
/// Within a cache domain, distinct physical cores are used before SMT
/// siblings; close-first fills NUMA node by node, spread alternates
/// nodes before reusing a second cache domain of the same node.
/// Returned ids are valid arguments for pin_thread_to_cpu.
std::vector<int> plan_placement(const Topology& topo, std::size_t nthreads,
                                Placement policy);

/// Binds the calling thread to one logical CPU (sched_setaffinity).
/// Returns false if the kernel rejected the mask (e.g. restricted cpuset);
/// callers treat that as a soft failure.
bool pin_thread_to_cpu(int cpu_id);

/// Human-readable topology description for reports (Fig 6 equivalent).
std::string describe_topology(const Topology& topo);

}  // namespace spc
