#include "spc/support/topology.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace spc {

namespace {

// Reads a sysfs file containing a single integer; returns `fallback` when
// the file is missing or malformed.
long read_long(const std::string& path, long fallback) {
  std::ifstream f(path);
  long v = 0;
  if (f >> v) {
    return v;
  }
  return fallback;
}

// Parses a kernel cpulist string like "0-3,8,10-11" into cpu ids.
std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) {
      continue;
    }
    const auto dash = tok.find('-');
    if (dash == std::string::npos) {
      out.push_back(std::stoi(tok));
    } else {
      const int lo = std::stoi(tok.substr(0, dash));
      const int hi = std::stoi(tok.substr(dash + 1));
      for (int c = lo; c <= hi; ++c) {
        out.push_back(c);
      }
    }
  }
  return out;
}

// Parses cache sizes of the form "4096K" / "4M".
std::size_t parse_cache_size(const std::string& s) {
  if (s.empty()) {
    return 0;
  }
  std::size_t mult = 1;
  std::string digits = s;
  switch (s.back()) {
    case 'K':
      mult = 1024;
      digits.pop_back();
      break;
    case 'M':
      mult = 1024 * 1024;
      digits.pop_back();
      break;
    case 'G':
      mult = 1024ULL * 1024 * 1024;
      digits.pop_back();
      break;
    default:
      break;
  }
  try {
    return static_cast<std::size_t>(std::stoull(digits)) * mult;
  } catch (...) {
    return 0;
  }
}

std::string read_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  return line;
}

}  // namespace

std::size_t Topology::aggregate_llc_bytes(std::size_t threads_used) const {
  if (llc_bytes == 0 || cpus.empty()) {
    return 0;
  }
  // Close-first placement touches ceil(threads / cpus-per-LLC) LLC domains.
  const std::size_t cpus_per_llc =
      std::max<std::size_t>(1, num_cpus() / std::max<std::size_t>(1, llc_instances));
  const std::size_t domains =
      std::min(llc_instances,
               (threads_used + cpus_per_llc - 1) / cpus_per_llc);
  return domains * llc_bytes;
}

Topology discover_topology() {
  Topology topo;
  const std::string base = "/sys/devices/system/cpu";

  const long n_online = sysconf(_SC_NPROCESSORS_ONLN);
  const int ncpu = n_online > 0 ? static_cast<int>(n_online) : 1;

  std::set<std::string> llc_domains;
  for (int c = 0; c < ncpu; ++c) {
    const std::string cdir = base + "/cpu" + std::to_string(c);
    CpuInfo info;
    info.cpu_id = c;
    info.package_id = static_cast<int>(
        read_long(cdir + "/topology/physical_package_id", 0));
    info.core_id =
        static_cast<int>(read_long(cdir + "/topology/core_id", c));

    // Highest-index cache directory is the LLC.
    for (int idx = 4; idx >= 0; --idx) {
      const std::string cache =
          cdir + "/cache/index" + std::to_string(idx);
      const std::string type = read_line(cache + "/type");
      if (type.empty() || type == "Instruction") {
        continue;
      }
      const std::string shared =
          read_line(cache + "/shared_cpu_list");
      info.llc_siblings = parse_cpulist(shared);
      const std::size_t sz = parse_cache_size(read_line(cache + "/size"));
      if (sz > 0) {
        topo.llc_bytes = sz;
      }
      if (!shared.empty()) {
        llc_domains.insert(shared);
      }
      break;
    }
    if (info.llc_siblings.empty()) {
      info.llc_siblings = {c};
    }
    topo.cpus.push_back(info);
  }

  topo.llc_instances = llc_domains.empty() ? topo.cpus.size()
                                           : llc_domains.size();
  if (topo.llc_instances == 0) {
    topo.llc_instances = 1;
  }
  return topo;
}

std::vector<int> plan_placement(const Topology& topo, std::size_t nthreads,
                                Placement policy) {
  std::vector<int> plan;
  if (topo.cpus.empty() || nthreads == 0) {
    for (std::size_t i = 0; i < nthreads; ++i) {
      plan.push_back(static_cast<int>(i));
    }
    return plan;
  }

  // Group logical CPUs by LLC domain, represented by the sorted sibling list.
  std::map<std::vector<int>, std::vector<int>> domains;
  for (const auto& cpu : topo.cpus) {
    auto key = cpu.llc_siblings;
    std::sort(key.begin(), key.end());
    domains[key].push_back(cpu.cpu_id);
  }
  std::vector<std::vector<int>> groups;
  groups.reserve(domains.size());
  for (auto& [key, members] : domains) {
    std::sort(members.begin(), members.end());
    groups.push_back(members);
  }
  std::sort(groups.begin(), groups.end());

  if (policy == Placement::kCloseFirst) {
    // Fill one cache domain completely before moving to the next.
    for (const auto& g : groups) {
      for (int c : g) {
        if (plan.size() == nthreads) {
          return plan;
        }
        plan.push_back(c);
      }
    }
  } else {
    // Round-robin across domains so threads land on distinct caches first.
    for (std::size_t round = 0; plan.size() < nthreads; ++round) {
      bool placed = false;
      for (const auto& g : groups) {
        if (round < g.size()) {
          plan.push_back(g[round]);
          placed = true;
          if (plan.size() == nthreads) {
            return plan;
          }
        }
      }
      if (!placed) {
        break;  // more threads than CPUs — wrap around below
      }
    }
  }
  // Oversubscription: wrap modulo the CPU count, preserving the policy order.
  const std::size_t have = plan.size();
  if (have == 0) {
    plan.push_back(0);
  }
  while (plan.size() < nthreads) {
    plan.push_back(plan[plan.size() % std::max<std::size_t>(1, have)]);
  }
  return plan;
}

bool pin_thread_to_cpu(int cpu_id) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu_id), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

std::string describe_topology(const Topology& topo) {
  std::ostringstream os;
  std::set<int> packages;
  for (const auto& c : topo.cpus) {
    packages.insert(c.package_id);
  }
  os << topo.num_cpus() << " logical CPU(s), " << packages.size()
     << " package(s), " << topo.llc_instances << " LLC domain(s)";
  if (topo.llc_bytes > 0) {
    os << " of " << (topo.llc_bytes / 1024) << " KiB each";
  }
  return os.str();
}

}  // namespace spc
