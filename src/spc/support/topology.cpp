#include "spc/support/topology.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace spc {

namespace {

// Reads a sysfs file containing a single integer; returns `fallback` when
// the file is missing or malformed.
long read_long(const std::string& path, long fallback) {
  std::ifstream f(path);
  long v = 0;
  if (f >> v) {
    return v;
  }
  return fallback;
}

// Parses a kernel cpulist string like "0-3,8,10-11" into cpu ids.
std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) {
      continue;
    }
    const auto dash = tok.find('-');
    if (dash == std::string::npos) {
      out.push_back(std::stoi(tok));
    } else {
      const int lo = std::stoi(tok.substr(0, dash));
      const int hi = std::stoi(tok.substr(dash + 1));
      for (int c = lo; c <= hi; ++c) {
        out.push_back(c);
      }
    }
  }
  return out;
}

// Parses cache sizes of the form "4096K" / "4M".
std::size_t parse_cache_size(const std::string& s) {
  if (s.empty()) {
    return 0;
  }
  std::size_t mult = 1;
  std::string digits = s;
  switch (s.back()) {
    case 'K':
      mult = 1024;
      digits.pop_back();
      break;
    case 'M':
      mult = 1024 * 1024;
      digits.pop_back();
      break;
    case 'G':
      mult = 1024ULL * 1024 * 1024;
      digits.pop_back();
      break;
    default:
      break;
  }
  try {
    return static_cast<std::size_t>(std::stoull(digits)) * mult;
  } catch (...) {
    return 0;
  }
}

std::string read_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  return line;
}

// Enumerates "<dir>/<prefix><N>" entries and returns the sorted N values.
// Empty when the directory is missing or holds no matching entries.
std::vector<int> enumerate_indexed(const std::string& dir,
                                   const std::string& prefix) {
  std::vector<int> ids;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return ids;
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string num = name.substr(prefix.size());
    if (num.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    try {
      ids.push_back(std::stoi(num));
    } catch (...) {
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Parses a node meminfo file ("Node 0 MemTotal:  12345 kB") for the
// MemTotal value in bytes; 0 when missing.
std::size_t parse_node_mem(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    const auto pos = line.find("MemTotal:");
    if (pos == std::string::npos) {
      continue;
    }
    std::istringstream ss(line.substr(pos + 9));
    std::size_t kb = 0;
    if (ss >> kb) {
      return kb * 1024;
    }
  }
  return 0;
}

// First "model name" (x86) or "cpu model"/"Processor" (other arches)
// value in a cpuinfo-format file; empty when absent.
std::string parse_cpu_model(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string key = line.substr(0, colon);
    key.erase(key.find_last_not_of(" \t") + 1);
    if (key != "model name" && key != "cpu model" && key != "Processor") {
      continue;
    }
    std::string value = line.substr(colon + 1);
    const auto first = value.find_first_not_of(" \t");
    return first == std::string::npos ? std::string() : value.substr(first);
  }
  return std::string();
}

}  // namespace

int Topology::node_of_cpu(int cpu_id) const {
  for (const auto& n : nodes) {
    if (std::find(n.cpus.begin(), n.cpus.end(), cpu_id) != n.cpus.end()) {
      return n.node_id;
    }
  }
  return 0;
}

std::size_t Topology::aggregate_llc_bytes(std::size_t threads_used) const {
  if (llc_bytes == 0 || cpus.empty()) {
    return 0;
  }
  // Close-first placement touches ceil(threads / cpus-per-LLC) LLC domains.
  const std::size_t cpus_per_llc =
      std::max<std::size_t>(1, num_cpus() / std::max<std::size_t>(1, llc_instances));
  const std::size_t domains =
      std::min(llc_instances,
               (threads_used + cpus_per_llc - 1) / cpus_per_llc);
  return domains * llc_bytes;
}

std::string placement_name(Placement p) {
  return p == Placement::kCloseFirst ? "close" : "spread";
}

Topology discover_topology() { return discover_topology("/sys"); }

Topology discover_topology(const std::string& sysfs_root) {
  Topology topo;
  // The model string lives in procfs, not sysfs; fixture roots may drop
  // a "cpuinfo" file next to their devices/ tree to fake it.
  topo.cpu_model = parse_cpu_model(
      sysfs_root == "/sys" ? "/proc/cpuinfo" : sysfs_root + "/cpuinfo");
  const std::string base = sysfs_root + "/devices/system/cpu";

  // Enumerate cpu directories; fall back to the sysconf count (flat
  // model) when the sysfs tree is unavailable.
  std::vector<int> cpu_ids = enumerate_indexed(base, "cpu");
  if (cpu_ids.empty()) {
    const long n_online = sysconf(_SC_NPROCESSORS_ONLN);
    const int ncpu = n_online > 0 ? static_cast<int>(n_online) : 1;
    for (int c = 0; c < ncpu; ++c) {
      cpu_ids.push_back(c);
    }
  }

  std::set<std::string> llc_domains;
  for (const int c : cpu_ids) {
    const std::string cdir = base + "/cpu" + std::to_string(c);
    CpuInfo info;
    info.cpu_id = c;
    info.package_id = static_cast<int>(
        read_long(cdir + "/topology/physical_package_id", 0));
    info.core_id =
        static_cast<int>(read_long(cdir + "/topology/core_id", c));

    // Highest-index cache directory is the LLC.
    for (int idx = 4; idx >= 0; --idx) {
      const std::string cache =
          cdir + "/cache/index" + std::to_string(idx);
      const std::string type = read_line(cache + "/type");
      if (type.empty() || type == "Instruction") {
        continue;
      }
      const std::string shared =
          read_line(cache + "/shared_cpu_list");
      info.llc_siblings = parse_cpulist(shared);
      const std::size_t sz = parse_cache_size(read_line(cache + "/size"));
      if (sz > 0) {
        topo.llc_bytes = sz;
      }
      if (!shared.empty()) {
        llc_domains.insert(shared);
      }
      break;
    }
    if (info.llc_siblings.empty()) {
      info.llc_siblings = {c};
    }

    // Level-2 data/unified cache size (feeds the scheduler's chunk-size
    // heuristic). Identified by the `level` file, not the index number —
    // index-to-level mapping varies across CPUs.
    if (topo.l2_bytes == 0) {
      for (int idx = 0; idx <= 4; ++idx) {
        const std::string cache =
            cdir + "/cache/index" + std::to_string(idx);
        if (read_line(cache + "/level") != "2" ||
            read_line(cache + "/type") == "Instruction") {
          continue;
        }
        const std::size_t sz =
            parse_cache_size(read_line(cache + "/size"));
        if (sz > 0) {
          topo.l2_bytes = sz;
          break;
        }
      }
    }

    // Level-1 data/unified cache size (feeds the tiling layer's stripe
    // auto-sizing, spmv/tiling.hpp). Same level-file identification.
    if (topo.l1d_bytes == 0) {
      for (int idx = 0; idx <= 4; ++idx) {
        const std::string cache =
            cdir + "/cache/index" + std::to_string(idx);
        if (read_line(cache + "/level") != "1" ||
            read_line(cache + "/type") == "Instruction") {
          continue;
        }
        const std::size_t sz =
            parse_cache_size(read_line(cache + "/size"));
        if (sz > 0) {
          topo.l1d_bytes = sz;
          break;
        }
      }
    }
    topo.cpus.push_back(info);
  }

  topo.llc_instances = llc_domains.empty() ? topo.cpus.size()
                                           : llc_domains.size();
  if (topo.llc_instances == 0) {
    topo.llc_instances = 1;
  }

  // NUMA nodes. A machine without the node directory (or a fixture that
  // omits it) is one flat node holding every cpu.
  const std::string node_base = sysfs_root + "/devices/system/node";
  for (const int n : enumerate_indexed(node_base, "node")) {
    const std::string ndir = node_base + "/node" + std::to_string(n);
    NumaNode node;
    node.node_id = n;
    node.cpus = parse_cpulist(read_line(ndir + "/cpulist"));
    node.mem_bytes = parse_node_mem(ndir + "/meminfo");
    topo.nodes.push_back(std::move(node));
  }
  if (topo.nodes.empty()) {
    NumaNode node;
    for (const auto& cpu : topo.cpus) {
      node.cpus.push_back(cpu.cpu_id);
    }
    topo.nodes.push_back(std::move(node));
  }
  for (auto& cpu : topo.cpus) {
    cpu.node_id = topo.node_of_cpu(cpu.cpu_id);
  }
  return topo;
}

std::vector<int> plan_placement(const Topology& topo, std::size_t nthreads,
                                Placement policy) {
  std::vector<int> plan;
  if (topo.cpus.empty() || nthreads == 0) {
    for (std::size_t i = 0; i < nthreads; ++i) {
      plan.push_back(static_cast<int>(i));
    }
    return plan;
  }

  std::map<int, const CpuInfo*> by_id;
  for (const auto& cpu : topo.cpus) {
    by_id[cpu.cpu_id] = &cpu;
  }

  // Group logical CPUs by LLC domain, represented by the sorted sibling
  // list. Within a domain, order distinct physical cores before SMT
  // siblings: the k-th cpu of every (package, core) pair is taken before
  // any core's (k+1)-th, so two threads land on two cores, not one
  // hyperthreaded core.
  std::map<std::vector<int>, std::vector<int>> domains;
  for (const auto& cpu : topo.cpus) {
    auto key = cpu.llc_siblings;
    std::sort(key.begin(), key.end());
    domains[key].push_back(cpu.cpu_id);
  }
  struct Group {
    int node = 0;
    std::vector<int> members;  ///< core-first order
  };
  std::vector<Group> groups;
  groups.reserve(domains.size());
  for (auto& [key, members] : domains) {
    std::sort(members.begin(), members.end());
    std::map<std::pair<int, int>, std::vector<int>> cores;
    for (const int c : members) {
      const CpuInfo* info = by_id.count(c) ? by_id.at(c) : nullptr;
      const auto core_key = info != nullptr
                                ? std::make_pair(info->package_id,
                                                 info->core_id)
                                : std::make_pair(0, c);
      cores[core_key].push_back(c);
    }
    Group g;
    for (std::size_t round = 0; g.members.size() < members.size();
         ++round) {
      for (const auto& [core_key, cpus_of_core] : cores) {
        if (round < cpus_of_core.size()) {
          g.members.push_back(cpus_of_core[round]);
        }
      }
    }
    g.node = topo.node_of_cpu(g.members.front());
    groups.push_back(std::move(g));
  }

  // Node-aware group order. Close-first fills one node completely before
  // the next (pages first-touched there stay local to every thread until
  // the node is full); spread alternates nodes before using a second
  // cache domain of the same node, maximizing aggregate bandwidth.
  std::stable_sort(groups.begin(), groups.end(),
                   [](const Group& a, const Group& b) {
                     if (a.node != b.node) {
                       return a.node < b.node;
                     }
                     return a.members < b.members;
                   });
  if (policy == Placement::kSpreadCaches) {
    std::map<int, std::size_t> domain_index;  // per node, seen so far
    std::vector<std::pair<std::size_t, std::size_t>> order;  // (idx-in-node, pos)
    for (std::size_t i = 0; i < groups.size(); ++i) {
      order.emplace_back(domain_index[groups[i].node]++, i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<Group> interleaved;
    interleaved.reserve(groups.size());
    for (const auto& [idx, pos] : order) {
      interleaved.push_back(std::move(groups[pos]));
    }
    groups = std::move(interleaved);
  }

  if (policy == Placement::kCloseFirst) {
    // Fill one cache domain completely before moving to the next.
    for (const auto& g : groups) {
      for (int c : g.members) {
        if (plan.size() == nthreads) {
          return plan;
        }
        plan.push_back(c);
      }
    }
  } else {
    // Round-robin across domains so threads land on distinct caches first.
    for (std::size_t round = 0; plan.size() < nthreads; ++round) {
      bool placed = false;
      for (const auto& g : groups) {
        if (round < g.members.size()) {
          plan.push_back(g.members[round]);
          placed = true;
          if (plan.size() == nthreads) {
            return plan;
          }
        }
      }
      if (!placed) {
        break;  // more threads than CPUs — wrap around below
      }
    }
  }
  // Oversubscription: wrap modulo the CPU count, preserving the policy order.
  const std::size_t have = plan.size();
  if (have == 0) {
    plan.push_back(0);
  }
  while (plan.size() < nthreads) {
    plan.push_back(plan[plan.size() % std::max<std::size_t>(1, have)]);
  }
  return plan;
}

bool pin_thread_to_cpu(int cpu_id) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu_id), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

std::string describe_topology(const Topology& topo) {
  std::ostringstream os;
  std::set<int> packages;
  for (const auto& c : topo.cpus) {
    packages.insert(c.package_id);
  }
  os << topo.num_cpus() << " logical CPU(s), " << packages.size()
     << " package(s), " << topo.num_nodes() << " NUMA node(s), "
     << topo.llc_instances << " LLC domain(s)";
  if (topo.llc_bytes > 0) {
    os << " of " << (topo.llc_bytes / 1024) << " KiB each";
  }
  return os.str();
}

}  // namespace spc
