#include "spc/support/varint.hpp"

namespace spc {

std::uint64_t varint_decode_checked(const std::uint8_t*& p,
                                    const std::uint8_t* end) {
  std::uint64_t v = 0;
  int shift = 0;
  const std::uint8_t* q = p;
  for (;;) {
    if (q == end) {
      throw ParseError("varint: truncated encoding");
    }
    const std::uint8_t byte = *q++;
    if (shift >= 63 && (byte & 0x7E) != 0) {
      throw ParseError("varint: value overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      p = q;
      return v;
    }
    shift += 7;
    if (shift >= 64) {
      throw ParseError("varint: encoding longer than 10 bytes");
    }
  }
}

}  // namespace spc
