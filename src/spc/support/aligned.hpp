// Cache-line-aligned storage for hot kernel arrays.
//
// SpMV is a streaming kernel; aligning the large arrays (values, col_ind,
// ctl, x, y) to cache-line boundaries avoids split lines and makes
// per-thread slices start on predictable boundaries.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "spc/support/types.hpp"

namespace spc {

/// Minimal C++17-style allocator returning `Align`-aligned storage.
template <typename T, std::size_t Align = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment weaker than type requires");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // Round the byte count up to a multiple of Align (required by
    // std::aligned_alloc) and never pass zero.
    std::size_t bytes = n * sizeof(T);
    bytes = (bytes + Align - 1) / Align * Align;
    if (bytes == 0) {
      bytes = Align;
    }
    void* p = std::aligned_alloc(Align, bytes);
    if (p == nullptr) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Vector whose buffer starts on a cache-line boundary.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace spc
