// Streaming statistics accumulators used by matrix analysis and the
// benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace spc {

/// Welford's online mean/variance plus min/max tracking.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact histogram over arbitrary integer keys (delta classes, row lengths).
class Histogram {
 public:
  void add(std::uint64_t key, std::uint64_t weight = 1) {
    bins_[key] += weight;
    total_ += weight;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::uint64_t key) const {
    const auto it = bins_.find(key);
    return it == bins_.end() ? 0 : it->second;
  }
  double fraction(std::uint64_t key) const {
    return total_ ? static_cast<double>(count(key)) /
                        static_cast<double>(total_)
                  : 0.0;
  }
  const std::map<std::uint64_t, std::uint64_t>& bins() const { return bins_; }

 private:
  std::map<std::uint64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Median of a sample (copies; fine for harness-sized vectors).
inline double median(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                     v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + v[mid - 1]);
  }
  return m;
}

}  // namespace spc
