#include "spc/support/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

#include "spc/support/strutil.hpp"

namespace spc {

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return std::nullopt;
  }
  return std::string(v);
}

bool env_warn_once(const char* name, const std::string& value,
                   const char* expected) {
  static std::mutex mu;
  // Leaked on purpose: diagnostics may fire during static destruction
  // (atexit-registered flushes read the environment too).
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  if (!warned->insert(name).second) {
    return false;
  }
  std::fprintf(stderr, "spc: ignoring unparseable %s=%s (want %s)\n", name,
               value.c_str(), expected);
  return true;
}

std::optional<std::uint64_t> env_u64(const char* name) {
  const auto s = env_str(name);
  if (!s) {
    return std::nullopt;
  }
  // strtoull silently wraps negatives; reject them up front.
  const char* p = s->c_str();
  while (*p == ' ' || *p == '\t') {
    ++p;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (*p == '-' || end == p || *end != '\0' || errno == ERANGE) {
    env_warn_once(name, *s, "a non-negative integer");
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

std::optional<double> env_double(const char* name) {
  const auto s = env_str(name);
  if (!s) {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    env_warn_once(name, *s, "a finite number");
    return std::nullopt;
  }
  return v;
}

std::optional<bool> env_flag(const char* name) {
  const auto s = env_str(name);
  if (!s) {
    return std::nullopt;
  }
  const std::string v = to_lower(*s);
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  env_warn_once(name, *s, "0|1|true|false|on|off|yes|no");
  return std::nullopt;
}

const std::vector<EnvVarInfo>& env_registry() {
  // Single source of truth for the SPC_* environment surface. The table
  // in docs/API.md is generated from this list (env_registry_markdown);
  // api_surface_test fails when a source file mentions an SPC_* variable
  // that is missing here, or parses the environment outside this file's
  // helpers.
  static const std::vector<EnvVarInfo> kRegistry = {
      {"SPC_ISA", "enum", "scalar|sse42|avx2",
       "dispatch tier (clamp-down)",
       "Caps the runtime kernel-dispatch tier; scalar pins the "
       "bit-reproducible reference kernels."},
      {"SPC_NUMA", "enum", "auto|off|local|replicate|interleaved",
       "InstanceOptions::numa",
       "NUMA data-placement policy for per-thread matrix slices and x "
       "mirrors."},
      {"SPC_SCHED", "enum", "static|chunked|steal",
       "InstanceOptions::schedule",
       "Work schedule: one-range-per-worker, owned cache-sized chunks, "
       "or work stealing."},
      {"SPC_CHUNK_NNZ", "u64", "non-zeros per chunk (0 = L2-derived)",
       "InstanceOptions::chunk_nnz",
       "Target chunk weight for the dynamic schedules."},
      {"SPC_TILE", "size", "auto|off|<bytes>[k|m]",
       "InstanceOptions::tiling",
       "Column tiling: auto-plan, hard off, or a forced stripe width."},
      {"SPC_SYM_REDUCE", "enum", "auto|window|private",
       "InstanceOptions::sym_reduce",
       "Conflict-reduction strategy for the symmetric formats."},
      {"SPC_TUNE", "flag", "0|1|true|false|on|off|yes|no",
       "format=auto entry points",
       "Enables the per-matrix autotuner on format=auto entry points."},
      {"SPC_TUNE_CACHE", "path", "file path",
       "TuneOptions::cache_path",
       "Relocates the tuning cache (default "
       "results/tune_cache.jsonl)."},
      {"SPC_METRICS", "path", "file path", "—",
       "Enables the JSONL metrics sink and names its output file."},
      {"SPC_TRACE", "path", "file path", "—",
       "Enables the Chrome trace_event tracer and names its output "
       "file."},
      {"SPC_COUNTERS", "flag", "0|1|true|false|on|off|yes|no",
       "—",
       "Disables per-thread perf_event_open counter groups when false "
       "(default: enabled when the platform allows)."},
      {"SPC_GIT_SHA", "string", "hex revision", "configure-time stamp",
       "Overrides the build-time git revision recorded into ledger "
       "records."},
      {"SPC_ITERS", "u64", "iterations", "bench harness",
       "Timed iterations per bench cell."},
      {"SPC_WARMUP", "u64", "iterations", "bench harness",
       "Untimed warmup iterations per bench cell."},
      {"SPC_THREADS", "list", "comma-separated thread counts",
       "bench harness", "Thread counts a bench sweeps."},
      {"SPC_SCALE", "enum", "tiny|small|full", "bench harness",
       "Scales the synthetic bench corpus."},
      {"SPC_PIN", "u64", "0|1", "bench harness",
       "Disables worker pinning in the bench harness when 0."},
      {"SPC_MAX_MATRICES", "u64", "count", "bench harness",
       "Caps how many corpus matrices a bench visits."},
      {"SPC_WS_REJECT_KB", "u64", "KiB", "bench harness",
       "Working-set floor below which bench cells are skipped."},
      {"SPC_WS_LARGE_KB", "u64", "KiB", "bench harness",
       "Working-set threshold the harness labels cells 'large' at."},
      {"SPC_PAD_NS_PER_ITER", "u64", "nanoseconds", "bench harness",
       "Injects a busy-wait per timed iteration (regress_check "
       "canary)."},
      {"SPC_ROOFLINE_GBPS", "double", "GB/s", "bench harness",
       "Machine bandwidth for roofline attribution (regress_check "
       "--calibrate prints it)."},
  };
  return kRegistry;
}

std::string env_registry_markdown() {
  // Cell text may contain '|' (enum alternatives); escape it so the
  // GitHub-flavored-markdown table keeps its column structure.
  const auto cell = [](const char* s) {
    std::string esc;
    for (const char* p = s; *p != '\0'; ++p) {
      if (*p == '|') {
        esc += '\\';
      }
      esc += *p;
    }
    return esc;
  };
  std::string out;
  out += "| Variable | Type | Accepted values | Overrides | Effect |\n";
  out += "| --- | --- | --- | --- | --- |\n";
  for (const EnvVarInfo& v : env_registry()) {
    out += "| `";
    out += v.name;
    out += "` | ";
    out += cell(v.type);
    out += " | ";
    out += cell(v.values);
    out += " | ";
    out += cell(v.overrides);
    out += " | ";
    out += cell(v.effect);
    out += " |\n";
  }
  return out;
}

}  // namespace spc
