#include "spc/support/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

#include "spc/support/strutil.hpp"

namespace spc {

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return std::nullopt;
  }
  return std::string(v);
}

bool env_warn_once(const char* name, const std::string& value,
                   const char* expected) {
  static std::mutex mu;
  // Leaked on purpose: diagnostics may fire during static destruction
  // (atexit-registered flushes read the environment too).
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  if (!warned->insert(name).second) {
    return false;
  }
  std::fprintf(stderr, "spc: ignoring unparseable %s=%s (want %s)\n", name,
               value.c_str(), expected);
  return true;
}

std::optional<std::uint64_t> env_u64(const char* name) {
  const auto s = env_str(name);
  if (!s) {
    return std::nullopt;
  }
  // strtoull silently wraps negatives; reject them up front.
  const char* p = s->c_str();
  while (*p == ' ' || *p == '\t') {
    ++p;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (*p == '-' || end == p || *end != '\0' || errno == ERANGE) {
    env_warn_once(name, *s, "a non-negative integer");
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

std::optional<double> env_double(const char* name) {
  const auto s = env_str(name);
  if (!s) {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    env_warn_once(name, *s, "a finite number");
    return std::nullopt;
  }
  return v;
}

std::optional<bool> env_flag(const char* name) {
  const auto s = env_str(name);
  if (!s) {
    return std::nullopt;
  }
  const std::string v = to_lower(*s);
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  env_warn_once(name, *s, "0|1|true|false|on|off|yes|no");
  return std::nullopt;
}

}  // namespace spc
