// Small string/formatting helpers shared by reports and the CLI tools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spc {

/// "16.4 MB", "512 B", ... (decimal prefixes, one fractional digit).
std::string human_bytes(std::uint64_t bytes);

/// Fixed-point double with `digits` fractional digits.
std::string fmt_fixed(double v, int digits = 2);

/// Splits on any amount of whitespace; no empty tokens.
std::vector<std::string> split_ws(const std::string& s);

/// Lower-cases ASCII.
std::string to_lower(std::string s);

}  // namespace spc
