// Deterministic pseudo-random number generation.
//
// The experiment harness must be reproducible across runs and machines, so
// the library carries its own generator rather than relying on
// implementation-defined std distributions: xoshiro256** seeded via
// SplitMix64, with explicit, portable distribution helpers.
#pragma once

#include <array>
#include <cstdint>

namespace spc {

/// SplitMix64 — used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, deterministic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

  /// Re-initializes the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // 128-bit multiply-shift; rejection keeps the distribution exact.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// True with probability p.
  bool next_bernoulli(double p) { return next_double() < p; }

  // UniformRandomBitGenerator interface, so std::shuffle etc. work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace spc
