#include "spc/support/first_touch.hpp"

#include <unistd.h>

#ifdef __linux__
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "spc/support/env.hpp"
#include "spc/support/error.hpp"
#include "spc/support/strutil.hpp"

namespace spc {

namespace {

std::size_t page_size() {
  const long ps = sysconf(_SC_PAGESIZE);
  return ps > 0 ? static_cast<std::size_t>(ps) : 4096;
}

std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

std::string numa_policy_name(NumaPolicy p) {
  switch (p) {
    case NumaPolicy::kAuto:
      return "auto";
    case NumaPolicy::kOff:
      return "off";
    case NumaPolicy::kLocal:
      return "local";
    case NumaPolicy::kReplicate:
      return "replicate";
    case NumaPolicy::kInterleave:
      return "interleaved";
  }
  return "?";
}

bool parse_numa_policy(const std::string& name, NumaPolicy* out) {
  const std::string n = to_lower(name);
  if (n == "auto") {
    *out = NumaPolicy::kAuto;
  } else if (n == "off" || n == "0" || n == "none") {
    *out = NumaPolicy::kOff;
  } else if (n == "local" || n == "firsttouch" || n == "first-touch") {
    *out = NumaPolicy::kLocal;
  } else if (n == "replicate" || n == "replicate-per-node") {
    *out = NumaPolicy::kReplicate;
  } else if (n == "interleaved" || n == "interleave") {
    *out = NumaPolicy::kInterleave;
  } else {
    return false;
  }
  return true;
}

NumaPolicy numa_policy_from_env(NumaPolicy fallback) {
  const auto env = env_str("SPC_NUMA");
  if (!env) {
    return fallback;
  }
  NumaPolicy p = fallback;
  if (!parse_numa_policy(*env, &p)) {
    env_warn_once("SPC_NUMA", *env,
                  "auto|off|local|replicate|interleaved");
  }
  return p;
}

NumaPolicy resolve_numa_policy(NumaPolicy requested, std::size_t nnodes) {
  if (requested == NumaPolicy::kAuto) {
    return nnodes > 1 ? NumaPolicy::kLocal : NumaPolicy::kOff;
  }
  return requested;
}

FirstTouchArena::FirstTouchArena(std::size_t nblocks) : blocks_(nblocks) {}

FirstTouchArena::~FirstTouchArena() {
  for (Block& b : blocks_) {
    if (b.base == nullptr) {
      continue;
    }
#ifdef __linux__
    if (b.from_mmap) {
      ::munmap(b.base, b.mapped);
      continue;
    }
#endif
    std::free(b.base);
  }
}

FirstTouchArena::Handle FirstTouchArena::reserve_bytes(std::size_t block,
                                                       std::size_t bytes) {
  SPC_CHECK_MSG(!allocated_, "FirstTouchArena: reserve after allocate");
  SPC_CHECK_MSG(block < blocks_.size(), "FirstTouchArena: bad block");
  Block& b = blocks_[block];
  b.reserved = round_up(b.reserved, kCacheLineBytes);
  Handle h{block, b.reserved};
  b.reserved += bytes;
  return h;
}

void FirstTouchArena::allocate() {
  if (allocated_) {
    return;
  }
  const std::size_t ps = page_size();
  for (Block& b : blocks_) {
    if (b.reserved == 0) {
      continue;
    }
    b.mapped = round_up(b.reserved, ps);
#ifdef __linux__
    void* p = ::mmap(nullptr, b.mapped, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      b.base = p;
      b.from_mmap = true;
      continue;
    }
#endif
    // Fallback: heap memory loses the untouched-pages guarantee for
    // recycled chunks but keeps the arena functional.
    b.base = std::aligned_alloc(ps, b.mapped);
    b.from_mmap = false;
    SPC_CHECK_MSG(b.base != nullptr, "FirstTouchArena: allocation failed");
  }
  allocated_ = true;
}

void FirstTouchArena::first_touch(std::size_t block) {
  SPC_CHECK_MSG(allocated_, "FirstTouchArena: touch before allocate");
  SPC_CHECK_MSG(block < blocks_.size(), "FirstTouchArena: bad block");
  Block& b = blocks_[block];
  if (b.base != nullptr) {
    std::memset(b.base, 0, b.mapped);
  }
}

void FirstTouchArena::first_touch_interleaved(std::size_t block,
                                              std::size_t part,
                                              std::size_t nparts) {
  SPC_CHECK_MSG(allocated_, "FirstTouchArena: touch before allocate");
  SPC_CHECK_MSG(block < blocks_.size(), "FirstTouchArena: bad block");
  SPC_CHECK_MSG(nparts >= 1 && part < nparts,
                "FirstTouchArena: bad interleave part");
  Block& b = blocks_[block];
  if (b.base == nullptr) {
    return;
  }
  const std::size_t ps = page_size();
  auto* bytes = static_cast<std::uint8_t*>(b.base);
  for (std::size_t off = part * ps; off < b.mapped; off += nparts * ps) {
    std::memset(bytes + off, 0, std::min(ps, b.mapped - off));
  }
}

std::size_t FirstTouchArena::block_bytes(std::size_t block) const {
  SPC_CHECK_MSG(block < blocks_.size(), "FirstTouchArena: bad block");
  return blocks_[block].mapped;
}

const void* FirstTouchArena::block_base(std::size_t block) const {
  SPC_CHECK_MSG(block < blocks_.size(), "FirstTouchArena: bad block");
  return blocks_[block].base;
}

std::size_t FirstTouchArena::total_bytes() const {
  std::size_t sum = 0;
  for (const Block& b : blocks_) {
    sum += b.mapped;
  }
  return sum;
}

void* FirstTouchArena::base(std::size_t block) const {
  SPC_CHECK_MSG(allocated_, "FirstTouchArena: data before allocate");
  SPC_CHECK_MSG(block < blocks_.size() && blocks_[block].base != nullptr,
                "FirstTouchArena: bad block");
  return blocks_[block].base;
}

bool query_page_nodes(const void* p, std::size_t bytes,
                      std::size_t max_pages, std::vector<int>* nodes,
                      std::string* reason) {
  nodes->clear();
  if (p == nullptr || bytes == 0 || max_pages == 0) {
    if (reason != nullptr) {
      *reason = "empty range";
    }
    return false;
  }
#ifndef __linux__
  if (reason != nullptr) {
    *reason = "move_pages is Linux-only";
  }
  return false;
#else
  const std::size_t ps = page_size();
  const std::uintptr_t first =
      reinterpret_cast<std::uintptr_t>(p) / ps * ps;
  const std::size_t npages =
      (reinterpret_cast<std::uintptr_t>(p) + bytes - first + ps - 1) / ps;
  const std::size_t sampled = std::min(npages, max_pages);
  const std::size_t stride = npages / sampled;

  std::vector<void*> pages(sampled);
  std::vector<int> status(sampled, -1);
  for (std::size_t i = 0; i < sampled; ++i) {
    pages[i] = reinterpret_cast<void*>(first + i * stride * ps);
  }
  // move_pages with a null target-nodes array queries the current node of
  // each page without moving anything.
  const long rc = ::syscall(SYS_move_pages, 0, sampled, pages.data(),
                            nullptr, status.data(), 0);
  if (rc < 0) {
    if (reason != nullptr) {
      *reason = std::string("move_pages: ") + std::strerror(errno);
    }
    return false;
  }
  nodes->reserve(sampled);
  for (const int s : status) {
    // Negative status = page not present / not queryable; skip it.
    if (s >= 0) {
      nodes->push_back(s);
    }
  }
  if (nodes->empty()) {
    if (reason != nullptr) {
      *reason = "no resident pages in range";
    }
    return false;
  }
  return true;
#endif
}

}  // namespace spc
