#include "spc/support/status.hpp"

namespace spc {

const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) {
    return "ok";
  }
  std::string s = status_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace spc
