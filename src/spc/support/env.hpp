// Shared SPC_* environment-variable access.
//
// Every runtime knob (SPC_SCHED, SPC_TILE, SPC_NUMA, SPC_ISA, SPC_TUNE,
// the harness SPC_ITERS family, ...) reads the environment through these
// helpers instead of hand-rolled getenv + strto* + static-bool-warned
// blocks. Unset and empty both mean "not configured"; an unparseable
// value is diagnosed on stderr once per variable name for the whole
// process (not once per call site) and then treated as unset, so a typo
// in a job script produces exactly one line of noise, never silence and
// never a flood.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace spc {

/// Raw lookup: nullopt when the variable is unset or empty.
std::optional<std::string> env_str(const char* name);

/// Base-10 unsigned integer. Unparseable (including negative or
/// overflowing) values warn once and read as unset.
std::optional<std::uint64_t> env_u64(const char* name);

/// Finite double. Unparseable values warn once and read as unset.
std::optional<double> env_double(const char* name);

/// Boolean flag: 1|true|on|yes → true, 0|false|off|no → false
/// (case-insensitive). Anything else warns once and reads as unset.
std::optional<bool> env_flag(const char* name);

/// One-shot diagnostic: the first call per `name` prints
///   spc: ignoring unparseable NAME=value (want EXPECTED)
/// to stderr; later calls for the same name are silent. Callers with
/// domain checks beyond syntax (e.g. "must be positive") reuse this so
/// their diagnostics share the once-per-key ledger. Returns whether
/// this call printed.
bool env_warn_once(const char* name, const std::string& value,
                   const char* expected);

/// One registered SPC_* environment override. The registry in env.cpp is
/// the single source of truth for the library's environment surface:
/// docs/API.md's table is generated from it (env_registry_markdown), and
/// the api-surface test fails when a source file references an SPC_*
/// variable the registry does not list — so option fields and env names
/// cannot drift apart silently.
struct EnvVarInfo {
  const char* name;       ///< "SPC_SCHED"
  const char* type;       ///< "flag" | "u64" | "double" | "string" | "enum" | "size" | "path" | "list"
  const char* values;     ///< accepted syntax, human-readable
  const char* overrides;  ///< the option/field it overrides ("—" if none)
  const char* effect;     ///< one-line description
};

/// Every SPC_* environment variable the library reads, in presentation
/// order. Append-only within a release; new knobs MUST register here.
const std::vector<EnvVarInfo>& env_registry();

/// The registry rendered as a GitHub-flavored markdown table — the exact
/// text embedded between the generated-table markers in docs/API.md.
std::string env_registry_markdown();

}  // namespace spc
