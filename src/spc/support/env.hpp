// Shared SPC_* environment-variable access.
//
// Every runtime knob (SPC_SCHED, SPC_TILE, SPC_NUMA, SPC_ISA, SPC_TUNE,
// the harness SPC_ITERS family, ...) reads the environment through these
// helpers instead of hand-rolled getenv + strto* + static-bool-warned
// blocks. Unset and empty both mean "not configured"; an unparseable
// value is diagnosed on stderr once per variable name for the whole
// process (not once per call site) and then treated as unset, so a typo
// in a job script produces exactly one line of noise, never silence and
// never a flood.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace spc {

/// Raw lookup: nullopt when the variable is unset or empty.
std::optional<std::string> env_str(const char* name);

/// Base-10 unsigned integer. Unparseable (including negative or
/// overflowing) values warn once and read as unset.
std::optional<std::uint64_t> env_u64(const char* name);

/// Finite double. Unparseable values warn once and read as unset.
std::optional<double> env_double(const char* name);

/// Boolean flag: 1|true|on|yes → true, 0|false|off|no → false
/// (case-insensitive). Anything else warns once and reads as unset.
std::optional<bool> env_flag(const char* name);

/// One-shot diagnostic: the first call per `name` prints
///   spc: ignoring unparseable NAME=value (want EXPECTED)
/// to stderr; later calls for the same name are silent. Callers with
/// domain checks beyond syntax (e.g. "must be positive") reuse this so
/// their diagnostics share the once-per-key ledger. Returns whether
/// this call printed.
bool env_warn_once(const char* name, const std::string& value,
                   const char* expected);

}  // namespace spc
