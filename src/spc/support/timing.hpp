// Wall-clock timing utilities for the experiment harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace spc {

/// Monotonic nanosecond timestamp.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple start/elapsed stopwatch.
///
/// restart()/elapsed_ns() pairs are monotonic-safe: elapsed_ns()
/// saturates at zero instead of wrapping to ~2^64 ns if the sampled
/// clock ever reads below the recorded start (e.g. a Timer captured on
/// one CPU and read on another under a broken TSC, or a test-injected
/// future start via started_at()).
class Timer {
 public:
  Timer() : start_(now_ns()) {}

  /// Test seam: a timer whose epoch is an arbitrary (possibly future)
  /// timestamp, for exercising the underflow clamp.
  static Timer started_at(std::uint64_t start_ns) {
    Timer t;
    t.start_ = start_ns;
    return t;
  }

  void restart() { start_ = now_ns(); }

  std::uint64_t elapsed_ns() const {
    const std::uint64_t now = now_ns();
    return now >= start_ ? now - start_ : 0;
  }
  double elapsed_s() const { return static_cast<double>(elapsed_ns()) * 1e-9; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) * 1e-6; }

 private:
  std::uint64_t start_;
};

/// RAII timer: on destruction, records the elapsed nanoseconds into any
/// sink with a `record(std::uint64_t)` member — designed to pair with
/// obs::LatencyHisto from the metrics registry (kept as a template so
/// this support header does not depend on the obs layer).
///
///   auto& h = obs::Registry::global().histogram("spc.bench.build_ns");
///   { ScopedTimer timed(h); build(); }   // feeds h on scope exit
template <class Sink>
class ScopedTimer {
 public:
  explicit ScopedTimer(Sink& sink) : sink_(&sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_->record(timer_.elapsed_ns()); }

  const Timer& timer() const { return timer_; }

 private:
  Sink* sink_;
  Timer timer_;
};

}  // namespace spc
