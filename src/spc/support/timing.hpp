// Wall-clock timing utilities for the experiment harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace spc {

/// Monotonic nanosecond timestamp.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple start/elapsed stopwatch.
class Timer {
 public:
  Timer() : start_(now_ns()) {}

  void restart() { start_ = now_ns(); }

  std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_s() const { return static_cast<double>(elapsed_ns()) * 1e-9; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) * 1e-6; }

 private:
  std::uint64_t start_;
};

}  // namespace spc
