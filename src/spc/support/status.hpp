// spc::Status — a value-typed outcome for fallible public APIs.
//
// The library's construction paths throw (spc::Error and friends, see
// error.hpp); the serving surface must not: a request that misses its
// deadline or bounces off a full admission queue is a normal outcome of
// a loaded system, not an exceptional one. Status carries a coarse code
// plus a human-readable diagnostic, and is cheap to copy/move. ok() is
// the one test callers need; everything else is for reporting.
#pragma once

#include <string>
#include <utility>

namespace spc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< caller passed something malformed
  kNotFound,            ///< no matrix registered under that id
  kAlreadyExists,       ///< id already registered
  kResourceExhausted,   ///< bounded queue full (reject/timeout policies)
  kFailedPrecondition,  ///< operation illegal in the current state
  kDeadlineExceeded,    ///< request deadline passed before completion
  kCancelled,           ///< request cancelled by the client
  kUnavailable,         ///< engine draining or shut down
  kInternal,            ///< invariant violation surfaced as a status
};

/// Stable lower-snake name ("ok", "invalid_argument", ...).
const char* status_code_name(StatusCode c);

class Status {
 public:
  /// Default is OK — `return {};` from a Status function means success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string to_string() const;

  static Status Ok() { return {}; }
  static Status Invalid(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status AlreadyExists(std::string msg) {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status Exhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status FailedPrecondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status DeadlineExceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }
  static Status Cancelled(std::string msg) {
    return {StatusCode::kCancelled, std::move(msg)};
  }
  static Status Unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status Internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace spc
