#include "spc/support/strutil.hpp"

#include <cctype>
#include <sstream>

namespace spc {

std::string human_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1000.0 && u < 4) {
    v /= 1000.0;
    ++u;
  }
  std::ostringstream os;
  if (u == 0) {
    os << bytes << " B";
  } else {
    os << fmt_fixed(v, 1) << " " << units[u];
  }
  return os.str();
}

std::string fmt_fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) {
    out.push_back(tok);
  }
  return out;
}

std::string to_lower(std::string s) {
  for (auto& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace spc
