// Variable-length integer codec (LEB128) used by the CSR-DU `ctl` stream.
//
// The paper (§IV) stores the per-unit column jump `ujmp` as "a variable
// length integer". We use unsigned LEB128: 7 payload bits per byte, high bit
// set on all but the final byte. Values below 128 — the common case for
// column jumps — cost a single byte.
#pragma once

#include <cstdint>
#include <vector>

#include "spc/support/error.hpp"

namespace spc {

/// Maximum encoded size of a 64-bit LEB128 value.
inline constexpr int kVarintMaxBytes = 10;

/// Appends the LEB128 encoding of `v` to `out`. Returns bytes written.
inline int varint_encode(std::uint64_t v, std::vector<std::uint8_t>& out) {
  int n = 0;
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
    ++n;
  }
  out.push_back(static_cast<std::uint8_t>(v));
  return n + 1;
}

/// Decodes a LEB128 value starting at `p`, advancing `p` past it.
/// The caller guarantees the buffer holds a complete encoding (the CSR-DU
/// decoder owns its ctl stream, so this is a structural invariant there).
inline std::uint64_t varint_decode(const std::uint8_t*& p) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
    SPC_DCHECK(shift < 64);
  }
}

/// Bounds-checked decode for untrusted buffers; throws ParseError when the
/// encoding runs past `end` or overflows 64 bits.
std::uint64_t varint_decode_checked(const std::uint8_t*& p,
                                    const std::uint8_t* end);

/// Number of bytes the LEB128 encoding of `v` occupies.
inline int varint_size(std::uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// ZigZag transform for signed deltas (used by matrix statistics, where row
/// reordering can produce negative column jumps).
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace spc
