#include "spc/mm/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>
#include <vector>

namespace spc {

DeltaClass delta_class_for(std::uint64_t delta) {
  if (delta <= 0xFFULL) {
    return DeltaClass::kU8;
  }
  if (delta <= 0xFFFFULL) {
    return DeltaClass::kU16;
  }
  if (delta <= 0xFFFFFFFFULL) {
    return DeltaClass::kU32;
  }
  return DeltaClass::kU64;
}

usize_t MatrixStats::working_set_bytes(std::uint32_t idx_bytes,
                                       std::uint32_t val_bytes) const {
  return csr_bytes(idx_bytes, val_bytes) +
         (static_cast<usize_t>(nrows) + ncols) * val_bytes;
}

usize_t MatrixStats::csr_bytes(std::uint32_t idx_bytes,
                               std::uint32_t val_bytes) const {
  return nnz * (idx_bytes + val_bytes) +
         (static_cast<usize_t>(nrows) + 1) * idx_bytes;
}

double MatrixStats::u8_delta_fraction() const {
  std::uint64_t total = 0;
  for (const auto c : delta_class_count) {
    total += c;
  }
  return total ? static_cast<double>(delta_class_count[0]) /
                     static_cast<double>(total)
               : 0.0;
}

double MatrixStats::delta1_fraction() const {
  return nnz ? static_cast<double>(delta1_count) / static_cast<double>(nnz)
             : 0.0;
}

MatrixStats compute_stats(const Triplets& t) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "compute_stats requires sorted/combined triplets");
  MatrixStats s;
  s.nrows = t.nrows();
  s.ncols = t.ncols();
  s.nnz = t.nnz();

  // Row lengths.
  std::vector<index_t> row_len(t.nrows(), 0);
  for (const Entry& e : t.entries()) {
    ++row_len[e.row];
  }
  OnlineStats len_stats;
  s.row_len_min = t.nrows() > 0 ? row_len[0] : 0;
  for (const index_t len : row_len) {
    len_stats.add(static_cast<double>(len));
    if (len == 0) {
      ++s.empty_rows;
    }
  }
  if (t.nrows() > 0) {
    s.row_len_mean = len_stats.mean();
    s.row_len_stddev = len_stats.stddev();
    s.row_len_min = static_cast<index_t>(len_stats.min());
    s.row_len_max = static_cast<index_t>(len_stats.max());
  }

  // Column deltas & bandwidth. The first non-zero of each row contributes
  // its absolute column index (the CSR-DU new-row jump starts from col 0).
  index_t prev_row = ~index_t{0};
  index_t prev_col = 0;
  for (const Entry& e : t.entries()) {
    const std::uint64_t delta =
        (e.row == prev_row) ? static_cast<std::uint64_t>(e.col - prev_col)
                            : static_cast<std::uint64_t>(e.col);
    ++s.delta_class_count[static_cast<std::uint8_t>(delta_class_for(delta))];
    if (e.row == prev_row && delta == 1) {
      ++s.delta1_count;
    }
    const std::uint64_t dist =
        e.col >= e.row ? static_cast<std::uint64_t>(e.col - e.row)
                       : static_cast<std::uint64_t>(e.row - e.col);
    s.bandwidth = std::max<usize_t>(s.bandwidth, dist);
    prev_row = e.row;
    prev_col = e.col;
  }

  // Unique-value census (bit-exact comparison, matching CSR-VI's hash map).
  std::unordered_set<std::uint64_t> uniq;
  uniq.reserve(t.nnz());
  for (const Entry& e : t.entries()) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(e.val));
    std::memcpy(&bits, &e.val, sizeof(bits));
    uniq.insert(bits);
  }
  s.unique_values = uniq.size();
  s.ttu = s.unique_values
              ? static_cast<double>(s.nnz) / static_cast<double>(s.unique_values)
              : 0.0;
  return s;
}

void tiled_delta_class_counts(const Triplets& t, index_t stripe_cols,
                              std::uint64_t counts[4]) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "tiled_delta_class_counts requires sorted/combined triplets");
  for (int i = 0; i < 4; ++i) {
    counts[i] = 0;
  }
  index_t prev_row = ~index_t{0};
  index_t prev_stripe = 0;
  index_t prev_col = 0;
  for (const Entry& e : t.entries()) {
    const index_t stripe = stripe_cols != 0 ? e.col / stripe_cols : 0;
    const std::uint64_t delta =
        (e.row == prev_row && stripe == prev_stripe)
            ? static_cast<std::uint64_t>(e.col - prev_col)
            : static_cast<std::uint64_t>(e.col - stripe * stripe_cols);
    ++counts[static_cast<std::uint8_t>(delta_class_for(delta))];
    prev_row = e.row;
    prev_stripe = stripe;
    prev_col = e.col;
  }
}

}  // namespace spc
