#include "spc/mm/ops.hpp"

#include <algorithm>
#include <cmath>

namespace spc {

Triplets transpose(const Triplets& t) {
  Triplets out(t.ncols(), t.nrows());
  out.reserve(t.nnz());
  for (const Entry& e : t.entries()) {
    out.add(e.col, e.row, e.val);
  }
  out.sort_and_combine();
  return out;
}

Triplets scale(const Triplets& t, value_t alpha) {
  Triplets out(t.nrows(), t.ncols());
  out.reserve(t.nnz());
  for (const Entry& e : t.entries()) {
    out.add(e.row, e.col, alpha * e.val);
  }
  out.sort_and_combine();
  return out;
}

Triplets add(const Triplets& a, const Triplets& b) {
  SPC_CHECK_MSG(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                "matrix addition requires equal dimensions");
  Triplets out(a.nrows(), a.ncols());
  out.reserve(a.nnz() + b.nnz());
  for (const Entry& e : a.entries()) {
    out.add(e.row, e.col, e.val);
  }
  for (const Entry& e : b.entries()) {
    out.add(e.row, e.col, e.val);
  }
  out.sort_and_combine();
  return out;
}

Triplets symmetrize(const Triplets& t) {
  SPC_CHECK_MSG(t.nrows() == t.ncols(),
                "symmetrization requires a square matrix");
  return add(scale(t, 0.5), scale(transpose(t), 0.5));
}

Triplets extract_triangle(const Triplets& t, Triangle which,
                          bool include_diagonal) {
  Triplets out(t.nrows(), t.ncols());
  for (const Entry& e : t.entries()) {
    const bool keep =
        which == Triangle::kLower
            ? (e.col < e.row || (include_diagonal && e.col == e.row))
            : (e.col > e.row || (include_diagonal && e.col == e.row));
    if (keep) {
      out.add(e.row, e.col, e.val);
    }
  }
  // Input was sorted row-major; filtering preserves the order.
  return out;
}

bool equal(const Triplets& a, const Triplets& b) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols() ||
      a.nnz() != b.nnz()) {
    return false;
  }
  for (usize_t i = 0; i < a.nnz(); ++i) {
    if (!(a.entries()[i] == b.entries()[i])) {
      return false;
    }
  }
  return true;
}

double frobenius_norm(const Triplets& t) {
  double s = 0.0;
  for (const Entry& e : t.entries()) {
    s += e.val * e.val;
  }
  return std::sqrt(s);
}

double max_entry_diff(const Triplets& a, const Triplets& b) {
  // Merge walk over both sorted entry lists.
  double m = 0.0;
  usize_t i = 0, j = 0;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  const auto key = [](const Entry& e) {
    return (static_cast<std::uint64_t>(e.row) << 32) | e.col;
  };
  while (i < ea.size() || j < eb.size()) {
    if (j == eb.size() || (i < ea.size() && key(ea[i]) < key(eb[j]))) {
      m = std::max(m, std::fabs(ea[i].val));
      ++i;
    } else if (i == ea.size() || key(eb[j]) < key(ea[i])) {
      m = std::max(m, std::fabs(eb[j].val));
      ++j;
    } else {
      m = std::max(m, std::fabs(ea[i].val - eb[j].val));
      ++i;
      ++j;
    }
  }
  return m;
}

Triplets from_dense(const value_t* data, index_t nrows, index_t ncols) {
  Triplets t(nrows, ncols);
  for (index_t r = 0; r < nrows; ++r) {
    for (index_t c = 0; c < ncols; ++c) {
      const value_t v = data[static_cast<usize_t>(r) * ncols + c];
      if (v != 0.0) {
        t.add(r, c, v);
      }
    }
  }
  // Row-major scan order is already sorted/unique.
  return t;
}

Vector to_dense(const Triplets& t) {
  Vector out(static_cast<usize_t>(t.nrows()) * t.ncols(), 0.0);
  for (const Entry& e : t.entries()) {
    out[static_cast<usize_t>(e.row) * t.ncols() + e.col] = e.val;
  }
  return out;
}

}  // namespace spc
