#include "spc/mm/triplets.hpp"

#include <algorithm>
#include <sstream>

namespace spc {

void Triplets::sort_and_combine() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Fold duplicates in place by summation.
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].val += entries_[i].val;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

void Triplets::sort_and_dedup_keep_first() {
  // Stable sort so "first added" is well-defined among duplicates.
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      continue;  // drop later duplicates
    }
    entries_[out++] = entries_[i];
  }
  entries_.resize(out);
}

bool Triplets::is_sorted_unique() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& a = entries_[i - 1];
    const Entry& b = entries_[i];
    if (a.row > b.row || (a.row == b.row && a.col >= b.col)) {
      return false;
    }
  }
  return true;
}

void Triplets::validate() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.row >= nrows_ || e.col >= ncols_) {
      std::ostringstream os;
      os << "triplet " << i << " (" << e.row << "," << e.col
         << ") outside " << nrows_ << "x" << ncols_ << " matrix";
      throw InvalidArgument(os.str());
    }
  }
}

}  // namespace spc
