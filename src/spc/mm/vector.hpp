// Dense vector type used as SpMV input/output, plus construction helpers.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "spc/support/aligned.hpp"
#include "spc/support/rng.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Dense vector; cache-line aligned because it is streamed by hot kernels.
using Vector = aligned_vector<value_t>;

/// Vector of n uniform random values in [lo, hi) — the paper times SpMV
/// "with randomly created x" vectors (§VI-A).
inline Vector random_vector(index_t n, Rng& rng, value_t lo = 0.0,
                            value_t hi = 1.0) {
  Vector v(n);
  for (auto& x : v) {
    x = rng.next_double(lo, hi);
  }
  return v;
}

/// All-`fill` vector.
inline Vector const_vector(index_t n, value_t fill = 0.0) {
  return Vector(n, fill);
}

/// Max-norm distance between two vectors (for kernel verification).
inline double max_abs_diff(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

/// Relative max-norm error of `got` against reference `ref`.
inline double rel_error(const Vector& ref, const Vector& got) {
  if (ref.size() != got.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double scale = 1.0;
  for (const auto& x : ref) {
    scale = std::max(scale, std::fabs(x));
  }
  return max_abs_diff(ref, got) / scale;
}

}  // namespace spc
