#include "spc/mm/reorder.hpp"

#include <algorithm>
#include <queue>

namespace spc {

Permutation::Permutation(std::vector<index_t> perm)
    : perm_(std::move(perm)) {
  inv_.assign(perm_.size(), static_cast<index_t>(perm_.size()));
  for (index_t n = 0; n < perm_.size(); ++n) {
    const index_t old = perm_[n];
    if (old >= perm_.size() || inv_[old] != perm_.size()) {
      throw InvalidArgument("permutation is not a bijection on [0, n)");
    }
    inv_[old] = n;
  }
}

Permutation Permutation::identity(index_t n) {
  std::vector<index_t> p(n);
  for (index_t i = 0; i < n; ++i) {
    p[i] = i;
  }
  return Permutation(std::move(p));
}

Permutation Permutation::inverted() const {
  return Permutation(inv_);
}

Triplets permute_symmetric(const Triplets& t, const Permutation& p) {
  SPC_CHECK_MSG(t.nrows() == t.ncols(),
                "symmetric permutation needs a square matrix");
  SPC_CHECK_MSG(p.size() == t.nrows(),
                "permutation size does not match the matrix");
  Triplets out(t.nrows(), t.ncols());
  out.reserve(t.nnz());
  for (const Entry& e : t.entries()) {
    out.add(p.new_of(e.row), p.new_of(e.col), e.val);
  }
  out.sort_and_combine();
  return out;
}

Vector permute_vector(const Vector& in, const Permutation& p) {
  SPC_CHECK_MSG(in.size() == p.size(), "vector/permutation size mismatch");
  Vector out(in.size());
  for (index_t n = 0; n < p.size(); ++n) {
    out[n] = in[p.old_of(n)];
  }
  return out;
}

Vector unpermute_vector(const Vector& in, const Permutation& p) {
  SPC_CHECK_MSG(in.size() == p.size(), "vector/permutation size mismatch");
  Vector out(in.size());
  for (index_t n = 0; n < p.size(); ++n) {
    out[p.old_of(n)] = in[n];
  }
  return out;
}

namespace {

// Symmetrized adjacency (CSR-ish) of the pattern, self-loops dropped.
struct Graph {
  std::vector<index_t> ptr;
  std::vector<index_t> adj;

  index_t degree(index_t v) const { return ptr[v + 1] - ptr[v]; }
};

Graph build_graph(const Triplets& t) {
  const index_t n = t.nrows();
  std::vector<index_t> deg(n, 0);
  for (const Entry& e : t.entries()) {
    if (e.row != e.col) {
      ++deg[e.row];
      ++deg[e.col];
    }
  }
  Graph g;
  g.ptr.assign(n + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    g.ptr[v + 1] = g.ptr[v] + deg[v];
  }
  g.adj.resize(g.ptr[n]);
  std::vector<index_t> cursor(g.ptr.begin(), g.ptr.end() - 1);
  for (const Entry& e : t.entries()) {
    if (e.row != e.col) {
      g.adj[cursor[e.row]++] = e.col;
      g.adj[cursor[e.col]++] = e.row;
    }
  }
  // Sort and dedup each vertex's neighbour list for determinism.
  for (index_t v = 0; v < n; ++v) {
    const auto b = g.adj.begin() + g.ptr[v];
    const auto e = g.adj.begin() + g.ptr[v + 1];
    std::sort(b, e);
  }
  return g;
}

// BFS that returns the vertices of `start`'s component in visit order and
// records the last level — used both for the pseudo-peripheral search and
// the final CM traversal. Neighbours are expanded in increasing-degree
// order (ties by index), the classic Cuthill-McKee rule.
std::vector<index_t> cm_bfs(const Graph& g, index_t start,
                            std::vector<std::uint8_t>& visited,
                            index_t* last_vertex) {
  std::vector<index_t> order;
  std::queue<index_t> q;
  q.push(start);
  visited[start] = 1;
  std::vector<index_t> nbrs;
  while (!q.empty()) {
    const index_t v = q.front();
    q.pop();
    order.push_back(v);
    nbrs.clear();
    for (index_t i = g.ptr[v]; i < g.ptr[v + 1]; ++i) {
      const index_t w = g.adj[i];
      if (!visited[w]) {
        // A vertex may appear twice in adj (duplicates kept after sort);
        // the visited flag set below makes the second occurrence a no-op.
        visited[w] = 1;
        nbrs.push_back(w);
      }
    }
    std::sort(nbrs.begin(), nbrs.end(), [&](index_t a, index_t b) {
      const index_t da = g.degree(a), db = g.degree(b);
      return da != db ? da < db : a < b;
    });
    for (const index_t w : nbrs) {
      q.push(w);
    }
  }
  if (last_vertex != nullptr && !order.empty()) {
    *last_vertex = order.back();
  }
  return order;
}

// George–Liu style pseudo-peripheral vertex: repeat BFS from the far end
// until the eccentricity stops growing (bounded iterations).
index_t pseudo_peripheral(const Graph& g, index_t start) {
  index_t v = start;
  for (int iter = 0; iter < 4; ++iter) {
    std::vector<std::uint8_t> visited(g.ptr.size() - 1, 0);
    index_t last = v;
    cm_bfs(g, v, visited, &last);
    if (last == v) {
      break;
    }
    v = last;
  }
  return v;
}

}  // namespace

Permutation rcm_ordering(const Triplets& t) {
  SPC_CHECK_MSG(t.nrows() == t.ncols(),
                "RCM is defined for square matrices");
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "RCM requires sorted/combined triplets");
  const index_t n = t.nrows();
  const Graph g = build_graph(t);

  std::vector<index_t> order;
  order.reserve(n);
  std::vector<std::uint8_t> visited(n, 0);
  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) {
      continue;
    }
    // Start each component from a low-degree pseudo-peripheral vertex.
    const index_t start = pseudo_peripheral(g, seed);
    // pseudo_peripheral used scratch visit flags; do the real traversal.
    const std::vector<index_t> comp = cm_bfs(g, start, visited, nullptr);
    order.insert(order.end(), comp.begin(), comp.end());
  }
  // Reverse Cuthill-McKee: reverse the CM order.
  std::reverse(order.begin(), order.end());
  // order[k] is the old vertex placed at new position k: exactly perm.
  return Permutation(std::move(order));
}

usize_t pattern_bandwidth(const Triplets& t) {
  usize_t bw = 0;
  for (const Entry& e : t.entries()) {
    const usize_t d = e.col >= e.row
                          ? static_cast<usize_t>(e.col - e.row)
                          : static_cast<usize_t>(e.row - e.col);
    bw = std::max(bw, d);
  }
  return bw;
}

}  // namespace spc
