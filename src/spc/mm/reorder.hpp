// Matrix reordering — the locality optimization family the paper's
// related work cites (§III-A: "matrix reordering ... to improve locality
// of references").
//
// Reordering interacts directly with CSR-DU: a bandwidth-reducing
// permutation shortens column deltas, pushing more units into the u8
// class and shrinking the ctl stream (measured by
// bench/ablation_reordering).
#pragma once

#include <vector>

#include "spc/mm/triplets.hpp"
#include "spc/mm/vector.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// A permutation of [0, n): `perm[new_index] = old_index`.
class Permutation {
 public:
  Permutation() = default;

  /// Takes `perm[new] = old`; throws InvalidArgument unless it is a
  /// bijection on [0, size).
  explicit Permutation(std::vector<index_t> perm);

  static Permutation identity(index_t n);

  index_t size() const { return static_cast<index_t>(perm_.size()); }
  index_t old_of(index_t new_index) const { return perm_[new_index]; }
  index_t new_of(index_t old_index) const { return inv_[old_index]; }

  const std::vector<index_t>& perm() const { return perm_; }
  const std::vector<index_t>& inverse() const { return inv_; }

  /// The permutation that undoes this one.
  Permutation inverted() const;

 private:
  std::vector<index_t> perm_;
  std::vector<index_t> inv_;
};

/// B = P A Pᵀ: entry (r, c) moves to (new_of(r), new_of(c)). Requires a
/// square matrix whose dimension matches the permutation.
Triplets permute_symmetric(const Triplets& t, const Permutation& p);

/// Permutes a dense vector into the new ordering: out[new] = in[old].
Vector permute_vector(const Vector& in, const Permutation& p);

/// Scatters a permuted vector back: out[old] = in[new].
Vector unpermute_vector(const Vector& in, const Permutation& p);

/// Reverse Cuthill-McKee ordering of the symmetrized pattern of `t`
/// (square matrices). BFS from a pseudo-peripheral vertex per connected
/// component, neighbours visited in increasing-degree order, final order
/// reversed. Deterministic.
Permutation rcm_ordering(const Triplets& t);

/// Bandwidth of the matrix pattern (max |col - row|) — the quantity RCM
/// minimizes heuristically.
usize_t pattern_bandwidth(const Triplets& t);

}  // namespace spc
