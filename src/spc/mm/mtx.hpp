// Matrix Market (.mtx) reader/writer.
//
// The paper's matrix suite comes from Tim Davis's UF collection, which is
// distributed in Matrix Market format. The collection is not available
// offline here (see DESIGN.md §2), but the IO layer is complete so users
// can run every experiment on real collection files.
//
// Supported: `matrix coordinate {real,integer,pattern}
// {general,symmetric,skew-symmetric}`. Pattern entries get value 1.0
// (the convention used by SpMV benchmarks); symmetric inputs are expanded
// to general storage.
#pragma once

#include <iosfwd>
#include <string>

#include "spc/mm/triplets.hpp"

namespace spc {

/// Parses a Matrix Market stream into sorted, combined triplets.
/// Throws ParseError on malformed input.
Triplets read_matrix_market(std::istream& in);

/// Convenience file overload. Throws Error if the file cannot be opened.
Triplets read_matrix_market_file(const std::string& path);

/// Writes `general real coordinate` Matrix Market (1-based indices).
void write_matrix_market(const Triplets& t, std::ostream& out);

void write_matrix_market_file(const Triplets& t, const std::string& path);

}  // namespace spc
