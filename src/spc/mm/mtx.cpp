#include "spc/mm/mtx.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "spc/support/strutil.hpp"

namespace spc {

namespace {

struct MtxHeader {
  bool pattern = false;
  bool symmetric = false;       // symmetric or skew-symmetric
  bool skew = false;
};

MtxHeader parse_header(const std::string& line) {
  const auto tok = split_ws(to_lower(line));
  if (tok.size() < 4 || tok[0] != "%%matrixmarket" || tok[1] != "matrix") {
    throw ParseError("matrix market: bad banner: " + line);
  }
  if (tok[2] != "coordinate") {
    throw ParseError("matrix market: only 'coordinate' is supported");
  }
  MtxHeader h;
  const std::string& field = tok[3];
  if (field == "real" || field == "integer") {
    h.pattern = false;
  } else if (field == "pattern") {
    h.pattern = true;
  } else {
    throw ParseError("matrix market: unsupported field type: " + field);
  }
  const std::string sym = tok.size() > 4 ? tok[4] : "general";
  if (sym == "general") {
    h.symmetric = false;
  } else if (sym == "symmetric") {
    h.symmetric = true;
  } else if (sym == "skew-symmetric") {
    h.symmetric = true;
    h.skew = true;
  } else {
    throw ParseError("matrix market: unsupported symmetry: " + sym);
  }
  return h;
}

}  // namespace

Triplets read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError("matrix market: empty input");
  }
  const MtxHeader header = parse_header(line);

  // Skip comments, find the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      break;
    }
  }
  std::istringstream sz(line);
  std::uint64_t nrows = 0, ncols = 0, nnz = 0;
  if (!(sz >> nrows >> ncols >> nnz)) {
    throw ParseError("matrix market: bad size line: " + line);
  }
  if (nrows > 0xFFFFFFFFULL || ncols > 0xFFFFFFFFULL) {
    throw ParseError("matrix market: dimensions exceed 32-bit indices");
  }

  Triplets t(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  t.reserve(header.symmetric ? 2 * nnz : nnz);

  std::uint64_t seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') {
      continue;
    }
    std::istringstream es(line);
    std::uint64_t r = 0, c = 0;
    double v = 1.0;
    if (!(es >> r >> c)) {
      throw ParseError("matrix market: bad entry line: " + line);
    }
    if (!header.pattern && !(es >> v)) {
      throw ParseError("matrix market: missing value: " + line);
    }
    if (r == 0 || c == 0 || r > nrows || c > ncols) {
      throw ParseError("matrix market: entry out of bounds: " + line);
    }
    const auto row = static_cast<index_t>(r - 1);
    const auto col = static_cast<index_t>(c - 1);
    t.add(row, col, v);
    if (header.symmetric && row != col) {
      t.add(col, row, header.skew ? -v : v);
    }
    ++seen;
  }
  if (seen < nnz) {
    std::ostringstream os;
    os << "matrix market: expected " << nnz << " entries, got " << seen;
    throw ParseError(os.str());
  }
  t.sort_and_combine();
  return t;
}

Triplets read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw Error("cannot open matrix file: " + path);
  }
  return read_matrix_market(f);
}

void write_matrix_market(const Triplets& t, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by spc\n";
  out << t.nrows() << " " << t.ncols() << " " << t.nnz() << "\n";
  out.precision(17);
  for (const Entry& e : t.entries()) {
    out << (e.row + 1) << " " << (e.col + 1) << " " << e.val << "\n";
  }
}

void write_matrix_market_file(const Triplets& t, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    throw Error("cannot open output file: " + path);
  }
  write_matrix_market(t, f);
}

}  // namespace spc
