// Structural and value statistics of a sparse matrix.
//
// These drive the experiment methodology of the paper:
//  * the working-set model (§II-B) classifies matrices into the MS / ML
//    sets by ws against the aggregate L2 size;
//  * the column-delta distribution predicts CSR-DU compressibility (§IV);
//  * the total-to-unique value ratio (ttu) is CSR-VI's applicability
//    criterion, ttu > 5 (§VI-E).
#pragma once

#include <cstdint>

#include "spc/mm/triplets.hpp"
#include "spc/support/stats.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Byte-width classes for column deltas, matching CSR-DU unit types.
enum class DeltaClass : std::uint8_t { kU8 = 0, kU16 = 1, kU32 = 2, kU64 = 3 };

/// Smallest class whose width can hold `delta`.
DeltaClass delta_class_for(std::uint64_t delta);

/// Number of bytes a DeltaClass occupies.
inline std::uint32_t delta_class_bytes(DeltaClass c) {
  return 1u << static_cast<std::uint8_t>(c);
}

struct MatrixStats {
  index_t nrows = 0;
  index_t ncols = 0;
  usize_t nnz = 0;

  // Row structure.
  double row_len_mean = 0.0;
  double row_len_stddev = 0.0;
  index_t row_len_min = 0;
  index_t row_len_max = 0;
  index_t empty_rows = 0;

  // Column structure.
  usize_t bandwidth = 0;          ///< max |col - row| over non-zeros
  /// Histogram over DeltaClass of within-row column deltas (first element
  /// of a row contributes its absolute column index, per the CSR-DU ujmp).
  std::uint64_t delta_class_count[4] = {0, 0, 0, 0};
  /// Within-row deltas exactly 1 (consecutive columns). These are the
  /// elements CSR-DU's stride-1 RLE units can elide entirely, so their
  /// share predicts whether enable_rle pays.
  std::uint64_t delta1_count = 0;

  // Value structure.
  usize_t unique_values = 0;
  double ttu = 0.0;               ///< nnz / unique_values

  /// Working-set size of CSR SpMV per the paper's formula:
  /// ws = nnz*(idx+val) + (nrows+1)*idx + (nrows+ncols)*val.
  usize_t working_set_bytes(std::uint32_t idx_bytes = 4,
                            std::uint32_t val_bytes = 8) const;

  /// Size of the three CSR arrays alone (no vectors).
  usize_t csr_bytes(std::uint32_t idx_bytes = 4,
                    std::uint32_t val_bytes = 8) const;

  /// Fraction of within-row deltas representable in one byte — the main
  /// predictor of CSR-DU compression.
  double u8_delta_fraction() const;

  /// Fraction of non-zeros sitting at stride 1 from their left neighbor —
  /// the RLE-profitability predictor (see delta1_count).
  double delta1_fraction() const;
};

/// Computes all statistics in O(nnz log nnz) (value census dominates).
/// Requires sorted, combined triplets.
MatrixStats compute_stats(const Triplets& t);

/// Column-delta class histogram under column tiling: each row is cut at
/// stripe boundaries every `stripe_cols` columns, and deltas restart
/// stripe-local — the first element of a (row, stripe) run contributes
/// its stripe-local column, later elements their within-run delta. This
/// is the distribution the tiled CSR-DU encoder sees (spmv/tiling.hpp),
/// so shrinking stripes moves mass toward counts[0] (u8).
/// `stripe_cols == 0` means untiled and reproduces
/// MatrixStats::delta_class_count. Requires sorted, combined triplets.
void tiled_delta_class_counts(const Triplets& t, index_t stripe_cols,
                              std::uint64_t counts[4]);

}  // namespace spc
