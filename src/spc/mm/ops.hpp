// Structural and algebraic operations on sparse matrices.
//
// Substrate utilities the experiments, tests and downstream users need:
// transpose, scaling, addition, triangle extraction, symmetrization,
// equality, and Frobenius norms — all on the Triplets representation
// (formats are encode-only views).
#pragma once

#include "spc/mm/triplets.hpp"
#include "spc/mm/vector.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Aᵀ.
Triplets transpose(const Triplets& t);

/// alpha * A (entries scaled; structure unchanged).
Triplets scale(const Triplets& t, value_t alpha);

/// A + B (dimensions must match; coincident entries sum).
Triplets add(const Triplets& a, const Triplets& b);

/// (A + Aᵀ) / 2 — the symmetrization used before RCM / SymCsr when a
/// matrix is only structurally symmetric.
Triplets symmetrize(const Triplets& t);

enum class Triangle { kLower, kUpper };

/// Strict or inclusive triangle extraction.
Triplets extract_triangle(const Triplets& t, Triangle which,
                          bool include_diagonal);

/// Exact equality (same dims, same sorted entries, bitwise values).
bool equal(const Triplets& a, const Triplets& b);

/// Frobenius norm sqrt(sum v^2).
double frobenius_norm(const Triplets& t);

/// Max |a - b| over the union of both structures.
double max_entry_diff(const Triplets& a, const Triplets& b);

/// Builds triplets from a dense row-major array (zeros skipped) — mostly
/// a test/tooling convenience.
Triplets from_dense(const value_t* data, index_t nrows, index_t ncols);

/// Expands to a dense row-major vector of nrows*ncols entries.
Vector to_dense(const Triplets& t);

}  // namespace spc
