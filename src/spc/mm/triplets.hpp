// Coordinate-format (COO) triplet builder — the universal construction
// input for every storage format in the library.
//
// All generators and the Matrix Market reader produce `Triplets`; every
// format (CSR, CSR-DU, CSR-VI, ...) is constructed from sorted triplets.
#pragma once

#include <cstdint>
#include <vector>

#include "spc/support/error.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// One non-zero element.
struct Entry {
  index_t row = 0;
  index_t col = 0;
  value_t val = 0.0;

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Mutable collection of non-zeros with explicit matrix dimensions.
///
/// Invariants (checked on demand by `validate()`):
///  * every entry lies inside [0, nrows) × [0, ncols)
/// After `sort_and_combine()` additionally:
///  * entries are in row-major order and coordinates are unique.
class Triplets {
 public:
  Triplets() = default;
  Triplets(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {}

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Appends one non-zero. Duplicate coordinates are allowed until
  /// sort_and_combine() folds them.
  void add(index_t row, index_t col, value_t val) {
    SPC_DCHECK(row < nrows_ && col < ncols_);
    entries_.push_back(Entry{row, col, val});
  }

  void reserve(usize_t n) { entries_.reserve(n); }

  /// Sorts row-major and sums duplicate coordinates (the Matrix Market
  /// convention). Entries that sum to exactly zero are kept: structural
  /// zeros are meaningful for format comparisons.
  void sort_and_combine();

  /// Sorts row-major and keeps the first-added value for duplicate
  /// coordinates. Used by the synthetic generators, where summation would
  /// manufacture values outside the intended value pool and distort the
  /// total-to-unique ratio.
  void sort_and_dedup_keep_first();

  /// True if entries are sorted row-major with strictly increasing
  /// (row, col) pairs.
  bool is_sorted_unique() const;

  /// Throws InvalidArgument when any entry is out of bounds.
  void validate() const;

  /// Grows the logical dimensions (entries are untouched).
  void resize_dims(index_t nrows, index_t ncols) {
    SPC_CHECK_MSG(nrows >= nrows_ && ncols >= ncols_,
                  "resize_dims must not shrink the matrix");
    nrows_ = nrows;
    ncols_ = ncols;
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace spc
