// Completion handle for one submitted SpMV request.
//
// A Future is a shared view of the request's state: the engine's
// dispatcher completes it (result vector + status + timing), any number
// of client threads may wait on it. Copyable; all copies observe the
// same completion exactly once.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "spc/mm/vector.hpp"
#include "spc/support/status.hpp"

namespace spc::engine {

/// The engine-internal request record. Clients touch it only through
/// Future; the dispatcher fills the result and timing fields before
/// flipping `done` under the mutex.
struct RequestState {
  Vector x;  ///< moved-in input (owned for the request's lifetime)
  Vector y;  ///< the result, valid once done && status.ok()
  std::uint64_t submit_ns = 0;
  std::uint64_t deadline_ns = 0;  ///< absolute; 0 = no deadline
  std::atomic<bool> cancel_requested{false};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::uint64_t queue_ns = 0;  ///< submit -> execution start
  std::uint64_t exec_ns = 0;   ///< execution start -> completion
  bool ran_serial = false;     ///< degraded-mode run on a dispatcher thread

  /// Called exactly once, by whoever finishes the request.
  void complete(Status st) {
    std::lock_guard<std::mutex> lk(mu);
    status = std::move(st);
    done = true;
    cv.notify_all();
  }
};

class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<RequestState> s) : s_(std::move(s)) {}

  /// False for a default-constructed (empty) future.
  bool valid() const { return s_ != nullptr; }

  /// True once the request has completed (never blocks).
  bool done() const {
    std::lock_guard<std::mutex> lk(s_->mu);
    return s_->done;
  }

  /// Blocks until the request completes.
  void wait() const {
    std::unique_lock<std::mutex> lk(s_->mu);
    s_->cv.wait(lk, [&] { return s_->done; });
  }

  /// Blocks up to `ms` milliseconds; true when the request completed.
  bool wait_for_ms(std::uint64_t ms) const {
    std::unique_lock<std::mutex> lk(s_->mu);
    return s_->cv.wait_for(lk, std::chrono::milliseconds(ms),
                           [&] { return s_->done; });
  }

  /// The completion status (waits). ok() means `value()` holds y = A*x.
  Status status() const {
    wait();
    return s_->status;  // immutable after done
  }

  /// The result vector (waits). Meaningful only when status().ok().
  const Vector& value() const {
    wait();
    return s_->y;
  }

  /// Moves the result out (waits). Call at most once, from one thread.
  Vector take() {
    wait();
    return std::move(s_->y);
  }

  /// Best-effort cancellation: a request still queued completes with
  /// kCancelled; one already executing finishes normally.
  void cancel() { s_->cancel_requested.store(true, std::memory_order_relaxed); }

  /// Nanoseconds queued before execution started (waits).
  std::uint64_t queue_ns() const {
    wait();
    return s_->queue_ns;
  }

  /// Execution nanoseconds (waits; 0 for rejected/cancelled requests).
  std::uint64_t exec_ns() const {
    wait();
    return s_->exec_ns;
  }

  /// True when the request ran in degraded serial mode (waits).
  bool ran_serial() const {
    wait();
    return s_->ran_serial;
  }

 private:
  std::shared_ptr<RequestState> s_;
};

}  // namespace spc::engine
