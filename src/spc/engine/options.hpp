// Serving-engine configuration.
//
// The engine owns one shared NUMA-pinned ThreadPool and a registry of
// resident matrices; these options shape the pool, the admission queue,
// and the dispatchers once, at engine construction. Per-registration
// and per-request knobs live in RegisterOptions / SubmitOptions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "spc/spmv/instance.hpp"
#include "spc/support/status.hpp"
#include "spc/support/topology.hpp"
#include "spc/tune/tuner.hpp"

namespace spc::engine {

/// What submit() does when the bounded admission queue is full.
enum class OverflowPolicy {
  kReject,   ///< fail fast with kResourceExhausted (default: overload
             ///< must surface as rejections, never as unbounded latency)
  kBlock,    ///< wait for a slot (applies backpressure to the client)
  kTimeout,  ///< wait up to submit_timeout_ms, then kResourceExhausted
};

struct EngineOptions {
  /// Worker threads in the shared pool; 0 = one per hardware CPU.
  std::size_t pool_threads = 0;
  /// Pin workers per `placement` (the paper's model; also what NUMA
  /// data placement needs). Off leaves scheduling to the OS.
  bool pin_threads = true;
  Placement placement = Placement::kCloseFirst;
  /// Dispatcher threads draining the admission queue. Each pops a batch,
  /// groups it by matrix, and executes on the shared pool (or degrades
  /// to its own thread, see serial_fallback).
  std::size_t dispatchers = 2;
  /// Admission-queue capacity; submits beyond it hit `overflow`.
  std::size_t queue_capacity = 1024;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// kTimeout policy: how long a full-queue submit may wait for a slot.
  std::uint64_t submit_timeout_ms = 100;
  /// Most requests one dispatcher pops per queue round-trip. Popped
  /// requests are grouped per matrix, so consecutive runs reuse the
  /// matrix's cache-resident slices.
  std::size_t batch_max = 8;
  /// Degraded mode: when the shared pool is mid-dispatch for another
  /// matrix, run the request serially on the dispatcher's own thread
  /// (bit-identical for the row-partitioned formats) instead of queueing
  /// behind the pool.
  bool serial_fallback = true;
  /// Instance knobs applied to every registered matrix (NUMA, schedule,
  /// tiling, ...). backend/pin_threads/placement inside are ignored —
  /// the engine's shared pool is already built.
  InstanceOptions instance;

  /// Checks the option values: at least one dispatcher, a nonzero queue
  /// and batch size, a nonzero timeout when the timeout policy is
  /// selected, and instance.validate(). Returns ok() or an
  /// kInvalidArgument naming the bad field; the Engine constructor
  /// throws InvalidArgument with the same message.
  Status validate() const;
};

/// Per-matrix registration knobs.
struct RegisterOptions {
  /// Pick the format with the autotuner (spc::tune::pick_format — a
  /// warm tuning cache answers without probing). False uses `format`.
  bool auto_format = false;
  Format format = Format::kCsr;
  /// Pooled warm-up runs executed at registration, so first-request
  /// latency excludes cold caches and lazy page faults.
  std::size_t warm_runs = 0;
  /// Autotuner knobs when auto_format (cache path, probe shape, ...).
  tune::TuneOptions tune;
};

/// Per-request knobs.
struct SubmitOptions {
  /// Cancel the request if it has not *started* executing this many
  /// milliseconds after submit (0 = no deadline). Expired requests
  /// complete with kDeadlineExceeded instead of occupying the pool.
  std::uint64_t deadline_ms = 0;
};

}  // namespace spc::engine
