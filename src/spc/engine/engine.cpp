#include "spc/engine/engine.hpp"

#include <algorithm>
#include <utility>

#include "spc/support/error.hpp"
#include "spc/support/timing.hpp"
#include "spc/support/topology.hpp"

namespace spc::engine {

Status EngineOptions::validate() const {
  if (dispatchers < 1) {
    return Status::Invalid("EngineOptions.dispatchers must be >= 1, got 0");
  }
  if (queue_capacity < 1) {
    return Status::Invalid("EngineOptions.queue_capacity must be >= 1, got 0");
  }
  if (batch_max < 1) {
    return Status::Invalid("EngineOptions.batch_max must be >= 1, got 0");
  }
  if (overflow == OverflowPolicy::kTimeout && submit_timeout_ms == 0) {
    return Status::Invalid(
        "EngineOptions.submit_timeout_ms must be nonzero under the "
        "timeout overflow policy (0 would reject instantly; use kReject "
        "for that)");
  }
  return instance.validate();
}

Engine::Engine(const EngineOptions& opts) : opts_(opts) {
  const Status st = opts_.validate();
  if (!st.ok()) {
    throw InvalidArgument(st.message());
  }

  const Topology topo = discover_topology();
  std::size_t nthreads = opts_.pool_threads;
  if (nthreads == 0) {
    nthreads = std::max<std::size_t>(topo.cpus.size(), 1);
  }
  std::vector<int> plan;
  if (opts_.pin_threads) {
    plan = plan_placement(topo, nthreads, opts_.placement);
  }
  pool_ = std::make_shared<ThreadPool>(nthreads, plan);

  obs::Registry& reg = obs::Registry::global();
  m_submitted_ = &reg.counter("spc.engine.submitted");
  m_completed_ = &reg.counter("spc.engine.completed");
  m_rejected_ = &reg.counter("spc.engine.rejected");
  m_cancelled_ = &reg.counter("spc.engine.cancelled");
  m_deadline_ = &reg.counter("spc.engine.deadline_missed");
  m_serial_ = &reg.counter("spc.engine.serial_runs");
  m_batches_ = &reg.counter("spc.engine.batches");
  m_depth_ = &reg.gauge("spc.engine.queue_depth");
  m_queue_ns_ = &reg.histogram("spc.engine.queue_ns");
  m_exec_ns_ = &reg.histogram("spc.engine.exec_ns");
  m_latency_ns_ = &reg.histogram("spc.engine.latency_ns");

  dispatchers_.reserve(opts_.dispatchers);
  for (std::size_t i = 0; i < opts_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_main(); });
  }
}

Engine::~Engine() { shutdown(); }

// ---- Registry ---------------------------------------------------------

Status Engine::register_matrix(const std::string& id, const Triplets& t,
                               const RegisterOptions& ropts) {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (closed_) {
      return Status::Unavailable("engine is shut down");
    }
  }
  {
    std::shared_lock<std::shared_mutex> lk(reg_mu_);
    if (matrices_.count(id) != 0) {
      return Status::AlreadyExists("matrix id '" + id +
                                   "' is already registered");
    }
  }

  // Encode outside the registry lock: tuning/encoding may take a while
  // and must not stall concurrent submits to other matrices.
  auto entry = std::make_shared<MatrixEntry>();
  entry->id = id;
  try {
    Format fmt = ropts.format;
    tune::TuneReport rep;
    if (ropts.auto_format) {
      fmt = tune::pick_format(t, pool_->size(), opts_.instance, ropts.tune,
                              &rep);
    }
    entry->inst =
        std::make_unique<SpmvInstance>(t, fmt, pool_, opts_.instance);
    if (ropts.auto_format) {
      SpmvInstance::TuneProvenance p;
      p.tuned = true;
      p.cache_hit = rep.cache_hit;
      p.probe_ns = rep.probe_ns;
      p.source = rep.source;
      p.fingerprint = rep.fingerprint;
      entry->inst->set_tune_provenance(std::move(p));
    }
  } catch (const Error& e) {
    return Status::Invalid("registering matrix '" + id + "': " + e.what());
  }

  {
    std::unique_lock<std::shared_mutex> lk(reg_mu_);
    if (!matrices_.emplace(id, entry).second) {
      return Status::AlreadyExists("matrix id '" + id +
                                   "' is already registered");
    }
  }

  if (ropts.warm_runs > 0) {
    return warm(id, ropts.warm_runs);
  }
  return Status::Ok();
}

Status Engine::unregister_matrix(const std::string& id) {
  std::unique_lock<std::shared_mutex> lk(reg_mu_);
  if (matrices_.erase(id) == 0) {
    return Status::NotFound("no matrix registered under id '" + id + "'");
  }
  return Status::Ok();
}

bool Engine::has_matrix(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lk(reg_mu_);
  return matrices_.count(id) != 0;
}

std::vector<std::string> Engine::matrix_ids() const {
  std::shared_lock<std::shared_mutex> lk(reg_mu_);
  std::vector<std::string> ids;
  ids.reserve(matrices_.size());
  for (const auto& [id, entry] : matrices_) {
    ids.push_back(id);
  }
  return ids;
}

Status Engine::matrix_info(const std::string& id, MatrixInfo* out) const {
  const std::shared_ptr<MatrixEntry> entry = find_entry(id);
  if (entry == nullptr) {
    return Status::NotFound("no matrix registered under id '" + id + "'");
  }
  if (out != nullptr) {
    const SpmvInstance& inst = *entry->inst;
    out->format = inst.format();
    out->nrows = inst.nrows();
    out->ncols = inst.ncols();
    out->nnz = inst.nnz();
    out->nthreads = inst.nthreads();
    out->tuned = inst.tune_provenance().tuned;
    out->tune_cache_hit = inst.tune_provenance().cache_hit;
    out->tune_source = inst.tune_provenance().source;
    out->runs = entry->runs.load(std::memory_order_relaxed);
    out->decisions = inst.decisions();
  }
  return Status::Ok();
}

Status Engine::warm(const std::string& id, std::size_t iters) {
  const std::shared_ptr<MatrixEntry> entry = find_entry(id);
  if (entry == nullptr) {
    return Status::NotFound("no matrix registered under id '" + id + "'");
  }
  const Vector x = const_vector(entry->inst->ncols(), 1.0);
  Vector y(entry->inst->nrows(), 0.0);
  for (std::size_t i = 0; i < iters; ++i) {
    entry->inst->run(x, y);
  }
  return Status::Ok();
}

// ---- Serving ----------------------------------------------------------

Future Engine::submit(const std::string& id, Vector x,
                      const SubmitOptions& sopts) {
  auto state = std::make_shared<RequestState>();
  state->x = std::move(x);
  state->submit_ns = now_ns();
  if (sopts.deadline_ms > 0) {
    state->deadline_ns = state->submit_ns + sopts.deadline_ms * 1'000'000ull;
  }
  Future fut(state);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  m_submitted_->add();

  const std::shared_ptr<MatrixEntry> entry = find_entry(id);
  if (entry == nullptr) {
    state->complete(
        Status::NotFound("no matrix registered under id '" + id + "'"));
    return fut;
  }
  if (state->x.size() != static_cast<std::size_t>(entry->inst->ncols())) {
    state->complete(Status::Invalid(
        "matrix '" + id + "' needs x with " +
        std::to_string(entry->inst->ncols()) + " elements, got " +
        std::to_string(state->x.size())));
    return fut;
  }

  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    if (closed_) {
      lk.unlock();
      state->complete(Status::Unavailable("engine is shut down"));
      return fut;
    }
    if (queue_.size() >= opts_.queue_capacity) {
      switch (opts_.overflow) {
        case OverflowPolicy::kReject:
          lk.unlock();
          rejected_.fetch_add(1, std::memory_order_relaxed);
          m_rejected_->add();
          state->complete(Status::Exhausted(
              "admission queue full (" +
              std::to_string(opts_.queue_capacity) + " requests)"));
          return fut;
        case OverflowPolicy::kBlock:
          queue_push_cv_.wait(lk, [&] {
            return closed_ || queue_.size() < opts_.queue_capacity;
          });
          break;
        case OverflowPolicy::kTimeout: {
          const bool got_slot = queue_push_cv_.wait_for(
              lk, std::chrono::milliseconds(opts_.submit_timeout_ms), [&] {
                return closed_ || queue_.size() < opts_.queue_capacity;
              });
          if (!got_slot) {
            lk.unlock();
            rejected_.fetch_add(1, std::memory_order_relaxed);
            m_rejected_->add();
            state->complete(Status::Exhausted(
                "admission queue full after waiting " +
                std::to_string(opts_.submit_timeout_ms) + " ms"));
            return fut;
          }
          break;
        }
      }
      if (closed_) {
        lk.unlock();
        state->complete(Status::Unavailable("engine is shut down"));
        return fut;
      }
    }
    queue_.push_back(Request{entry, state});
    m_depth_->set(static_cast<double>(queue_.size()));
  }
  queue_pop_cv_.notify_one();
  return fut;
}

Status Engine::run_sync(const std::string& id, const Vector& x, Vector* y,
                        const SubmitOptions& sopts) {
  Future fut = submit(id, x, sopts);
  const Status st = fut.status();
  if (st.ok() && y != nullptr) {
    *y = fut.take();
  }
  return st;
}

void Engine::drain() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  drain_cv_.wait(lk, [&] {
    return queue_.empty() && in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void Engine::shutdown() {
  // Idempotent: the dispatcher threads are claimed under the lock, so
  // exactly one caller joins them (the destructor's call after an
  // explicit shutdown() claims an empty vector and returns).
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    closed_ = true;
    to_join.swap(dispatchers_);
  }
  queue_pop_cv_.notify_all();
  queue_push_cv_.notify_all();
  for (std::thread& th : to_join) {
    if (th.joinable()) {
      th.join();
    }
  }
}

// ---- Introspection ----------------------------------------------------

std::size_t Engine::queue_depth() const {
  std::lock_guard<std::mutex> lk(queue_mu_);
  return queue_.size();
}

Engine::Stats Engine::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_missed = deadline_missed_.load(std::memory_order_relaxed);
  s.serial_runs = serial_runs_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

// ---- Internals --------------------------------------------------------

std::shared_ptr<Engine::MatrixEntry> Engine::find_entry(
    const std::string& id) const {
  std::shared_lock<std::shared_mutex> lk(reg_mu_);
  const auto it = matrices_.find(id);
  return it == matrices_.end() ? nullptr : it->second;
}

void Engine::dispatcher_main() {
  std::vector<Request> batch;
  batch.reserve(opts_.batch_max);
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_pop_cv_.wait(lk, [&] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        // closed_ and drained: every dispatcher leaves. Admission is
        // already refused, so the queue can never refill.
        return;
      }
      const std::size_t take = std::min(opts_.batch_max, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_.fetch_add(batch.size(), std::memory_order_acq_rel);
      m_depth_->set(static_cast<double>(queue_.size()));
    }
    queue_push_cv_.notify_all();
    batches_.fetch_add(1, std::memory_order_relaxed);
    m_batches_->add();

    // Group the batch per matrix so consecutive runs reuse the matrix's
    // cache-resident slices (submission order is preserved within a
    // matrix; cross-matrix order within one batch is reordered anyway
    // by having several dispatchers).
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Request& a, const Request& b) {
                       return a.entry.get() < b.entry.get();
                     });
    for (Request& req : batch) {
      execute(req);
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(queue_mu_);
        if (queue_.empty()) {
          drain_cv_.notify_all();
        }
      }
    }
  }
}

void Engine::execute(Request& req) {
  RequestState& st = *req.state;
  const std::uint64_t start = now_ns();
  st.queue_ns = start - st.submit_ns;

  if (st.cancel_requested.load(std::memory_order_relaxed)) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    m_cancelled_->add();
    st.complete(Status::Cancelled("request cancelled before execution"));
    return;
  }
  if (st.deadline_ns != 0 && start > st.deadline_ns) {
    deadline_missed_.fetch_add(1, std::memory_order_relaxed);
    m_deadline_->add();
    st.complete(Status::DeadlineExceeded(
        "deadline passed after " + std::to_string(st.queue_ns / 1'000'000) +
        " ms in queue"));
    return;
  }

  SpmvInstance& inst = *req.entry->inst;
  st.y.assign(static_cast<std::size_t>(inst.nrows()), 0.0);
  Status result = Status::Ok();
  try {
    // Degraded mode: when the shared pool is mid-dispatch for someone
    // else, a row-partitioned matrix computes bit-identically on this
    // dispatcher thread — trading parallel speed for not queueing
    // behind the pool. busy() is advisory, but a stale answer only
    // costs the optimal choice, never correctness.
    if (opts_.serial_fallback && inst.can_run_on_caller() && pool_->busy() &&
        inst.run_on_caller(st.x, st.y)) {
      st.ran_serial = true;
      serial_runs_.fetch_add(1, std::memory_order_relaxed);
      m_serial_->add();
    } else {
      inst.run(st.x, st.y);
    }
  } catch (const std::exception& e) {
    result = Status::Internal(std::string("SpMV execution failed: ") +
                              e.what());
  }

  const std::uint64_t end = now_ns();
  st.exec_ns = end - start;
  if (result.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    m_completed_->add();
    req.entry->runs.fetch_add(1, std::memory_order_relaxed);
    m_queue_ns_->record(st.queue_ns);
    m_exec_ns_->record(st.exec_ns);
    m_latency_ns_->record(end - st.submit_ns);
  }
  st.complete(std::move(result));
}

}  // namespace spc::engine
