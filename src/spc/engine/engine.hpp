// spc::engine::Engine — a concurrent multi-tenant SpMV serving core.
//
// One engine owns one shared NUMA-pinned ThreadPool and a registry of
// resident matrices. Each matrix is registered once (optionally
// autotuned via spc::tune, with its cache making repeat registrations
// instant), prepared once against the shared pool, and served
// repeatedly: clients submit (matrix_id, x) pairs and get a Future; a
// bounded MPMC admission queue feeds dispatcher threads that batch
// requests per matrix and execute them on the pool. Overload surfaces
// per EngineOptions::overflow (reject / block / timeout), and when the
// pool is saturated a dispatcher degrades a request to a bit-identical
// serial run on its own thread rather than queueing behind the pool.
//
// Lifecycle: construct -> register_matrix (+ warm) -> submit/run_sync
// -> drain -> shutdown (the destructor shuts down too). See
// docs/SERVING.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "spc/engine/future.hpp"
#include "spc/engine/options.hpp"
#include "spc/mm/triplets.hpp"
#include "spc/obs/metrics.hpp"
#include "spc/parallel/thread_pool.hpp"
#include "spc/spmv/instance.hpp"

namespace spc::engine {

class Engine {
 public:
  /// Builds the shared pool and starts the dispatchers. Throws
  /// InvalidArgument when opts.validate() fails.
  explicit Engine(const EngineOptions& opts = {});

  /// shutdown(), then joins everything.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- Registry -------------------------------------------------------

  /// Encodes `t` (autotuned when ropts.auto_format) and prepares it
  /// against the shared pool under id `id`. kAlreadyExists when the id
  /// is taken, kInvalidArgument when encoding refuses the matrix,
  /// kUnavailable after shutdown. Registration is synchronous; when it
  /// returns ok() the matrix is resident and servable.
  Status register_matrix(const std::string& id, const Triplets& t,
                         const RegisterOptions& ropts = {});

  /// Removes `id` from the registry. In-flight requests on it finish
  /// normally (they hold the instance alive); new submits get kNotFound.
  Status unregister_matrix(const std::string& id);

  bool has_matrix(const std::string& id) const;

  /// Registered ids, unordered.
  std::vector<std::string> matrix_ids() const;

  struct MatrixInfo {
    Format format = Format::kCsr;
    index_t nrows = 0;
    index_t ncols = 0;
    usize_t nnz = 0;
    std::size_t nthreads = 0;
    bool tuned = false;          ///< format chosen by the autotuner
    bool tune_cache_hit = false;
    std::string tune_source;     ///< "cache" | "probe" | "cost-model" | ""
    std::uint64_t runs = 0;      ///< completed engine runs
    /// Requested-vs-resolved configuration fallbacks of the instance.
    std::vector<InstanceDecision> decisions;
  };
  Status matrix_info(const std::string& id, MatrixInfo* out) const;

  /// Runs `iters` pooled passes over `id` with a constant input, so the
  /// first real request pays no cold caches or lazy page faults.
  Status warm(const std::string& id, std::size_t iters = 1);

  // ---- Serving --------------------------------------------------------

  /// Enqueues y = A(id)*x and returns immediately with a Future. `x` is
  /// moved into the request. The future completes with:
  ///   ok                  — value() holds y
  ///   kNotFound           — no such matrix id
  ///   kInvalidArgument    — x has the wrong dimension
  ///   kResourceExhausted  — queue full (reject/timeout policies)
  ///   kDeadlineExceeded   — deadline passed before execution started
  ///   kCancelled          — cancel() won the race with the dispatcher
  ///   kUnavailable        — engine shut down
  /// Rejections complete the future rather than throwing, so clients
  /// have one code path. Thread-safe.
  Future submit(const std::string& id, Vector x,
                const SubmitOptions& sopts = {});

  /// Blocking convenience: submit + wait; on ok(), *y receives the
  /// result (moved, no copy).
  Status run_sync(const std::string& id, const Vector& x, Vector* y,
                  const SubmitOptions& sopts = {});

  /// Blocks until the queue is empty and no request is executing.
  void drain();

  /// Stops admission (further submits complete kUnavailable), serves
  /// everything already queued, and joins the dispatchers. Idempotent.
  void shutdown();

  // ---- Introspection --------------------------------------------------

  /// Requests currently queued (excludes executing ones).
  std::size_t queue_depth() const;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  ///< with ok() status
    std::uint64_t rejected = 0;   ///< queue-full rejections/timeouts
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_missed = 0;
    std::uint64_t serial_runs = 0;  ///< degraded-mode executions
    std::uint64_t batches = 0;      ///< dispatcher queue round-trips
  };
  Stats stats() const;

  /// The shared worker pool (valid for the engine's lifetime).
  ThreadPool& pool() { return *pool_; }

  const EngineOptions& options() const { return opts_; }

 private:
  struct MatrixEntry {
    std::string id;
    std::unique_ptr<SpmvInstance> inst;
    std::atomic<std::uint64_t> runs{0};
  };

  struct Request {
    std::shared_ptr<MatrixEntry> entry;
    std::shared_ptr<RequestState> state;
  };

  void dispatcher_main();
  /// Executes one admitted request (deadline/cancel checks, pool run or
  /// serial fallback) and completes its future.
  void execute(Request& req);
  std::shared_ptr<MatrixEntry> find_entry(const std::string& id) const;

  EngineOptions opts_;
  std::shared_ptr<ThreadPool> pool_;
  std::vector<std::thread> dispatchers_;

  mutable std::shared_mutex reg_mu_;
  std::unordered_map<std::string, std::shared_ptr<MatrixEntry>> matrices_;

  // Bounded MPMC admission queue. A plain ring under a mutex: the
  // critical sections are a few pointer moves, and the mutex keeps the
  // blocking overflow policies and shutdown exact (and TSan-clean).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_push_cv_;  ///< waits for space
  std::condition_variable queue_pop_cv_;   ///< waits for work
  std::deque<Request> queue_;
  bool closed_ = false;

  // drain(): in-flight = popped but not yet completed.
  std::atomic<std::size_t> in_flight_{0};
  std::condition_variable drain_cv_;  ///< paired with queue_mu_

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_missed_{0};
  std::atomic<std::uint64_t> serial_runs_{0};
  std::atomic<std::uint64_t> batches_{0};

  // Cached obs instruments (lock-free hot path).
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
  obs::Counter* m_deadline_ = nullptr;
  obs::Counter* m_serial_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Gauge* m_depth_ = nullptr;
  obs::LatencyHisto* m_queue_ns_ = nullptr;
  obs::LatencyHisto* m_exec_ns_ = nullptr;
  obs::LatencyHisto* m_latency_ns_ = nullptr;
};

}  // namespace spc::engine
