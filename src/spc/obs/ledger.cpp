#include "spc/obs/ledger.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "spc/support/error.hpp"
#include "spc/support/env.hpp"
#include "spc/support/topology.hpp"

#ifndef SPC_GIT_SHA
#define SPC_GIT_SHA "unknown"
#endif

namespace spc::obs {

namespace {

std::string fnv1a_hex(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::string json_str(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

std::uint64_t json_u64(const Json& j, const char* key,
                       std::uint64_t dflt = 0) {
  const Json* v = j.find(key);
  return v != nullptr ? v->as_u64(dflt) : dflt;
}

double json_num(const Json& j, const char* key, double dflt = 0.0) {
  const Json* v = j.find(key);
  return v != nullptr ? v->as_double(dflt) : dflt;
}

// Widest vector tier the host CPU supports. Probed directly (not via the
// spmv dispatch layer, which sits above obs in the link order): the
// fingerprint records a *machine* property — what the hardware can run —
// while each record's "isa" field reports what actually executed.
std::string host_isa_name() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return "avx2";
  }
  if (__builtin_cpu_supports("sse4.2")) {
    return "sse42";
  }
#endif
  return "scalar";
}

}  // namespace

Json MachineFingerprint::to_json() const {
  Json j = Json::object();
  j.set("cpu", cpu_model);
  j.set("cpus", static_cast<std::uint64_t>(cpus));
  j.set("numa_nodes", static_cast<std::uint64_t>(numa_nodes));
  j.set("llc_bytes", static_cast<std::uint64_t>(llc_bytes));
  j.set("llc_instances", static_cast<std::uint64_t>(llc_instances));
  j.set("l2_bytes", static_cast<std::uint64_t>(l2_bytes));
  j.set("isa", isa);
  j.set("host", hostname);
  return j;
}

std::string MachineFingerprint::id() const {
  // Hostname excluded: identical hardware → identical id, so a baseline
  // recorded on one of several like machines stays usable on its twins.
  MachineFingerprint anon = *this;
  anon.hostname.clear();
  return fnv1a_hex(anon.to_json().dump());
}

MachineFingerprint MachineFingerprint::from_json(const Json& j) {
  MachineFingerprint fp;
  fp.cpu_model = json_str(j, "cpu");
  fp.cpus = static_cast<std::size_t>(json_u64(j, "cpus"));
  fp.numa_nodes = static_cast<std::size_t>(json_u64(j, "numa_nodes", 1));
  fp.llc_bytes = static_cast<std::size_t>(json_u64(j, "llc_bytes"));
  fp.llc_instances =
      static_cast<std::size_t>(json_u64(j, "llc_instances", 1));
  fp.l2_bytes = static_cast<std::size_t>(json_u64(j, "l2_bytes"));
  fp.isa = json_str(j, "isa");
  fp.hostname = json_str(j, "host");
  return fp;
}

const MachineFingerprint& machine_fingerprint() {
  static const MachineFingerprint fp = [] {
    const Topology topo = discover_topology();
    MachineFingerprint f;
    f.cpu_model = topo.cpu_model;
    f.cpus = topo.num_cpus();
    f.numa_nodes = topo.num_nodes();
    f.llc_bytes = topo.llc_bytes;
    f.llc_instances = topo.llc_instances;
    f.l2_bytes = topo.l2_bytes;
    f.isa = host_isa_name();
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) == 0) {
      f.hostname = host;
    }
    return f;
  }();
  return fp;
}

std::string build_git_sha() {
  if (const auto env = env_str("SPC_GIT_SHA")) {
    return *env;
  }
  return SPC_GIT_SHA;
}

std::string LedgerRecord::key() const {
  std::ostringstream os;
  os << bench << '|' << matrix << '|' << format << '|' << isa << '|'
     << numa << '|' << schedule << '|' << tiling << '|' << stripe_bytes
     << '|' << tuned << '|' << threads;
  return os.str();
}

bool parse_ledger_record(const Json& j, LedgerRecord* out) {
  if (!j.is_object()) {
    return false;
  }
  LedgerRecord r;
  r.bench = json_str(j, "bench");
  r.matrix = json_str(j, "matrix");
  r.cls = json_str(j, "cls");
  r.set = json_str(j, "set");
  r.format = json_str(j, "format");
  // Pre-dispatch / pre-NUMA / pre-scheduler records group under what
  // actually produced them, mirroring profile_report.
  r.isa = json_str(j, "isa");
  if (r.isa.empty()) {
    r.isa = "scalar";
  }
  r.numa = json_str(j, "numa");
  if (r.numa.empty()) {
    r.numa = "off";
  }
  r.schedule = json_str(j, "schedule");
  if (r.schedule.empty()) {
    r.schedule = "static";
  }
  // Pre-tiling records ran the untiled layout.
  r.tiling = json_str(j, "tiling");
  if (r.tiling.empty()) {
    r.tiling = "off";
  }
  r.stripe_bytes = json_u64(j, "stripe_bytes");
  // Pre-tuner records were all hand-picked cells.
  r.tuned = json_str(j, "tuned");
  if (r.tuned.empty()) {
    r.tuned = "no";
  }
  r.probe_ns = json_u64(j, "probe_ns");
  if (const Json* hit = j.find("cache_hit")) {
    r.cache_hit = hit->as_bool();
  }
  r.threads = static_cast<std::size_t>(json_u64(j, "threads", 1));
  r.machine_id = json_str(j, "machine_id");
  r.git_sha = json_str(j, "git_sha");
  r.nnz = json_u64(j, "nnz");
  r.iterations = static_cast<std::size_t>(json_u64(j, "iters"));
  r.seconds = json_num(j, "seconds");
  r.ns_per_nnz = json_num(j, "ns_per_nnz");
  r.bytes_per_nnz = json_num(j, "bytes_per_nnz");
  if (const Json* roof = j.find("roofline");
      roof != nullptr && roof->is_object()) {
    r.frac_roofline = json_num(*roof, "frac");
  }
  if (const Json* samples = j.find("samples_ns");
      samples != nullptr && samples->is_array()) {
    r.samples_ns.reserve(samples->size());
    for (std::size_t i = 0; i < samples->size(); ++i) {
      // Non-finite samples serialize as null (see json.hpp); treating
      // them as 0 would fabricate impossibly fast iterations.
      const Json& e = samples->at(i);
      if (!e.is_number()) {
        continue;
      }
      const double s = e.as_double();
      if (std::isfinite(s)) {
        r.samples_ns.push_back(s);
      }
    }
  }
  if (r.matrix.empty() || r.format.empty()) {
    return false;
  }
  *out = std::move(r);
  return true;
}

std::vector<LedgerRecord> read_ledger(const std::string& path,
                                      std::size_t* bad_lines) {
  std::vector<LedgerRecord> records;
  std::size_t bad = 0;
  std::ifstream f(path);
  if (!f) {
    if (bad_lines != nullptr) {
      *bad_lines = 0;
    }
    return records;
  }
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) {
      continue;
    }
    Json j;
    try {
      j = Json::parse(line);
    } catch (const Error&) {
      ++bad;
      continue;
    }
    LedgerRecord r;
    if (parse_ledger_record(j, &r)) {
      records.push_back(std::move(r));
    } else {
      ++bad;
    }
  }
  if (bad_lines != nullptr) {
    *bad_lines = bad;
  }
  return records;
}

void append_ledger(const std::string& path, const Json& record) {
  std::ofstream f(path, std::ios::app);
  if (!f) {
    throw Error("ledger: cannot open " + path + " for append");
  }
  f << record.dump() << '\n';
  f.flush();
}

}  // namespace spc::obs
