// Performance run-ledger: provenance-rich JSONL records of bench cells.
//
// The paper's whole argument is quantitative — ns/nnz deltas between
// formats — and such deltas are fragile: they depend on the machine, the
// ISA tier, the NUMA layout, and run-to-run noise. The ledger gives every
// measurement a durable, self-describing row: a machine fingerprint
// (model, caches, nodes, ISA), the git revision that produced it, the
// full cell coordinates (bench × matrix × format × isa × numa × schedule
// × threads), and — critically — the per-iteration raw samples the
// harness used to historically discard, so statistics (median, CI,
// rank tests) can be recomputed later instead of trusting a single
// pre-aggregated mean. compare.hpp consumes two ledgers and classifies
// each shared cell regressed / improved / neutral.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "spc/obs/json.hpp"

namespace spc::obs {

/// What makes two hosts' numbers incomparable: CPU model, cache sizes,
/// NUMA layout, and the widest ISA tier the machine runs. Embedded
/// verbatim in every ledger record (and printed by bench/machine_report)
/// so runs from different machines are never compared silently.
struct MachineFingerprint {
  std::string cpu_model;        ///< /proc/cpuinfo "model name" ("" unknown)
  std::size_t cpus = 0;         ///< logical cpu count
  std::size_t numa_nodes = 1;   ///< NUMA node count
  std::size_t llc_bytes = 0;    ///< one LLC instance
  std::size_t llc_instances = 1;
  std::size_t l2_bytes = 0;
  std::string isa;              ///< detected tier name ("scalar", "avx2", ...)
  std::string hostname;

  /// Stable JSON block (insertion-ordered keys) for embedding.
  Json to_json() const;

  /// 16-hex-digit FNV-1a over the canonical JSON, *excluding* hostname:
  /// two identically configured hosts may share baselines, two different
  /// CPUs never silently do.
  std::string id() const;

  static MachineFingerprint from_json(const Json& j);
};

/// Fingerprint of the running machine, discovered once per process.
const MachineFingerprint& machine_fingerprint();

/// Git revision baked in at configure time (SPC_GIT_SHA compile
/// definition), overridable at runtime via the SPC_GIT_SHA environment
/// variable; "unknown" when neither is available.
std::string build_git_sha();

/// One parsed ledger row. Pre-ledger SPC_METRICS records (no machine_id /
/// samples_ns) still parse: their sample vector is empty and they carry
/// an empty machine id, which compare.hpp treats as incomparable rather
/// than silently matching.
struct LedgerRecord {
  std::string bench;
  std::string matrix;
  std::string cls;
  std::string set;
  std::string format;
  std::string isa;
  std::string numa;
  std::string schedule;
  std::string tiling = "off";        ///< "on"/"off" (pre-tiling rows: "off")
  std::uint64_t stripe_bytes = 0;    ///< stripe width when tiled (0 untiled)
  std::string tuned = "no";          ///< "yes" when spc::tune chose the cell
  std::uint64_t probe_ns = 0;        ///< tuning cost (0 on cache hit/untuned)
  bool cache_hit = false;            ///< winner came from the tuning cache
  std::size_t threads = 1;

  std::string machine_id;
  std::string git_sha;

  std::uint64_t nnz = 0;
  std::size_t iterations = 0;
  double seconds = 0.0;
  double ns_per_nnz = 0.0;
  double bytes_per_nnz = 0.0;       ///< streamed-bytes model (0 if absent)
  double frac_roofline = 0.0;       ///< fraction of the §II-B bound (0 if absent)
  std::vector<double> samples_ns;   ///< per-iteration wall time, finite only

  /// Cell identity across runs (machine excluded — that is checked
  /// separately and loudly).
  std::string key() const;
};

/// Parses one record object; false when it is not a ledger/metrics row
/// (missing matrix/format). Non-finite sample entries are dropped.
bool parse_ledger_record(const Json& j, LedgerRecord* out);

/// Reads a JSONL ledger; unparseable lines are counted into *bad_lines
/// (when non-null) and skipped, never fatal.
std::vector<LedgerRecord> read_ledger(const std::string& path,
                                      std::size_t* bad_lines = nullptr);

/// Appends one record to a ledger file (creating it if needed): one
/// line, immediately flushed. Throws spc::Error when the file cannot
/// be opened.
void append_ledger(const std::string& path, const Json& record);

}  // namespace spc::obs
