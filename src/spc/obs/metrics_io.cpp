#include "spc/obs/metrics_io.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <iostream>

#include "spc/support/env.hpp"

namespace spc::obs {

namespace {

// Flush the buffer well before it costs real memory; one write(2) per
// ~64 KiB instead of one per record.
constexpr std::size_t kFlushThreshold = 64 * 1024;

struct sigaction g_prev_int;
struct sigaction g_prev_term;
bool g_handlers_installed = false;

}  // namespace

void metrics_sink_signal_relay(int signo) {
  MetricsSink::global().flush_from_signal();
  // Restore the previous disposition and re-deliver, so the process
  // still dies by (or otherwise honors) the signal it received.
  ::sigaction(signo, signo == SIGINT ? &g_prev_int : &g_prev_term, nullptr);
  ::raise(signo);
}

namespace {

void install_signal_flush() {
  if (g_handlers_installed) {
    return;
  }
  g_handlers_installed = true;
  struct sigaction sa;
  sa.sa_handler = &metrics_sink_signal_relay;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;  // one shot; relay restores + re-raises
  ::sigaction(SIGINT, &sa, &g_prev_int);
  ::sigaction(SIGTERM, &sa, &g_prev_term);
}

}  // namespace

MetricsSink& MetricsSink::global() {
  // Deliberately leaked: the signal handler and the atexit flush may
  // fire at any point during shutdown, and a destroyed mutex would turn
  // a clean exit into UB. The atexit hook replaces the destructor's
  // flush+close for the normal-exit path.
  static MetricsSink* s = [] {
    auto* sink = new MetricsSink;
    std::atexit([] { MetricsSink::global().flush(); });
    return sink;
  }();
  return *s;
}

MetricsSink::MetricsSink() {
  const auto path = env_str("SPC_METRICS");
  if (!path) {
    return;
  }
  open_path(*path, /*truncate=*/false);
}

MetricsSink::~MetricsSink() {
  std::lock_guard<std::mutex> lk(mu_);
  close_locked();
}

void MetricsSink::open_path(const std::string& path, bool truncate) {
  // Append mode: several bench binaries may contribute to one corpus
  // file, and O_APPEND keeps each flushed block atomic w.r.t. offset.
  const int flags =
      O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    std::cerr << "warning: cannot open SPC_METRICS file " << path << "\n";
    return;
  }
  path_ = path;
  enabled_ = true;
  install_signal_flush();
}

void MetricsSink::write(const Json& record) {
  if (!enabled_) {
    return;
  }
  std::string line = record.dump();
  line += '\n';
  std::lock_guard<std::mutex> lk(mu_);
  buf_ += line;
  if (buf_.size() >= kFlushThreshold) {
    flush_locked();
  }
}

void MetricsSink::flush_locked() {
  if (fd_ < 0 || buf_.empty()) {
    return;
  }
  std::size_t off = 0;
  while (off < buf_.size()) {
    const ssize_t n = ::write(fd_, buf_.data() + off, buf_.size() - off);
    if (n <= 0) {
      break;  // disk full / EINTR storm: drop rather than spin
    }
    off += static_cast<std::size_t>(n);
  }
  buf_.clear();
}

void MetricsSink::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  flush_locked();
}

void MetricsSink::flush_from_signal() {
  // try_lock: taking a contended mutex in a signal handler would
  // deadlock against our own interrupted critical section. Losing the
  // buffer in that narrow window beats hanging the dying process.
  if (!mu_.try_lock()) {
    return;
  }
  flush_locked();
  mu_.unlock();
}

std::size_t MetricsSink::buffered_bytes() {
  std::lock_guard<std::mutex> lk(mu_);
  return buf_.size();
}

void MetricsSink::close_locked() {
  flush_locked();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void MetricsSink::open_for_testing(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  close_locked();
  path_.clear();
  enabled_ = false;
  open_path(path, /*truncate=*/true);
}

void MetricsSink::close_for_testing() {
  std::lock_guard<std::mutex> lk(mu_);
  close_locked();
  path_.clear();
  enabled_ = false;
}

}  // namespace spc::obs
