#include "spc/obs/metrics_io.hpp"

#include <cstdlib>
#include <iostream>

namespace spc::obs {

MetricsSink& MetricsSink::global() {
  static MetricsSink s;
  return s;
}

MetricsSink::MetricsSink() {
  const char* path = std::getenv("SPC_METRICS");
  if (path == nullptr || *path == '\0') {
    return;
  }
  path_ = path;
  // Append: several bench binaries may contribute to one corpus file.
  out_.open(path_, std::ios::app);
  if (!out_) {
    std::cerr << "warning: cannot open SPC_METRICS file " << path_ << "\n";
    return;
  }
  enabled_ = true;
}

void MetricsSink::write(const Json& record) {
  if (!enabled_) {
    return;
  }
  std::string line = record.dump();
  line += '\n';
  std::lock_guard<std::mutex> lk(mu_);
  out_ << line;
  out_.flush();
}

void MetricsSink::open_for_testing(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (out_.is_open()) {
    out_.close();
  }
  path_ = path;
  out_.open(path_, std::ios::trunc);
  enabled_ = static_cast<bool>(out_);
}

void MetricsSink::close_for_testing() {
  std::lock_guard<std::mutex> lk(mu_);
  if (out_.is_open()) {
    out_.close();
  }
  path_.clear();
  enabled_ = false;
}

}  // namespace spc::obs
