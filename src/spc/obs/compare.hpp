// Statistical comparison of ledger sample sets.
//
// A 3% median shift on a 128-sample cell can be a real regression or an
// unlucky draw; a single-number diff cannot tell them apart. This engine
// judges each cell on its raw per-iteration samples with three
// independent checks, all of which must agree before a cell is called
// regressed (or improved):
//   1. effect size   — the median ratio must move past min_effect;
//   2. significance  — a two-sided Mann–Whitney U rank test must reject
//                      "same distribution" at alpha (robust to the
//                      heavy-tailed, non-normal timing distributions);
//   3. separation    — the bootstrap confidence intervals of the two
//                      medians must be disjoint.
// The conjunction is deliberately conservative: an A/A comparison (two
// draws from one distribution) must classify neutral ≥95% of the time
// at the default thresholds, or the regress gate would cry wolf.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "spc/obs/json.hpp"
#include "spc/obs/ledger.hpp"

namespace spc::obs {

/// Percentile bootstrap confidence interval on the median.
struct BootstrapCi {
  double median = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Resamples `samples` with replacement `resamples` times (deterministic
/// seed → reproducible verdicts) and returns the percentile CI at
/// `confidence` (e.g. 0.99 → [0.5%, 99.5%] of the bootstrap medians).
/// Degenerate inputs (size < 2) collapse to lo == hi == median.
BootstrapCi bootstrap_median_ci(const std::vector<double>& samples,
                                int resamples = 1000,
                                double confidence = 0.99,
                                std::uint64_t seed = 0x5eedc1ull);

/// Two-sided Mann–Whitney U p-value (normal approximation with tie
/// correction and continuity correction — exact enough for n >= 8,
/// which min_samples enforces). 1.0 when either side is empty or the
/// pooled sample has zero variance.
double mann_whitney_p(const std::vector<double>& a,
                      const std::vector<double>& b);

enum class Verdict {
  kNeutral,       ///< no confirmed change
  kImproved,      ///< current significantly faster
  kRegressed,     ///< current significantly slower
  kIncomparable,  ///< too few samples / different machines / missing cell
};

std::string verdict_name(Verdict v);

struct CompareThresholds {
  /// Minimum relative median shift to call a change (5% default —
  /// smaller moves are classified neutral even when significant).
  double min_effect = 0.05;
  /// Minimum *absolute* median shift in ns. Sub-microsecond cells can
  /// move 50% from a single cache miss or clock-granularity flip per
  /// iteration — a huge ratio that means nothing. Both floors must be
  /// cleared; on cells where 250 ns exceeds min_effect the absolute
  /// floor dominates, deliberately.
  double min_effect_ns = 250.0;
  /// Mann–Whitney significance level.
  double alpha = 0.01;
  /// Cells with fewer samples on either side are incomparable.
  std::size_t min_samples = 8;
  /// Bootstrap resamples per side.
  int resamples = 1000;
  /// Bootstrap CI confidence.
  double confidence = 0.99;
};

/// Verdict plus everything needed to audit it.
struct CellComparison {
  Verdict verdict = Verdict::kIncomparable;
  double base_median = 0.0;
  double cur_median = 0.0;
  double ratio = 0.0;  ///< cur/base medians; > 1 means slower
  double p_value = 1.0;
  BootstrapCi base_ci;
  BootstrapCi cur_ci;
  std::string note;  ///< why incomparable / which check failed
};

/// Classifies current-vs-baseline sample sets (same unit, e.g. ns per
/// iteration). Non-finite samples are ignored.
CellComparison compare_samples(const std::vector<double>& baseline,
                               const std::vector<double>& current,
                               const CompareThresholds& th = {});

/// One compared ledger cell.
struct LedgerDelta {
  std::string key;
  std::string matrix;
  std::string format;
  std::string isa;
  std::string schedule;
  std::size_t threads = 1;
  double base_ns_per_nnz = 0.0;
  double cur_ns_per_nnz = 0.0;
  CellComparison cmp;
};

/// Whole-ledger verdict: every cell present in both ledgers compared,
/// machine mismatches surfaced loudly, one-sided cells counted.
struct LedgerComparison {
  std::vector<LedgerDelta> cells;
  std::size_t regressed = 0;
  std::size_t improved = 0;
  std::size_t neutral = 0;
  std::size_t incomparable = 0;
  std::size_t baseline_only = 0;  ///< cells with no current counterpart
  std::size_t current_only = 0;   ///< cells with no baseline counterpart
  std::string baseline_machine;   ///< machine id seen in the baseline
  std::string current_machine;    ///< machine id seen in the current run
  bool machine_mismatch = false;  ///< ids differ → cells incomparable

  bool has_regressions() const { return regressed > 0; }

  /// Structured verdict for CI artifacts.
  Json to_json() const;
  /// Human verdict: summary line + per-cell markdown table.
  std::string to_markdown() const;
};

/// Pairs cells by LedgerRecord::key() and classifies each. Records
/// sharing a key within one ledger pool their samples (more evidence,
/// not an error). Cells whose machine ids differ — or records predating
/// the ledger, which carry none — are classified kIncomparable, never
/// silently compared.
LedgerComparison compare_ledgers(const std::vector<LedgerRecord>& baseline,
                                 const std::vector<LedgerRecord>& current,
                                 const CompareThresholds& th = {});

}  // namespace spc::obs
