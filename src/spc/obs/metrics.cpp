#include "spc/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace spc::obs {

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& s : shards_) {
    s.v.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t LatencyHisto::count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHisto::sum_ns() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHisto::mean_ns() const {
  const std::uint64_t n = count();
  return n ? static_cast<double>(sum_ns()) / static_cast<double>(n) : 0.0;
}

std::uint64_t LatencyHisto::bucket_count(std::size_t b) const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.bins[b].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHisto::quantile_upper_ns(double q) const {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= rank) {
      return b + 1 < kBuckets ? bucket_lower_ns(b + 1)
                              : ~std::uint64_t{0};
    }
  }
  return ~std::uint64_t{0};
}

void LatencyHisto::reset() {
  for (auto& s : shards_) {
    for (auto& bin : s.bins) {
      bin.store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return gauges_[name];
}

LatencyHisto& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return histograms_[name];
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c.value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g.value();
  }
  for (const auto& [name, h] : histograms_) {
    HistoSummary s;
    s.count = h.count();
    s.mean_ns = h.mean_ns();
    s.p50_upper_ns = h.quantile_upper_ns(0.5);
    s.p99_upper_ns = h.quantile_upper_ns(0.99);
    snap.histograms[name] = s;
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) {
    (void)name;
    c.reset();
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h.reset();
  }
}

}  // namespace spc::obs
