#include "spc/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "spc/support/error.hpp"

namespace spc::obs {

void json_append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

Json& Json::set(std::string key, Json v) {
  SPC_CHECK_MSG(type_ == Type::kObject, "Json::set on non-object");
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : obj_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void Json::push(Json v) {
  SPC_CHECK_MSG(type_ == Type::kArray, "Json::push on non-array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return arr_.size();
    case Type::kObject:
      return obj_.size();
    default:
      return 0;
  }
}

const Json& Json::at(std::size_t i) const {
  SPC_CHECK_MSG(type_ == Type::kArray && i < arr_.size(),
                "Json::at out of range");
  return arr_[i];
}

double Json::as_double(double dflt) const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(i_);
    case Type::kUint:
      return static_cast<double>(u_);
    case Type::kDouble:
      return d_;
    default:
      return dflt;
  }
}

std::uint64_t Json::as_u64(std::uint64_t dflt) const {
  switch (type_) {
    case Type::kInt:
      return i_ >= 0 ? static_cast<std::uint64_t>(i_) : dflt;
    case Type::kUint:
      return u_;
    case Type::kDouble:
      return d_ >= 0.0 ? static_cast<std::uint64_t>(d_) : dflt;
    default:
      return dflt;
  }
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += b_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[24];
      const auto r = std::to_chars(buf, buf + sizeof(buf), i_);
      out.append(buf, r.ptr);
      break;
    }
    case Type::kUint: {
      char buf[24];
      const auto r = std::to_chars(buf, buf + sizeof(buf), u_);
      out.append(buf, r.ptr);
      break;
    }
    case Type::kDouble: {
      if (!std::isfinite(d_)) {
        out += "null";  // JSON has no inf/nan
        break;
      }
      char buf[32];
      const auto r = std::to_chars(buf, buf + sizeof(buf), d_);
      out.append(buf, r.ptr);
      break;
    }
    case Type::kString:
      out += '"';
      json_append_escaped(out, str_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) {
          out += ',';
        }
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) {
          out += ',';
        }
        first = false;
        out += '"';
        json_append_escaped(out, k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) {
      fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
    }
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Json(true);
        }
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) {
          return Json(false);
        }
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) {
          return Json();
        }
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) {
        fail("unterminated string");
      }
      const char c = s_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        fail("unterminated escape");
      }
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // ASCII decodes exactly; anything wider is replaced. Our own
          // writer only emits \u for control characters.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool is_float = false;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("bad number");
    }
    if (!is_float) {
      if (tok[0] == '-') {
        std::int64_t v = 0;
        const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (r.ec == std::errc() && r.ptr == tok.data() + tok.size()) {
          return Json(v);
        }
      } else {
        std::uint64_t v = 0;
        const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (r.ec == std::errc() && r.ptr == tok.data() + tok.size()) {
          return Json(v);
        }
      }
    }
    double d = 0.0;
    const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (r.ec != std::errc() || r.ptr != tok.data() + tok.size()) {
      fail("bad number");
    }
    return Json(d);
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}'");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace spc::obs
