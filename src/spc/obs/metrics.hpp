// Structured-metrics registry for the SpMV runtime and bench harness.
//
// Three instrument kinds, all safe to touch from any thread with no lock
// on the hot path:
//  * Counter      — monotonically increasing u64 (events, bytes, runs);
//  * Gauge        — last-written double (configuration echoes, ratios);
//  * LatencyHisto — fixed log2-bucket nanosecond histogram (span costs).
//
// Counters and histograms are sharded: each thread writes a relaxed
// atomic in its own cache-line-padded slot, and values are only summed
// across shards at scrape time (value() / Registry::snapshot()). The
// paper argues its formats through per-event cost accounting (§VII);
// this registry is what later PRs hang those accounts on.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "spc/support/types.hpp"

namespace spc::obs {

namespace detail {

/// Number of per-thread shards. Threads hash onto shards, so two threads
/// may share one — correctness is unaffected (slots stay atomic), only
/// contention grows past this many concurrent writers.
inline constexpr std::size_t kShards = 16;

/// Stable shard slot for the calling thread.
std::size_t shard_index();

struct alignas(kCacheLineBytes) PaddedAtomicU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards (scrape-time aggregation).
  std::uint64_t value() const;

  void reset();

 private:
  std::array<detail::PaddedAtomicU64, detail::kShards> shards_;
};

/// Last-writer-wins double value.
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket latency histogram over nanoseconds. Bucket b collects
/// samples whose bit width is b, i.e. [2^(b-1), 2^b); bucket 0 holds
/// exact zeros. 48 buckets cover ~1.6 days, far beyond any span here.
class LatencyHisto {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t ns) {
    const std::size_t b =
        std::min<std::size_t>(std::bit_width(ns), kBuckets - 1);
    Shard& s = shards_[detail::shard_index()];
    s.bins[b].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum_ns() const;
  double mean_ns() const;
  std::uint64_t bucket_count(std::size_t b) const;

  /// Upper edge of the bucket containing quantile q (q in [0,1]);
  /// 0 when the histogram is empty.
  std::uint64_t quantile_upper_ns(double q) const;

  /// Inclusive lower edge of bucket b.
  static std::uint64_t bucket_lower_ns(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void reset();

 private:
  struct alignas(kCacheLineBytes) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> bins{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, detail::kShards> shards_;
};

/// Process-wide named-instrument registry. Lookup takes a mutex — cache
/// the returned reference (it stays valid for the registry's lifetime)
/// and do the hot-path work through it.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHisto& histogram(const std::string& name);

  struct HistoSummary {
    std::uint64_t count = 0;
    double mean_ns = 0.0;
    std::uint64_t p50_upper_ns = 0;
    std::uint64_t p99_upper_ns = 0;
  };

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistoSummary> histograms;
  };

  /// Aggregates every shard of every instrument (the scrape).
  Snapshot snapshot() const;

  /// Zeroes counters and histograms (gauges keep their last value).
  /// Intended for tests and between-experiment resets.
  void reset();

 private:
  mutable std::mutex mu_;
  // node-based maps: references stay valid across later insertions.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHisto> histograms_;
};

}  // namespace spc::obs
