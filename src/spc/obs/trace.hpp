// Phase tracer: nested spans serialized as Chrome trace_event JSON.
//
// Spans mark the harness phases (read -> encode -> partition -> warmup ->
// timed iterations) and nest per thread. Enabled by SPC_TRACE=<path>;
// when disabled, a span costs one relaxed load and nothing else, so
// instrumentation can stay in place permanently.
//
// Each thread appends completed spans to its own buffer (no lock, no
// cross-thread sharing); flush() — called explicitly or by the global
// tracer's destructor at process exit — merges the buffers and writes
// one {"traceEvents":[...]} document loadable by chrome://tracing and
// https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace spc::obs {

class Tracer {
 public:
  /// Process tracer; enabled iff SPC_TRACE was set at first use.
  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opens a span on the calling thread. `name` is copied.
  void begin(std::string_view name);
  /// Closes the innermost open span on the calling thread.
  void end();
  /// Zero-duration marker event.
  void instant(std::string_view name);

  /// Merges all thread buffers and (re)writes the output file. Safe to
  /// call repeatedly; callers must ensure no thread is inside begin/end
  /// concurrently (the harness flushes at phase boundaries / exit).
  void flush();

  /// Test hooks: route output to `path` / drop buffered events.
  void enable_for_testing(const std::string& path);
  void disable_for_testing();

  ~Tracer();

 private:
  struct Event {
    std::string name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    std::uint32_t tid;
    char ph;  ///< 'X' complete span, 'i' instant
  };
  struct Open {
    std::string name;
    std::uint64_t start_ns;
  };
  struct ThreadBuf {
    std::uint32_t tid = 0;
    std::vector<Open> stack;
    std::vector<Event> events;
  };

  Tracer();
  ThreadBuf& local();

  std::atomic<bool> enabled_{false};
  /// Bumped whenever buffers are discarded (test hooks); threads holding
  /// a stale thread-local buffer pointer re-register on next use.
  std::atomic<std::uint64_t> epoch_{0};
  std::uint64_t origin_ns_ = 0;
  std::string path_;
  std::mutex mu_;  ///< guards bufs_ registration, path_, and flush
  std::uint32_t next_tid_ = 0;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

/// RAII span. The enabled check is hoisted into the constructor so a
/// disabled tracer costs a single branch per scope.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name)
      : active_(Tracer::global().enabled()) {
    if (active_) {
      Tracer::global().begin(name);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (active_) {
      Tracer::global().end();
    }
  }

 private:
  bool active_;
};

}  // namespace spc::obs
