#include "spc/obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "spc/obs/json.hpp"
#include "spc/support/env.hpp"
#include "spc/support/timing.hpp"

namespace spc::obs {

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

Tracer::Tracer() {
  if (const auto path = env_str("SPC_TRACE")) {
    path_ = *path;
    origin_ns_ = now_ns();
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracer::~Tracer() {
  if (enabled()) {
    flush();
  }
}

Tracer::ThreadBuf& Tracer::local() {
  thread_local ThreadBuf* buf = nullptr;
  thread_local std::uint64_t seen_epoch = ~std::uint64_t{0};
  const std::uint64_t ep = epoch_.load(std::memory_order_acquire);
  if (buf == nullptr || seen_epoch != ep) {
    auto owned = std::make_unique<ThreadBuf>();
    std::lock_guard<std::mutex> lk(mu_);
    owned->tid = next_tid_++;
    buf = owned.get();
    bufs_.push_back(std::move(owned));
    seen_epoch = ep;
  }
  return *buf;
}

void Tracer::begin(std::string_view name) {
  if (!enabled()) {
    return;
  }
  local().stack.push_back({std::string(name), now_ns()});
}

void Tracer::end() {
  if (!enabled()) {
    return;
  }
  ThreadBuf& b = local();
  if (b.stack.empty()) {
    return;  // unmatched end: drop rather than crash the harness
  }
  Open span = std::move(b.stack.back());
  b.stack.pop_back();
  const std::uint64_t now = now_ns();
  b.events.push_back({std::move(span.name), span.start_ns,
                      now - std::min(now, span.start_ns), b.tid, 'X'});
}

void Tracer::instant(std::string_view name) {
  if (!enabled()) {
    return;
  }
  ThreadBuf& b = local();
  b.events.push_back({std::string(name), now_ns(), 0, b.tid, 'i'});
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (path_.empty()) {
    return;
  }
  // Gather events, materializing still-open spans with a duration up to
  // now (they stay on their stacks; the file is rewritten wholesale, so
  // nothing duplicates across repeated flushes).
  const std::uint64_t now = now_ns();
  std::vector<Event> events;
  for (const auto& b : bufs_) {
    events.insert(events.end(), b->events.begin(), b->events.end());
    for (const Open& open : b->stack) {
      events.push_back({open.name, open.start_ns,
                        now - std::min(now, open.start_ns), b->tid, 'X'});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.start_ns < b.start_ns;
            });

  std::ofstream f(path_);
  if (!f) {
    std::cerr << "warning: cannot write trace file " << path_ << "\n";
    return;
  }
  f << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::string buf;
  bool first = true;
  for (const Event& e : events) {
    buf.clear();
    if (!first) {
      buf += ',';
    }
    first = false;
    buf += "\n{\"name\":\"";
    json_append_escaped(buf, e.name);
    buf += "\",\"ph\":\"";
    buf += e.ph;
    buf += "\",\"ts\":";
    buf += std::to_string(
        static_cast<double>(e.start_ns - std::min(e.start_ns, origin_ns_)) /
        1e3);
    if (e.ph == 'X') {
      buf += ",\"dur\":";
      buf += std::to_string(static_cast<double>(e.dur_ns) / 1e3);
    } else {
      buf += ",\"s\":\"t\"";
    }
    buf += ",\"pid\":0,\"tid\":";
    buf += std::to_string(e.tid);
    buf += '}';
    f << buf;
  }
  f << "\n]}\n";
}

void Tracer::enable_for_testing(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  bufs_.clear();
  next_tid_ = 0;
  path_ = path;
  origin_ns_ = now_ns();
  epoch_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable_for_testing() {
  std::lock_guard<std::mutex> lk(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  bufs_.clear();
  next_tid_ = 0;
  path_.clear();
  epoch_.fetch_add(1, std::memory_order_release);
}

}  // namespace spc::obs
