// Minimal JSON value: build, serialize, parse.
//
// Just enough for the obs subsystem — JSONL metrics records, Chrome
// trace files, and the ledger/profile_report readers. Objects preserve
// insertion order; integers round-trip exactly; doubles use
// shortest-round-trip formatting. Not a general-purpose JSON library.
//
// Non-finite doubles: JSON has no NaN/Inf literal, so a non-finite
// value serializes as an explicit `null` (never "nan"/"inf" garbage a
// strict reader would reject). Degenerate bench cells produce these —
// e.g. a 0/0 imbalance — and a ledger line must stay machine-parseable
// regardless. Readers see such fields as is_null(), and as_double's
// default argument decides their numeric stand-in.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spc::obs {

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
void json_append_escaped(std::string& out, std::string_view s);

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), b_(b) {}
  Json(int v) : type_(Type::kInt), i_(v) {}
  Json(std::int64_t v) : type_(Type::kInt), i_(v) {}
  Json(std::uint64_t v) : type_(Type::kUint), u_(v) {}
  /// NaN/Inf are stored as given but serialize as `null` (see above).
  Json(double v) : type_(Type::kDouble), d_(v) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Object: appends/overwrites a key. Returns *this for chaining.
  Json& set(std::string key, Json v);
  /// Object: member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Array: appends an element.
  void push(Json v);

  /// Array/object element count; 0 otherwise.
  std::size_t size() const;
  /// Array element access (unchecked type, checked bounds).
  const Json& at(std::size_t i) const;
  /// Object members in insertion order.
  const std::vector<std::pair<std::string, Json>>& items() const {
    return obj_;
  }

  bool as_bool(bool dflt = false) const {
    return type_ == Type::kBool ? b_ : dflt;
  }
  double as_double(double dflt = 0.0) const;
  std::uint64_t as_u64(std::uint64_t dflt = 0) const;
  const std::string& as_string() const { return str_; }

  /// Compact single-line serialization.
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parses a complete JSON document; throws spc::ParseError on garbage.
  static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool b_ = false;
  std::int64_t i_ = 0;
  std::uint64_t u_ = 0;
  double d_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace spc::obs
