#include "spc/obs/perf_counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "spc/support/env.hpp"

namespace spc::obs {

CounterReadings& CounterReadings::operator+=(const CounterReadings& o) {
  if (!o.available) {
    available = false;
    if (reason.empty()) {
      reason = o.reason;
    }
  }
  cycles += o.cycles;
  instructions += o.instructions;
  llc_loads += o.llc_loads;
  llc_misses += o.llc_misses;
  stalled_cycles += o.stalled_cycles;
  has_llc = has_llc && o.has_llc;
  has_stalled = has_stalled && o.has_stalled;
  scale = scale > o.scale ? scale : o.scale;
  return *this;
}

bool counters_enabled() {
  return env_flag("SPC_COUNTERS").value_or(true);
}

namespace {

std::atomic<PerfOpenFn> g_open_hook{nullptr};

}  // namespace

void set_perf_open_for_testing(PerfOpenFn fn) {
  g_open_hook.store(fn, std::memory_order_release);
}

#ifdef __linux__

namespace {

long real_perf_open(void* attr, int pid, int cpu, int group_fd,
                    unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

long perf_open(perf_event_attr* attr, int pid, int cpu, int group_fd,
               unsigned long flags) {
  const PerfOpenFn hook = g_open_hook.load(std::memory_order_acquire);
  return (hook != nullptr ? hook : real_perf_open)(attr, pid, cpu, group_fd,
                                                   flags);
}

int paranoid_level() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
  if (f == nullptr) {
    return -100;  // unknown
  }
  int v = -100;
  if (std::fscanf(f, "%d", &v) != 1) {
    v = -100;
  }
  std::fclose(f);
  return v;
}

struct EventSpec {
  const char* name;
  std::uint32_t type;
  std::uint64_t config;
  bool required;  ///< session is unavailable without it
};

constexpr std::uint64_t cache_cfg(std::uint64_t cache, std::uint64_t op,
                                  std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

// Logical event order; fields of CounterReadings map 1:1.
const EventSpec kEvents[] = {
    {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, true},
    {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, true},
    {"llc-loads", PERF_TYPE_HW_CACHE,
     cache_cfg(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
               PERF_COUNT_HW_CACHE_RESULT_ACCESS),
     false},
    {"llc-load-misses", PERF_TYPE_HW_CACHE,
     cache_cfg(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
               PERF_COUNT_HW_CACHE_RESULT_MISS),
     false},
    {"stalled-cycles-backend", PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_STALLED_CYCLES_BACKEND, false},
};
constexpr int kNumEvents = static_cast<int>(std::size(kEvents));
static_assert(kNumEvents <= PerfSession::kMaxEvents);

}  // namespace

PerfSession::PerfSession() {
  for (int i = 0; i < kMaxEvents; ++i) {
    fds_[i] = -1;
    open_order_[i] = -1;
  }
  int leader = -1;
  for (int i = 0; i < kNumEvents; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = kEvents[i].type;
    attr.size = sizeof(attr);
    attr.config = kEvents[i].config;
    attr.disabled = leader == -1 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const long fd =
        perf_open(&attr, /*pid=*/0, /*cpu=*/-1, leader, /*flags=*/0);
    if (fd < 0) {
      if (kEvents[i].required) {
        reason_ = std::string("perf_event_open(") + kEvents[i].name +
                  "): " + std::strerror(errno) +
                  " (perf_event_paranoid=" +
                  std::to_string(paranoid_level()) + ")";
        for (int j = 0; j < nopen_; ++j) {
          ::close(fds_[j]);
          fds_[j] = -1;
        }
        nopen_ = 0;
        return;
      }
      continue;  // optional event: run without it
    }
    fds_[nopen_] = static_cast<int>(fd);
    open_order_[nopen_] = i;
    ++nopen_;
    if (leader == -1) {
      leader = static_cast<int>(fd);
    }
  }
  available_ = nopen_ > 0;
}

PerfSession::~PerfSession() {
  for (int i = 0; i < nopen_; ++i) {
    ::close(fds_[i]);
  }
}

void PerfSession::start() {
  if (!available_) {
    return;
  }
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfSession::stop() {
  if (!available_) {
    return;
  }
  ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

CounterReadings PerfSession::read() const {
  CounterReadings r;
  if (!available_) {
    r.reason = reason_.empty() ? "perf counters unavailable" : reason_;
    return r;
  }
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[nr].
  std::uint64_t buf[3 + kMaxEvents] = {0};
  const ssize_t want =
      static_cast<ssize_t>((3 + static_cast<std::size_t>(nopen_)) *
                           sizeof(std::uint64_t));
  const ssize_t got = ::read(fds_[0], buf, static_cast<std::size_t>(want));
  if (got < want) {
    r.reason = "perf group read failed";
    return r;
  }
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  const double scale =
      running > 0 ? static_cast<double>(enabled) / static_cast<double>(running)
                  : 1.0;
  r.available = true;
  r.scale = scale;
  for (std::uint64_t slot = 0;
       slot < nr && slot < static_cast<std::uint64_t>(nopen_); ++slot) {
    const auto value = static_cast<std::uint64_t>(
        static_cast<double>(buf[3 + slot]) * scale);
    switch (open_order_[slot]) {
      case 0:
        r.cycles = value;
        break;
      case 1:
        r.instructions = value;
        break;
      case 2:
        r.llc_loads = value;
        break;
      case 3:
        r.llc_misses = value;
        r.has_llc = true;
        break;
      case 4:
        r.stalled_cycles = value;
        r.has_stalled = true;
        break;
      default:
        break;
    }
  }
  return r;
}

#else  // !__linux__

PerfSession::PerfSession() {
  for (int i = 0; i < kMaxEvents; ++i) {
    fds_[i] = -1;
    open_order_[i] = -1;
  }
  reason_ = "perf_event_open unsupported on this platform";
}

PerfSession::~PerfSession() = default;

void PerfSession::start() {}
void PerfSession::stop() {}

CounterReadings PerfSession::read() const {
  CounterReadings r;
  r.reason = reason_;
  return r;
}

#endif  // __linux__

}  // namespace spc::obs
