// JSONL metrics sink: one JSON object per line, appended to the file
// named by SPC_METRICS. The bench harness emits one record per
// (matrix, format, thread-count) cell; profile_report and the run-ledger
// tools read them back.
//
// Writes are buffered (records can now carry per-iteration sample
// arrays, and a flush syscall per cell would serialize the bench on the
// filesystem) and drained to an O_APPEND fd:
//   * when the buffer passes a size threshold,
//   * at process exit (the singleton's destructor),
//   * on SIGINT / SIGTERM — an interrupted bench run keeps every
//     completed cell; the signal is then re-raised with its previous
//     disposition so kill-by-signal semantics are preserved.
#pragma once

#include <mutex>
#include <string>

#include "spc/obs/json.hpp"

namespace spc::obs {

class MetricsSink {
 public:
  /// Process sink; enabled iff SPC_METRICS was set at first use.
  static MetricsSink& global();

  ~MetricsSink();

  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  /// Serializes `record` as one buffered line. Thread-safe. No-op when
  /// disabled.
  void write(const Json& record);

  /// Drains the buffer to the file. Called automatically at the size
  /// threshold, at exit, and from the signal handler.
  void flush();

  /// Bytes currently buffered (tests).
  std::size_t buffered_bytes();

  /// Test hooks: route output to `path` (truncating) / stop writing.
  void open_for_testing(const std::string& path);
  void close_for_testing();

 private:
  MetricsSink();

  void open_path(const std::string& path, bool truncate);
  void close_locked();
  void flush_locked();

  /// Async-signal path: best-effort try_lock + raw write(2); skips (and
  /// loses at most one buffer) if the lock is held mid-crash.
  void flush_from_signal();
  friend void metrics_sink_signal_relay(int signo);

  std::mutex mu_;
  std::string buf_;
  int fd_ = -1;
  std::string path_;
  bool enabled_ = false;
};

}  // namespace spc::obs
