// JSONL metrics sink: one JSON object per line, appended to the file
// named by SPC_METRICS. The bench harness emits one record per
// (matrix, format, thread-count) cell; profile_report reads them back.
#pragma once

#include <fstream>
#include <mutex>
#include <string>

#include "spc/obs/json.hpp"

namespace spc::obs {

class MetricsSink {
 public:
  /// Process sink; enabled iff SPC_METRICS was set at first use.
  static MetricsSink& global();

  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  /// Serializes `record` as one line and flushes. Thread-safe. No-op
  /// when disabled.
  void write(const Json& record);

  /// Test hooks: route output to `path` (truncating) / stop writing.
  void open_for_testing(const std::string& path);
  void close_for_testing();

 private:
  MetricsSink();

  std::mutex mu_;
  std::ofstream out_;
  std::string path_;
  bool enabled_ = false;
};

}  // namespace spc::obs
