// Hardware performance counters via perf_event_open.
//
// The paper's argument (§VII, Figs. 7-8) rests on per-kernel cycle,
// instruction, and cache-miss accounting; this wraps one counter group
// per thread — cycles, instructions, LLC loads, LLC misses, stalled
// backend cycles — so the harness can derive IPC, cycles/nnz, and
// misses/nnz for every (matrix, format, threads) cell.
//
// Counters are best-effort: when /proc/sys/kernel/perf_event_paranoid,
// a container seccomp policy, or the platform forbids them, a session
// simply reports available() == false with a reason string, and the
// harness downgrades to wall-clock-only metrics — never an error.
// SPC_COUNTERS=0 disables them outright.
#pragma once

#include <cstdint>
#include <string>

namespace spc::obs {

/// Counter totals for one measured region (or a sum over threads).
/// The multiplexing scale (time_enabled / time_running) is already
/// applied to the raw values.
struct CounterReadings {
  bool available = false;
  std::string reason;  ///< why unavailable (empty when available)

  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t stalled_cycles = 0;
  bool has_llc = false;      ///< LLC load/miss events opened
  bool has_stalled = false;  ///< stalled-cycles event opened
  double scale = 1.0;        ///< worst multiplex scale seen (1 = never off-PMU)

  double ipc() const {
    return cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }

  /// Sums values; the result is available only if both sides were.
  CounterReadings& operator+=(const CounterReadings& o);
};

/// True unless SPC_COUNTERS=0. Gates session creation (ThreadPool
/// workers and the harness's serial path check this).
bool counters_enabled();

/// Test hook: replaces the perf_event_open syscall. The replacement
/// receives (struct perf_event_attr*, pid, cpu, group_fd, flags) and
/// returns an fd or -1 with errno set. Pass nullptr to restore the real
/// syscall. Affects sessions created after the call.
using PerfOpenFn = long (*)(void* attr, int pid, int cpu, int group_fd,
                            unsigned long flags);
void set_perf_open_for_testing(PerfOpenFn fn);

/// One counter group attached to the calling thread. Create on the
/// thread to be measured; start/stop/read may be driven from any thread
/// (they act on the fds, not the caller).
class PerfSession {
 public:
  PerfSession();
  ~PerfSession();
  PerfSession(const PerfSession&) = delete;
  PerfSession& operator=(const PerfSession&) = delete;

  bool available() const { return available_; }
  const std::string& reason() const { return reason_; }

  /// Zeroes and enables the group.
  void start();
  /// Freezes the group (call before read for stable values).
  void stop();
  /// Reads and scales the group counts since the last start().
  CounterReadings read() const;

  static constexpr int kMaxEvents = 5;

 private:
  int fds_[kMaxEvents];        ///< -1 when the event failed to open
  int nopen_ = 0;              ///< events actually in the group
  int open_order_[kMaxEvents];  ///< logical event index per group slot
  bool available_ = false;
  std::string reason_;
};

}  // namespace spc::obs
