#include "spc/obs/compare.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "spc/support/rng.hpp"
#include "spc/support/stats.hpp"
#include "spc/support/strutil.hpp"

namespace spc::obs {

namespace {

std::vector<double> finite_only(const std::vector<double>& v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (const double x : v) {
    if (std::isfinite(x)) {
      out.push_back(x);
    }
  }
  return out;
}

}  // namespace

BootstrapCi bootstrap_median_ci(const std::vector<double>& samples,
                                int resamples, double confidence,
                                std::uint64_t seed) {
  BootstrapCi ci;
  ci.median = median(samples);
  ci.lo = ci.hi = ci.median;
  const std::size_t n = samples.size();
  if (n < 2 || resamples < 2) {
    return ci;
  }
  // Seed folds in the sample count so two differently-sized sets never
  // share a resampling sequence, but verdicts stay run-to-run stable.
  Rng rng(seed ^ (static_cast<std::uint64_t>(n) << 32));
  std::vector<double> meds(static_cast<std::size_t>(resamples));
  std::vector<double> draw(n);
  for (auto& m : meds) {
    for (std::size_t i = 0; i < n; ++i) {
      draw[i] = samples[rng.next_below(n)];
    }
    m = median(draw);
  }
  std::sort(meds.begin(), meds.end());
  confidence = std::clamp(confidence, 0.0, 1.0);
  const double tail = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(meds.size() - 1) + 0.5);
    return meds[std::min(idx, meds.size() - 1)];
  };
  ci.lo = at(tail);
  ci.hi = at(1.0 - tail);
  return ci;
}

double mann_whitney_p(const std::vector<double>& a,
                      const std::vector<double>& b) {
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 == 0 || n2 == 0) {
    return 1.0;
  }
  // Pool, sort, assign average ranks to ties.
  struct Tagged {
    double v;
    bool from_a;
  };
  std::vector<Tagged> pool;
  pool.reserve(n1 + n2);
  for (const double v : a) {
    pool.push_back({v, true});
  }
  for (const double v : b) {
    pool.push_back({v, false});
  }
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& x, const Tagged& y) { return x.v < y.v; });

  const double n = static_cast<double>(n1 + n2);
  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum of t^3 - t over tie groups
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].v == pool[i].v) {
      ++j;
    }
    // Ranks are 1-based; the tie group [i, j) shares the average rank.
    const double avg_rank = static_cast<double>(i + 1 + j) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].from_a) {
        rank_sum_a += avg_rank;
      }
    }
    const double t = static_cast<double>(j - i);
    tie_term += t * t * t - t;
    i = j;
  }

  const double u1 =
      rank_sum_a - static_cast<double>(n1) * (static_cast<double>(n1) + 1) / 2.0;
  const double mean_u = static_cast<double>(n1) * static_cast<double>(n2) / 2.0;
  const double var_u = static_cast<double>(n1) * static_cast<double>(n2) /
                       12.0 *
                       ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    return 1.0;  // all values tied — indistinguishable
  }
  // Continuity-corrected two-sided normal approximation.
  const double z =
      std::max(0.0, std::abs(u1 - mean_u) - 0.5) / std::sqrt(var_u);
  return std::min(1.0, std::erfc(z / std::sqrt(2.0)));
}

std::string verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kNeutral:
      return "neutral";
    case Verdict::kImproved:
      return "improved";
    case Verdict::kRegressed:
      return "regressed";
    case Verdict::kIncomparable:
      return "incomparable";
  }
  return "?";
}

CellComparison compare_samples(const std::vector<double>& baseline,
                               const std::vector<double>& current,
                               const CompareThresholds& th) {
  CellComparison c;
  const std::vector<double> base = finite_only(baseline);
  const std::vector<double> cur = finite_only(current);
  if (base.size() < th.min_samples || cur.size() < th.min_samples) {
    c.note = "too few samples (" + std::to_string(base.size()) + " vs " +
             std::to_string(cur.size()) + ", need " +
             std::to_string(th.min_samples) + ")";
    return c;
  }
  c.base_median = median(base);
  c.cur_median = median(cur);
  if (c.base_median <= 0.0) {
    c.note = "non-positive baseline median";
    return c;
  }
  c.ratio = c.cur_median / c.base_median;
  c.p_value = mann_whitney_p(base, cur);
  c.base_ci =
      bootstrap_median_ci(base, th.resamples, th.confidence, 0x5eedba5eull);
  c.cur_ci =
      bootstrap_median_ci(cur, th.resamples, th.confidence, 0x5eedcafeull);

  const bool significant = c.p_value < th.alpha;
  const bool abs_effect =
      std::abs(c.cur_median - c.base_median) >= th.min_effect_ns;
  if (c.ratio >= 1.0 + th.min_effect && abs_effect && significant &&
      c.cur_ci.lo > c.base_ci.hi) {
    c.verdict = Verdict::kRegressed;
  } else if (c.ratio <= 1.0 - th.min_effect && abs_effect && significant &&
             c.cur_ci.hi < c.base_ci.lo) {
    c.verdict = Verdict::kImproved;
  } else {
    c.verdict = Verdict::kNeutral;
    if (c.ratio >= 1.0 + th.min_effect || c.ratio <= 1.0 - th.min_effect) {
      c.note = !abs_effect ? "effect below absolute floor"
               : significant ? "effect without CI separation"
                             : "effect without significance";
    }
  }
  return c;
}

namespace {

struct PooledCell {
  const LedgerRecord* first = nullptr;
  std::vector<double> samples_ns;
  std::string machine_id;
  bool machine_conflict = false;
  double ns_per_nnz = 0.0;
  std::size_t records = 0;
};

std::map<std::string, PooledCell> pool_by_key(
    const std::vector<LedgerRecord>& records) {
  std::map<std::string, PooledCell> cells;
  for (const LedgerRecord& r : records) {
    PooledCell& c = cells[r.key()];
    if (c.first == nullptr) {
      c.first = &r;
      c.machine_id = r.machine_id;
    } else if (c.machine_id != r.machine_id) {
      c.machine_conflict = true;
    }
    c.samples_ns.insert(c.samples_ns.end(), r.samples_ns.begin(),
                        r.samples_ns.end());
    c.ns_per_nnz = r.ns_per_nnz;  // latest record wins for display
    ++c.records;
  }
  return cells;
}

}  // namespace

LedgerComparison compare_ledgers(const std::vector<LedgerRecord>& baseline,
                                 const std::vector<LedgerRecord>& current,
                                 const CompareThresholds& th) {
  LedgerComparison out;
  const auto base_cells = pool_by_key(baseline);
  const auto cur_cells = pool_by_key(current);
  if (!baseline.empty()) {
    out.baseline_machine = baseline.front().machine_id;
  }
  if (!current.empty()) {
    out.current_machine = current.front().machine_id;
  }

  for (const auto& [key, base] : base_cells) {
    const auto it = cur_cells.find(key);
    if (it == cur_cells.end()) {
      ++out.baseline_only;
      continue;
    }
    const PooledCell& cur = it->second;

    LedgerDelta d;
    d.key = key;
    d.matrix = base.first->matrix;
    d.format = base.first->format;
    d.isa = base.first->isa;
    d.schedule = base.first->schedule;
    d.threads = base.first->threads;
    d.base_ns_per_nnz = base.ns_per_nnz;
    d.cur_ns_per_nnz = cur.ns_per_nnz;

    if (base.machine_id.empty() || cur.machine_id.empty()) {
      d.cmp.note = "machine fingerprint missing (pre-ledger record?)";
      out.machine_mismatch = true;
    } else if (base.machine_id != cur.machine_id ||
               base.machine_conflict || cur.machine_conflict) {
      d.cmp.note = "machine mismatch (" + base.machine_id + " vs " +
                   cur.machine_id + ")";
      out.machine_mismatch = true;
    } else {
      d.cmp = compare_samples(base.samples_ns, cur.samples_ns, th);
    }

    switch (d.cmp.verdict) {
      case Verdict::kRegressed:
        ++out.regressed;
        break;
      case Verdict::kImproved:
        ++out.improved;
        break;
      case Verdict::kNeutral:
        ++out.neutral;
        break;
      case Verdict::kIncomparable:
        ++out.incomparable;
        break;
    }
    out.cells.push_back(std::move(d));
  }
  for (const auto& [key, cur] : cur_cells) {
    (void)cur;
    if (base_cells.find(key) == base_cells.end()) {
      ++out.current_only;
    }
  }

  // Regressions first, then by how bad, so the verdict leads with the
  // worst news.
  std::sort(out.cells.begin(), out.cells.end(),
            [](const LedgerDelta& a, const LedgerDelta& b) {
              const auto rank = [](const LedgerDelta& d) {
                switch (d.cmp.verdict) {
                  case Verdict::kRegressed:
                    return 0;
                  case Verdict::kIncomparable:
                    return 1;
                  case Verdict::kImproved:
                    return 2;
                  case Verdict::kNeutral:
                    return 3;
                }
                return 4;
              };
              if (rank(a) != rank(b)) {
                return rank(a) < rank(b);
              }
              if (a.cmp.ratio != b.cmp.ratio) {
                return a.cmp.ratio > b.cmp.ratio;
              }
              return a.key < b.key;
            });
  return out;
}

Json LedgerComparison::to_json() const {
  Json j = Json::object();
  Json summary = Json::object();
  summary.set("regressed", static_cast<std::uint64_t>(regressed));
  summary.set("improved", static_cast<std::uint64_t>(improved));
  summary.set("neutral", static_cast<std::uint64_t>(neutral));
  summary.set("incomparable", static_cast<std::uint64_t>(incomparable));
  summary.set("baseline_only", static_cast<std::uint64_t>(baseline_only));
  summary.set("current_only", static_cast<std::uint64_t>(current_only));
  summary.set("baseline_machine", baseline_machine);
  summary.set("current_machine", current_machine);
  summary.set("machine_mismatch", machine_mismatch);
  j.set("summary", std::move(summary));

  Json arr = Json::array();
  for (const LedgerDelta& d : cells) {
    Json c = Json::object();
    c.set("key", d.key);
    c.set("verdict", verdict_name(d.cmp.verdict));
    c.set("base_median_ns", d.cmp.base_median);
    c.set("cur_median_ns", d.cmp.cur_median);
    c.set("ratio", d.cmp.ratio);
    c.set("p_value", d.cmp.p_value);
    Json base_ci = Json::array();
    base_ci.push(d.cmp.base_ci.lo);
    base_ci.push(d.cmp.base_ci.hi);
    c.set("base_ci_ns", std::move(base_ci));
    Json cur_ci = Json::array();
    cur_ci.push(d.cmp.cur_ci.lo);
    cur_ci.push(d.cmp.cur_ci.hi);
    c.set("cur_ci_ns", std::move(cur_ci));
    if (!d.cmp.note.empty()) {
      c.set("note", d.cmp.note);
    }
    arr.push(std::move(c));
  }
  j.set("cells", std::move(arr));
  return j;
}

std::string LedgerComparison::to_markdown() const {
  std::ostringstream os;
  os << "## Regression verdict\n\n";
  os << "**" << regressed << " regressed**, " << improved << " improved, "
     << neutral << " neutral, " << incomparable << " incomparable ("
     << baseline_only << " baseline-only, " << current_only
     << " current-only cells)\n\n";
  if (machine_mismatch) {
    os << "> **warning:** machine fingerprints differ (baseline `"
       << (baseline_machine.empty() ? "?" : baseline_machine)
       << "` vs current `"
       << (current_machine.empty() ? "?" : current_machine)
       << "`); mismatched cells were not compared.\n\n";
  }
  if (cells.empty()) {
    os << "_no shared cells_\n";
    return os.str();
  }
  os << "| cell | verdict | base med (ns) | cur med (ns) | ratio | p "
        "| note |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (const LedgerDelta& d : cells) {
    os << "| `" << d.key << "` | " << verdict_name(d.cmp.verdict) << " | "
       << fmt_fixed(d.cmp.base_median, 1) << " | "
       << fmt_fixed(d.cmp.cur_median, 1) << " | ";
    if (d.cmp.ratio > 0.0) {
      os << fmt_fixed(d.cmp.ratio, 3);
    } else {
      os << "-";
    }
    os << " | ";
    if (d.cmp.verdict == Verdict::kIncomparable) {
      os << "-";
    } else {
      os << fmt_fixed(d.cmp.p_value, 4);
    }
    os << " | " << d.cmp.note << " |\n";
  }
  return os.str();
}

}  // namespace spc::obs
