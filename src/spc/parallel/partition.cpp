#include "spc/parallel/partition.hpp"

#include <algorithm>

#include "spc/support/error.hpp"

namespace spc {

RowPartition partition_rows_by_nnz(const aligned_vector<index_t>& row_ptr,
                                   std::size_t nthreads) {
  SPC_CHECK_MSG(nthreads >= 1, "need at least one thread");
  SPC_CHECK_MSG(!row_ptr.empty(), "row_ptr must have nrows+1 entries");
  const index_t nrows = static_cast<index_t>(row_ptr.size() - 1);
  const usize_t nnz = row_ptr.back();

  RowPartition p;
  p.bounds.resize(nthreads + 1);
  p.bounds[0] = 0;
  for (std::size_t t = 1; t < nthreads; ++t) {
    // First row whose prefix nnz reaches t's ideal share. Compare in the
    // wide type: casting the target down to index_t would wrap for large
    // thread counts on near-2^32-nnz matrices.
    const usize_t target = nnz * t / nthreads;
    const auto it = std::lower_bound(
        row_ptr.begin(), row_ptr.end(), target,
        [](index_t prefix, usize_t tg) {
          return static_cast<usize_t>(prefix) < tg;
        });
    index_t row = static_cast<index_t>(it - row_ptr.begin());
    // lower_bound rounds the boundary up; when a long row straddles the
    // target, the previous boundary can be much closer to the ideal
    // split (and rounding up would leave the right-hand thread empty).
    // Pick whichever side is nearer; ties keep the upper boundary.
    if (row > 0 && row <= nrows) {
      const usize_t above = static_cast<usize_t>(row_ptr[row]) - target;
      const usize_t below = target - static_cast<usize_t>(row_ptr[row - 1]);
      if (below < above) {
        --row;
      }
    }
    row = std::min(row, nrows);
    // Keep bounds monotone even for degenerate matrices.
    p.bounds[t] = std::max(row, p.bounds[t - 1]);
  }
  p.bounds[nthreads] = nrows;
  return p;
}

RowPartition partition_rows_by_nnz(const Triplets& t, std::size_t nthreads) {
  aligned_vector<index_t> row_ptr(t.nrows() + 1, 0);
  for (const Entry& e : t.entries()) {
    ++row_ptr[e.row + 1];
  }
  for (index_t r = 0; r < t.nrows(); ++r) {
    row_ptr[r + 1] += row_ptr[r];
  }
  return partition_rows_by_nnz(row_ptr, nthreads);
}

RowPartition partition_rows_even(index_t nrows, std::size_t nthreads) {
  SPC_CHECK_MSG(nthreads >= 1, "need at least one thread");
  RowPartition p;
  p.bounds.resize(nthreads + 1);
  for (std::size_t t = 0; t <= nthreads; ++t) {
    p.bounds[t] = static_cast<index_t>(
        static_cast<usize_t>(nrows) * t / nthreads);
  }
  return p;
}

double partition_imbalance(const RowPartition& p,
                           const aligned_vector<index_t>& row_ptr) {
  // Degenerate inputs — no partition, no rows, or no non-zeros at all
  // (every thread owns zero nnz) — read as perfectly balanced: there is
  // no work to distribute unevenly. This keeps the result finite where
  // worst/ideal would otherwise be 0/0.
  if (p.nthreads() == 0 || row_ptr.empty() || row_ptr.back() == 0) {
    return 1.0;
  }
  const usize_t nnz = row_ptr.back();
  usize_t worst = 0;
  for (std::size_t t = 0; t < p.nthreads(); ++t) {
    worst = std::max(worst, p.nnz_of(t, row_ptr));
  }
  const double ideal =
      static_cast<double>(nnz) / static_cast<double>(p.nthreads());
  return static_cast<double>(worst) / ideal;
}

}  // namespace spc
