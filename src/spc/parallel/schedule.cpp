#include "spc/parallel/schedule.hpp"

#include <algorithm>

#include "spc/support/env.hpp"
#include "spc/support/error.hpp"
#include "spc/support/strutil.hpp"

namespace spc {

std::string schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kStatic:
      return "static";
    case Schedule::kChunked:
      return "chunked";
    case Schedule::kSteal:
      return "steal";
  }
  return "?";
}

bool parse_schedule(const std::string& name, Schedule* out) {
  const std::string n = to_lower(name);
  for (const Schedule s :
       {Schedule::kStatic, Schedule::kChunked, Schedule::kSteal}) {
    if (schedule_name(s) == n) {
      *out = s;
      return true;
    }
  }
  return false;
}

Schedule schedule_from_env(Schedule fallback) {
  const auto env = env_str("SPC_SCHED");
  if (!env) {
    return fallback;
  }
  Schedule s = fallback;
  if (!parse_schedule(*env, &s)) {
    env_warn_once("SPC_SCHED", *env, "static|chunked|steal");
  }
  return s;
}

usize_t chunk_target_nnz(std::size_t l2_bytes) {
  if (l2_bytes == 0) {
    l2_bytes = 256 * 1024;
  }
  // ~12 matrix bytes per non-zero in CSR (the least compressed of the
  // row-partitioned formats); half the L2 leaves the other half for the
  // gathered x entries and the y stores.
  const usize_t target = static_cast<usize_t>(l2_bytes) / 2 / 12;
  return std::clamp<usize_t>(target, 1024, 512 * 1024);
}

usize_t chunk_nnz_from_env(usize_t fallback) {
  const auto v = env_u64("SPC_CHUNK_NNZ");
  if (!v) {
    return fallback;
  }
  if (*v == 0) {
    env_warn_once("SPC_CHUNK_NNZ", "0", "a positive integer");
    return fallback;
  }
  return static_cast<usize_t>(*v);
}

ChunkPlan plan_chunks(const aligned_vector<index_t>& row_ptr,
                      const RowPartition& threads, usize_t target_nnz) {
  SPC_CHECK_MSG(!row_ptr.empty(), "row_ptr must have nrows+1 entries");
  SPC_CHECK_MSG(target_nnz >= 1, "target_nnz must be >= 1");
  const std::size_t nthreads = threads.nthreads();
  ChunkPlan plan;
  plan.bounds.push_back(threads.nthreads() ? threads.row_begin(0) : 0);
  plan.owner_begin.assign(nthreads + 1, 0);

  aligned_vector<index_t> local;  // rebased row_ptr of one thread range
  for (std::size_t t = 0; t < nthreads; ++t) {
    const index_t rb = threads.row_begin(t);
    const index_t re = threads.row_end(t);
    if (rb >= re) {
      // Empty range (nthreads > nrows): zero chunks for this worker.
      plan.owner_begin[t + 1] = plan.owner_begin[t];
      continue;
    }
    const usize_t nnz_t = static_cast<usize_t>(row_ptr[re]) - row_ptr[rb];
    const std::size_t want =
        static_cast<std::size_t>((nnz_t + target_nnz - 1) / target_nnz);
    const std::size_t k = std::clamp<std::size_t>(
        want, 1, static_cast<std::size_t>(re - rb));
    if (k == 1) {
      plan.bounds.push_back(re);
    } else {
      local.resize(static_cast<std::size_t>(re - rb) + 1);
      for (index_t i = rb; i <= re; ++i) {
        local[i - rb] = row_ptr[i] - row_ptr[rb];
      }
      const RowPartition sub = partition_rows_by_nnz(local, k);
      for (std::size_t c = 0; c < sub.nthreads(); ++c) {
        const index_t end = rb + sub.row_end(c);
        // The sub-partitioner can emit empty sub-ranges on degenerate
        // shapes; dropping them keeps every chunk non-empty in rows
        // (empty chunks would inflate deque traffic for no work).
        if (end > plan.bounds.back()) {
          plan.bounds.push_back(end);
        }
      }
      if (plan.bounds.back() != re) {
        plan.bounds.push_back(re);  // cover trailing empty rows
      }
    }
    plan.owner_begin[t + 1] =
        static_cast<std::uint32_t>(plan.bounds.size() - 1);
  }

  plan.owner.resize(plan.nchunks());
  for (std::size_t t = 0; t < nthreads; ++t) {
    for (std::uint32_t c = plan.owner_begin[t];
         c < plan.owner_begin[t + 1]; ++c) {
      plan.owner[c] = static_cast<std::uint32_t>(t);
    }
  }
  return plan;
}

std::vector<std::vector<std::uint32_t>> steal_victim_order(
    std::size_t nthreads, const std::vector<int>& thread_nodes) {
  std::vector<std::vector<std::uint32_t>> order(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) {
    std::vector<std::uint32_t> same;
    std::vector<std::uint32_t> remote;
    for (std::size_t off = 1; off < nthreads; ++off) {
      const std::size_t v = (t + off) % nthreads;
      const bool near = thread_nodes.size() != nthreads ||
                        thread_nodes[v] == thread_nodes[t];
      (near ? same : remote).push_back(static_cast<std::uint32_t>(v));
    }
    order[t] = std::move(same);
    order[t].insert(order[t].end(), remote.begin(), remote.end());
  }
  return order;
}

}  // namespace spc
