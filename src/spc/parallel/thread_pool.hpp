// Persistent worker pool for multithreaded SpMV.
//
// The paper parallelizes explicitly with pthreads, binds each thread to a
// predefined processor with sched_setaffinity, and schedules threads
// "as close as possible" (§VI-A). This pool reproduces that: workers are
// created once, optionally pinned according to a placement plan, and the
// timed region only pays a dispatch/join handshake — no thread creation.
//
// Observability: every run() records each worker's busy nanoseconds
// (last value and a resettable running total) in a cache-line-padded
// per-worker slot, and each worker attaches an obs::PerfSession
// (perf_event_open group) to itself at startup unless SPC_COUNTERS=0 or
// the platform forbids it. The harness drives counters_start()/
// counters_stop() around timed loops and reads last/total imbalance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "spc/obs/perf_counters.hpp"
#include "spc/support/topology.hpp"
#include "spc/support/types.hpp"

namespace spc {

class ThreadPool {
 public:
  /// Spawns `nthreads` workers. When `cpu_plan` is non-empty, worker i is
  /// pinned to cpu_plan[i % plan.size()]. An empty plan leaves scheduling
  /// to the OS. The constructor returns only after every worker has
  /// finished its startup (pinning + counter attach), so fully_pinned()
  /// and counters_available() are immediately meaningful.
  explicit ThreadPool(std::size_t nthreads,
                      const std::vector<int>& cpu_plan = {});

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// True when every pin request was honoured by the kernel.
  bool fully_pinned() const { return fully_pinned_; }

  /// The cpu each worker was asked to pin to, after the modulo wrap
  /// (-1 per worker when no plan was given). Size == size().
  const std::vector<int>& worker_cpus() const { return worker_cpus_; }

  /// Number of workers whose pin target is already used by an earlier
  /// worker — nonzero when `cpu_plan` wrapped modulo its size and two
  /// workers share a CPU (oversubscription). Also exported as the
  /// `spc.pool.shared_cpu_workers` gauge so double-pinning is never
  /// silent in metrics.
  std::size_t shared_cpu_workers() const { return shared_cpu_workers_; }

  /// Runs fn(tid) on every worker (tid in [0, size())) and blocks until
  /// all have finished. Exceptions thrown by fn propagate (first wins).
  /// Convenience wrapper over the raw form below (one extra indirect
  /// call per worker; nothing allocates either way).
  void run(const std::function<void(std::size_t)>& fn);

  /// The non-allocating dispatch primitive: a plain function pointer
  /// plus a context pointer, so per-run hot paths (SpmvInstance) never
  /// construct, copy, or indirect through a std::function. Same
  /// semantics as run(fn) otherwise.
  ///
  /// Safe to call from several threads at once: dispatches are
  /// serialized, and a caller that finds the pool mid-dispatch waits
  /// its turn (FIFO is not guaranteed across waiters).
  using RawJob = void (*)(void* ctx, std::size_t tid);
  void run(RawJob fn, void* ctx);

  /// Non-blocking variant: dispatches and blocks until the job
  /// completes when the pool is idle, returns false immediately (doing
  /// nothing) when another caller's dispatch is in flight. Lets a
  /// caller with a fallback path (e.g. serial execution) detect
  /// saturation instead of queueing behind it.
  bool try_run(RawJob fn, void* ctx);

  /// True while some caller's dispatch is in flight. Advisory only: the
  /// answer may be stale by the time the caller acts on it — pair with
  /// try_run() when the decision has to be race-free.
  bool busy() const;

  /// Total dispatches completed since construction (both run overloads).
  std::uint64_t dispatch_count() const {
    return dispatch_count_.load(std::memory_order_relaxed);
  }

  /// Busy nanoseconds worker `tid` spent inside the most recent run().
  std::uint64_t last_busy_ns(std::size_t tid) const;

  /// Load-imbalance factor of the most recent run(): max/mean worker
  /// busy time. 1.0 = perfectly balanced; 0.0 before any run.
  double last_imbalance() const;

  /// Accumulated busy nanoseconds since the last busy_reset().
  std::uint64_t total_busy_ns(std::size_t tid) const;

  /// Imbalance factor over the accumulated totals (a whole timed loop).
  double total_imbalance() const;

  /// Zeroes the accumulated busy totals (call before a timed loop).
  void busy_reset();

  /// True when every worker holds a usable perf-counter session.
  bool counters_available() const;

  /// Why counters are unavailable ("" when they are available).
  std::string counters_reason() const;

  /// Zeroes and enables every worker's counter group. No-op fallback
  /// when counters are unavailable.
  void counters_start();

  /// Disables the groups and returns the summed readings across
  /// workers. When unavailable, the result carries available=false and
  /// the reason — never an error.
  obs::CounterReadings counters_stop();

 private:
  void worker_main(std::size_t tid, int cpu);

  /// Publishes the job, wakes workers, and blocks until all are done.
  /// Expects `lk` held and `dispatching_` false; releases the lock
  /// before rethrowing a worker exception so the pool stays usable.
  void dispatch_locked(std::unique_lock<std::mutex>& lk, RawJob fn,
                       void* ctx);

  /// Per-worker observability slot; padded so worker writes never share
  /// a cache line.
  struct alignas(kCacheLineBytes) WorkerSlot {
    std::atomic<std::uint64_t> last_busy_ns{0};
    std::atomic<std::uint64_t> total_busy_ns{0};
    std::unique_ptr<obs::PerfSession> perf;  ///< set by the worker at startup
  };

  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;
  std::vector<int> worker_cpus_;
  std::size_t shared_cpu_workers_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::condition_variable cv_idle_;  ///< signalled when a dispatch ends
  RawJob job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  std::size_t ready_ = 0;  ///< workers that completed startup
  std::atomic<std::uint64_t> dispatch_count_{0};
  bool stop_ = false;
  bool dispatching_ = false;  ///< a caller's dispatch is in flight
  bool fully_pinned_ = true;
  std::exception_ptr first_error_;
};

}  // namespace spc
