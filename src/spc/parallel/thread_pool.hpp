// Persistent worker pool for multithreaded SpMV.
//
// The paper parallelizes explicitly with pthreads, binds each thread to a
// predefined processor with sched_setaffinity, and schedules threads
// "as close as possible" (§VI-A). This pool reproduces that: workers are
// created once, optionally pinned according to a placement plan, and the
// timed region only pays a dispatch/join handshake — no thread creation.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "spc/support/topology.hpp"

namespace spc {

class ThreadPool {
 public:
  /// Spawns `nthreads` workers. When `cpu_plan` is non-empty, worker i is
  /// pinned to cpu_plan[i % plan.size()]. An empty plan leaves scheduling
  /// to the OS.
  explicit ThreadPool(std::size_t nthreads,
                      const std::vector<int>& cpu_plan = {});

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// True when every pin request was honoured by the kernel.
  bool fully_pinned() const { return fully_pinned_; }

  /// Runs fn(tid) on every worker (tid in [0, size())) and blocks until
  /// all have finished. Exceptions thrown by fn propagate (first wins).
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_main(std::size_t tid, int cpu);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
  bool fully_pinned_ = true;
  std::exception_ptr first_error_;
};

}  // namespace spc
