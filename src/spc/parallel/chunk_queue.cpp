#include "spc/parallel/chunk_queue.hpp"

#include <algorithm>

namespace spc {

void ChunkDeque::init(const std::uint32_t* chunks, std::size_t n) {
  // Reversed so the owner's bottom-down pops return the original order.
  items_.assign(chunks, chunks + n);
  std::reverse(items_.begin(), items_.end());
  reset();
}

void ChunkDeque::reset() {
  top_.store(0, std::memory_order_seq_cst);
  bottom_.store(static_cast<std::int64_t>(items_.size()),
                std::memory_order_seq_cst);
}

bool ChunkDeque::take(std::uint32_t* out) {
  // Claim slot b-1, then check whether a thief got there first. The
  // seq_cst store/load pair orders the bottom announcement before the
  // top read on every architecture TSan models.
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Empty: undo the claim.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  if (t == b) {
    // Last item: race the thieves for it through top.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    if (!won) {
      return false;
    }
    *out = items_[static_cast<std::size_t>(b)];
    return true;
  }
  // More than one item left: slot b is unreachable by thieves.
  *out = items_[static_cast<std::size_t>(b)];
  return true;
}

ChunkDeque::Steal ChunkDeque::steal(std::uint32_t* out) {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) {
    return Steal::kEmpty;
  }
  // Read before the CAS: a successful CAS hands slot t to this thief,
  // and items_ is immutable during the run, so the read can't tear.
  const std::uint32_t item = items_[static_cast<std::size_t>(t)];
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return Steal::kContended;
  }
  *out = item;
  return Steal::kGot;
}

}  // namespace spc
