#include "spc/parallel/thread_pool.hpp"

#include "spc/support/error.hpp"

namespace spc {

ThreadPool::ThreadPool(std::size_t nthreads,
                       const std::vector<int>& cpu_plan) {
  SPC_CHECK_MSG(nthreads >= 1, "thread pool needs at least one worker");
  workers_.reserve(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) {
    const int cpu =
        cpu_plan.empty() ? -1 : cpu_plan[t % cpu_plan.size()];
    workers_.emplace_back([this, t, cpu] { worker_main(t, cpu); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_main(std::size_t tid, int cpu) {
  if (cpu >= 0 && !pin_thread_to_cpu(cpu)) {
    std::lock_guard<std::mutex> lk(mu_);
    fully_pinned_ = false;
  }
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
    }
    try {
      (*job)(tid);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--remaining_ == 0) {
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  std::unique_lock<std::mutex> lk(mu_);
  SPC_CHECK_MSG(remaining_ == 0, "ThreadPool::run is not reentrant");
  job_ = &fn;
  remaining_ = workers_.size();
  first_error_ = nullptr;
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lk, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
}

}  // namespace spc
