#include "spc/parallel/thread_pool.hpp"

#include <algorithm>
#include <set>

#include "spc/obs/metrics.hpp"
#include "spc/support/error.hpp"
#include "spc/support/timing.hpp"

namespace spc {

ThreadPool::ThreadPool(std::size_t nthreads,
                       const std::vector<int>& cpu_plan)
    : slots_(nthreads) {
  SPC_CHECK_MSG(nthreads >= 1, "thread pool needs at least one worker");
  workers_.reserve(nthreads);
  worker_cpus_.reserve(nthreads);
  std::set<int> used_cpus;
  for (std::size_t t = 0; t < nthreads; ++t) {
    const int cpu =
        cpu_plan.empty() ? -1 : cpu_plan[t % cpu_plan.size()];
    worker_cpus_.push_back(cpu);
    if (cpu >= 0 && !used_cpus.insert(cpu).second) {
      ++shared_cpu_workers_;
    }
    workers_.emplace_back([this, t, cpu] { worker_main(t, cpu); });
  }
  obs::Registry::global()
      .gauge("spc.pool.shared_cpu_workers")
      .set(static_cast<double>(shared_cpu_workers_));
  // Wait for every worker's startup (pinning result, counter attach) so
  // fully_pinned() / counters_available() don't race worker creation.
  // The predicate counts against slots_ — never workers_, which is still
  // being emplaced into while the first workers start up.
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return ready_ == slots_.size(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_main(std::size_t tid, int cpu) {
  const bool pinned = cpu < 0 || pin_thread_to_cpu(cpu);
  // Attach the hardware-counter group to this thread (the fds measure
  // the thread they were opened on; control happens from the outside).
  if (obs::counters_enabled()) {
    slots_[tid].perf = std::make_unique<obs::PerfSession>();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!pinned) {
      fully_pinned_ = false;
    }
    ++ready_;
    if (ready_ == slots_.size()) {
      cv_done_.notify_all();
    }
  }
  std::uint64_t seen_generation = 0;
  for (;;) {
    RawJob job = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      job = job_fn_;
      ctx = job_ctx_;
    }
    const std::uint64_t t0 = now_ns();
    try {
      job(ctx, tid);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    const std::uint64_t t1 = now_ns();
    const std::uint64_t busy = t1 >= t0 ? t1 - t0 : 0;
    slots_[tid].last_busy_ns.store(busy, std::memory_order_relaxed);
    slots_[tid].total_busy_ns.fetch_add(busy, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--remaining_ == 0) {
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  // Trampoline through the raw path; `fn` outlives the run because the
  // caller blocks until every worker is done.
  run(
      [](void* ctx, std::size_t tid) {
        (*static_cast<const std::function<void(std::size_t)>*>(ctx))(tid);
      },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

void ThreadPool::run(RawJob fn, void* ctx) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] { return !dispatching_; });
  dispatch_locked(lk, fn, ctx);
}

bool ThreadPool::try_run(RawJob fn, void* ctx) {
  std::unique_lock<std::mutex> lk(mu_);
  if (dispatching_) {
    return false;
  }
  dispatch_locked(lk, fn, ctx);
  return true;
}

bool ThreadPool::busy() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dispatching_;
}

void ThreadPool::dispatch_locked(std::unique_lock<std::mutex>& lk,
                                 RawJob fn, void* ctx) {
  dispatching_ = true;
  job_fn_ = fn;
  job_ctx_ = ctx;
  remaining_ = workers_.size();
  first_error_ = nullptr;
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lk, [&] { return remaining_ == 0; });
  job_fn_ = nullptr;
  job_ctx_ = nullptr;
  dispatching_ = false;
  dispatch_count_.fetch_add(1, std::memory_order_relaxed);
  std::exception_ptr err = std::move(first_error_);
  first_error_ = nullptr;
  lk.unlock();
  // Wake exactly one queued caller; each finished dispatch admits the
  // next, so every waiter eventually runs.
  cv_idle_.notify_one();
  if (err) {
    std::rethrow_exception(err);
  }
}

std::uint64_t ThreadPool::last_busy_ns(std::size_t tid) const {
  SPC_CHECK_MSG(tid < slots_.size(), "worker id out of range");
  return slots_[tid].last_busy_ns.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::total_busy_ns(std::size_t tid) const {
  SPC_CHECK_MSG(tid < slots_.size(), "worker id out of range");
  return slots_[tid].total_busy_ns.load(std::memory_order_relaxed);
}

namespace {

double imbalance_of(const std::vector<std::uint64_t>& busy) {
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (const std::uint64_t b : busy) {
    max = std::max(max, b);
    sum += b;
  }
  if (sum == 0) {
    return 0.0;
  }
  const double mean =
      static_cast<double>(sum) / static_cast<double>(busy.size());
  return static_cast<double>(max) / mean;
}

}  // namespace

double ThreadPool::last_imbalance() const {
  std::vector<std::uint64_t> busy(slots_.size());
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    busy[t] = slots_[t].last_busy_ns.load(std::memory_order_relaxed);
  }
  return imbalance_of(busy);
}

double ThreadPool::total_imbalance() const {
  std::vector<std::uint64_t> busy(slots_.size());
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    busy[t] = slots_[t].total_busy_ns.load(std::memory_order_relaxed);
  }
  return imbalance_of(busy);
}

void ThreadPool::busy_reset() {
  for (auto& s : slots_) {
    s.total_busy_ns.store(0, std::memory_order_relaxed);
  }
}

bool ThreadPool::counters_available() const {
  for (const auto& s : slots_) {
    if (!s.perf || !s.perf->available()) {
      return false;
    }
  }
  return true;
}

std::string ThreadPool::counters_reason() const {
  if (!obs::counters_enabled()) {
    return "disabled (SPC_COUNTERS=0)";
  }
  for (const auto& s : slots_) {
    if (!s.perf) {
      return "no session attached";
    }
    if (!s.perf->available()) {
      return s.perf->reason();
    }
  }
  return "";
}

void ThreadPool::counters_start() {
  for (auto& s : slots_) {
    if (s.perf) {
      s.perf->start();
    }
  }
}

obs::CounterReadings ThreadPool::counters_stop() {
  for (auto& s : slots_) {
    if (s.perf) {
      s.perf->stop();
    }
  }
  if (!counters_available()) {
    obs::CounterReadings r;
    r.reason = counters_reason();
    return r;
  }
  obs::CounterReadings total = slots_[0].perf->read();
  for (std::size_t t = 1; t < slots_.size(); ++t) {
    total += slots_[t].perf->read();
  }
  return total;
}

}  // namespace spc
