// Chase-Lev-style work-stealing deque of chunk ids.
//
// Each pool worker owns one ChunkDeque preloaded with the ids of the
// chunks its static partition assigned to it. During a run the owner
// pops from the bottom (take) while idle workers steal from the top —
// the classic Chase-Lev discipline, specialized to the SpMV scheduler:
//
//  * The item set is fixed at prepare() time and only *refilled*
//    between runs (reset()), never pushed to while workers execute, so
//    the backing array is immutable during a run and the usual
//    circular-buffer growth protocol disappears. Reads of items_ can
//    never race a write.
//  * Items are stored reversed: the owner's take() walks bottom-down,
//    which hands it its chunks in ascending row order (streaming
//    locality), while thieves take from the top — the owner's *last*
//    chunks, the ones it is furthest from reaching.
//  * All top/bottom operations use seq_cst. The fence-based Chase-Lev
//    formulation is faster on paper, but ThreadSanitizer does not model
//    atomic_thread_fence and would report false races through it; on
//    x86 seq_cst loads/stores cost the same single mfence the fence
//    version needs anyway, and a steal is already hundreds of times
//    rarer than a kernel call.
//
// steal() is three-valued: a failed CAS means another thief (or the
// owner draining the last item) won the race, not that the deque is
// empty — termination detection must keep sweeping on kContended.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "spc/support/types.hpp"

namespace spc {

class ChunkDeque {
 public:
  ChunkDeque() = default;

  // The deque is pinned to a cache-line-padded pair of atomics; moving
  // it while workers hold pointers would be a bug, so forbid copies and
  // moves (std::vector<ChunkDeque> therefore needs reserve-free
  // construction: build in place with the final size).
  ChunkDeque(const ChunkDeque&) = delete;
  ChunkDeque& operator=(const ChunkDeque&) = delete;

  /// Preloads the owner's chunk ids, in the order the owner should
  /// execute them. Must not race take()/steal() — call before the pool
  /// runs (the pool's dispatch handshake publishes the writes).
  void init(const std::uint32_t* chunks, std::size_t n);

  /// Refills the deque with the full initial item set for the next run.
  /// Must not race take()/steal() (call between pool runs).
  void reset();

  /// Number of preloaded items.
  std::size_t capacity() const { return items_.size(); }

  /// Owner side: pops the next chunk in load order. False when the
  /// deque is empty (a thief may have taken the rest).
  bool take(std::uint32_t* out);

  enum class Steal {
    kGot,        ///< *out holds a stolen chunk id
    kEmpty,      ///< deque observed empty
    kContended,  ///< lost a race with the owner or another thief; retry
  };

  /// Thief side: steals the chunk the owner would reach last.
  Steal steal(std::uint32_t* out);

 private:
  std::vector<std::uint32_t> items_;  ///< reversed owner order; immutable
                                      ///< while workers run
  // top_ only grows during a run (thief index); bottom_ only shrinks
  // (owner index). Padded apart: thieves hammer top_ while the owner
  // hammers bottom_.
  alignas(kCacheLineBytes) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLineBytes) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace spc
