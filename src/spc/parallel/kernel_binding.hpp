// Per-thread kernel binding — the bridge between prepare-time dispatch
// and the per-run hot path.
//
// SpmvInstance::prepare() resolves the ISA tier, picks the kernel table,
// and fixes every per-thread closure (kernel function pointer + that
// thread's raw array pointers / slice / row range) once. A timed run then
// costs exactly one indirect call per worker — no format switch, no tier
// lookup, no slice recomputation on the hot path.
//
// Closures must capture only state that survives a move of the owning
// instance: heap-backed array data pointers (aligned_vector storage is
// stable across container moves) and by-value PODs (slices, row bounds).
// Never capture references or pointers to the instance's members
// themselves — those relocate when the instance moves.
#pragma once

#include <functional>
#include <vector>

#include "spc/support/types.hpp"

namespace spc {

/// One bound kernel invocation: y = (my part of A) * x.
using BoundKernel = std::function<void(const value_t* x, value_t* y)>;

/// The bound kernels of one prepared instance. Empty (bound() == false)
/// for formats the dispatch layer does not route, which keep their
/// format-specific execution paths.
struct KernelBinding {
  BoundKernel serial;                    ///< full-matrix kernel
  std::vector<BoundKernel> per_thread;   ///< one per worker (MT instances)
  /// One closure per chunk of the scheduler's ChunkPlan (empty under
  /// static scheduling). A chunk closure binds its *owner's* arrays —
  /// chunk row ranges are disjoint, so any executing worker writes its
  /// own rows of y and results match static bit-for-bit.
  std::vector<BoundKernel> per_chunk;

  bool bound() const { return static_cast<bool>(serial); }

  void clear() {
    serial = nullptr;
    per_thread.clear();
    per_chunk.clear();
  }
};

}  // namespace spc
