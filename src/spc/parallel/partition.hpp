// Static row partitioning for multithreaded SpMV (§II-C, Fig 2).
//
// The paper assigns each thread a contiguous block of rows such that every
// thread receives approximately the same number of non-zero elements —
// "and thus the same number of floating-point operations". A row-count
// (unbalanced) partitioner is kept as the ablation baseline.
#pragma once

#include <vector>

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Contiguous row ranges, one per thread. bounds[t]..bounds[t+1] is
/// thread t's range; bounds.front()==0, bounds.back()==nrows.
struct RowPartition {
  std::vector<index_t> bounds;

  std::size_t nthreads() const {
    return bounds.empty() ? 0 : bounds.size() - 1;
  }
  index_t row_begin(std::size_t t) const { return bounds[t]; }
  index_t row_end(std::size_t t) const { return bounds[t + 1]; }

  /// Non-zeros owned by thread t given the CSR row pointer. Empty
  /// ranges (bounds[t] == bounds[t+1], produced by any partitioner when
  /// nthreads > nrows) own zero non-zeros without touching row_ptr —
  /// valid even for the zero-row matrix whose row_ptr is a single 0.
  usize_t nnz_of(std::size_t t,
                 const aligned_vector<index_t>& row_ptr) const {
    const index_t b = bounds[t];
    const index_t e = bounds[t + 1];
    if (b >= e) {
      return 0;
    }
    return static_cast<usize_t>(row_ptr[e]) - row_ptr[b];
  }
};

/// Splits rows so each thread gets ~nnz/nthreads non-zeros (the paper's
/// static balancing scheme). Boundaries are row-aligned.
RowPartition partition_rows_by_nnz(const aligned_vector<index_t>& row_ptr,
                                   std::size_t nthreads);

/// Same, computed from sorted triplets (for formats without a row_ptr).
RowPartition partition_rows_by_nnz(const Triplets& t, std::size_t nthreads);

/// Naive equal-row-count split (ablation baseline).
RowPartition partition_rows_even(index_t nrows, std::size_t nthreads);

/// Largest nnz assigned to any thread divided by the ideal share —
/// 1.0 is perfect balance. Used by tests and the partition ablation.
double partition_imbalance(const RowPartition& p,
                           const aligned_vector<index_t>& row_ptr);

}  // namespace spc
