// Scheduling policies for multithreaded SpMV.
//
// The paper's static nnz-balanced partition (§II-C) equalizes flops, not
// time: cache and memory-system effects make per-row cost unknowable at
// partition time (Schubert/Hager/Fehske), so irregular matrices leave
// workers finishing far apart. The dynamic policies here keep the static
// partition as the *assignment* — each worker still owns a contiguous
// row range, preserving first-touch NUMA placement and the bit-exact
// accumulation order — but subdivide every range into cache-sized,
// row-aligned chunks:
//
//  * kStatic  — one kernel call per worker over its whole range; the
//               zero-overhead default, bit-identical to all prior PRs.
//  * kChunked — each worker walks its own chunks in order. Same work,
//               same order, split into smaller kernel calls; isolates
//               the chunking overhead from the stealing benefit.
//  * kSteal   — chunks live in per-worker lock-free deques
//               (chunk_queue.hpp); workers drain their own deque, then
//               steal from victims, same-NUMA-node victims first.
//
// Chunk boundaries are row-aligned, so any executor assignment writes
// disjoint y ranges and the result is bit-identical to static at the
// scalar tier (each row's dot product is still one serial accumulation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "spc/parallel/partition.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

enum class Schedule {
  kStatic,   ///< one range per worker (the paper's model; default)
  kChunked,  ///< own chunks, executed in order — no stealing
  kSteal,    ///< own chunks first, then steal from NUMA-near victims
};

/// Canonical lower-case name ("static", "chunked", "steal").
std::string schedule_name(Schedule s);

/// Parses a schedule name; returns false (leaving *out untouched) on
/// unknown names.
bool parse_schedule(const std::string& name, Schedule* out);

/// `fallback` overridden by a parseable SPC_SCHED environment value; an
/// unparseable value is diagnosed once to stderr and ignored.
Schedule schedule_from_env(Schedule fallback);

/// Target non-zeros per chunk for a given L2 data-cache size: half the
/// L2 in CSR-resident bytes (~12 B/nnz: 8 B value + 4 B column index),
/// clamped to [1k, 512k]. A chunk then fits comfortably in its
/// executor's private cache with room for x and y traffic, while
/// staying large enough that the per-chunk call + deque overhead stays
/// well under the kernel cost. `l2_bytes == 0` (unknown) yields the
/// clamp applied to a 256 KiB default.
usize_t chunk_target_nnz(std::size_t l2_bytes);

/// `fallback` overridden by a positive integer SPC_CHUNK_NNZ environment
/// value; zero, empty, or unparseable values are ignored.
usize_t chunk_nnz_from_env(usize_t fallback);

/// The chunk decomposition of a thread partition. Chunks are global:
/// chunk c covers rows [bounds[c], bounds[c+1]); worker t owns the
/// contiguous id range [owner_begin[t], owner_begin[t+1]). Every thread
/// boundary is also a chunk boundary, so a stolen chunk never crosses
/// into another worker's (possibly NUMA-repacked) slice.
struct ChunkPlan {
  std::vector<index_t> bounds;
  std::vector<std::uint32_t> owner_begin;
  std::vector<std::uint32_t> owner;  ///< owning worker per chunk

  std::size_t nchunks() const {
    return bounds.empty() ? 0 : bounds.size() - 1;
  }
  index_t row_begin(std::size_t c) const { return bounds[c]; }
  index_t row_end(std::size_t c) const { return bounds[c + 1]; }
};

/// Splits each range of `threads` into ~target_nnz-sized row-aligned
/// chunks, reusing the nnz-balanced partitioner within each range so
/// chunks inherit its long-row handling. Ranges with fewer non-zeros
/// than the target stay whole; empty ranges own zero chunks.
ChunkPlan plan_chunks(const aligned_vector<index_t>& row_ptr,
                      const RowPartition& threads, usize_t target_nnz);

/// Victim visit order for each worker: same-node victims first, then
/// remote ones, each group in rotation order starting after the thief
/// (so concurrent thieves fan out over distinct victims instead of
/// convoying on one deque). `thread_nodes` maps worker -> NUMA node
/// (from SpmvInstance's pin plan); empty means topology is unknown and
/// the order degrades to plain rotation. Every returned list is a
/// permutation of the other nthreads-1 workers.
std::vector<std::vector<std::uint32_t>> steal_victim_order(
    std::size_t nthreads, const std::vector<int>& thread_nodes);

}  // namespace spc
