// spc — the library's consolidated public surface.
//
// One include pulls in everything an application needs:
//
//   #include "spc/spc.hpp"
//
//   spc::Triplets t = spc::load_mtx("matrix.mtx");          // or gen/
//   spc::SpmvInstance inst(t, spc::Format::kCsrDu, 4);      // one matrix
//   spc::engine::Engine eng;                                // or many
//   eng.register_matrix("A", t, {.auto_format = true});
//   spc::engine::Future f = eng.submit("A", x);
//
// Layering (each header is also individually includable and
// self-contained — the api_surface test compiles every one standalone):
//
//   support/   types, errors, Status, env registry, topology, timing
//   mm/        Triplets, Vector, Matrix Market I/O, reordering, stats
//   gen/       synthetic matrix generators and the named corpus
//   formats/   the storage encodings (CSR, CSR-DU, CSR-VI, symmetric, ...)
//   parallel/  the pinned ThreadPool, partitioning, scheduling
//   spmv/      SpmvInstance — one matrix prepared for repeated y = A*x
//   tune/      per-matrix autotuner (auto_instance / pick_format + cache)
//   engine/    spc::engine::Engine — concurrent multi-tenant serving
//   solvers/   iterative solvers built on SpmvInstance (CG, ...)
//   obs/       metrics registry, JSONL sinks, tracing, perf counters
#pragma once

// support/ — foundation types and process-wide services.
#include "spc/support/env.hpp"
#include "spc/support/error.hpp"
#include "spc/support/status.hpp"
#include "spc/support/timing.hpp"
#include "spc/support/topology.hpp"
#include "spc/support/types.hpp"

// mm/ — matrices and vectors as data.
#include "spc/mm/mtx.hpp"
#include "spc/mm/ops.hpp"
#include "spc/mm/reorder.hpp"
#include "spc/mm/stats.hpp"
#include "spc/mm/triplets.hpp"
#include "spc/mm/vector.hpp"

// gen/ — synthetic inputs.
#include "spc/gen/corpus.hpp"
#include "spc/gen/generators.hpp"

// formats/ — the storage encodings. instance.hpp includes the full set;
// listed explicitly here only where an application touches the encoding
// object itself (inspection, serialization).
#include "spc/formats/serialize.hpp"

// spmv/ + parallel/ — prepared execution.
#include "spc/parallel/thread_pool.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/spmv/spmm.hpp"

// tune/ — per-matrix format selection.
#include "spc/tune/tuner.hpp"

// engine/ — the multi-tenant serving core.
#include "spc/engine/engine.hpp"

// solvers/ — iterative methods on top of SpmvInstance.
#include "spc/solvers/iterative.hpp"
#include "spc/solvers/multi_rhs.hpp"
#include "spc/solvers/refinement.hpp"

// obs/ — observability.
#include "spc/obs/metrics.hpp"
#include "spc/obs/metrics_io.hpp"
