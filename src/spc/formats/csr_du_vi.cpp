#include "spc/formats/csr_du_vi.hpp"

#include <cstring>
#include <unordered_map>

namespace spc {

CsrDuVi CsrDuVi::from_triplets(const Triplets& t, const CsrDuOptions& opts) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "CSR-DU-VI construction requires sorted/combined triplets");
  CsrDuVi m;
  m.nnz_ = t.nnz();
  m.du_ = CsrDu::from_triplets(t, opts);
  // The DU values array duplicates what the indirection will hold; drop it.
  m.du_.drop_values();

  // Value census in row-major order — identical ordering to the ctl
  // stream's value consumption, so val_ind[k] pairs with the k-th decoded
  // element.
  std::unordered_map<std::uint64_t, std::uint32_t> index_of;
  index_of.reserve(t.nnz());
  std::vector<std::uint32_t> dense_ind(t.nnz());
  usize_t k = 0;
  for (const Entry& e : t.entries()) {
    std::uint64_t bits;
    std::memcpy(&bits, &e.val, sizeof(bits));
    const auto [it, inserted] = index_of.emplace(
        bits, static_cast<std::uint32_t>(m.vals_unique_.size()));
    if (inserted) {
      m.vals_unique_.push_back(e.val);
    }
    dense_ind[k++] = it->second;
  }

  m.width_ = vi_width_for(m.vals_unique_.size());
  m.val_ind_.resize(t.nnz() * static_cast<usize_t>(m.width_));
  switch (m.width_) {
    case ViWidth::kU8:
      for (usize_t i = 0; i < t.nnz(); ++i) {
        m.val_ind_[i] = static_cast<std::uint8_t>(dense_ind[i]);
      }
      break;
    case ViWidth::kU16: {
      auto* p = reinterpret_cast<std::uint16_t*>(m.val_ind_.data());
      for (usize_t i = 0; i < t.nnz(); ++i) {
        p[i] = static_cast<std::uint16_t>(dense_ind[i]);
      }
      break;
    }
    case ViWidth::kU32: {
      auto* p = reinterpret_cast<std::uint32_t*>(m.val_ind_.data());
      for (usize_t i = 0; i < t.nnz(); ++i) {
        p[i] = dense_ind[i];
      }
      break;
    }
  }
  return m;
}

CsrDuVi CsrDuVi::from_raw(index_t nrows, index_t ncols,
                          const CsrDuOptions& opts,
                          aligned_vector<std::uint8_t> ctl, ViWidth width,
                          aligned_vector<std::uint8_t> val_ind,
                          aligned_vector<value_t> vals_unique) {
  CsrDuVi m;
  // Structural validation via the DU path (no values array).
  m.du_ = CsrDu::from_raw(nrows, ncols, opts, std::move(ctl), {});
  m.nnz_ = m.du_.nnz();
  if (val_ind.size() != m.nnz_ * static_cast<usize_t>(width)) {
    throw ParseError("csr-du-vi: val_ind size does not match element count");
  }
  const usize_t uniq = vals_unique.size();
  const auto check_ind = [&](std::uint64_t ind) {
    if (ind >= uniq) {
      throw ParseError("csr-du-vi: value index out of bounds");
    }
  };
  switch (width) {
    case ViWidth::kU8:
      for (usize_t k = 0; k < m.nnz_; ++k) {
        check_ind(val_ind[k]);
      }
      break;
    case ViWidth::kU16:
      for (usize_t k = 0; k < m.nnz_; ++k) {
        check_ind(
            reinterpret_cast<const std::uint16_t*>(val_ind.data())[k]);
      }
      break;
    case ViWidth::kU32:
      for (usize_t k = 0; k < m.nnz_; ++k) {
        check_ind(
            reinterpret_cast<const std::uint32_t*>(val_ind.data())[k]);
      }
      break;
  }
  m.width_ = width;
  m.val_ind_ = std::move(val_ind);
  m.vals_unique_ = std::move(vals_unique);
  return m;
}

Triplets CsrDuVi::to_triplets() const {
  // Reuse the DU unit decoder for structure; pull values through the
  // indirection.
  Triplets t(nrows(), ncols());
  t.reserve(nnz_);
  std::int64_t row = -1;
  std::uint64_t col = 0;
  usize_t k = 0;
  const auto value_at = [&](usize_t i) -> value_t {
    switch (width_) {
      case ViWidth::kU8:
        return vals_unique_[val_ind_[i]];
      case ViWidth::kU16:
        return vals_unique_[val_ind_as<std::uint16_t>()[i]];
      case ViWidth::kU32:
        return vals_unique_[val_ind_as<std::uint32_t>()[i]];
    }
    return 0.0;
  };
  for (const CsrDu::DecodedUnit& u : du_.decode_units()) {
    if (u.new_row) {
      row += 1 + static_cast<std::int64_t>(u.rskip);
      col = 0;
    }
    col += u.ujmp;
    t.add(static_cast<index_t>(row), static_cast<index_t>(col), value_at(k));
    ++k;
    for (const std::uint64_t d : u.ucis) {
      col += d;
      t.add(static_cast<index_t>(row), static_cast<index_t>(col),
            value_at(k));
      ++k;
    }
  }
  return t;
}

}  // namespace spc
