// DCSR — simplified reimplementation of Willcock & Lumsdaine's
// delta-compressed CSR (§III-B), the format the paper positions CSR-DU
// against.
//
// The column structure is a byte-oriented command stream; each command is
// decoded individually, giving the *fine-grained* decode behaviour whose
// branch-misprediction cost the paper contrasts with CSR-DU's coarse
// units. Command byte layout (op = two high bits):
//
//   op 0 DELTAS8 k  — low 6 bits k in 1..63; k one-byte deltas follow,
//                     each advancing the column and consuming one value
//   op 1 DELTA16    — one 2-byte LE delta follows (one element)
//   op 2 DELTA32    — one 4-byte LE delta follows (one element)
//   op 3 NEWROW r   — low 6 bits r in 1..63: advance the row counter by r
//                     and reset the column to 0 (chained for larger skips)
//
// The first element of each row encodes its absolute column as the delta.
// This is a faithful scale model of DCSR's six-command scheme rather than
// a byte-compatible clone; see DESIGN.md §2.
#pragma once

#include <cstdint>
#include <vector>

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

inline constexpr std::uint8_t kDcsrOpDeltas8 = 0;
inline constexpr std::uint8_t kDcsrOpDelta16 = 1;
inline constexpr std::uint8_t kDcsrOpDelta32 = 2;
inline constexpr std::uint8_t kDcsrOpNewRow = 3;
inline constexpr std::uint32_t kDcsrMaxGroup = 63;

class Dcsr {
 public:
  Dcsr() = default;

  static Dcsr from_triplets(const Triplets& t);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return values_.size(); }

  const aligned_vector<std::uint8_t>& cmds() const { return cmds_; }
  const aligned_vector<value_t>& values() const { return values_; }

  usize_t cmd_bytes() const { return cmds_.size(); }
  usize_t bytes() const {
    return cmds_.size() + values_.size() * sizeof(value_t);
  }

  /// Per-thread view, mirroring CsrDu::Slice.
  struct Slice {
    const std::uint8_t* cmds = nullptr;
    const std::uint8_t* cmds_end = nullptr;
    const value_t* values = nullptr;
    index_t row_begin = 0;
    index_t row_end = 0;
    /// Row counter entering the slice (-1 at stream start).
    std::int64_t row_state = -1;
    usize_t nnz = 0;
  };

  Slice full() const;
  Slice slice(index_t row_begin, index_t row_end) const;

  Triplets to_triplets() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  aligned_vector<std::uint8_t> cmds_;
  aligned_vector<value_t> values_;
};

}  // namespace spc
