// JDS — Jagged Diagonal Storage (§III-A of the paper).
//
// Rows are permuted by decreasing length; the j-th "jagged diagonal"
// collects the j-th non-zero of every row that has one. Each diagonal is
// a dense contiguous run, which made JDS the vector-machine format of
// choice and keeps it relevant for irregular (graph-like) matrices where
// ELL's padding explodes.
//
// Layout:
//   perm[i]      — original row stored at jagged position i
//   jd_ptr[j]    — start of diagonal j in col_ind/values (njd + 1 entries)
//   diagonal j has `rows_with_len > j` entries, one per permuted row i,
//   in increasing i.
#pragma once

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class Jds {
 public:
  Jds() = default;

  static Jds from_triplets(const Triplets& t);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return values_.size(); }
  index_t njdiags() const {
    return static_cast<index_t>(jd_ptr_.size() - 1);
  }

  const aligned_vector<index_t>& perm() const { return perm_; }
  const aligned_vector<index_t>& jd_ptr() const { return jd_ptr_; }
  const aligned_vector<index_t>& col_ind() const { return col_ind_; }
  const aligned_vector<value_t>& values() const { return values_; }

  usize_t bytes() const {
    return perm_.size() * sizeof(index_t) +
           jd_ptr_.size() * sizeof(index_t) +
           col_ind_.size() * sizeof(index_t) +
           values_.size() * sizeof(value_t);
  }

  Triplets to_triplets() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  aligned_vector<index_t> perm_;
  aligned_vector<index_t> jd_ptr_;
  aligned_vector<index_t> col_ind_;
  aligned_vector<value_t> values_;
};

}  // namespace spc
