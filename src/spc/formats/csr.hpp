// Compressed Sparse Row — the baseline format of the paper (§II-B, Fig 1).
//
// `BasicCsr` is parameterized on the column-index type:
//  * Csr    = BasicCsr<uint32_t>  — the paper's baseline (4-byte indices)
//  * Csr16  = BasicCsr<uint16_t>  — the short-index variant mentioned in
//    §III-D (Williams et al.), valid only when ncols <= 65536.
// Row pointers always use 32-bit indices into the nnz range.
#pragma once

#include <cstdint>
#include <limits>

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/error.hpp"
#include "spc/support/types.hpp"

namespace spc {

template <typename ColIndexT>
class BasicCsr {
 public:
  using col_index_type = ColIndexT;

  BasicCsr() = default;

  /// Builds from sorted/combined triplets in O(nnz).
  static BasicCsr from_triplets(const Triplets& t) {
    SPC_CHECK_MSG(t.is_sorted_unique(),
                  "CSR construction requires sorted/combined triplets");
    SPC_CHECK_MSG(t.ncols() == 0 ||
                      t.ncols() - 1 <= std::numeric_limits<ColIndexT>::max(),
                  "column index type too narrow for this matrix");
    BasicCsr m;
    m.nrows_ = t.nrows();
    m.ncols_ = t.ncols();
    m.row_ptr_.assign(t.nrows() + 1, 0);
    m.col_ind_.resize(t.nnz());
    m.values_.resize(t.nnz());
    for (const Entry& e : t.entries()) {
      ++m.row_ptr_[e.row + 1];
    }
    for (index_t r = 0; r < t.nrows(); ++r) {
      m.row_ptr_[r + 1] += m.row_ptr_[r];
    }
    usize_t k = 0;
    for (const Entry& e : t.entries()) {
      m.col_ind_[k] = static_cast<ColIndexT>(e.col);
      m.values_[k] = e.val;
      ++k;
    }
    return m;
  }

  /// Reconstructs from raw arrays (the deserialization path) with full
  /// validation: row_ptr must be monotone with the right endpoints and
  /// every column index in range. Throws ParseError otherwise.
  static BasicCsr from_raw(index_t nrows, index_t ncols,
                           aligned_vector<index_t> row_ptr,
                           aligned_vector<ColIndexT> col_ind,
                           aligned_vector<value_t> values) {
    if (row_ptr.size() != static_cast<std::size_t>(nrows) + 1 ||
        row_ptr.front() != 0 || row_ptr.back() != col_ind.size() ||
        col_ind.size() != values.size()) {
      throw ParseError("csr: inconsistent array shapes");
    }
    for (index_t r = 0; r < nrows; ++r) {
      if (row_ptr[r] > row_ptr[r + 1]) {
        throw ParseError("csr: row_ptr is not monotone");
      }
    }
    for (const ColIndexT c : col_ind) {
      if (static_cast<index_t>(c) >= ncols) {
        throw ParseError("csr: column index out of bounds");
      }
    }
    BasicCsr m;
    m.nrows_ = nrows;
    m.ncols_ = ncols;
    m.row_ptr_ = std::move(row_ptr);
    m.col_ind_ = std::move(col_ind);
    m.values_ = std::move(values);
    return m;
  }

  /// Inverse conversion (exact, including explicitly stored zeros).
  Triplets to_triplets() const {
    Triplets t(nrows_, ncols_);
    t.reserve(nnz());
    for (index_t r = 0; r < nrows_; ++r) {
      for (index_t j = row_ptr_[r]; j < row_ptr_[r + 1]; ++j) {
        t.add(r, static_cast<index_t>(col_ind_[j]), values_[j]);
      }
    }
    return t;  // already sorted: CSR stores row-major order
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return values_.size(); }

  const aligned_vector<index_t>& row_ptr() const { return row_ptr_; }
  const aligned_vector<ColIndexT>& col_ind() const { return col_ind_; }
  const aligned_vector<value_t>& values() const { return values_; }

  /// Size of the matrix data (the paper's csr_size term).
  usize_t bytes() const {
    return row_ptr_.size() * sizeof(index_t) +
           col_ind_.size() * sizeof(ColIndexT) +
           values_.size() * sizeof(value_t);
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  aligned_vector<index_t> row_ptr_;
  aligned_vector<ColIndexT> col_ind_;
  aligned_vector<value_t> values_;
};

/// The paper's baseline: 32-bit column indices, 64-bit values.
using Csr = BasicCsr<std::uint32_t>;

/// Short-index variant (§III-D): halves col_ind when ncols <= 2^16.
using Csr16 = BasicCsr<std::uint16_t>;

/// Wide-index variant: the paper's conclusion notes that once matrices
/// need 64-bit column addressing, index data equal value data and index
/// compression (CSR-DU) doubles its leverage. Csr64 models that regime
/// so the ablation can measure it without a >4G-column matrix.
using Csr64 = BasicCsr<std::uint64_t>;

/// True when `t` can be stored with 16-bit column indices.
inline bool csr16_applicable(const Triplets& t) {
  return t.ncols() <= 65536;
}

}  // namespace spc
