#include "spc/formats/csr_f32.hpp"

namespace spc {

CsrF32 CsrF32::from_triplets(const Triplets& t) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "CSR-F32 construction requires sorted/combined triplets");
  CsrF32 m;
  m.nrows_ = t.nrows();
  m.ncols_ = t.ncols();
  m.row_ptr_.assign(t.nrows() + 1, 0);
  m.col_ind_.resize(t.nnz());
  m.values_.resize(t.nnz());
  for (const Entry& e : t.entries()) {
    ++m.row_ptr_[e.row + 1];
  }
  for (index_t r = 0; r < t.nrows(); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  usize_t k = 0;
  for (const Entry& e : t.entries()) {
    m.col_ind_[k] = e.col;
    m.values_[k] = static_cast<float>(e.val);
    ++k;
  }
  return m;
}

Triplets CsrF32::to_triplets() const {
  Triplets t(nrows_, ncols_);
  t.reserve(nnz());
  for (index_t r = 0; r < nrows_; ++r) {
    for (index_t j = row_ptr_[r]; j < row_ptr_[r + 1]; ++j) {
      t.add(r, col_ind_[j], static_cast<value_t>(values_[j]));
    }
  }
  return t;
}

void spmv_csr_f32_range(const CsrF32& m, const value_t* x, value_t* y,
                        index_t row_begin, index_t row_end) {
  const index_t* const __restrict row_ptr = m.row_ptr().data();
  const std::uint32_t* const __restrict col_ind = m.col_ind().data();
  const float* const __restrict values = m.values().data();
  for (index_t i = row_begin; i < row_end; ++i) {
    value_t acc = 0.0;
    const index_t end = row_ptr[i + 1];
    for (index_t j = row_ptr[i]; j < end; ++j) {
      acc += static_cast<value_t>(values[j]) * x[col_ind[j]];
    }
    y[i] = acc;
  }
}

void spmv(const CsrF32& m, const value_t* x, value_t* y) {
  spmv_csr_f32_range(m, x, y, 0, m.nrows());
}

}  // namespace spc
