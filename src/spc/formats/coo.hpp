// Coordinate storage format (§II-B): each non-zero as (row, col, value).
//
// Included as a baseline substrate; its SpMV kernel streams three arrays
// and is the least cache-friendly of the classic formats.
#pragma once

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class Coo {
 public:
  Coo() = default;

  static Coo from_triplets(const Triplets& t) {
    SPC_CHECK_MSG(t.is_sorted_unique(),
                  "COO construction requires sorted/combined triplets");
    Coo m;
    m.nrows_ = t.nrows();
    m.ncols_ = t.ncols();
    m.rows_.reserve(t.nnz());
    m.cols_.reserve(t.nnz());
    m.values_.reserve(t.nnz());
    for (const Entry& e : t.entries()) {
      m.rows_.push_back(e.row);
      m.cols_.push_back(e.col);
      m.values_.push_back(e.val);
    }
    return m;
  }

  Triplets to_triplets() const {
    Triplets t(nrows_, ncols_);
    t.reserve(nnz());
    for (usize_t k = 0; k < nnz(); ++k) {
      t.add(rows_[k], cols_[k], values_[k]);
    }
    return t;
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return values_.size(); }

  const aligned_vector<index_t>& rows() const { return rows_; }
  const aligned_vector<index_t>& cols() const { return cols_; }
  const aligned_vector<value_t>& values() const { return values_; }

  usize_t bytes() const {
    return rows_.size() * sizeof(index_t) + cols_.size() * sizeof(index_t) +
           values_.size() * sizeof(value_t);
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  aligned_vector<index_t> rows_;
  aligned_vector<index_t> cols_;
  aligned_vector<value_t> values_;
};

}  // namespace spc
