#include "spc/formats/dia.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace spc {

Dia Dia::from_triplets(const Triplets& t, std::size_t max_diags) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "DIA construction requires sorted/combined triplets");
  Dia m;
  m.nrows_ = t.nrows();
  m.ncols_ = t.ncols();
  m.nnz_ = t.nnz();

  std::map<std::int64_t, std::size_t> diag_of;
  for (const Entry& e : t.entries()) {
    diag_of.emplace(static_cast<std::int64_t>(e.col) -
                        static_cast<std::int64_t>(e.row),
                    0);
  }
  if (max_diags > 0 && diag_of.size() > max_diags) {
    std::ostringstream os;
    os << "DIA: " << diag_of.size() << " distinct diagonals exceed the "
       << max_diags << " limit — the matrix is not diagonal-structured";
    throw InvalidArgument(os.str());
  }

  m.offsets_.reserve(diag_of.size());
  for (auto& [off, idx] : diag_of) {
    idx = m.offsets_.size();
    m.offsets_.push_back(off);  // std::map iterates offsets ascending
  }

  m.values_.assign(diag_of.size() * static_cast<usize_t>(t.nrows()), 0.0);
  for (const Entry& e : t.entries()) {
    const std::int64_t off = static_cast<std::int64_t>(e.col) -
                             static_cast<std::int64_t>(e.row);
    const std::size_t d = diag_of[off];
    m.values_[d * static_cast<usize_t>(t.nrows()) + e.row] = e.val;
  }
  return m;
}

Triplets Dia::to_triplets() const {
  Triplets t(nrows_, ncols_);
  t.reserve(nnz_);
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    const std::int64_t off = offsets_[d];
    for (index_t r = 0; r < nrows_; ++r) {
      const std::int64_t c = static_cast<std::int64_t>(r) + off;
      if (c < 0 || c >= static_cast<std::int64_t>(ncols_)) {
        continue;
      }
      const value_t v = values_[d * static_cast<usize_t>(nrows_) + r];
      // Zero slots are either padding or absent entries; like ELL/BCSR,
      // explicit zeros are not representable after the round trip.
      if (v != 0.0) {
        t.add(r, static_cast<index_t>(c), v);
      }
    }
  }
  t.sort_and_combine();
  return t;
}

}  // namespace spc
