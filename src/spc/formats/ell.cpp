#include "spc/formats/ell.hpp"

#include <algorithm>
#include <sstream>

namespace spc {

Ell Ell::from_triplets(const Triplets& t, double max_width_factor) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "ELL construction requires sorted/combined triplets");
  Ell m;
  m.nrows_ = t.nrows();
  m.ncols_ = t.ncols();
  m.nnz_ = t.nnz();

  std::vector<index_t> row_len(t.nrows(), 0);
  for (const Entry& e : t.entries()) {
    ++row_len[e.row];
  }
  index_t width = 0;
  for (const index_t len : row_len) {
    width = std::max(width, len);
  }
  if (max_width_factor > 0.0 && t.nrows() > 0 && t.nnz() > 0) {
    const double mean =
        static_cast<double>(t.nnz()) / static_cast<double>(t.nrows());
    if (static_cast<double>(width) > max_width_factor * mean) {
      std::ostringstream os;
      os << "ELL width " << width << " exceeds " << max_width_factor
         << "x the mean row length " << mean
         << " — row-length skew makes ELL unsuitable";
      throw InvalidArgument(os.str());
    }
  }
  m.width_ = width;

  m.col_ind_.assign(static_cast<usize_t>(t.nrows()) * width, 0);
  m.values_.assign(static_cast<usize_t>(t.nrows()) * width, 0.0);
  std::vector<index_t> cursor(t.nrows(), 0);
  for (const Entry& e : t.entries()) {
    const usize_t slot =
        static_cast<usize_t>(e.row) * width + cursor[e.row]++;
    m.col_ind_[slot] = e.col;
    m.values_[slot] = e.val;
  }
  // Padding columns repeat the row's last valid column to keep x-gathers
  // cache-friendly and in bounds.
  for (index_t r = 0; r < t.nrows(); ++r) {
    const index_t filled = cursor[r];
    const index_t pad_col =
        filled > 0
            ? m.col_ind_[static_cast<usize_t>(r) * width + filled - 1]
            : 0;
    for (index_t k = filled; k < width; ++k) {
      m.col_ind_[static_cast<usize_t>(r) * width + k] = pad_col;
    }
  }
  return m;
}

Triplets Ell::to_triplets() const {
  Triplets t(nrows_, ncols_);
  t.reserve(nnz_);
  for (index_t r = 0; r < nrows_; ++r) {
    for (index_t k = 0; k < width_; ++k) {
      const usize_t slot = static_cast<usize_t>(r) * width_ + k;
      // Padding slots carry value 0; true zeros cannot occur here because
      // from_triplets stores them before padding begins — distinguish by
      // position: slots past the row's fill are padding. We do not track
      // fill counts after construction, so reconstruct by dropping zero
      // values (documented limitation; matches BCSR's fill handling).
      if (values_[slot] != 0.0) {
        t.add(r, col_ind_[slot], values_[slot]);
      }
    }
  }
  t.sort_and_combine();
  return t;
}

}  // namespace spc
