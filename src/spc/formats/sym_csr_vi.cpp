#include "spc/formats/sym_csr_vi.hpp"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "spc/formats/sym_csr.hpp"

namespace spc {

namespace {

std::uint64_t value_bits(value_t v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

bool SymCsrVi::applicable(const Triplets& t) { return SymCsr::applicable(t); }

SymCsrVi SymCsrVi::from_triplets(const Triplets& t) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "SymCsrVi construction requires sorted/combined triplets");
  if (!applicable(t)) {
    throw InvalidArgument(
        "SymCsrVi requires a numerically symmetric matrix");
  }
  SymCsrVi m;
  m.n_ = t.nrows();
  m.nnz_full_ = t.nnz();
  m.row_ptr_.assign(t.nrows() + 1, 0);

  // Materialize the dense diagonal first (0.0 where absent) so implicit
  // diagonal zeros join the census like any other stored value.
  std::vector<value_t> diag(t.nrows(), 0.0);
  usize_t lower = 0;
  for (const Entry& e : t.entries()) {
    if (e.row == e.col) {
      diag[e.row] = e.val;
    } else if (e.col < e.row) {
      ++m.row_ptr_[e.row + 1];
      ++lower;
    }
  }
  for (index_t r = 0; r < t.nrows(); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }

  // Pass 1: census of unique values (bit-pattern identity) across the
  // diagonal then the strict lower triangle, first-occurrence order,
  // through one shared table.
  std::unordered_map<std::uint64_t, std::uint32_t> index_of;
  index_of.reserve(static_cast<std::size_t>(t.nrows()) + lower);
  std::vector<std::uint32_t> dense_diag(t.nrows());
  std::vector<std::uint32_t> dense_ind(lower);
  const auto census = [&](value_t v) {
    const auto [it, inserted] = index_of.emplace(
        value_bits(v), static_cast<std::uint32_t>(m.vals_unique_.size()));
    if (inserted) {
      m.vals_unique_.push_back(v);
    }
    return it->second;
  };
  for (index_t r = 0; r < t.nrows(); ++r) {
    dense_diag[r] = census(diag[r]);
  }
  m.col_ind_.resize(lower);
  usize_t k = 0;
  for (const Entry& e : t.entries()) {
    if (e.col < e.row) {
      m.col_ind_[k] = e.col;
      dense_ind[k] = census(e.val);
      ++k;
    }
  }

  // Pass 2: narrow both index streams to the final width.
  m.width_ = vi_width_for(m.vals_unique_.size());
  m.diag_ind_.resize(static_cast<usize_t>(t.nrows()) *
                     static_cast<usize_t>(m.width_));
  m.val_ind_.resize(lower * static_cast<usize_t>(m.width_));
  const auto narrow = [&](const std::vector<std::uint32_t>& src,
                          std::uint8_t* dst) {
    switch (m.width_) {
      case ViWidth::kU8:
        for (usize_t i = 0; i < src.size(); ++i) {
          dst[i] = static_cast<std::uint8_t>(src[i]);
        }
        break;
      case ViWidth::kU16: {
        auto* p = reinterpret_cast<std::uint16_t*>(dst);
        for (usize_t i = 0; i < src.size(); ++i) {
          p[i] = static_cast<std::uint16_t>(src[i]);
        }
        break;
      }
      case ViWidth::kU32: {
        auto* p = reinterpret_cast<std::uint32_t*>(dst);
        for (usize_t i = 0; i < src.size(); ++i) {
          p[i] = src[i];
        }
        break;
      }
    }
  };
  narrow(dense_diag, m.diag_ind_.data());
  narrow(dense_ind, m.val_ind_.data());
  return m;
}

value_t SymCsrVi::value_at(usize_t k) const {
  SPC_CHECK(k < col_ind_.size());
  switch (width_) {
    case ViWidth::kU8:
      return vals_unique_[val_ind_[k]];
    case ViWidth::kU16:
      return vals_unique_[val_ind_as<std::uint16_t>()[k]];
    case ViWidth::kU32:
      return vals_unique_[val_ind_as<std::uint32_t>()[k]];
  }
  return 0.0;
}

value_t SymCsrVi::diag_at(index_t r) const {
  SPC_CHECK(r < n_);
  switch (width_) {
    case ViWidth::kU8:
      return vals_unique_[diag_ind_[r]];
    case ViWidth::kU16:
      return vals_unique_[diag_ind_as<std::uint16_t>()[r]];
    case ViWidth::kU32:
      return vals_unique_[diag_ind_as<std::uint32_t>()[r]];
  }
  return 0.0;
}

Triplets SymCsrVi::to_triplets() const {
  Triplets t(n_, n_);
  t.reserve(nnz_full_);
  for (index_t r = 0; r < n_; ++r) {
    const value_t d = diag_at(r);
    if (d != 0.0) {
      t.add(r, r, d);
    }
    for (index_t j = row_ptr_[r]; j < row_ptr_[r + 1]; ++j) {
      const value_t v = value_at(j);
      t.add(r, col_ind_[j], v);
      t.add(col_ind_[j], r, v);
    }
  }
  t.sort_and_combine();
  return t;
}

}  // namespace spc
