// DIA / CDS (Compressed Diagonal Storage, §III-A of the paper).
//
// The matrix is stored as a set of dense diagonals: `offsets[d]` is the
// diagonal's distance from the main diagonal (col - row), and
// `values[d * nrows + r]` holds A[r, r + offsets[d]] (0 where the
// diagonal leaves the matrix or the entry is absent). Ideal for banded
// PDE matrices; useless when non-zeros scatter over many diagonals — the
// construction guard makes that failure mode explicit.
#pragma once

#include <cstdint>

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class Dia {
 public:
  Dia() = default;

  /// Builds from sorted triplets. Throws InvalidArgument when the number
  /// of distinct diagonals exceeds `max_diags` (0 = no limit).
  static Dia from_triplets(const Triplets& t, std::size_t max_diags = 0);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return nnz_; }
  std::size_t ndiags() const { return offsets_.size(); }

  /// Stored slots (ndiags * nrows); fill ratio mirrors ELL's.
  usize_t stored() const { return values_.size(); }
  double padding_ratio() const {
    return nnz_ ? static_cast<double>(stored()) / static_cast<double>(nnz_)
                : 1.0;
  }

  const std::vector<std::int64_t>& offsets() const { return offsets_; }
  const aligned_vector<value_t>& values() const { return values_; }

  usize_t bytes() const {
    return offsets_.size() * sizeof(std::int64_t) +
           values_.size() * sizeof(value_t);
  }

  Triplets to_triplets() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  usize_t nnz_ = 0;
  std::vector<std::int64_t> offsets_;  ///< sorted ascending
  aligned_vector<value_t> values_;     ///< ndiags * nrows, diag-major
};

}  // namespace spc
