// CSR-DU-VI — the composition of both compression schemes.
//
// Index data are the CSR-DU ctl stream; value data are the CSR-VI
// indirection (vals_unique + val_ind). The CF'08 companion paper evaluates
// this combination; here it is the "extension" deliverable and is covered
// by the value-compression ablation bench.
#pragma once

#include "spc/formats/csr_du.hpp"
#include "spc/formats/csr_vi.hpp"

namespace spc {

class CsrDuVi {
 public:
  CsrDuVi() = default;

  static CsrDuVi from_triplets(const Triplets& t,
                               const CsrDuOptions& opts = {});

  /// Reconstructs from raw arrays (deserialization). The ctl stream and
  /// value indices are fully validated; throws ParseError on violations.
  static CsrDuVi from_raw(index_t nrows, index_t ncols,
                          const CsrDuOptions& opts,
                          aligned_vector<std::uint8_t> ctl, ViWidth width,
                          aligned_vector<std::uint8_t> val_ind,
                          aligned_vector<value_t> vals_unique);

  index_t nrows() const { return du_.nrows(); }
  index_t ncols() const { return du_.ncols(); }
  usize_t nnz() const { return nnz_; }

  /// Index side: the DU ctl stream (the embedded CsrDu's own values array
  /// is dropped after construction; only ctl is live).
  const CsrDu& du() const { return du_; }

  const aligned_vector<value_t>& vals_unique() const { return vals_unique_; }
  const aligned_vector<std::uint8_t>& val_ind_raw() const { return val_ind_; }
  ViWidth width() const { return width_; }
  usize_t unique_count() const { return vals_unique_.size(); }

  template <typename T>
  const T* val_ind_as() const {
    SPC_CHECK(sizeof(T) == static_cast<std::size_t>(width_));
    return reinterpret_cast<const T*>(val_ind_.data());
  }

  /// Matrix data size: ctl + val_ind + vals_unique.
  usize_t bytes() const {
    return du_.ctl_bytes() + val_ind_.size() +
           vals_unique_.size() * sizeof(value_t);
  }

  Triplets to_triplets() const;

 private:
  usize_t nnz_ = 0;
  CsrDu du_;  ///< ctl stream + slice machinery; values array cleared
  ViWidth width_ = ViWidth::kU8;
  aligned_vector<std::uint8_t> val_ind_;
  aligned_vector<value_t> vals_unique_;
};

}  // namespace spc
