// CSR with single-precision values — the lower-precision value
// compression the paper's related work cites (§III-C: Keyes; Langou et
// al.'s mixed-precision algorithms). Value data halve (8 B → 4 B per
// non-zero) for ~1e-7 relative error per product, recovered to full
// double accuracy by iterative refinement (solvers/refinement.hpp).
//
// Kept outside the Format registry because its results are *not*
// bit-compatible with the double-precision formats; it pairs with the
// refinement solver instead.
#pragma once

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class CsrF32 {
 public:
  CsrF32() = default;

  static CsrF32 from_triplets(const Triplets& t);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return values_.size(); }

  const aligned_vector<index_t>& row_ptr() const { return row_ptr_; }
  const aligned_vector<std::uint32_t>& col_ind() const { return col_ind_; }
  const aligned_vector<float>& values() const { return values_; }

  usize_t bytes() const {
    return row_ptr_.size() * sizeof(index_t) +
           col_ind_.size() * sizeof(std::uint32_t) +
           values_.size() * sizeof(float);
  }

  /// Round-trip through float: values come back as double(float(v)).
  Triplets to_triplets() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  aligned_vector<index_t> row_ptr_;
  aligned_vector<std::uint32_t> col_ind_;
  aligned_vector<float> values_;
};

/// y = A*x with double accumulation over float matrix values.
void spmv(const CsrF32& m, const value_t* x, value_t* y);

/// Row-range variant for multithreaded use.
void spmv_csr_f32_range(const CsrF32& m, const value_t* x, value_t* y,
                        index_t row_begin, index_t row_end);

}  // namespace spc
