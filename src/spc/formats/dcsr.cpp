#include "spc/formats/dcsr.hpp"

namespace spc {

namespace {

void emit_newrow(aligned_vector<std::uint8_t>& cmds, std::uint64_t inc) {
  while (inc > kDcsrMaxGroup) {
    cmds.push_back(static_cast<std::uint8_t>((kDcsrOpNewRow << 6) |
                                             kDcsrMaxGroup));
    inc -= kDcsrMaxGroup;
  }
  if (inc > 0) {
    cmds.push_back(static_cast<std::uint8_t>((kDcsrOpNewRow << 6) | inc));
  }
}

}  // namespace

Dcsr Dcsr::from_triplets(const Triplets& t) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "DCSR construction requires sorted/combined triplets");
  Dcsr m;
  m.nrows_ = t.nrows();
  m.ncols_ = t.ncols();
  m.values_.reserve(t.nnz());
  m.cmds_.reserve(t.nnz() + t.nrows());

  const auto& entries = t.entries();
  std::vector<std::uint64_t> deltas;
  std::int64_t prev_row = -1;
  usize_t i = 0;
  while (i < entries.size()) {
    const index_t row = entries[i].row;
    const usize_t row_start = i;
    deltas.clear();
    index_t prev_col = 0;
    while (i < entries.size() && entries[i].row == row) {
      deltas.push_back(i == row_start
                           ? static_cast<std::uint64_t>(entries[i].col)
                           : static_cast<std::uint64_t>(entries[i].col -
                                                        prev_col));
      prev_col = entries[i].col;
      m.values_.push_back(entries[i].val);
      ++i;
    }
    emit_newrow(m.cmds_, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(row) - prev_row));
    prev_row = row;

    // Encode deltas: group u8-able runs, escape wider values individually.
    usize_t k = 0;
    while (k < deltas.size()) {
      if (deltas[k] <= 0xFF) {
        usize_t e = k;
        while (e < deltas.size() && deltas[e] <= 0xFF &&
               e - k < kDcsrMaxGroup) {
          ++e;
        }
        m.cmds_.push_back(static_cast<std::uint8_t>(
            (kDcsrOpDeltas8 << 6) | static_cast<std::uint8_t>(e - k)));
        for (usize_t j = k; j < e; ++j) {
          m.cmds_.push_back(static_cast<std::uint8_t>(deltas[j]));
        }
        k = e;
      } else if (deltas[k] <= 0xFFFF) {
        m.cmds_.push_back(static_cast<std::uint8_t>(kDcsrOpDelta16 << 6));
        m.cmds_.push_back(static_cast<std::uint8_t>(deltas[k]));
        m.cmds_.push_back(static_cast<std::uint8_t>(deltas[k] >> 8));
        ++k;
      } else {
        SPC_CHECK_MSG(deltas[k] <= 0xFFFFFFFFULL,
                      "DCSR delta exceeds 32 bits");
        m.cmds_.push_back(static_cast<std::uint8_t>(kDcsrOpDelta32 << 6));
        for (int b = 0; b < 4; ++b) {
          m.cmds_.push_back(static_cast<std::uint8_t>(deltas[k] >> (8 * b)));
        }
        ++k;
      }
    }
  }
  return m;
}

Dcsr::Slice Dcsr::full() const {
  Slice s;
  s.cmds = cmds_.data();
  s.cmds_end = cmds_.data() + cmds_.size();
  s.values = values_.data();
  s.row_begin = 0;
  s.row_end = nrows_;
  s.row_state = -1;
  s.nnz = values_.size();
  return s;
}

Dcsr::Slice Dcsr::slice(index_t row_begin, index_t row_end) const {
  SPC_CHECK_MSG(row_begin <= row_end && row_end <= nrows_,
                "slice row range out of bounds");
  Slice s;
  s.row_begin = row_begin;
  s.row_end = row_end;

  const std::uint8_t* p = cmds_.data();
  const std::uint8_t* const end = cmds_.data() + cmds_.size();
  std::int64_t row = -1;
  usize_t val_off = 0;

  const std::uint8_t* slice_cmds = end;
  const std::uint8_t* slice_cmds_end = end;
  usize_t slice_val_off = 0;
  std::int64_t slice_row_state = -1;
  usize_t slice_nnz = 0;
  bool in_slice = false;

  while (p < end) {
    const std::uint8_t* const cmd_start = p;
    const std::int64_t row_before = row;
    const std::uint8_t cmd = *p++;
    const std::uint8_t op = cmd >> 6;
    const std::uint8_t arg = cmd & 0x3F;
    usize_t consumed = 0;
    switch (op) {
      case kDcsrOpDeltas8:
        p += arg;
        consumed = arg;
        break;
      case kDcsrOpDelta16:
        p += 2;
        consumed = 1;
        break;
      case kDcsrOpDelta32:
        p += 4;
        consumed = 1;
        break;
      case kDcsrOpNewRow:
        row += arg;
        break;
    }
    // Slices begin at NEWROW commands (every row starts with one; chained
    // NEWROWs belong to the first command whose final row lands in range,
    // so we test after the whole chain by only starting on NEWROW ops
    // whose successor is not another NEWROW continuation of the same
    // logical skip — handled naturally since we test `row` after applying
    // this command and the chain's intermediate rows are empty anyway).
    if (op == kDcsrOpNewRow) {
      if (!in_slice && row >= static_cast<std::int64_t>(row_begin) &&
          row < static_cast<std::int64_t>(row_end)) {
        in_slice = true;
        slice_cmds = cmd_start;
        slice_val_off = val_off;
        slice_row_state = row_before;
      } else if (in_slice && row >= static_cast<std::int64_t>(row_end)) {
        slice_cmds_end = cmd_start;
        slice_nnz = val_off - slice_val_off;
        in_slice = false;
        break;
      } else if (!in_slice && row >= static_cast<std::int64_t>(row_end)) {
        // Empty slice: a zero-length span at this boundary keeps
        // consecutive slices tiling the command stream.
        slice_cmds = cmd_start;
        slice_cmds_end = cmd_start;
        slice_val_off = val_off;
        slice_row_state = row_before;
        break;
      }
    }
    val_off += consumed;
  }
  if (in_slice) {
    slice_cmds_end = p;
    slice_nnz = val_off - slice_val_off;
  }

  s.cmds = slice_cmds;
  s.cmds_end = slice_cmds_end;
  s.values = values_.data() + slice_val_off;
  s.row_state = slice_row_state;
  s.nnz = slice_nnz;
  return s;
}

Triplets Dcsr::to_triplets() const {
  Triplets t(nrows_, ncols_);
  t.reserve(nnz());
  const std::uint8_t* p = cmds_.data();
  const std::uint8_t* const end = cmds_.data() + cmds_.size();
  std::int64_t row = -1;
  std::uint64_t col = 0;
  usize_t v = 0;
  while (p < end) {
    const std::uint8_t cmd = *p++;
    const std::uint8_t op = cmd >> 6;
    const std::uint8_t arg = cmd & 0x3F;
    switch (op) {
      case kDcsrOpDeltas8:
        for (std::uint8_t k = 0; k < arg; ++k) {
          col += *p++;
          t.add(static_cast<index_t>(row), static_cast<index_t>(col),
                values_[v++]);
        }
        break;
      case kDcsrOpDelta16: {
        std::uint64_t d = p[0] | (static_cast<std::uint64_t>(p[1]) << 8);
        p += 2;
        col += d;
        t.add(static_cast<index_t>(row), static_cast<index_t>(col),
              values_[v++]);
        break;
      }
      case kDcsrOpDelta32: {
        std::uint64_t d = 0;
        for (int b = 0; b < 4; ++b) {
          d |= static_cast<std::uint64_t>(p[b]) << (8 * b);
        }
        p += 4;
        col += d;
        t.add(static_cast<index_t>(row), static_cast<index_t>(col),
              values_[v++]);
        break;
      }
      case kDcsrOpNewRow:
        row += arg;
        col = 0;
        break;
    }
  }
  return t;
}

}  // namespace spc
