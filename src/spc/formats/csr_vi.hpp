// CSR-VI ("CSR Value Index") — the paper's value-compression format (§V).
//
// The CSR `values` array is replaced by `vals_unique` (each distinct value
// once, in first-occurrence order) and `val_ind` (per non-zero, the index
// of its value in vals_unique). The index width is the smallest of
// u8/u16/u32 that addresses the unique count. Indexing data (row_ptr,
// col_ind) are plain CSR.
//
// Worthwhile only when the total-to-unique ratio is high; the paper's
// empirical applicability criterion is ttu > 5 (§VI-E).
#pragma once

#include <cstdint>

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Storage width of one value index.
enum class ViWidth : std::uint8_t { kU8 = 1, kU16 = 2, kU32 = 4 };

/// Smallest width that can address `unique_count` values.
ViWidth vi_width_for(usize_t unique_count);

/// The paper's empirical applicability rule (§VI-E): ttu > 5.
inline constexpr double kViTtuThreshold = 5.0;

class CsrVi {
 public:
  CsrVi() = default;

  /// Builds in O(nnz) using a hash map over value bit patterns (§V).
  static CsrVi from_triplets(const Triplets& t);

  /// Reconstructs from raw arrays (the deserialization path) with full
  /// validation (shape consistency, index bounds, width coverage).
  /// Throws ParseError on any violation.
  static CsrVi from_raw(index_t nrows, index_t ncols,
                        aligned_vector<index_t> row_ptr,
                        aligned_vector<std::uint32_t> col_ind,
                        ViWidth width,
                        aligned_vector<std::uint8_t> val_ind,
                        aligned_vector<value_t> vals_unique);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return col_ind_.size(); }

  const aligned_vector<index_t>& row_ptr() const { return row_ptr_; }
  const aligned_vector<std::uint32_t>& col_ind() const { return col_ind_; }
  const aligned_vector<value_t>& vals_unique() const { return vals_unique_; }
  /// Raw value-index bytes; reinterpret per `width()`.
  const aligned_vector<std::uint8_t>& val_ind_raw() const { return val_ind_; }
  ViWidth width() const { return width_; }

  usize_t unique_count() const { return vals_unique_.size(); }
  double ttu() const {
    return unique_count() ? static_cast<double>(nnz()) /
                                static_cast<double>(unique_count())
                          : 0.0;
  }

  /// Typed view of val_ind; T must match width().
  template <typename T>
  const T* val_ind_as() const {
    SPC_CHECK(sizeof(T) == static_cast<std::size_t>(width_));
    return reinterpret_cast<const T*>(val_ind_.data());
  }

  /// Value of the k-th non-zero (test/inspection path).
  value_t value_at(usize_t k) const;

  /// Matrix data size: row_ptr + col_ind + val_ind + vals_unique.
  usize_t bytes() const {
    return row_ptr_.size() * sizeof(index_t) +
           col_ind_.size() * sizeof(std::uint32_t) + val_ind_.size() +
           vals_unique_.size() * sizeof(value_t);
  }

  Triplets to_triplets() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  ViWidth width_ = ViWidth::kU8;
  aligned_vector<index_t> row_ptr_;
  aligned_vector<std::uint32_t> col_ind_;
  aligned_vector<std::uint8_t> val_ind_;   ///< nnz * width bytes
  aligned_vector<value_t> vals_unique_;
};

}  // namespace spc
