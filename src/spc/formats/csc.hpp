// Compressed Sparse Column (§II-B) — CSR's transpose-oriented sibling.
//
// Provided as a baseline substrate and as the natural host of column
// partitioning (§II-C). Its SpMV scatters into y, which is why the paper's
// row-partitioned CSR is preferred for multithreading.
#pragma once

#include <algorithm>

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class Csc {
 public:
  Csc() = default;

  static Csc from_triplets(const Triplets& t) {
    SPC_CHECK_MSG(t.is_sorted_unique(),
                  "CSC construction requires sorted/combined triplets");
    Csc m;
    m.nrows_ = t.nrows();
    m.ncols_ = t.ncols();
    m.col_ptr_.assign(t.ncols() + 1, 0);
    m.row_ind_.resize(t.nnz());
    m.values_.resize(t.nnz());
    for (const Entry& e : t.entries()) {
      ++m.col_ptr_[e.col + 1];
    }
    for (index_t c = 0; c < t.ncols(); ++c) {
      m.col_ptr_[c + 1] += m.col_ptr_[c];
    }
    aligned_vector<index_t> cursor(m.col_ptr_.begin(), m.col_ptr_.end() - 1);
    for (const Entry& e : t.entries()) {
      const index_t k = cursor[e.col]++;
      m.row_ind_[k] = e.row;
      m.values_[k] = e.val;
    }
    return m;
  }

  Triplets to_triplets() const {
    Triplets t(nrows_, ncols_);
    t.reserve(nnz());
    for (index_t c = 0; c < ncols_; ++c) {
      for (index_t j = col_ptr_[c]; j < col_ptr_[c + 1]; ++j) {
        t.add(row_ind_[j], c, values_[j]);
      }
    }
    t.sort_and_combine();
    return t;
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return values_.size(); }

  const aligned_vector<index_t>& col_ptr() const { return col_ptr_; }
  const aligned_vector<index_t>& row_ind() const { return row_ind_; }
  const aligned_vector<value_t>& values() const { return values_; }

  usize_t bytes() const {
    return col_ptr_.size() * sizeof(index_t) +
           row_ind_.size() * sizeof(index_t) +
           values_.size() * sizeof(value_t);
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  aligned_vector<index_t> col_ptr_;
  aligned_vector<index_t> row_ind_;
  aligned_vector<value_t> values_;
};

}  // namespace spc
