// Blocked CSR (BCSR) — the classic register-blocking baseline (§III-A).
//
// The matrix is tiled into r×c dense blocks aligned to a block grid; only
// blocks containing at least one non-zero are stored, zero-filled. Index
// data shrinks by ~1/(r*c) at the cost of storing explicit zeros, so BCSR
// only wins on matrices with dense block substructure — one of the index
// reduction techniques the paper positions CSR-DU against.
#pragma once

#include <cstdint>

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class Bcsr {
 public:
  Bcsr() = default;

  /// Builds with the given block shape (1 <= r,c <= 8).
  static Bcsr from_triplets(const Triplets& t, index_t block_rows,
                            index_t block_cols);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return nnz_; }
  index_t block_rows() const { return br_; }
  index_t block_cols() const { return bc_; }
  index_t nblock_rows() const { return nblock_rows_; }
  usize_t nblocks() const { return block_col_.size(); }

  /// Stored elements including fill (nblocks * r * c).
  usize_t stored_values() const { return values_.size(); }
  /// Fill-in ratio: stored / nnz (>= 1).
  double fill_ratio() const {
    return nnz_ ? static_cast<double>(stored_values()) /
                      static_cast<double>(nnz_)
                : 1.0;
  }

  const aligned_vector<index_t>& block_row_ptr() const {
    return block_row_ptr_;
  }
  const aligned_vector<index_t>& block_col() const { return block_col_; }
  /// Block values, row-major within each r×c block, blocks in row-ptr order.
  const aligned_vector<value_t>& values() const { return values_; }

  Triplets to_triplets() const;

  usize_t bytes() const {
    return block_row_ptr_.size() * sizeof(index_t) +
           block_col_.size() * sizeof(index_t) +
           values_.size() * sizeof(value_t);
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  usize_t nnz_ = 0;
  index_t br_ = 1;
  index_t bc_ = 1;
  index_t nblock_rows_ = 0;
  aligned_vector<index_t> block_row_ptr_;  ///< nblock_rows + 1
  aligned_vector<index_t> block_col_;      ///< first column of each block
  aligned_vector<value_t> values_;         ///< nblocks * br * bc
};

}  // namespace spc
