#include "spc/formats/jds.hpp"

#include <algorithm>
#include <numeric>

namespace spc {

Jds Jds::from_triplets(const Triplets& t) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "JDS construction requires sorted/combined triplets");
  Jds m;
  m.nrows_ = t.nrows();
  m.ncols_ = t.ncols();

  // Row lengths and CSR-ish offsets for gathering the j-th element.
  std::vector<index_t> row_len(t.nrows(), 0);
  for (const Entry& e : t.entries()) {
    ++row_len[e.row];
  }
  std::vector<usize_t> row_start(t.nrows() + 1, 0);
  for (index_t r = 0; r < t.nrows(); ++r) {
    row_start[r + 1] = row_start[r] + row_len[r];
  }

  // Permutation: rows by decreasing length, stable for determinism.
  m.perm_.resize(t.nrows());
  std::iota(m.perm_.begin(), m.perm_.end(), 0);
  std::stable_sort(m.perm_.begin(), m.perm_.end(),
                   [&](index_t a, index_t b) {
                     return row_len[a] > row_len[b];
                   });

  const index_t max_len = t.nrows() > 0 ? row_len[m.perm_[0]] : 0;
  m.jd_ptr_.resize(max_len + 1);
  m.col_ind_.resize(t.nnz());
  m.values_.resize(t.nnz());

  usize_t out = 0;
  m.jd_ptr_[0] = 0;
  for (index_t j = 0; j < max_len; ++j) {
    for (index_t i = 0; i < t.nrows(); ++i) {
      const index_t row = m.perm_[i];
      if (row_len[row] <= j) {
        break;  // perm is sorted by length: no later row has element j
      }
      const Entry& e = t.entries()[row_start[row] + j];
      m.col_ind_[out] = e.col;
      m.values_[out] = e.val;
      ++out;
    }
    m.jd_ptr_[j + 1] = static_cast<index_t>(out);
  }
  SPC_CHECK(out == t.nnz());
  return m;
}

Triplets Jds::to_triplets() const {
  Triplets t(nrows_, ncols_);
  t.reserve(nnz());
  for (index_t j = 0; j < njdiags(); ++j) {
    const index_t len = jd_ptr_[j + 1] - jd_ptr_[j];
    for (index_t i = 0; i < len; ++i) {
      const usize_t k = jd_ptr_[j] + i;
      t.add(perm_[i], col_ind_[k], values_[k]);
    }
  }
  t.sort_and_combine();
  return t;
}

}  // namespace spc
