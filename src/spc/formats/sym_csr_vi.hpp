// Symmetric CSR-VI — the paper's value compression (§V) applied to the
// SSS symmetric storage (§III-C). The dense diagonal and the strict
// lower triangle both index into ONE shared unique-value table: diag_ind
// holds n indices (implicit 0.0 diagonals resolve to the table's zero
// entry), val_ind holds one index per stored lower non-zero. The index
// width is the smallest of u8/u16/u32 that addresses the unique count,
// so value bytes drop from 8 to width per stored element on matrices
// with few distinct values — compounding with the symmetric halving of
// the index/value streams.
#pragma once

#include <cstdint>

#include "spc/formats/csr_vi.hpp"
#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class SymCsrVi {
 public:
  SymCsrVi() = default;

  /// Same precondition as SymCsr: square and numerically symmetric.
  static bool applicable(const Triplets& t);

  /// Builds from a symmetric matrix; throws InvalidArgument otherwise.
  static SymCsrVi from_triplets(const Triplets& t);

  index_t nrows() const { return n_; }
  index_t ncols() const { return n_; }
  /// Non-zeros of the *full* matrix this storage represents.
  usize_t nnz() const { return nnz_full_; }
  /// Stored elements: diagonal + strict lower triangle.
  usize_t stored() const { return n_ + col_ind_.size(); }

  const aligned_vector<index_t>& row_ptr() const { return row_ptr_; }
  const aligned_vector<index_t>& col_ind() const { return col_ind_; }
  const aligned_vector<value_t>& vals_unique() const { return vals_unique_; }
  /// Raw value-index bytes for the lower triangle; reinterpret per width().
  const aligned_vector<std::uint8_t>& val_ind_raw() const { return val_ind_; }
  /// Raw value-index bytes for the diagonal (n entries); same width.
  const aligned_vector<std::uint8_t>& diag_ind_raw() const {
    return diag_ind_;
  }
  ViWidth width() const { return width_; }

  usize_t unique_count() const { return vals_unique_.size(); }
  /// Stored-element ttu: (diag + lower) over unique, the compression
  /// ratio the shared table actually achieves.
  double ttu() const {
    return unique_count() ? static_cast<double>(stored()) /
                                static_cast<double>(unique_count())
                          : 0.0;
  }

  /// Typed views; T must match width().
  template <typename T>
  const T* val_ind_as() const {
    SPC_CHECK(sizeof(T) == static_cast<std::size_t>(width_));
    return reinterpret_cast<const T*>(val_ind_.data());
  }
  template <typename T>
  const T* diag_ind_as() const {
    SPC_CHECK(sizeof(T) == static_cast<std::size_t>(width_));
    return reinterpret_cast<const T*>(diag_ind_.data());
  }

  /// Value of the k-th stored lower non-zero (test/inspection path).
  value_t value_at(usize_t k) const;
  /// Diagonal value of row r (test/inspection path).
  value_t diag_at(index_t r) const;

  usize_t bytes() const {
    return row_ptr_.size() * sizeof(index_t) +
           col_ind_.size() * sizeof(index_t) + val_ind_.size() +
           diag_ind_.size() + vals_unique_.size() * sizeof(value_t);
  }

  Triplets to_triplets() const;

 private:
  index_t n_ = 0;
  usize_t nnz_full_ = 0;
  ViWidth width_ = ViWidth::kU8;
  aligned_vector<index_t> row_ptr_;  ///< strict lower triangle, CSR
  aligned_vector<index_t> col_ind_;
  aligned_vector<std::uint8_t> diag_ind_;  ///< n * width bytes
  aligned_vector<std::uint8_t> val_ind_;   ///< lower nnz * width bytes
  aligned_vector<value_t> vals_unique_;
};

}  // namespace spc
